package lidarsim

import (
	"math/rand"

	"hawccc/internal/geom"
)

// GroundZ is the walkway elevation in the sensor frame: the LiDAR sits on
// top of a 3 m pole, so the ground is 3 m below the origin (Section III).
const GroundZ = -3.0

// HumanParams describes one pedestrian's body geometry and placement.
type HumanParams struct {
	// Position is the ground location (x, y); z is ignored (feet rest on
	// the ground plane).
	Position geom.Point3
	// Height is the standing height in meters.
	Height float64
	// ShoulderWidth is the lateral torso semi-extent driver.
	ShoulderWidth float64
	// Stride is the forward leg separation (walking phase), 0 = standing.
	Stride float64
}

// RandomHumanParams samples a pedestrian with a college-population height
// distribution (mean 1.72 m, σ 0.09 m, clamped to [1.45, 2.05]) at the
// given ground position. The paper's limitation section notes HAWC's
// reliance on this average-height assumption; the simulator makes the
// assumption explicit and controllable.
func RandomHumanParams(rng *rand.Rand, x, y float64) HumanParams {
	h := 1.72 + rng.NormFloat64()*0.09
	if h < 1.45 {
		h = 1.45
	}
	if h > 2.05 {
		h = 2.05
	}
	return HumanParams{
		Position:      geom.P(x, y, 0),
		Height:        h,
		ShoulderWidth: 0.40 + rng.NormFloat64()*0.03,
		Stride:        rng.Float64() * 0.45,
	}
}

// NewHuman assembles a body from primitives: two legs (vertical
// cylinders), a torso (ellipsoid), two arms (thin cylinders) and a head
// (sphere). Proportions follow standard anthropometry so the height
// signature HAWC keys on (Section V) is present: a ~0.1 m head bump above
// a ~0.3 m-wide torso above ~0.09 m-wide legs.
func NewHuman(p HumanParams) *Group {
	h := p.Height
	x, y := p.Position.X, p.Position.Y
	legTop := 0.50 * h
	torsoCenter := 0.66 * h
	headCenter := h - 0.11

	legOffset := 0.09
	strideHalf := p.Stride / 2

	shapes := []Shape{
		// Legs: slight forward/backward split encodes walking pose.
		VCylinder{Base: geom.P(x-strideHalf, y-legOffset, GroundZ), Radius: 0.085, Height: legTop},
		VCylinder{Base: geom.P(x+strideHalf, y+legOffset, GroundZ), Radius: 0.085, Height: legTop},
		// Torso.
		Ellipsoid{
			Center: geom.P(x, y, GroundZ+torsoCenter),
			Semi:   geom.P(0.14, p.ShoulderWidth/2, 0.22*h),
		},
		// Arms.
		VCylinder{Base: geom.P(x, y-p.ShoulderWidth/2-0.03, GroundZ+legTop), Radius: 0.05, Height: 0.36 * h},
		VCylinder{Base: geom.P(x, y+p.ShoulderWidth/2+0.03, GroundZ+legTop), Radius: 0.05, Height: 0.36 * h},
		// Head.
		Sphere{Center: geom.P(x, y, GroundZ+headCenter), Radius: 0.11},
	}
	return NewGroup(shapes...)
}
