package lidarsim

import (
	"math"
	"math/rand"
	"testing"

	"hawccc/internal/geom"
)

func TestSphereIntersection(t *testing.T) {
	s := Sphere{Center: geom.P(10, 0, 0), Radius: 1}
	tests := []struct {
		name    string
		origin  geom.Point3
		dir     geom.Point3
		wantT   float64
		wantHit bool
	}{
		{"head on", geom.P(0, 0, 0), geom.P(1, 0, 0), 9, true},
		{"miss", geom.P(0, 0, 0), geom.P(0, 1, 0), 0, false},
		{"behind", geom.P(20, 0, 0), geom.P(1, 0, 0), 0, false},
		{"from inside", geom.P(10, 0, 0), geom.P(1, 0, 0), 1, true},
		{"tangent-ish", geom.P(0, 1, 0), geom.P(1, 0, 0), 10, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, hit := s.IntersectRay(tt.origin, tt.dir)
			if hit != tt.wantHit {
				t.Fatalf("hit = %v, want %v", hit, tt.wantHit)
			}
			if hit && math.Abs(got-tt.wantT) > 1e-9 {
				t.Errorf("t = %v, want %v", got, tt.wantT)
			}
		})
	}
	if _, hit := s.IntersectRay(geom.P(0, 0, 0), geom.Point3{}); hit {
		t.Error("zero direction should not hit")
	}
}

func TestEllipsoidIntersection(t *testing.T) {
	e := Ellipsoid{Center: geom.P(5, 0, 0), Semi: geom.P(1, 2, 3)}
	// Along x: surface at x = 4.
	tt, hit := e.IntersectRay(geom.P(0, 0, 0), geom.P(1, 0, 0))
	if !hit || math.Abs(tt-4) > 1e-9 {
		t.Errorf("x-axis hit t = %v, hit = %v, want 4", tt, hit)
	}
	// Along y from (5, -10, 0): surface at y = -2 → t = 8.
	tt, hit = e.IntersectRay(geom.P(5, -10, 0), geom.P(0, 1, 0))
	if !hit || math.Abs(tt-8) > 1e-9 {
		t.Errorf("y-axis hit t = %v, want 8", tt)
	}
	// A ray passing x at height z=2.9 < 3 must hit; z=3.1 must miss.
	if _, hit = e.IntersectRay(geom.P(0, 0, 2.9), geom.P(1, 0, 0)); !hit {
		t.Error("ray at z=2.9 should hit semi-z=3 ellipsoid")
	}
	if _, hit = e.IntersectRay(geom.P(0, 0, 3.1), geom.P(1, 0, 0)); hit {
		t.Error("ray at z=3.1 should miss")
	}
}

func TestVCylinderIntersection(t *testing.T) {
	c := VCylinder{Base: geom.P(10, 0, -3), Radius: 0.5, Height: 2}
	// Horizontal ray at z=-2 (inside height band): hits front at x=9.5.
	tt, hit := c.IntersectRay(geom.P(0, 0, -2), geom.P(1, 0, 0))
	if !hit || math.Abs(tt-9.5) > 1e-9 {
		t.Errorf("t = %v, hit = %v, want 9.5", tt, hit)
	}
	// Above the top (z=-0.5 > base+height=-1): miss.
	if _, hit = c.IntersectRay(geom.P(0, 0, -0.5), geom.P(1, 0, 0)); hit {
		t.Error("ray above cylinder top should miss")
	}
	// Vertical ray: side surface unreachable.
	if _, hit = c.IntersectRay(geom.P(10, 0, 5), geom.P(0, 0, -1)); hit {
		t.Error("vertical ray should not hit side surface")
	}
	// Slanted ray that crosses the band: first crossing of the infinite
	// cylinder is above the top, the second inside — must report the hit.
	tt, hit = c.IntersectRay(geom.P(0, 0, 0), geom.P(1, 0, -0.2))
	if !hit {
		t.Fatal("slanted ray should hit")
	}
	z := 0 + tt*-0.2
	if z < -3 || z > -1 {
		t.Errorf("hit z = %v outside cylinder band [-3, -1]", z)
	}
}

func TestBoxShapeIntersection(t *testing.T) {
	b := BoxShape{Box: geom.Box{Min: geom.P(5, -1, -1), Max: geom.P(6, 1, 1)}}
	tt, hit := b.IntersectRay(geom.P(0, 0, 0), geom.P(1, 0, 0))
	if !hit || math.Abs(tt-5) > 1e-9 {
		t.Errorf("t = %v, want 5", tt)
	}
	if _, hit = b.IntersectRay(geom.P(0, 5, 0), geom.P(1, 0, 0)); hit {
		t.Error("parallel offset ray should miss")
	}
	// Ray starting inside exits at far face.
	tt, hit = b.IntersectRay(geom.P(5.5, 0, 0), geom.P(1, 0, 0))
	if !hit || math.Abs(tt-0.5) > 1e-9 {
		t.Errorf("inside ray t = %v, want 0.5", tt)
	}
}

func TestGroupNearestHit(t *testing.T) {
	g := NewGroup(
		Sphere{Center: geom.P(10, 0, 0), Radius: 1},
		Sphere{Center: geom.P(5, 0, 0), Radius: 1},
	)
	tt, hit := g.IntersectRay(geom.P(0, 0, 0), geom.P(1, 0, 0))
	if !hit || math.Abs(tt-4) > 1e-9 {
		t.Errorf("group should report nearest hit: t = %v, want 4", tt)
	}
	if _, hit := g.IntersectRay(geom.P(0, 0, 0), geom.P(0, 0, 1)); hit {
		t.Error("group should miss")
	}
	b := g.Bounds()
	if b.Min.X != 4 || b.Max.X != 11 {
		t.Errorf("group bounds = %+v", b)
	}
}

func TestHumanGeometry(t *testing.T) {
	p := HumanParams{Position: geom.P(20, 0, 0), Height: 1.8, ShoulderWidth: 0.4}
	h := NewHuman(p)
	b := h.Bounds()
	// Feet on the ground, head near GroundZ + height.
	if math.Abs(b.Min.Z-GroundZ) > 1e-9 {
		t.Errorf("feet at z = %v, want %v", b.Min.Z, GroundZ)
	}
	if math.Abs(b.Max.Z-(GroundZ+1.8)) > 0.01 {
		t.Errorf("head top at z = %v, want ≈ %v", b.Max.Z, GroundZ+1.8)
	}
	// A horizontal ray at torso height must hit.
	if _, hit := h.IntersectRay(geom.P(0, 0, GroundZ+1.2), geom.P(1, 0, 0)); !hit {
		t.Error("torso-height ray should hit")
	}
	// A ray well above the head must miss.
	if _, hit := h.IntersectRay(geom.P(0, 0, GroundZ+2.5), geom.P(1, 0, 0)); hit {
		t.Error("ray above head should miss")
	}
}

func TestRandomHumanParamsClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := RandomHumanParams(rng, 20, 0)
		if p.Height < 1.45 || p.Height > 2.05 {
			t.Fatalf("height %v out of clamp range", p.Height)
		}
	}
}

func TestObjectKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for k := ObjectKind(0); k < numObjectKinds; k++ {
		g := NewObject(k, rng, 20, 1)
		if len(g.Shapes) == 0 {
			t.Errorf("%v has no shapes", k)
		}
		if g.Bounds().IsEmpty() {
			t.Errorf("%v has empty bounds", k)
		}
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if ObjectKind(99).String() != "ObjectKind(99)" {
		t.Error("unknown kind String")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewObject should panic on unknown kind")
		}
	}()
	NewObject(ObjectKind(99), rng, 0, 0)
}

func TestScanSinglePerson(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sensor := NewSensor(DefaultSensorConfig(), rng)
	scene := &Scene{}
	scene.AddHuman(NewHuman(RandomHumanParams(rng, 18, 0)))

	returns := sensor.Scan(scene)
	human, object, ground := SplitByKind(returns)
	if len(object) != 0 {
		t.Errorf("no objects in scene but %d object returns", len(object))
	}
	if len(human) < 20 {
		t.Fatalf("only %d human returns at 18 m; sensor fan too sparse", len(human))
	}
	if len(ground) == 0 {
		t.Error("expected some ground returns")
	}
	// Human returns must be near the body position and within body heights.
	for _, p := range human {
		if math.Abs(p.X-18) > 1.0 || math.Abs(p.Y) > 1.0 {
			t.Fatalf("human return far from body: %+v", p)
		}
		if p.Z < GroundZ-0.1 || p.Z > GroundZ+2.2 {
			t.Fatalf("human return outside body height band: %+v", p)
		}
	}
	// Density must decay with distance: a person at 30 m yields fewer
	// points than one at 14 m.
	near := &Scene{}
	near.AddHuman(NewHuman(HumanParams{Position: geom.P(14, 0, 0), Height: 1.72, ShoulderWidth: 0.4}))
	far := &Scene{}
	far.AddHuman(NewHuman(HumanParams{Position: geom.P(30, 0, 0), Height: 1.72, ShoulderWidth: 0.4}))
	nearHuman, _, _ := SplitByKind(sensor.Scan(near))
	farHuman, _, _ := SplitByKind(sensor.Scan(far))
	if len(farHuman) >= len(nearHuman) {
		t.Errorf("density should decay with distance: near=%d far=%d", len(nearHuman), len(farHuman))
	}
}

func TestScanOcclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultSensorConfig()
	cfg.BaseDropout, cfg.RangeDropout = 0, 0 // deterministic visibility
	sensor := NewSensor(cfg, rng)

	// A wall between sensor and human: human must receive no returns.
	scene := &Scene{}
	scene.AddHuman(NewHuman(HumanParams{Position: geom.P(25, 0, 0), Height: 1.7, ShoulderWidth: 0.4}))
	scene.AddObject(NewGroup(BoxShape{Box: geom.Box{
		Min: geom.P(15, -5, GroundZ),
		Max: geom.P(15.3, 5, GroundZ+3),
	}}))
	human, object, _ := SplitByKind(sensor.Scan(scene))
	if len(human) != 0 {
		t.Errorf("occluded human received %d returns", len(human))
	}
	if len(object) == 0 {
		t.Error("wall should receive returns")
	}
}

func TestGroundReturnsStayInNoiseBand(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultSensorConfig()
	sensor := NewSensor(cfg, rng)
	_, _, ground := SplitByKind(sensor.Scan(&Scene{}))
	if len(ground) == 0 {
		t.Fatal("empty scene should still produce ground returns")
	}
	for _, p := range ground {
		// Range noise adds ±3σ along the beam on top of the upward shift.
		if p.Z < GroundZ-0.15 || p.Z > GroundZ+cfg.GroundNoiseMax+0.15 {
			t.Fatalf("ground return z = %v outside noise band", p.Z)
		}
	}
}

func TestCloudOf(t *testing.T) {
	rs := []Return{{Point: geom.P(1, 2, 3)}, {Point: geom.P(4, 5, 6)}}
	c := CloudOf(rs)
	if len(c) != 2 || c[0] != geom.P(1, 2, 3) {
		t.Errorf("CloudOf = %v", c)
	}
}

// TestCloudOfInto pins the pooled-buffer companions: both Into
// variants match CloudOf and are allocation-free once their buffers
// have grown to frame size.
func TestCloudOfInto(t *testing.T) {
	rs := make([]Return, 100)
	for i := range rs {
		rs[i] = Return{Point: geom.P(float64(i), float64(2*i), 1.5)}
	}
	want := CloudOf(rs)

	buf := CloudOfInto(nil, rs)
	if len(buf) != len(want) {
		t.Fatalf("CloudOfInto len %d, want %d", len(buf), len(want))
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("point %d: %v != %v", i, buf[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		buf = CloudOfInto(buf[:0], rs)
	}); allocs != 0 {
		t.Fatalf("recycled CloudOfInto allocates: %.1f allocs/op", allocs)
	}

	var soa geom.CloudSoA
	CloudOfSoAInto(&soa, rs)
	if soa.Len() != len(want) {
		t.Fatalf("CloudOfSoAInto len %d, want %d", soa.Len(), len(want))
	}
	for i := range want {
		wp := geom.Point3{
			X: float64(float32(want[i].X)),
			Y: float64(float32(want[i].Y)),
			Z: float64(float32(want[i].Z)),
		}
		if p := soa.At(i); p != wp {
			t.Fatalf("SoA point %d: %v", i, p)
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		soa.Reset()
		CloudOfSoAInto(&soa, rs)
	}); allocs != 0 {
		t.Fatalf("recycled CloudOfSoAInto allocates: %.1f allocs/op", allocs)
	}
}

func TestSensorDeterminism(t *testing.T) {
	scene := &Scene{}
	scene.AddHuman(NewHuman(HumanParams{Position: geom.P(20, 1, 0), Height: 1.75, ShoulderWidth: 0.42}))
	a := NewSensor(DefaultSensorConfig(), rand.New(rand.NewSource(5))).Scan(scene)
	b := NewSensor(DefaultSensorConfig(), rand.New(rand.NewSource(5))).Scan(scene)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d returns", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("return %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScanIntoMatchesScanAndRecycles(t *testing.T) {
	build := func() (*Sensor, *Scene) {
		rng := rand.New(rand.NewSource(77))
		scene := &Scene{}
		scene.AddHuman(NewHuman(RandomHumanParams(rng, 18, 0)))
		scene.AddHuman(NewHuman(RandomHumanParams(rng, 25, 1)))
		return NewSensor(DefaultSensorConfig(), rng), scene
	}

	// Same seed through either entry point: identical returns.
	s1, scene1 := build()
	want := s1.Scan(scene1)
	s2, scene2 := build()
	got := s2.ScanInto(scene2, nil)
	if len(got) != len(want) {
		t.Fatalf("ScanInto produced %d returns, Scan %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("return %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}

	// Recycling the buffer reuses its backing array once grown.
	s3, scene3 := build()
	buf := s3.ScanInto(scene3, nil)
	if len(buf) == 0 {
		t.Fatal("no returns to recycle")
	}
	backing := &buf[0]
	again := s3.ScanInto(scene3, buf)
	if len(again) == 0 || &again[0] != backing {
		t.Error("recycled ScanInto did not reuse the grown buffer")
	}
}
