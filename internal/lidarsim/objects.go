package lidarsim

import (
	"fmt"
	"math/rand"

	"hawccc/internal/geom"
)

// ObjectKind enumerates the non-human campus objects the simulator can
// place: the "Object" class of the classification task and the source pool
// for noise-controlled up-sampling (Section V).
type ObjectKind int

// Campus object kinds.
const (
	ObjectBush ObjectKind = iota
	ObjectBollard
	ObjectBench
	ObjectTrashCan
	ObjectBikeRack
	ObjectSign
	ObjectPulley // ground clutter the paper calls out as a z-noise source
	// The remaining kinds are the hard negatives that make LiDAR-only
	// human detection non-trivial: objects whose gross statistics (height,
	// width, point count) overlap the pedestrian distribution, so that
	// only fine spatial structure separates the classes.
	ObjectSapling  // young tree: trunk + canopy at head height
	ObjectUmbrella // patio umbrella: pole + wide canopy ~2 m up
	ObjectScooter  // parked e-scooter: stem + deck
	ObjectLuggage  // abandoned suitcase / parcel stack
	numObjectKinds
)

// numStandardKinds bounds the object kinds present on the deployment
// walkway (the paper's evaluation data). The hard human-confusable kinds
// above it are an extension used by the robustness experiments.
const numStandardKinds = ObjectSapling

// String implements fmt.Stringer.
func (k ObjectKind) String() string {
	switch k {
	case ObjectBush:
		return "bush"
	case ObjectBollard:
		return "bollard"
	case ObjectBench:
		return "bench"
	case ObjectTrashCan:
		return "trashcan"
	case ObjectBikeRack:
		return "bikerack"
	case ObjectSign:
		return "sign"
	case ObjectPulley:
		return "pulley"
	case ObjectSapling:
		return "sapling"
	case ObjectUmbrella:
		return "umbrella"
	case ObjectScooter:
		return "scooter"
	case ObjectLuggage:
		return "luggage"
	default:
		return fmt.Sprintf("ObjectKind(%d)", int(k))
	}
}

// NewObject builds a campus object of the given kind at ground position
// (x, y). rng perturbs dimensions so no two objects are identical.
func NewObject(kind ObjectKind, rng *rand.Rand, x, y float64) *Group {
	j := func(base, spread float64) float64 { return base + (rng.Float64()-0.5)*spread }
	switch kind {
	case ObjectBush:
		// A fuzzy mound: several overlapping spheres at low height.
		n := 3 + rng.Intn(4)
		shapes := make([]Shape, 0, n)
		for i := 0; i < n; i++ {
			shapes = append(shapes, Sphere{
				Center: geom.P(x+j(0, 0.5), y+j(0, 0.5), GroundZ+j(0.4, 0.3)),
				Radius: j(0.4, 0.2),
			})
		}
		return NewGroup(shapes...)
	case ObjectBollard:
		return NewGroup(VCylinder{Base: geom.P(x, y, GroundZ), Radius: j(0.08, 0.03), Height: j(0.9, 0.2)})
	case ObjectBench:
		seatH := j(0.45, 0.06)
		length := j(1.6, 0.4)
		return NewGroup(
			BoxShape{Box: geom.Box{
				Min: geom.P(x-length/2, y-0.25, GroundZ+seatH-0.05),
				Max: geom.P(x+length/2, y+0.25, GroundZ+seatH),
			}},
			BoxShape{Box: geom.Box{ // backrest
				Min: geom.P(x-length/2, y+0.2, GroundZ+seatH),
				Max: geom.P(x+length/2, y+0.25, GroundZ+seatH+0.4),
			}},
		)
	case ObjectTrashCan:
		return NewGroup(VCylinder{Base: geom.P(x, y, GroundZ), Radius: j(0.3, 0.08), Height: j(1.0, 0.15)})
	case ObjectBikeRack:
		// A row of thin vertical hoops approximated by narrow cylinders.
		n := 3 + rng.Intn(3)
		shapes := make([]Shape, 0, n)
		for i := 0; i < n; i++ {
			shapes = append(shapes, VCylinder{
				Base:   geom.P(x+float64(i)*0.5, y, GroundZ),
				Radius: 0.03,
				Height: j(0.8, 0.1),
			})
		}
		return NewGroup(shapes...)
	case ObjectSign:
		return NewGroup(
			VCylinder{Base: geom.P(x, y, GroundZ), Radius: 0.04, Height: 2.1},
			BoxShape{Box: geom.Box{
				Min: geom.P(x-0.02, y-0.35, GroundZ+1.5),
				Max: geom.P(x+0.02, y+0.35, GroundZ+2.1),
			}},
		)
	case ObjectPulley:
		// Low ground clutter generating returns just above the walkway —
		// exactly the z-noise the ground filter targets (Section III).
		return NewGroup(BoxShape{Box: geom.Box{
			Min: geom.P(x-0.3, y-0.3, GroundZ),
			Max: geom.P(x+0.3, y+0.3, GroundZ+j(0.3, 0.1)),
		}})
	case ObjectSapling:
		// Trunk plus a canopy of overlapping spheres at head height: the
		// same overall height and footprint as a pedestrian, but a fuzzy
		// high-σz blob where a person has a compact head over shoulders.
		height := j(1.8, 0.5)
		shapes := []Shape{
			VCylinder{Base: geom.P(x, y, GroundZ), Radius: j(0.05, 0.02), Height: height * 0.6},
		}
		n := 3 + rng.Intn(3)
		for i := 0; i < n; i++ {
			shapes = append(shapes, Sphere{
				Center: geom.P(x+j(0, 0.3), y+j(0, 0.3), GroundZ+height*0.75+j(0, 0.3)),
				Radius: j(0.28, 0.12),
			})
		}
		return NewGroup(shapes...)
	case ObjectUmbrella:
		// Pole with a wide canopy disk (flattened ellipsoid) near 2 m.
		height := j(2.1, 0.3)
		return NewGroup(
			VCylinder{Base: geom.P(x, y, GroundZ), Radius: 0.03, Height: height},
			Ellipsoid{
				Center: geom.P(x, y, GroundZ+height),
				Semi:   geom.P(j(0.9, 0.3), j(0.9, 0.3), 0.12),
			},
		)
	case ObjectScooter:
		// Vertical stem with handlebar plus a low deck.
		return NewGroup(
			VCylinder{Base: geom.P(x, y, GroundZ), Radius: 0.03, Height: j(1.1, 0.15)},
			BoxShape{Box: geom.Box{
				Min: geom.P(x-0.35, y-0.08, GroundZ+0.08),
				Max: geom.P(x+0.35, y+0.08, GroundZ+0.18),
			}},
			BoxShape{Box: geom.Box{ // handlebar
				Min: geom.P(x-0.05, y-0.25, GroundZ+1.0),
				Max: geom.P(x+0.05, y+0.25, GroundZ+1.1),
			}},
		)
	case ObjectLuggage:
		// A suitcase-sized box, sometimes stacked two high.
		h := j(0.7, 0.2)
		shapes := []Shape{BoxShape{Box: geom.Box{
			Min: geom.P(x-0.2, y-0.15, GroundZ),
			Max: geom.P(x+0.2, y+0.15, GroundZ+h),
		}}}
		if rng.Float64() < 0.4 {
			shapes = append(shapes, BoxShape{Box: geom.Box{
				Min: geom.P(x-0.18, y-0.13, GroundZ+h),
				Max: geom.P(x+0.18, y+0.13, GroundZ+h+j(0.4, 0.15)),
			}})
		}
		return NewGroup(shapes...)
	default:
		panic(fmt.Sprintf("lidarsim: unknown object kind %d", int(kind)))
	}
}

// RandomObjectKind picks a standard campus object kind uniformly at
// random — the object population of the paper's deployment data.
func RandomObjectKind(rng *rand.Rand) ObjectKind {
	return ObjectKind(rng.Intn(int(numStandardKinds)))
}

// RandomObjectKindHard picks from the full kind set including the
// human-confusable extension objects (saplings, umbrellas, scooters,
// luggage), used by the beyond-the-paper robustness experiments.
func RandomObjectKindHard(rng *rand.Rand) ObjectKind {
	return ObjectKind(rng.Intn(int(numObjectKinds)))
}
