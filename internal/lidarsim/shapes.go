// Package lidarsim simulates a pole-mounted 32-channel spinning LiDAR
// scanning a campus walkway. It substitutes for the paper's Ouster OS0
// hardware and campus data collection: parametric human bodies and campus
// objects are placed in a scene and scanned by ray casting with range
// noise, distance-dependent dropout, and ground returns, producing point
// clouds with the same qualitative structure (channel banding, density
// decay with distance, ground noise up to 0.4 m) the paper's pipeline is
// designed around.
//
// Coordinate frame: the sensor is the origin at the top of a 3 m pole;
// x runs down the walkway, y across it, z up; the ground plane is z = -3.
package lidarsim

import (
	"math"

	"hawccc/internal/geom"
)

// Shape is anything a LiDAR ray can hit.
type Shape interface {
	// IntersectRay returns the smallest t > 0 such that origin + t·dir lies
	// on the shape's surface, and whether such t exists. dir need not be
	// normalized; t is in units of |dir|.
	IntersectRay(origin, dir geom.Point3) (float64, bool)
	// Bounds returns an axis-aligned box enclosing the shape, used for
	// broad-phase ray rejection.
	Bounds() geom.Box
}

// Sphere is a solid sphere.
type Sphere struct {
	Center geom.Point3
	Radius float64
}

var _ Shape = Sphere{}

// IntersectRay solves |o + t·d − c|² = r² for the smallest positive t.
func (s Sphere) IntersectRay(origin, dir geom.Point3) (float64, bool) {
	oc := origin.Sub(s.Center)
	a := dir.Dot(dir)
	if a == 0 {
		return 0, false
	}
	b := 2 * oc.Dot(dir)
	c := oc.Dot(oc) - s.Radius*s.Radius
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	if t := (-b - sq) / (2 * a); t > 1e-9 {
		return t, true
	}
	if t := (-b + sq) / (2 * a); t > 1e-9 {
		return t, true
	}
	return 0, false
}

// Bounds implements Shape.
func (s Sphere) Bounds() geom.Box {
	r := geom.P(s.Radius, s.Radius, s.Radius)
	return geom.Box{Min: s.Center.Sub(r), Max: s.Center.Add(r)}
}

// Ellipsoid is an axis-aligned ellipsoid with per-axis semi-axes.
type Ellipsoid struct {
	Center geom.Point3
	Semi   geom.Point3 // semi-axis lengths along x, y, z (all > 0)
}

var _ Shape = Ellipsoid{}

// IntersectRay scales space so the ellipsoid becomes the unit sphere,
// intersects there, and reports t in the original parameterization (valid
// because the scaling is linear in t).
func (e Ellipsoid) IntersectRay(origin, dir geom.Point3) (float64, bool) {
	o := origin.Sub(e.Center)
	o = geom.P(o.X/e.Semi.X, o.Y/e.Semi.Y, o.Z/e.Semi.Z)
	d := geom.P(dir.X/e.Semi.X, dir.Y/e.Semi.Y, dir.Z/e.Semi.Z)
	return Sphere{Radius: 1}.IntersectRay(o, d)
}

// Bounds implements Shape.
func (e Ellipsoid) Bounds() geom.Box {
	return geom.Box{Min: e.Center.Sub(e.Semi), Max: e.Center.Add(e.Semi)}
}

// VCylinder is a finite vertical (z-axis-aligned) cylinder — legs, poles,
// trash cans, tree trunks.
type VCylinder struct {
	Base   geom.Point3 // center of the bottom disk
	Radius float64
	Height float64
}

var _ Shape = VCylinder{}

// IntersectRay intersects with the infinite cylinder then clips to the
// height range; cap disks are ignored (top-down LiDAR rays at walkway
// distances graze the side surface, and cap hits are visually identical
// to side hits at these resolutions).
func (v VCylinder) IntersectRay(origin, dir geom.Point3) (float64, bool) {
	ox, oy := origin.X-v.Base.X, origin.Y-v.Base.Y
	a := dir.X*dir.X + dir.Y*dir.Y
	if a == 0 {
		return 0, false // vertical ray: side surface unreachable
	}
	b := 2 * (ox*dir.X + oy*dir.Y)
	c := ox*ox + oy*oy - v.Radius*v.Radius
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	for _, t := range [2]float64{(-b - sq) / (2 * a), (-b + sq) / (2 * a)} {
		if t <= 1e-9 {
			continue
		}
		z := origin.Z + t*dir.Z
		if z >= v.Base.Z && z <= v.Base.Z+v.Height {
			return t, true
		}
	}
	return 0, false
}

// Bounds implements Shape.
func (v VCylinder) Bounds() geom.Box {
	return geom.Box{
		Min: geom.P(v.Base.X-v.Radius, v.Base.Y-v.Radius, v.Base.Z),
		Max: geom.P(v.Base.X+v.Radius, v.Base.Y+v.Radius, v.Base.Z+v.Height),
	}
}

// BoxShape is an axis-aligned solid box — benches, walls, parcels.
type BoxShape struct {
	Box geom.Box
}

var _ Shape = BoxShape{}

// IntersectRay uses the slab method.
func (b BoxShape) IntersectRay(origin, dir geom.Point3) (float64, bool) {
	tmin, tmax := math.Inf(-1), math.Inf(1)
	for axis := 0; axis < 3; axis++ {
		o, d := origin.Coord(axis), dir.Coord(axis)
		lo, hi := b.Box.Min.Coord(axis), b.Box.Max.Coord(axis)
		if d == 0 {
			if o < lo || o > hi {
				return 0, false
			}
			continue
		}
		t1, t2 := (lo-o)/d, (hi-o)/d
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tmin = math.Max(tmin, t1)
		tmax = math.Min(tmax, t2)
		if tmin > tmax {
			return 0, false
		}
	}
	if tmin > 1e-9 {
		return tmin, true
	}
	if tmax > 1e-9 {
		return tmax, true // ray starts inside
	}
	return 0, false
}

// Bounds implements Shape.
func (b BoxShape) Bounds() geom.Box { return b.Box }

// Group composes shapes into one object (e.g. a human body of several
// primitives). Its intersection is the nearest hit of any member.
type Group struct {
	Shapes []Shape

	bounds geom.Box
	sealed bool
}

var _ Shape = (*Group)(nil)

// NewGroup builds a group and precomputes its bounds.
func NewGroup(shapes ...Shape) *Group {
	g := &Group{Shapes: shapes}
	b := geom.EmptyBox()
	for _, s := range shapes {
		b = b.Union(s.Bounds())
	}
	g.bounds = b
	g.sealed = true
	return g
}

// IntersectRay implements Shape; a cheap bounds check rejects rays that
// miss the whole group.
func (g *Group) IntersectRay(origin, dir geom.Point3) (float64, bool) {
	if g.sealed && !rayHitsBox(origin, dir, g.bounds) {
		return 0, false
	}
	best := math.Inf(1)
	hit := false
	for _, s := range g.Shapes {
		if t, ok := s.IntersectRay(origin, dir); ok && t < best {
			best, hit = t, true
		}
	}
	if !hit {
		return 0, false
	}
	return best, true
}

// Bounds implements Shape.
func (g *Group) Bounds() geom.Box {
	if g.sealed {
		return g.bounds
	}
	b := geom.EmptyBox()
	for _, s := range g.Shapes {
		b = b.Union(s.Bounds())
	}
	return b
}

// rayHitsBox is the slab test without the hit-parameter bookkeeping.
func rayHitsBox(origin, dir geom.Point3, box geom.Box) bool {
	tmin, tmax := 0.0, math.Inf(1)
	for axis := 0; axis < 3; axis++ {
		o, d := origin.Coord(axis), dir.Coord(axis)
		lo, hi := box.Min.Coord(axis), box.Max.Coord(axis)
		if d == 0 {
			if o < lo || o > hi {
				return false
			}
			continue
		}
		t1, t2 := (lo-o)/d, (hi-o)/d
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tmin = math.Max(tmin, t1)
		tmax = math.Min(tmax, t2)
		if tmin > tmax {
			return false
		}
	}
	return true
}
