package lidarsim

import (
	"math"
	"math/rand"

	"hawccc/internal/geom"
)

// SensorConfig models a pole-mounted 32-channel spinning LiDAR restricted
// to the walkway sector (Section III: ~90° of azimuth instead of the full
// 360° scan).
type SensorConfig struct {
	// Channels is the number of laser beams in the vertical fan.
	Channels int
	// ElevationMinDeg/ElevationMaxDeg bound the fan. The defaults
	// concentrate the fan on the walkway band the deployment observes
	// (the OS0's full ±45° fan mostly stares at sky and pole shadow from
	// a 3 m mount; only the downward beams return walkway data).
	ElevationMinDeg, ElevationMaxDeg float64
	// AzimuthMinDeg/AzimuthMaxDeg bound the horizontal sector; x-forward
	// is 0°, positive toward +y.
	AzimuthMinDeg, AzimuthMaxDeg float64
	// AzimuthSteps is the number of horizontal samples across the sector.
	AzimuthSteps int
	// MaxRange is the maximum reliable return distance (m).
	MaxRange float64
	// RangeNoiseStd is the σ of Gaussian range noise (m).
	RangeNoiseStd float64
	// BaseDropout is the probability a valid return is lost at zero range;
	// dropout grows linearly to BaseDropout+RangeDropout at MaxRange,
	// reproducing the paper's weak-reflection point loss beyond ~35 m.
	BaseDropout, RangeDropout float64
	// GroundReturnProb is the probability a ground-plane hit produces a
	// return; ground returns carry extra upward noise (≤ ~0.4 m per the
	// paper's empirical observation).
	GroundReturnProb float64
	// GroundNoiseMax is the maximum upward displacement of ground returns.
	GroundNoiseMax float64
}

// DefaultSensorConfig returns the deployment configuration used throughout
// the experiments. The 32-beam fan is concentrated on the elevation band
// the ROI subtends from the 3 m mount (ground at 12 m is at −14°, heads at
// 35 m at −1.6°), and the azimuth resolution matches the sensor's fine
// horizontal mode; together these reproduce the paper's data regime of
// roughly 324-point single-person captures (each paper sample is 324×3).
func DefaultSensorConfig() SensorConfig {
	return SensorConfig{
		Channels:         32,
		ElevationMinDeg:  -16,
		ElevationMaxDeg:  -1,
		AzimuthMinDeg:    -45,
		AzimuthMaxDeg:    45,
		AzimuthSteps:     1024,
		MaxRange:         45,
		RangeNoiseStd:    0.02,
		BaseDropout:      0.05,
		RangeDropout:     0.45,
		GroundReturnProb: 0.04,
		GroundNoiseMax:   0.4,
	}
}

// Scene is a set of objects visible to the sensor. Objects are labeled so
// datasets can carry exact ground truth.
type Scene struct {
	// Humans are the pedestrian bodies in the scene.
	Humans []*Group
	// Objects are non-human structures.
	Objects []*Group
}

// AddHuman places a pedestrian and returns its index.
func (s *Scene) AddHuman(g *Group) int {
	s.Humans = append(s.Humans, g)
	return len(s.Humans) - 1
}

// AddObject places a non-human object and returns its index.
func (s *Scene) AddObject(g *Group) int {
	s.Objects = append(s.Objects, g)
	return len(s.Objects) - 1
}

// HitKind labels what a simulated return came from.
type HitKind int

// Return sources.
const (
	HitHuman HitKind = iota
	HitObject
	HitGround
)

// Return is one labeled LiDAR return.
type Return struct {
	Point geom.Point3
	Kind  HitKind
	// ID is the index of the human or object hit (−1 for ground).
	ID int
}

// Sensor scans scenes into labeled point clouds.
type Sensor struct {
	cfg SensorConfig
	rng *rand.Rand

	// Precomputed beam directions: dirs[ch][az].
	dirs [][]geom.Point3
}

// NewSensor builds a sensor with the given configuration; rng drives all
// stochastic effects (noise, dropout) and should be seeded per experiment
// for reproducibility.
func NewSensor(cfg SensorConfig, rng *rand.Rand) *Sensor {
	s := &Sensor{cfg: cfg, rng: rng}
	s.dirs = make([][]geom.Point3, cfg.Channels)
	for ch := 0; ch < cfg.Channels; ch++ {
		elev := cfg.ElevationMinDeg
		if cfg.Channels > 1 {
			elev += (cfg.ElevationMaxDeg - cfg.ElevationMinDeg) * float64(ch) / float64(cfg.Channels-1)
		}
		elevRad := elev * math.Pi / 180
		row := make([]geom.Point3, cfg.AzimuthSteps)
		for az := 0; az < cfg.AzimuthSteps; az++ {
			azDeg := cfg.AzimuthMinDeg
			if cfg.AzimuthSteps > 1 {
				azDeg += (cfg.AzimuthMaxDeg - cfg.AzimuthMinDeg) * float64(az) / float64(cfg.AzimuthSteps-1)
			}
			azRad := azDeg * math.Pi / 180
			row[az] = geom.P(
				math.Cos(elevRad)*math.Cos(azRad),
				math.Cos(elevRad)*math.Sin(azRad),
				math.Sin(elevRad),
			)
		}
		s.dirs[ch] = row
	}
	return s
}

// Config returns the sensor configuration.
func (s *Sensor) Config() SensorConfig { return s.cfg }

// Scan casts the full beam fan over the scene and returns the labeled
// returns. The origin is the sensor position (0,0,0).
func (s *Sensor) Scan(scene *Scene) []Return {
	return s.ScanInto(scene, nil)
}

// ScanInto is Scan appending into buf[:0], so a streaming capture loop
// can recycle one returns buffer across frames instead of allocating a
// fresh slice per sweep. The stochastic draws (noise, dropout) consume
// the sensor's RNG identically to Scan, so a given seed produces the
// same returns through either entry point.
func (s *Sensor) ScanInto(scene *Scene, buf []Return) []Return {
	out := buf[:0]
	origin := geom.Point3{}
	cfg := s.cfg

	// Broad phase: cached bounds per object.
	humanBounds := make([]geom.Box, len(scene.Humans))
	for i, h := range scene.Humans {
		humanBounds[i] = h.Bounds()
	}
	objectBounds := make([]geom.Box, len(scene.Objects))
	for i, o := range scene.Objects {
		objectBounds[i] = o.Bounds()
	}

	for ch := range s.dirs {
		for _, dir := range s.dirs[ch] {
			bestT := math.Inf(1)
			bestKind := HitGround
			bestID := -1

			for i, h := range scene.Humans {
				if !rayHitsBox(origin, dir, humanBounds[i]) {
					continue
				}
				if t, ok := h.IntersectRay(origin, dir); ok && t < bestT {
					bestT, bestKind, bestID = t, HitHuman, i
				}
			}
			for i, o := range scene.Objects {
				if !rayHitsBox(origin, dir, objectBounds[i]) {
					continue
				}
				if t, ok := o.IntersectRay(origin, dir); ok && t < bestT {
					bestT, bestKind, bestID = t, HitObject, i
				}
			}

			// Ground plane z = GroundZ.
			if dir.Z < 0 {
				tg := (GroundZ - origin.Z) / dir.Z
				if tg > 0 && tg < bestT {
					bestT, bestKind, bestID = tg, HitGround, -1
				}
			}

			if math.IsInf(bestT, 1) || bestT > cfg.MaxRange {
				continue
			}

			// Dropout grows with range.
			drop := cfg.BaseDropout + cfg.RangeDropout*(bestT/cfg.MaxRange)
			if bestKind == HitGround {
				// Ground grazing angles return rarely.
				if s.rng.Float64() > cfg.GroundReturnProb {
					continue
				}
			} else if s.rng.Float64() < drop {
				continue
			}

			// Range noise along the beam.
			t := bestT + s.rng.NormFloat64()*cfg.RangeNoiseStd
			p := origin.Add(dir.Scale(t))
			if bestKind == HitGround {
				// Ground returns scatter upward (pulleys, grass, retro-
				// reflection): uniform in [0, GroundNoiseMax].
				p.Z += s.rng.Float64() * cfg.GroundNoiseMax
			}
			out = append(out, Return{Point: p, Kind: bestKind, ID: bestID})
		}
	}
	return out
}

// CloudOf extracts the bare point cloud from labeled returns.
func CloudOf(returns []Return) geom.Cloud {
	return CloudOfInto(make(geom.Cloud, 0, len(returns)), returns)
}

// CloudOfInto appends the bare points of returns to dst and returns the
// extended slice — CloudOf's pooled-buffer companion for per-frame
// callers (pass dst[:0] to reuse a frame buffer).
func CloudOfInto(dst geom.Cloud, returns []Return) geom.Cloud {
	if need := len(dst) + len(returns); cap(dst) < need {
		grown := make(geom.Cloud, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for _, r := range returns {
		dst = append(dst, r.Point)
	}
	return dst
}

// CloudOfSoAInto appends the bare points of returns to a
// structure-of-arrays cloud (typically Reset between frames), rounding
// coordinates to float32 — the zero-copy entry into the SoA geometry
// flow.
func CloudOfSoAInto(dst *geom.CloudSoA, returns []Return) {
	dst.Grow(len(returns))
	for _, r := range returns {
		dst.Append(r.Point)
	}
}

// SplitByKind partitions returns into human, object, and ground clouds.
func SplitByKind(returns []Return) (human, object, ground geom.Cloud) {
	for _, r := range returns {
		switch r.Kind {
		case HitHuman:
			human = append(human, r.Point)
		case HitObject:
			object = append(object, r.Point)
		default:
			ground = append(ground, r.Point)
		}
	}
	return human, object, ground
}
