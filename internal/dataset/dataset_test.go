package dataset

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"hawccc/internal/ground"
)

func TestSinglePersonSamples(t *testing.T) {
	g := NewGenerator(1)
	samples := g.SinglePerson(20)
	if len(samples) != 20 {
		t.Fatalf("got %d samples", len(samples))
	}
	roi := g.ROI()
	for i, s := range samples {
		if !s.Human {
			t.Fatalf("sample %d not labeled human", i)
		}
		if len(s.Cloud) < MinVisiblePoints {
			t.Fatalf("sample %d has %d points < MinVisiblePoints", i, len(s.Cloud))
		}
		for _, p := range s.Cloud {
			if !roi.Contains(p) {
				t.Fatalf("sample %d point %v outside ROI", i, p)
			}
			if p.Z < ground.DefaultZMin {
				t.Fatalf("sample %d retains ground noise at z=%v", i, p.Z)
			}
		}
	}
}

func TestObjectSamples(t *testing.T) {
	g := NewGenerator(2)
	samples := g.Objects(20)
	if len(samples) != 20 {
		t.Fatalf("got %d samples", len(samples))
	}
	for i, s := range samples {
		if s.Human {
			t.Fatalf("object sample %d labeled human", i)
		}
		if len(s.Cloud) < MinVisiblePoints {
			t.Fatalf("object sample %d too small", i)
		}
	}
}

func TestClassificationBalanced(t *testing.T) {
	g := NewGenerator(3)
	samples := g.Classification(15)
	if len(samples) != 30 {
		t.Fatalf("got %d samples, want 30", len(samples))
	}
	humans := 0
	for _, s := range samples {
		if s.Human {
			humans++
		}
	}
	if humans != 15 {
		t.Errorf("humans = %d, want 15", humans)
	}
}

func TestCrowdFrames(t *testing.T) {
	g := NewGenerator(4)
	frames := g.CrowdFrames(5, 1, 4, 2)
	if len(frames) != 5 {
		t.Fatalf("got %d frames", len(frames))
	}
	for i, f := range frames {
		if len(f.Cloud) == 0 {
			t.Fatalf("frame %d empty", i)
		}
		if f.Count < 0 || f.Count > 4 {
			t.Fatalf("frame %d count %d outside [0,4]", i, f.Count)
		}
	}
}

func TestCrowdFramesPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(1).CrowdFrames(1, 5, 2, 0)
}

func TestHighDensityFrame(t *testing.T) {
	g := NewGenerator(5)
	pool := g.SinglePerson(10)
	objects := g.Objects(5)
	rng := rand.New(rand.NewSource(9))
	f := HighDensityFrame(rng, pool, objects, 20)
	if f.Count != 20 {
		t.Errorf("Count = %d, want 20", f.Count)
	}
	if len(f.Cloud) < 20*MinVisiblePoints {
		t.Errorf("high-density cloud suspiciously small: %d points", len(f.Cloud))
	}
	// Offsets are bounded: the synthetic crowd spans 7–40 m from the
	// sensor (12−5 to 35+5) plus body extent.
	b := f.Cloud.Bounds()
	if b.Min.X < 7-1.5 || b.Max.X > 40+1.5 {
		t.Errorf("x bounds [%v, %v] exceed the 7–40 m envelope", b.Min.X, b.Max.X)
	}
}

func TestHighDensityFrameSeparation(t *testing.T) {
	g := NewGenerator(15)
	pool := g.SinglePerson(30)
	rng := rand.New(rand.NewSource(4))
	f := HighDensityFrame(rng, pool, nil, 40)
	if f.Count != 40 {
		t.Fatalf("Count = %d", f.Count)
	}
	// With rejection sampling at moderate density, most pairs respect the
	// separation; a sanity check that the frame is not one coincident blob.
	b := f.Cloud.Bounds()
	if b.Size().X < 10 || b.Size().Y < 5 {
		t.Errorf("crowd suspiciously compact: %v", b.Size())
	}
}

func TestHighDensityFramePanicsOnEmptyPool(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HighDensityFrame(rand.New(rand.NewSource(1)), nil, nil, 5)
}

func TestTrainTestSplit(t *testing.T) {
	g := NewGenerator(6)
	samples := g.Classification(25) // 50 total
	split := TrainTestSplit(rand.New(rand.NewSource(1)), samples, 0.8)
	if len(split.Train) != 40 || len(split.Test) != 10 {
		t.Errorf("split sizes %d/%d, want 40/10", len(split.Train), len(split.Test))
	}
	// Splitting must not mutate the input order (copy semantics).
	if &samples[0] == &split.Train[0] {
		// Same backing array start would mean shuffle hit the caller.
		t.Log("note: split copies input; addresses differ")
	}
}

func TestSubset(t *testing.T) {
	g := NewGenerator(7)
	samples := g.Classification(50) // 100 total
	rng := rand.New(rand.NewSource(2))

	tenth := Subset(rng, samples, 0.1)
	if len(tenth) != 10 {
		t.Errorf("10%% subset = %d samples, want 10", len(tenth))
	}
	// Balanced: half humans.
	humans := 0
	for _, s := range tenth {
		if s.Human {
			humans++
		}
	}
	if humans != 5 {
		t.Errorf("subset humans = %d, want 5", humans)
	}

	// Tiny fraction floors at 2 with both classes present.
	tiny := Subset(rng, samples, 0.001)
	if len(tiny) != 2 {
		t.Fatalf("tiny subset = %d, want 2", len(tiny))
	}
	if tiny[0].Human == tiny[1].Human {
		t.Error("tiny subset should span both classes")
	}

	if got := Subset(rng, samples, 1.5); len(got) != len(samples) {
		t.Error("frac >= 1 should return all")
	}
}

func TestMaxPoints(t *testing.T) {
	g := NewGenerator(8)
	samples := g.SinglePerson(10)
	maxN := MaxPoints(samples)
	if maxN < MinVisiblePoints {
		t.Errorf("MaxPoints = %d", maxN)
	}
	for _, s := range samples {
		if len(s.Cloud) > maxN {
			t.Error("MaxPoints not maximal")
		}
	}
	if MaxPoints(nil) != 0 {
		t.Error("empty MaxPoints should be 0")
	}
}

func TestSampleRoundTrip(t *testing.T) {
	g := NewGenerator(9)
	samples := g.Classification(5)
	var buf bytes.Buffer
	if err := WriteSamples(&buf, samples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("round trip %d samples, want %d", len(got), len(samples))
	}
	for i := range got {
		if got[i].Human != samples[i].Human || len(got[i].Cloud) != len(samples[i].Cloud) {
			t.Fatalf("sample %d mismatch", i)
		}
		// float32 round trip: coordinates within 1e-4.
		for j := range got[i].Cloud {
			d := got[i].Cloud[j].Dist(samples[i].Cloud[j])
			if d > 1e-4 {
				t.Fatalf("sample %d point %d drifted %v", i, j, d)
			}
		}
	}
}

func TestFrameRoundTripViaFiles(t *testing.T) {
	g := NewGenerator(10)
	frames := g.CrowdFrames(3, 1, 2, 1)
	path := filepath.Join(t.TempDir(), "frames.hwcc")
	if err := SaveFrames(path, frames); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrames(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d frames", len(got))
	}
	for i := range got {
		if got[i].Count != frames[i].Count || len(got[i].Cloud) != len(frames[i].Cloud) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestReadRejectsCorruptData(t *testing.T) {
	if _, err := ReadSamples(bytes.NewReader([]byte("XXXX___"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Frames file read as samples must fail on kind.
	var buf bytes.Buffer
	if err := WriteFrames(&buf, []Frame{{Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSamples(&buf); err == nil {
		t.Error("kind mismatch accepted")
	}
	// Truncated stream.
	var buf2 bytes.Buffer
	g := NewGenerator(11)
	if err := WriteSamples(&buf2, g.SinglePerson(2)); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()-10]
	if _, err := ReadSamples(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadSamples(filepath.Join(t.TempDir(), "nope.hwcc")); err == nil {
		t.Error("missing file should error")
	}
	if _, err := LoadFrames(filepath.Join(t.TempDir(), "nope.hwcc")); err == nil {
		t.Error("missing file should error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(77).Classification(5)
	b := NewGenerator(77).Classification(5)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Human != b[i].Human || len(a[i].Cloud) != len(b[i].Cloud) {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
}

func TestCrowdSourceMatchesCrowdFrames(t *testing.T) {
	want := NewGenerator(51).CrowdFrames(5, 1, 4, 2)
	src := NewGenerator(51).CrowdSource(5, 1, 4, 2)
	for i := range want {
		got, err := src.NextFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Count != want[i].Count || len(got.Cloud) != len(want[i].Cloud) {
			t.Fatalf("frame %d: streamed count=%d points=%d, batch count=%d points=%d",
				i, got.Count, len(got.Cloud), want[i].Count, len(want[i].Cloud))
		}
		for p := range want[i].Cloud {
			if got.Cloud[p] != want[i].Cloud[p] {
				t.Fatalf("frame %d point %d differs", i, p)
			}
		}
	}
	if _, err := src.NextFrame(); err != io.EOF {
		t.Fatalf("exhausted source returned %v, want io.EOF", err)
	}
}

func TestCrowdSourceUnbounded(t *testing.T) {
	src := NewGenerator(52).CrowdSource(-1, 1, 3, 1)
	for i := 0; i < 12; i++ {
		f, err := src.NextFrame()
		if err != nil {
			t.Fatalf("frame %d: unbounded source returned %v", i, err)
		}
		if f.Count < 1 || f.Count > 3 {
			t.Errorf("frame %d: truth %d outside [1, 3]", i, f.Count)
		}
		if len(f.Cloud) == 0 {
			t.Errorf("frame %d: empty capture", i)
		}
	}
}
