// Package dataset generates and manages the labeled LiDAR datasets the
// evaluation needs. It mirrors the paper's two curated datasets
// (Section VII-A): a single-person dataset for detection accuracy, and a
// multi-person dataset for crowd counting, plus the object-only pool used
// both as the negative class and as the source of noise-controlled
// up-sampling points. Where the paper collected a year of campus captures,
// this package synthesizes scenes and scans them with internal/lidarsim
// (see DESIGN.md for the substitution argument).
package dataset

import (
	"fmt"
	"io"
	"math/rand"

	"hawccc/internal/geom"
	"hawccc/internal/ground"
	"hawccc/internal/lidarsim"
)

// Sample is one cluster-level labeled capture for the human/object
// classification task. The paper's annotators lasso-selected the human
// pattern from each capture; here the simulator's labels are exact.
type Sample struct {
	Cloud geom.Cloud
	Human bool
}

// Frame is one full-scene capture with a crowd-count ground truth, used
// for the counting task.
type Frame struct {
	Cloud geom.Cloud
	Count int
}

// MinVisiblePoints is how many post-ingestion returns a pedestrian must
// produce to be counted in a frame's ground truth. The paper's ground
// truth came from human annotators who can only label people that produce
// a visible pattern; five returns is the smallest pattern our annota-
// bility proxy accepts.
const MinVisiblePoints = 5

// Generator produces datasets from simulated scans. All randomness flows
// from the supplied rng so experiments are reproducible.
type Generator struct {
	// HardObjects widens the object population with the human-confusable
	// extension kinds (saplings, umbrellas, scooters, luggage) — a
	// robustness scenario beyond the paper's deployment data.
	HardObjects bool

	sensor *lidarsim.Sensor
	roi    ground.ROI
	rng    *rand.Rand
}

// NewGenerator builds a Generator with the deployment sensor configuration
// and ROI.
func NewGenerator(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		sensor: lidarsim.NewSensor(lidarsim.DefaultSensorConfig(), rng),
		roi:    ground.DefaultROI(),
		rng:    rng,
	}
}

// ROI returns the generator's region of interest.
func (g *Generator) ROI() ground.ROI { return g.roi }

func (g *Generator) objectKind() lidarsim.ObjectKind {
	if g.HardObjects {
		return lidarsim.RandomObjectKindHard(g.rng)
	}
	return lidarsim.RandomObjectKind(g.rng)
}

// randomWalkwayPos picks a pedestrian position: anywhere along the ROI,
// biased to the center band of the walkway where people actually walk.
func (g *Generator) randomWalkwayPos() (x, y float64) {
	x = g.roi.XMin + 1 + g.rng.Float64()*(g.roi.XMax-g.roi.XMin-2)
	y = g.rng.Float64()*3.8 - 1.9 // center band ±1.9 m
	return x, y
}

// randomObjectPos picks an object position: campus objects (bushes,
// benches, signs, racks) line the walkway edges, with occasional ground
// clutter toward the center. This coordinate separation between the
// classes is the structure the paper's Figure 6 histograms show and what
// makes object-data noise "controlled" — statistically distinct from
// human returns.
func (g *Generator) randomObjectPos() (x, y float64) {
	x = g.roi.XMin + 1 + g.rng.Float64()*(g.roi.XMax-g.roi.XMin-2)
	side := 1.0
	if g.rng.Float64() < 0.5 {
		side = -1
	}
	if g.rng.Float64() < 0.75 {
		y = side * (1.3 + g.rng.Float64()*1.1) // edge band ±[1.3, 2.4] m
	} else {
		y = g.rng.Float64()*3.0 - 1.5 // occasional clutter near the center
	}
	return x, y
}

// SinglePerson generates n single-person samples: one pedestrian scanned
// alone, the cloud being the pedestrian's own returns after ingestion.
// Samples whose pedestrian is essentially invisible (fewer than
// MinVisiblePoints returns) are re-drawn, as the paper's dataset only
// contains annotated captures.
func (g *Generator) SinglePerson(n int) []Sample {
	out := make([]Sample, 0, n)
	for len(out) < n {
		x, y := g.randomWalkwayPos()
		scene := &lidarsim.Scene{}
		scene.AddHuman(lidarsim.NewHuman(lidarsim.RandomHumanParams(g.rng, x, y)))
		human, _, _ := lidarsim.SplitByKind(g.sensor.Scan(scene))
		cloud := ground.Ingest(human, g.roi)
		if len(cloud) < MinVisiblePoints {
			continue
		}
		out = append(out, Sample{Cloud: cloud, Human: true})
	}
	return out
}

// Objects generates n object-only samples: one random campus object
// scanned alone, the cloud being the object's returns after ingestion.
func (g *Generator) Objects(n int) []Sample {
	out := make([]Sample, 0, n)
	for len(out) < n {
		x, y := g.randomObjectPos()
		kind := g.objectKind()
		scene := &lidarsim.Scene{}
		scene.AddObject(lidarsim.NewObject(kind, g.rng, x, y))
		_, object, _ := lidarsim.SplitByKind(g.sensor.Scan(scene))
		cloud := ground.Ingest(object, g.roi)
		if len(cloud) < MinVisiblePoints {
			continue
		}
		out = append(out, Sample{Cloud: cloud, Human: false})
	}
	return out
}

// Classification builds a balanced single-person detection dataset of
// nPerClass humans and nPerClass objects, shuffled.
func (g *Generator) Classification(nPerClass int) []Sample {
	samples := append(g.SinglePerson(nPerClass), g.Objects(nPerClass)...)
	g.rng.Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
	return samples
}

// CrowdFrames generates n full-scene frames each containing between
// minPeople and maxPeople pedestrians plus nObjects random objects. The
// frame cloud is every return (human, object, ground) before ingestion —
// the counting pipeline owns its own preprocessing — and Count is the
// number of pedestrians visible per MinVisiblePoints.
func (g *Generator) CrowdFrames(n, minPeople, maxPeople, nObjects int) []Frame {
	if maxPeople < minPeople {
		panic(fmt.Sprintf("dataset: maxPeople %d < minPeople %d", maxPeople, minPeople))
	}
	frames := make([]Frame, 0, n)
	var buf []lidarsim.Return
	for len(frames) < n {
		var f Frame
		f, buf = g.nextCrowdFrame(minPeople, maxPeople, nObjects, buf)
		frames = append(frames, f)
	}
	return frames
}

// nextCrowdFrame generates one crowd frame, scanning into buf (recycled
// across calls) and allocating only the retained frame cloud. It draws
// from the generator's RNG in exactly the order CrowdFrames historically
// did, so materialized and streamed datasets from the same seed are
// identical frame for frame.
func (g *Generator) nextCrowdFrame(minPeople, maxPeople, nObjects int, buf []lidarsim.Return) (Frame, []lidarsim.Return) {
	k := minPeople + g.rng.Intn(maxPeople-minPeople+1)
	scene := &lidarsim.Scene{}
	for i := 0; i < k; i++ {
		x, y := g.randomWalkwayPos()
		scene.AddHuman(lidarsim.NewHuman(lidarsim.RandomHumanParams(g.rng, x, y)))
	}
	for i := 0; i < nObjects; i++ {
		x, y := g.randomObjectPos()
		scene.AddObject(lidarsim.NewObject(g.objectKind(), g.rng, x, y))
	}
	returns := g.sensor.ScanInto(scene, buf)
	// Ground truth: pedestrians with a visible post-ingest pattern.
	perHuman := make(map[int]int)
	for _, r := range returns {
		if r.Kind == lidarsim.HitHuman && g.roi.Contains(r.Point) && r.Point.Z >= ground.DefaultZMin {
			perHuman[r.ID]++
		}
	}
	count := 0
	for _, c := range perHuman {
		if c >= MinVisiblePoints {
			count++
		}
	}
	return Frame{Cloud: lidarsim.CloudOf(returns), Count: count}, returns
}

// CrowdSource streams crowd frames one at a time — the FrameSource the
// pole node's streaming capture loop consumes. Unlike CrowdFrames it
// never materializes the frame set: each NextFrame call scans one fresh
// scene into a recycled returns buffer, so an arbitrarily long run holds
// one frame at a time. n bounds the stream (io.EOF after n frames);
// n < 0 streams forever. The source draws from the generator's RNG, so
// it must not be interleaved with other generation on the same
// Generator if reproducibility matters, and it is not safe for
// concurrent NextFrame calls.
type CrowdSource struct {
	g                              *Generator
	remaining                      int
	minPeople, maxPeople, nObjects int
	buf                            []lidarsim.Return
}

// CrowdSource returns a streaming generator of crowd frames with the
// same per-frame distribution as CrowdFrames(n, ...).
func (g *Generator) CrowdSource(n, minPeople, maxPeople, nObjects int) *CrowdSource {
	if maxPeople < minPeople {
		panic(fmt.Sprintf("dataset: maxPeople %d < minPeople %d", maxPeople, minPeople))
	}
	return &CrowdSource{
		g: g, remaining: n,
		minPeople: minPeople, maxPeople: maxPeople, nObjects: nObjects,
	}
}

// NextFrame yields the next frame, or io.EOF once the bounded stream is
// exhausted.
func (s *CrowdSource) NextFrame() (Frame, error) {
	if s.remaining == 0 {
		return Frame{}, io.EOF
	}
	if s.remaining > 0 {
		s.remaining--
	}
	var f Frame
	f, s.buf = s.g.nextCrowdFrame(s.minPeople, s.maxPeople, s.nObjects, s.buf)
	return f, nil
}

// MinSeparation is the minimum centroid distance between two synthetic
// pedestrians in high-density frames (meters): bodies cannot overlap, and
// neither LiDAR clustering nor the paper's human annotators can resolve
// coincident people.
const MinSeparation = 0.85

// HighDensityFrame composes a synthetic high-density frame following the
// paper's scalability methodology (Section VII-D): each of the
// numPedestrians single-person clouds keeps its captured walkway position
// and receives a uniform offset in [−5, 5] m on x and y, so the synthetic
// crowd spans 7 m (12−5) to 40 m (35+5) from the sensor exactly as the
// paper describes; object clouds are mixed in at one per two pedestrians.
// Placements closer than MinSeparation to an already-placed pedestrian
// are re-drawn (bounded attempts). The ground truth equals numPedestrians.
func HighDensityFrame(rng *rand.Rand, pool []Sample, objectPool []Sample, numPedestrians int) Frame {
	if len(pool) == 0 {
		panic("dataset: empty single-person pool")
	}
	var cloud geom.Cloud
	placed := make([]geom.Point3, 0, numPedestrians)
	for i := 0; i < numPedestrians; i++ {
		src := pool[rng.Intn(len(pool))].Cloud
		base := src.Centroid()
		var offX, offY float64
		for attempt := 0; attempt < 50; attempt++ {
			offX = rng.Float64()*10 - 5
			offY = rng.Float64()*10 - 5
			ok := true
			for _, q := range placed {
				dx := base.X + offX - q.X
				dy := base.Y + offY - q.Y
				if dx*dx+dy*dy < MinSeparation*MinSeparation {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		placed = append(placed, geom.P(base.X+offX, base.Y+offY, 0))
		cloud = geom.AppendTranslated(cloud, src, geom.P(offX, offY, 0))
	}
	if len(objectPool) > 0 {
		for i := 0; i < numPedestrians/2; i++ {
			src := objectPool[rng.Intn(len(objectPool))].Cloud
			base := src.Centroid()
			var offX, offY float64
			// Objects keep clear of the placed pedestrians too: a bush
			// leaning on a person would merge their returns into one
			// cluster no annotator could separate either.
			for attempt := 0; attempt < 50; attempt++ {
				offX = rng.Float64()*10 - 5
				offY = rng.Float64()*10 - 5
				ok := true
				for _, q := range placed {
					dx := base.X + offX - q.X
					dy := base.Y + offY - q.Y
					if dx*dx+dy*dy < MinSeparation*MinSeparation {
						ok = false
						break
					}
				}
				if ok {
					break
				}
			}
			placed = append(placed, geom.P(base.X+offX, base.Y+offY, 0))
			cloud = geom.AppendTranslated(cloud, src, geom.P(offX, offY, 0))
		}
	}
	return Frame{Cloud: cloud, Count: numPedestrians}
}

// Split holds a train/test partition of classification samples.
type Split struct {
	Train, Test []Sample
}

// TrainTestSplit shuffles samples with rng and splits them at trainFrac
// (the paper uses a random 80:20 split).
func TrainTestSplit(rng *rand.Rand, samples []Sample, trainFrac float64) Split {
	s := append([]Sample(nil), samples...)
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	cut := int(float64(len(s)) * trainFrac)
	return Split{Train: s[:cut], Test: s[cut:]}
}

// Subset returns the first max(1, frac·len) samples of a class-balanced
// reshuffle — used by the limited-training-data robustness experiment
// (Figure 8b, down to 0.1% of the training data).
func Subset(rng *rand.Rand, samples []Sample, frac float64) []Sample {
	if frac >= 1 {
		return samples
	}
	n := int(float64(len(samples)) * frac)
	if n < 2 {
		n = 2 // at least one sample; keep both classes reachable
	}
	// Take a balanced subset: alternate humans and objects while available.
	var humans, objects []Sample
	for _, s := range samples {
		if s.Human {
			humans = append(humans, s)
		} else {
			objects = append(objects, s)
		}
	}
	rng.Shuffle(len(humans), func(i, j int) { humans[i], humans[j] = humans[j], humans[i] })
	rng.Shuffle(len(objects), func(i, j int) { objects[i], objects[j] = objects[j], objects[i] })
	out := make([]Sample, 0, n)
	for i := 0; len(out) < n; i++ {
		if i < len(humans) {
			out = append(out, humans[i])
		}
		if len(out) < n && i < len(objects) {
			out = append(out, objects[i])
		}
		if i >= len(humans) && i >= len(objects) {
			break
		}
	}
	return out
}

// MaxPoints returns the largest cloud size across samples — the paper's
// N_max, from which the up-sampling target N′max is derived.
func MaxPoints(samples []Sample) int {
	maxN := 0
	for _, s := range samples {
		if len(s.Cloud) > maxN {
			maxN = len(s.Cloud)
		}
	}
	return maxN
}
