// Package pole implements the smart blue light pole node (Figures 1–2):
// a capture loop that scans the walkway with the LiDAR simulator, runs the
// HAWC-CC counting pipeline on the edge, and streams count reports and
// compartment telemetry to the campus backend over the private network —
// raw point clouds never leave the pole, which is the privacy property the
// system is built around.
//
// Delivery is at-least-once: a report is resent after a reconnect if its
// ack never arrived, so a connection cut between backend receipt and ack
// can double-count one report, but no report is ever silently dropped.
package pole

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/obs"
	"hawccc/internal/telemetry"
	"hawccc/internal/wire"
)

// FrameSource yields raw LiDAR frames; the production implementation
// wraps the sensor, tests and demos wrap dataset generators.
type FrameSource interface {
	// NextFrame returns the next captured frame. It returns io.EOF when
	// the source is exhausted.
	NextFrame() (dataset.Frame, error)
}

// SliceSource replays a fixed set of frames.
type SliceSource struct {
	Frames []dataset.Frame
	next   int
}

var _ FrameSource = (*SliceSource)(nil)

// NextFrame implements FrameSource.
func (s *SliceSource) NextFrame() (dataset.Frame, error) {
	if s.next >= len(s.Frames) {
		return dataset.Frame{}, io.EOF
	}
	f := s.Frames[s.next]
	s.next++
	return f, nil
}

// DefaultReconnectWait is the pause before re-dialing a broken backend
// connection when Config.ReconnectWait is zero.
const DefaultReconnectWait = 100 * time.Millisecond

// Config parameterizes a pole node.
type Config struct {
	// PoleID identifies this pole on the campus network.
	PoleID uint32
	// Location is the human-readable walkway name.
	Location string
	// Zone is the campus zone this pole belongs to; the backend rolls
	// zone aggregates up for the query API. May be empty.
	Zone string
	// BackendAddr is the campus backend's TCP address.
	BackendAddr string
	// Pipeline is the counting framework run on each frame.
	Pipeline *counting.Pipeline
	// Source yields frames to process.
	Source FrameSource
	// FrameInterval paces the capture loop (0 = process as fast as
	// possible, used by tests and batch replays).
	FrameInterval time.Duration
	// Stream sizes the staged counting scheduler Run drives (per-stage
	// workers, bounded queue depth). The zero value selects
	// counting.DefaultStreamConfig.
	Stream counting.StreamConfig
	// Telemetry, when non-nil, is streamed alongside count reports (one
	// reading per frame).
	Telemetry []telemetry.Reading
	// Offload configures the edge/cloud classify offload (mode,
	// hysteresis thresholds, quantization scale). With a mode other than
	// counting.OffloadOff and Remote left nil, the node builds its own
	// quantized-wire offloader to BackendAddr on a dedicated connection;
	// a pre-set Remote is used as-is (tests inject loopbacks). The zero
	// value keeps every frame classified on the pole.
	Offload counting.OffloadConfig
	// ModelVersion fingerprints the classifier weights Pipeline runs
	// (models.HAWC.ModelVersion); it is announced in every hello and
	// stamped onto offloaded cluster batches so the backend can flag —
	// and refuse to classify across — weight-generation skew. Zero means
	// unversioned.
	ModelVersion uint32
	// MaxReconnects is how many times the node re-dials the backend when
	// a delivery fails, per report; after a successful ack the budget
	// resets. 0 keeps the historical fail-fast behavior.
	MaxReconnects int
	// ReconnectWait is the pause before each re-dial (0 selects
	// DefaultReconnectWait).
	ReconnectWait time.Duration
	// Obs, when non-nil, registers the node's metrics (frames processed,
	// acked reports, reconnects, alerts received, report RTT, wire bytes)
	// labeled pole="<id>". The node keeps private instruments either way,
	// so accessors like Reconnects work without a registry.
	Obs *obs.Registry
	// Logf, if non-nil, receives diagnostic output. Calls are serialized
	// by the node, so a shared sink never sees interleaved writes.
	Logf func(format string, args ...any)
}

// poleObs is the node's instrument set.
type poleObs struct {
	frames     *obs.Counter
	acked      *obs.Counter
	reconnects *obs.Counter
	alerts     *obs.Counter
	rtt        *obs.Histogram
	bytesOut   *obs.Counter
	bytesIn    *obs.Counter
	msgsOut    *obs.Counter
	msgsIn     *obs.Counter
}

// Node is a running pole.
type Node struct {
	cfg Config
	m   poleObs

	// connMu guards conn against the shutdown AfterFunc racing a
	// reconnect swap; wc is only touched by the Dial/Run goroutine.
	connMu  sync.Mutex
	conn    net.Conn
	stopped bool
	wc      *wire.Conn

	logMu sync.Mutex

	mu     sync.Mutex
	alerts []wire.Alert
	acked  uint64
	sent   uint64

	// offl is the node-owned offload transport (nil when offload is off
	// or the config injected its own Remote); offctl is the decision
	// controller handed to the stream scheduler.
	offl   *Offloader
	offctl *counting.OffloadController
}

// Dial connects the pole to the backend and performs the hello handshake.
func Dial(cfg Config) (*Node, error) {
	if cfg.Pipeline == nil {
		return nil, errors.New("pole: config needs a pipeline")
	}
	if cfg.Source == nil {
		return nil, errors.New("pole: config needs a frame source")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{cfg: cfg}
	n.initObs()
	if cfg.Offload.Mode != counting.OffloadOff {
		if n.cfg.Offload.Remote == nil {
			n.offl = NewOffloader(OffloaderConfig{
				BackendAddr:  cfg.BackendAddr,
				PoleID:       cfg.PoleID,
				Location:     cfg.Location,
				Zone:         cfg.Zone,
				ModelVersion: cfg.ModelVersion,
				BytesSent:    n.m.bytesOut, BytesReceived: n.m.bytesIn,
				MsgsSent: n.m.msgsOut, MsgsReceived: n.m.msgsIn,
			})
			n.cfg.Offload.Remote = n.offl
		}
		id := obs.L("pole", strconv.FormatUint(uint64(cfg.PoleID), 10))
		n.offctl = counting.NewOffloadController(n.cfg.Offload).Instrument(cfg.Obs, id)
	}
	if err := n.connect(); err != nil {
		return nil, err
	}
	return n, nil
}

// Offload returns the node's offload decision controller, or nil when
// offload is off.
func (n *Node) Offload() *counting.OffloadController { return n.offctl }

// initObs builds the instrument set: registry-backed when cfg.Obs is set,
// detached otherwise, so counters always count.
func (n *Node) initObs() {
	id := obs.L("pole", strconv.FormatUint(uint64(n.cfg.PoleID), 10))
	reg := n.cfg.Obs
	if reg == nil {
		n.m = poleObs{
			frames: &obs.Counter{}, acked: &obs.Counter{}, reconnects: &obs.Counter{},
			alerts: &obs.Counter{}, rtt: obs.NewHistogram(obs.LatencyBuckets()),
			bytesOut: &obs.Counter{}, bytesIn: &obs.Counter{},
			msgsOut: &obs.Counter{}, msgsIn: &obs.Counter{},
		}
		return
	}
	n.m = poleObs{
		frames:     reg.Counter("pole_frames_processed_total", "LiDAR frames captured and counted on the pole", id),
		acked:      reg.Counter("pole_reports_acked_total", "count reports acknowledged by the backend", id),
		reconnects: reg.Counter("pole_reconnects_total", "times the pole re-dialed a broken backend connection", id),
		alerts:     reg.Counter("pole_alerts_received_total", "alerts delivered to this pole by the backend", id),
		rtt:        reg.Histogram("pole_report_rtt_seconds", "report send to backend ack round-trip time", obs.LatencyBuckets(), id),
		bytesOut:   reg.Counter("pole_wire_bytes_sent_total", "framed bytes sent to the backend", id),
		bytesIn:    reg.Counter("pole_wire_bytes_received_total", "framed bytes received from the backend", id),
		msgsOut:    reg.Counter("pole_wire_messages_sent_total", "framed messages sent to the backend", id),
		msgsIn:     reg.Counter("pole_wire_messages_received_total", "framed messages received from the backend", id),
	}
}

// connect dials the backend, instruments the connection, and performs the
// hello handshake. Called by Dial and by reconnect.
func (n *Node) connect() error {
	conn, err := net.Dial("tcp", n.cfg.BackendAddr)
	if err != nil {
		return fmt.Errorf("pole: dial backend: %w", err)
	}
	wc := wire.NewConn(conn)
	wc.Instrument(n.m.bytesOut, n.m.bytesIn, n.m.msgsOut, n.m.msgsIn)
	hello := wire.Hello{PoleID: n.cfg.PoleID, Location: n.cfg.Location, Zone: n.cfg.Zone, ModelVersion: n.cfg.ModelVersion}
	if err := wc.Send(wire.MsgHello, wire.EncodeHello(hello)); err != nil {
		conn.Close()
		return fmt.Errorf("pole: hello: %w", err)
	}
	n.connMu.Lock()
	if n.stopped {
		n.connMu.Unlock()
		conn.Close()
		return net.ErrClosed
	}
	n.conn = conn
	n.connMu.Unlock()
	n.wc = wc
	return nil
}

// closeConn closes the current connection; with markStopped it also
// refuses any future connect (the shutdown path).
func (n *Node) closeConn(markStopped bool) {
	n.connMu.Lock()
	if markStopped {
		n.stopped = true
	}
	c := n.conn
	n.connMu.Unlock()
	if c != nil {
		c.Close()
	}
	// Shutdown also retires the offload connection so in-flight
	// ClassifyRemote calls unblock (their frames classify locally).
	if markStopped && n.offl != nil {
		n.offl.Close()
	}
}

// logf serializes diagnostic output across goroutines sharing a sink.
func (n *Node) logf(format string, args ...any) {
	n.logMu.Lock()
	defer n.logMu.Unlock()
	n.cfg.Logf(format, args...)
}

// Run processes frames until the source is exhausted or ctx is canceled,
// then closes the connection. It returns the number of frames processed.
//
// Run drives the counting pipeline's staged streaming scheduler: a
// capture goroutine paces the frame source into the stream while Run
// delivers finished results to the backend, so capture, counting, and
// report delivery of consecutive frames overlap instead of running
// lock-step. The scheduler's bounded queues cap the frames in flight —
// a backend outage backpressures capture rather than growing a backlog
// — and delivery stays in frame order and at-least-once exactly as the
// lock-step loop was.
func (n *Node) Run(ctx context.Context) (int, error) {
	defer n.closeConn(true)
	// Cancel unblocks network I/O by closing the connection and pinning
	// stopped, so a racing reconnect cannot resurrect it.
	stop := context.AfterFunc(ctx, func() { n.closeConn(true) })
	defer stop()
	// A delivery failure must also stop the capture goroutine and the
	// scheduler behind it.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Capture loop: pace the source into the stream. srcErr is written
	// before the channel close that ends the result stream, so reading it
	// after the results channel closes is race-free.
	frames := make(chan geom.Cloud)
	var srcErr error
	go func() {
		defer close(frames)
		for captured := 0; ; captured++ {
			if ctx.Err() != nil {
				return
			}
			frame, err := n.cfg.Source.NextFrame()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				srcErr = fmt.Errorf("pole: frame source: %w", err)
				return
			}
			// Feed the enclosure temperature sampled WITH this frame to
			// the offload controller before the frame enters the stream,
			// so the classify decision for frame i sees reading i — the
			// live telemetry loop — instead of a reading lagged by the
			// pipeline's queue depth.
			if captured < len(n.cfg.Telemetry) {
				n.offctl.SetTemperature(n.cfg.Telemetry[captured].Pole)
			}
			select {
			case frames <- frame.Cloud:
			case <-ctx.Done():
				return
			}
			if n.cfg.FrameInterval > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(n.cfg.FrameInterval):
				}
			}
		}
	}()

	streamCfg := n.cfg.Stream
	streamCfg.Offload = n.offctl
	processed := 0
	for result := range n.cfg.Pipeline.StreamWith(ctx, frames, streamCfg) {
		n.m.frames.Inc()

		n.mu.Lock()
		n.sent++
		seq := n.sent
		n.mu.Unlock()
		report := wire.CountReport{
			PoleID:    n.cfg.PoleID,
			Seq:       seq,
			Timestamp: time.Now().UTC(),
			Count:     uint32(result.Count),
			Clusters:  uint32(result.Clusters),
			LatencyUS: uint32(result.E2E.Microseconds()),
		}
		body := wire.EncodeCountReport(report)
		err := n.withRetry(ctx, func() error {
			t0 := time.Now()
			if err := n.wc.Send(wire.MsgCountReport, body); err != nil {
				return fmt.Errorf("pole: send report: %w", err)
			}
			if err := n.awaitAck(seq); err != nil {
				return err
			}
			n.m.rtt.ObserveDuration(time.Since(t0))
			n.m.acked.Inc()
			return nil
		})
		if err != nil {
			return processed, err
		}

		if processed < len(n.cfg.Telemetry) {
			// The capture goroutine already fed this reading's compartment
			// temperature to the offload controller (Fig. 10); here the
			// reading just streams to the backend alongside the report.
			r := n.cfg.Telemetry[processed]
			tm := wire.EncodeTelemetry(wire.Telemetry{
				PoleID:    n.cfg.PoleID,
				Timestamp: r.At,
				PoleTemp:  r.Pole,
				Ambient:   r.Weather,
			})
			err = n.withRetry(ctx, func() error {
				if err := n.wc.Send(wire.MsgTelemetry, tm); err != nil {
					return fmt.Errorf("pole: send telemetry: %w", err)
				}
				return nil
			})
			if err != nil {
				return processed, err
			}
		}

		processed++
	}
	if err := ctx.Err(); err != nil {
		return processed, err
	}
	return processed, srcErr
}

// withRetry runs op, re-dialing the backend between attempts when the
// configured reconnect budget allows. A failed re-dial burns an attempt
// too, so an unreachable backend exhausts the budget instead of looping.
func (n *Node) withRetry(ctx context.Context, op func() error) error {
	err := op()
	if err == nil {
		return nil
	}
	for attempt := 1; attempt <= n.cfg.MaxReconnects; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if rerr := n.reconnect(ctx); rerr != nil {
			err = rerr
			continue
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}

// reconnect replaces a broken connection: close, back off, re-dial, and
// redo the hello handshake.
func (n *Node) reconnect(ctx context.Context) error {
	n.closeConn(false)
	wait := n.cfg.ReconnectWait
	if wait <= 0 {
		wait = DefaultReconnectWait
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(wait):
	}
	if err := n.connect(); err != nil {
		return fmt.Errorf("pole: reconnect: %w", err)
	}
	n.m.reconnects.Inc()
	n.logf("pole %d: reconnected to backend after broken connection", n.cfg.PoleID)
	return nil
}

// awaitAck reads frames until the ack for seq arrives, collecting any
// alerts delivered in between.
func (n *Node) awaitAck(seq uint64) error {
	for {
		t, body, err := n.wc.Recv()
		if err != nil {
			return fmt.Errorf("pole: awaiting ack: %w", err)
		}
		switch t {
		case wire.MsgAck:
			ack, err := wire.DecodeAck(body)
			if err != nil {
				return err
			}
			n.mu.Lock()
			n.acked = ack.Seq
			n.mu.Unlock()
			if ack.Seq == seq {
				return nil
			}
		case wire.MsgAlert:
			alert, err := wire.DecodeAlert(body)
			if err != nil {
				return err
			}
			n.mu.Lock()
			n.alerts = append(n.alerts, alert)
			n.mu.Unlock()
			n.m.alerts.Inc()
			n.logf("pole %d: received alert: %s", n.cfg.PoleID, alert.Message)
		default:
			return fmt.Errorf("pole: unexpected message type %d", t)
		}
	}
}

// Alerts returns the alerts this pole has received.
func (n *Node) Alerts() []wire.Alert {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]wire.Alert(nil), n.alerts...)
}

// Acked returns the highest acknowledged report sequence.
func (n *Node) Acked() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.acked
}

// Reconnects returns how many times the node re-dialed the backend.
func (n *Node) Reconnects() uint64 { return n.m.reconnects.Value() }

// BytesSent returns the framed bytes this node has written to the
// backend across all connections.
func (n *Node) BytesSent() uint64 { return n.m.bytesOut.Value() }
