// Package pole implements the smart blue light pole node (Figures 1–2):
// a capture loop that scans the walkway with the LiDAR simulator, runs the
// HAWC-CC counting pipeline on the edge, and streams count reports and
// compartment telemetry to the campus backend over the private network —
// raw point clouds never leave the pole, which is the privacy property the
// system is built around.
package pole

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/telemetry"
	"hawccc/internal/wire"
)

// FrameSource yields raw LiDAR frames; the production implementation
// wraps the sensor, tests and demos wrap dataset generators.
type FrameSource interface {
	// NextFrame returns the next captured frame. It returns io.EOF when
	// the source is exhausted.
	NextFrame() (dataset.Frame, error)
}

// SliceSource replays a fixed set of frames.
type SliceSource struct {
	Frames []dataset.Frame
	next   int
}

var _ FrameSource = (*SliceSource)(nil)

// NextFrame implements FrameSource.
func (s *SliceSource) NextFrame() (dataset.Frame, error) {
	if s.next >= len(s.Frames) {
		return dataset.Frame{}, io.EOF
	}
	f := s.Frames[s.next]
	s.next++
	return f, nil
}

// Config parameterizes a pole node.
type Config struct {
	// PoleID identifies this pole on the campus network.
	PoleID uint32
	// Location is the human-readable walkway name.
	Location string
	// BackendAddr is the campus backend's TCP address.
	BackendAddr string
	// Pipeline is the counting framework run on each frame.
	Pipeline *counting.Pipeline
	// Source yields frames to process.
	Source FrameSource
	// FrameInterval paces the capture loop (0 = process as fast as
	// possible, used by tests and batch replays).
	FrameInterval time.Duration
	// Telemetry, when non-nil, is streamed alongside count reports (one
	// reading per frame).
	Telemetry []telemetry.Reading
	// Logf, if non-nil, receives diagnostic output.
	Logf func(format string, args ...any)
}

// Node is a running pole.
type Node struct {
	cfg  Config
	conn net.Conn
	wc   *wire.Conn

	mu     sync.Mutex
	alerts []wire.Alert
	acked  uint64
	sent   uint64
}

// Dial connects the pole to the backend and performs the hello handshake.
func Dial(cfg Config) (*Node, error) {
	if cfg.Pipeline == nil {
		return nil, errors.New("pole: config needs a pipeline")
	}
	if cfg.Source == nil {
		return nil, errors.New("pole: config needs a frame source")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	conn, err := net.Dial("tcp", cfg.BackendAddr)
	if err != nil {
		return nil, fmt.Errorf("pole: dial backend: %w", err)
	}
	n := &Node{cfg: cfg, conn: conn, wc: wire.NewConn(conn)}
	hello := wire.Hello{PoleID: cfg.PoleID, Location: cfg.Location}
	if err := n.wc.Send(wire.MsgHello, wire.EncodeHello(hello)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("pole: hello: %w", err)
	}
	return n, nil
}

// Run processes frames until the source is exhausted or ctx is canceled,
// then closes the connection. It returns the number of frames processed.
func (n *Node) Run(ctx context.Context) (int, error) {
	defer n.conn.Close()
	// Cancel unblocks network I/O by closing the connection.
	stop := context.AfterFunc(ctx, func() { n.conn.Close() })
	defer stop()

	processed := 0
	for {
		if err := ctx.Err(); err != nil {
			return processed, err
		}
		frame, err := n.cfg.Source.NextFrame()
		if errors.Is(err, io.EOF) {
			return processed, nil
		}
		if err != nil {
			return processed, fmt.Errorf("pole: frame source: %w", err)
		}

		start := time.Now()
		result := n.cfg.Pipeline.Count(frame.Cloud)
		latency := time.Since(start)

		n.mu.Lock()
		n.sent++
		seq := n.sent
		n.mu.Unlock()
		report := wire.CountReport{
			PoleID:    n.cfg.PoleID,
			Seq:       seq,
			Timestamp: time.Now().UTC(),
			Count:     uint32(result.Count),
			Clusters:  uint32(result.Clusters),
			LatencyUS: uint32(latency.Microseconds()),
		}
		if err := n.wc.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
			return processed, fmt.Errorf("pole: send report: %w", err)
		}
		if err := n.awaitAck(seq); err != nil {
			return processed, err
		}

		if processed < len(n.cfg.Telemetry) {
			r := n.cfg.Telemetry[processed]
			tm := wire.Telemetry{
				PoleID:    n.cfg.PoleID,
				Timestamp: r.At,
				PoleTemp:  r.Pole,
				Ambient:   r.Weather,
			}
			if err := n.wc.Send(wire.MsgTelemetry, wire.EncodeTelemetry(tm)); err != nil {
				return processed, fmt.Errorf("pole: send telemetry: %w", err)
			}
		}

		processed++
		if n.cfg.FrameInterval > 0 {
			select {
			case <-ctx.Done():
				return processed, ctx.Err()
			case <-time.After(n.cfg.FrameInterval):
			}
		}
	}
}

// awaitAck reads frames until the ack for seq arrives, collecting any
// alerts delivered in between.
func (n *Node) awaitAck(seq uint64) error {
	for {
		t, body, err := n.wc.Recv()
		if err != nil {
			return fmt.Errorf("pole: awaiting ack: %w", err)
		}
		switch t {
		case wire.MsgAck:
			ack, err := wire.DecodeAck(body)
			if err != nil {
				return err
			}
			n.mu.Lock()
			n.acked = ack.Seq
			n.mu.Unlock()
			if ack.Seq == seq {
				return nil
			}
		case wire.MsgAlert:
			alert, err := wire.DecodeAlert(body)
			if err != nil {
				return err
			}
			n.mu.Lock()
			n.alerts = append(n.alerts, alert)
			n.mu.Unlock()
			n.cfg.Logf("pole %d: received alert: %s", n.cfg.PoleID, alert.Message)
		default:
			return fmt.Errorf("pole: unexpected message type %d", t)
		}
	}
}

// Alerts returns the alerts this pole has received.
func (n *Node) Alerts() []wire.Alert {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]wire.Alert(nil), n.alerts...)
}

// Acked returns the highest acknowledged report sequence.
func (n *Node) Acked() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.acked
}
