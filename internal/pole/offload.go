// offload.go is the pole side of the edge/cloud classify offload: an
// Offloader ships one frame's kept clusters to the backend's offload
// service as a quantized wire.ClusterBatch and blocks until the
// per-cluster labels come back. It runs over its own backend
// connection — the report connection is occupied by the synchronous
// report/ack exchange — and correlates replies by frame sequence
// number, so every classify worker can have a batch in flight at once
// instead of serializing round trips.
package pole

import (
	"fmt"
	"net"
	"sync"

	"hawccc/internal/counting"
	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

// OffloaderConfig parameterizes a backend offload client.
type OffloaderConfig struct {
	// BackendAddr is the backend's TCP address (the same listener that
	// takes count reports; the hello handshake marks this connection).
	BackendAddr string
	// PoleID / Location / Zone identify the pole in the hello. PoleID is
	// also stamped onto every shipped batch so backend replies key on
	// (PoleID, Seq).
	PoleID         uint32
	Location, Zone string
	// ModelVersion fingerprints the classifier the pole runs locally; it
	// is announced in the hello and stamped onto every shipped batch so
	// the backend can refuse to classify with skewed weights (the pole
	// then falls back to its edge path). Zero means unversioned.
	ModelVersion uint32
	// BytesSent/BytesReceived/MsgsSent/MsgsReceived, when non-nil,
	// instrument the offload connection's traffic (the pole node passes
	// its pole_wire_* counters so offload bytes aggregate with report
	// bytes).
	BytesSent, BytesReceived, MsgsSent, MsgsReceived *obs.Counter
}

// offloadReply is one correlated answer: labels or a transport error.
type offloadReply struct {
	labels []bool
	err    error
}

// Offloader is a counting.RemoteClassifier that ships cluster batches
// to the backend over a dedicated connection. It dials lazily on first
// use and re-dials on the next call after a connection failure; a
// failed call surfaces its error to the scheduler, which classifies
// that frame locally (the fallback path), so transport trouble costs
// latency, never frames.
//
// Safe for concurrent callers: writes are serialized, and a reader
// goroutine dispatches replies to per-sequence waiters so calls overlap
// on the wire.
type Offloader struct {
	cfg OffloaderConfig

	// mu guards the connection lifecycle and the waiter map; sendMu
	// serializes frame writes on the current connection.
	mu      sync.Mutex
	conn    net.Conn
	wc      *wire.Conn
	waiters map[uint64]chan offloadReply
	closed  bool

	sendMu sync.Mutex
}

var _ counting.RemoteClassifier = (*Offloader)(nil)

// NewOffloader builds an offload client; the connection is dialed on
// first use.
func NewOffloader(cfg OffloaderConfig) *Offloader {
	return &Offloader{cfg: cfg, waiters: make(map[uint64]chan offloadReply)}
}

// ClassifyRemote implements counting.RemoteClassifier: stamp the
// pipeline's prebuilt quantized batch with this pole's identity, ship
// it, and block until the backend's labels for this frame arrive or the
// connection dies. The batch arrives already quantized — it is the
// exact lattice the pipeline's local classify stage snapped to — so
// nothing here may re-quantize it.
func (o *Offloader) ClassifyRemote(batch *wire.ClusterBatch) ([]bool, error) {
	batch.PoleID = o.cfg.PoleID
	batch.ModelVersion = o.cfg.ModelVersion
	seq := batch.Seq
	body := wire.EncodeClusterBatch(*batch)
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil, net.ErrClosed
	}
	wc, err := o.ensureConnLocked()
	if err != nil {
		o.mu.Unlock()
		return nil, err
	}
	ch := make(chan offloadReply, 1)
	o.waiters[seq] = ch
	o.mu.Unlock()

	o.sendMu.Lock()
	err = wc.Send(wire.MsgClusterBatch, body)
	o.sendMu.Unlock()
	if err != nil {
		// dropConn fails every waiter registered on wc — including this
		// call's — so the receive below cannot hang.
		o.dropConn(wc, err)
	}
	r := <-ch
	return r.labels, r.err
}

// ensureConnLocked returns the live connection, dialing and performing
// the hello handshake if there is none. Caller holds o.mu.
func (o *Offloader) ensureConnLocked() (*wire.Conn, error) {
	if o.wc != nil {
		return o.wc, nil
	}
	conn, err := net.Dial("tcp", o.cfg.BackendAddr)
	if err != nil {
		return nil, fmt.Errorf("pole: dial offload: %w", err)
	}
	wc := wire.NewConn(conn)
	wc.Instrument(o.cfg.BytesSent, o.cfg.BytesReceived, o.cfg.MsgsSent, o.cfg.MsgsReceived)
	hello := wire.Hello{PoleID: o.cfg.PoleID, Location: o.cfg.Location, Zone: o.cfg.Zone, ModelVersion: o.cfg.ModelVersion}
	if err := wc.Send(wire.MsgHello, wire.EncodeHello(hello)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("pole: offload hello: %w", err)
	}
	o.conn, o.wc = conn, wc
	go o.readLoop(wc)
	return wc, nil
}

// readLoop dispatches classify results to their waiters until the
// connection fails, then fails every outstanding waiter.
func (o *Offloader) readLoop(wc *wire.Conn) {
	for {
		t, body, err := wc.Recv()
		if err != nil {
			o.dropConn(wc, fmt.Errorf("pole: offload connection: %w", err))
			return
		}
		if t != wire.MsgClassifyResult {
			o.dropConn(wc, fmt.Errorf("pole: unexpected message type %d on offload connection", t))
			return
		}
		res, err := wire.DecodeClassifyResult(body)
		if err != nil {
			o.dropConn(wc, err)
			return
		}
		o.mu.Lock()
		ch, ok := o.waiters[res.Seq]
		delete(o.waiters, res.Seq)
		o.mu.Unlock()
		if ok {
			ch <- offloadReply{labels: res.Labels}
		}
	}
}

// dropConn retires wc if it is still current: the socket closes, every
// outstanding waiter gets err, and the next ClassifyRemote re-dials.
func (o *Offloader) dropConn(wc *wire.Conn, err error) {
	o.mu.Lock()
	if o.wc != wc {
		o.mu.Unlock()
		return
	}
	conn := o.conn
	o.conn, o.wc = nil, nil
	waiters := o.waiters
	o.waiters = make(map[uint64]chan offloadReply)
	o.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, ch := range waiters {
		ch <- offloadReply{err: err}
	}
}

// Close shuts the offloader down: the connection closes, outstanding
// calls fail, and future calls return net.ErrClosed.
func (o *Offloader) Close() {
	o.mu.Lock()
	o.closed = true
	wc := o.wc
	o.mu.Unlock()
	if wc != nil {
		o.dropConn(wc, net.ErrClosed)
	}
}
