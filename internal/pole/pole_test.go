package pole

import (
	"context"
	"io"
	"testing"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/models"
	"hawccc/internal/telemetry"
)

// tallStub is a training-free classifier for pipeline tests.
type tallStub struct{}

var _ models.Classifier = tallStub{}

func (tallStub) Name() string { return "TallStub" }
func (tallStub) PredictHuman(c geom.Cloud) bool {
	extent := c.MaxZ() - c.MinZ()
	return extent > 1.1 && extent < 2.3
}

func testConfig(t *testing.T, addr string, frames []dataset.Frame) Config {
	t.Helper()
	return Config{
		PoleID:      1,
		Location:    "Palm Walk",
		BackendAddr: addr,
		Pipeline:    counting.New(tallStub{}),
		Source:      &SliceSource{Frames: frames},
	}
}

func TestPoleStreamsReports(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(1)
	frames := g.CrowdFrames(4, 1, 3, 1)
	node, err := Dial(testConfig(t, srv.Addr(), frames))
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("processed %d frames, want 4", n)
	}
	if node.Acked() != 4 {
		t.Errorf("acked %d, want 4", node.Acked())
	}
	snap := srv.Snapshot()
	if len(snap) != 1 || snap[0].Reports != 4 || snap[0].Location != "Palm Walk" {
		t.Errorf("backend aggregates: %+v", snap)
	}
}

func TestPoleReceivesCrowdingAlert(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0", CrowdingLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(2)
	frames := g.CrowdFrames(3, 2, 4, 0)
	node, err := Dial(testConfig(t, srv.Addr(), frames))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(node.Alerts()) == 0 {
		t.Error("pole should have received crowding alerts")
	}
}

func TestPoleStreamsTelemetry(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0", OverheatLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(3)
	frames := g.CrowdFrames(2, 1, 2, 0)
	cfg := testConfig(t, srv.Addr(), frames)
	cfg.Telemetry = []telemetry.Reading{
		{At: time.Now(), Weather: 44, Pole: 57.8}, // above rated
		{At: time.Now(), Weather: 30, Pole: 35},
	}
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	if len(snap) != 1 || snap[0].MaxTemp < 57 {
		t.Errorf("backend telemetry: %+v", snap)
	}
	alerts := srv.Alerts()
	if len(alerts) == 0 {
		t.Error("expected overheat alert")
	}
}

func TestPoleContextCancel(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(4)
	frames := g.CrowdFrames(3, 1, 1, 0)
	cfg := testConfig(t, srv.Addr(), frames)
	cfg.FrameInterval = time.Hour // would block forever without cancel
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	n, err := node.Run(ctx)
	if err == nil {
		t.Error("expected context error")
	}
	if n == 0 {
		t.Error("should process at least one frame before cancel")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancel did not unblock promptly")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(Config{Source: &SliceSource{}}); err == nil {
		t.Error("missing pipeline accepted")
	}
	if _, err := Dial(Config{Pipeline: counting.New(tallStub{})}); err == nil {
		t.Error("missing source accepted")
	}
	cfg := Config{
		Pipeline:    counting.New(tallStub{}),
		Source:      &SliceSource{},
		BackendAddr: "127.0.0.1:1", // nothing listening
	}
	if _, err := Dial(cfg); err == nil {
		t.Error("unreachable backend accepted")
	}
}

func TestSliceSourceEOF(t *testing.T) {
	s := &SliceSource{Frames: []dataset.Frame{{Count: 1}}}
	if _, err := s.NextFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NextFrame(); err != io.EOF {
		t.Errorf("exhausted source error = %v, want io.EOF", err)
	}
}

func TestMultiplePolesOneBackend(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(5)
	done := make(chan error, 3)
	for id := uint32(1); id <= 3; id++ {
		frames := g.CrowdFrames(2, 1, 2, 0)
		cfg := testConfig(t, srv.Addr(), frames)
		cfg.PoleID = id
		node, err := Dial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			_, err := node.Run(context.Background())
			done <- err
		}()
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(srv.Snapshot()); got != 3 {
		t.Errorf("backend sees %d poles, want 3", got)
	}
}
