package pole

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/models"
	"hawccc/internal/obs"
	"hawccc/internal/telemetry"
	"hawccc/internal/wire"
)

// tallStub is a training-free classifier for pipeline tests.
type tallStub struct{}

var _ models.Classifier = tallStub{}

func (tallStub) Name() string { return "TallStub" }
func (tallStub) PredictHuman(c geom.Cloud) bool {
	extent := c.MaxZ() - c.MinZ()
	return extent > 1.1 && extent < 2.3
}

func testConfig(t *testing.T, addr string, frames []dataset.Frame) Config {
	t.Helper()
	return Config{
		PoleID:      1,
		Location:    "Palm Walk",
		BackendAddr: addr,
		Pipeline:    counting.New(tallStub{}),
		Source:      &SliceSource{Frames: frames},
	}
}

func TestPoleStreamsReports(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(1)
	frames := g.CrowdFrames(4, 1, 3, 1)
	node, err := Dial(testConfig(t, srv.Addr(), frames))
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("processed %d frames, want 4", n)
	}
	if node.Acked() != 4 {
		t.Errorf("acked %d, want 4", node.Acked())
	}
	snap := srv.Snapshot()
	if len(snap) != 1 || snap[0].Reports != 4 || snap[0].Location != "Palm Walk" {
		t.Errorf("backend aggregates: %+v", snap)
	}
}

func TestPoleReceivesCrowdingAlert(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0", CrowdingLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(2)
	frames := g.CrowdFrames(3, 2, 4, 0)
	node, err := Dial(testConfig(t, srv.Addr(), frames))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(node.Alerts()) == 0 {
		t.Error("pole should have received crowding alerts")
	}
}

func TestPoleStreamsTelemetry(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0", OverheatLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(3)
	frames := g.CrowdFrames(2, 1, 2, 0)
	cfg := testConfig(t, srv.Addr(), frames)
	cfg.Telemetry = []telemetry.Reading{
		{At: time.Now(), Weather: 44, Pole: 57.8}, // above rated
		{At: time.Now(), Weather: 30, Pole: 35},
	}
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	if len(snap) != 1 || snap[0].MaxTemp < 57 {
		t.Errorf("backend telemetry: %+v", snap)
	}
	alerts := srv.Alerts()
	if len(alerts) == 0 {
		t.Error("expected overheat alert")
	}
}

func TestPoleContextCancel(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(4)
	frames := g.CrowdFrames(3, 1, 1, 0)
	cfg := testConfig(t, srv.Addr(), frames)
	cfg.FrameInterval = time.Hour // would block forever without cancel
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	n, err := node.Run(ctx)
	if err == nil {
		t.Error("expected context error")
	}
	if n == 0 {
		t.Error("should process at least one frame before cancel")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancel did not unblock promptly")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(Config{Source: &SliceSource{}}); err == nil {
		t.Error("missing pipeline accepted")
	}
	if _, err := Dial(Config{Pipeline: counting.New(tallStub{})}); err == nil {
		t.Error("missing source accepted")
	}
	cfg := Config{
		Pipeline:    counting.New(tallStub{}),
		Source:      &SliceSource{},
		BackendAddr: "127.0.0.1:1", // nothing listening
	}
	if _, err := Dial(cfg); err == nil {
		t.Error("unreachable backend accepted")
	}
}

func TestSliceSourceEOF(t *testing.T) {
	s := &SliceSource{Frames: []dataset.Frame{{Count: 1}}}
	if _, err := s.NextFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NextFrame(); err != io.EOF {
		t.Errorf("exhausted source error = %v, want io.EOF", err)
	}
}

func TestMultiplePolesOneBackend(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(5)
	done := make(chan error, 3)
	for id := uint32(1); id <= 3; id++ {
		frames := g.CrowdFrames(2, 1, 2, 0)
		cfg := testConfig(t, srv.Addr(), frames)
		cfg.PoleID = id
		node, err := Dial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			_, err := node.Run(context.Background())
			done <- err
		}()
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(srv.Snapshot()); got != 3 {
		t.Errorf("backend sees %d poles, want 3", got)
	}
}

// flakyBackend is a minimal wire-protocol server whose first session
// drops the TCP connection after acking dropAfter reports; subsequent
// sessions are stable. It records every report seq it acked, so tests
// can prove reconnection loses nothing.
type flakyBackend struct {
	ln        net.Listener
	dropAfter int
	killAll   bool // also close the listener when the first session drops

	mu       sync.Mutex
	seqs     []uint64
	sessions int
}

func newFlakyBackend(t *testing.T, dropAfter int, killAll bool) *flakyBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb := &flakyBackend{ln: ln, dropAfter: dropAfter, killAll: killAll}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fb.mu.Lock()
			fb.sessions++
			first := fb.sessions == 1
			fb.mu.Unlock()
			go fb.serve(conn, first)
		}
	}()
	return fb
}

func (fb *flakyBackend) Addr() string { return fb.ln.Addr().String() }

func (fb *flakyBackend) ackedSeqs() []uint64 {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return append([]uint64(nil), fb.seqs...)
}

func (fb *flakyBackend) serve(conn net.Conn, first bool) {
	defer conn.Close()
	wc := wire.NewConn(conn)
	acked := 0
	for {
		typ, body, err := wc.Recv()
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgHello, wire.MsgTelemetry:
			// no response required
		case wire.MsgCountReport:
			r, err := wire.DecodeCountReport(body)
			if err != nil {
				return
			}
			fb.mu.Lock()
			fb.seqs = append(fb.seqs, r.Seq)
			fb.mu.Unlock()
			if err := wc.Send(wire.MsgAck, wire.EncodeAck(wire.Ack{Seq: r.Seq})); err != nil {
				return
			}
			acked++
			if first && fb.dropAfter > 0 && acked == fb.dropAfter {
				if fb.killAll {
					fb.ln.Close()
				}
				return // drop the connection mid-stream
			}
		}
	}
}

func TestPoleReconnectsAndResendsReports(t *testing.T) {
	fb := newFlakyBackend(t, 2, false)
	g := dataset.NewGenerator(6)
	frames := g.CrowdFrames(5, 1, 2, 0)

	reg := obs.NewRegistry()
	cfg := testConfig(t, fb.Addr(), frames)
	cfg.MaxReconnects = 3
	cfg.ReconnectWait = 5 * time.Millisecond
	cfg.Obs = reg
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.Run(context.Background())
	if err != nil {
		t.Fatalf("Run after reconnect: %v", err)
	}
	if n != 5 {
		t.Errorf("processed %d frames, want 5", n)
	}
	if got := node.Reconnects(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if got := reg.Counter("pole_reconnects_total", "", obs.L("pole", "1")).Value(); got != 1 {
		t.Errorf("reconnect counter on registry = %d, want 1", got)
	}

	// Every report seq must have been acked exactly once: the connection
	// dropped after the ack, so nothing was dropped and nothing doubled.
	seen := map[uint64]int{}
	for _, s := range fb.ackedSeqs() {
		seen[s]++
	}
	for want := uint64(1); want <= 5; want++ {
		if seen[want] != 1 {
			t.Errorf("seq %d acked %d times, want exactly once (all: %v)", want, seen[want], fb.ackedSeqs())
		}
	}
}

func TestPoleFailsFastWithoutReconnectBudget(t *testing.T) {
	fb := newFlakyBackend(t, 1, false)
	g := dataset.NewGenerator(7)
	frames := g.CrowdFrames(4, 1, 2, 0)

	cfg := testConfig(t, fb.Addr(), frames)
	// MaxReconnects left at zero: the historical fail-fast behavior.
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.Run(context.Background())
	if err == nil {
		t.Error("expected delivery error with no reconnect budget")
	}
	if n >= 4 {
		t.Errorf("processed %d frames past a dead connection", n)
	}
	if node.Reconnects() != 0 {
		t.Errorf("reconnects = %d without budget", node.Reconnects())
	}
}

func TestPoleExhaustsReconnectBudgetWhenBackendGone(t *testing.T) {
	fb := newFlakyBackend(t, 1, true) // listener dies with the first drop
	g := dataset.NewGenerator(8)
	frames := g.CrowdFrames(3, 1, 2, 0)

	cfg := testConfig(t, fb.Addr(), frames)
	cfg.MaxReconnects = 2
	cfg.ReconnectWait = time.Millisecond
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(context.Background()); err == nil {
		t.Error("expected error once the reconnect budget is exhausted")
	}
}

func TestPoleCleanEOFShutdownMetrics(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(9)
	frames := g.CrowdFrames(3, 1, 2, 0)
	reg := obs.NewRegistry()
	cfg := testConfig(t, srv.Addr(), frames)
	cfg.MaxReconnects = 3 // budget present but unused on a healthy link
	cfg.Obs = reg
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.Run(context.Background())
	if err != nil {
		t.Fatalf("clean EOF shutdown returned %v", err)
	}
	if n != 3 {
		t.Errorf("processed %d, want 3", n)
	}
	id := obs.L("pole", "1")
	if got := reg.Counter("pole_frames_processed_total", "", id).Value(); got != 3 {
		t.Errorf("frames counter = %d, want 3", got)
	}
	if got := reg.Counter("pole_reports_acked_total", "", id).Value(); got != 3 {
		t.Errorf("acked counter = %d, want 3", got)
	}
	if got := node.Reconnects(); got != 0 {
		t.Errorf("reconnects = %d on a healthy link", got)
	}
	if s := reg.Histogram("pole_report_rtt_seconds", "", nil, id).Snapshot(); s.Count != 3 {
		t.Errorf("rtt histogram observed %d reports, want 3", s.Count)
	}
	if node.BytesSent() == 0 {
		t.Error("wire byte counter never incremented")
	}
}

func TestPoleRunStreamsThroughScheduler(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := dataset.NewGenerator(14)
	frames := g.CrowdFrames(5, 1, 3, 1)
	reg := obs.NewRegistry()
	cfg := testConfig(t, srv.Addr(), frames)
	cfg.Pipeline = counting.New(tallStub{}).Instrument(reg)
	cfg.Stream = counting.StreamConfig{QueueDepth: 2}
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frames) {
		t.Fatalf("processed %d frames, want %d", n, len(frames))
	}
	// Run counts through the staged scheduler, so the stream series carry
	// the frames and every queue has drained by clean shutdown.
	if s := reg.Histogram("hawc_stream_e2e_seconds", "", obs.LatencyBuckets()).Snapshot(); s.Count != uint64(len(frames)) {
		t.Errorf("stream e2e histogram observed %d frames, want %d", s.Count, len(frames))
	}
	for _, stage := range []string{"ingest", "cluster", "classify", "report"} {
		if d := reg.Gauge("hawc_stream_queue_depth", "", obs.L("stage", stage)).Value(); d != 0 {
			t.Errorf("stage %q queue depth = %g after shutdown, want 0", stage, d)
		}
	}
	// Reports stay in frame order with at-least-once delivery intact.
	if got := node.Acked(); got != uint64(len(frames)) {
		t.Errorf("acked seq = %d, want %d", got, len(frames))
	}
}

// batchTallStub widens tallStub for the backend's offload service.
type batchTallStub struct{ tallStub }

func (s batchTallStub) PredictHumans(cs []geom.Cloud) []bool {
	out := make([]bool, len(cs))
	for i, c := range cs {
		out[i] = s.PredictHuman(c)
	}
	return out
}

// TestTemperatureRampFlipsOffloadController pins the live telemetry
// wiring: the capture loop feeds each frame's compartment reading to the
// offload controller, so a thermal ramp crossing the hysteresis band
// flips an adaptive pole to backend classification and back — no
// external SetTemperature caller involved.
func TestTemperatureRampFlipsOffloadController(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0", Classifier: batchTallStub{}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const cold, hot = 15, 10
	frames := dataset.NewGenerator(9).CrowdFrames(2*cold+hot, 1, 3, 1)
	readings := make([]telemetry.Reading, 0, len(frames))
	for i := range frames {
		temp := 30.0 // idles well under the 45°C exit threshold
		if i >= cold && i < cold+hot {
			temp = 60 // plateau above the 50°C enter threshold
		}
		readings = append(readings, telemetry.Reading{At: time.Now(), Weather: 25, Pole: temp})
	}

	cfg := testConfig(t, srv.Addr(), frames)
	cfg.Telemetry = readings
	// Thermal-only adaptive offload: queue-depth and backpressure
	// signals disabled, short dwell so the cold tail exits promptly.
	cfg.Offload = counting.OffloadConfig{
		Mode:              counting.OffloadAdaptive,
		EnterQueueDepth:   -1,
		EnterBackpressure: -1,
		EnterTempC:        50,
		ExitTempC:         45,
		MinDwellFrames:    2,
	}
	// Pace capture so the per-frame readings track classification
	// instead of racing ahead of the pipeline queues.
	cfg.FrameInterval = time.Millisecond
	node, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctl := node.Offload()
	local, remote, fallback := ctl.Decisions()
	if remote == 0 {
		t.Errorf("hot plateau never offloaded: local=%d remote=%d fallback=%d", local, remote, fallback)
	}
	if local == 0 {
		t.Errorf("cold frames never classified locally: local=%d remote=%d fallback=%d", local, remote, fallback)
	}
	if sw := ctl.Switches(); sw < 2 {
		t.Errorf("controller switched %d times, want >= 2 (into offload and back)", sw)
	}
	if ctl.Offloading() {
		t.Error("controller still offloading after the ramp cooled")
	}
}
