package quant

import (
	"fmt"
	"math"
	"math/rand"

	"hawccc/internal/nn"
)

// FoldBatchNorm returns a new model equivalent (in inference mode) to m
// with every Conv2D→BatchNorm and Dense→BatchNorm pair collapsed into a
// single layer whose weights absorb the normalization:
//
//	W′[..., c] = W[..., c] · γ_c / √(σ²_c + ε)
//	b′[c]      = (b[c] − μ_c) · γ_c / √(σ²_c + ε) + β_c
//
// using the BatchNorm's running statistics. Layers without a following
// BatchNorm are deep-copied unchanged.
func FoldBatchNorm(m *nn.Sequential) *nn.Sequential {
	out := &nn.Sequential{}
	rng := rand.New(rand.NewSource(0)) // constructors need an rng; weights are overwritten
	for i := 0; i < len(m.Layers); i++ {
		var bn *nn.BatchNorm
		if i+1 < len(m.Layers) {
			bn, _ = m.Layers[i+1].(*nn.BatchNorm)
		}
		switch l := m.Layers[i].(type) {
		case *nn.Conv2D:
			nc := nn.NewConv2D(l.KH, l.KW, l.Cin, l.Cout, rng)
			copy(nc.W.Value.Data, l.W.Value.Data)
			copy(nc.B.Value.Data, l.B.Value.Data)
			if bn != nil {
				foldInto(nc.W.Value.Data, nc.B.Value.Data, l.Cout, bn)
				i++
			}
			out.Add(nc)
		case *nn.Dense:
			nd := nn.NewDense(l.In, l.Out, rng)
			copy(nd.W.Value.Data, l.W.Value.Data)
			copy(nd.B.Value.Data, l.B.Value.Data)
			if bn != nil {
				foldInto(nd.W.Value.Data, nd.B.Value.Data, l.Out, bn)
				i++
			}
			out.Add(nd)
		case *nn.BatchNorm:
			// A BatchNorm not preceded by conv/dense cannot be folded;
			// keep a copy so inference stays correct.
			nb := nn.NewBatchNorm(l.C)
			copy(nb.Gamma.Value.Data, l.Gamma.Value.Data)
			copy(nb.Beta.Value.Data, l.Beta.Value.Data)
			copy(nb.RunningMean.Data, l.RunningMean.Data)
			copy(nb.RunningVar.Data, l.RunningVar.Data)
			out.Add(nb)
		case *nn.ReLU:
			out.Add(nn.NewReLU())
		case *nn.MaxPool2D:
			out.Add(nn.NewMaxPool2D())
		case *nn.MaxOverPoints:
			out.Add(nn.NewMaxOverPoints())
		case *nn.Reshape:
			out.Add(copyReshape(l))
		case *nn.Group:
			out.Add(nn.NewGroup(l.P))
		case *nn.Ungroup:
			out.Add(nn.NewUngroup())
		case *nn.Dropout:
			// Identity at inference; drop it.
		default:
			panic(fmt.Sprintf("quant: cannot fold layer %s", m.Layers[i].Name()))
		}
	}
	return out
}

// foldInto rescales weights and bias in place. Weight layout has the
// output channel as the innermost dimension for both Conv2D
// ([KH, KW, Cin, Cout]) and Dense ([In, Out]).
func foldInto(w, b []float32, cout int, bn *nn.BatchNorm) {
	if bn.C != cout {
		panic(fmt.Sprintf("quant: BatchNorm(%d) after layer with %d outputs", bn.C, cout))
	}
	factor := make([]float32, cout)
	for c := 0; c < cout; c++ {
		factor[c] = bn.Gamma.Value.Data[c] /
			float32(math.Sqrt(float64(bn.RunningVar.Data[c])+bn.Eps))
	}
	for i := range w {
		w[i] *= factor[i%cout]
	}
	for c := 0; c < cout; c++ {
		b[c] = (b[c]-bn.RunningMean.Data[c])*factor[c] + bn.Beta.Value.Data[c]
	}
}

func copyReshape(r *nn.Reshape) *nn.Reshape {
	// Reshape's only configuration is its target dims, which its Name
	// encodes; rebuild via the constructor using reflection-free copying.
	return r.CloneShape()
}
