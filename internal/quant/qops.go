package quant

import (
	"fmt"
	"sync"

	"hawccc/internal/nn/kernels"
)

// QOp is one stage of a quantized inference graph.
type QOp interface {
	Name() string
	Apply(x *QTensor) *QTensor
	// WeightBytes is the int8 parameter footprint, for model-size reports.
	WeightBytes() int
}

// gemmScratch holds the int8 GEMM workspace (im2col matrix, packed
// weight panels, int32 accumulators) so Apply stays allocation-free on
// the hot path. Pooled because quantized inference runs concurrently
// from the counting workers.
type gemmScratch struct {
	col  []int8
	pack []int8
	acc  []int32
}

var gemmPool = sync.Pool{New: func() any { return new(gemmScratch) }}

func (g *gemmScratch) i8(buf *[]int8, n int) []int8 {
	if cap(*buf) < n {
		*buf = make([]int8, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func (g *gemmScratch) i32(n int) []int32 {
	if cap(g.acc) < n {
		g.acc = make([]int32, n)
	}
	g.acc = g.acc[:n]
	return g.acc
}

// requantize maps int32 accumulators to int8 outputs: fixed-point
// multiply, zero-point shift, clamp to [lo, 127]. Shared by the GEMM and
// naive paths so requantization is identical by construction.
func requantize(acc []int32, out []int8, mult Multiplier, outZero, lo int32) {
	for i, a := range acc {
		v := mult.Apply(a) + outZero
		if v < lo {
			v = lo
		}
		if v > 127 {
			v = 127
		}
		out[i] = int8(v)
	}
}

// QConv2D is a stride-1, same-padding int8 convolution with optional fused
// ReLU. Accumulation is int32; requantization uses a fixed-point
// multiplier.
type QConv2D struct {
	KH, KW, Cin, Cout int
	W                 []int8  // [KH, KW, Cin, Cout]
	Bias              []int32 // accumulator scale
	InScale           float64
	InZero            int32
	OutScale          float64
	OutZero           int32
	Mult              Multiplier
	FusedReLU         bool
}

var _ QOp = (*QConv2D)(nil)

// Name implements QOp.
func (c *QConv2D) Name() string {
	return fmt.Sprintf("QConv2D(%dx%d,%d→%d)", c.KH, c.KW, c.Cin, c.Cout)
}

// WeightBytes implements QOp.
func (c *QConv2D) WeightBytes() int { return len(c.W) + 4*len(c.Bias) }

// Apply implements QOp via im2col + int8 GEMM: the weights pack once
// per call, each image lowers to its patch matrix (padding taps filled
// with the input zero point, so they contribute exactly nothing after
// the zero-point shift), and requantization runs over the int32
// accumulator plane. Integer arithmetic is exact, so this is equal to
// ApplyNaive element for element.
func (c *QConv2D) Apply(x *QTensor) *QTensor {
	n, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := NewQTensor(c.OutScale, c.OutZero, n, h, w, c.Cout)
	k := c.KH * c.KW * c.Cin
	m := h * w
	lo := int32(-128)
	if c.FusedReLU && c.OutZero > lo {
		lo = c.OutZero
	}
	zp := int8(clampInt8(c.InZero))
	g := gemmPool.Get().(*gemmScratch)
	pack := kernels.PackBInt8(k, c.Cout, c.W, g.i8(&g.pack, kernels.PackedLen(k, c.Cout)))
	col := g.i8(&g.col, m*k)
	acc := g.i32(m * c.Cout)
	for ni := 0; ni < n; ni++ {
		kernels.Im2colInt8(h, w, c.Cin, c.KH, c.KW, zp, x.Data[ni*m*c.Cin:(ni+1)*m*c.Cin], col)
		kernels.GemmInt8Packed(m, c.Cout, k, col, c.InZero, pack, c.Bias, acc)
		requantize(acc, out.Data[ni*m*c.Cout:(ni+1)*m*c.Cout], c.Mult, c.OutZero, lo)
	}
	gemmPool.Put(g)
	return out
}

// ApplyNaive is the scalar reference convolution, retained to pin the
// GEMM path in tests and to benchmark against (hawcbench -exp kernels).
// Like the float reference it has no data-dependent shortcuts.
func (c *QConv2D) ApplyNaive(x *QTensor) *QTensor {
	n, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := NewQTensor(c.OutScale, c.OutZero, n, h, w, c.Cout)
	ph, pw := c.KH/2, c.KW/2
	lo := int32(-128)
	if c.FusedReLU && c.OutZero > lo {
		lo = c.OutZero
	}
	acc := make([]int32, c.Cout)
	for ni := 0; ni < n; ni++ {
		inBase := ni * h * w * c.Cin
		outBase := ni * h * w * c.Cout
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				copy(acc, c.Bias)
				for ky := 0; ky < c.KH; ky++ {
					iy := y + ky - ph
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < c.KW; kx++ {
						ix := xx + kx - pw
						if ix < 0 || ix >= w {
							continue
						}
						in := x.Data[inBase+(iy*w+ix)*c.Cin:]
						wBase := (ky*c.KW + kx) * c.Cin * c.Cout
						for ci := 0; ci < c.Cin; ci++ {
							xv := int32(in[ci]) - c.InZero
							wk := c.W[wBase+ci*c.Cout : wBase+(ci+1)*c.Cout]
							for co := range acc {
								acc[co] += xv * int32(wk[co])
							}
						}
					}
				}
				requantize(acc, out.Data[outBase+(y*w+xx)*c.Cout:outBase+(y*w+xx+1)*c.Cout], c.Mult, c.OutZero, lo)
			}
		}
	}
	return out
}

// QDense is an int8 fully connected layer with optional fused ReLU.
type QDense struct {
	In, Out   int
	W         []int8 // [In, Out]
	Bias      []int32
	InScale   float64
	InZero    int32
	OutScale  float64
	OutZero   int32
	Mult      Multiplier
	FusedReLU bool
}

var _ QOp = (*QDense)(nil)

// Name implements QOp.
func (d *QDense) Name() string { return fmt.Sprintf("QDense(%d→%d)", d.In, d.Out) }

// WeightBytes implements QOp.
func (d *QDense) WeightBytes() int { return len(d.W) + 4*len(d.Bias) }

// Apply implements QOp as one int8 GEMM over the whole batch, then one
// requantization pass. Exactly equal to ApplyNaive (integer arithmetic).
func (d *QDense) Apply(x *QTensor) *QTensor {
	n := x.Dim(0)
	out := NewQTensor(d.OutScale, d.OutZero, n, d.Out)
	lo := int32(-128)
	if d.FusedReLU && d.OutZero > lo {
		lo = d.OutZero
	}
	g := gemmPool.Get().(*gemmScratch)
	var pack []int8
	if n >= kernels.PackMinRows {
		pack = g.i8(&g.pack, kernels.PackedLen(d.In, d.Out))
	}
	acc := g.i32(n * d.Out)
	kernels.GemmInt8(n, d.Out, d.In, x.Data, d.InZero, d.W, d.Bias, acc, pack)
	requantize(acc, out.Data, d.Mult, d.OutZero, lo)
	gemmPool.Put(g)
	return out
}

// ApplyNaive is the scalar reference, retained to pin the GEMM path in
// tests and to benchmark against. No data-dependent shortcuts.
func (d *QDense) ApplyNaive(x *QTensor) *QTensor {
	n := x.Dim(0)
	out := NewQTensor(d.OutScale, d.OutZero, n, d.Out)
	lo := int32(-128)
	if d.FusedReLU && d.OutZero > lo {
		lo = d.OutZero
	}
	acc := make([]int32, d.Out)
	for i := 0; i < n; i++ {
		xi := x.Data[i*d.In : (i+1)*d.In]
		copy(acc, d.Bias)
		for k, xq := range xi {
			xv := int32(xq) - d.InZero
			wk := d.W[k*d.Out : (k+1)*d.Out]
			for j := range acc {
				acc[j] += xv * int32(wk[j])
			}
		}
		requantize(acc, out.Data[i*d.Out:(i+1)*d.Out], d.Mult, d.OutZero, lo)
	}
	return out
}

// QMaxPool2D is 2×2/2 max pooling on int8 (order-preserving, so the max of
// quantized values is the quantized max).
type QMaxPool2D struct{}

var _ QOp = QMaxPool2D{}

// Name implements QOp.
func (QMaxPool2D) Name() string { return "QMaxPool2D" }

// WeightBytes implements QOp.
func (QMaxPool2D) WeightBytes() int { return 0 }

// Apply implements QOp.
func (QMaxPool2D) Apply(x *QTensor) *QTensor {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/2, w/2
	out := NewQTensor(x.Scale, x.Zero, n, oh, ow, c)
	idx := func(ni, y, xx, ci int) int { return ((ni*h+y)*w+xx)*c + ci }
	o := 0
	for ni := 0; ni < n; ni++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				for ci := 0; ci < c; ci++ {
					bv := x.Data[idx(ni, 2*y, 2*xx, ci)]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							if v := x.Data[idx(ni, 2*y+dy, 2*xx+dx, ci)]; v > bv {
								bv = v
							}
						}
					}
					out.Data[o] = bv
					o++
				}
			}
		}
	}
	return out
}

// QMaxOverPoints reduces [N, P, F] → [N, F] by int8 max.
type QMaxOverPoints struct{}

var _ QOp = QMaxOverPoints{}

// Name implements QOp.
func (QMaxOverPoints) Name() string { return "QMaxOverPoints" }

// WeightBytes implements QOp.
func (QMaxOverPoints) WeightBytes() int { return 0 }

// Apply implements QOp.
func (QMaxOverPoints) Apply(x *QTensor) *QTensor {
	n, p, f := x.Dim(0), x.Dim(1), x.Dim(2)
	out := NewQTensor(x.Scale, x.Zero, n, f)
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			bv := x.Data[(ni*p)*f+fi]
			for pi := 1; pi < p; pi++ {
				if v := x.Data[(ni*p+pi)*f+fi]; v > bv {
					bv = v
				}
			}
			out.Data[ni*f+fi] = bv
		}
	}
	return out
}

// QReshape reinterprets the non-batch dimensions.
type QReshape struct {
	Dims []int // empty = flatten
}

var _ QOp = QReshape{}

// Name implements QOp.
func (r QReshape) Name() string {
	if len(r.Dims) == 0 {
		return "QFlatten"
	}
	return fmt.Sprintf("QReshape%v", r.Dims)
}

// WeightBytes implements QOp.
func (QReshape) WeightBytes() int { return 0 }

// Apply implements QOp.
func (r QReshape) Apply(x *QTensor) *QTensor {
	n := x.Dim(0)
	var shape []int
	if len(r.Dims) == 0 {
		shape = []int{n, x.NumElems() / n}
	} else {
		shape = append([]int{n}, r.Dims...)
	}
	return &QTensor{Shape: shape, Data: x.Data, Scale: x.Scale, Zero: x.Zero}
}

// QReLU clamps to the zero point (used only when a ReLU could not be fused
// into the preceding layer).
type QReLU struct{}

var _ QOp = QReLU{}

// Name implements QOp.
func (QReLU) Name() string { return "QReLU" }

// WeightBytes implements QOp.
func (QReLU) WeightBytes() int { return 0 }

// Apply implements QOp.
func (QReLU) Apply(x *QTensor) *QTensor {
	out := NewQTensor(x.Scale, x.Zero, x.Shape...)
	z := int8(clampInt8(x.Zero))
	for i, v := range x.Data {
		if v < z {
			v = z
		}
		out.Data[i] = v
	}
	return out
}

// QGroup regroups [B, F] → [B/P, P, F] on int8 data.
type QGroup struct {
	P int
}

var _ QOp = QGroup{}

// Name implements QOp.
func (g QGroup) Name() string { return fmt.Sprintf("QGroup(%d)", g.P) }

// WeightBytes implements QOp.
func (QGroup) WeightBytes() int { return 0 }

// Apply implements QOp.
func (g QGroup) Apply(x *QTensor) *QTensor {
	b, f := x.Dim(0), x.Dim(1)
	if b%g.P != 0 {
		panic(fmt.Sprintf("quant: QGroup(%d) batch %d not divisible", g.P, b))
	}
	return &QTensor{Shape: []int{b / g.P, g.P, f}, Data: x.Data, Scale: x.Scale, Zero: x.Zero}
}

// QUngroup flattens [N, P, F] → [N·P, F] on int8 data.
type QUngroup struct{}

var _ QOp = QUngroup{}

// Name implements QOp.
func (QUngroup) Name() string { return "QUngroup" }

// WeightBytes implements QOp.
func (QUngroup) WeightBytes() int { return 0 }

// Apply implements QOp.
func (QUngroup) Apply(x *QTensor) *QTensor {
	return &QTensor{Shape: []int{x.Dim(0) * x.Dim(1), x.Dim(2)}, Data: x.Data, Scale: x.Scale, Zero: x.Zero}
}
