package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hawccc/internal/nn"
	"hawccc/internal/tensor"
)

func TestRangeParams(t *testing.T) {
	tests := []struct {
		name     string
		r        Range
		wantZero bool // zero point at an extreme
	}{
		{"symmetric", Range{-1, 1}, false},
		{"positive only", Range{0, 6}, true},  // relu-style: zero = -128
		{"negative only", Range{-4, 0}, true}, // zero = 127
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			scale, zero := tt.r.Params()
			if scale <= 0 {
				t.Fatalf("scale %v", scale)
			}
			// Real 0 must be exactly representable.
			real0 := scale * float64(0-zero)
			_ = real0
			// quantize(0) must be in range.
			q := int32(math.Round(0/scale)) + zero
			if q < -128 || q > 127 {
				t.Errorf("quantized zero %d out of range", q)
			}
			// Range endpoints must be representable within one step.
			for _, v := range []float64{tt.r.Min, tt.r.Max} {
				q := float64(clampInt8(int32(math.Round(v/scale)) + zero))
				back := scale * (q - float64(zero))
				if math.Abs(back-v) > scale*1.01 {
					t.Errorf("endpoint %v reconstructs to %v (scale %v)", v, back, scale)
				}
			}
		})
	}
	// Degenerate ranges.
	if s, z := (Range{0, 0}).Params(); s != 1 || z != 0 {
		t.Error("zero-width range should give identity params")
	}
	if s, z := EmptyRange().Params(); s != 1 || z != 0 {
		t.Error("empty range should give identity params")
	}
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(100)
	x.RandNormal(rng, 2)
	r := EmptyRange()
	r.Update(x)
	scale, zero := r.Params()
	q := QuantizeActivations(x, scale, zero)
	back := q.Dequantize()
	for i := range x.Data {
		if math.Abs(float64(back.Data[i]-x.Data[i])) > scale {
			t.Fatalf("element %d: %v → %v (scale %v)", i, x.Data[i], back.Data[i], scale)
		}
	}
}

func TestQuantizeWeightsSymmetric(t *testing.T) {
	w := tensor.FromSlice([]float32{-2, -1, 0, 1, 2}, 5)
	q, scale := QuantizeWeights(w)
	if q[2] != 0 {
		t.Error("zero weight must quantize to 0")
	}
	if q[0] != -q[4] || q[1] != -q[3] {
		t.Error("symmetric weights must quantize symmetrically")
	}
	if math.Abs(scale-2.0/127) > 1e-12 {
		t.Errorf("scale = %v", scale)
	}
	// All-zero weights must not divide by zero.
	q2, s2 := QuantizeWeights(tensor.New(4))
	if s2 <= 0 || q2[0] != 0 {
		t.Error("zero weights mishandled")
	}
}

func TestMultiplierMatchesFloat(t *testing.T) {
	f := func(m float64, acc int32) bool {
		m = math.Abs(m)
		m = math.Mod(m, 4)
		if m < 1e-6 || math.IsNaN(m) {
			m = 0.5
		}
		if acc > 1<<24 || acc < -(1<<24) {
			acc = acc % (1 << 24)
		}
		mult := NewMultiplier(m)
		got := mult.Apply(acc)
		want := math.Round(float64(acc) * m)
		return math.Abs(float64(got)-want) <= 1.0+math.Abs(want)*1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMultiplierPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiplier(0)
}

// buildCNN returns a trained-ish small CNN (random weights, realistic BN
// stats) for fold/quantize testing.
func buildCNN(rng *rand.Rand) *nn.Sequential {
	m := (&nn.Sequential{}).Add(
		nn.NewConv2D(3, 3, 2, 4, rng),
		nn.NewBatchNorm(4),
		nn.NewReLU(),
		nn.NewMaxPool2D(),
		nn.NewFlatten(),
		nn.NewDense(2*2*4, 8, rng),
		nn.NewBatchNorm(8),
		nn.NewReLU(),
		nn.NewDense(8, 2, rng),
	)
	// Run a few training-mode forwards so BN running stats are realistic.
	for i := 0; i < 20; i++ {
		x := tensor.New(8, 4, 4, 2)
		x.RandNormal(rng, 1)
		m.Forward(x, true)
	}
	return m
}

func TestFoldBatchNormEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := buildCNN(rng)
	folded := FoldBatchNorm(m)

	// Folded model must have no BatchNorm layers.
	for _, l := range folded.Layers {
		if _, ok := l.(*nn.BatchNorm); ok {
			t.Fatal("BatchNorm survived folding")
		}
	}

	for trial := 0; trial < 5; trial++ {
		x := tensor.New(3, 4, 4, 2)
		x.RandNormal(rng, 1)
		want := m.Forward(x, false)
		got := folded.Forward(x, false)
		for i := range want.Data {
			if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-3 {
				t.Fatalf("trial %d output %d: folded %v vs original %v",
					trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestFoldDropsDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := (&nn.Sequential{}).Add(
		nn.NewDense(4, 4, rng),
		nn.NewDropout(0.5, rng),
		nn.NewDense(4, 2, rng),
	)
	folded := FoldBatchNorm(m)
	if len(folded.Layers) != 2 {
		t.Errorf("folded layers = %d, want 2 (dropout removed)", len(folded.Layers))
	}
}

func TestQuantizedCNNCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := buildCNN(rng)

	calib := make([]*tensor.Tensor, 20)
	for i := range calib {
		x := tensor.New(1, 4, 4, 2)
		x.RandNormal(rng, 1)
		calib[i] = x
	}
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}

	// Quantized logits must be close enough to preserve argmax most of the
	// time and values within a reasonable tolerance.
	agree, total := 0, 0
	var maxErr float64
	for trial := 0; trial < 30; trial++ {
		x := tensor.New(1, 4, 4, 2)
		x.RandNormal(rng, 1)
		fp := m.Forward(x, false)
		q := qm.Forward(x)
		if nn.Argmax(fp)[0] == nn.Argmax(q)[0] {
			agree++
		}
		total++
		for i := range fp.Data {
			if e := math.Abs(float64(fp.Data[i] - q.Data[i])); e > maxErr {
				maxErr = e
			}
		}
	}
	if agree < total*8/10 {
		t.Errorf("argmax agreement %d/%d", agree, total)
	}
	_, hi := tensorAbsRange(m, rng)
	if maxErr > hi*0.35 {
		t.Errorf("max logit error %v too large relative to logit scale %v", maxErr, hi)
	}
}

// tensorAbsRange estimates the logit magnitude scale of the model.
func tensorAbsRange(m *nn.Sequential, rng *rand.Rand) (lo, hi float64) {
	x := tensor.New(8, 4, 4, 2)
	x.RandNormal(rng, 1)
	out := m.Forward(x, false)
	mn, mx := out.MinMax()
	return float64(mn), math.Max(math.Abs(float64(mn)), math.Abs(float64(mx)))
}

func TestQuantizePointNetStyleGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// PointNet-style graph: shared per-point MLP (points flattened into
	// the batch), group back into clouds of 4 points, max-aggregate, FC.
	m := (&nn.Sequential{}).Add(
		nn.NewDense(3, 8, rng),
		nn.NewBatchNorm(8),
		nn.NewReLU(),
		nn.NewGroup(4),
		nn.NewMaxOverPoints(),
		nn.NewDense(8, 2, rng),
	)
	calib := make([]*tensor.Tensor, 10)
	for i := range calib {
		x := tensor.New(4, 3) // one cloud of 4 points as a "batch"
		x.RandNormal(rng, 1)
		calib[i] = x
	}
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3)
	x.RandNormal(rng, 1)
	fp := m.Forward(x, false)
	q := qm.Forward(x)
	if fp.NumElems() != q.NumElems() {
		t.Fatalf("shape mismatch %v vs %v", fp.Shape, q.Shape)
	}
}

func TestQuantizeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := (&nn.Sequential{}).Add(nn.NewDense(2, 2, rng))
	if _, err := Quantize(m, nil); err == nil {
		t.Error("empty calibration accepted")
	}
	// Leading BatchNorm cannot fold.
	m2 := (&nn.Sequential{}).Add(nn.NewBatchNorm(2), nn.NewDense(2, 2, rng))
	x := tensor.New(1, 2)
	if _, err := Quantize(m2, []*tensor.Tensor{x}); err == nil {
		t.Error("unfoldable BatchNorm accepted")
	}
}

func TestModelWeightBytesAndSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := (&nn.Sequential{}).Add(nn.NewDense(4, 3, rng))
	x := tensor.New(1, 4)
	x.RandNormal(rng, 1)
	qm, err := Quantize(m, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	want := 4*3 + 4*3 // int8 weights + int32 bias
	if got := qm.WeightBytes(); got != want {
		t.Errorf("WeightBytes = %d, want %d", got, want)
	}
	if qm.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestQReLUStandalone(t *testing.T) {
	q := &QTensor{Shape: []int{1, 4}, Data: []int8{-10, -3, 0, 5}, Scale: 1, Zero: -3}
	out := QReLU{}.Apply(q)
	want := []int8{-3, -3, 0, 5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("QReLU[%d] = %d, want %d", i, out.Data[i], want[i])
		}
	}
}
