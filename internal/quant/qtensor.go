// Package quant implements post-training 8-bit quantization for models
// built with internal/nn, mirroring the TensorFlow Lite converter workflow
// the paper uses for edge deployment (Section VI): batch-norm layers are
// folded into the preceding convolution or dense layer, activation ranges
// are calibrated on a sample of training data, and inference then runs
// with int8 weights/activations and int32 accumulators using fixed-point
// requantization multipliers.
package quant

import (
	"fmt"
	"math"

	"hawccc/internal/tensor"
)

// QTensor is an int8 tensor with affine quantization parameters:
// real = Scale · (q − Zero).
type QTensor struct {
	Shape []int
	Data  []int8
	Scale float64
	Zero  int32
}

// NewQTensor allocates a zeroed QTensor.
func NewQTensor(scale float64, zero int32, shape ...int) *QTensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &QTensor{
		Shape: append([]int(nil), shape...),
		Data:  make([]int8, n),
		Scale: scale,
		Zero:  zero,
	}
}

// Dim returns the size of dimension i.
func (q *QTensor) Dim(i int) int { return q.Shape[i] }

// NumElems returns the element count.
func (q *QTensor) NumElems() int { return len(q.Data) }

// Range is a calibrated activation range.
type Range struct {
	Min, Max float64
}

// Update widens the range to include every element of t.
func (r *Range) Update(t *tensor.Tensor) {
	for _, v := range t.Data {
		f := float64(v)
		if f < r.Min {
			r.Min = f
		}
		if f > r.Max {
			r.Max = f
		}
	}
}

// EmptyRange returns a range that any Update will replace.
func EmptyRange() Range {
	return Range{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Params derives the affine quantization (scale, zero point) covering the
// range, following the TFLite asymmetric int8 scheme: zero must be exactly
// representable, and the range is nudged to include 0.
func (r Range) Params() (scale float64, zero int32) {
	lo, hi := r.Min, r.Max
	if math.IsInf(lo, 1) || math.IsInf(hi, -1) {
		return 1, 0 // nothing calibrated
	}
	// The real value 0 must be representable (zero padding, ReLU cut).
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		return 1, 0
	}
	scale = (hi - lo) / 255
	z := math.Round(-128 - lo/scale)
	if z < -128 {
		z = -128
	}
	if z > 127 {
		z = 127
	}
	return scale, int32(z)
}

// QuantizeActivations converts a float tensor to int8 with the given
// affine parameters.
func QuantizeActivations(t *tensor.Tensor, scale float64, zero int32) *QTensor {
	q := NewQTensor(scale, zero, t.Shape...)
	inv := 1 / scale
	for i, v := range t.Data {
		q.Data[i] = clampInt8(int32(math.Round(float64(v)*inv)) + zero)
	}
	return q
}

// Dequantize converts back to float32.
func (q *QTensor) Dequantize() *tensor.Tensor {
	t := tensor.New(q.Shape...)
	for i, v := range q.Data {
		t.Data[i] = float32(q.Scale * float64(int32(v)-q.Zero))
	}
	return t
}

// QuantizeWeights converts weights to symmetric int8 (zero point 0),
// returning the int8 data and the scale.
func QuantizeWeights(w *tensor.Tensor) ([]int8, float64) {
	absMax := float64(w.AbsMax())
	if absMax == 0 {
		absMax = 1
	}
	scale := absMax / 127
	out := make([]int8, len(w.Data))
	inv := 1 / scale
	for i, v := range w.Data {
		out[i] = clampInt8(int32(math.Round(float64(v) * inv)))
	}
	return out, scale
}

// QuantizeBias converts a float bias to int32 at scale sIn·sW (the
// accumulator scale).
func QuantizeBias(b *tensor.Tensor, accScale float64) []int32 {
	out := make([]int32, len(b.Data))
	for i, v := range b.Data {
		out[i] = int32(math.Round(float64(v) / accScale))
	}
	return out
}

func clampInt8(v int32) int8 {
	if v < -128 {
		return -128
	}
	if v > 127 {
		return 127
	}
	return int8(v)
}

// Multiplier is a fixed-point representation of a positive real multiplier
// m < 1: m ≈ M · 2^(−31−Shift) with M in [2^30, 2^31).
type Multiplier struct {
	M     int32
	Shift int
}

// NewMultiplier decomposes m. It panics for non-positive m; m ≥ 1 is
// supported via negative Shift.
func NewMultiplier(m float64) Multiplier {
	if m <= 0 {
		panic(fmt.Sprintf("quant: non-positive multiplier %v", m))
	}
	shift := 0
	for m < 0.5 {
		m *= 2
		shift++
	}
	for m >= 1 {
		m /= 2
		shift--
	}
	q := int64(math.Round(m * (1 << 31)))
	if q == 1<<31 { // rounding overflow
		q /= 2
		shift--
	}
	return Multiplier{M: int32(q), Shift: shift}
}

// Apply computes round(acc · m) in pure integer arithmetic.
func (mu Multiplier) Apply(acc int32) int32 {
	prod := int64(acc) * int64(mu.M) // fits in int64
	// Round-half-away-from-zero shift by 31 + Shift.
	totalShift := uint(31 + mu.Shift)
	if mu.Shift < -31 {
		panic("quant: multiplier shift out of range")
	}
	var rounded int64
	if totalShift == 0 {
		rounded = prod
	} else {
		half := int64(1) << (totalShift - 1)
		if prod >= 0 {
			rounded = (prod + half) >> totalShift
		} else {
			rounded = -((-prod + half) >> totalShift)
		}
	}
	if rounded > math.MaxInt32 {
		return math.MaxInt32
	}
	if rounded < math.MinInt32 {
		return math.MinInt32
	}
	return int32(rounded)
}
