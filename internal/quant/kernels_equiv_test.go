package quant

import (
	"math/rand"
	"testing"

	"hawccc/internal/tensor"
)

// Integer arithmetic is exact, so the int8 GEMM path must equal the
// scalar reference element for element — no tolerance.

func TestQConvGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		cin := rng.Intn(5) + 1
		cout := rng.Intn(12) + 1
		h := rng.Intn(9) + 1
		w := rng.Intn(9) + 1
		n := rng.Intn(4) + 1
		op := &QConv2D{
			KH: 3, KW: 3, Cin: cin, Cout: cout,
			W:       make([]int8, 3*3*cin*cout),
			Bias:    make([]int32, cout),
			InScale: 0.1, InZero: int32(rng.Intn(40) - 20),
			OutScale: 0.2, OutZero: int32(rng.Intn(40) - 20),
			Mult:      NewMultiplier(0.5),
			FusedReLU: trial%2 == 0,
		}
		for i := range op.W {
			op.W[i] = int8(rng.Intn(256) - 128)
		}
		for i := range op.Bias {
			op.Bias[i] = int32(rng.Intn(2048) - 1024)
		}
		x := NewQTensor(op.InScale, op.InZero, n, h, w, cin)
		for i := range x.Data {
			x.Data[i] = int8(rng.Intn(256) - 128)
		}
		want := op.ApplyNaive(x)
		got := op.Apply(x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d (n=%d h=%d w=%d cin=%d cout=%d): [%d] gemm %d naive %d",
					trial, n, h, w, cin, cout, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestQDenseGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 32} {
		in := rng.Intn(60) + 1
		out := rng.Intn(30) + 1
		op := &QDense{
			In: in, Out: out,
			W:       make([]int8, in*out),
			Bias:    make([]int32, out),
			InScale: 0.1, InZero: int32(rng.Intn(40) - 20),
			OutScale: 0.2, OutZero: int32(rng.Intn(40) - 20),
			Mult:      NewMultiplier(0.25),
			FusedReLU: n%2 == 0,
		}
		for i := range op.W {
			op.W[i] = int8(rng.Intn(256) - 128)
		}
		for i := range op.Bias {
			op.Bias[i] = int32(rng.Intn(2048) - 1024)
		}
		x := NewQTensor(op.InScale, op.InZero, n, in)
		for i := range x.Data {
			x.Data[i] = int8(rng.Intn(256) - 128)
		}
		want := op.ApplyNaive(x)
		got := op.Apply(x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("n=%d in=%d out=%d: [%d] gemm %d naive %d", n, in, out, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestModelForwardNaiveMatchesForward pins the two routes through a full
// quantized graph (conv, pool, dense, fused ReLU) at several batch sizes.
func TestModelForwardNaiveMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := buildCNN(rng)
	calib := make([]*tensor.Tensor, 10)
	for i := range calib {
		x := tensor.New(1, 4, 4, 2)
		x.RandNormal(rng, 1)
		calib[i] = x
	}
	qm, err := Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 8} {
		x := tensor.New(n, 4, 4, 2)
		x.RandNormal(rng, 1)
		want := qm.ForwardNaive(x)
		got := qm.Forward(x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("batch %d: [%d] gemm %v naive %v", n, i, got.Data[i], want.Data[i])
			}
		}
	}
}
