package quant

import (
	"fmt"

	"hawccc/internal/nn"
	"hawccc/internal/tensor"
)

// Model is a fully quantized inference graph: input quantization
// parameters, a chain of int8 ops, and a float output dequantization.
type Model struct {
	Ops     []QOp
	InScale float64
	InZero  int32
}

// Forward quantizes x, runs the int8 graph, and returns dequantized
// float32 outputs.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	q := QuantizeActivations(x, m.InScale, m.InZero)
	for _, op := range m.Ops {
		q = op.Apply(q)
	}
	return q.Dequantize()
}

// naiveApplier is implemented by ops that keep a scalar reference
// implementation alongside their GEMM Apply.
type naiveApplier interface {
	ApplyNaive(x *QTensor) *QTensor
}

// ForwardNaive is Forward routed through the scalar reference kernels.
// Integer arithmetic makes it exactly equal to Forward; it exists to
// measure the int8 GEMM speedup (hawcbench -exp kernels) and to pin the
// two paths together in tests.
func (m *Model) ForwardNaive(x *tensor.Tensor) *tensor.Tensor {
	q := QuantizeActivations(x, m.InScale, m.InZero)
	for _, op := range m.Ops {
		if na, ok := op.(naiveApplier); ok {
			q = na.ApplyNaive(q)
		} else {
			q = op.Apply(q)
		}
	}
	return q.Dequantize()
}

// WeightBytes returns the total int8 parameter footprint.
func (m *Model) WeightBytes() int {
	n := 0
	for _, op := range m.Ops {
		n += op.WeightBytes()
	}
	return n
}

// Summary describes the quantized graph.
func (m *Model) Summary() string {
	s := fmt.Sprintf("input: scale=%.6f zero=%d\n", m.InScale, m.InZero)
	for _, op := range m.Ops {
		s += op.Name() + "\n"
	}
	s += fmt.Sprintf("int8 weight bytes: %d\n", m.WeightBytes())
	return s
}

// stage is a group of FP layers that becomes one QOp.
type stage struct {
	layers    []nn.Layer // executed for calibration
	conv      *nn.Conv2D
	dense     *nn.Dense
	pool      bool
	maxPoints bool
	reshape   *nn.Reshape
	group     int // >0: Group(P)
	ungroup   bool
	relu      bool // standalone ReLU stage
	fusedReLU bool
}

// Quantize converts a trained FP32 model into an int8 Model. calib is the
// calibration set (the paper uses 100 random training samples); every
// tensor must have the model's input shape. BatchNorm layers are folded
// first; ReLUs immediately after conv/dense are fused into the layer's
// output clamp.
func Quantize(m *nn.Sequential, calib []*tensor.Tensor) (*Model, error) {
	if len(calib) == 0 {
		return nil, fmt.Errorf("quant: empty calibration set")
	}
	folded := FoldBatchNorm(m)

	// Group folded layers into stages.
	var stages []*stage
	for i := 0; i < len(folded.Layers); i++ {
		switch l := folded.Layers[i].(type) {
		case *nn.Conv2D:
			st := &stage{layers: []nn.Layer{l}, conv: l}
			if i+1 < len(folded.Layers) {
				if r, ok := folded.Layers[i+1].(*nn.ReLU); ok {
					st.layers = append(st.layers, r)
					st.fusedReLU = true
					i++
				}
			}
			stages = append(stages, st)
		case *nn.Dense:
			st := &stage{layers: []nn.Layer{l}, dense: l}
			if i+1 < len(folded.Layers) {
				if r, ok := folded.Layers[i+1].(*nn.ReLU); ok {
					st.layers = append(st.layers, r)
					st.fusedReLU = true
					i++
				}
			}
			stages = append(stages, st)
		case *nn.MaxPool2D:
			stages = append(stages, &stage{layers: []nn.Layer{l}, pool: true})
		case *nn.MaxOverPoints:
			stages = append(stages, &stage{layers: []nn.Layer{l}, maxPoints: true})
		case *nn.Reshape:
			stages = append(stages, &stage{layers: []nn.Layer{l}, reshape: l})
		case *nn.Group:
			stages = append(stages, &stage{layers: []nn.Layer{l}, group: l.P})
		case *nn.Ungroup:
			stages = append(stages, &stage{layers: []nn.Layer{l}, ungroup: true})
		case *nn.ReLU:
			stages = append(stages, &stage{layers: []nn.Layer{l}, relu: true})
		case *nn.BatchNorm:
			return nil, fmt.Errorf("quant: unfoldable BatchNorm (not preceded by conv/dense)")
		default:
			return nil, fmt.Errorf("quant: unsupported layer %s", folded.Layers[i].Name())
		}
	}

	// Calibrate: input range plus each stage's output range.
	inRange := EmptyRange()
	outRanges := make([]Range, len(stages))
	for i := range outRanges {
		outRanges[i] = EmptyRange()
	}
	for _, x := range calib {
		inRange.Update(x)
		cur := x
		for si, st := range stages {
			for _, l := range st.layers {
				cur = l.Forward(cur, false)
			}
			outRanges[si].Update(cur)
		}
	}

	inScale, inZero := inRange.Params()
	model := &Model{InScale: inScale, InZero: inZero}
	curScale, curZero := inScale, inZero
	for si, st := range stages {
		switch {
		case st.conv != nil:
			outScale, outZero := outRanges[si].Params()
			wq, wScale := QuantizeWeights(st.conv.W.Value)
			accScale := curScale * wScale
			op := &QConv2D{
				KH: st.conv.KH, KW: st.conv.KW,
				Cin: st.conv.Cin, Cout: st.conv.Cout,
				W:       wq,
				Bias:    QuantizeBias(st.conv.B.Value, accScale),
				InScale: curScale, InZero: curZero,
				OutScale: outScale, OutZero: outZero,
				Mult:      NewMultiplier(accScale / outScale),
				FusedReLU: st.fusedReLU,
			}
			model.Ops = append(model.Ops, op)
			curScale, curZero = outScale, outZero
		case st.dense != nil:
			outScale, outZero := outRanges[si].Params()
			wq, wScale := QuantizeWeights(st.dense.W.Value)
			accScale := curScale * wScale
			op := &QDense{
				In: st.dense.In, Out: st.dense.Out,
				W:       wq,
				Bias:    QuantizeBias(st.dense.B.Value, accScale),
				InScale: curScale, InZero: curZero,
				OutScale: outScale, OutZero: outZero,
				Mult:      NewMultiplier(accScale / outScale),
				FusedReLU: st.fusedReLU,
			}
			model.Ops = append(model.Ops, op)
			curScale, curZero = outScale, outZero
		case st.pool:
			model.Ops = append(model.Ops, QMaxPool2D{})
		case st.maxPoints:
			model.Ops = append(model.Ops, QMaxOverPoints{})
		case st.reshape != nil:
			model.Ops = append(model.Ops, QReshape{Dims: st.reshape.TargetDims()})
		case st.group > 0:
			model.Ops = append(model.Ops, QGroup{P: st.group})
		case st.ungroup:
			model.Ops = append(model.Ops, QUngroup{})
		case st.relu:
			model.Ops = append(model.Ops, QReLU{})
		}
	}
	return model, nil
}
