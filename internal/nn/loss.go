package nn

import (
	"fmt"
	"math"

	"hawccc/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy of softmax(logits)
// against integer labels, returning the loss and ∂L/∂logits. logits is
// [N, K]; labels has length N with values in [0, K).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits", len(labels), n))
	}
	grad := tensor.New(n, k)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		// log-sum-exp for stability
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logSum := math.Log(sum) + float64(maxV)
		lbl := labels[i]
		if lbl < 0 || lbl >= k {
			panic(fmt.Sprintf("nn: label %d outside [0, %d)", lbl, k))
		}
		loss += logSum - float64(row[lbl])
		g := grad.Data[i*k : (i+1)*k]
		for j, v := range row {
			g[j] = float32(math.Exp(float64(v)-logSum)) / float32(n)
		}
		g[lbl] -= 1 / float32(n)
	}
	return loss / float64(n), grad
}

// Softmax returns the row-wise softmax probabilities of logits [N, K].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		o := out.Data[i*k : (i+1)*k]
		for j, v := range row {
			o[j] = float32(math.Exp(float64(v - maxV)))
			sum += float64(o[j])
		}
		for j := range o {
			o[j] = float32(float64(o[j]) / sum)
		}
	}
	return out
}

// MSELoss computes the mean squared error between pred and target and the
// gradient ∂L/∂pred. Shapes must match.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if pred.NumElems() != target.NumElems() {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape, target.Shape))
	}
	grad := tensor.New(pred.Shape...)
	var loss float64
	n := float64(pred.NumElems())
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += float64(d) * float64(d)
		grad.Data[i] = 2 * d / float32(n)
	}
	return loss / n, grad
}

// Argmax returns the index of the largest value in each row of a [N, K]
// tensor.
func Argmax(t *tensor.Tensor) []int {
	n, k := t.Dim(0), t.Dim(1)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := t.Data[i*k : (i+1)*k]
		best := 0
		for j, v := range row[1:] {
			if v > row[best] {
				best = j + 1
			}
		}
		out[i] = best
	}
	return out
}
