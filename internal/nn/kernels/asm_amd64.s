// SIMD micro-kernels. See asm_amd64.go for the contract: lanes run
// along j (the packed panel), each lane accumulates its own output
// element in ascending k with separate multiply and add, so results are
// bit-identical to the pure-Go and naive paths.

#include "textflag.h"

// func cpuFeatures() (avx, avx2 bool)
TEXT ·cpuFeatures(SB), NOSPLIT, $0-2
	MOVB $0, avx+0(FP)
	MOVB $0, avx2+1(FP)

	// Highest supported CPUID leaf must cover leaf 7.
	XORL AX, AX
	CPUID
	CMPL AX, $7
	JL   done

	// Leaf 1: ECX bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8
	CMPL R8, $(1<<27 | 1<<28)
	JNE  done

	// XCR0 bits 1 and 2: OS saves XMM and YMM state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  done
	MOVB $1, avx+0(FP)

	// Leaf 7 subleaf 0: EBX bit 5 = AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   done
	MOVB $1, avx2+1(FP)

done:
	RET

// func micro8x8avx(k int, a *float32, lda int, panel *float32, c *float32, ldc int)
//
// Eight YMM accumulators, one per C row; per k step: one panel load,
// eight broadcast/mul/add triples. Strides arrive in elements and are
// scaled to bytes here; rows 0..7 are addressed via {1,2,3,4,5,7}×stride
// index registers (row 6 is 3×stride scaled by 2).
TEXT ·micro8x8avx(SB), NOSPLIT, $0-48
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), AX
	MOVQ lda+16(FP), DX
	MOVQ panel+24(FP), BX
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), SI
	SHLQ $2, DX               // lda in bytes
	SHLQ $2, SI               // ldc in bytes
	LEAQ (DX)(DX*2), R8       // 3·lda
	LEAQ (DX)(DX*4), R9      // 5·lda
	LEAQ (R8)(DX*4), R10     // 7·lda
	LEAQ (SI)(SI*2), R11     // 3·ldc
	LEAQ (SI)(SI*4), R12     // 5·ldc
	LEAQ (R11)(SI*4), R13    // 7·ldc

	// Load the bias-seeded C tile.
	VMOVUPS (DI), Y0
	VMOVUPS (DI)(SI*1), Y1
	VMOVUPS (DI)(SI*2), Y2
	VMOVUPS (DI)(R11*1), Y3
	VMOVUPS (DI)(SI*4), Y4
	VMOVUPS (DI)(R12*1), Y5
	VMOVUPS (DI)(R11*2), Y6
	VMOVUPS (DI)(R13*1), Y7

	TESTQ CX, CX
	JZ    store

loop:
	VMOVUPS (BX), Y8

	VBROADCASTSS (AX), Y9
	VMULPS Y8, Y9, Y9
	VADDPS Y9, Y0, Y0

	VBROADCASTSS (AX)(DX*1), Y9
	VMULPS Y8, Y9, Y9
	VADDPS Y9, Y1, Y1

	VBROADCASTSS (AX)(DX*2), Y9
	VMULPS Y8, Y9, Y9
	VADDPS Y9, Y2, Y2

	VBROADCASTSS (AX)(R8*1), Y9
	VMULPS Y8, Y9, Y9
	VADDPS Y9, Y3, Y3

	VBROADCASTSS (AX)(DX*4), Y9
	VMULPS Y8, Y9, Y9
	VADDPS Y9, Y4, Y4

	VBROADCASTSS (AX)(R9*1), Y9
	VMULPS Y8, Y9, Y9
	VADDPS Y9, Y5, Y5

	VBROADCASTSS (AX)(R8*2), Y9
	VMULPS Y8, Y9, Y9
	VADDPS Y9, Y6, Y6

	VBROADCASTSS (AX)(R10*1), Y9
	VMULPS Y8, Y9, Y9
	VADDPS Y9, Y7, Y7

	ADDQ $32, BX              // next packed panel line (NR floats)
	ADDQ $4, AX               // next a column
	DECQ CX
	JNZ  loop

store:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (DI)(SI*1)
	VMOVUPS Y2, (DI)(SI*2)
	VMOVUPS Y3, (DI)(R11*1)
	VMOVUPS Y4, (DI)(SI*4)
	VMOVUPS Y5, (DI)(R12*1)
	VMOVUPS Y6, (DI)(R11*2)
	VMOVUPS Y7, (DI)(R13*1)
	VZEROUPPER
	RET

// func micro4x8iavx(k int, aZero int32, a *int8, lda int, panel *int8, c *int32, ldc int)
//
// Four int32×8 accumulators. Per k step the 8 panel bytes sign-extend to
// dwords once; each row's a byte sign-extends in a GP register, shifts by
// the zero point, broadcasts, then VPMULLD/VPADDD — 32-bit wrapping ops,
// exactly Go's int32 arithmetic.
TEXT ·micro4x8iavx(SB), NOSPLIT, $0-56
	MOVQ  k+0(FP), CX
	MOVL  aZero+8(FP), R10
	MOVQ  a+16(FP), AX
	MOVQ  lda+24(FP), DX
	MOVQ  panel+32(FP), BX
	MOVQ  c+40(FP), DI
	MOVQ  ldc+48(FP), SI
	SHLQ  $2, SI              // ldc in bytes (c is int32); lda stays in bytes (a is int8)
	LEAQ  (DX)(DX*2), R8      // 3·lda
	LEAQ  (SI)(SI*2), R9      // 3·ldc

	VMOVDQU (DI), Y0
	VMOVDQU (DI)(SI*1), Y1
	VMOVDQU (DI)(SI*2), Y2
	VMOVDQU (DI)(R9*1), Y3

	TESTQ CX, CX
	JZ    istore

iloop:
	VPMOVSXBD (BX), Y8

	MOVBLSX (AX), R11
	SUBL    R10, R11
	VMOVD   R11, X9
	VPBROADCASTD X9, Y9
	VPMULLD Y8, Y9, Y9
	VPADDD  Y9, Y0, Y0

	MOVBLSX (AX)(DX*1), R11
	SUBL    R10, R11
	VMOVD   R11, X9
	VPBROADCASTD X9, Y9
	VPMULLD Y8, Y9, Y9
	VPADDD  Y9, Y1, Y1

	MOVBLSX (AX)(DX*2), R11
	SUBL    R10, R11
	VMOVD   R11, X9
	VPBROADCASTD X9, Y9
	VPMULLD Y8, Y9, Y9
	VPADDD  Y9, Y2, Y2

	MOVBLSX (AX)(R8*1), R11
	SUBL    R10, R11
	VMOVD   R11, X9
	VPBROADCASTD X9, Y9
	VPMULLD Y8, Y9, Y9
	VPADDD  Y9, Y3, Y3

	ADDQ $8, BX               // next packed panel line (NR bytes)
	INCQ AX                   // next a column
	DECQ CX
	JNZ  iloop

istore:
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, (DI)(SI*1)
	VMOVDQU Y2, (DI)(SI*2)
	VMOVDQU Y3, (DI)(R9*1)
	VZEROUPPER
	RET
