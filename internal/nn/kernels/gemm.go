// Package kernels provides the packed, register-blocked matrix kernels
// behind the inference hot path: im2col + GEMM for float32 convolution and
// dense layers, and an int8/int32 GEMM for the quantized graph.
//
// Accumulation contract: every kernel computes each output element as
// bias[j] followed by adds of a[i][k]·b[k][j] in strictly ascending k —
// the same operation sequence as the textbook scalar loops — so the GEMM
// path is bit-identical to the naive reference for float32 (and exactly
// equal, trivially, for the integer kernels). Register blocking tiles the
// i and j dimensions only; it never reorders the k accumulation of a
// single output element.
//
// Buffers (packed weight panels, im2col matrices) are caller-provided so
// the hot path stays allocation-free: internal/nn draws them from its
// Scratch arena and internal/quant from a pooled scratch.
package kernels

// Micro-tile dimensions. MR rows of A are streamed against an NR-wide
// packed column panel of B, keeping MR·NR accumulators live across the
// whole k loop so C is touched once per tile instead of once per k.
const (
	// MR is the number of A rows per micro-tile.
	MR = 4
	// NR is the packed panel width (B columns per micro-tile).
	NR = 8
)

// PackMinRows is the M below which packing B cannot pay for itself: with
// fewer rows than one micro-tile there is no cross-row reuse of a packed
// panel, and the O(K·N) pack cost rivals the O(M·K·N) multiply. Gemm and
// GemmInt8 fall back to the direct unpacked loop under this bound.
const PackMinRows = MR

// PackedLen returns the buffer length PackB needs for a K×N matrix: K
// rows of ceil(N/NR) zero-padded NR-wide panels.
func PackedLen(k, n int) int {
	return k * ((n + NR - 1) / NR) * NR
}

// PackB packs the row-major K×N matrix b into NR-wide column panels:
// panel p holds columns [p·NR, p·NR+NR) contiguously per k, so the
// micro-kernel reads one cache line per k step. Columns beyond N are
// zero-filled. dst must have at least PackedLen(k, n) elements; the
// packed slice is returned.
func PackB(k, n int, b, dst []float32) []float32 {
	panels := (n + NR - 1) / NR
	dst = dst[:panels*k*NR]
	for p := 0; p < panels; p++ {
		j := p * NR
		w := n - j
		if w > NR {
			w = NR
		}
		out := dst[p*k*NR : (p+1)*k*NR]
		for kk := 0; kk < k; kk++ {
			o := out[kk*NR : kk*NR+NR]
			copy(o, b[kk*n+j:kk*n+j+w])
			for t := w; t < NR; t++ {
				o[t] = 0
			}
		}
	}
	return dst
}

// Gemm computes C = A·B + bias for tight row-major A (M×K), B (K×N), and
// C (M×N); bias has length N (nil means zero). When M is large enough for
// packing to pay off and pack (of at least PackedLen(k, n) elements) is
// provided, B is packed and the register-blocked path runs; otherwise the
// direct loop runs. Both paths share the accumulation contract, so the
// choice never changes the result.
func Gemm(m, n, k int, a, b, bias, c []float32, pack []float32) {
	if m >= PackMinRows && pack != nil {
		GemmPacked(m, n, k, a, PackB(k, n, b, pack), bias, c)
		return
	}
	gemmDirect(m, n, k, a, b, bias, c)
}

// gemmDirect is the unpacked fallback: a broadcast-axpy loop over B rows.
func gemmDirect(m, n, k int, a, b, bias, c []float32) {
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		if bias != nil {
			copy(ci, bias)
		} else {
			for t := range ci {
				ci[t] = 0
			}
		}
		ai := a[i*k : i*k+k]
		for kk, av := range ai {
			bk := b[kk*n : kk*n+n]
			for j, bv := range bk {
				ci[j] += av * bv
			}
		}
	}
}

// GemmPacked computes C = A·B + bias with B pre-packed by PackB. A is
// row-major M×K, C row-major M×N. The same packed B may be reused across
// many calls (the convolution path packs once per layer and runs one GEMM
// per image).
func GemmPacked(m, n, k int, a, bp, bias, c []float32) {
	panels := (n + NR - 1) / NR
	for p := 0; p < panels; p++ {
		j := p * NR
		w := n - j
		if w > NR {
			w = NR
		}
		panel := bp[p*k*NR : (p+1)*k*NR]
		// Seed this panel's C columns with the bias so the micro-kernels
		// are pure accumulators.
		for i := 0; i < m; i++ {
			ci := c[i*n+j : i*n+j+w]
			if bias != nil {
				copy(ci, bias[j:j+w])
			} else {
				for t := range ci {
					ci[t] = 0
				}
			}
		}
		i := 0
		if w == NR {
			if useAVX && k > 0 {
				for ; i+2*MR <= m; i += 2 * MR {
					micro8x8avx(k, &a[i*k], k, &panel[0], &c[i*n+j], n)
				}
			}
			for ; i+MR <= m; i += MR {
				micro4x8(k,
					a[i*k:i*k+k], a[(i+1)*k:(i+1)*k+k], a[(i+2)*k:(i+2)*k+k], a[(i+3)*k:(i+3)*k+k],
					panel,
					c[i*n+j:], c[(i+1)*n+j:], c[(i+2)*n+j:], c[(i+3)*n+j:])
			}
		}
		for ; i < m; i++ {
			microRow(k, w, a[i*k:i*k+k], panel, c[i*n+j:i*n+j+w])
		}
	}
}

// micro4x8 accumulates a 4×8 C tile held in registers across the whole k
// loop: per k step it loads one packed B line and four A scalars for 32
// multiply-adds, instead of the naive loop's load/store of C per add.
func micro4x8(k int, a0, a1, a2, a3, panel []float32, c0, c1, c2, c3 []float32) {
	s00, s01, s02, s03, s04, s05, s06, s07 := c0[0], c0[1], c0[2], c0[3], c0[4], c0[5], c0[6], c0[7]
	s10, s11, s12, s13, s14, s15, s16, s17 := c1[0], c1[1], c1[2], c1[3], c1[4], c1[5], c1[6], c1[7]
	s20, s21, s22, s23, s24, s25, s26, s27 := c2[0], c2[1], c2[2], c2[3], c2[4], c2[5], c2[6], c2[7]
	s30, s31, s32, s33, s34, s35, s36, s37 := c3[0], c3[1], c3[2], c3[3], c3[4], c3[5], c3[6], c3[7]
	for kk := 0; kk < k; kk++ {
		b := panel[kk*NR : kk*NR+NR]
		b0, b1, b2, b3, b4, b5, b6, b7 := b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]
		av := a0[kk]
		s00 += av * b0
		s01 += av * b1
		s02 += av * b2
		s03 += av * b3
		s04 += av * b4
		s05 += av * b5
		s06 += av * b6
		s07 += av * b7
		av = a1[kk]
		s10 += av * b0
		s11 += av * b1
		s12 += av * b2
		s13 += av * b3
		s14 += av * b4
		s15 += av * b5
		s16 += av * b6
		s17 += av * b7
		av = a2[kk]
		s20 += av * b0
		s21 += av * b1
		s22 += av * b2
		s23 += av * b3
		s24 += av * b4
		s25 += av * b5
		s26 += av * b6
		s27 += av * b7
		av = a3[kk]
		s30 += av * b0
		s31 += av * b1
		s32 += av * b2
		s33 += av * b3
		s34 += av * b4
		s35 += av * b5
		s36 += av * b6
		s37 += av * b7
	}
	c0[0], c0[1], c0[2], c0[3], c0[4], c0[5], c0[6], c0[7] = s00, s01, s02, s03, s04, s05, s06, s07
	c1[0], c1[1], c1[2], c1[3], c1[4], c1[5], c1[6], c1[7] = s10, s11, s12, s13, s14, s15, s16, s17
	c2[0], c2[1], c2[2], c2[3], c2[4], c2[5], c2[6], c2[7] = s20, s21, s22, s23, s24, s25, s26, s27
	c3[0], c3[1], c3[2], c3[3], c3[4], c3[5], c3[6], c3[7] = s30, s31, s32, s33, s34, s35, s36, s37
}

// microRow handles M-remainder rows and N-remainder panels one row at a
// time against a packed panel of width w ≤ NR.
func microRow(k, w int, ai, panel, ci []float32) {
	for kk := 0; kk < k; kk++ {
		av := ai[kk]
		b := panel[kk*NR : kk*NR+w]
		for j, bv := range b {
			ci[j] += av * bv
		}
	}
}
