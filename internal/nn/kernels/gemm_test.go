package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refGemm is the textbook loop the kernels promise to match bit for bit:
// bias first, then k strictly ascending per output element.
func refGemm(m, n, k int, a, b, bias, c []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := float32(0)
			if bias != nil {
				acc = bias[j]
			}
			for kk := 0; kk < k; kk++ {
				acc += a[i*k+kk] * b[kk*n+j]
			}
			c[i*n+j] = acc
		}
	}
}

func refGemmInt8(m, n, k int, a []int8, aZero int32, b []int8, bias, c []int32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			if bias != nil {
				acc = bias[j]
			}
			for kk := 0; kk < k; kk++ {
				acc += (int32(a[i*k+kk]) - aZero) * int32(b[kk*n+j])
			}
			c[i*n+j] = acc
		}
	}
}

// dims maps three raw uint8s onto kernel-exercising sizes: remainders in
// both blocked dimensions, K of zero, and single rows/columns all occur.
func dims(mRaw, nRaw, kRaw uint8) (m, n, k int) {
	return int(mRaw%21) + 1, int(nRaw%21) + 1, int(kRaw % 40)
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestGemmPackedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(mRaw, nRaw, kRaw uint8) bool {
		m, n, k := dims(mRaw, nRaw, kRaw)
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		bias := randSlice(rng, n)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		refGemm(m, n, k, a, b, bias, want)
		GemmPacked(m, n, k, a, PackB(k, n, b, make([]float32, PackedLen(k, n))), bias, got)
		for i := range want {
			if got[i] != want[i] {
				t.Logf("m=%d n=%d k=%d: got[%d]=%v want %v", m, n, k, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmAutoMatchesReferenceBothPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int{1, 2, PackMinRows - 1, PackMinRows, 17, 32} {
		n, k := 11, 23
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		bias := randSlice(rng, n)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		refGemm(m, n, k, a, b, bias, want)
		Gemm(m, n, k, a, b, bias, got, make([]float32, PackedLen(k, n)))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d: got[%d]=%v want %v", m, i, got[i], want[i])
			}
		}
		// nil pack buffer must select the direct path and still agree.
		for i := range got {
			got[i] = -1
		}
		Gemm(m, n, k, a, b, bias, got, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d direct: got[%d]=%v want %v", m, i, got[i], want[i])
			}
		}
	}
}

func TestGemmNilBiasZeroInitializes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 9, 10, 7
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	want := make([]float32, m*n)
	refGemm(m, n, k, a, b, nil, want)
	got := make([]float32, m*n)
	for i := range got {
		got[i] = 99 // stale output must be overwritten, not accumulated
	}
	Gemm(m, n, k, a, b, nil, got, make([]float32, PackedLen(k, n)))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d]=%v want %v", i, got[i], want[i])
		}
	}
}

func TestGemmInt8MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(mRaw, nRaw, kRaw uint8, zRaw int8) bool {
		m, n, k := dims(mRaw, nRaw, kRaw)
		aZero := int32(zRaw)
		a := make([]int8, m*k)
		b := make([]int8, k*n)
		bias := make([]int32, n)
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
		}
		for i := range b {
			b[i] = int8(rng.Intn(256) - 128)
		}
		for i := range bias {
			bias[i] = int32(rng.Intn(4096) - 2048)
		}
		want := make([]int32, m*n)
		got := make([]int32, m*n)
		refGemmInt8(m, n, k, a, aZero, b, bias, want)
		GemmInt8(m, n, k, a, aZero, b, bias, got, make([]int8, PackedLen(k, n)))
		for i := range want {
			if got[i] != want[i] {
				t.Logf("m=%d n=%d k=%d zero=%d: got[%d]=%d want %d", m, n, k, aZero, i, got[i], want[i])
				return false
			}
		}
		// Direct path.
		for i := range got {
			got[i] = -7
		}
		GemmInt8(m, n, k, a, aZero, b, bias, got, nil)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// refIm2col gathers the patch matrix tap by tap, the obviously-correct way.
func refIm2col(h, w, cin, kh, kw int, src []float32) []float32 {
	k := kh * kw * cin
	ph, pw := kh/2, kw/2
	dst := make([]float32, h*w*k)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					iy, ix := y+ky-ph, x+kx-pw
					for ci := 0; ci < cin; ci++ {
						var v float32
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							v = src[(iy*w+ix)*cin+ci]
						}
						dst[(y*w+x)*k+(ky*kw+kx)*cin+ci] = v
					}
				}
			}
		}
	}
	return dst
}

func TestIm2colMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(hRaw, wRaw, cRaw, kRaw uint8) bool {
		h, w, cin := int(hRaw%9)+1, int(wRaw%9)+1, int(cRaw%5)+1
		ks := []int{1, 3, 5}
		kh := ks[int(kRaw)%3]
		kw := ks[int(kRaw/3)%3]
		src := randSlice(rng, h*w*cin)
		want := refIm2col(h, w, cin, kh, kw, src)
		got := make([]float32, len(want))
		for i := range got {
			got[i] = 42 // stale data must be fully overwritten
		}
		Im2col(h, w, cin, kh, kw, src, got)
		for i := range want {
			if got[i] != want[i] {
				t.Logf("h=%d w=%d cin=%d kh=%d kw=%d: [%d] got %v want %v", h, w, cin, kh, kw, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2colInt8PadsWithZeroPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h, w, cin, kh, kw := 4, 5, 3, 3, 3
	const zp = int8(-13)
	src := make([]int8, h*w*cin)
	for i := range src {
		src[i] = int8(rng.Intn(256) - 128)
	}
	k := kh * kw * cin
	got := make([]int8, h*w*k)
	Im2colInt8(h, w, cin, kh, kw, zp, src, got)
	ph, pw := kh/2, kw/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					iy, ix := y+ky-ph, x+kx-pw
					for ci := 0; ci < cin; ci++ {
						want := zp
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							want = src[(iy*w+ix)*cin+ci]
						}
						if v := got[(y*w+x)*k+(ky*kw+kx)*cin+ci]; v != want {
							t.Fatalf("(%d,%d) tap (%d,%d,%d): got %d want %d", y, x, ky, kx, ci, v, want)
						}
					}
				}
			}
		}
	}
}

func BenchmarkGemmPacked(b *testing.B) {
	// Conv-shaped GEMM: one 17×17 image of HAWC's first layer.
	m, n, k := 289, 8, 63
	rng := rand.New(rand.NewSource(7))
	a := randSlice(rng, m*k)
	w := randSlice(rng, k*n)
	bias := randSlice(rng, n)
	c := make([]float32, m*n)
	bp := PackB(k, n, w, make([]float32, PackedLen(k, n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmPacked(m, n, k, a, bp, bias, c)
	}
}

func BenchmarkGemmDirect(b *testing.B) {
	m, n, k := 289, 8, 63
	rng := rand.New(rand.NewSource(8))
	a := randSlice(rng, m*k)
	w := randSlice(rng, k*n)
	bias := randSlice(rng, n)
	c := make([]float32, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemmDirect(m, n, k, a, w, bias, c)
	}
}
