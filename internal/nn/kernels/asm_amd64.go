//go:build amd64

package kernels

// SIMD fast paths for the micro-kernels, written in Go assembly so the
// toolchain needs no cgo or external dependencies. The vector kernels
// keep the package's accumulation contract exactly: lanes run along the
// packed panel (the j dimension), so each SIMD lane owns one output
// element and accumulates bias-first in strictly ascending k with a
// separate IEEE multiply and add per step (VMULPS+VADDPS, never FMA).
// Lane-wise that is the same operation sequence as the scalar reference,
// so the assembly, pure-Go, and naive paths all produce bit-identical
// results and the dispatch below never changes values, only speed.
//
// useAVX gates the float32 kernel (AVX: 8-lane VBROADCASTSS/VMULPS/
// VADDPS on YMM); useAVX2 gates the int8 kernel (AVX2: VPMOVSXBD,
// VPBROADCASTD, VPMULLD, VPADDD — 32-bit wrapping arithmetic, identical
// to Go's int32 semantics). Detection checks CPUID and that the OS
// saves YMM state (OSXSAVE + XCR0), so a positive answer means the
// instructions are actually usable.
var useAVX, useAVX2 = cpuFeatures()

// cpuFeatures reports AVX and AVX2 availability, implemented in
// asm_amd64.s via CPUID/XGETBV.
func cpuFeatures() (avx, avx2 bool)

// micro8x8avx accumulates an 8-row × 8-column C tile against a packed
// panel: c[i][j] += Σ_k a[i][k]·b_panel[k][j] for i in [0,8), j in
// [0,8), with C rows at c[i·ldc] and A rows at a[i·lda] (strides in
// elements). C must already hold the bias seed. k must be ≥ 0; the tile
// must be fully in-bounds (callers guarantee 8 rows and a full panel).
//
//go:noescape
func micro8x8avx(k int, a *float32, lda int, panel *float32, c *float32, ldc int)

// micro4x8iavx is the int8 counterpart on a 4-row tile: 8 int32 lanes
// per row, a-values sign-extended and zero-point-shifted before the
// 32-bit multiply, exactly like the scalar kernel.
//
//go:noescape
func micro4x8iavx(k int, aZero int32, a *int8, lda int, panel *int8, c *int32, ldc int)
