//go:build !amd64

package kernels

// Non-amd64 builds run the pure-Go micro-kernels only. The constants
// compile the assembly dispatch away entirely.
const (
	useAVX  = false
	useAVX2 = false
)

func micro8x8avx(k int, a *float32, lda int, panel *float32, c *float32, ldc int) {
	panic("kernels: no assembly on this architecture")
}

func micro4x8iavx(k int, aZero int32, a *int8, lda int, panel *int8, c *int32, ldc int) {
	panic("kernels: no assembly on this architecture")
}
