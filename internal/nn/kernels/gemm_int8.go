package kernels

// Int8 GEMM: int8 operands, int32 accumulation, with the input's affine
// zero point subtracted from A on the fly (weights are quantized
// symmetrically, so B has no zero point). Integer arithmetic is exact, so
// — unlike the float kernel, where the accumulation contract has to be
// engineered — any blocking is trivially bit-identical to the scalar
// loop; the kernels keep the same ascending-k structure anyway.

// PackBInt8 packs the row-major K×N int8 matrix b into NR-wide column
// panels (layout identical to PackB). dst must have at least
// PackedLen(k, n) elements; the packed slice is returned.
func PackBInt8(k, n int, b, dst []int8) []int8 {
	panels := (n + NR - 1) / NR
	dst = dst[:panels*k*NR]
	for p := 0; p < panels; p++ {
		j := p * NR
		w := n - j
		if w > NR {
			w = NR
		}
		out := dst[p*k*NR : (p+1)*k*NR]
		for kk := 0; kk < k; kk++ {
			o := out[kk*NR : kk*NR+NR]
			copy(o, b[kk*n+j:kk*n+j+w])
			for t := w; t < NR; t++ {
				o[t] = 0
			}
		}
	}
	return dst
}

// GemmInt8 computes C[i][j] = bias[j] + Σ_k (A[i][k]−aZero)·B[k][j] with
// int32 accumulation, for tight row-major A (M×K), B (K×N), C (M×N).
// When M is large enough and pack is provided, B is packed and the
// register-blocked path runs; otherwise the direct loop runs. bias may be
// nil for zero.
func GemmInt8(m, n, k int, a []int8, aZero int32, b []int8, bias, c []int32, pack []int8) {
	if m >= PackMinRows && pack != nil {
		GemmInt8Packed(m, n, k, a, aZero, PackBInt8(k, n, b, pack), bias, c)
		return
	}
	gemmInt8Direct(m, n, k, a, aZero, b, bias, c)
}

// gemmInt8Direct is the unpacked fallback.
func gemmInt8Direct(m, n, k int, a []int8, aZero int32, b []int8, bias, c []int32) {
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		if bias != nil {
			copy(ci, bias)
		} else {
			for t := range ci {
				ci[t] = 0
			}
		}
		ai := a[i*k : i*k+k]
		for kk, aq := range ai {
			av := int32(aq) - aZero
			bk := b[kk*n : kk*n+n]
			for j, bv := range bk {
				ci[j] += av * int32(bv)
			}
		}
	}
}

// GemmInt8Packed computes the int8 GEMM with B pre-packed by PackBInt8.
// The convolution path packs once per layer and runs one GEMM per image.
func GemmInt8Packed(m, n, k int, a []int8, aZero int32, bp []int8, bias, c []int32) {
	panels := (n + NR - 1) / NR
	for p := 0; p < panels; p++ {
		j := p * NR
		w := n - j
		if w > NR {
			w = NR
		}
		panel := bp[p*k*NR : (p+1)*k*NR]
		for i := 0; i < m; i++ {
			ci := c[i*n+j : i*n+j+w]
			if bias != nil {
				copy(ci, bias[j:j+w])
			} else {
				for t := range ci {
					ci[t] = 0
				}
			}
		}
		i := 0
		if w == NR {
			if useAVX2 && k > 0 {
				for ; i+MR <= m; i += MR {
					micro4x8iavx(k, aZero, &a[i*k], k, &panel[0], &c[i*n+j], n)
				}
			}
			for ; i+MR <= m; i += MR {
				micro4x8i(k, aZero,
					a[i*k:i*k+k], a[(i+1)*k:(i+1)*k+k], a[(i+2)*k:(i+2)*k+k], a[(i+3)*k:(i+3)*k+k],
					panel,
					c[i*n+j:], c[(i+1)*n+j:], c[(i+2)*n+j:], c[(i+3)*n+j:])
			}
		}
		for ; i < m; i++ {
			microRowInt8(k, w, aZero, a[i*k:i*k+k], panel, c[i*n+j:i*n+j+w])
		}
	}
}

// micro4x8i is the int32-accumulator micro-kernel.
func micro4x8i(k int, aZero int32, a0, a1, a2, a3, panel []int8, c0, c1, c2, c3 []int32) {
	s00, s01, s02, s03, s04, s05, s06, s07 := c0[0], c0[1], c0[2], c0[3], c0[4], c0[5], c0[6], c0[7]
	s10, s11, s12, s13, s14, s15, s16, s17 := c1[0], c1[1], c1[2], c1[3], c1[4], c1[5], c1[6], c1[7]
	s20, s21, s22, s23, s24, s25, s26, s27 := c2[0], c2[1], c2[2], c2[3], c2[4], c2[5], c2[6], c2[7]
	s30, s31, s32, s33, s34, s35, s36, s37 := c3[0], c3[1], c3[2], c3[3], c3[4], c3[5], c3[6], c3[7]
	for kk := 0; kk < k; kk++ {
		b := panel[kk*NR : kk*NR+NR]
		b0, b1, b2, b3 := int32(b[0]), int32(b[1]), int32(b[2]), int32(b[3])
		b4, b5, b6, b7 := int32(b[4]), int32(b[5]), int32(b[6]), int32(b[7])
		av := int32(a0[kk]) - aZero
		s00 += av * b0
		s01 += av * b1
		s02 += av * b2
		s03 += av * b3
		s04 += av * b4
		s05 += av * b5
		s06 += av * b6
		s07 += av * b7
		av = int32(a1[kk]) - aZero
		s10 += av * b0
		s11 += av * b1
		s12 += av * b2
		s13 += av * b3
		s14 += av * b4
		s15 += av * b5
		s16 += av * b6
		s17 += av * b7
		av = int32(a2[kk]) - aZero
		s20 += av * b0
		s21 += av * b1
		s22 += av * b2
		s23 += av * b3
		s24 += av * b4
		s25 += av * b5
		s26 += av * b6
		s27 += av * b7
		av = int32(a3[kk]) - aZero
		s30 += av * b0
		s31 += av * b1
		s32 += av * b2
		s33 += av * b3
		s34 += av * b4
		s35 += av * b5
		s36 += av * b6
		s37 += av * b7
	}
	c0[0], c0[1], c0[2], c0[3], c0[4], c0[5], c0[6], c0[7] = s00, s01, s02, s03, s04, s05, s06, s07
	c1[0], c1[1], c1[2], c1[3], c1[4], c1[5], c1[6], c1[7] = s10, s11, s12, s13, s14, s15, s16, s17
	c2[0], c2[1], c2[2], c2[3], c2[4], c2[5], c2[6], c2[7] = s20, s21, s22, s23, s24, s25, s26, s27
	c3[0], c3[1], c3[2], c3[3], c3[4], c3[5], c3[6], c3[7] = s30, s31, s32, s33, s34, s35, s36, s37
}

// microRowInt8 handles remainder rows/panels for the int8 kernel.
func microRowInt8(k, w int, aZero int32, ai, panel []int8, ci []int32) {
	for kk := 0; kk < k; kk++ {
		av := int32(ai[kk]) - aZero
		b := panel[kk*NR : kk*NR+w]
		for j, bv := range b {
			ci[j] += av * int32(bv)
		}
	}
}
