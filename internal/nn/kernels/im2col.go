package kernels

// Im2col lowers one channel-last [H][W][Cin] image to the stride-1,
// same-padding patch matrix: row (y·W+x) of dst holds the KH·KW·Cin patch
// centered on (y, x) in (ky, kx, ci) order, with out-of-image taps set to
// zero. That tap order matches the scalar convolution loop, so a GEMM
// over the lowered matrix accumulates in exactly the naive order. dst
// needs H·W·KH·KW·Cin elements and is fully overwritten.
func Im2col(h, w, cin, kh, kw int, src, dst []float32) {
	k := kh * kw * cin
	ph, pw := kh/2, kw/2
	rowW := kw * cin
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			row := dst[(y*w+x)*k : (y*w+x)*k+k]
			x0 := x - pw
			for ky := 0; ky < kh; ky++ {
				iy := y + ky - ph
				seg := row[ky*rowW : ky*rowW+rowW]
				if iy < 0 || iy >= h {
					for t := range seg {
						seg[t] = 0
					}
					continue
				}
				if x0 >= 0 && x0+kw <= w {
					// Interior column: the kw taps are contiguous in src.
					copy(seg, src[(iy*w+x0)*cin:(iy*w+x0)*cin+rowW])
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x0 + kx
					tap := seg[kx*cin : kx*cin+cin]
					if ix < 0 || ix >= w {
						for t := range tap {
							tap[t] = 0
						}
					} else {
						copy(tap, src[(iy*w+ix)*cin:(iy*w+ix)*cin+cin])
					}
				}
			}
		}
	}
}

// Im2colInt8 is Im2col for int8 activations. Out-of-image taps are set to
// the activation zero point zp, so after the kernel subtracts the zero
// point they contribute exactly nothing — the same as the scalar loop
// skipping padded taps.
func Im2colInt8(h, w, cin, kh, kw int, zp int8, src, dst []int8) {
	k := kh * kw * cin
	ph, pw := kh/2, kw/2
	rowW := kw * cin
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			row := dst[(y*w+x)*k : (y*w+x)*k+k]
			x0 := x - pw
			for ky := 0; ky < kh; ky++ {
				iy := y + ky - ph
				seg := row[ky*rowW : ky*rowW+rowW]
				if iy < 0 || iy >= h {
					for t := range seg {
						seg[t] = zp
					}
					continue
				}
				if x0 >= 0 && x0+kw <= w {
					copy(seg, src[(iy*w+x0)*cin:(iy*w+x0)*cin+rowW])
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x0 + kx
					tap := seg[kx*cin : kx*cin+cin]
					if ix < 0 || ix >= w {
						for t := range tap {
							tap[t] = zp
						}
					} else {
						copy(tap, src[(iy*w+ix)*cin:(iy*w+ix)*cin+cin])
					}
				}
			}
		}
	}
}
