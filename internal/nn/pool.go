package nn

import (
	"fmt"

	"hawccc/internal/tensor"
)

// MaxPool2D is a 2×2, stride-2 max pooling over [N, H, W, C] inputs. Odd
// trailing rows/columns are dropped (floor semantics).
type MaxPool2D struct {
	argmax  []int
	inShape []int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D builds the pooling layer.
func NewMaxPool2D() *MaxPool2D { return &MaxPool2D{} }

// Name implements Layer.
func (*MaxPool2D) Name() string { return "MaxPool2D(2x2)" }

// Params implements Layer.
func (*MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D input %v, want rank 4", x.Shape))
	}
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/2, w/2
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: MaxPool2D input %v too small", x.Shape))
	}
	m.inShape = append([]int(nil), x.Shape...)
	out := tensor.New(n, oh, ow, c)
	if cap(m.argmax) < out.NumElems() {
		m.argmax = make([]int, out.NumElems())
	}
	m.argmax = m.argmax[:out.NumElems()]

	idx := func(ni, y, xx, ci int) int { return ((ni*h+y)*w+xx)*c + ci }
	o := 0
	for ni := 0; ni < n; ni++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				for ci := 0; ci < c; ci++ {
					best := idx(ni, 2*y, 2*xx, ci)
					bv := x.Data[best]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							i := idx(ni, 2*y+dy, 2*xx+dx, ci)
							if x.Data[i] > bv {
								best, bv = i, x.Data[i]
							}
						}
					}
					out.Data[o] = bv
					m.argmax[o] = best
					o++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	for o, src := range m.argmax {
		dx.Data[src] += grad.Data[o]
	}
	return dx
}

// MaxOverPoints reduces [N, P, F] → [N, F] by max over the point axis —
// PointNet's symmetric aggregation function. The gradient routes to the
// argmax point per feature.
type MaxOverPoints struct {
	argmax  []int
	inShape []int
}

var _ Layer = (*MaxOverPoints)(nil)

// NewMaxOverPoints builds the reduction layer.
func NewMaxOverPoints() *MaxOverPoints { return &MaxOverPoints{} }

// Name implements Layer.
func (*MaxOverPoints) Name() string { return "MaxOverPoints" }

// Params implements Layer.
func (*MaxOverPoints) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxOverPoints) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("nn: MaxOverPoints input %v, want [N, P, F]", x.Shape))
	}
	n, p, f := x.Dim(0), x.Dim(1), x.Dim(2)
	m.inShape = append([]int(nil), x.Shape...)
	out := tensor.New(n, f)
	if cap(m.argmax) < n*f {
		m.argmax = make([]int, n*f)
	}
	m.argmax = m.argmax[:n*f]
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			best := (ni*p)*f + fi
			bv := x.Data[best]
			for pi := 1; pi < p; pi++ {
				i := (ni*p+pi)*f + fi
				if x.Data[i] > bv {
					best, bv = i, x.Data[i]
				}
			}
			out.Data[ni*f+fi] = bv
			m.argmax[ni*f+fi] = best
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxOverPoints) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	for o, src := range m.argmax {
		dx.Data[src] += grad.Data[o]
	}
	return dx
}

// Reshape reinterprets the non-batch dimensions; the batch dimension (dim
// 0) is preserved. Use with all target dims, e.g. NewReshape(18, 18, 7)
// to go from [N, 2268] to [N, 18, 18, 7]. Flatten is NewReshape(k).
type Reshape struct {
	dims    []int
	inShape []int
}

var _ Layer = (*Reshape)(nil)

// NewReshape builds a reshape to [N, dims...].
func NewReshape(dims ...int) *Reshape {
	return &Reshape{dims: append([]int(nil), dims...)}
}

// NewFlatten builds a reshape to [N, everything].
func NewFlatten() *Reshape { return &Reshape{} }

// CloneShape returns a fresh Reshape with the same target dims and no
// cached state (used when copying models for quantization).
func (r *Reshape) CloneShape() *Reshape { return NewReshape(r.dims...) }

// TargetDims returns the configured non-batch target dimensions (empty for
// Flatten).
func (r *Reshape) TargetDims() []int { return append([]int(nil), r.dims...) }

// Group regroups a flat batch of points into per-cloud blocks:
// [B, F] → [B/P, P, F]. PointNet applies its shared per-point MLP with the
// points flattened into the batch dimension, then groups them back before
// the max aggregation. B must be a multiple of P.
type Group struct {
	P       int
	inShape []int
}

var _ Layer = (*Group)(nil)

// NewGroup builds a grouping layer for clouds of p points.
func NewGroup(p int) *Group {
	if p < 1 {
		panic(fmt.Sprintf("nn: Group size %d", p))
	}
	return &Group{P: p}
}

// Name implements Layer.
func (g *Group) Name() string { return fmt.Sprintf("Group(%d)", g.P) }

// Params implements Layer.
func (*Group) Params() []*Param { return nil }

// Forward implements Layer.
func (g *Group) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	b, f := x.Dim(0), x.Dim(1)
	if b%g.P != 0 {
		panic(fmt.Sprintf("nn: Group(%d) input batch %d not divisible", g.P, b))
	}
	g.inShape = append(g.inShape[:0], x.Shape...)
	return x.Reshape(b/g.P, g.P, f)
}

// Backward implements Layer.
func (g *Group) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(g.inShape...)
}

// Ungroup flattens per-cloud blocks back into the batch dimension:
// [N, P, F] → [N·P, F].
type Ungroup struct {
	inShape []int
}

var _ Layer = (*Ungroup)(nil)

// NewUngroup builds the inverse of Group.
func NewUngroup() *Ungroup { return &Ungroup{} }

// Name implements Layer.
func (*Ungroup) Name() string { return "Ungroup" }

// Params implements Layer.
func (*Ungroup) Params() []*Param { return nil }

// Forward implements Layer.
func (u *Ungroup) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("nn: Ungroup input %v, want rank 3", x.Shape))
	}
	u.inShape = append(u.inShape[:0], x.Shape...)
	return x.Reshape(x.Dim(0)*x.Dim(1), x.Dim(2))
}

// Backward implements Layer.
func (u *Ungroup) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(u.inShape...)
}

// Name implements Layer.
func (r *Reshape) Name() string {
	if len(r.dims) == 0 {
		return "Flatten"
	}
	return fmt.Sprintf("Reshape%v", r.dims)
}

// Params implements Layer.
func (*Reshape) Params() []*Param { return nil }

// Forward implements Layer.
func (r *Reshape) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	r.inShape = append(r.inShape[:0], x.Shape...)
	n := x.Dim(0)
	if len(r.dims) == 0 {
		return x.Reshape(n, x.NumElems()/n)
	}
	shape := append([]int{n}, r.dims...)
	return x.Reshape(shape...)
}

// Backward implements Layer.
func (r *Reshape) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(r.inShape...)
}
