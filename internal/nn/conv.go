package nn

import (
	"fmt"
	"math/rand"

	"hawccc/internal/nn/kernels"
	"hawccc/internal/tensor"
)

// Conv2D is a stride-1, same-padding 2D convolution over channel-last
// images: input [N, H, W, Cin] → output [N, H, W, Cout], kernel
// [KH, KW, Cin, Cout]. HAWC's network uses 3×3 kernels with stride 1
// (Section V), so those are the only hyperparameters this layer supports.
type Conv2D struct {
	KH, KW    int
	Cin, Cout int
	W, B      *Param

	x *tensor.Tensor
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a convolution with He initialization.
func NewConv2D(kh, kw, cin, cout int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		KH: kh, KW: kw, Cin: cin, Cout: cout,
		W: newParam("conv.w", kh, kw, cin, cout),
		B: newParam("conv.b", cout),
	}
	c.W.Value.HeInit(rng, kh*kw*cin)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%dx%d,%d→%d)", c.KH, c.KW, c.Cin, c.Cout)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(3) != c.Cin {
		panic(fmt.Sprintf("nn: Conv2D input %v, want [N, H, W, %d]", x.Shape, c.Cin))
	}
	c.x = x
	out := tensor.New(x.Dim(0), x.Dim(1), x.Dim(2), c.Cout)
	sc := scratchPool.Get().(*Scratch)
	sc.reset()
	c.apply(x, out, sc)
	scratchPool.Put(sc)
	return out
}

// apply computes the convolution of x into out ([N, H, W, Cout], fully
// overwritten) via im2col + packed GEMM: the kernel weights [KH·KW·Cin,
// Cout] are packed once per call, then each image is lowered to its patch
// matrix and multiplied. The im2col tap order matches applyNaive's
// accumulation order and the GEMM accumulates k ascending, so the output
// is bit-identical to the scalar reference. Workspace comes from the
// scratch arena; apply reads only the layer parameters, so it is safe to
// call concurrently from multiple goroutines (with distinct scratches).
func (c *Conv2D) apply(x, out *tensor.Tensor, s *Scratch) {
	n, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	k := c.KH * c.KW * c.Cin
	m := h * w
	bp := kernels.PackB(k, c.Cout, c.W.Value.Data, s.slice(kernels.PackedLen(k, c.Cout)))
	col := s.slice(m * k)
	bd := c.B.Value.Data
	for ni := 0; ni < n; ni++ {
		kernels.Im2col(h, w, c.Cin, c.KH, c.KW, x.Data[ni*m*c.Cin:(ni+1)*m*c.Cin], col)
		kernels.GemmPacked(m, c.Cout, k, col, bp, bd, out.Data[ni*m*c.Cout:(ni+1)*m*c.Cout])
	}
}

// applyNaive is the scalar reference convolution, retained to pin the
// GEMM path bit-for-bit in tests and to measure its speedup in the
// kernels benchmark. It deliberately has no data-dependent shortcuts
// (a zero-activation skip once lived here): latency must not depend on
// input sparsity, or benchmarks and the pole's frame budget drift with
// scene content.
func (c *Conv2D) applyNaive(x, out *tensor.Tensor) {
	n, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	ph, pw := c.KH/2, c.KW/2
	wd, bd := c.W.Value.Data, c.B.Value.Data

	for ni := 0; ni < n; ni++ {
		inBase := ni * h * w * c.Cin
		outBase := ni * h * w * c.Cout
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				oi := out.Data[outBase+(y*w+xx)*c.Cout:]
				oi = oi[:c.Cout]
				copy(oi, bd)
				for ky := 0; ky < c.KH; ky++ {
					iy := y + ky - ph
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < c.KW; kx++ {
						ix := xx + kx - pw
						if ix < 0 || ix >= w {
							continue
						}
						in := x.Data[inBase+(iy*w+ix)*c.Cin:]
						wBase := (ky*c.KW + kx) * c.Cin * c.Cout
						for ci := 0; ci < c.Cin; ci++ {
							xv := in[ci]
							wk := wd[wBase+ci*c.Cout : wBase+(ci+1)*c.Cout]
							for co := range oi {
								oi[co] += xv * wk[co]
							}
						}
					}
				}
			}
		}
	}
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	n, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	dx := tensor.New(n, h, w, c.Cin)
	ph, pw := c.KH/2, c.KW/2
	wd := c.W.Value.Data
	dwd, dbd := c.W.Grad.Data, c.B.Grad.Data

	for ni := 0; ni < n; ni++ {
		inBase := ni * h * w * c.Cin
		outBase := ni * h * w * c.Cout
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				gi := grad.Data[outBase+(y*w+xx)*c.Cout:]
				gi = gi[:c.Cout]
				for co, gv := range gi {
					dbd[co] += gv
				}
				for ky := 0; ky < c.KH; ky++ {
					iy := y + ky - ph
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < c.KW; kx++ {
						ix := xx + kx - pw
						if ix < 0 || ix >= w {
							continue
						}
						inOff := inBase + (iy*w+ix)*c.Cin
						in := x.Data[inOff : inOff+c.Cin]
						dIn := dx.Data[inOff : inOff+c.Cin]
						wBase := (ky*c.KW + kx) * c.Cin * c.Cout
						for ci := 0; ci < c.Cin; ci++ {
							wk := wd[wBase+ci*c.Cout : wBase+(ci+1)*c.Cout]
							dwk := dwd[wBase+ci*c.Cout : wBase+(ci+1)*c.Cout]
							xv := in[ci]
							var acc float32
							for co, gv := range gi {
								dwk[co] += xv * gv
								acc += wk[co] * gv
							}
							dIn[ci] += acc
						}
					}
				}
			}
		}
	}
	return dx
}
