package nn

import (
	"fmt"
	"math/rand"

	"hawccc/internal/nn/kernels"
	"hawccc/internal/tensor"
)

// Dense is a fully connected layer: y = xW + b, input [N, In] → [N, Out].
type Dense struct {
	In, Out int
	W, B    *Param

	x *tensor.Tensor // cached input
}

var _ Layer = (*Dense)(nil)

// NewDense builds a Dense layer with He initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   newParam("dense.w", in, out),
		B:   newParam("dense.b", out),
	}
	d.W.Value.HeInit(rng, in)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n := x.Dim(0)
	if x.NumElems() != n*d.In {
		panic(fmt.Sprintf("nn: Dense input %v, want [N, %d]", x.Shape, d.In))
	}
	d.x = x
	out := tensor.New(n, d.Out)
	sc := scratchPool.Get().(*Scratch)
	sc.reset()
	d.apply(x, out, sc)
	scratchPool.Put(sc)
	return out
}

// apply computes xW + b into out ([N, Out], fully overwritten) as one
// GEMM. Below kernels.PackMinRows the kernel runs its direct loop —
// packing the weights cannot pay off at batch 1 — so no pack buffer is
// drawn in that case. Both kernel paths accumulate bias-first, k
// ascending, making the result bit-identical to applyNaive. apply reads
// only the layer parameters, so it is safe to call concurrently (with
// distinct scratches).
func (d *Dense) apply(x, out *tensor.Tensor, s *Scratch) {
	n := x.Dim(0)
	var pack []float32
	if n >= kernels.PackMinRows {
		pack = s.slice(kernels.PackedLen(d.In, d.Out))
	}
	kernels.Gemm(n, d.Out, d.In, x.Data, d.W.Value.Data, d.B.Value.Data, out.Data, pack)
}

// applyNaive is the scalar reference, retained to pin the GEMM path bit
// for bit and to benchmark against. Like Conv2D.applyNaive it has no
// zero-activation skip: latency must not depend on input sparsity.
func (d *Dense) applyNaive(x, out *tensor.Tensor) {
	n := x.Dim(0)
	w, b := d.W.Value.Data, d.B.Value.Data
	for i := 0; i < n; i++ {
		xi := x.Data[i*d.In : (i+1)*d.In]
		oi := out.Data[i*d.Out : (i+1)*d.Out]
		copy(oi, b)
		for k, xv := range xi {
			wk := w[k*d.Out : (k+1)*d.Out]
			for j := range oi {
				oi[j] += xv * wk[j]
			}
		}
	}
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := d.x.Dim(0)
	dx := tensor.New(n, d.In)
	w := d.W.Value.Data
	dw, db := d.W.Grad.Data, d.B.Grad.Data
	for i := 0; i < n; i++ {
		xi := d.x.Data[i*d.In : (i+1)*d.In]
		gi := grad.Data[i*d.Out : (i+1)*d.Out]
		di := dx.Data[i*d.In : (i+1)*d.In]
		for j, gv := range gi {
			db[j] += gv
		}
		for k, xv := range xi {
			wk := w[k*d.Out : (k+1)*d.Out]
			dwk := dw[k*d.Out : (k+1)*d.Out]
			var acc float32
			for j, gv := range gi {
				dwk[j] += xv * gv
				acc += wk[j] * gv
			}
			di[k] = acc
		}
	}
	return dx
}
