package nn

import (
	"math/rand"
	"sync"
	"testing"

	"hawccc/internal/tensor"
)

// inferTestCNN builds a HAWC-shaped model covering every inference-capable
// layer kind except the PointNet-specific ones.
func inferTestCNN(rng *rand.Rand) *Sequential {
	return (&Sequential{}).Add(
		NewConv2D(3, 3, 2, 4, rng),
		NewBatchNorm(4),
		NewReLU(),
		NewMaxPool2D(),
		NewFlatten(),
		NewDense(2*2*4, 8, rng),
		NewReLU(),
		NewDropout(0.5, rng),
		NewDense(8, 3, rng),
	)
}

// inferTestPointNet covers Group/Ungroup/MaxOverPoints.
func inferTestPointNet(rng *rand.Rand) *Sequential {
	return (&Sequential{}).Add(
		NewDense(3, 8, rng),
		NewBatchNorm(8),
		NewReLU(),
		NewGroup(4),
		NewMaxOverPoints(),
		NewDense(8, 2, rng),
	)
}

// settle runs a few training steps so batch-norm running statistics are
// non-trivial before comparing the two inference paths.
func settle(m *Sequential, x *tensor.Tensor, labels []int) {
	opt := NewAdam(0.01)
	for i := 0; i < 3; i++ {
		out := m.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(out, labels)
		m.Backward(grad)
		opt.Step(m.Params())
	}
}

func TestInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := inferTestCNN(rng)
	x := tensor.New(2, 4, 4, 2)
	x.RandNormal(rng, 1)
	settle(m, x, []int{0, 2})

	want := m.Forward(x, false)
	for trial := 0; trial < 3; trial++ { // repeat: scratch reuse must not corrupt
		got := m.Infer(x)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("Infer shape %v vs Forward %v", got.Shape, want.Shape)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: Infer[%d] = %v, Forward = %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestInferMatchesForwardPointNetLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := inferTestPointNet(rng)
	x := tensor.New(8, 3) // 2 clouds × 4 points
	x.RandNormal(rng, 1)
	settle(m, x, []int{1, 0})

	want := m.Forward(x, false)
	got := m.Infer(x)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Infer[%d] = %v, Forward = %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestInferConcurrent hammers one shared model from many goroutines; run
// under -race this proves the inference path writes no shared state.
func TestInferConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := inferTestCNN(rng)
	base := tensor.New(1, 4, 4, 2)
	base.RandNormal(rng, 1)
	settle(m, base.Reshape(1, 4, 4, 2), []int{1})
	want := m.Forward(base, false)

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got := m.Infer(base)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						errs <- "concurrent Infer diverged from sequential Forward"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestInferDoesNotDisturbTraining interleaves Infer with a training step
// and checks the backward pass still sees the activations it cached.
func TestInferDoesNotDisturbTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := inferTestCNN(rng)
	x := tensor.New(2, 4, 4, 2)
	x.RandNormal(rng, 1)
	labels := []int{0, 1}

	out := m.Forward(x, true)
	_ = m.Infer(x) // must not clobber cached activations
	_, grad := SoftmaxCrossEntropy(out, labels)
	m.Backward(grad) // panics or races if Infer wrote layer state
}

func TestScratchReusesBuffers(t *testing.T) {
	var s Scratch
	a := s.tensor(2, 3)
	a.Fill(5)
	s.reset()
	b := s.tensor(3, 2)
	if &a.Data[0] != &b.Data[0] {
		t.Error("scratch did not reuse its buffer after reset")
	}
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	c := s.tensor(10) // larger than slot capacity: must grow
	if len(c.Data) != 10 {
		t.Fatalf("grown buffer len %d", len(c.Data))
	}
}
