package nn

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hawccc/internal/tensor"
)

// numericalGradCheck verifies the analytic parameter and input gradients of
// a model against central finite differences on a scalar loss.
func numericalGradCheck(t *testing.T, model *Sequential, x *tensor.Tensor, labels []int) {
	t.Helper()

	// Analytic gradients.
	out := model.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(out, labels)
	model.Backward(grad)

	lossAt := func() float64 {
		o := model.Forward(x, true)
		l, _ := SoftmaxCrossEntropy(o, labels)
		return l
	}

	const eps = 1e-2
	const relTol = 0.12 // float32 arithmetic; loose but catches sign/structure bugs
	checked, mismatched := 0, 0
	var firstMismatch string
	for _, p := range model.Params() {
		// Check a subset of entries to keep the test fast.
		stride := 1
		if p.Value.NumElems() > 50 {
			stride = p.Value.NumElems() / 25
		}
		for i := 0; i < p.Value.NumElems(); i += stride {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossAt()
			p.Value.Data[i] = orig - eps
			lm := lossAt()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.Grad.Data[i])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(math.Abs(numeric), math.Abs(analytic))
			if scale <= 5e-3 {
				continue
			}
			checked++
			if diff/scale > relTol {
				mismatched++
				if firstMismatch == "" {
					firstMismatch = fmt.Sprintf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
				}
			}
		}
	}
	// ReLU and max layers have kinks where central differences straddle an
	// argmax switch; a few isolated mismatches are expected there. A real
	// gradient bug mismatches nearly everywhere.
	if checked > 0 && float64(mismatched)/float64(checked) > 0.25 {
		t.Errorf("%d/%d gradient entries mismatch; first: %s", mismatched, checked, firstMismatch)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := (&Sequential{}).Add(NewDense(4, 3, rng))
	x := tensor.New(2, 4)
	x.RandNormal(rng, 1)
	numericalGradCheck(t, model, x, []int{0, 2})
}

func TestDenseReLUDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := (&Sequential{}).Add(
		NewDense(5, 8, rng),
		NewReLU(),
		NewDense(8, 2, rng),
	)
	x := tensor.New(3, 5)
	x.RandNormal(rng, 1)
	numericalGradCheck(t, model, x, []int{0, 1, 0})
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := (&Sequential{}).Add(
		NewConv2D(3, 3, 2, 4, rng),
		NewReLU(),
		NewFlatten(),
		NewDense(4*4*4, 2, rng),
	)
	x := tensor.New(2, 4, 4, 2)
	x.RandNormal(rng, 1)
	numericalGradCheck(t, model, x, []int{1, 0})
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := (&Sequential{}).Add(
		NewDense(4, 6, rng),
		NewBatchNorm(6),
		NewReLU(),
		NewDense(6, 2, rng),
	)
	x := tensor.New(4, 4)
	x.RandNormal(rng, 1)
	numericalGradCheck(t, model, x, []int{0, 1, 1, 0})
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := (&Sequential{}).Add(
		NewConv2D(3, 3, 1, 3, rng),
		NewMaxPool2D(),
		NewFlatten(),
		NewDense(2*2*3, 2, rng),
	)
	x := tensor.New(2, 4, 4, 1)
	x.RandNormal(rng, 1)
	numericalGradCheck(t, model, x, []int{0, 1})
}

func TestMaxOverPointsGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := (&Sequential{}).Add(
		NewReshape(6, 3),      // [N, 18] -> [N, 6, 3]
		NewReshape(18),        // back to flat
		NewDense(18, 12, rng), // per-batch dense
		NewReshape(6, 2),      // [N, 6, 2] points×features
		NewMaxOverPoints(),    // [N, 2]
	)
	x := tensor.New(3, 18)
	x.RandNormal(rng, 1)
	numericalGradCheck(t, model, x, []int{0, 1, 1})
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float32{10, 0, 0, 10}, 2, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 1})
	if loss > 0.01 {
		t.Errorf("confident correct predictions: loss %v", loss)
	}
	loss2, _ := SoftmaxCrossEntropy(logits, []int{1, 0})
	if loss2 < 5 {
		t.Errorf("confident wrong predictions: loss %v, want ≈10", loss2)
	}
	// Gradient rows sum to ~0 (softmax minus one-hot, scaled by 1/N).
	for i := 0; i < 2; i++ {
		sum := grad.Data[i*2] + grad.Data[i*2+1]
		if math.Abs(float64(sum)) > 1e-6 {
			t.Errorf("grad row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxCrossEntropyPanics(t *testing.T) {
	logits := tensor.New(2, 2)
	for _, labels := range [][]int{{0}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("labels %v should panic", labels)
				}
			}()
			SoftmaxCrossEntropy(logits, labels)
		}()
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logits := tensor.New(5, 3)
	logits.RandNormal(rng, 3)
	p := Softmax(logits)
	for i := 0; i < 5; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := p.Data[i*3+j]
			if v < 0 || v > 1 {
				t.Fatalf("probability %v outside [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 1, 2)
	target := tensor.FromSlice([]float32{0, 0}, 1, 2)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-2.5) > 1e-6 { // (1+4)/2
		t.Errorf("loss = %v, want 2.5", loss)
	}
	if math.Abs(float64(grad.Data[0])-1) > 1e-6 || math.Abs(float64(grad.Data[1])-2) > 1e-6 {
		t.Errorf("grad = %v", grad.Data)
	}
}

func TestArgmax(t *testing.T) {
	tt := tensor.FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := Argmax(tt)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("Argmax = %v", got)
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDropout(0.5, rng)
	x := tensor.New(1, 1000)
	x.Fill(1)
	// Training: roughly half zeroed, survivors scaled 2×.
	out := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d/1000, want ≈500", zeros)
	}
	if zeros+twos != 1000 {
		t.Error("dropout outputs must be 0 or scaled")
	}
	// Inference: identity (same tensor).
	if got := d.Forward(x, false); got != x {
		t.Error("inference dropout should be identity")
	}
	// Backward masks gradient identically.
	g := tensor.New(1, 1000)
	g.Fill(1)
	d.Forward(x, true)
	dg := d.Backward(g)
	for i, v := range dg.Data {
		if v != 0 && v != 2 {
			t.Fatalf("grad %d = %v", i, v)
		}
	}
}

func TestDropoutPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(1)))
}

func TestBatchNormTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bn := NewBatchNorm(3)
	x := tensor.New(64, 3)
	for i := 0; i < 64; i++ {
		x.Data[i*3+0] = float32(rng.NormFloat64()*2 + 5)
		x.Data[i*3+1] = float32(rng.NormFloat64() * 0.1)
		x.Data[i*3+2] = float32(rng.NormFloat64() - 3)
	}
	// Train several steps so running stats converge toward batch stats.
	for i := 0; i < 60; i++ {
		bn.Forward(x, true)
	}
	out := bn.Forward(x, true)
	// Batch output: each channel ≈ zero mean, unit variance (γ=1, β=0).
	for c := 0; c < 3; c++ {
		var mean float64
		for i := 0; i < 64; i++ {
			mean += float64(out.Data[i*3+c])
		}
		mean /= 64
		if math.Abs(mean) > 1e-3 {
			t.Errorf("train channel %d mean %v", c, mean)
		}
	}
	// Eval uses running stats — close to the converged batch stats.
	evalOut := bn.Forward(x, false)
	for c := 0; c < 3; c++ {
		var mean float64
		for i := 0; i < 64; i++ {
			mean += float64(evalOut.Data[i*3+c])
		}
		mean /= 64
		if math.Abs(mean) > 0.2 {
			t.Errorf("eval channel %d mean %v, want ≈0", c, mean)
		}
	}
}

func TestMaxPoolForward(t *testing.T) {
	// 1 image 4x4x1 with known values.
	x := tensor.New(1, 4, 4, 1)
	for i := 0; i < 16; i++ {
		x.Data[i] = float32(i)
	}
	mp := NewMaxPool2D()
	out := mp.Forward(x, false)
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("pool[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
	// Odd dimension floors.
	x5 := tensor.New(1, 5, 5, 1)
	out5 := mp.Forward(x5, false)
	if out5.Dim(1) != 2 || out5.Dim(2) != 2 {
		t.Errorf("5x5 pooled to %v", out5.Shape)
	}
}

func TestTrainLinearlySeparable(t *testing.T) {
	// A 2-layer net must learn a linearly separable problem to ~100%.
	rng := rand.New(rand.NewSource(10))
	model := (&Sequential{}).Add(
		NewDense(2, 8, rng),
		NewReLU(),
		NewDense(8, 2, rng),
	)
	opt := NewAdam(0.01)
	n := 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		x.Data[i*2] = float32(rng.NormFloat64())
		x.Data[i*2+1] = float32(rng.NormFloat64())
		if x.Data[i*2]+x.Data[i*2+1] > 0 {
			labels[i] = 1
		}
	}
	var loss float64
	for epoch := 0; epoch < 200; epoch++ {
		out := model.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = SoftmaxCrossEntropy(out, labels)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if loss > 0.1 {
		t.Errorf("final loss %v, want < 0.1", loss)
	}
	pred := Argmax(model.Forward(x, false))
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	if correct < 62 {
		t.Errorf("train accuracy %d/64", correct)
	}
}

func TestTrainXORWithSGD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	model := (&Sequential{}).Add(
		NewDense(2, 16, rng),
		NewReLU(),
		NewDense(16, 2, rng),
	)
	opt := NewSGD(0.1, 0.9)
	x := tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	for epoch := 0; epoch < 2000; epoch++ {
		out := model.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(out, labels)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	pred := Argmax(model.Forward(x, false))
	for i := range pred {
		if pred[i] != labels[i] {
			t.Fatalf("XOR not learned: pred %v", pred)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	build := func(r *rand.Rand) *Sequential {
		return (&Sequential{}).Add(
			NewConv2D(3, 3, 2, 4, r),
			NewBatchNorm(4),
			NewReLU(),
			NewFlatten(),
			NewDense(4*4*4, 2, r),
		)
	}
	m1 := build(rng)
	// Perturb running stats so they round trip too.
	m1.Layers[1].(*BatchNorm).RunningMean.Fill(0.5)

	var buf bytes.Buffer
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := build(rand.New(rand.NewSource(999))) // different init
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 4, 4, 2)
	x.RandNormal(rng, 1)
	o1 := m1.Forward(x, false)
	o2 := m2.Forward(x, false)
	for i := range o1.Data {
		if o1.Data[i] != o2.Data[i] {
			t.Fatalf("outputs differ after load at %d", i)
		}
	}
}

func TestLoadRejectsMismatchedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m1 := (&Sequential{}).Add(NewDense(4, 2, rng))
	var buf bytes.Buffer
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := (&Sequential{}).Add(NewDense(4, 3, rng))
	if err := m2.Load(&buf); err == nil {
		t.Error("load into mismatched architecture should fail")
	}
	m3 := (&Sequential{}).Add(NewDense(4, 2, rng), NewDense(2, 2, rng))
	buf.Reset()
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m3.Load(&buf); err == nil {
		t.Error("load with wrong tensor count should fail")
	}
	if err := m1.Load(bytes.NewReader([]byte("JUNK"))); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestNumParamsAndSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := (&Sequential{}).Add(NewDense(10, 5, rng), NewReLU(), NewDense(5, 2, rng))
	want := 10*5 + 5 + 5*2 + 2
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
	if s := m.Summary(); s == "" {
		t.Error("empty summary")
	}
}

func TestReshape(t *testing.T) {
	x := tensor.New(2, 12)
	r := NewReshape(3, 4)
	out := r.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 3 || out.Dim(2) != 4 {
		t.Errorf("shape %v", out.Shape)
	}
	back := r.Backward(tensor.New(2, 3, 4))
	if back.Dim(1) != 12 {
		t.Errorf("backward shape %v", back.Shape)
	}
	f := NewFlatten()
	out2 := f.Forward(tensor.New(2, 3, 4, 5), false)
	if out2.Dim(1) != 60 {
		t.Errorf("flatten shape %v", out2.Shape)
	}
}

func TestGroupUngroup(t *testing.T) {
	x := tensor.New(6, 4) // 2 clouds × 3 points
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	g := NewGroup(3)
	out := g.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 3 || out.Dim(2) != 4 {
		t.Fatalf("Group shape %v", out.Shape)
	}
	back := g.Backward(tensor.New(2, 3, 4))
	if back.Dim(0) != 6 || back.Dim(1) != 4 {
		t.Errorf("Group backward shape %v", back.Shape)
	}

	u := NewUngroup()
	flat := u.Forward(out, false)
	if flat.Dim(0) != 6 || flat.Dim(1) != 4 {
		t.Fatalf("Ungroup shape %v", flat.Shape)
	}
	// Data preserved through both reshapes.
	for i := range x.Data {
		if flat.Data[i] != x.Data[i] {
			t.Fatal("data scrambled")
		}
	}
	uback := u.Backward(tensor.New(2, 3, 4))
	if uback.Dim(0) != 2 || uback.Dim(2) != 4 {
		t.Errorf("Ungroup backward shape %v", uback.Shape)
	}
}

func TestGroupValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Group(0) should panic")
		}
	}()
	NewGroup(0)
}

func TestGroupIndivisibleBatchPanics(t *testing.T) {
	g := NewGroup(4)
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible batch should panic")
		}
	}()
	g.Forward(tensor.New(6, 2), false)
}

func TestPointNetStyleGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	model := (&Sequential{}).Add(
		NewDense(3, 6, rng),
		NewReLU(),
		NewGroup(4),
		NewMaxOverPoints(),
		NewDense(6, 2, rng),
	)
	x := tensor.New(8, 3) // 2 clouds × 4 points
	x.RandNormal(rng, 1)
	numericalGradCheck(t, model, x, []int{0, 1})
}
