package nn

import (
	"math"

	"hawccc/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and then
// zeroes the gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*Param]*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	lr := float32(s.LR)
	mom := float32(s.Momentum)
	for _, p := range params {
		if mom == 0 {
			p.Value.AddScaled(p.Grad, -lr)
		} else {
			v, ok := s.vel[p]
			if !ok {
				v = tensor.New(p.Value.Shape...)
				s.vel[p] = v
			}
			for i := range v.Data {
				v.Data[i] = mom*v.Data[i] - lr*p.Grad.Data[i]
				p.Value.Data[i] += v.Data[i]
			}
		}
		p.Grad.Zero()
	}
}

// Adam is the Adam optimizer (Kingma & Ba). The paper trains HAWC with
// Adam at lr 0.001 (Section VII-A).
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// NewAdam builds an Adam optimizer with the standard β/ε defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Tensor),
		v: make(map[*Param]*tensor.Tensor),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape...)
		}
		v := a.v[p]
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		for i, g := range p.Grad.Data {
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mHat := float64(m.Data[i]) / b1c
			vHat := float64(v.Data[i]) / b2c
			p.Value.Data[i] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Eps))
		}
		p.Grad.Zero()
	}
}
