package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hawccc/internal/tensor"
)

// Sequential chains layers into a model. The zero value is an empty model;
// append layers with Add.
type Sequential struct {
	Layers []Layer
}

// Add appends layers and returns the model for chaining.
func (s *Sequential) Add(layers ...Layer) *Sequential {
	s.Layers = append(s.Layers, layers...)
	return s
}

// Forward runs the layer chain.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates ∂L/∂output back through the chain, accumulating
// parameter gradients.
func (s *Sequential) Backward(grad *tensor.Tensor) {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
}

// Params returns all trainable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total trainable parameter count.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.NumElems()
	}
	return n
}

// states returns all Stateful tensors in layer order.
func (s *Sequential) states() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range s.Layers {
		if st, ok := l.(Stateful); ok {
			out = append(out, st.State()...)
		}
	}
	return out
}

// modelMagic prefixes serialized weights.
var modelMagic = [4]byte{'H', 'W', 'N', 'N'}

// Save writes all parameters and layer state to w. The architecture is
// not serialized — Load must be called on a structurally identical model.
func (s *Sequential) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(modelMagic[:]); err != nil {
		return fmt.Errorf("nn: save magic: %w", err)
	}
	tensors := make([]*tensor.Tensor, 0)
	for _, p := range s.Params() {
		tensors = append(tensors, p.Value)
	}
	tensors = append(tensors, s.states()...)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(tensors))); err != nil {
		return fmt.Errorf("nn: save count: %w", err)
	}
	for _, t := range tensors {
		if err := binary.Write(bw, binary.LittleEndian, uint32(t.NumElems())); err != nil {
			return fmt.Errorf("nn: save size: %w", err)
		}
		for _, v := range t.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return fmt.Errorf("nn: save data: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Load reads parameters and layer state previously written by Save into a
// structurally identical model.
func (s *Sequential) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return fmt.Errorf("nn: load magic: %w", err)
	}
	if m != modelMagic {
		return fmt.Errorf("nn: bad model magic %q", m)
	}
	tensors := make([]*tensor.Tensor, 0)
	for _, p := range s.Params() {
		tensors = append(tensors, p.Value)
	}
	tensors = append(tensors, s.states()...)
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: load count: %w", err)
	}
	if int(count) != len(tensors) {
		return fmt.Errorf("nn: model has %d tensors, file has %d", len(tensors), count)
	}
	for i, t := range tensors {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("nn: load size: %w", err)
		}
		if int(n) != t.NumElems() {
			return fmt.Errorf("nn: tensor %d has %d elements, file has %d", i, t.NumElems(), n)
		}
		for j := range t.Data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("nn: load data: %w", err)
			}
			t.Data[j] = math.Float32frombits(bits)
		}
	}
	return nil
}

// Summary returns a human-readable architecture description.
func (s *Sequential) Summary() string {
	out := ""
	for _, l := range s.Layers {
		np := 0
		for _, p := range l.Params() {
			np += p.Value.NumElems()
		}
		out += fmt.Sprintf("%-24s params=%d\n", l.Name(), np)
	}
	out += fmt.Sprintf("total trainable parameters: %d\n", s.NumParams())
	return out
}
