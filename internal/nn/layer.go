// Package nn is a small, dependency-free neural-network substrate: layers
// with explicit forward/backward passes, softmax cross-entropy and MSE
// losses, SGD and Adam optimizers, and a Sequential container with
// save/load. It replaces the TensorFlow stack the paper trained HAWC,
// PointNet, and the AutoEncoder with (see DESIGN.md).
//
// Layers cache forward activations for the backward pass, so a model
// instance must not be shared across goroutines during training, and
// Forward itself is not safe for concurrent use. Sequential.Infer is the
// concurrent inference path: it writes no layer state and recycles its
// intermediate tensors through a sync.Pool, so one trained model can serve
// many goroutines at once (see infer.go).
package nn

import "hawccc/internal/tensor"

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a parameter and its gradient with the given shape.
func newParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// Layer is a differentiable computation stage.
type Layer interface {
	// Name identifies the layer type for diagnostics and serialization.
	Name() string
	// Forward computes the layer output. train selects training behavior
	// (batch statistics, dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients. It must be called after Forward.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly none).
	Params() []*Param
}

// Stateful is implemented by layers carrying non-trainable state that must
// be serialized (e.g. batch-norm running statistics).
type Stateful interface {
	State() []*tensor.Tensor
}
