package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"hawccc/internal/tensor"
)

// Microbenchmarks for the inference kernels at HAWC's real layer shapes
// (17×17×7 input, 3×3 convs, Dense 1024→128). The hawcbench -exp kernels
// sweep measures whole-network throughput; these isolate single layers:
//
//	go test ./internal/nn -bench 'Conv|Dense' -benchmem

func benchConv(b *testing.B, batch int, naive bool) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(3, 3, 7, 8, rng)
	x := randTensor(rng, batch, 17, 17, 7)
	out := tensor.New(batch, 17, 17, 8)
	s := newScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			c.applyNaive(x, out)
		} else {
			s.reset()
			c.apply(x, out, s)
		}
	}
}

func BenchmarkConv2D(b *testing.B) {
	for _, batch := range []int{1, 32} {
		b.Run(fmt.Sprintf("gemm/batch%d", batch), func(b *testing.B) { benchConv(b, batch, false) })
		b.Run(fmt.Sprintf("naive/batch%d", batch), func(b *testing.B) { benchConv(b, batch, true) })
	}
}

func benchDense(b *testing.B, batch int, naive bool) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(1024, 128, rng)
	x := randTensor(rng, batch, 1024)
	out := tensor.New(batch, 128)
	s := newScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			d.applyNaive(x, out)
		} else {
			s.reset()
			d.apply(x, out, s)
		}
	}
}

func BenchmarkDense(b *testing.B) {
	for _, batch := range []int{1, 32} {
		b.Run(fmt.Sprintf("gemm/batch%d", batch), func(b *testing.B) { benchDense(b, batch, false) })
		b.Run(fmt.Sprintf("naive/batch%d", batch), func(b *testing.B) { benchDense(b, batch, true) })
	}
}
