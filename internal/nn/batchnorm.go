package nn

import (
	"fmt"
	"math"

	"hawccc/internal/tensor"
)

// BatchNorm normalizes per channel (the last dimension) over all other
// dimensions: it accepts [N, F] or [N, H, W, C] inputs. During training it
// uses batch statistics and updates running statistics with the given
// momentum; during inference it uses the running statistics. Gamma and
// beta are trainable; the running statistics are Stateful.
type BatchNorm struct {
	C        int
	Eps      float64
	Momentum float64
	Gamma    *Param
	Beta     *Param

	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor

	// caches for backward
	xhat   *tensor.Tensor
	invStd []float32
	m      int // reduction size
}

var (
	_ Layer    = (*BatchNorm)(nil)
	_ Stateful = (*BatchNorm)(nil)
)

// NewBatchNorm builds a BatchNorm for c channels.
func NewBatchNorm(c int) *BatchNorm {
	bn := &BatchNorm{
		C:           c,
		Eps:         1e-5,
		Momentum:    0.9,
		Gamma:       newParam("bn.gamma", c),
		Beta:        newParam("bn.beta", c),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.New(c),
	}
	bn.Gamma.Value.Fill(1)
	bn.RunningVar.Fill(1)
	return bn
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("BatchNorm(%d)", b.C) }

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// State implements Stateful.
func (b *BatchNorm) State() []*tensor.Tensor {
	return []*tensor.Tensor{b.RunningMean, b.RunningVar}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dim(x.Rank()-1) != b.C {
		panic(fmt.Sprintf("nn: BatchNorm input %v, want last dim %d", x.Shape, b.C))
	}
	total := x.NumElems()
	m := total / b.C
	out := tensor.New(x.Shape...)

	mean := make([]float32, b.C)
	variance := make([]float32, b.C)
	if train {
		for i := 0; i < total; i += b.C {
			for c := 0; c < b.C; c++ {
				mean[c] += x.Data[i+c]
			}
		}
		for c := range mean {
			mean[c] /= float32(m)
		}
		for i := 0; i < total; i += b.C {
			for c := 0; c < b.C; c++ {
				d := x.Data[i+c] - mean[c]
				variance[c] += d * d
			}
		}
		for c := range variance {
			variance[c] /= float32(m)
		}
		// Update running statistics.
		mom := float32(b.Momentum)
		for c := 0; c < b.C; c++ {
			b.RunningMean.Data[c] = mom*b.RunningMean.Data[c] + (1-mom)*mean[c]
			b.RunningVar.Data[c] = mom*b.RunningVar.Data[c] + (1-mom)*variance[c]
		}
	} else {
		copy(mean, b.RunningMean.Data)
		copy(variance, b.RunningVar.Data)
	}

	invStd := make([]float32, b.C)
	for c := range invStd {
		invStd[c] = float32(1 / math.Sqrt(float64(variance[c])+b.Eps))
	}
	g, bt := b.Gamma.Value.Data, b.Beta.Value.Data
	xhat := tensor.New(x.Shape...)
	for i := 0; i < total; i += b.C {
		for c := 0; c < b.C; c++ {
			xh := (x.Data[i+c] - mean[c]) * invStd[c]
			xhat.Data[i+c] = xh
			out.Data[i+c] = g[c]*xh + bt[c]
		}
	}
	if train {
		b.xhat, b.invStd, b.m = xhat, invStd, m
	}
	return out
}

// Backward implements Layer. Standard batch-norm gradient:
// dx = γ/σ · (dy − mean(dy) − x̂·mean(dy·x̂)) per channel.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.xhat == nil {
		panic("nn: BatchNorm.Backward before training Forward")
	}
	total := grad.NumElems()
	dg, db := b.Gamma.Grad.Data, b.Beta.Grad.Data
	g := b.Gamma.Value.Data

	sumDy := make([]float32, b.C)
	sumDyXhat := make([]float32, b.C)
	for i := 0; i < total; i += b.C {
		for c := 0; c < b.C; c++ {
			dy := grad.Data[i+c]
			sumDy[c] += dy
			sumDyXhat[c] += dy * b.xhat.Data[i+c]
		}
	}
	for c := 0; c < b.C; c++ {
		dg[c] += sumDyXhat[c]
		db[c] += sumDy[c]
	}

	mInv := 1 / float32(b.m)
	dx := tensor.New(grad.Shape...)
	for i := 0; i < total; i += b.C {
		for c := 0; c < b.C; c++ {
			dy := grad.Data[i+c]
			dx.Data[i+c] = g[c] * b.invStd[c] *
				(dy - sumDy[c]*mInv - b.xhat.Data[i+c]*sumDyXhat[c]*mInv)
		}
	}
	return dx
}
