package nn

// Race-safe, allocation-free inference.
//
// Layer.Forward caches activations on the layer struct for the backward
// pass, so a model shared across goroutines must not run Forward
// concurrently — the race detector flags it immediately. Sequential.Infer
// is the concurrent counterpart used by the parallel counting pipeline: it
// reads only parameters and running statistics, writes no layer state, and
// draws every intermediate tensor from a sync.Pool-backed scratch arena so
// per-cluster inference does not allocate on the hot path.
//
// Infer is arithmetically identical to Forward(x, false): each layer's
// inference math runs the same operations in the same order, so the two
// paths produce bit-identical outputs.

import (
	"fmt"
	"math"
	"sync"

	"hawccc/internal/tensor"
)

// Scratch is an arena of reusable intermediate tensors for one inference
// pass. Tensors handed out by a Scratch are valid until the owning
// Sequential.Infer call returns; a Scratch must not be shared across
// goroutines.
type Scratch struct {
	bufs [][]float32
	next int
	// naive selects the scalar reference kernels instead of the
	// im2col/GEMM path (see Sequential.InferNaive).
	naive bool
}

// reset rewinds the arena so the next pass reuses the same buffers.
func (s *Scratch) reset() { s.next = 0 }

// grab returns the next arena slot resized to n elements, contents
// unspecified. Because a fixed model issues the same slot sequence every
// pass, each slot converges to the right capacity after one pass; slots
// never overlap, so every live tensor of a pass has disjoint backing.
func (s *Scratch) grab(n int) []float32 {
	if s.next == len(s.bufs) {
		s.bufs = append(s.bufs, make([]float32, n))
	}
	buf := s.bufs[s.next]
	if cap(buf) < n {
		buf = make([]float32, n)
		s.bufs[s.next] = buf
	}
	buf = buf[:n]
	s.next++
	return buf
}

// slice returns a raw arena buffer of n elements with unspecified
// contents — workspace for the GEMM kernels (im2col matrices, packed
// weight panels), which overwrite what they need.
func (s *Scratch) slice(n int) []float32 { return s.grab(n) }

// uninit returns a tensor of the given shape backed by arena storage
// without zeroing it, for ops that overwrite every output element — the
// GEMM kernels, pooling, batch norm, activations. Zeroing here would be
// pure overhead on the hot path.
func (s *Scratch) uninit(shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return tensor.FromSlice(s.grab(n), shape...)
}

// tensor returns a zeroed tensor of the given shape backed by arena
// storage. Only ops with accumulation or sparse-write semantics — ops
// that read or skip output elements they did not write — need the zeroed
// variant; everything on the current hot path overwrites its output and
// uses uninit instead.
func (s *Scratch) tensor(shape ...int) *tensor.Tensor {
	t := s.uninit(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// scratchPool recycles arenas across Infer calls and goroutines.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Inferencer is a layer whose inference pass reads only parameters and
// running statistics — no per-call layer state — making it safe for
// concurrent use. Every layer in this package implements it.
type Inferencer interface {
	Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor
}

// Infer runs the inference pass (equivalent to Forward(x, false)) without
// touching layer state, so one trained model may serve many goroutines at
// once. Intermediate tensors come from a pooled scratch arena; the result
// is detached from the arena before it is returned. Layers that do not
// implement Inferencer fall back to Forward and forfeit the concurrency
// guarantee for the whole model.
func (s *Sequential) Infer(x *tensor.Tensor) *tensor.Tensor {
	return s.inferWith(x, false)
}

// InferNaive is Infer routed through the scalar reference kernels instead
// of the im2col/GEMM path. It exists to measure the kernel speedup
// (hawcbench -exp kernels, the nn microbenchmarks) and to pin the two
// paths together in tests; its outputs are bit-identical to Infer's.
func (s *Sequential) InferNaive(x *tensor.Tensor) *tensor.Tensor {
	return s.inferWith(x, true)
}

func (s *Sequential) inferWith(x *tensor.Tensor, naive bool) *tensor.Tensor {
	sc := scratchPool.Get().(*Scratch)
	sc.reset()
	sc.naive = naive
	for _, l := range s.Layers {
		if inf, ok := l.(Inferencer); ok {
			x = inf.Infer(x, sc)
		} else {
			x = l.Forward(x, false)
		}
	}
	out := x.Clone()
	sc.naive = false
	scratchPool.Put(sc)
	return out
}

// Infer implements Inferencer.
func (c *Conv2D) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(3) != c.Cin {
		panic(fmt.Sprintf("nn: Conv2D input %v, want [N, H, W, %d]", x.Shape, c.Cin))
	}
	out := s.uninit(x.Dim(0), x.Dim(1), x.Dim(2), c.Cout)
	if s.naive {
		c.applyNaive(x, out)
	} else {
		c.apply(x, out, s)
	}
	return out
}

// Infer implements Inferencer.
func (d *Dense) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	n := x.Dim(0)
	if x.NumElems() != n*d.In {
		panic(fmt.Sprintf("nn: Dense input %v, want [N, %d]", x.Shape, d.In))
	}
	out := s.uninit(n, d.Out)
	if s.naive {
		d.applyNaive(x, out)
	} else {
		d.apply(x, out, s)
	}
	return out
}

// Infer implements Inferencer. It normalizes with the running statistics,
// exactly as Forward does at inference, without touching them.
func (b *BatchNorm) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if x.Dim(x.Rank()-1) != b.C {
		panic(fmt.Sprintf("nn: BatchNorm input %v, want last dim %d", x.Shape, b.C))
	}
	total := x.NumElems()
	out := s.uninit(x.Shape...)
	invStd := s.uninit(b.C).Data
	mean, variance := b.RunningMean.Data, b.RunningVar.Data
	for c := range invStd {
		invStd[c] = float32(1 / math.Sqrt(float64(variance[c])+b.Eps))
	}
	g, bt := b.Gamma.Value.Data, b.Beta.Value.Data
	for i := 0; i < total; i += b.C {
		for c := 0; c < b.C; c++ {
			xh := (x.Data[i+c] - mean[c]) * invStd[c]
			out.Data[i+c] = g[c]*xh + bt[c]
		}
	}
	return out
}

// Infer implements Inferencer. It writes both branches so the output
// needs no pre-zeroing.
func (r *ReLU) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	out := s.uninit(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Infer implements Inferencer. Dropout is the identity at inference.
func (d *Dropout) Infer(x *tensor.Tensor, _ *Scratch) *tensor.Tensor { return x }

// Infer implements Inferencer.
func (m *MaxPool2D) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D input %v, want rank 4", x.Shape))
	}
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/2, w/2
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: MaxPool2D input %v too small", x.Shape))
	}
	out := s.uninit(n, oh, ow, c)
	idx := func(ni, y, xx, ci int) int { return ((ni*h+y)*w+xx)*c + ci }
	o := 0
	for ni := 0; ni < n; ni++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				for ci := 0; ci < c; ci++ {
					bv := x.Data[idx(ni, 2*y, 2*xx, ci)]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							if v := x.Data[idx(ni, 2*y+dy, 2*xx+dx, ci)]; v > bv {
								bv = v
							}
						}
					}
					out.Data[o] = bv
					o++
				}
			}
		}
	}
	return out
}

// Infer implements Inferencer.
func (m *MaxOverPoints) Infer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("nn: MaxOverPoints input %v, want [N, P, F]", x.Shape))
	}
	n, p, f := x.Dim(0), x.Dim(1), x.Dim(2)
	out := s.uninit(n, f)
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			bv := x.Data[(ni*p)*f+fi]
			for pi := 1; pi < p; pi++ {
				if v := x.Data[(ni*p+pi)*f+fi]; v > bv {
					bv = v
				}
			}
			out.Data[ni*f+fi] = bv
		}
	}
	return out
}

// Infer implements Inferencer. The view shares x's storage, which is safe:
// arena buffers are only reclaimed when the whole pass finishes.
func (r *Reshape) Infer(x *tensor.Tensor, _ *Scratch) *tensor.Tensor {
	n := x.Dim(0)
	if len(r.dims) == 0 {
		return x.Reshape(n, x.NumElems()/n)
	}
	shape := append([]int{n}, r.dims...)
	return x.Reshape(shape...)
}

// Infer implements Inferencer.
func (g *Group) Infer(x *tensor.Tensor, _ *Scratch) *tensor.Tensor {
	b, f := x.Dim(0), x.Dim(1)
	if b%g.P != 0 {
		panic(fmt.Sprintf("nn: Group(%d) input batch %d not divisible", g.P, b))
	}
	return x.Reshape(b/g.P, g.P, f)
}

// Infer implements Inferencer.
func (u *Ungroup) Infer(x *tensor.Tensor, _ *Scratch) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("nn: Ungroup input %v, want rank 3", x.Shape))
	}
	return x.Reshape(x.Dim(0)*x.Dim(1), x.Dim(2))
}
