package nn

import (
	"fmt"
	"math/rand"

	"hawccc/internal/tensor"
)

// ReLU is the rectified linear activation, element-wise max(0, x).
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU builds a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (*ReLU) Name() string { return "ReLU" }

// Params implements Layer.
func (*ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = g
		}
	}
	return dx
}

// Dropout randomly zeroes activations during training with probability P,
// scaling survivors by 1/(1−P) (inverted dropout); it is the identity at
// inference.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask []float32
}

var _ Layer = (*Dropout)(nil)

// NewDropout builds a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0, 1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.P) }

// Params implements Layer.
func (*Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := tensor.New(x.Shape...)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float32, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	dx := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		dx.Data[i] = g * d.mask[i]
	}
	return dx
}
