package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hawccc/internal/tensor"
)

// The GEMM path's contract is bit equality with the scalar reference:
// same operations, same order, per output element. These tests pin that
// contract at the layer level (the kernels package pins it at the matrix
// level) across random shapes, batch sizes, and input sparsity.

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// sparsify zeroes a fraction of elements, the regime the old
// zero-activation fast path specialized for (post-ReLU feature maps are
// roughly half zeros).
func sparsify(rng *rand.Rand, t *tensor.Tensor, frac float64) {
	for i := range t.Data {
		if rng.Float64() < frac {
			t.Data[i] = 0
		}
	}
}

func newScratch() *Scratch { return new(Scratch) }

// TestConvGemmMatchesNaive drives random conv shapes and batch sizes
// through both kernels and requires exact bit equality.
func TestConvGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := newScratch()
	f := func(nRaw, hRaw, wRaw, ciRaw, coRaw, kRaw uint8) bool {
		n := int(nRaw%5) + 1
		h := int(hRaw%12) + 1
		w := int(wRaw%12) + 1
		cin := int(ciRaw%6) + 1
		cout := int(coRaw%10) + 1
		ks := []int{1, 3, 5}
		kh := ks[int(kRaw)%3]
		kw := ks[int(kRaw/3)%3]
		c := NewConv2D(kh, kw, cin, cout, rng)
		x := randTensor(rng, n, h, w, cin)
		want := tensor.New(n, h, w, cout)
		got := tensor.New(n, h, w, cout)
		c.applyNaive(x, want)
		s.reset()
		c.apply(x, got, s)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Logf("n=%d h=%d w=%d cin=%d cout=%d k=%dx%d: [%d] gemm %v naive %v",
					n, h, w, cin, cout, kh, kw, i, got.Data[i], want.Data[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDenseGemmMatchesNaive covers both kernel paths: batch sizes below
// PackMinRows take the direct loop, larger ones the packed micro-kernel.
func TestDenseGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := newScratch()
	for _, n := range []int{1, 2, 3, 4, 8, 17, 32} {
		for _, dims := range [][2]int{{5, 3}, {128, 2}, {64, 31}} {
			d := NewDense(dims[0], dims[1], rng)
			x := randTensor(rng, n, dims[0])
			want := tensor.New(n, dims[1])
			got := tensor.New(n, dims[1])
			d.applyNaive(x, want)
			s.reset()
			d.apply(x, got, s)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("n=%d in=%d out=%d: [%d] gemm %v naive %v",
						n, dims[0], dims[1], i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestSparseDenseInputsAgree is the regression test for removing the
// data-dependent zero-activation skip: sparse and dense inputs must go
// through the identical code path, and the GEMM and naive kernels must
// agree on both. (Before the removal, the skip made conv latency depend
// on scene content; it never changed values — x==0 contributes +0.0 —
// and this pins that both kernels still agree in the sparse regime.)
func TestSparseDenseInputsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := newScratch()
	c := NewConv2D(3, 3, 4, 8, rng)
	d := NewDense(72, 9, rng)
	for _, frac := range []float64{0, 0.5, 0.95, 1} {
		x := randTensor(rng, 3, 6, 6, 4)
		sparsify(rng, x, frac)
		want := tensor.New(3, 6, 6, 8)
		got := tensor.New(3, 6, 6, 8)
		c.applyNaive(x, want)
		s.reset()
		c.apply(x, got, s)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("conv sparsity %v: [%d] gemm %v naive %v", frac, i, got.Data[i], want.Data[i])
			}
		}
		xd := randTensor(rng, 5, 72)
		sparsify(rng, xd, frac)
		wantD := tensor.New(5, 9)
		gotD := tensor.New(5, 9)
		d.applyNaive(xd, wantD)
		s.reset()
		d.apply(xd, gotD, s)
		for i := range wantD.Data {
			if gotD.Data[i] != wantD.Data[i] {
				t.Fatalf("dense sparsity %v: [%d] gemm %v naive %v", frac, i, gotD.Data[i], wantD.Data[i])
			}
		}
	}
}

// TestInferNaiveMatchesInfer pins the two inference routes (and Forward)
// together end to end on a realistic stack, including the batch>1 case
// used by batched cluster classification: every sample of a batched pass
// must equal its own single-sample pass bit for bit.
func TestInferNaiveMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := inferTestCNN(rng)
	x := randTensor(rng, 6, 4, 4, 2)
	sparsify(rng, x, 0.4)
	fwd := m.Forward(x, false)
	fast := m.Infer(x)
	slow := m.InferNaive(x)
	for i := range fwd.Data {
		if fast.Data[i] != fwd.Data[i] {
			t.Fatalf("Infer[%d] = %v, Forward = %v", i, fast.Data[i], fwd.Data[i])
		}
		if slow.Data[i] != fwd.Data[i] {
			t.Fatalf("InferNaive[%d] = %v, Forward = %v", i, slow.Data[i], fwd.Data[i])
		}
	}
	// Batch invariance: each row of the batched result equals the
	// single-sample result for that row.
	per := fast.Dim(1)
	sample := 4 * 4 * 2
	for ni := 0; ni < x.Dim(0); ni++ {
		xi := tensor.FromSlice(x.Data[ni*sample:(ni+1)*sample], 1, 4, 4, 2)
		yi := m.Infer(xi)
		for j := 0; j < per; j++ {
			if yi.Data[j] != fast.Data[ni*per+j] {
				t.Fatalf("sample %d: batched [%d] = %v, solo = %v", ni, j, fast.Data[ni*per+j], yi.Data[j])
			}
		}
	}
}

// TestScratchNoAliasingAcrossModels runs one arena through two models
// with different shape sequences and checks that no two tensors handed
// out within a pass share backing storage — the invariant that lets
// uninit skip zeroing safely.
func TestScratchNoAliasingAcrossModels(t *testing.T) {
	s := newScratch()
	passes := [][][]int{
		{{2, 8, 8, 4}, {2, 128}, {2, 16}},        // model A shapes
		{{1, 17, 17, 7}, {3, 3}, {1, 2}, {5, 5}}, // model B shapes
		{{2, 8, 8, 4}, {2, 128}, {2, 16}},        // model A again, after B grew slots
	}
	for pi, shapes := range passes {
		s.reset()
		live := make([]*tensor.Tensor, 0, len(shapes))
		for _, shape := range shapes {
			live = append(live, s.uninit(shape...))
		}
		// Writing a unique fingerprint through each tensor must not be
		// visible through any other: overlap would corrupt live data.
		for ti, tt := range live {
			for i := range tt.Data {
				tt.Data[i] = float32(1000*pi + 10*ti)
			}
		}
		for ti, tt := range live {
			want := float32(1000*pi + 10*ti)
			for i, v := range tt.Data {
				if v != want {
					t.Fatalf("pass %d tensor %d[%d] = %v, want %v (arena slots alias)", pi, ti, i, v, want)
				}
			}
		}
	}
}

// TestScratchTensorZeroes pins the contract split between tensor
// (zeroed, for accumulation-style consumers) and uninit (raw): after a
// slot has been dirtied, tensor must hand it back all-zero.
func TestScratchTensorZeroes(t *testing.T) {
	s := newScratch()
	d := s.uninit(4, 4)
	for i := range d.Data {
		d.Data[i] = 7
	}
	s.reset()
	z := s.tensor(4, 4)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("tensor()[%d] = %v, want 0", i, v)
		}
	}
}
