package ground

import (
	"testing"

	"hawccc/internal/geom"
)

func TestROIContains(t *testing.T) {
	roi := DefaultROI()
	tests := []struct {
		name string
		p    geom.Point3
		want bool
	}{
		{"inside", geom.P(20, 0, -1.5), true},
		{"too close", geom.P(11.9, 0, -1.5), false},
		{"too far", geom.P(35.1, 0, -1.5), false},
		{"off walkway", geom.P(20, 3, -1.5), false},
		{"above sensor", geom.P(20, 0, 0.5), false},
		{"below ground", geom.P(20, 0, -3.1), false},
		{"boundary x", geom.P(12, 0, -1), true},
		{"boundary z", geom.P(20, 0, 0), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := roi.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestCrop(t *testing.T) {
	roi := DefaultROI()
	c := geom.Cloud{
		geom.P(20, 0, -1), // kept
		geom.P(5, 0, -1),  // too close
		geom.P(40, 0, -1), // too far
		geom.P(20, 4, -1), // off walkway
	}
	got := roi.Crop(c)
	if len(got) != 1 || got[0] != geom.P(20, 0, -1) {
		t.Errorf("Crop = %v", got)
	}
}

func TestSegment(t *testing.T) {
	c := geom.Cloud{
		geom.P(20, 0, -2.7), // ground noise, removed
		geom.P(20, 0, -2.6), // exactly at threshold, kept
		geom.P(20, 0, -1.0), // torso height, kept
	}
	got := Segment(c, DefaultZMin)
	if len(got) != 2 {
		t.Fatalf("Segment kept %d points, want 2", len(got))
	}
	for _, p := range got {
		if p.Z < DefaultZMin {
			t.Errorf("kept below-threshold point %v", p)
		}
	}
}

func TestIngestChain(t *testing.T) {
	c := geom.Cloud{
		geom.P(20, 0, -2.8), // in ROI but ground noise
		geom.P(20, 0, -1.2), // kept
		geom.P(8, 0, -1.2),  // outside ROI
	}
	got := Ingest(c, DefaultROI())
	if len(got) != 1 || got[0] != geom.P(20, 0, -1.2) {
		t.Errorf("Ingest = %v", got)
	}
	if got := Ingest(nil, DefaultROI()); len(got) != 0 {
		t.Error("empty ingest should be empty")
	}
}

func TestCropIntoMatchesCrop(t *testing.T) {
	roi := DefaultROI()
	c := geom.Cloud{
		geom.P(20, 0, 0),   // inside
		geom.P(5, 0, 0),    // x below ROI
		geom.P(25, 1, 1),   // inside
		geom.P(20, 40, 0),  // y outside
		geom.P(20, 0, 100), // z outside
	}
	want := roi.Crop(c)
	buf := make(geom.Cloud, 0, 1) // deliberately too small: must grow correctly
	got := roi.CropInto(buf, c)
	if len(got) != len(want) {
		t.Fatalf("CropInto kept %d points, Crop kept %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Reuse: a second call into the grown buffer returns identical points
	// without losing any.
	again := roi.CropInto(got[:0], c)
	if len(again) != len(want) {
		t.Errorf("reused buffer kept %d points, want %d", len(again), len(want))
	}
}

func TestSegmentIntoMatchesSegment(t *testing.T) {
	c := geom.Cloud{
		geom.P(20, 0, -2.95), // ground band
		geom.P(20, 0, -1.0),  // body
		geom.P(21, 1, 0.5),   // body
		geom.P(22, 0, -2.71), // ground band edge
	}
	want := Segment(c, DefaultZMin)
	got := SegmentInto(nil, c, DefaultZMin)
	if len(got) != len(want) {
		t.Fatalf("SegmentInto kept %d points, Segment kept %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d: %v vs %v", i, got[i], want[i])
		}
	}
}
