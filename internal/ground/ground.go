// Package ground implements the ingestion filters of Section III: the
// region-of-interest crop that keeps only the walkway band the deployment
// observes, and the rule-based ground segmentation that removes
// ground-reflection noise (z below −2.6 m in the sensor frame).
package ground

import "hawccc/internal/geom"

// ROI bounds the captured volume. The deployment defaults (Section III):
// x ∈ [12, 35] m (closer returns are shadowed by the pole, farther ones
// reflect too weakly), y spanning the 5 m walkway, z within the pole's
// 0…−3 m detection band.
type ROI struct {
	XMin, XMax float64
	YMin, YMax float64
	ZMin, ZMax float64
}

// DefaultROI returns the paper's deployment ROI.
func DefaultROI() ROI {
	return ROI{
		XMin: 12, XMax: 35,
		YMin: -2.5, YMax: 2.5,
		ZMin: -3.0, ZMax: 0.0,
	}
}

// Contains reports whether p lies inside the ROI.
func (r ROI) Contains(p geom.Point3) bool {
	return p.X >= r.XMin && p.X <= r.XMax &&
		p.Y >= r.YMin && p.Y <= r.YMax &&
		p.Z >= r.ZMin && p.Z <= r.ZMax
}

// Crop returns the points inside the ROI.
func (r ROI) Crop(c geom.Cloud) geom.Cloud {
	return c.Filter(r.Contains)
}

// CropInto appends the points of c inside the ROI to dst and returns the
// extended slice. Callers stream frames through a reused buffer
// (dst[:0]), keeping steady-state ingest allocation-flat once the buffer
// has grown to frame size; the selected points and their order are
// exactly Crop's.
func (r ROI) CropInto(dst, c geom.Cloud) geom.Cloud {
	for _, p := range c {
		if r.Contains(p) {
			dst = append(dst, p)
		}
	}
	return dst
}

// ContainsXYZ is Contains over float32 coordinates, widened exactly to
// float64 so the decision matches Contains on the widened point.
func (r ROI) ContainsXYZ(x, y, z float32) bool {
	return r.Contains(geom.Point3{X: float64(x), Y: float64(y), Z: float64(z)})
}

// CropSoAInto appends the points of c inside the ROI to dst (typically
// Reset between frames) — CropInto for the structure-of-arrays flow. The
// selected points and their order match CropInto on the widened cloud.
func (r ROI) CropSoAInto(dst, c *geom.CloudSoA) {
	for i := range c.X {
		if r.ContainsXYZ(c.X[i], c.Y[i], c.Z[i]) {
			dst.AppendXYZ(c.X[i], c.Y[i], c.Z[i])
		}
	}
}

// DefaultZMin is the ground-segmentation threshold: empirical ground noise
// extends up to 0.4 m above the walkway, so with ground at −3 m the filter
// keeps z ≥ −2.6 m (Section III).
const DefaultZMin = -2.6

// Segment removes ground returns: only points with z ≥ zMin survive.
func Segment(c geom.Cloud, zMin float64) geom.Cloud {
	return c.Filter(func(p geom.Point3) bool { return p.Z >= zMin })
}

// SegmentInto appends the points of c with z ≥ zMin to dst and returns
// the extended slice — Segment's pooled-buffer companion, mirroring
// CropInto.
func SegmentInto(dst, c geom.Cloud, zMin float64) geom.Cloud {
	for _, p := range c {
		if p.Z >= zMin {
			dst = append(dst, p)
		}
	}
	return dst
}

// SegmentSoAInto appends the points of c with z ≥ zMin to dst —
// SegmentInto for the structure-of-arrays flow.
func SegmentSoAInto(dst, c *geom.CloudSoA, zMin float64) {
	for i := range c.Z {
		if float64(c.Z[i]) >= zMin {
			dst.AppendXYZ(c.X[i], c.Y[i], c.Z[i])
		}
	}
}

// Ingest applies the full ingestion chain — ROI crop then ground
// segmentation with the default threshold — exactly as the deployed
// pipeline does before clustering.
func Ingest(c geom.Cloud, roi ROI) geom.Cloud {
	return Segment(roi.Crop(c), DefaultZMin)
}

// IngestSoAInto applies the full ingestion chain in one pass over a
// structure-of-arrays cloud, appending survivors to dst. The surviving
// points and their order match Ingest on the widened cloud (both filters
// commute into a single conjunction over each point).
func IngestSoAInto(dst, c *geom.CloudSoA, roi ROI) {
	for i := range c.X {
		if roi.ContainsXYZ(c.X[i], c.Y[i], c.Z[i]) && float64(c.Z[i]) >= DefaultZMin {
			dst.AppendXYZ(c.X[i], c.Y[i], c.Z[i])
		}
	}
}
