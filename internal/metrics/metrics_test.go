package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionPerfect(t *testing.T) {
	var c Confusion
	for i := 0; i < 10; i++ {
		c.Add(true, true)
		c.Add(false, false)
	}
	if c.Accuracy() != 1 || c.Precision() != 1 || c.Recall() != 1 || c.F1() != 1 {
		t.Errorf("perfect classifier metrics: %s", c)
	}
	if c.Total() != 20 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	// OC-SVM in the paper predicts "human" for everything: accuracy equals
	// the human base rate, recall 1, precision = base rate.
	var c Confusion
	for i := 0; i < 50; i++ {
		c.Add(true, true) // humans, predicted human
	}
	for i := 0; i < 50; i++ {
		c.Add(true, false) // objects, still predicted human
	}
	if got := c.Accuracy(); got != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", got)
	}
	if got := c.Recall(); got != 1 {
		t.Errorf("Recall = %v, want 1", got)
	}
	if got := c.Precision(); got != 0.5 {
		t.Errorf("Precision = %v, want 0.5", got)
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should give zero metrics, not NaN")
	}
	if !strings.Contains(c.String(), "acc=") {
		t.Error("String should include acc")
	}
}

func TestMAE(t *testing.T) {
	tests := []struct {
		name        string
		pred, truth []float64
		want        float64
	}{
		{"exact", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"off by one", []float64{2, 3, 4}, []float64{1, 2, 3}, 1},
		{"mixed signs", []float64{0, 4}, []float64{2, 2}, 2},
		{"empty", nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MAE(tt.pred, tt.truth); got != tt.want {
				t.Errorf("MAE = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMSEIsRMSE(t *testing.T) {
	pred := []float64{3, 0}
	truth := []float64{0, 0}
	// RMSE = sqrt((9+0)/2)
	want := math.Sqrt(4.5)
	if got := MSE(pred, truth); math.Abs(got-want) > 1e-12 {
		t.Errorf("MSE = %v, want %v", got, want)
	}
	if got := MeanSquaredError(pred, truth); got != 4.5 {
		t.Errorf("MeanSquaredError = %v, want 4.5", got)
	}
}

func TestMSEAtLeastMAE(t *testing.T) {
	// RMSE >= MAE always (Jensen); this is the relationship visible in the
	// paper's tables.
	f := func(a, b, c, d float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1000)
		}
		pred := []float64{clamp(a), clamp(b)}
		truth := []float64{clamp(c), clamp(d)}
		return MSE(pred, truth) >= MAE(pred, truth)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

func TestCountingAccuracy(t *testing.T) {
	// 250-person scenes with MAE 5.9 → 97.64% accuracy (paper Table VI).
	pred := []float64{244.1, 255.9}
	truth := []float64{250, 250}
	got := CountingAccuracy(pred, truth)
	if math.Abs(got-0.9764) > 1e-6 {
		t.Errorf("CountingAccuracy = %v, want 0.9764", got)
	}
	if CountingAccuracy([]float64{5}, []float64{0}) != 0 {
		t.Error("zero-truth accuracy should be 0")
	}
	// Wildly wrong predictions clamp at 0 rather than going negative.
	if CountingAccuracy([]float64{100}, []float64{1}) != 0 {
		t.Error("accuracy should clamp at 0")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || math.Abs(std-2) > 1e-12 {
		t.Errorf("MeanStd = %v ± %v, want 5 ± 2", mean, std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Error("empty MeanStd should be zeros")
	}
}
