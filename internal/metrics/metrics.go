// Package metrics implements the accuracy and error metrics the paper's
// evaluation reports: classification accuracy, precision, recall, F1, and
// the crowd-counting MAE/MSE (Section VII-A).
package metrics

import (
	"fmt"
	"math"
)

// Confusion is a binary confusion matrix for the Human-vs-Object task.
// "Positive" is the Human class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction against its ground truth.
func (c *Confusion) Add(predictedHuman, actualHuman bool) {
	switch {
	case predictedHuman && actualHuman:
		c.TP++
	case predictedHuman && !actualHuman:
		c.FP++
	case !predictedHuman && actualHuman:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or 0 when nothing was recorded.
func (c Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Precision returns TP/(TP+FP), or 0 when no positive predictions exist.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positive ground truths exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String formats the matrix compactly for logs and experiment reports.
func (c Confusion) String() string {
	return fmt.Sprintf("acc=%.4f P=%.4f R=%.4f F1=%.4f (TP=%d FP=%d TN=%d FN=%d)",
		c.Accuracy(), c.Precision(), c.Recall(), c.F1(), c.TP, c.FP, c.TN, c.FN)
}

// MAE returns the Mean Absolute Error between predicted and ground-truth
// counts: (1/N) Σ |C_i − C_i^GT|. It panics if the slices differ in length
// and returns 0 for empty input.
func MAE(pred, truth []float64) float64 {
	mustSameLen(pred, truth)
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// MSE returns the paper's MSE definition (Section VII-A):
// (1/N) Σ √((C_i − C_i^GT)²) · |C_i − C_i^GT| — the paper writes
// MSE = (1/N) Σ √((C_i − C_i^GT)²), which literally equals MAE; following
// the crowd-counting literature it cites ([2], [4]), the intended quantity
// is the root of the mean squared error. We report
// RMSE = √((1/N) Σ (C_i − C_i^GT)²), which matches the magnitudes in the
// paper's tables (MSE slightly above MAE, growing faster with outliers).
func MSE(pred, truth []float64) float64 {
	mustSameLen(pred, truth)
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MeanSquaredError returns the conventional (non-rooted) mean squared
// error, provided for completeness alongside the paper-style MSE.
func MeanSquaredError(pred, truth []float64) float64 {
	mustSameLen(pred, truth)
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// CountingAccuracy returns 1 − (MAE / mean truth), the "97.64% accuracy"
// style figure the paper quotes for high-density scenes. It returns 0 when
// the mean ground-truth count is zero.
func CountingAccuracy(pred, truth []float64) float64 {
	mustSameLen(pred, truth)
	var sum float64
	for _, t := range truth {
		sum += t
	}
	if sum == 0 {
		return 0
	}
	meanTruth := sum / float64(len(truth))
	acc := 1 - MAE(pred, truth)/meanTruth
	if acc < 0 {
		return 0
	}
	return acc
}

func mustSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(a), len(b)))
	}
}

// MeanStd returns the mean and population standard deviation of xs —
// used for the "value ± std" cells in Tables II, V and VI.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
