package svm

import (
	"math"
	"math/rand"
	"testing"
)

func gaussianBlob(rng *rand.Rand, center []float64, std float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, len(center))
		for d := range v {
			v[d] = center[d] + rng.NormFloat64()*std
		}
		out[i] = v
	}
	return out
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	cfg := DefaultConfig()
	cfg.Nu = 0
	if _, err := Train([][]float64{{1}}, cfg); err == nil {
		t.Error("ν=0 accepted")
	}
	cfg = DefaultConfig()
	if _, err := Train([][]float64{{1, 2}, {1}}, cfg); err == nil {
		t.Error("ragged vectors accepted")
	}
}

func TestOneClassSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := gaussianBlob(rng, []float64{0, 0}, 0.5, 200)
	cfg := DefaultConfig()
	cfg.Nu = 0.05
	cfg.Gamma = 0.5
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// In-distribution points mostly accepted.
	inliers := gaussianBlob(rng, []float64{0, 0}, 0.5, 100)
	accepted := 0
	for _, x := range inliers {
		if m.Predict(x) {
			accepted++
		}
	}
	if accepted < 80 {
		t.Errorf("accepted %d/100 inliers, want ≥ 80", accepted)
	}

	// Far-away points rejected.
	outliers := gaussianBlob(rng, []float64{10, 10}, 0.5, 100)
	rejected := 0
	for _, x := range outliers {
		if !m.Predict(x) {
			rejected++
		}
	}
	if rejected < 95 {
		t.Errorf("rejected %d/100 distant outliers", rejected)
	}
}

func TestNuControlsTrainingRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := gaussianBlob(rng, []float64{0, 0, 0}, 1, 300)
	cfg := DefaultConfig()
	cfg.Nu = 0.1
	cfg.Gamma = 0.3
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rejectedTrain := 0
	for _, x := range train {
		if !m.Predict(x) {
			rejectedTrain++
		}
	}
	// ν bounds the training outlier fraction (≈ ν·n = 30); allow slack for
	// the approximate solver.
	if rejectedTrain > 60 {
		t.Errorf("rejected %d/300 training points with ν=0.1", rejectedTrain)
	}
}

func TestSupportVectorFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := gaussianBlob(rng, []float64{0, 0}, 1, 200)
	cfg := DefaultConfig()
	cfg.Nu = 0.2
	cfg.Gamma = 0.5
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ν lower-bounds the support-vector fraction: expect ≥ ~ν·n.
	if m.NumSupportVectors() < 20 {
		t.Errorf("only %d support vectors with ν=0.2, n=200", m.NumSupportVectors())
	}
}

func TestGammaDefaultsToInverseDim(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := gaussianBlob(rng, []float64{0, 0, 0, 0}, 1, 50)
	m, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Gamma-0.25) > 1e-12 {
		t.Errorf("gamma = %v, want 0.25", m.Gamma)
	}
}

func TestDecisionMonotoneInDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := gaussianBlob(rng, []float64{0, 0}, 0.3, 150)
	cfg := DefaultConfig()
	cfg.Gamma = 1
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, r := range []float64{0, 1, 2, 4, 8} {
		d := m.Decision([]float64{r, 0})
		if d > prev+1e-9 {
			t.Errorf("decision at r=%v is %v, rose above %v", r, d, prev)
		}
		prev = d
	}
}

func TestSinglePoint(t *testing.T) {
	m, err := Train([][]float64{{1, 1}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Predict([]float64{1, 1}) {
		t.Error("the single training point should be accepted")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := gaussianBlob(rng, []float64{0, 0}, 1, 100)
	m1, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m1.Rho != m2.Rho || m1.NumSupportVectors() != m2.NumSupportVectors() {
		t.Error("same seed should give identical models")
	}
}
