// Package svm implements the one-class ν-SVM of Schölkopf et al. ("Support
// vector method for novelty detection", NeurIPS 1999), the classifier
// behind the OC-SVM-CC baseline (Section VII-A). The dual problem
//
//	min ½ Σᵢⱼ αᵢαⱼK(xᵢ,xⱼ)   s.t. 0 ≤ αᵢ ≤ 1/(νn), Σᵢαᵢ = 1
//
// is solved with pairwise coordinate descent (SMO-style updates that
// preserve the equality constraint), using an RBF kernel
// K(x, y) = exp(−γ‖x−y‖²). The decision function is
// f(x) = Σᵢ αᵢK(xᵢ, x) − ρ, positive inside the learned support region.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes OC-SVM training. The paper sets both the training
// error upper bound and support-vector lower bound (ν) to 0.01 and
// γ = 1/numFeatures (Section VII-A).
type Config struct {
	// Nu is the ν parameter: an upper bound on the fraction of outliers
	// and lower bound on the fraction of support vectors.
	Nu float64
	// Gamma is the RBF kernel coefficient; if 0, 1/dim is used.
	Gamma float64
	// MaxPasses bounds optimization sweeps over all pairs.
	MaxPasses int
	// Tol is the convergence tolerance on objective improvement.
	Tol float64
	// Seed drives pair selection.
	Seed int64
}

// DefaultConfig mirrors the paper's OC-SVM settings.
func DefaultConfig() Config {
	return Config{Nu: 0.01, Gamma: 0, MaxPasses: 40, Tol: 1e-7, Seed: 1}
}

// OneClass is a trained one-class SVM.
type OneClass struct {
	SupportVectors [][]float64
	Alphas         []float64
	Rho            float64
	Gamma          float64
}

// Train fits a one-class SVM on the (single-class) training vectors.
func Train(xs [][]float64, cfg Config) (*OneClass, error) {
	n := len(xs)
	if n == 0 {
		return nil, errors.New("svm: no training data")
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("svm: vector %d has dim %d, want %d", i, len(x), dim)
		}
	}
	if cfg.Nu <= 0 || cfg.Nu > 1 {
		return nil, fmt.Errorf("svm: ν = %v outside (0, 1]", cfg.Nu)
	}
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1 / float64(dim)
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 40
	}

	c := 1 / (cfg.Nu * float64(n)) // box constraint
	if c < 1.0/float64(n) {
		// Σα = 1 with α ≤ C < 1/n is infeasible; clamp like libsvm does.
		c = 1.0 / float64(n)
	}

	// Kernel matrix (n ≤ a few thousand for our feature datasets).
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		k[i][i] = 1
		for j := i + 1; j < n; j++ {
			v := rbf(xs[i], xs[j], gamma)
			k[i][j], k[j][i] = v, v
		}
	}

	alpha := make([]float64, n)
	// Feasible start: the first ⌊νn⌋ points at the box bound, remainder on
	// one point (libsvm's initialization).
	remaining := 1.0
	for i := 0; i < n && remaining > 0; i++ {
		a := math.Min(c, remaining)
		alpha[i] = a
		remaining -= a
	}

	// g[i] = Σ_j α_j K(i, j); maintained incrementally.
	g := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				g[i] += alpha[j] * k[i][j]
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		var improved float64
		perm := rng.Perm(n)
		for pi := 0; pi < n; pi++ {
			i := perm[pi]
			j := perm[(pi+1)%n]
			if i == j {
				continue
			}
			s := alpha[i] + alpha[j]
			eta := k[i][i] + k[j][j] - 2*k[i][j]
			if eta < 1e-12 {
				continue
			}
			// Unconstrained optimum for α_i with α_j = s − α_i; using
			// maintained gradients: c_i = g[i] − α_i·K_ii − α_j·K_ij and
			// symmetric for j.
			ci := g[i] - alpha[i]*k[i][i] - alpha[j]*k[i][j]
			cj := g[j] - alpha[i]*k[i][j] - alpha[j]*k[j][j]
			ai := (s*(k[j][j]-k[i][j]) + cj - ci) / eta
			lo := math.Max(0, s-c)
			hi := math.Min(c, s)
			if ai < lo {
				ai = lo
			}
			if ai > hi {
				ai = hi
			}
			aj := s - ai
			di, dj := ai-alpha[i], aj-alpha[j]
			if math.Abs(di) < 1e-14 {
				continue
			}
			alpha[i], alpha[j] = ai, aj
			for t := 0; t < n; t++ {
				g[t] += di*k[i][t] + dj*k[j][t]
			}
			improved += math.Abs(di)
		}
		if improved < cfg.Tol {
			break
		}
	}

	// ρ: average of f₀(x_i) = g[i] over margin support vectors
	// (0 < α < C); if none, over all support vectors.
	var rho float64
	count := 0
	const eps = 1e-9
	for i := 0; i < n; i++ {
		if alpha[i] > eps && alpha[i] < c-eps {
			rho += g[i]
			count++
		}
	}
	if count == 0 {
		for i := 0; i < n; i++ {
			if alpha[i] > eps {
				rho += g[i]
				count++
			}
		}
	}
	if count > 0 {
		rho /= float64(count)
	}

	// Retain only support vectors.
	model := &OneClass{Gamma: gamma, Rho: rho}
	for i := 0; i < n; i++ {
		if alpha[i] > eps {
			model.SupportVectors = append(model.SupportVectors, append([]float64(nil), xs[i]...))
			model.Alphas = append(model.Alphas, alpha[i])
		}
	}
	return model, nil
}

// Decision returns f(x) = Σ αᵢK(xᵢ, x) − ρ; positive means x lies inside
// the learned support of the training distribution.
func (m *OneClass) Decision(x []float64) float64 {
	var s float64
	for i, sv := range m.SupportVectors {
		s += m.Alphas[i] * rbf(sv, x, m.Gamma)
	}
	return s - m.Rho
}

// Predict reports whether x belongs to the training class.
func (m *OneClass) Predict(x []float64) bool { return m.Decision(x) >= 0 }

// NumSupportVectors returns the support vector count.
func (m *OneClass) NumSupportVectors() int { return len(m.SupportVectors) }

func rbf(a, b []float64, gamma float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-gamma * d2)
}
