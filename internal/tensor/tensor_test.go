package tensor

import (
	"math/rand"
	"testing"
)

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.NumElems() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Errorf("shape bookkeeping wrong: %v", x)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	if x.Data[3] != 4 {
		t.Error("FromSlice data")
	}
	// Shares storage.
	d[0] = 9
	if x.Data[0] != 9 {
		t.Error("FromSlice must not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shape should panic")
		}
	}()
	FromSlice(d, 3, 3)
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, -1)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestReshape(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Errorf("reshape shape %v", y.Shape)
	}
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Error("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape should panic")
		}
	}()
	x.Reshape(5)
}

func TestFillZeroScale(t *testing.T) {
	x := New(4)
	x.Fill(2)
	x.Scale(3)
	for _, v := range x.Data {
		if v != 6 {
			t.Fatalf("value %v", v)
		}
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestAddScaled(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := FromSlice([]float32{10, 20}, 2)
	x.AddScaled(y, 0.5)
	if x.Data[0] != 6 || x.Data[1] != 12 {
		t.Errorf("AddScaled = %v", x.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch should panic")
		}
	}()
	x.AddScaled(New(3), 1)
}

func TestMinMaxAbsMax(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2}, 3)
	lo, hi := x.MinMax()
	if lo != -3 || hi != 2 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	if x.AbsMax() != 3 {
		t.Errorf("AbsMax = %v", x.AbsMax())
	}
	if New(0).AbsMax() != 0 {
		t.Error("empty AbsMax should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty MinMax should panic")
		}
	}()
	New(0).MinMax()
}

func TestHeInitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(10000)
	x.HeInit(rng, 50) // std = sqrt(2/50) = 0.2
	var mean, varSum float64
	for _, v := range x.Data {
		mean += float64(v)
	}
	mean /= 10000
	for _, v := range x.Data {
		d := float64(v) - mean
		varSum += d * d
	}
	std := varSum / 10000
	if mean > 0.01 || mean < -0.01 {
		t.Errorf("mean = %v", mean)
	}
	if std < 0.03 || std > 0.05 { // 0.2² = 0.04
		t.Errorf("variance = %v, want ≈0.04", std)
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Error("equal shapes")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Error("different dims")
	}
	if New(6).SameShape(New(2, 3)) {
		t.Error("different ranks")
	}
}

func TestString(t *testing.T) {
	if s := New(2, 3).String(); s != "Tensor[2 3]" {
		t.Errorf("String = %q", s)
	}
}
