// Package tensor provides the dense float32 n-dimensional array that the
// neural-network substrate (internal/nn) builds on. It is deliberately
// small: row-major storage, shape algebra, and the handful of element-wise
// helpers the layers need. Heavy math (convolution, matmul) lives in the
// layers themselves where loop structure can be specialized.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := numElems(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data is NOT
// copied; it panics if the length does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != numElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

func numElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// NumElems returns the total element count.
func (t *Tensor) NumElems() int { return len(t.Data) }

// Dim returns the size of the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view sharing the same data with a new shape; the
// element count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if numElems(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddScaled accumulates alpha·o into t element-wise. Shapes must match in
// element count.
func (t *Tensor) AddScaled(o *Tensor, alpha float32) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i := range t.Data {
		t.Data[i] += alpha * o.Data[i]
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// MinMax returns the smallest and largest element. It panics on an empty
// tensor.
func (t *Tensor) MinMax() (minV, maxV float32) {
	if len(t.Data) == 0 {
		panic("tensor: MinMax of empty tensor")
	}
	minV, maxV = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV
}

// AbsMax returns the largest absolute element value (0 for empty).
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// RandNormal fills the tensor with N(0, std²) samples from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// HeInit applies He-normal initialization for a layer with the given
// fan-in, the standard choice before ReLU activations.
func (t *Tensor) HeInit(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	t.RandNormal(rng, std)
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// String summarizes the tensor for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.Shape)
}
