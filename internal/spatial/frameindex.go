package spatial

import (
	"hawccc/internal/geom"
)

// FrameIndex bundles a Grid with reusable query buffers: the
// one-build-per-frame index the geometry stage shares across the
// adaptive-ε kNN curve, the structure-gap coarse pass, DBSCAN expansion,
// and the projection height-variance neighborhoods. Build it once per
// frame (Build reuses all internal arrays) and query it from a single
// goroutine — Radius and KNN return views into the internal buffers,
// valid only until the next query. Callers that need concurrent queries
// or longer-lived results use the Grid's Into variants with their own
// buffers.
type FrameIndex struct {
	Grid Grid
	nbuf []int
	knnb []Neighbor
}

// Build (re)indexes cloud with the given cell edge; cell <= 0 selects
// AutoCell's default. Steady-state rebuilds are allocation-free once the
// internal arrays have grown to the traffic.
func (f *FrameIndex) Build(cloud geom.Cloud, cell float64) {
	f.Grid.Reset(cloud, cell)
}

// BuildSoA (re)indexes a structure-of-arrays cloud; see Grid.ResetSoA
// for the storage and exactness contract.
func (f *FrameIndex) BuildSoA(cloud *geom.CloudSoA, cell float64) {
	f.Grid.ResetSoA(cloud, cell)
}

// Len returns the number of indexed points.
func (f *FrameIndex) Len() int { return f.Grid.Len() }

// Radius returns the indices of all points within r of q (inclusive),
// in a buffer owned by the index: valid until the next Radius call.
func (f *FrameIndex) Radius(q geom.Point3, r float64) []int {
	f.nbuf = f.Grid.RadiusInto(f.nbuf[:0], q, r)
	return f.nbuf
}

// RadiusCount returns the number of points within r of q.
func (f *FrameIndex) RadiusCount(q geom.Point3, r float64) int {
	return f.Grid.RadiusCount(q, r)
}

// KNN returns the k nearest neighbors of q in ascending (Dist2, Index)
// order, in a buffer owned by the index: valid until the next KNN call.
func (f *FrameIndex) KNN(q geom.Point3, k int) []Neighbor {
	f.knnb = f.Grid.KNNInto(f.knnb[:0], q, k)
	return f.knnb
}
