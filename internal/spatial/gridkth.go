package spatial

import (
	"math"
	"math/bits"

	"hawccc/internal/geom"
	"hawccc/internal/geom/kernels"
)

// kthStackCap bounds the k for which KthDist2 runs entirely on the
// stack; the adaptive ε curve asks for k = MinPts+1 ≈ 5, far below it.
const kthStackCap = 64

// KthFast reports whether KthDist2(·, k) runs the vectorized span scan.
// When it returns false the method still answers correctly, but via a
// ring-based kNN that allocates its neighbor buffer — callers holding
// their own scratch (the adaptive ε curve) do better querying KNNInto
// themselves in that case.
func (g *Grid) KthFast(k int) bool {
	return g.vec && k <= kthStackCap
}

// KthDist2 returns the exact squared distance from q to its k-th
// nearest point, the value KNNInto's last element reports — k is
// clamped to Len, and an empty grid or k ≤ 0 yields 0.
//
// The ε-curve of adaptive DBSCAN asks exactly this question once per
// point and discards the neighbor identities, so the vectorized grid
// answers it without the ring machinery: contiguous CSR span scans with
// the 8-wide prefilter keep the k smallest exact distances in a
// value-only max-heap. The k-th smallest distance is a property of the
// point multiset — scanning more of the cloud never changes it, every
// real point folded in only tightens the heap, the only hazard is
// offering one point twice — so every path (either scan here, the
// scalar ring kNN, the k-d tree) computes the identical float64 value.
// The common dense case needs a single pass over the ±1-cell
// neighborhood: if the k-th distance found there is at most the
// distance from q to the nearest face of the scanned box beyond which
// cells exist, no outside point can compete. Sparse queries keep their
// heap and grow the box by doubling, each round scanning only the
// complement of the rows already seen.
//
// Grids without the vector mirror delegate to the ring-based kNN: the
// span scan's win comes from the prefilter discarding candidates before
// their exact distance is computed, which a scalar scan cannot do.
func (g *Grid) KthDist2(q geom.Point3, k int) float64 {
	n := g.Len()
	if n == 0 || k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	if !g.vec || k > kthStackCap {
		var nbuf [kthStackCap]Neighbor
		buf := nbuf[:0]
		if k > kthStackCap {
			buf = nil
		}
		nn := g.KNNInto(buf, q, k)
		return nn[len(nn)-1].Dist2
	}

	var s kthSearch
	s.g, s.k = g, k
	s.t0 = math.Inf(1)
	return s.run(q)
}

// KthDist2All fills dst[i] with KthDist2 of point i for every indexed
// point — the whole adaptive ε curve in one call. Requires KthFast(k)
// (the vectorized span scan); values equal per-point KthDist2 exactly.
// Queries walk the points in CSR order, so consecutive queries share
// their neighborhood's cache lines, and the (stack) search state is
// zeroed once instead of once per point.
func (g *Grid) KthDist2All(dst []float64, k int) {
	n := g.Len()
	if k > n {
		k = n
	}
	if !g.KthFast(k) {
		panic("spatial: KthDist2All requires KthFast")
	}
	if n == 0 || k <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	var s kthSearch
	s.g, s.k = g, k
	s.t0 = math.Inf(1)
	var prev geom.Point3
	var prevD float64
	for i, id := range g.ids[:n] {
		p := g.point(id)
		if i > 0 {
			// Seed the query's bound from its predecessor: by the
			// triangle inequality the k nearest of prev sit within
			// dist(p, prev) + kth(prev) of p, so that radius is a
			// certified upper bound on kth(p). In CSR order consecutive
			// queries share a cell or a neighborhood, so the bound is
			// tight and the prefilter bites from the very first span
			// instead of only after the heap fills. The relative nudge
			// absorbs the rounding of the square roots.
			d := math.Sqrt(p.Dist2(prev)) + prevD
			s.t0 = d * d * (1 + 1e-9)
		}
		dst[id] = s.run(p)
		prev, prevD = p, math.Sqrt(dst[id])
	}
}

// run answers one k-th-distance query, reusing the search's buffers.
func (s *kthSearch) run(q geom.Point3) float64 {
	g := s.g
	k := s.k
	s.q = q
	s.qx, s.qy, s.qz = float32(q.X), float32(q.Y), float32(q.Z)
	s.hn = 0
	s.top = math.NaN()

	// A non-finite query defeats the cell arithmetic below; its k-th
	// distance is still well defined (usually +Inf), so take it from one
	// scan of the whole CSR array.
	if f := q.X + q.Y + q.Z; math.IsNaN(f) || math.IsInf(f, 0) {
		s.span(0, g.Len())
		return s.hbuf[0]
	}

	// Fast path: scan the ±1-cell neighborhood of the query's cell —
	// each ix row fused into one contiguous CSR span (a superset of the
	// box; see radiusVec) so the sensor's sparse cells still yield
	// kernel-sized spans. The query's own column goes first to fill the
	// heap with the tightest distances, and the row containing it splits
	// around that column so no point is offered twice. The box is
	// clamped into the lattice on both sides: for a far-outside query it
	// degenerates to boundary cells, which only seeds the heap earlier.
	cx := ifloor((q.X - g.min.X) * g.inv)
	cy := ifloor((q.Y - g.min.Y) * g.inv)
	cz := ifloor((q.Z - g.min.Z) * g.inv)
	bx0, bx1 := clampHi(clampLo(cx-1), g.nx), clampLo(clampHi(cx+1, g.nx))
	by0, by1 := clampHi(clampLo(cy-1), g.ny), clampLo(clampHi(cy+1, g.ny))
	bz0, bz1 := clampHi(clampLo(cz-1), g.nz), clampLo(clampHi(cz+1, g.nz))
	center := cx >= bx0 && cx <= bx1 && cy >= by0 && cy <= by1
	var cLo, cHi int
	if center {
		col := (cx*g.ny + cy) * g.nz
		cLo, cHi = int(g.start[col+bz0]), int(g.start[col+bz1+1])
		s.span(cLo, cHi)
	}
	for ix := bx0; ix <= bx1; ix++ {
		lo := int(g.start[(ix*g.ny+by0)*g.nz+bz0])
		hi := int(g.start[(ix*g.ny+by1)*g.nz+bz1+1])
		if center && ix == cx {
			s.span(lo, cLo)
			s.span(cHi, hi)
			continue
		}
		s.span(lo, hi)
	}
	if s.hn == k {
		if bd := g.faceDist(q, bx0, bx1, by0, by1, bz0, bz1); bd >= 0 && s.hbuf[0] <= bd*bd {
			return s.hbuf[0]
		}
	}

	// General path: keep the heap and grow the box by doubling its cell
	// half-width. Each round the rows already inside the previous box
	// have been scanned as one contiguous CSR subrange, so the new scan
	// covers exactly its complement — no point is visited twice and no
	// overlapping rescan is paid. Termination: once the box covers the
	// lattice every point within t0 has been offered, and at least k
	// points are (t0 certifies that many; k ≤ n when t0 is +Inf), so the
	// heap is full and holds the true k-th distance. The w cap is
	// unreachable for any sane lattice; it bounds the loop if cell
	// arithmetic ever degenerates.
	for w := 2; ; w *= 2 {
		nx0, nx1 := clampHi(clampLo(cx-w), g.nx), clampLo(clampHi(cx+w, g.nx))
		ny0, ny1 := clampHi(clampLo(cy-w), g.ny), clampLo(clampHi(cy+w, g.ny))
		nz0, nz1 := clampHi(clampLo(cz-w), g.nz), clampLo(clampHi(cz+w, g.nz))
		for ix := nx0; ix <= nx1; ix++ {
			lo := int(g.start[(ix*g.ny+ny0)*g.nz+nz0])
			hi := int(g.start[(ix*g.ny+ny1)*g.nz+nz1+1])
			if ix >= bx0 && ix <= bx1 {
				pLo := int(g.start[(ix*g.ny+by0)*g.nz+bz0])
				pHi := int(g.start[(ix*g.ny+by1)*g.nz+bz1+1])
				s.span(lo, pLo)
				s.span(pHi, hi)
				continue
			}
			s.span(lo, hi)
		}
		if nx0 == 0 && nx1 == g.nx-1 && ny0 == 0 && ny1 == g.ny-1 && nz0 == 0 && nz1 == g.nz-1 {
			return s.hbuf[0]
		}
		if s.hn == k {
			if bd := g.faceDist(q, nx0, nx1, ny0, ny1, nz0, nz1); bd >= 0 && s.hbuf[0] <= bd*bd {
				return s.hbuf[0]
			}
		}
		if w > 1<<40 {
			s.hn, s.top = 0, math.NaN()
			s.span(0, g.Len())
			return s.hbuf[0]
		}
		bx0, bx1, by0, by1, bz0, bz1 = nx0, nx1, ny0, ny1, nz0, nz1
	}
}

// faceDist returns the distance from q to the nearest face of the cell
// box that has lattice cells on its far side — the certificate bound:
// every unscanned point lies beyond such a face, so a full heap whose
// k-th distance is within it is provably final. The margin shaves
// ~1000 ulps off the distance to stay conservative against the rounding
// of the binning arithmetic; it is vanishingly small next to any real
// cell.
func (g *Grid) faceDist(q geom.Point3, bx0, bx1, by0, by1, bz0, bz1 int) float64 {
	bd := math.Inf(1)
	if bx0 > 0 {
		if v := q.X - (g.min.X + float64(bx0)*g.cell); v < bd {
			bd = v
		}
	}
	if bx1 < g.nx-1 {
		if v := g.min.X + float64(bx1+1)*g.cell - q.X; v < bd {
			bd = v
		}
	}
	if by0 > 0 {
		if v := q.Y - (g.min.Y + float64(by0)*g.cell); v < bd {
			bd = v
		}
	}
	if by1 < g.ny-1 {
		if v := g.min.Y + float64(by1+1)*g.cell - q.Y; v < bd {
			bd = v
		}
	}
	if bz0 > 0 {
		if v := q.Z - (g.min.Z + float64(bz0)*g.cell); v < bd {
			bd = v
		}
	}
	if bz1 < g.nz-1 {
		if v := g.min.Z + float64(bz1+1)*g.cell - q.Z; v < bd {
			bd = v
		}
	}
	return bd - 1e-12*(g.maxAbs+1)
}

// kthSearch accumulates the k smallest exact squared distances to q in
// hbuf[:hn], a value max-heap. The buffers are value fields (as in
// knnScan) so the whole search lives on KthDist2's stack.
type kthSearch struct {
	g          *Grid
	q          geom.Point3
	qx, qy, qz float32
	k, hn      int
	t0         float64 // certified upper bound on the answer (+Inf if none)
	top        float64 // memoized filterBounds key; NaN forces a compute
	hiF        float32
	hbuf       [kthStackCap]float64
	mHi, mLo   [vecChunk / 8]uint8
}

// kthMinVecSpan is the kth scan's vector threshold. It sits below the
// radius paths' minVecSpan because the seeded bound t0 lets the
// prefilter discard most of even a short span before any exact
// distance is computed, which a radius scan (whose every survivor is
// output) cannot.
const kthMinVecSpan = 8

// span folds the CSR id range [lo, hi) into the heap. While the heap
// is short of k, candidates at most t0 — the certified upper bound on
// the answer — are admitted (anything beyond t0 provably is not among
// the k nearest); once full, only candidates below the retained k-th
// distance. Both thresholds feed the 8-wide prefilter, so with a tight
// seed most candidates are discarded before any exact distance is
// computed. Short spans stay scalar.
func (s *kthSearch) span(lo, hi int) {
	g := s.g
	if hi-lo < kthMinVecSpan {
		for _, id := range g.ids[lo:hi] {
			d2 := s.q.Dist2(g.point(id))
			if s.hn < s.k {
				if d2 <= s.t0 {
					s.offer(d2)
				}
			} else if d2 < s.hbuf[0] {
				s.offer(d2)
			}
		}
		return
	}
	// The mask kernel takes whole 8-lane blocks; the ragged tail joins
	// the scalar loop below.
	vecEnd := lo + (hi-lo)&^7
	for lo < vecEnd {
		m := vecEnd - lo
		if m > vecChunk {
			m = vecChunk
		}
		t := s.t0
		if s.hn == s.k {
			t = s.hbuf[0]
		}
		if t != s.top {
			_, s.hiF = g.filterBounds(s.q, t)
			s.top = t
		}
		// If the heap fills mid-chunk the memoized threshold is the
		// stale, larger of the two — skipping beyond it remains safe and
		// the next chunk tightens. Survivors always pay the exact float64
		// distance (the heap needs it), so only the candidate mask is
		// used here.
		nb := m / 8
		kernels.MaskDist2LE(s.mHi[:nb], s.mLo[:nb], g.gx[lo:lo+m], g.gy[lo:lo+m], g.gz[lo:lo+m], s.qx, s.qy, s.qz, s.hiF, s.hiF)
		for b := 0; b < nb; b++ {
			h := s.mHi[b]
			base := lo + b*8
			for h != 0 {
				j := bits.TrailingZeros8(h)
				h &= h - 1
				d2 := s.q.Dist2(g.point(g.ids[base+j]))
				if s.hn < s.k {
					if d2 <= s.t0 {
						s.offer(d2)
					}
				} else if d2 < s.hbuf[0] {
					s.offer(d2)
				}
			}
		}
		lo += m
	}
	for _, id := range g.ids[lo:hi] {
		d2 := s.q.Dist2(g.point(id))
		if s.hn < s.k {
			if d2 <= s.t0 {
				s.offer(d2)
			}
		} else if d2 < s.hbuf[0] {
			s.offer(d2)
		}
	}
}

// offer keeps the k smallest values seen in the max-heap hbuf[:hn]:
// values grow the heap until it holds k, then only values below the
// current k-th replace the top.
func (s *kthSearch) offer(v float64) {
	h := s.hbuf[:s.hn]
	if s.hn < s.k {
		h = append(h, v)
		s.hn++
		for i := s.hn - 1; i > 0; {
			p := (i - 1) / 2
			if h[p] >= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return
	}
	if v >= h[0] {
		return
	}
	h[0] = v
	for i := 0; ; {
		c := 2*i + 1
		if c >= s.hn {
			break
		}
		if r := c + 1; r < s.hn && h[r] > h[c] {
			c = r
		}
		if h[i] >= h[c] {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}
