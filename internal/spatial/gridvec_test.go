package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hawccc/internal/geom"
	"hawccc/internal/geom/kernels"
)

// withVectorized runs fn twice — once with the SIMD kernels forced on,
// once forced off — restoring the previous setting afterwards. On
// machines without AVX both runs take the scalar path, which keeps the
// comparison trivially true rather than skipping coverage.
func withVectorized(t *testing.T, fn func(vec bool)) {
	t.Helper()
	prev := kernels.SetVectorized(true)
	defer kernels.SetVectorized(prev)
	fn(true)
	kernels.SetVectorized(false)
	fn(false)
}

// boundaryRadii returns radii placed exactly at point-to-point
// distances, where the inclusive <= contract decides membership and a
// rounded float32 compare would flip results.
func boundaryRadii(rng *rand.Rand, cloud geom.Cloud, q geom.Point3, n int) []float64 {
	radii := []float64{0.35, 0.8}
	for i := 0; i < n; i++ {
		p := cloud[rng.Intn(len(cloud))]
		if d := math.Sqrt(q.Dist2(p)); d > 0 {
			radii = append(radii, d)
		}
	}
	return radii
}

// TestGridVectorizedMatchesScalar is the filter-and-refine acceptance
// property: the SIMD radius/count/kNN paths must return bit-identical
// results to the scalar grid — same ids, same order, same float64
// distances — including radii sitting exactly on point distances.
func TestGridVectorizedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{9, 120, 600} {
		cloud := randomCloud(rng, n)
		queries := queryPoints(rng, cloud, 8)

		type answer struct {
			ids    [][]int
			counts []int
			nbrs   [][]Neighbor
		}
		var got [2]answer
		withVectorized(t, func(vec bool) {
			idx := 0
			if !vec {
				idx = 1
			}
			g := NewGrid(cloud, 0.4) // rebuild so the vec flag is re-latched
			for qi, q := range queries {
				qrng := rand.New(rand.NewSource(int64(n*100 + qi)))
				for _, r := range boundaryRadii(qrng, cloud, q, 4) {
					// Radius order is unspecified (vectorized builds bin
					// coarser, which permutes CSR order); compare as sets.
					ids := append([]int(nil), g.RadiusInto(nil, q, r)...)
					sort.Ints(ids)
					got[idx].ids = append(got[idx].ids, ids)
					got[idx].counts = append(got[idx].counts, g.RadiusCount(q, r))
				}
				for _, k := range []int{1, 7, 16} {
					nb := append([]Neighbor(nil), g.KNNInto(nil, q, k)...)
					got[idx].nbrs = append(got[idx].nbrs, nb)
				}
			}
		})

		if len(got[0].ids) != len(got[1].ids) {
			t.Fatalf("n=%d: query count mismatch", n)
		}
		for i := range got[0].ids {
			if !equalInts(got[0].ids[i], got[1].ids[i]) {
				t.Fatalf("n=%d query %d: vectorized radius ids %v != scalar %v",
					n, i, got[0].ids[i], got[1].ids[i])
			}
			if got[0].counts[i] != got[1].counts[i] {
				t.Fatalf("n=%d query %d: vectorized count %d != scalar %d",
					n, i, got[0].counts[i], got[1].counts[i])
			}
		}
		for i := range got[0].nbrs {
			if !equalNeighbors(got[0].nbrs[i], got[1].nbrs[i]) {
				t.Fatalf("n=%d kNN %d: vectorized %v != scalar %v",
					n, i, got[0].nbrs[i], got[1].nbrs[i])
			}
		}
	}
}

// TestGridSoAMatchesWidenedAoS pins the ResetSoA contract: queries
// against an SoA-built grid match the scalar AoS grid built over the
// float32-widened cloud bit for bit, and both match brute force.
func TestGridSoAMatchesWidenedAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{7, 200, 500} {
		var soa geom.CloudSoA
		soa.FromCloud(randomCloud(rng, n))
		widened := soa.ToCloud()

		cell := AutoCellSoA(&soa, 8)
		if aos := AutoCell(widened, 8); cell != aos {
			t.Fatalf("n=%d: AutoCellSoA %g != AutoCell %g on widened cloud", n, cell, aos)
		}

		gs := &Grid{}
		gs.ResetSoA(&soa, cell)
		ga := NewGrid(widened, cell)
		if gs.Len() != n || ga.Len() != n {
			t.Fatalf("n=%d: Len soa=%d aos=%d", n, gs.Len(), ga.Len())
		}

		for _, q := range queryPoints(rng, widened, 10) {
			for _, r := range boundaryRadii(rng, widened, q, 3) {
				sIDs := gs.RadiusInto(nil, q, r)
				aIDs := ga.RadiusInto(nil, q, r)
				if !equalInts(sIDs, aIDs) {
					t.Fatalf("n=%d r=%g: SoA radius %v != AoS %v", n, r, sIDs, aIDs)
				}
				if want := bruteRadius(widened, q, r); !equalInts(sortedCopy(sIDs), want) {
					t.Fatalf("n=%d r=%g: SoA radius %v != brute %v", n, r, sortedCopy(sIDs), want)
				}
				if c := gs.RadiusCount(q, r); c != len(sIDs) {
					t.Fatalf("n=%d r=%g: SoA RadiusCount %d != %d", n, r, c, len(sIDs))
				}
			}
			for _, k := range []int{1, 5, 12} {
				sNb := gs.KNNInto(nil, q, k)
				if aNb := ga.KNNInto(nil, q, k); !equalNeighbors(sNb, aNb) {
					t.Fatalf("n=%d k=%d: SoA kNN %v != AoS %v", n, k, sNb, aNb)
				}
				if want := bruteKNN(widened, q, k); !equalNeighbors(sNb, want) {
					t.Fatalf("n=%d k=%d: SoA kNN %v != brute %v", n, k, sNb, want)
				}
			}
		}
	}
}

// TestGridSoAResetReuse mirrors TestGridResetReuse for the SoA build
// path: steady-state rebuild plus queries must be allocation-free.
func TestGridSoAResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var soa geom.CloudSoA
	soa.FromCloud(randomCloud(rng, 300))
	g := &Grid{}
	g.ResetSoA(&soa, 0.4)
	q := soa.At(0)
	nbuf := make([]int, 0, 64)
	kbuf := make([]Neighbor, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		g.ResetSoA(&soa, 0.4)
		nbuf = g.RadiusInto(nbuf[:0], q, 0.6)
		kbuf = g.KNNInto(kbuf[:0], q, 8)
		_ = g.RadiusCount(q, 0.6)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ResetSoA+query allocates: %.1f allocs/op", allocs)
	}
}

// TestFrameIndexBuildSoA checks the pooled FrameIndex SoA entry point
// against brute force over the widened cloud.
func TestFrameIndexBuildSoA(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	var soa geom.CloudSoA
	soa.FromCloud(randomCloud(rng, 250))
	widened := soa.ToCloud()
	var fi FrameIndex
	fi.BuildSoA(&soa, 0.3)
	if fi.Len() != soa.Len() {
		t.Fatalf("Len = %d, want %d", fi.Len(), soa.Len())
	}
	for _, q := range queryPoints(rng, widened, 15) {
		want := bruteRadius(widened, q, 0.5)
		if got := sortedCopy(fi.Radius(q, 0.5)); !equalInts(got, want) {
			t.Fatalf("BuildSoA radius mismatch: got %v want %v", got, want)
		}
		if wantK := bruteKNN(widened, q, 6); !equalNeighbors(fi.KNN(q, 6), wantK) {
			t.Fatalf("BuildSoA kNN mismatch")
		}
	}
}

// TestGridVecLargeCoordsFallback: coordinates beyond the float32-safe
// band must force the scalar path (vec latched off at build) and still
// answer correctly.
func TestGridVecLargeCoordsFallback(t *testing.T) {
	prev := kernels.SetVectorized(true)
	defer kernels.SetVectorized(prev)
	const far = 2e17
	cloud := geom.Cloud{
		{X: far, Y: 0, Z: 0},
		{X: far + 1, Y: 0, Z: 0},
		{X: far, Y: 3, Z: 0},
		{X: far + 0.5, Y: 0.5, Z: 0.5},
	}
	g := NewGrid(cloud, 1)
	if g.vec {
		t.Fatal("grid stayed vectorized beyond the float32-safe coordinate band")
	}
	q := geom.Point3{X: far, Y: 0, Z: 0}
	want := bruteRadius(cloud, q, 1.2)
	if got := sortedCopy(g.Radius(q, 1.2)); !equalInts(got, want) {
		t.Fatalf("fallback radius %v != brute %v", got, want)
	}
	if c := g.RadiusCount(q, 1.2); c != len(want) {
		t.Fatalf("fallback RadiusCount %d != %d", c, len(want))
	}
}
