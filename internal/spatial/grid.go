package spatial

import (
	"math"

	"hawccc/internal/geom"
	"hawccc/internal/geom/kernels"
	"hawccc/internal/kdtree"
)

// maxGridCells bounds the voxel count of one grid. A pathologically
// spread cloud (a few returns kilometers apart) would otherwise demand an
// enormous cell array for no query benefit; Reset doubles the cell edge
// until the grid fits, which keeps build cost O(n + cells) with cells
// bounded, at the price of scanning slightly larger candidate sets on
// such degenerate scenes.
const maxGridCells = 1 << 18

// Grid is a uniform voxel grid over a point cloud, tuned for the
// fixed-radius region queries DBSCAN issues: with cell edge ≈ ε a radius
// query visits at most 27 cells. The zero value is an empty grid for
// which every query returns no results; use NewGrid, or Reset to rebuild
// in place reusing the internal arrays (the one-build-per-frame path).
// ResetSoA indexes a structure-of-arrays cloud instead; every query
// behaves identically in either mode.
//
// On hardware with usable AVX the grid also keeps a float32 mirror of
// the coordinates in CSR order and runs radius and kNN scans through the
// internal/geom/kernels vector primitives. The float32 lanes are only a
// prefilter: candidates whose float32 squared distance falls inside an
// analytically bounded uncertainty band around the decision threshold
// are re-checked in float64 against the source coordinates, so vector
// and scalar paths return bit-identical results (see gridvec.go).
//
// Unlike kdtree.Tree, the grid references the cloud instead of copying
// it: it is a per-frame index, valid only while the indexed cloud is
// unchanged. Queries are read-only and safe for concurrent use.
type Grid struct {
	pts        geom.Cloud     // AoS source (Reset); nil in SoA mode
	spts       *geom.CloudSoA // SoA source (ResetSoA); nil in AoS mode
	cell, inv  float64
	min        geom.Point3
	nx, ny, nz int
	// CSR cell layout: ids holds all point indices grouped by cell;
	// cell c owns ids[start[c]:start[c+1]].
	start []int32
	ids   []int32
	// cellOf is build scratch: the cell id of each point.
	cellOf []int32
	// Vectorized-scan state: float32 coordinates in CSR (ids) order, so
	// each cell — and each contiguous run of z-cells — is one dense span
	// for the 8-wide kernels. maxAbs bounds every coordinate magnitude
	// for the float32 error analysis; vec records whether this build may
	// use the vector path at all.
	gx, gy, gz []float32
	maxAbs     float64
	vec        bool
}

// NewGrid builds a grid over cloud with the given cell edge length.
// cell <= 0 selects AutoCell's kNN-oriented default.
func NewGrid(cloud geom.Cloud, cell float64) *Grid {
	g := &Grid{}
	g.Reset(cloud, cell)
	return g
}

// Reset rebuilds the grid over cloud in place, reusing the internal
// arrays so a steady-state caller rebuilding once per frame stops
// allocating once the arrays have grown to the traffic. cell <= 0
// selects AutoCell's default. The grid references cloud; the caller must
// not mutate it while the grid is in use.
func (g *Grid) Reset(cloud geom.Cloud, cell float64) {
	g.pts, g.spts = cloud, nil
	n := len(cloud)
	if n == 0 {
		g.clear()
		return
	}
	if cell <= 0 {
		cell = AutoCell(cloud, 8)
	}
	b := cloud.Bounds()
	ncells := g.sizeLattice(b, cell, n)
	for i, p := range cloud {
		c := g.cellIndex(p)
		g.cellOf[i] = c
		g.start[c+1]++
	}
	g.finishBuild(n, ncells, b)
}

// ResetSoA rebuilds the grid over a structure-of-arrays cloud, reusing
// the internal arrays like Reset. Binning, query geometry, and exact
// re-checks all use the stored float32 coordinates widened (exactly) to
// float64, so results match running the scalar grid over the widened
// cloud bit for bit. cell <= 0 derives AutoCell's default from the SoA
// bounds. The grid references cloud; the caller must not mutate it while
// the grid is in use.
func (g *Grid) ResetSoA(cloud *geom.CloudSoA, cell float64) {
	g.pts, g.spts = nil, cloud
	n := cloud.Len()
	if n == 0 {
		g.clear()
		return
	}
	b := cloud.Bounds()
	if cell <= 0 {
		cell = autoCellSized(b.Size(), n, 8)
	}
	ncells := g.sizeLattice(b, cell, n)
	for i := 0; i < n; i++ {
		c := g.cellIndex(cloud.At(i))
		g.cellOf[i] = c
		g.start[c+1]++
	}
	g.finishBuild(n, ncells, b)
}

// clear empties the grid (the n == 0 build).
func (g *Grid) clear() {
	g.nx, g.ny, g.nz = 0, 0, 0
	g.ids = g.ids[:0]
	g.vec = false
}

// sizeLattice fits the cell lattice to bounds b within the cell budget
// and prepares the CSR arrays for a build over n points, returning the
// cell count. start comes back zeroed for the counting pass.
func (g *Grid) sizeLattice(b geom.Box, cell float64, n int) int {
	// A grid that will scan with the 8-wide kernels bins coarser: the
	// prefilter discards excess candidates far cheaper than the scalar
	// path computes exact distances, so longer contiguous spans beat
	// tighter cells. Queries are exact for any bin width — this moves
	// work between span setup and candidate filtering, never results.
	if kernels.Vectorized() && boxMaxAbs(b) < maxVecCoord {
		cell *= vecCellScale
	}
	g.min = b.Min
	size := b.Size()
	// Size the lattice, growing the cell edge until it fits the budget.
	for {
		inv := 1 / cell
		g.nx = int(size.X*inv) + 1
		g.ny = int(size.Y*inv) + 1
		g.nz = int(size.Z*inv) + 1
		if int64(g.nx)*int64(g.ny)*int64(g.nz) <= maxGridCells {
			g.cell, g.inv = cell, inv
			break
		}
		cell *= 2
	}
	ncells := g.nx * g.ny * g.nz

	g.start = growInt32(g.start, ncells+1)
	for i := range g.start {
		g.start[i] = 0
	}
	g.ids = growInt32(g.ids, n)
	g.cellOf = growInt32(g.cellOf, n)
	return ncells
}

// finishBuild completes the counting sort started by the caller's
// binning pass (start[c+1] holds cell c's population, cellOf each
// point's cell) and refreshes the vectorized-scan state.
//
// Counting-sort into CSR layout: prefix-sum the counts into begin
// offsets, scatter (advancing each begin), then shift the offsets right
// one slot to restore begins.
func (g *Grid) finishBuild(n, ncells int, b geom.Box) {
	for c := 0; c < ncells; c++ {
		g.start[c+1] += g.start[c]
	}
	// After this scatter loop start[c] holds the END of cell c.
	for i := 0; i < n; i++ {
		c := g.cellOf[i]
		g.ids[g.start[c]] = int32(i)
		g.start[c]++
	}
	copy(g.start[1:ncells+1], g.start[:ncells])
	g.start[0] = 0

	g.refreshVec(n, b)
}

// growInt32 returns s resized to n, reallocating only when capacity is
// insufficient.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// point returns the source coordinates of indexed point id, exact in
// float64 regardless of storage mode.
func (g *Grid) point(id int32) geom.Point3 {
	if g.spts != nil {
		return g.spts.At(int(id))
	}
	return g.pts[id]
}

// Len returns the number of indexed points.
func (g *Grid) Len() int {
	if g == nil {
		return 0
	}
	if g.spts != nil {
		return g.spts.Len()
	}
	return len(g.pts)
}

// Cell returns the cell edge the grid was built with (after any budget
// doubling), or 0 for an empty grid.
func (g *Grid) Cell() float64 {
	if g.Len() == 0 {
		return 0
	}
	return g.cell
}

// cellIndex maps a point inside the grid's bounds to its cell id.
func (g *Grid) cellIndex(p geom.Point3) int32 {
	ix := clampAxis(int((p.X-g.min.X)*g.inv), g.nx)
	iy := clampAxis(int((p.Y-g.min.Y)*g.inv), g.ny)
	iz := clampAxis(int((p.Z-g.min.Z)*g.inv), g.nz)
	return int32((ix*g.ny+iy)*g.nz + iz)
}

// clampAxis bounds a cell coordinate to [0, n-1]; points sit inside the
// bounds by construction, but float rounding at the max face can land on
// index n.
func clampAxis(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// ifloor is floor(x) as an int (int() truncates toward zero, which is
// wrong for the negative offsets of queries outside the grid bounds).
func ifloor(x float64) int {
	i := int(x)
	if float64(i) > x {
		i--
	}
	return i
}

// axisRange returns the clamped cell range [lo, hi] covering
// [rel-r, rel+r] on an axis with n cells, where rel is the query
// coordinate relative to the grid minimum. ok is false when the interval
// misses the grid entirely.
func (g *Grid) axisRange(rel, r float64, n int) (lo, hi int, ok bool) {
	lo = ifloor((rel - r) * g.inv)
	hi = ifloor((rel + r) * g.inv)
	if hi < 0 || lo >= n {
		return 0, 0, false
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	return lo, hi, true
}

// Radius returns the indices of all points within radius r of q
// (inclusive). The result order is unspecified.
func (g *Grid) Radius(q geom.Point3, r float64) []int {
	if g.Len() == 0 || r < 0 {
		return nil
	}
	return g.RadiusInto(nil, q, r)
}

// RadiusInto appends the indices of all points within radius r of q
// (inclusive) to dst and returns the extended slice. With cell ≈ r this
// is a 27-cell scan; larger radii scan proportionally more cells.
func (g *Grid) RadiusInto(dst []int, q geom.Point3, r float64) []int {
	if g.Len() == 0 || r < 0 {
		return dst
	}
	ix0, ix1, ok := g.axisRange(q.X-g.min.X, r, g.nx)
	if !ok {
		return dst
	}
	iy0, iy1, ok := g.axisRange(q.Y-g.min.Y, r, g.ny)
	if !ok {
		return dst
	}
	iz0, iz1, ok := g.axisRange(q.Z-g.min.Z, r, g.nz)
	if !ok {
		return dst
	}
	r2 := r * r
	if g.vec {
		return g.radiusVec(dst, q, r2, ix0, ix1, iy0, iy1, iz0, iz1)
	}
	for ix := ix0; ix <= ix1; ix++ {
		for iy := iy0; iy <= iy1; iy++ {
			row := (ix*g.ny + iy) * g.nz
			for iz := iz0; iz <= iz1; iz++ {
				c := row + iz
				ids := g.ids[g.start[c]:g.start[c+1]]
				if g.spts != nil {
					for _, id := range ids {
						if q.Dist2(g.spts.At(int(id))) <= r2 {
							dst = append(dst, int(id))
						}
					}
				} else {
					for _, id := range ids {
						if q.Dist2(g.pts[id]) <= r2 {
							dst = append(dst, int(id))
						}
					}
				}
			}
		}
	}
	return dst
}

// RadiusCount returns the number of points within radius r of q without
// materializing them.
func (g *Grid) RadiusCount(q geom.Point3, r float64) int {
	if g.Len() == 0 || r < 0 {
		return 0
	}
	ix0, ix1, ok := g.axisRange(q.X-g.min.X, r, g.nx)
	if !ok {
		return 0
	}
	iy0, iy1, ok := g.axisRange(q.Y-g.min.Y, r, g.ny)
	if !ok {
		return 0
	}
	iz0, iz1, ok := g.axisRange(q.Z-g.min.Z, r, g.nz)
	if !ok {
		return 0
	}
	r2 := r * r
	if g.vec {
		return g.radiusCountVec(q, r2, ix0, ix1, iy0, iy1, iz0, iz1)
	}
	count := 0
	for ix := ix0; ix <= ix1; ix++ {
		for iy := iy0; iy <= iy1; iy++ {
			row := (ix*g.ny + iy) * g.nz
			for iz := iz0; iz <= iz1; iz++ {
				c := row + iz
				ids := g.ids[g.start[c]:g.start[c+1]]
				if g.spts != nil {
					for _, id := range ids {
						if q.Dist2(g.spts.At(int(id))) <= r2 {
							count++
						}
					}
				} else {
					for _, id := range ids {
						if q.Dist2(g.pts[id]) <= r2 {
							count++
						}
					}
				}
			}
		}
	}
	return count
}

// KNN returns the k nearest neighbors of q in ascending (Dist2, Index)
// order; see NeighborIndex for the exact contract.
func (g *Grid) KNN(q geom.Point3, k int) []Neighbor {
	if g.Len() == 0 || k <= 0 {
		return nil
	}
	return g.KNNInto(nil, q, k)
}

// KNNInto is KNN reusing dst's backing array (the Into convention). The
// search expands Chebyshev rings of cells around the query's cell,
// stopping once the retained k-th distance beats the next ring's lower
// bound, with an exact cell-box distance prune inside each ring.
func (g *Grid) KNNInto(dst []Neighbor, q geom.Point3, k int) []Neighbor {
	dst = dst[:0]
	n := g.Len()
	if n == 0 || k <= 0 {
		return dst
	}
	if k > n {
		k = n
	}
	// The query's (virtual) cell coordinates — intentionally unclamped,
	// so rings stay centered on q even when q lies outside the bounds.
	qx := ifloor((q.X - g.min.X) * g.inv)
	qy := ifloor((q.Y - g.min.Y) * g.inv)
	qz := ifloor((q.Z - g.min.Z) * g.inv)
	maxRing := maxInt6(qx, g.nx-1-qx, qy, g.ny-1-qy, qz, g.nz-1-qz)

	s := knnScan{g: g, q: q, k: k, items: dst, topCache: math.NaN()}
	for d := 0; d <= maxRing; d++ {
		if len(s.items) >= k {
			// Any point in a cell at Chebyshev ring d lies at least
			// (d-1)·cell from q (q sits somewhere inside its own cell).
			lb := float64(d-1) * g.cell
			if lb > 0 && lb*lb > s.items[0].Dist2 {
				break
			}
		}
		s.ring(qx, qy, qz, d)
	}
	kdtree.SortNeighbors(s.items)
	return s.items
}

// maxInt6 returns the maximum of six ints (and at least 0).
func maxInt6(a, b, c, d, e, f int) int {
	m := 0
	for _, v := range [6]int{a, b, c, d, e, f} {
		if v > m {
			m = v
		}
	}
	return m
}

// knnScan carries one KNNInto search: the bounded max-heap of retained
// neighbors (ordered by kdtree.Less, so ties resolve to the lower index)
// plus the query geometry. It lives on the caller's stack.
type knnScan struct {
	g     *Grid
	q     geom.Point3
	k     int
	items []Neighbor
	// topCache/hiFCache memoize filterBounds for the current heap-top
	// distance: the top only changes when an offer lands, so most cells
	// reuse the previous prefilter threshold. topCache starts NaN so the
	// first full-heap cell always computes (a real top can be 0.0 on
	// duplicate points).
	topCache float64
	hiFCache float32
	// dbuf holds one chunk of float32 squared distances for the
	// vectorized cell prefilter; declared here (not in cellVec) so it is
	// zeroed once per search, not once per cell.
	dbuf [vecChunk]float32
}

// ring scans every in-bounds cell at exactly Chebyshev distance d from
// the (possibly virtual) center cell, decomposed into the six faces of
// the shell cube so each cell is visited once.
func (s *knnScan) ring(qx, qy, qz, d int) {
	g := s.g
	if d == 0 {
		if qx >= 0 && qx < g.nx && qy >= 0 && qy < g.ny && qz >= 0 && qz < g.nz {
			s.cell(qx, qy, qz)
		}
		return
	}
	y0, y1 := clampLo(qy-d), clampHi(qy+d, g.ny)
	z0, z1 := clampLo(qz-d), clampHi(qz+d, g.nz)
	// x faces: full y,z square.
	for _, ix := range [2]int{qx - d, qx + d} {
		if ix < 0 || ix >= g.nx {
			continue
		}
		for iy := y0; iy <= y1; iy++ {
			for iz := z0; iz <= z1; iz++ {
				s.cell(ix, iy, iz)
			}
		}
	}
	xi0, xi1 := clampLo(qx-d+1), clampHi(qx+d-1, g.nx)
	// y faces: x interior, full z range.
	for _, iy := range [2]int{qy - d, qy + d} {
		if iy < 0 || iy >= g.ny {
			continue
		}
		for ix := xi0; ix <= xi1; ix++ {
			for iz := z0; iz <= z1; iz++ {
				s.cell(ix, iy, iz)
			}
		}
	}
	yi0, yi1 := clampLo(qy-d+1), clampHi(qy+d-1, g.ny)
	// z faces: x and y interior.
	for _, iz := range [2]int{qz - d, qz + d} {
		if iz < 0 || iz >= g.nz {
			continue
		}
		for ix := xi0; ix <= xi1; ix++ {
			for iy := yi0; iy <= yi1; iy++ {
				s.cell(ix, iy, iz)
			}
		}
	}
}

func clampLo(i int) int {
	if i < 0 {
		return 0
	}
	return i
}

func clampHi(i, n int) int {
	if i >= n {
		return n - 1
	}
	return i
}

// cell offers every point of cell (ix, iy, iz) to the heap, after an
// exact box-distance prune once the heap is full. Once the heap is full
// a vectorized grid prefilters the cell against the retained k-th
// distance (see knnScan.cellVec); before that every candidate needs its
// exact distance anyway, so the scan stays scalar.
func (s *knnScan) cell(ix, iy, iz int) {
	g := s.g
	c := (ix*g.ny+iy)*g.nz + iz
	lo, hi := g.start[c], g.start[c+1]
	if lo == hi {
		return
	}
	if len(s.items) >= s.k {
		if g.cellDist2(s.q, ix, iy, iz) > s.items[0].Dist2 {
			return
		}
		if g.vec {
			s.cellVec(int(lo), int(hi))
			return
		}
	} else if g.vec {
		// Fill the heap scalar, handing the rest of the cell to the
		// vector prefilter the moment it fills: a dense seed cell (the
		// common first cell of an ε-curve query) would otherwise pay an
		// exact distance and heap offer for every candidate.
		for o := int(lo); o < int(hi); o++ {
			if len(s.items) >= s.k {
				s.cellVec(o, int(hi))
				return
			}
			id := g.ids[o]
			s.offer(Neighbor{Index: int(id), Dist2: s.q.Dist2(g.point(id))})
		}
		return
	}
	if g.spts != nil {
		for _, id := range g.ids[lo:hi] {
			s.offer(Neighbor{Index: int(id), Dist2: s.q.Dist2(g.spts.At(int(id)))})
		}
	} else {
		for _, id := range g.ids[lo:hi] {
			s.offer(Neighbor{Index: int(id), Dist2: s.q.Dist2(g.pts[id])})
		}
	}
}

// cellDist2 returns the squared distance from q to the nearest point of
// the cell box (zero when q is inside it).
func (g *Grid) cellDist2(q geom.Point3, ix, iy, iz int) float64 {
	var d2 float64
	if d := axisDist(q.X-g.min.X, ix, g.cell); d > 0 {
		d2 += d * d
	}
	if d := axisDist(q.Y-g.min.Y, iy, g.cell); d > 0 {
		d2 += d * d
	}
	if d := axisDist(q.Z-g.min.Z, iz, g.cell); d > 0 {
		d2 += d * d
	}
	return d2
}

// axisDist is the 1D distance from coordinate rel to the interval
// [i·cell, (i+1)·cell], or ≤ 0 when rel is inside it.
func axisDist(rel float64, i int, cell float64) float64 {
	lo := float64(i) * cell
	if rel < lo {
		return lo - rel
	}
	if hi := lo + cell; rel > hi {
		return rel - hi
	}
	return 0
}

// offer pushes a candidate into the bounded max-heap (ordered by
// kdtree.Less over (Dist2, Index)), keeping the k smallest.
func (s *knnScan) offer(n Neighbor) {
	items := s.items
	if len(items) < s.k {
		items = append(items, n)
		i := len(items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !kdtree.Less(items[parent], items[i]) {
				break
			}
			items[parent], items[i] = items[i], items[parent]
			i = parent
		}
		s.items = items
		return
	}
	if !kdtree.Less(n, items[0]) {
		return
	}
	items[0] = n
	i, size := 0, len(items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < size && kdtree.Less(items[largest], items[l]) {
			largest = l
		}
		if r < size && kdtree.Less(items[largest], items[r]) {
			largest = r
		}
		if largest == i {
			break
		}
		items[i], items[largest] = items[largest], items[i]
		i = largest
	}
}
