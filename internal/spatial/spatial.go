// Package spatial provides the fixed-radius neighbor indexes behind the
// geometry stage of the counting pipeline: a uniform voxel grid tuned for
// DBSCAN-style ε-range queries, and the NeighborIndex interface that lets
// the clustering and projection code run against either the grid or the
// k-d tree (internal/kdtree) interchangeably.
//
// The grid follows the classic observation of the DBSCAN literature
// (Ester et al. 1996): when the query radius ε is known up front,
// bucketing points into ε-sized voxels turns every region query into a
// 3×3×3 cell scan — no tree descent, no log factor, and with the Into
// query variants no per-query allocation. The index is built once per
// frame (see FrameIndex) and shared by the adaptive-ε kNN curve, the
// structure-gap coarse pass, DBSCAN expansion, and the projection
// neighborhoods.
//
// Every implementation honors one neighbor-ordering contract, defined in
// internal/kdtree: k-nearest-neighbor sets are the k smallest candidates
// under ascending (Dist2, Index), ties broken by the lower cloud index,
// and radius queries include points at exactly radius r. Under that
// contract the grid and the tree return bit-identical results, which is
// what the cluster package's partition-equivalence property tests pin.
package spatial

import (
	"math"

	"hawccc/internal/geom"
	"hawccc/internal/kdtree"
)

// Neighbor is a kNN query result: the cloud index of the point and its
// squared distance from the query point. It is the k-d tree's Neighbor
// type, aliased so both index implementations share one query signature.
type Neighbor = kdtree.Neighbor

// NeighborIndex is the small query surface the geometry stage needs from
// a spatial index. Both *Grid and *kdtree.Tree implement it.
//
// The Into variants append into dst (callers typically pass dst[:0]) and
// are allocation-free once dst has grown to the result size; RadiusInto's
// result order is implementation-defined, KNNInto's is ascending
// (Dist2, Index). Radius results include points at exactly distance r.
type NeighborIndex interface {
	// Len returns the number of indexed points.
	Len() int
	// RadiusInto appends the indices of all points within r of q
	// (inclusive) to dst and returns the extended slice.
	RadiusInto(dst []int, q geom.Point3, r float64) []int
	// RadiusCount returns the number of points within r of q without
	// materializing them.
	RadiusCount(q geom.Point3, r float64) int
	// KNNInto appends the k nearest neighbors of q in ascending
	// (Dist2, Index) order to dst[:0] and returns the result. If the
	// index holds fewer than k points, all points are returned.
	KNNInto(dst []Neighbor, q geom.Point3, k int) []Neighbor
}

var (
	_ NeighborIndex = (*Grid)(nil)
	_ NeighborIndex = (*kdtree.Tree)(nil)
)

// AutoCell picks a voxel edge length for kNN-style workloads over cloud:
// under a uniform-density assumption it targets about k points per 3×3×3
// cell neighborhood, so an expanding-ring k-nearest search usually
// terminates within its first shell. Degenerate clouds (flat, collinear,
// or all-duplicate) fall back to extent- and count-based estimates; the
// result is always positive for a non-empty cloud.
func AutoCell(cloud geom.Cloud, k int) float64 {
	if len(cloud) == 0 {
		return 1
	}
	return autoCellSized(cloud.Bounds().Size(), len(cloud), k)
}

// AutoCellSoA is AutoCell for a structure-of-arrays cloud.
func AutoCellSoA(cloud *geom.CloudSoA, k int) float64 {
	if cloud.Len() == 0 {
		return 1
	}
	return autoCellSized(cloud.Bounds().Size(), cloud.Len(), k)
}

// autoCellSized is the shared heuristic: cell edge from the bounding-box
// size and point count.
func autoCellSized(size geom.Point3, n, k int) float64 {
	if k < 1 {
		k = 1
	}
	if vol := size.X * size.Y * size.Z; vol > 0 {
		return math.Cbrt(vol * float64(k) / (27 * float64(n)))
	}
	// Flat or collinear cloud: scale the largest extent by the per-axis
	// point budget instead.
	ext := size.X
	if size.Y > ext {
		ext = size.Y
	}
	if size.Z > ext {
		ext = size.Z
	}
	if ext <= 0 {
		return 1 // all points coincide; any cell works
	}
	return ext * math.Cbrt(float64(k)/float64(n))
}
