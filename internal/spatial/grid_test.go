package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hawccc/internal/geom"
	"hawccc/internal/kdtree"
)

// randomCloud builds a cloud with clustered structure plus uniform
// scatter, including exact duplicates so distance ties exercise the
// (Dist2, Index) tie-break.
func randomCloud(rng *rand.Rand, n int) geom.Cloud {
	cloud := make(geom.Cloud, 0, n)
	for len(cloud) < n {
		switch rng.Intn(4) {
		case 0: // tight blob
			cx, cy, cz := rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*2
			for i := 0; i < 5 && len(cloud) < n; i++ {
				cloud = append(cloud, geom.Point3{
					X: cx + rng.NormFloat64()*0.1,
					Y: cy + rng.NormFloat64()*0.1,
					Z: cz + rng.NormFloat64()*0.1,
				})
			}
		case 1: // exact duplicate of an existing point
			if len(cloud) > 0 {
				cloud = append(cloud, cloud[rng.Intn(len(cloud))])
			} else {
				cloud = append(cloud, geom.Point3{})
			}
		default: // uniform scatter
			cloud = append(cloud, geom.Point3{
				X: rng.Float64()*12 - 6,
				Y: rng.Float64()*12 - 6,
				Z: rng.Float64() * 3,
			})
		}
	}
	return cloud
}

// bruteRadius is the reference radius query: linear scan, inclusive
// boundary, ascending index order.
func bruteRadius(cloud geom.Cloud, q geom.Point3, r float64) []int {
	r2 := r * r
	var out []int
	for i, p := range cloud {
		if q.Dist2(p) <= r2 {
			out = append(out, i)
		}
	}
	return out
}

// bruteKNN is the reference kNN: full sort under the (Dist2, Index)
// contract, first k taken.
func bruteKNN(cloud geom.Cloud, q geom.Point3, k int) []Neighbor {
	ns := make([]Neighbor, len(cloud))
	for i, p := range cloud {
		ns[i] = Neighbor{Index: i, Dist2: q.Dist2(p)}
	}
	sort.Slice(ns, func(i, j int) bool { return kdtree.Less(ns[i], ns[j]) })
	if k > len(ns) {
		k = len(ns)
	}
	return ns[:k]
}

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// queryPoints yields a mix of indexed points, perturbed points, and
// far-outside-bounds points.
func queryPoints(rng *rand.Rand, cloud geom.Cloud, n int) []geom.Point3 {
	qs := make([]geom.Point3, 0, n)
	for len(qs) < n {
		switch rng.Intn(3) {
		case 0:
			qs = append(qs, cloud[rng.Intn(len(cloud))])
		case 1:
			p := cloud[rng.Intn(len(cloud))]
			qs = append(qs, geom.Point3{
				X: p.X + rng.NormFloat64()*0.3,
				Y: p.Y + rng.NormFloat64()*0.3,
				Z: p.Z + rng.NormFloat64()*0.3,
			})
		default:
			qs = append(qs, geom.Point3{
				X: rng.Float64()*60 - 30,
				Y: rng.Float64()*60 - 30,
				Z: rng.Float64()*20 - 10,
			})
		}
	}
	return qs
}

func TestGridRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 7, 64, 400} {
		cloud := randomCloud(rng, n)
		for _, cell := range []float64{0.15, 0.5, 2.0} {
			g := NewGrid(cloud, cell)
			var buf []int
			for _, q := range queryPoints(rng, cloud, 30) {
				for _, r := range []float64{0, 0.2, 0.5, 3.0} {
					want := bruteRadius(cloud, q, r)
					buf = g.RadiusInto(buf[:0], q, r)
					got := sortedCopy(buf)
					if !equalInts(got, want) {
						t.Fatalf("n=%d cell=%g q=%v r=%g: radius mismatch\ngot  %v\nwant %v",
							n, cell, q, r, got, want)
					}
					if c := g.RadiusCount(q, r); c != len(want) {
						t.Fatalf("n=%d cell=%g q=%v r=%g: RadiusCount=%d want %d",
							n, cell, q, r, c, len(want))
					}
				}
			}
		}
	}
}

func TestGridKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 7, 64, 400} {
		cloud := randomCloud(rng, n)
		for _, cell := range []float64{0.15, 0.5, 2.0} {
			g := NewGrid(cloud, cell)
			var buf []Neighbor
			for _, q := range queryPoints(rng, cloud, 30) {
				for _, k := range []int{1, 4, 9, n + 3} {
					want := bruteKNN(cloud, q, k)
					buf = g.KNNInto(buf[:0], q, k)
					if !equalNeighbors(buf, want) {
						t.Fatalf("n=%d cell=%g q=%v k=%d: kNN mismatch\ngot  %v\nwant %v",
							n, cell, q, k, buf, want)
					}
				}
			}
		}
	}
}

// TestGridMatchesKDTree pins the cross-engine contract the cluster
// package relies on: the grid and the k-d tree return bit-identical
// results for every query type.
func TestGridMatchesKDTree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cloud := randomCloud(rng, 500)
	g := NewGrid(cloud, 0.3)
	tr := kdtree.New(cloud)
	var gids, tids []int
	var gn, tn []Neighbor
	for _, q := range queryPoints(rng, cloud, 60) {
		for _, r := range []float64{0.1, 0.3, 1.5} {
			gids = g.RadiusInto(gids[:0], q, r)
			tids = tr.RadiusInto(tids[:0], q, r)
			if !equalInts(sortedCopy(gids), sortedCopy(tids)) {
				t.Fatalf("q=%v r=%g: grid radius %v != kdtree %v", q, r, gids, tids)
			}
			if gc, tc := g.RadiusCount(q, r), tr.RadiusCount(q, r); gc != tc {
				t.Fatalf("q=%v r=%g: grid count %d != kdtree %d", q, r, gc, tc)
			}
		}
		for _, k := range []int{1, 5, 12} {
			gn = g.KNNInto(gn[:0], q, k)
			tn = tr.KNNInto(tn[:0], q, k)
			if !equalNeighbors(gn, tn) {
				t.Fatalf("q=%v k=%d: grid kNN %v != kdtree %v", q, k, gn, tn)
			}
		}
	}
}

// TestKDTreeIntoMatchesAllocating pins that the Into variants added for
// buffer reuse return exactly what the allocating variants do, including
// reuse of a dirty buffer across queries.
func TestKDTreeIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cloud := randomCloud(rng, 300)
	tr := kdtree.New(cloud)
	var ids []int
	var ns []Neighbor
	for _, q := range queryPoints(rng, cloud, 40) {
		for _, r := range []float64{0, 0.25, 1.0} {
			want := tr.Radius(q, r)
			ids = tr.RadiusInto(ids[:0], q, r)
			if !equalInts(sortedCopy(ids), sortedCopy(append([]int(nil), want...))) {
				t.Fatalf("q=%v r=%g: RadiusInto %v != Radius %v", q, r, ids, want)
			}
		}
		for _, k := range []int{1, 6, 20} {
			want := tr.KNN(q, k)
			ns = tr.KNNInto(ns[:0], q, k)
			if !equalNeighbors(ns, want) {
				t.Fatalf("q=%v k=%d: KNNInto %v != KNN %v", q, k, ns, want)
			}
		}
	}
}

func TestGridDegenerateClouds(t *testing.T) {
	q := geom.Point3{X: 1, Y: 2, Z: 3}

	var empty *Grid
	if got := empty.Radius(q, 1); got != nil {
		t.Fatalf("nil grid Radius = %v, want nil", got)
	}
	if got := empty.KNN(q, 3); got != nil {
		t.Fatalf("nil grid KNN = %v, want nil", got)
	}
	if empty.Len() != 0 {
		t.Fatalf("nil grid Len = %d", empty.Len())
	}

	g := NewGrid(nil, 0.5)
	if got := g.RadiusInto(nil, q, 1); len(got) != 0 {
		t.Fatalf("empty grid radius = %v", got)
	}
	if got := g.KNNInto(nil, q, 2); len(got) != 0 {
		t.Fatalf("empty grid kNN = %v", got)
	}

	// All points coincident.
	dup := geom.Cloud{{X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}}
	g = NewGrid(dup, 0) // AutoCell path on zero-extent cloud
	got := g.KNN(geom.Point3{X: 1, Y: 1, Z: 1}, 2)
	want := []Neighbor{{Index: 0, Dist2: 0}, {Index: 1, Dist2: 0}}
	if !equalNeighbors(got, want) {
		t.Fatalf("coincident kNN = %v, want %v", got, want)
	}
	if c := g.RadiusCount(geom.Point3{X: 1, Y: 1, Z: 1}, 0); c != 3 {
		t.Fatalf("coincident RadiusCount = %d, want 3", c)
	}

	// Flat (planar) cloud: zero volume, AutoCell fallback.
	flat := make(geom.Cloud, 50)
	rng := rand.New(rand.NewSource(15))
	for i := range flat {
		flat[i] = geom.Point3{X: rng.Float64() * 5, Y: rng.Float64() * 5, Z: 1.5}
	}
	g = NewGrid(flat, 0)
	for _, r := range []float64{0.3, 2.0} {
		want := bruteRadius(flat, q, r)
		if got := sortedCopy(g.Radius(q, r)); !equalInts(got, want) {
			t.Fatalf("flat cloud radius r=%g: got %v want %v", r, got, want)
		}
	}

	// Negative radius.
	if got := g.Radius(q, -1); got != nil {
		t.Fatalf("negative radius = %v, want nil", got)
	}
	if c := g.RadiusCount(q, -1); c != 0 {
		t.Fatalf("negative RadiusCount = %d", c)
	}
}

// TestGridCellBudget forces the maxGridCells doubling path with a cloud
// whose extent would demand billions of fine cells, and checks queries
// stay exact.
func TestGridCellBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	cloud := make(geom.Cloud, 200)
	for i := range cloud {
		cloud[i] = geom.Point3{
			X: rng.Float64() * 1e4,
			Y: rng.Float64() * 1e4,
			Z: rng.Float64() * 1e4,
		}
	}
	g := NewGrid(cloud, 0.01) // naive lattice would be 1e18 cells
	if cells := int64(g.nx) * int64(g.ny) * int64(g.nz); cells > maxGridCells {
		t.Fatalf("cell budget not enforced: %d cells", cells)
	}
	if g.Cell() <= 0.01 {
		t.Fatalf("cell edge not grown: %g", g.Cell())
	}
	for _, q := range queryPoints(rng, cloud, 10) {
		want := bruteRadius(cloud, q, 500)
		if got := sortedCopy(g.Radius(q, 500)); !equalInts(got, want) {
			t.Fatalf("capped grid radius mismatch: got %v want %v", got, want)
		}
		wantK := bruteKNN(cloud, q, 5)
		if got := g.KNN(q, 5); !equalNeighbors(got, wantK) {
			t.Fatalf("capped grid kNN mismatch: got %v want %v", got, wantK)
		}
	}
}

// TestGridResetReuse pins the one-build-per-frame contract: rebuilding
// over changing clouds keeps queries exact and, once the buffers have
// grown, allocation-free.
func TestGridResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := &Grid{}
	for round := 0; round < 5; round++ {
		cloud := randomCloud(rng, 100+round*50)
		g.Reset(cloud, 0.4)
		for _, q := range queryPoints(rng, cloud, 10) {
			want := bruteRadius(cloud, q, 0.6)
			if got := sortedCopy(g.Radius(q, 0.6)); !equalInts(got, want) {
				t.Fatalf("round %d: radius mismatch: got %v want %v", round, got, want)
			}
		}
	}

	// Steady state: same-size cloud rebuilt into warm buffers.
	cloud := randomCloud(rng, 300)
	g.Reset(cloud, 0.4)
	q := cloud[0]
	nbuf := make([]int, 0, 64)
	kbuf := make([]Neighbor, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		g.Reset(cloud, 0.4)
		nbuf = g.RadiusInto(nbuf[:0], q, 0.6)
		kbuf = g.KNNInto(kbuf[:0], q, 8)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset+query allocates: %.1f allocs/op", allocs)
	}
}

func TestFrameIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	cloud := randomCloud(rng, 250)
	var fi FrameIndex
	fi.Build(cloud, 0.3)
	if fi.Len() != len(cloud) {
		t.Fatalf("Len = %d, want %d", fi.Len(), len(cloud))
	}
	for _, q := range queryPoints(rng, cloud, 20) {
		want := bruteRadius(cloud, q, 0.5)
		if got := sortedCopy(fi.Radius(q, 0.5)); !equalInts(got, want) {
			t.Fatalf("FrameIndex radius mismatch: got %v want %v", got, want)
		}
		if c := fi.RadiusCount(q, 0.5); c != len(want) {
			t.Fatalf("FrameIndex RadiusCount = %d, want %d", c, len(want))
		}
		wantK := bruteKNN(cloud, q, 6)
		if got := fi.KNN(q, 6); !equalNeighbors(got, wantK) {
			t.Fatalf("FrameIndex kNN mismatch: got %v want %v", got, wantK)
		}
	}

	// Rebuild + query in steady state is allocation-free.
	fi.Build(cloud, 0.3)
	q := cloud[0]
	_ = fi.Radius(q, 0.5)
	_ = fi.KNN(q, 8)
	allocs := testing.AllocsPerRun(100, func() {
		fi.Build(cloud, 0.3)
		_ = fi.Radius(q, 0.5)
		_ = fi.KNN(q, 8)
		_ = fi.RadiusCount(q, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("steady-state FrameIndex allocates: %.1f allocs/op", allocs)
	}
}

func TestAutoCell(t *testing.T) {
	if c := AutoCell(nil, 8); c != 1 {
		t.Fatalf("empty cloud AutoCell = %g, want 1", c)
	}
	dup := geom.Cloud{{X: 2, Y: 2, Z: 2}, {X: 2, Y: 2, Z: 2}}
	if c := AutoCell(dup, 8); c != 1 {
		t.Fatalf("coincident AutoCell = %g, want 1", c)
	}
	rng := rand.New(rand.NewSource(19))
	cloud := randomCloud(rng, 500)
	c := AutoCell(cloud, 8)
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		t.Fatalf("AutoCell = %g", c)
	}
	// Sanity: the target density of ~8 points per 27-cell neighborhood
	// should put the cell well below the cloud extent.
	size := cloud.Bounds().Size()
	if c >= size.X && c >= size.Y && c >= size.Z {
		t.Fatalf("AutoCell %g not smaller than extents %v", c, size)
	}
}
