package spatial

import (
	"math/rand"
	"testing"

	"hawccc/internal/geom"
	"hawccc/internal/kdtree"
)

// benchCloud approximates one ingested frame: a few person-sized blobs
// plus ground scatter, at the point counts the ROI crop leaves behind.
func benchCloud(n int) geom.Cloud {
	rng := rand.New(rand.NewSource(42))
	return randomCloud(rng, n)
}

const (
	benchRadius = 0.3 // DefaultAdaptiveConfig's FallbackEps
	benchK      = 5   // adaptive-ε curve asks for K+1
)

func BenchmarkGridBuild(b *testing.B) {
	cloud := benchCloud(2000)
	g := &Grid{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset(cloud, benchRadius)
	}
}

func BenchmarkKDTreeBuild(b *testing.B) {
	cloud := benchCloud(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kdtree.New(cloud)
	}
}

func BenchmarkGridRadius(b *testing.B) {
	cloud := benchCloud(2000)
	g := NewGrid(cloud, benchRadius)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.RadiusInto(buf[:0], cloud[i%len(cloud)], benchRadius)
	}
}

func BenchmarkKDTreeRadius(b *testing.B) {
	cloud := benchCloud(2000)
	tr := kdtree.New(cloud)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.RadiusInto(buf[:0], cloud[i%len(cloud)], benchRadius)
	}
}

func BenchmarkGridKNN(b *testing.B) {
	cloud := benchCloud(2000)
	g := NewGrid(cloud, benchRadius)
	var buf []Neighbor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.KNNInto(buf[:0], cloud[i%len(cloud)], benchK)
	}
}

func BenchmarkKDTreeKNN(b *testing.B) {
	cloud := benchCloud(2000)
	tr := kdtree.New(cloud)
	var buf []Neighbor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.KNNInto(buf[:0], cloud[i%len(cloud)], benchK)
	}
}
