package spatial

// Vectorized grid scans: the structure-of-arrays fast path behind
// RadiusInto, RadiusCount, and KNNInto.
//
// The grid keeps a float32 mirror of the coordinates in CSR (ids) order,
// so every cell — and every contiguous run of z-cells a radius query
// visits — is one dense span for the 8-wide internal/geom/kernels
// primitives. float32 arithmetic changes values at decision boundaries,
// so the mirror is used strictly as a prefilter ("filter and refine"):
//
//   - the float32 squared distance d2f to each candidate is computed
//     8-wide;
//   - an analytic bound tol on |d2f − d2| (d2 the exact float64 squared
//     distance to the source point) splits candidates into definitely-in
//     (d2f ≤ r² − tol), definitely-out (d2f > r² + tol), and a narrow
//     uncertainty band;
//   - only band candidates are re-checked exactly, in float64, against
//     the source coordinates.
//
// Cell membership, scan ranges, ring geometry, and box prunes all come
// from the float64 source coordinates exactly as in the scalar path, so
// the vector path returns exact results — the same index set with the
// same float64 distances, differing at most in the (documented as
// unspecified) Radius output order, because vectorized builds bin
// coarser (vecCellScale) and CSR order follows the lattice. Counts,
// sorted kNN lists, and the k-th-distance values behind the adaptive ε
// curve are bit-identical, so every grid-vs-kdtree and loop-vs-stream
// equality property in the test suite holds verbatim. Toggling
// kernels.SetVectorized therefore changes speed, never results, which
// is what lets GeomBench A/B the two paths on one machine.
//
// Error bound. With u = 2⁻²⁴ (float32 ulp), M a bound on every
// coordinate magnitude (grid maxAbs joined with the query point), and
// T the threshold, a first-order analysis of rounding both endpoints to
// float32 and evaluating ((dx²+dy²)+dz²) in float32 gives
// |d2f − d2| ≲ u·(7·M·√T + 5·T) for points with d2 ≤ T (and
// symmetrically for d2f ≤ T). f32Tol uses 32·M·√T + 24·T — more than 4×
// the first-order bound — plus a second-order u²M² term and a small
// absolute term covering subnormal rounding, so the band errs on the
// side of re-checking a few extra candidates rather than ever
// misclassifying one. Grids whose coordinates are non-finite or so large
// (≥ maxVecCoord) that the bound degenerates simply build without the
// mirror and scan scalar.

import (
	"math"
	"math/bits"

	"hawccc/internal/geom"
	"hawccc/internal/geom/kernels"
)

// vecChunk is the span chunk size for the stack-allocated distance
// buffers (1 KiB of float32).
const vecChunk = 256

// minVecSpan is the span length below which the radius paths scan
// scalar: the chunked kernel call plus the buffered re-read costs more
// than it saves on a handful of candidates.
const minVecSpan = 8

// vecCellScale widens the bin edge of grids built while the kernels are
// active (see sizeLattice).
const vecCellScale = 1.25

// maxVecCoord is the coordinate-magnitude ceiling for the vector path.
// Beyond it the u²M² term of the error bound stops being negligible
// against float32 range; such degenerate clouds (kilometres-plus from
// the sensor) scan scalar.
const maxVecCoord = 1e17

// refreshVec rebuilds the float32 CSR-ordered coordinate mirror after a
// grid build over n points with bounds b, or disables the vector path
// when the kernels are (or this cloud is) unsuitable.
func (g *Grid) refreshVec(n int, b geom.Box) {
	g.maxAbs = boxMaxAbs(b)
	// NaN maxAbs (non-finite coordinates) fails this comparison too.
	g.vec = kernels.Vectorized() && g.maxAbs < maxVecCoord
	if !g.vec {
		return
	}
	g.gx = growFloat32(g.gx, n)
	g.gy = growFloat32(g.gy, n)
	g.gz = growFloat32(g.gz, n)
	if g.spts != nil {
		for j, id := range g.ids[:n] {
			g.gx[j] = g.spts.X[id]
			g.gy[j] = g.spts.Y[id]
			g.gz[j] = g.spts.Z[id]
		}
	} else {
		for j, id := range g.ids[:n] {
			p := g.pts[id]
			g.gx[j] = float32(p.X)
			g.gy[j] = float32(p.Y)
			g.gz[j] = float32(p.Z)
		}
	}
}

// growFloat32 returns s resized to n, reallocating only when capacity is
// insufficient.
func growFloat32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

// boxMaxAbs returns the largest coordinate magnitude of the box corners
// (NaN if any coordinate is NaN, which callers treat as unusable).
func boxMaxAbs(b geom.Box) float64 {
	m := math.Abs(b.Min.X)
	for _, v := range [5]float64{b.Max.X, b.Min.Y, b.Max.Y, b.Min.Z, b.Max.Z} {
		a := math.Abs(v)
		if !(a <= m) { // pick up both larger values and NaN
			m = a
		}
	}
	return m
}

// f32Tol bounds |d2f − d2| for threshold t and coordinate-magnitude
// bound m; see the package comment above for the derivation.
func f32Tol(t, m float64) float64 {
	const u = 1.0 / (1 << 24)
	return u*(32*m*math.Sqrt(t)+24*t) + 64*u*u*m*m + 1e-38
}

// filterBounds returns the float32 prefilter thresholds for an exact
// float64 threshold t: d2f ≤ loF implies d2 ≤ t, and d2 ≤ t implies
// d2f ≤ hiF. The Nextafter steps absorb the float64→float32 rounding of
// the thresholds themselves.
func (g *Grid) filterBounds(q geom.Point3, t float64) (loF, hiF float32) {
	m := g.maxAbs
	for _, v := range [3]float64{q.X, q.Y, q.Z} {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	tol := f32Tol(t, m)
	loF = math.Nextafter32(float32(t-tol), float32(math.Inf(-1)))
	hiF = math.Nextafter32(float32(t+tol), float32(math.Inf(1)))
	return loF, hiF
}

// radiusVec is RadiusInto's vector path over the clamped cell ranges.
// Each ix row is scanned as ONE contiguous CSR span from (iy0, iz0) to
// (iy1, iz1) — a superset of the requested cells that drags in the
// z-extremes of the middle columns. Those extra candidates lie outside
// the z interval the range was built from, so they genuinely fail the
// distance test and the output matches the cell-exact scalar scan id
// for id, in the same (CSR) order. What the fusion buys is span length:
// the sensor's clouds put only a handful of points in each cell, and
// per-cell spans are too short for the 8-wide kernels to pay off.
//
// The fused mask kernel turns each 8-lane block into two mask bytes —
// candidates (≤ hiF) and definite-ins (≤ loF) — so the accept loop
// touches only set bits: misses cost one byte test per block, definite
// hits append without an exact distance, and only the narrow band pays
// a float64 re-check.
func (g *Grid) radiusVec(dst []int, q geom.Point3, r2 float64, ix0, ix1, iy0, iy1, iz0, iz1 int) []int {
	qx, qy, qz := float32(q.X), float32(q.Y), float32(q.Z)
	loF, hiF := g.filterBounds(q, r2)
	var mHi, mLo [vecChunk / 8]uint8
	for ix := ix0; ix <= ix1; ix++ {
		row := (ix*g.ny + iy0) * g.nz
		end := (ix*g.ny + iy1) * g.nz
		lo, hi := int(g.start[row+iz0]), int(g.start[end+iz1+1])
		if hi-lo < minVecSpan {
			for _, id := range g.ids[lo:hi] {
				if q.Dist2(g.point(id)) <= r2 {
					dst = append(dst, int(id))
				}
			}
			continue
		}
		// The mask kernel takes whole 8-lane blocks; the ragged tail
		// (< 8 points) is cheaper checked exactly than masked.
		vecEnd := lo + (hi-lo)&^7
		for lo < vecEnd {
			m := vecEnd - lo
			if m > vecChunk {
				m = vecChunk
			}
			nb := m / 8
			kernels.MaskDist2LE(mHi[:nb], mLo[:nb], g.gx[lo:lo+m], g.gy[lo:lo+m], g.gz[lo:lo+m], qx, qy, qz, hiF, loF)
			for b := 0; b < nb; b++ {
				h := mHi[b]
				if h == 0 {
					continue
				}
				l := mLo[b]
				base := lo + b*8
				for h != 0 {
					j := bits.TrailingZeros8(h)
					h &= h - 1
					id := g.ids[base+j]
					if l>>uint(j)&1 != 0 || q.Dist2(g.point(id)) <= r2 {
						dst = append(dst, int(id))
					}
				}
			}
			lo += m
		}
		for _, id := range g.ids[lo:hi] {
			if q.Dist2(g.point(id)) <= r2 {
				dst = append(dst, int(id))
			}
		}
	}
	return dst
}

// radiusCountVec is RadiusCount's vector path: two fused compare-count
// passes per chunk (at the definite-in and definite-out thresholds).
// When both agree the band is empty and the count is exact; otherwise
// the chunk falls back to distances plus per-candidate refinement.
func (g *Grid) radiusCountVec(q geom.Point3, r2 float64, ix0, ix1, iy0, iy1, iz0, iz1 int) int {
	qx, qy, qz := float32(q.X), float32(q.Y), float32(q.Z)
	loF, hiF := g.filterBounds(q, r2)
	count := 0
	var buf [vecChunk]float32
	for ix := ix0; ix <= ix1; ix++ {
		// One fused span per ix row, exactly as in radiusVec: the extra
		// candidates the superset drags in fail the distance test, so
		// only the span shape changes, never the count.
		row := (ix*g.ny + iy0) * g.nz
		end := (ix*g.ny + iy1) * g.nz
		lo, hi := int(g.start[row+iz0]), int(g.start[end+iz1+1])
		if hi-lo < minVecSpan {
			for _, id := range g.ids[lo:hi] {
				if q.Dist2(g.point(id)) <= r2 {
					count++
				}
			}
			continue
		}
		for lo < hi {
			m := hi - lo
			if m > vecChunk {
				m = vecChunk
			}
			xs, ys, zs := g.gx[lo:lo+m], g.gy[lo:lo+m], g.gz[lo:lo+m]
			cLo := kernels.CountDist2LE(xs, ys, zs, qx, qy, qz, loF)
			if cHi := kernels.CountDist2LE(xs, ys, zs, qx, qy, qz, hiF); cHi == cLo {
				count += cLo
			} else {
				kernels.Dist2(buf[:m], xs, ys, zs, qx, qy, qz)
				for j := 0; j < m; j++ {
					d2f := buf[j]
					if d2f > hiF {
						continue
					}
					if d2f <= loF || q.Dist2(g.point(g.ids[lo+j])) <= r2 {
						count++
					}
				}
			}
			lo += m
		}
	}
	return count
}

// cellVec offers one cell's candidates with the heap already full:
// candidates whose float32 distance provably exceeds the retained k-th
// distance are skipped, the rest get exact float64 offers. The skip
// threshold is fixed at each chunk start; the heap top only shrinks as
// offers land, so the stale threshold is conservative and the heap
// evolves exactly as in the scalar scan.
func (s *knnScan) cellVec(lo, hi int) {
	g := s.g
	qx, qy, qz := float32(s.q.X), float32(s.q.Y), float32(s.q.Z)
	for lo < hi {
		m := hi - lo
		if m > vecChunk {
			m = vecChunk
		}
		if top := s.items[0].Dist2; top != s.topCache {
			_, s.hiFCache = g.filterBounds(s.q, top)
			s.topCache = top
		}
		hiF := s.hiFCache
		kernels.Dist2(s.dbuf[:m], g.gx[lo:lo+m], g.gy[lo:lo+m], g.gz[lo:lo+m], qx, qy, qz)
		for j := 0; j < m; j++ {
			if s.dbuf[j] > hiF {
				continue
			}
			id := g.ids[lo+j]
			s.offer(Neighbor{Index: int(id), Dist2: s.q.Dist2(g.point(id))})
		}
		lo += m
	}
}
