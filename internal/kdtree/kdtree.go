// Package kdtree implements a static 3-dimensional k-d tree over LiDAR
// point clouds. HAWC-CC uses it for the adaptive-clustering
// k-nearest-neighbor distance curve (Section IV), DBSCAN's ε-range queries,
// and the height-aware projection's per-point neighborhood height variance
// (Section V) — either directly or as the reference engine behind
// internal/spatial's NeighborIndex interface, whose voxel grid is the
// default on the per-frame hot path.
//
// The tree is built once over an immutable cloud; queries are read-only and
// safe for concurrent use. KNN results follow the package-wide neighbor
// ordering contract: ascending (Dist2, Index), with distance ties broken by
// the lower original cloud index, so every NeighborIndex implementation
// returns bit-identical neighbor sets.
package kdtree

import (
	"hawccc/internal/geom"
)

// Tree is a balanced, statically built 3D k-d tree. The zero value is an
// empty tree for which every query returns no results; use New to build
// one over a cloud.
type Tree struct {
	pts  geom.Cloud // points reordered into tree layout
	idx  []int      // idx[i] is the original cloud index of pts[i]
	axis []int8     // split axis per node, -1 for leaf slots
}

// New builds a k-d tree over cloud. The cloud is copied; later mutation of
// the caller's slice does not affect the tree.
func New(cloud geom.Cloud) *Tree {
	t := &Tree{
		pts:  cloud.Clone(),
		idx:  make([]int, len(cloud)),
		axis: make([]int8, len(cloud)),
	}
	for i := range t.idx {
		t.idx[i] = i
	}
	t.build(0, len(t.pts), 0)
	return t
}

// Len returns the number of points in the tree.
func (t *Tree) Len() int {
	if t == nil {
		return 0
	}
	return len(t.pts)
}

// build recursively arranges pts[lo:hi] into k-d order: the median on the
// widest-spread axis goes to the middle, smaller values left, larger right.
func (t *Tree) build(lo, hi, depth int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if n == 1 {
		t.axis[lo] = -1
		return
	}
	ax := t.widestAxis(lo, hi)
	mid := lo + n/2
	t.selectMedian(lo, hi, mid, ax)
	t.axis[mid] = int8(ax)
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

// widestAxis returns the axis with the largest coordinate spread in
// pts[lo:hi]. Splitting on the widest axis keeps cells close to cubical,
// which matters for the radius queries DBSCAN issues.
func (t *Tree) widestAxis(lo, hi int) int {
	b := geom.EmptyBox()
	for i := lo; i < hi; i++ {
		b = b.Extend(t.pts[i])
	}
	size := b.Size()
	ax := 0
	best := size.X
	if size.Y > best {
		ax, best = 1, size.Y
	}
	if size.Z > best {
		ax = 2
	}
	return ax
}

// selectMedian partially sorts pts[lo:hi] so that the element at position
// mid is the one that would be there under a full sort by the given axis
// (quickselect with median-of-three pivoting).
func (t *Tree) selectMedian(lo, hi, mid, ax int) {
	for hi-lo > 1 {
		p := t.medianOfThree(lo, hi, ax)
		i, j := lo, hi-1
		for i <= j {
			for t.pts[i].Coord(ax) < p {
				i++
			}
			for t.pts[j].Coord(ax) > p {
				j--
			}
			if i <= j {
				t.swap(i, j)
				i++
				j--
			}
		}
		switch {
		case mid <= j:
			hi = j + 1
		case mid >= i:
			lo = i
		default:
			return
		}
	}
}

func (t *Tree) medianOfThree(lo, hi, ax int) float64 {
	a := t.pts[lo].Coord(ax)
	b := t.pts[lo+(hi-lo)/2].Coord(ax)
	c := t.pts[hi-1].Coord(ax)
	// Return the middle of a, b, c.
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}

func (t *Tree) swap(i, j int) {
	t.pts[i], t.pts[j] = t.pts[j], t.pts[i]
	t.idx[i], t.idx[j] = t.idx[j], t.idx[i]
}

// Neighbor is a query result: the original cloud index of the point and its
// squared distance from the query point.
type Neighbor struct {
	Index int
	Dist2 float64
}

// KNN returns the k nearest neighbors of q in ascending (Dist2, Index)
// order. If the tree holds fewer than k points, all points are returned.
// The query point itself is included if it is in the tree; callers that
// want strict neighbors of an indexed point typically ask for k+1 and drop
// the first.
func (t *Tree) KNN(q geom.Point3, k int) []Neighbor {
	if t == nil || k <= 0 || len(t.pts) == 0 {
		return nil
	}
	return t.KNNInto(nil, q, k)
}

// KNNInto is KNN reusing dst's backing array for the result (and as the
// search heap), following the Into convention of ground, cluster, and
// lidarsim: the returned slice starts at dst[:0] and grows only when
// cap(dst) < k, so steady-state callers stop allocating once the buffer
// has grown to the largest k they ask for. Results are identical to KNN's.
func (t *Tree) KNNInto(dst []Neighbor, q geom.Point3, k int) []Neighbor {
	dst = dst[:0]
	if t == nil || k <= 0 || len(t.pts) == 0 {
		return dst
	}
	if k > len(t.pts) {
		k = len(t.pts)
	}
	h := neighborHeap{items: dst, max: k}
	t.knn(0, len(t.pts), q, &h)
	SortNeighbors(h.items)
	return h.items
}

func (t *Tree) knn(lo, hi int, q geom.Point3, h *neighborHeap) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if n == 1 {
		h.offer(Neighbor{t.idx[lo], q.Dist2(t.pts[lo])})
		return
	}
	mid := lo + n/2
	ax := int(t.axis[mid])
	h.offer(Neighbor{t.idx[mid], q.Dist2(t.pts[mid])})
	delta := q.Coord(ax) - t.pts[mid].Coord(ax)
	// Search the near side first, then the far side unless the splitting
	// plane is strictly farther than the current k-th best distance. The
	// far side is still explored on exact ties so that an equal-distance,
	// lower-index point beyond the plane can claim its slot — the
	// deterministic tie-break every NeighborIndex shares.
	if delta < 0 {
		t.knn(lo, mid, q, h)
		if !h.full() || delta*delta <= h.worst() {
			t.knn(mid+1, hi, q, h)
		}
	} else {
		t.knn(mid+1, hi, q, h)
		if !h.full() || delta*delta <= h.worst() {
			t.knn(lo, mid, q, h)
		}
	}
}

// Radius returns the indices of all points within radius r of q
// (inclusive). The result order is unspecified.
func (t *Tree) Radius(q geom.Point3, r float64) []int {
	if t == nil || len(t.pts) == 0 || r < 0 {
		return nil
	}
	return t.radius(0, len(t.pts), q, r*r, nil)
}

// RadiusInto is Radius appending into dst (callers typically pass
// dst[:0]), mirroring the Into buffer-reuse convention: once dst has
// grown to the densest neighborhood, repeated queries stop allocating.
// Contents and order are exactly Radius's.
func (t *Tree) RadiusInto(dst []int, q geom.Point3, r float64) []int {
	if t == nil || len(t.pts) == 0 || r < 0 {
		return dst
	}
	return t.radius(0, len(t.pts), q, r*r, dst)
}

// RadiusCount returns the number of points within radius r of q without
// allocating the result slice; DBSCAN's core-point test only needs counts.
func (t *Tree) RadiusCount(q geom.Point3, r float64) int {
	if t == nil || len(t.pts) == 0 || r < 0 {
		return 0
	}
	return t.radiusCount(0, len(t.pts), q, r*r)
}

func (t *Tree) radius(lo, hi int, q geom.Point3, r2 float64, out []int) []int {
	n := hi - lo
	if n <= 0 {
		return out
	}
	if n == 1 {
		if q.Dist2(t.pts[lo]) <= r2 {
			out = append(out, t.idx[lo])
		}
		return out
	}
	mid := lo + n/2
	ax := int(t.axis[mid])
	if q.Dist2(t.pts[mid]) <= r2 {
		out = append(out, t.idx[mid])
	}
	delta := q.Coord(ax) - t.pts[mid].Coord(ax)
	if delta < 0 {
		out = t.radius(lo, mid, q, r2, out)
		if delta*delta <= r2 {
			out = t.radius(mid+1, hi, q, r2, out)
		}
	} else {
		out = t.radius(mid+1, hi, q, r2, out)
		if delta*delta <= r2 {
			out = t.radius(lo, mid, q, r2, out)
		}
	}
	return out
}

func (t *Tree) radiusCount(lo, hi int, q geom.Point3, r2 float64) int {
	n := hi - lo
	if n <= 0 {
		return 0
	}
	if n == 1 {
		if q.Dist2(t.pts[lo]) <= r2 {
			return 1
		}
		return 0
	}
	mid := lo + n/2
	ax := int(t.axis[mid])
	count := 0
	if q.Dist2(t.pts[mid]) <= r2 {
		count++
	}
	delta := q.Coord(ax) - t.pts[mid].Coord(ax)
	if delta < 0 {
		count += t.radiusCount(lo, mid, q, r2)
		if delta*delta <= r2 {
			count += t.radiusCount(mid+1, hi, q, r2)
		}
	} else {
		count += t.radiusCount(mid+1, hi, q, r2)
		if delta*delta <= r2 {
			count += t.radiusCount(lo, mid, q, r2)
		}
	}
	return count
}

// Less is the package-wide total order on neighbors: ascending distance,
// ties broken by the lower original cloud index. A total order makes the
// k-nearest set a pure function of the cloud and query — independent of
// traversal order — which is what lets the k-d tree and the voxel grid
// (internal/spatial) promise bit-identical results.
func Less(a, b Neighbor) bool {
	return a.Dist2 < b.Dist2 || (a.Dist2 == b.Dist2 && a.Index < b.Index)
}

// SortNeighbors orders ns ascending under Less. Insertion sort: k is
// single digits on every hot path, and unlike sort.Slice it performs no
// heap allocation, which the Into query variants rely on.
func SortNeighbors(ns []Neighbor) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && Less(ns[j], ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// neighborHeap is a bounded max-heap under Less; it keeps the `max`
// smallest candidates seen so far.
type neighborHeap struct {
	items []Neighbor
	max   int
}

func (h *neighborHeap) full() bool { return len(h.items) >= h.max }

// worst returns the largest retained distance; callers must ensure the heap
// is non-empty (full() implies non-empty since max >= 1).
func (h *neighborHeap) worst() float64 { return h.items[0].Dist2 }

func (h *neighborHeap) offer(n Neighbor) {
	if len(h.items) < h.max {
		h.items = append(h.items, n)
		h.up(len(h.items) - 1)
		return
	}
	if !Less(n, h.items[0]) {
		return
	}
	h.items[0] = n
	h.down(0)
}

func (h *neighborHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !Less(h.items[parent], h.items[i]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *neighborHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && Less(h.items[largest], h.items[l]) {
			largest = l
		}
		if r < n && Less(h.items[largest], h.items[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}
