package kdtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hawccc/internal/geom"
)

func randomCloud(rng *rand.Rand, n int) geom.Cloud {
	c := make(geom.Cloud, n)
	for i := range c {
		c[i] = geom.Point3{
			X: rng.Float64()*40 - 5,
			Y: rng.Float64()*10 - 5,
			Z: rng.Float64()*3 - 3,
		}
	}
	return c
}

// bruteKNN is the reference implementation the tree must agree with.
func bruteKNN(c geom.Cloud, q geom.Point3, k int) []Neighbor {
	ns := make([]Neighbor, len(c))
	for i, p := range c {
		ns[i] = Neighbor{i, q.Dist2(p)}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].Dist2 < ns[j].Dist2 })
	if k > len(ns) {
		k = len(ns)
	}
	return ns[:k]
}

func bruteRadius(c geom.Cloud, q geom.Point3, r float64) []int {
	var out []int
	for i, p := range c {
		if q.Dist2(p) <= r*r {
			out = append(out, i)
		}
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		c := randomCloud(rng, n)
		tree := New(c)
		for q := 0; q < 5; q++ {
			query := geom.Point3{X: rng.Float64() * 40, Y: rng.Float64()*10 - 5, Z: -rng.Float64() * 3}
			k := 1 + rng.Intn(10)
			got := tree.KNN(query, k)
			want := bruteKNN(c, query, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d neighbors, want %d", trial, len(got), len(want))
			}
			for i := range got {
				// Distances must match exactly (same arithmetic); indices may
				// differ on ties, so compare distances.
				if got[i].Dist2 != want[i].Dist2 {
					t.Fatalf("trial %d neighbor %d: dist2 %v, want %v", trial, i, got[i].Dist2, want[i].Dist2)
				}
			}
		}
	}
}

func TestRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		c := randomCloud(rng, 1+rng.Intn(150))
		tree := New(c)
		query := c[rng.Intn(len(c))]
		r := rng.Float64() * 2
		got := tree.Radius(query, r)
		want := bruteRadius(c, query, r)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d: radius returned %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: index %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
		if n := tree.RadiusCount(query, r); n != len(want) {
			t.Fatalf("trial %d: RadiusCount = %d, want %d", trial, n, len(want))
		}
	}
}

func TestKNNProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCloud(r, 1+r.Intn(80))
		tree := New(c)
		q := geom.Point3{X: r.Float64() * 30, Y: r.Float64()*6 - 3, Z: -r.Float64() * 3}
		k := 1 + r.Intn(8)
		res := tree.KNN(q, k)
		// Results must be sorted ascending and no unreported point may be
		// closer than the worst reported one.
		for i := 1; i < len(res); i++ {
			if res[i].Dist2 < res[i-1].Dist2 {
				return false
			}
		}
		if len(res) == 0 {
			return len(c) == 0
		}
		worst := res[len(res)-1].Dist2
		reported := make(map[int]bool, len(res))
		for _, n := range res {
			reported[n.Index] = true
		}
		for i, p := range c {
			if !reported[i] && q.Dist2(p) < worst {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEdgeCases(t *testing.T) {
	var nilTree *Tree
	if nilTree.Len() != 0 || nilTree.KNN(geom.Point3{}, 3) != nil || nilTree.Radius(geom.Point3{}, 1) != nil {
		t.Error("nil tree queries should be empty")
	}
	empty := New(nil)
	if empty.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if res := empty.KNN(geom.Point3{}, 5); len(res) != 0 {
		t.Error("empty tree KNN should be empty")
	}

	single := New(geom.Cloud{geom.P(1, 2, 3)})
	res := single.KNN(geom.P(1, 2, 3), 5)
	if len(res) != 1 || res[0].Dist2 != 0 {
		t.Errorf("single-point KNN = %v", res)
	}
	if got := single.Radius(geom.P(1, 2, 3), 0); len(got) != 1 {
		t.Error("zero-radius query should include exact match")
	}
	if got := single.Radius(geom.P(0, 0, 0), -1); got != nil {
		t.Error("negative radius should return nil")
	}
	if got := single.KNN(geom.Point3{}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestDuplicatePoints(t *testing.T) {
	c := geom.Cloud{geom.P(1, 1, 1), geom.P(1, 1, 1), geom.P(1, 1, 1), geom.P(2, 2, 2)}
	tree := New(c)
	res := tree.KNN(geom.P(1, 1, 1), 3)
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for _, n := range res {
		if n.Dist2 != 0 {
			t.Errorf("expected zero distance for duplicate, got %v", n.Dist2)
		}
	}
	if n := tree.RadiusCount(geom.P(1, 1, 1), 0.5); n != 3 {
		t.Errorf("RadiusCount = %d, want 3", n)
	}
}

func TestTreeImmutableFromCaller(t *testing.T) {
	c := geom.Cloud{geom.P(0, 0, 0), geom.P(1, 0, 0), geom.P(5, 0, 0)}
	tree := New(c)
	c[0] = geom.P(100, 100, 100) // mutate caller slice
	res := tree.KNN(geom.P(0, 0, 0), 1)
	if res[0].Dist2 != 0 {
		t.Error("tree must copy input cloud at construction")
	}
}

// TestAllEquidistantKNN exercises the degenerate geometry where every
// neighbor is at exactly the same distance (the vertices of a regular
// octahedron around the query): the heap has no strict ordering to
// exploit, and pruning must not drop any of the tied points.
func TestAllEquidistantKNN(t *testing.T) {
	c := geom.Cloud{
		geom.P(1, 0, 0), geom.P(-1, 0, 0),
		geom.P(0, 1, 0), geom.P(0, -1, 0),
		geom.P(0, 0, 1), geom.P(0, 0, -1),
	}
	tree := New(c)
	for k := 1; k <= len(c); k++ {
		res := tree.KNN(geom.P(0, 0, 0), k)
		if len(res) != k {
			t.Fatalf("k=%d: got %d neighbors", k, len(res))
		}
		seen := map[int]bool{}
		for _, n := range res {
			if n.Dist2 != 1 {
				t.Errorf("k=%d: tied neighbor at dist2 %v, want 1", k, n.Dist2)
			}
			if seen[n.Index] {
				t.Errorf("k=%d: index %d returned twice", k, n.Index)
			}
			seen[n.Index] = true
		}
	}
	if got := tree.RadiusCount(geom.P(0, 0, 0), 1); got != len(c) {
		t.Errorf("radius at the tie distance found %d of %d points", got, len(c))
	}
	if got := tree.RadiusCount(geom.P(0, 0, 0), 0.999); got != 0 {
		t.Errorf("radius just inside the tie distance found %d points, want 0", got)
	}
}
