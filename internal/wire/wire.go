// Package wire defines the framing and message codecs of the private
// campus network (Figure 1): smart blue light poles stream crowd counts
// and compartment telemetry to the campus cloud backend over TCP. Frames
// are length-prefixed; message bodies use a compact fixed-layout binary
// encoding (stdlib only, no reflection in the hot path).
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"hawccc/internal/obs"
)

// MaxFrameSize bounds a frame body; larger frames indicate corruption.
const MaxFrameSize = 1 << 20

// MsgType tags frame bodies.
type MsgType uint8

// Message types.
const (
	// MsgHello announces a pole after connecting.
	MsgHello MsgType = 1
	// MsgCountReport carries one counted LiDAR frame's result.
	MsgCountReport MsgType = 2
	// MsgTelemetry carries a compartment temperature reading.
	MsgTelemetry MsgType = 3
	// MsgAck acknowledges a report (backend → pole).
	MsgAck MsgType = 4
	// MsgAlert notifies poles of a backend-detected condition.
	MsgAlert MsgType = 5
)

// Hello announces a pole to the backend.
type Hello struct {
	PoleID   uint32
	Location string // human-readable walkway name
	Zone     string // campus zone the pole belongs to (e.g. "north"); may be empty
	// ModelVersion fingerprints the classifier weights the pole counts
	// with (models.HAWC.ModelVersion). Zero means unversioned; the
	// backend flags a mismatch against its own model so offloaded
	// classification never silently mixes weight generations.
	ModelVersion uint32
}

// CountReport is one crowd-count measurement.
type CountReport struct {
	PoleID    uint32
	Seq       uint64
	Timestamp time.Time
	Count     uint32
	Clusters  uint32
	LatencyUS uint32 // end-to-end processing latency in microseconds
}

// Telemetry is one compartment temperature reading.
type Telemetry struct {
	PoleID    uint32
	Timestamp time.Time
	PoleTemp  float64
	Ambient   float64
}

// Ack acknowledges a report sequence number.
type Ack struct {
	Seq uint64
}

// Alert is a backend notification (e.g. unusual crowding).
type Alert struct {
	PoleID  uint32
	Kind    uint8
	Message string
}

// Alert kinds.
const (
	// AlertCrowding fires when a pole's count exceeds its density limit.
	AlertCrowding = 1
	// AlertOverheat fires when compartment temperature exceeds the rated
	// device limit.
	AlertOverheat = 2
	// AlertModelSkew fires when a pole's classifier version differs from
	// the backend's: its offload batches are rejected (the pole falls
	// back to edge classification) until the versions agree. Logged on
	// the backend only — the offload channel carries no alert frames.
	AlertModelSkew = 3
)

// WriteFrame writes one framed message: u32 length, u8 type, body.
func WriteFrame(w io.Writer, t MsgType, body []byte) error {
	if len(body)+1 > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// ReadFrame reads one framed message.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size == 0 || size > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: bad frame size %d", size)
	}
	body := make([]byte, size-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("wire: read body: %w", err)
	}
	return MsgType(hdr[4]), body, nil
}

// encoder accumulates a fixed-layout body.
type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)  { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) time(t time.Time) { e.u64(uint64(t.UnixNano())) }

// decoder consumes a fixed-layout body.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || uint32(len(d.buf)) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) time() time.Time {
	ns := d.u64()
	return time.Unix(0, int64(ns)).UTC()
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated message")
	}
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf))
	}
	return nil
}

// EncodeHello serializes h.
func EncodeHello(h Hello) []byte {
	var e encoder
	e.u32(h.PoleID)
	e.str(h.Location)
	e.str(h.Zone)
	e.u32(h.ModelVersion)
	return e.buf
}

// DecodeHello parses a Hello body.
func DecodeHello(b []byte) (Hello, error) {
	d := decoder{buf: b}
	h := Hello{PoleID: d.u32(), Location: d.str(), Zone: d.str(), ModelVersion: d.u32()}
	return h, d.finish()
}

// EncodeCountReport serializes r.
func EncodeCountReport(r CountReport) []byte {
	var e encoder
	e.u32(r.PoleID)
	e.u64(r.Seq)
	e.time(r.Timestamp)
	e.u32(r.Count)
	e.u32(r.Clusters)
	e.u32(r.LatencyUS)
	return e.buf
}

// DecodeCountReport parses a CountReport body.
func DecodeCountReport(b []byte) (CountReport, error) {
	d := decoder{buf: b}
	r := CountReport{
		PoleID:    d.u32(),
		Seq:       d.u64(),
		Timestamp: d.time(),
		Count:     d.u32(),
		Clusters:  d.u32(),
		LatencyUS: d.u32(),
	}
	return r, d.finish()
}

// EncodeTelemetry serializes t.
func EncodeTelemetry(t Telemetry) []byte {
	var e encoder
	e.u32(t.PoleID)
	e.time(t.Timestamp)
	e.f64(t.PoleTemp)
	e.f64(t.Ambient)
	return e.buf
}

// DecodeTelemetry parses a Telemetry body.
func DecodeTelemetry(b []byte) (Telemetry, error) {
	d := decoder{buf: b}
	t := Telemetry{
		PoleID:    d.u32(),
		Timestamp: d.time(),
		PoleTemp:  d.f64(),
		Ambient:   d.f64(),
	}
	return t, d.finish()
}

// EncodeAck serializes a.
func EncodeAck(a Ack) []byte {
	var e encoder
	e.u64(a.Seq)
	return e.buf
}

// DecodeAck parses an Ack body.
func DecodeAck(b []byte) (Ack, error) {
	d := decoder{buf: b}
	a := Ack{Seq: d.u64()}
	return a, d.finish()
}

// EncodeAlert serializes a.
func EncodeAlert(a Alert) []byte {
	var e encoder
	e.u32(a.PoleID)
	e.u8(a.Kind)
	e.str(a.Message)
	return e.buf
}

// DecodeAlert parses an Alert body.
func DecodeAlert(b []byte) (Alert, error) {
	d := decoder{buf: b}
	a := Alert{PoleID: d.u32(), Kind: d.u8(), Message: d.str()}
	return a, d.finish()
}

// Conn wraps a stream with buffered framed I/O. Not safe for concurrent
// writers; guard with a mutex if multiple goroutines send.
//
// Every Conn counts the framed bytes and messages it moves. The counters
// are detached obs instruments by default — readable through
// BytesSent/BytesReceived — and Instrument swaps in registry-backed ones
// so a process's connections aggregate onto its /metrics endpoint.
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer

	bytesOut, bytesIn *obs.Counter
	msgsOut, msgsIn   *obs.Counter
}

// NewConn wraps rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		r:        bufio.NewReader(rw),
		w:        bufio.NewWriter(rw),
		bytesOut: &obs.Counter{},
		bytesIn:  &obs.Counter{},
		msgsOut:  &obs.Counter{},
		msgsIn:   &obs.Counter{},
	}
}

// Instrument replaces the connection's traffic counters, typically with
// registry-backed ones shared across connections. Any nil argument keeps
// the existing counter. Call before the connection carries traffic;
// counts recorded on the previous counters are not migrated.
func (c *Conn) Instrument(bytesSent, bytesReceived, msgsSent, msgsReceived *obs.Counter) {
	if bytesSent != nil {
		c.bytesOut = bytesSent
	}
	if bytesReceived != nil {
		c.bytesIn = bytesReceived
	}
	if msgsSent != nil {
		c.msgsOut = msgsSent
	}
	if msgsReceived != nil {
		c.msgsIn = msgsReceived
	}
}

// BytesSent returns the framed bytes written so far (header + body).
func (c *Conn) BytesSent() uint64 { return c.bytesOut.Value() }

// BytesReceived returns the framed bytes read so far (header + body).
func (c *Conn) BytesReceived() uint64 { return c.bytesIn.Value() }

// frameBytes is the on-wire size of a frame with the given body: the
// 4-byte length prefix, 1-byte type tag, and the body itself.
func frameBytes(body []byte) uint64 { return uint64(5 + len(body)) }

// Send writes one frame and flushes.
func (c *Conn) Send(t MsgType, body []byte) error {
	if err := WriteFrame(c.w, t, body); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	c.bytesOut.Add(frameBytes(body))
	c.msgsOut.Inc()
	return nil
}

// Recv reads one frame.
func (c *Conn) Recv() (MsgType, []byte, error) {
	t, body, err := ReadFrame(c.r)
	if err == nil {
		c.bytesIn.Add(frameBytes(body))
		c.msgsIn.Inc()
	}
	return t, body, err
}
