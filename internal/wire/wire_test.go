package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"hawccc/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello world")
	if err := WriteFrame(&buf, MsgHello, body); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgHello || !bytes.Equal(got, body) {
		t.Errorf("round trip: type=%d body=%q", typ, got)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgAck || len(body) != 0 {
		t.Errorf("empty frame: type=%d len=%d", typ, len(body))
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, MsgHello, make([]byte, MaxFrameSize)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Truncated header → io.EOF-ish error.
	if _, _, err := ReadFrame(strings.NewReader("\x00\x00")); err == nil {
		t.Error("truncated header accepted")
	}
	// Zero size.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0, 1})); err == nil {
		t.Error("zero-size frame accepted")
	}
	// Huge declared size.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})); err == nil {
		t.Error("huge frame accepted")
	}
	// Truncated body.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 5, 1, 'a'})); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader(nil))
	if err != io.EOF {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

func TestHelloCodec(t *testing.T) {
	in := Hello{PoleID: 42, Location: "Palm Walk & University Dr", Zone: "north"}
	out, err := DecodeHello(EncodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
}

func TestCountReportCodec(t *testing.T) {
	ts := time.Date(2023, 7, 1, 12, 30, 0, 123456789, time.UTC)
	in := CountReport{
		PoleID: 7, Seq: 99, Timestamp: ts,
		Count: 14, Clusters: 20, LatencyUS: 17420,
	}
	out, err := DecodeCountReport(EncodeCountReport(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
}

func TestTelemetryCodec(t *testing.T) {
	ts := time.Date(2023, 6, 24, 16, 0, 0, 0, time.UTC)
	in := Telemetry{PoleID: 3, Timestamp: ts, PoleTemp: 57.81, Ambient: 46.2}
	out, err := DecodeTelemetry(EncodeTelemetry(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
}

func TestAckAlertCodecs(t *testing.T) {
	a, err := DecodeAck(EncodeAck(Ack{Seq: 123}))
	if err != nil || a.Seq != 123 {
		t.Errorf("ack round trip: %+v err=%v", a, err)
	}
	al, err := DecodeAlert(EncodeAlert(Alert{PoleID: 1, Kind: AlertCrowding, Message: "crowd"}))
	if err != nil || al.Kind != AlertCrowding || al.Message != "crowd" {
		t.Errorf("alert round trip: %+v err=%v", al, err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := EncodeCountReport(CountReport{PoleID: 1, Seq: 2})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeCountReport(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage rejected too.
	if _, err := DecodeAck(append(EncodeAck(Ack{Seq: 1}), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// String length beyond buffer.
	bad := EncodeHello(Hello{PoleID: 1, Location: "x"})
	bad[4] = 0xFF // corrupt the string length
	if _, err := DecodeHello(bad); err == nil {
		t.Error("corrupt string length accepted")
	}
}

func TestConnSendRecv(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(MsgTelemetry, EncodeTelemetry(Telemetry{PoleID: 9})); err != nil {
		t.Fatal(err)
	}
	typ, body, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgTelemetry {
		t.Errorf("type = %d", typ)
	}
	tm, err := DecodeTelemetry(body)
	if err != nil || tm.PoleID != 9 {
		t.Errorf("telemetry %+v err=%v", tm, err)
	}
}

func TestConnCountsBytesAndMessages(t *testing.T) {
	var buf bytes.Buffer
	sender := NewConn(&buf)
	body := EncodeHello(Hello{PoleID: 9, Location: "Palm Walk"})
	if err := sender.Send(MsgHello, body); err != nil {
		t.Fatal(err)
	}
	ack := EncodeAck(Ack{Seq: 3})
	if err := sender.Send(MsgAck, ack); err != nil {
		t.Fatal(err)
	}
	wantBytes := uint64(5+len(body)) + uint64(5+len(ack))
	if got := sender.BytesSent(); got != wantBytes {
		t.Errorf("BytesSent = %d, want %d", got, wantBytes)
	}
	if got := sender.BytesSent(); got != uint64(buf.Len()) {
		t.Errorf("BytesSent = %d but %d bytes actually on the wire", got, buf.Len())
	}

	receiver := NewConn(&buf)
	for i := 0; i < 2; i++ {
		if _, _, err := receiver.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if got := receiver.BytesReceived(); got != wantBytes {
		t.Errorf("BytesReceived = %d, want %d", got, wantBytes)
	}
	if sender.BytesReceived() != 0 || receiver.BytesSent() != 0 {
		t.Error("directions must be counted independently")
	}
}

func TestConnInstrumentSharesRegistryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	sent := reg.Counter("wire_bytes_sent_total", "")
	recvd := reg.Counter("wire_bytes_received_total", "")
	msgs := reg.Counter("wire_messages_sent_total", "")

	var buf bytes.Buffer
	a := NewConn(&buf)
	b := NewConn(&buf)
	a.Instrument(sent, recvd, msgs, nil)
	b.Instrument(sent, recvd, msgs, nil)

	body := EncodeAck(Ack{Seq: 1})
	if err := a.Send(MsgAck, body); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(MsgAck, body); err != nil {
		t.Fatal(err)
	}
	if got := sent.Value(); got != 2*uint64(5+len(body)) {
		t.Errorf("shared byte counter = %d, want %d", got, 2*(5+len(body)))
	}
	if msgs.Value() != 2 {
		t.Errorf("shared message counter = %d, want 2", msgs.Value())
	}
	// A failed receive must not count.
	if _, _, err := NewConn(&bytes.Buffer{}).Recv(); err == nil {
		t.Fatal("expected EOF")
	}
	if recvd.Value() != 0 {
		t.Errorf("received counter = %d before any successful Recv", recvd.Value())
	}
}
