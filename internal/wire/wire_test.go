package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello world")
	if err := WriteFrame(&buf, MsgHello, body); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgHello || !bytes.Equal(got, body) {
		t.Errorf("round trip: type=%d body=%q", typ, got)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgAck || len(body) != 0 {
		t.Errorf("empty frame: type=%d len=%d", typ, len(body))
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, MsgHello, make([]byte, MaxFrameSize)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Truncated header → io.EOF-ish error.
	if _, _, err := ReadFrame(strings.NewReader("\x00\x00")); err == nil {
		t.Error("truncated header accepted")
	}
	// Zero size.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0, 1})); err == nil {
		t.Error("zero-size frame accepted")
	}
	// Huge declared size.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})); err == nil {
		t.Error("huge frame accepted")
	}
	// Truncated body.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 5, 1, 'a'})); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader(nil))
	if err != io.EOF {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

func TestHelloCodec(t *testing.T) {
	in := Hello{PoleID: 42, Location: "Palm Walk & University Dr"}
	out, err := DecodeHello(EncodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
}

func TestCountReportCodec(t *testing.T) {
	ts := time.Date(2023, 7, 1, 12, 30, 0, 123456789, time.UTC)
	in := CountReport{
		PoleID: 7, Seq: 99, Timestamp: ts,
		Count: 14, Clusters: 20, LatencyUS: 17420,
	}
	out, err := DecodeCountReport(EncodeCountReport(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
}

func TestTelemetryCodec(t *testing.T) {
	ts := time.Date(2023, 6, 24, 16, 0, 0, 0, time.UTC)
	in := Telemetry{PoleID: 3, Timestamp: ts, PoleTemp: 57.81, Ambient: 46.2}
	out, err := DecodeTelemetry(EncodeTelemetry(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
}

func TestAckAlertCodecs(t *testing.T) {
	a, err := DecodeAck(EncodeAck(Ack{Seq: 123}))
	if err != nil || a.Seq != 123 {
		t.Errorf("ack round trip: %+v err=%v", a, err)
	}
	al, err := DecodeAlert(EncodeAlert(Alert{PoleID: 1, Kind: AlertCrowding, Message: "crowd"}))
	if err != nil || al.Kind != AlertCrowding || al.Message != "crowd" {
		t.Errorf("alert round trip: %+v err=%v", al, err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := EncodeCountReport(CountReport{PoleID: 1, Seq: 2})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeCountReport(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage rejected too.
	if _, err := DecodeAck(append(EncodeAck(Ack{Seq: 1}), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// String length beyond buffer.
	bad := EncodeHello(Hello{PoleID: 1, Location: "x"})
	bad[4] = 0xFF // corrupt the string length
	if _, err := DecodeHello(bad); err == nil {
		t.Error("corrupt string length accepted")
	}
}

func TestConnSendRecv(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(MsgTelemetry, EncodeTelemetry(Telemetry{PoleID: 9})); err != nil {
		t.Fatal(err)
	}
	typ, body, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgTelemetry {
		t.Errorf("type = %d", typ)
	}
	tm, err := DecodeTelemetry(body)
	if err != nil || tm.PoleID != 9 {
		t.Errorf("telemetry %+v err=%v", tm, err)
	}
}
