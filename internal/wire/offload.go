// Offload transport: when a pole sheds its classify stage to the
// backend it ships the frame's post-cluster sub-clouds in a compact
// quantized encoding and gets per-cluster labels back. Coordinates are
// quantized onto an int16 lattice in a pole-local frame — a per-batch
// origin (the component-wise minimum corner) and scale (metres per
// lattice step) — then each cluster stores, per axis, a zigzag-varint
// minimum and MSB-first bit-packed residuals at the smallest width that
// covers the cluster's extent. Humans span ~0.6 m in x/y and ~1.8 m in
// z, so at the default 2 mm scale residuals need 9–10 bits instead of
// the 96 bits/point of float64 structs or 96 bits of three float32
// coordinates' 12 bytes; see DESIGN.md for the layout and the
// round-trip tolerance contract (± Scale/2 per axis).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"hawccc/internal/geom"
)

// Offload message types.
const (
	// MsgClusterBatch carries one frame's quantized cluster clouds
	// (pole → backend).
	MsgClusterBatch MsgType = 6
	// MsgClassifyResult returns per-cluster labels for one batch
	// (backend → pole).
	MsgClassifyResult MsgType = 7
)

// DefaultQuantScale is the default lattice step in metres. 2 mm keeps
// the worst-case per-axis dequantization error at 1 mm — two orders of
// magnitude below LiDAR ranging noise — while spanning ±65 m around the
// batch origin, comfortably covering a pole's 10 m sensing radius.
const DefaultQuantScale = 0.002

// maxBatchPoints bounds the points a decoded batch may claim, so a
// corrupt or hostile frame cannot make the decoder allocate gigabytes
// (a zero bit width encodes any point count in zero residual bytes).
const maxBatchPoints = MaxFrameSize

// QuantCluster is one cluster's points on the batch's int16 lattice.
type QuantCluster struct {
	X, Y, Z []int16
}

// Len returns the cluster's point count.
func (c *QuantCluster) Len() int { return len(c.X) }

// ClusterBatch is one frame's kept clusters, quantized for transport.
// Seq is the pole-local frame sequence number; replies are keyed on
// (PoleID, Seq) and labels are positional by cluster index.
type ClusterBatch struct {
	PoleID uint32
	Seq    uint64
	// ModelVersion fingerprints the classifier the pole would have run
	// locally (models.HAWC.ModelVersion). The backend rejects batches
	// whose nonzero version differs from its own model so offloaded
	// labels never come from a different weight generation than the
	// edge path they must stay bit-equal with. Zero means unversioned.
	ModelVersion uint32
	Origin       geom.Point3 // lattice origin in the pole's sensor frame
	Scale        float64     // metres per lattice step, > 0
	Clusters     []QuantCluster
}

// Points returns the total point count across clusters.
func (b *ClusterBatch) Points() int {
	n := 0
	for i := range b.Clusters {
		n += b.Clusters[i].Len()
	}
	return n
}

// Float32Bytes returns the body size a plain float32 encoding of the
// same batch would need: the (PoleID, Seq) key, a cluster count, and
// per cluster a point count plus three float32 coordinates per point.
// Compression gates measure EncodeClusterBatch output against this.
func (b *ClusterBatch) Float32Bytes() int {
	n := 4 + 8 + 4
	for i := range b.Clusters {
		n += 4 + 12*b.Clusters[i].Len()
	}
	return n
}

// AppendCloud dequantizes cluster i onto dst and returns the extended
// slice. Recovered coordinates are Origin + Scale·q per axis.
func (b *ClusterBatch) AppendCloud(i int, dst geom.Cloud) geom.Cloud {
	c := &b.Clusters[i]
	if need := len(dst) + c.Len(); cap(dst) < need {
		grown := make(geom.Cloud, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for j := range c.X {
		dst = append(dst, geom.Point3{
			X: b.Origin.X + b.Scale*float64(c.X[j]),
			Y: b.Origin.Y + b.Scale*float64(c.Y[j]),
			Z: b.Origin.Z + b.Scale*float64(c.Z[j]),
		})
	}
	return dst
}

// AppendSoA dequantizes cluster i onto dst in structure-of-arrays
// layout, for consumers feeding the vectorized geometry kernels.
// float32 rounding here is ≤ ~6 µm at campus scale — far inside the
// Scale/2 tolerance bound, but NOT bit-identical to AppendCloud, so the
// backend's classify path must not use it (see classifyJobs and the
// label-equivalence contract in DESIGN.md).
func (b *ClusterBatch) AppendSoA(i int, dst *geom.CloudSoA) {
	c := &b.Clusters[i]
	dst.Grow(c.Len())
	for j := range c.X {
		dst.AppendXYZ(
			float32(b.Origin.X+b.Scale*float64(c.X[j])),
			float32(b.Origin.Y+b.Scale*float64(c.Y[j])),
			float32(b.Origin.Z+b.Scale*float64(c.Z[j])),
		)
	}
}

// ClassifyResult returns the backend's per-cluster labels for one
// ClusterBatch. Labels are positional: Labels[i] is true when cluster i
// of the batch with the same (PoleID, Seq) was classified human.
type ClassifyResult struct {
	PoleID uint32
	Seq    uint64
	Labels []bool
}

// quantize maps a coordinate onto the batch lattice, saturating at the
// int16 range. Inputs below origin or beyond origin + Scale·32767 clamp
// to the lattice edge rather than wrapping.
func quantize(v, origin, scale float64) int16 {
	q := math.Round((v - origin) / scale)
	if q >= math.MaxInt16 {
		return math.MaxInt16
	}
	if q <= math.MinInt16 {
		return math.MinInt16
	}
	return int16(q)
}

// BuildClusterBatch quantizes one frame's kept clusters for transport.
// The origin is the component-wise minimum corner across all points, so
// in-range clouds produce non-negative lattice coordinates; scale ≤ 0
// selects DefaultQuantScale. Coordinates farther than Scale·32767 from
// the origin saturate at the lattice edge (see quantize).
func BuildClusterBatch(poleID uint32, seq uint64, clusters []geom.Cloud, scale float64) ClusterBatch {
	var b ClusterBatch
	b.BuildInto(poleID, seq, clusters, scale)
	return b
}

// reuse16 returns a length-n int16 slice, recycling s's backing array
// when it is large enough.
func reuse16(s []int16, n int) []int16 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int16, n)
}

// BuildInto is BuildClusterBatch writing into an existing batch: the
// cluster list and per-axis lattice buffers are recycled when their
// capacity allows, so a caller quantizing every frame (the streaming
// pipeline's classification lattice) rebuilds its batch allocation-free
// at steady state. Semantics are identical to BuildClusterBatch.
func (b *ClusterBatch) BuildInto(poleID uint32, seq uint64, clusters []geom.Cloud, scale float64) {
	if scale <= 0 {
		scale = DefaultQuantScale
	}
	b.PoleID, b.Seq, b.Scale = poleID, seq, scale
	b.Origin = geom.Point3{}
	first := true
	for _, c := range clusters {
		for _, p := range c {
			if first {
				b.Origin = p
				first = false
				continue
			}
			b.Origin.X = math.Min(b.Origin.X, p.X)
			b.Origin.Y = math.Min(b.Origin.Y, p.Y)
			b.Origin.Z = math.Min(b.Origin.Z, p.Z)
		}
	}
	if cap(b.Clusters) >= len(clusters) {
		b.Clusters = b.Clusters[:len(clusters)]
	} else {
		grown := make([]QuantCluster, len(clusters))
		copy(grown, b.Clusters)
		b.Clusters = grown
	}
	for i, c := range clusters {
		q := &b.Clusters[i]
		q.X = reuse16(q.X, len(c))
		q.Y = reuse16(q.Y, len(c))
		q.Z = reuse16(q.Z, len(c))
		for j, p := range c {
			q.X[j] = quantize(p.X, b.Origin.X, scale)
			q.Y[j] = quantize(p.Y, b.Origin.Y, scale)
			q.Z[j] = quantize(p.Z, b.Origin.Z, scale)
		}
	}
}

// varint / bit-packing primitives for the quantized payload.

func (e *encoder) zigzag(v int64) {
	e.buf = binary.AppendUvarint(e.buf, uint64(v<<1)^uint64(v>>63))
}

func (d *decoder) zigzag() int64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return int64(u>>1) ^ -int64(u&1)
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.fail()
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) corrupt(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// encodeAxis writes one cluster axis: zigzag-varint minimum, residual
// bit width, then MSB-first bit-packed residuals. Width 0 means every
// value equals the minimum and carries no residual bytes.
func encodeAxis(e *encoder, vals []int16) {
	mn, mx := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	width := uint(bits.Len32(uint32(int32(mx) - int32(mn))))
	e.zigzag(int64(mn))
	e.u8(uint8(width))
	if width == 0 {
		return
	}
	var acc uint64
	var nbits uint
	for _, v := range vals {
		acc = acc<<width | uint64(uint32(int32(v)-int32(mn)))
		nbits += width
		for nbits >= 8 {
			nbits -= 8
			e.u8(byte(acc >> nbits))
		}
	}
	if nbits > 0 {
		e.u8(byte(acc << (8 - nbits)))
	}
}

// decodeAxis reads one axis of n residuals into dst, validating that
// the minimum and every reconstructed value stay on the int16 lattice.
func decodeAxis(d *decoder, dst []int16) {
	mn64 := d.zigzag()
	width := uint(d.u8())
	if d.err != nil {
		return
	}
	if mn64 < math.MinInt16 || mn64 > math.MaxInt16 {
		d.corrupt("axis minimum %d outside int16", mn64)
		return
	}
	if width > 16 {
		d.corrupt("residual width %d exceeds 16 bits", width)
		return
	}
	mn := int32(mn64)
	if width == 0 {
		for i := range dst {
			dst[i] = int16(mn)
		}
		return
	}
	raw := d.bytes((len(dst)*int(width) + 7) / 8)
	if d.err != nil {
		return
	}
	var acc uint64
	var nbits uint
	bi := 0
	mask := uint64(1)<<width - 1
	for i := range dst {
		for nbits < width {
			acc = acc<<8 | uint64(raw[bi])
			bi++
			nbits += 8
		}
		nbits -= width
		v := mn + int32(acc>>nbits&mask)
		if v > math.MaxInt16 {
			d.corrupt("residual lifts value %d off the int16 lattice", v)
			return
		}
		dst[i] = int16(v)
	}
}

// EncodeClusterBatch serializes b. The layout is: PoleID u32, Seq u64,
// ModelVersion u32, Origin 3×f64, Scale f64, cluster count u32, then
// per cluster a point count u32 followed by the three packed axes
// (x, y, z) — see encodeAxis. Empty clusters carry only their zero
// point count.
func EncodeClusterBatch(b ClusterBatch) []byte {
	var e encoder
	e.u32(b.PoleID)
	e.u64(b.Seq)
	e.u32(b.ModelVersion)
	e.f64(b.Origin.X)
	e.f64(b.Origin.Y)
	e.f64(b.Origin.Z)
	e.f64(b.Scale)
	e.u32(uint32(len(b.Clusters)))
	for i := range b.Clusters {
		c := &b.Clusters[i]
		e.u32(uint32(c.Len()))
		if c.Len() == 0 {
			continue
		}
		encodeAxis(&e, c.X)
		encodeAxis(&e, c.Y)
		encodeAxis(&e, c.Z)
	}
	return e.buf
}

// DecodeClusterBatch parses a ClusterBatch body. Decoding inverts
// EncodeClusterBatch exactly (bit-identical lattice coordinates; the
// lossy step is quantization at build time, not transport). Cluster
// and point counts are bounded before allocation so corrupt frames
// cannot exhaust memory, and every decoded coordinate is validated to
// lie on the int16 lattice.
func DecodeClusterBatch(buf []byte) (ClusterBatch, error) {
	d := decoder{buf: buf}
	b := ClusterBatch{PoleID: d.u32(), Seq: d.u64(), ModelVersion: d.u32()}
	b.Origin = geom.Point3{X: d.f64(), Y: d.f64(), Z: d.f64()}
	b.Scale = d.f64()
	if d.err == nil {
		if !(b.Scale > 0) || math.IsInf(b.Scale, 0) {
			d.corrupt("bad quant scale %v", b.Scale)
		} else if oob(b.Origin.X) || oob(b.Origin.Y) || oob(b.Origin.Z) {
			d.corrupt("non-finite batch origin")
		}
	}
	nClusters := d.u32()
	// A non-empty cluster occupies ≥ 4 bytes (its point count) plus six
	// axis header bytes; bounding on the 4 keeps empty clusters legal.
	if d.err == nil && int(nClusters) > len(d.buf)/4 {
		d.corrupt("cluster count %d exceeds frame", nClusters)
	}
	if d.err == nil {
		b.Clusters = make([]QuantCluster, nClusters)
	}
	total := 0
	for i := 0; d.err == nil && i < int(nClusters); i++ {
		n := d.u32()
		if d.err != nil {
			break
		}
		if total += int(n); total > maxBatchPoints {
			d.corrupt("batch exceeds %d points", maxBatchPoints)
			break
		}
		if n == 0 {
			continue
		}
		c := &b.Clusters[i]
		c.X = make([]int16, n)
		c.Y = make([]int16, n)
		c.Z = make([]int16, n)
		decodeAxis(&d, c.X)
		decodeAxis(&d, c.Y)
		decodeAxis(&d, c.Z)
	}
	return b, d.finish()
}

// oob reports whether a batch origin coordinate is unusable.
func oob(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// EncodeClassifyResult serializes r: PoleID u32, Seq u64, label count
// u32, then the labels as an MSB-first bitset.
func EncodeClassifyResult(r ClassifyResult) []byte {
	var e encoder
	e.u32(r.PoleID)
	e.u64(r.Seq)
	e.u32(uint32(len(r.Labels)))
	var acc byte
	var nbits uint
	for _, human := range r.Labels {
		acc <<= 1
		if human {
			acc |= 1
		}
		if nbits++; nbits == 8 {
			e.u8(acc)
			acc, nbits = 0, 0
		}
	}
	if nbits > 0 {
		e.u8(acc << (8 - nbits))
	}
	return e.buf
}

// DecodeClassifyResult parses a ClassifyResult body.
func DecodeClassifyResult(buf []byte) (ClassifyResult, error) {
	d := decoder{buf: buf}
	r := ClassifyResult{PoleID: d.u32(), Seq: d.u64()}
	n := d.u32()
	raw := d.bytes((int(n) + 7) / 8)
	if d.err == nil {
		r.Labels = make([]bool, n)
		for i := range r.Labels {
			r.Labels[i] = raw[i/8]>>(7-i%8)&1 == 1
		}
	}
	return r, d.finish()
}
