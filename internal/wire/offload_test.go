package wire

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hawccc/internal/geom"
)

// randClusters synthesizes human-scale clusters around a pole origin.
func randClusters(rng *rand.Rand, n int) []geom.Cloud {
	clusters := make([]geom.Cloud, n)
	for i := range clusters {
		cx := rng.Float64()*16 - 8
		cy := rng.Float64()*16 - 8
		pts := 5 + rng.Intn(200)
		c := make(geom.Cloud, pts)
		for j := range c {
			c[j] = geom.Point3{
				X: cx + rng.Float64()*0.6,
				Y: cy + rng.Float64()*0.6,
				Z: -2.5 + rng.Float64()*1.8,
			}
		}
		clusters[i] = c
	}
	return clusters
}

func TestClusterBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		clusters := randClusters(rng, rng.Intn(8))
		b := BuildClusterBatch(uint32(trial), uint64(trial)<<8, clusters, DefaultQuantScale)
		got, err := DecodeClusterBatch(EncodeClusterBatch(b))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !reflect.DeepEqual(normalize(b), normalize(got)) {
			t.Fatalf("trial %d: decoded batch differs from encoded", trial)
		}
	}
}

// normalize maps empty lattice slices to nil so DeepEqual compares
// decoded batches (nil slices for empty clusters) against built ones.
func normalize(b ClusterBatch) ClusterBatch {
	for i := range b.Clusters {
		c := &b.Clusters[i]
		if len(c.X) == 0 {
			c.X, c.Y, c.Z = nil, nil, nil
		}
	}
	if len(b.Clusters) == 0 {
		b.Clusters = nil
	}
	return b
}

// TestClusterBatchTolerance pins the quantization contract: every
// dequantized coordinate is within Scale/2 of the original.
func TestClusterBatchTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	clusters := randClusters(rng, 6)
	b := BuildClusterBatch(1, 1, clusters, DefaultQuantScale)
	got, err := DecodeClusterBatch(EncodeClusterBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	tol := b.Scale / 2
	for i, orig := range clusters {
		var back geom.Cloud
		back = got.AppendCloud(i, back)
		if len(back) != len(orig) {
			t.Fatalf("cluster %d: %d points, want %d", i, len(back), len(orig))
		}
		for j, p := range orig {
			q := back[j]
			if math.Abs(p.X-q.X) > tol || math.Abs(p.Y-q.Y) > tol || math.Abs(p.Z-q.Z) > tol {
				t.Fatalf("cluster %d point %d: %+v recovered as %+v, tolerance %g", i, j, p, q, tol)
			}
		}
	}
}

// TestClusterBatchSoAMatchesCloud pins that the SoA dequantization path
// the backend uses agrees with AppendCloud to float32 precision.
func TestClusterBatchSoAMatchesCloud(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := BuildClusterBatch(1, 1, randClusters(rng, 3), 0)
	if b.Scale != DefaultQuantScale {
		t.Fatalf("scale ≤ 0 should select DefaultQuantScale, got %g", b.Scale)
	}
	for i := range b.Clusters {
		var aos geom.Cloud
		aos = b.AppendCloud(i, aos)
		var soa geom.CloudSoA
		b.AppendSoA(i, &soa)
		if soa.Len() != len(aos) {
			t.Fatalf("cluster %d: SoA %d points, AoS %d", i, soa.Len(), len(aos))
		}
		for j, p := range aos {
			q := soa.At(j)
			if float32(p.X) != float32(q.X) || float32(p.Y) != float32(q.Y) || float32(p.Z) != float32(q.Z) {
				t.Fatalf("cluster %d point %d: SoA %+v vs AoS %+v", i, j, q, p)
			}
		}
	}
}

// TestClusterBatchSaturation pins int16 clamping: coordinates farther
// than Scale·32767 from the batch origin saturate at the lattice edge
// instead of wrapping around.
func TestClusterBatchSaturation(t *testing.T) {
	far := geom.Cloud{
		{X: 0, Y: 0, Z: 0},
		{X: 1000, Y: -0.5, Z: 0.5}, // 1 km from the min corner at 2 mm scale
	}
	b := BuildClusterBatch(1, 1, []geom.Cloud{far}, DefaultQuantScale)
	c := b.Clusters[0]
	if c.X[1] != math.MaxInt16 {
		t.Fatalf("far +x should saturate at %d, got %d", math.MaxInt16, c.X[1])
	}
	if c.X[0] != 0 || c.Y[1] != 0 || c.Z[0] != 0 {
		t.Fatalf("min-corner coordinates should quantize to 0: %+v", c)
	}
	got, err := DecodeClusterBatch(EncodeClusterBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(b), normalize(got)) {
		t.Fatal("saturated batch failed to round-trip")
	}
	// The negative edge as well: a batch built with an explicit origin
	// above some points. BuildClusterBatch always uses the min corner,
	// so exercise quantize directly.
	if q := quantize(-1000, 0, DefaultQuantScale); q != math.MinInt16 {
		t.Fatalf("far -x should saturate at %d, got %d", math.MinInt16, q)
	}
}

func TestClusterBatchEmpty(t *testing.T) {
	cases := map[string][]geom.Cloud{
		"no clusters":   nil,
		"empty cluster": {nil, {{X: 1, Y: 2, Z: 3}}, {}},
	}
	for name, clusters := range cases {
		b := BuildClusterBatch(9, 42, clusters, DefaultQuantScale)
		got, err := DecodeClusterBatch(EncodeClusterBatch(b))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Clusters) != len(clusters) || got.PoleID != 9 || got.Seq != 42 {
			t.Fatalf("%s: decoded %d clusters pole=%d seq=%d", name, len(got.Clusters), got.PoleID, got.Seq)
		}
		for i := range clusters {
			if got.Clusters[i].Len() != len(clusters[i]) {
				t.Fatalf("%s: cluster %d has %d points, want %d", name, i, got.Clusters[i].Len(), len(clusters[i]))
			}
		}
	}
}

// TestClusterBatchCompression pins the bytes/frame gate at codec level:
// human-scale clusters at the default scale must beat the float32
// baseline by ≥ 3×.
func TestClusterBatchCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	clusters := randClusters(rng, 8)
	b := BuildClusterBatch(1, 1, clusters, DefaultQuantScale)
	enc := EncodeClusterBatch(b)
	ratio := float64(b.Float32Bytes()) / float64(len(enc))
	if ratio < 3 {
		t.Fatalf("compression %.2fx vs float32 baseline, want ≥ 3x (%d vs %d bytes)", ratio, b.Float32Bytes(), len(enc))
	}
}

func TestClusterBatchDecodeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	b := BuildClusterBatch(1, 1, randClusters(rng, 2), DefaultQuantScale)
	enc := EncodeClusterBatch(b)
	if _, err := DecodeClusterBatch(enc[:len(enc)-1]); err == nil {
		t.Error("truncated batch should fail")
	}
	if _, err := DecodeClusterBatch(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	bad := BuildClusterBatch(1, 1, nil, DefaultQuantScale)
	bad.Scale = -1
	if _, err := DecodeClusterBatch(EncodeClusterBatch(bad)); err == nil {
		t.Error("non-positive scale should fail")
	}
	bad.Scale = math.NaN()
	if _, err := DecodeClusterBatch(EncodeClusterBatch(bad)); err == nil {
		t.Error("NaN scale should fail")
	}
	bad = BuildClusterBatch(1, 1, nil, DefaultQuantScale)
	bad.Origin.X = math.Inf(1)
	if _, err := DecodeClusterBatch(EncodeClusterBatch(bad)); err == nil {
		t.Error("non-finite origin should fail")
	}
	// A huge claimed cluster count must be rejected before allocation.
	var e encoder
	e.u32(1)
	e.u64(1)
	for i := 0; i < 4; i++ {
		e.f64(1)
	}
	e.u32(math.MaxUint32)
	if _, err := DecodeClusterBatch(e.buf); err == nil {
		t.Error("oversized cluster count should fail")
	}
	// And a huge claimed point count (zero-width axes make it free to
	// claim) must trip the batch point bound, not allocate gigabytes.
	e = encoder{}
	e.u32(1)
	e.u64(1)
	for i := 0; i < 4; i++ {
		e.f64(1)
	}
	e.u32(1)
	e.u32(maxBatchPoints + 1)
	if _, err := DecodeClusterBatch(e.buf); err == nil {
		t.Error("oversized point count should fail")
	}
}

func TestClassifyResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 200} {
		r := ClassifyResult{PoleID: 3, Seq: uint64(n), Labels: make([]bool, n)}
		for i := range r.Labels {
			r.Labels[i] = rng.Intn(2) == 1
		}
		got, err := DecodeClassifyResult(EncodeClassifyResult(r))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.PoleID != r.PoleID || got.Seq != r.Seq {
			t.Fatalf("n=%d: key %d/%d", n, got.PoleID, got.Seq)
		}
		gl := got.Labels
		if len(gl) == 0 {
			gl = nil
		}
		rl := r.Labels
		if len(rl) == 0 {
			rl = nil
		}
		if !reflect.DeepEqual(gl, rl) {
			t.Fatalf("n=%d: labels differ", n)
		}
	}
}

func TestClassifyResultDecodeErrors(t *testing.T) {
	r := ClassifyResult{PoleID: 1, Seq: 2, Labels: []bool{true, false, true}}
	enc := EncodeClassifyResult(r)
	if _, err := DecodeClassifyResult(enc[:len(enc)-1]); err == nil {
		t.Error("truncated result should fail")
	}
	if _, err := DecodeClassifyResult(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

// FuzzDecodeClusterBatch asserts the decoder never panics and that any
// accepted input re-decodes consistently after a canonical re-encode.
func FuzzDecodeClusterBatch(f *testing.F) {
	rng := rand.New(rand.NewSource(29))
	f.Add(EncodeClusterBatch(BuildClusterBatch(1, 2, randClusters(rng, 3), DefaultQuantScale)))
	f.Add(EncodeClusterBatch(BuildClusterBatch(0, 0, nil, DefaultQuantScale)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeClusterBatch(data)
		if err != nil {
			return
		}
		again, err := DecodeClusterBatch(EncodeClusterBatch(b))
		if err != nil {
			t.Fatalf("re-encode of accepted batch failed to decode: %v", err)
		}
		if !reflect.DeepEqual(normalize(b), normalize(again)) {
			t.Fatal("re-encoded batch decoded differently")
		}
	})
}

// FuzzDecodeClassifyResult asserts the result decoder never panics and
// round-trips whatever it accepts.
func FuzzDecodeClassifyResult(f *testing.F) {
	f.Add(EncodeClassifyResult(ClassifyResult{PoleID: 1, Seq: 2, Labels: []bool{true, false}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeClassifyResult(data)
		if err != nil {
			return
		}
		again, err := DecodeClassifyResult(EncodeClassifyResult(r))
		if err != nil {
			t.Fatalf("re-encode of accepted result failed to decode: %v", err)
		}
		if len(again.Labels) != len(r.Labels) {
			t.Fatal("label count changed across re-encode")
		}
	})
}
