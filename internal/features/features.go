// Package features extracts the hand-crafted slice features that the
// AutoEncoder-CC and OC-SVM-CC baselines classify (Section VII-A): each
// cluster is divided into 0.2 m vertical slices (approximating human head
// length, after Leigh et al.), and per-slice shape statistics plus global
// cluster statistics form a fixed-length vector.
package features

import (
	"math"

	"hawccc/internal/geom"
)

// SliceHeight is the vertical slice interval in meters.
const SliceHeight = 0.2

// NumSlices covers the z band from the ground filter threshold up to the
// tallest plausible pedestrian (−2.6 m … −0.6 m in sensor frame = 0…2 m
// above the walkway plus the 0.4 m noise margin).
const NumSlices = 10

// PerSlice is the number of features extracted per slice.
const PerSlice = 4

// NumGlobal is the number of whole-cluster features.
const NumGlobal = 6

// VectorLen is the total feature vector length.
const VectorLen = NumSlices*PerSlice + NumGlobal

// zBase is the bottom of slice 0 in sensor frame.
const zBase = -2.6

// Extract computes the feature vector for one cluster.
//
// Per slice (bottom-up): point count (normalized by cluster size), lateral
// width (y extent), depth (x extent), and boundary regularity — the
// standard deviation of point distance from the slice centroid in the xy
// plane (low for circular cross-sections like torsos and trash cans,
// higher for irregular bushes).
//
// Global: cluster height, point count (log-scaled), xy aspect ratio,
// height/width ratio, centroid height above ground, and circularity of
// the whole footprint.
func Extract(cloud geom.Cloud) []float64 {
	v := make([]float64, VectorLen)
	if len(cloud) == 0 {
		return v
	}

	slices := make([]geom.Cloud, NumSlices)
	for _, p := range cloud {
		idx := int((p.Z - zBase) / SliceHeight)
		if idx < 0 {
			idx = 0
		}
		if idx >= NumSlices {
			idx = NumSlices - 1
		}
		slices[idx] = append(slices[idx], p)
	}

	n := float64(len(cloud))
	for i, s := range slices {
		base := i * PerSlice
		if len(s) == 0 {
			continue
		}
		b := s.Bounds()
		v[base+0] = float64(len(s)) / n
		v[base+1] = b.Size().Y
		v[base+2] = b.Size().X
		v[base+3] = boundaryRegularity(s)
	}

	gb := NumSlices * PerSlice
	bounds := cloud.Bounds()
	size := bounds.Size()
	height := size.Z
	width := math.Max(size.X, size.Y)
	v[gb+0] = height
	v[gb+1] = math.Log1p(n)
	if size.Y > 1e-9 {
		v[gb+2] = size.X / size.Y
	}
	if width > 1e-9 {
		v[gb+3] = height / width
	}
	v[gb+4] = cloud.Centroid().Z - zBase
	v[gb+5] = circularity(cloud)
	return v
}

// boundaryRegularity is the std-dev of xy distance from the slice
// centroid: near zero for thin/round cross sections, larger for sprawling
// irregular ones.
func boundaryRegularity(s geom.Cloud) float64 {
	c := s.Centroid()
	var mean float64
	dists := make([]float64, len(s))
	for i, p := range s {
		dx, dy := p.X-c.X, p.Y-c.Y
		dists[i] = math.Sqrt(dx*dx + dy*dy)
		mean += dists[i]
	}
	mean /= float64(len(s))
	var v float64
	for _, d := range dists {
		v += (d - mean) * (d - mean)
	}
	return math.Sqrt(v / float64(len(s)))
}

// circularity is the ratio of the smaller to larger eigenvalue of the xy
// covariance matrix: 1 for a circular footprint, → 0 for elongated ones.
func circularity(cloud geom.Cloud) float64 {
	c := cloud.Centroid()
	var sxx, syy, sxy float64
	for _, p := range cloud {
		dx, dy := p.X-c.X, p.Y-c.Y
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	n := float64(len(cloud))
	sxx, syy, sxy = sxx/n, syy/n, sxy/n
	// Eigenvalues of [[sxx, sxy], [sxy, syy]].
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	disc := tr*tr/4 - det
	if disc < 0 {
		disc = 0
	}
	sq := math.Sqrt(disc)
	l1, l2 := tr/2+sq, tr/2-sq
	if l1 < 1e-12 {
		return 1
	}
	if l2 < 0 {
		l2 = 0
	}
	return l2 / l1
}

// Normalizer rescales feature vectors to zero mean and unit variance using
// statistics fit on a training set — required by OC-SVM's RBF kernel and
// helpful for the AutoEncoder.
type Normalizer struct {
	Mean, Std []float64
}

// FitNormalizer computes per-dimension statistics over vectors.
func FitNormalizer(vectors [][]float64) *Normalizer {
	if len(vectors) == 0 {
		return &Normalizer{Mean: make([]float64, VectorLen), Std: ones(VectorLen)}
	}
	dim := len(vectors[0])
	mean := make([]float64, dim)
	for _, v := range vectors {
		for i, x := range v {
			mean[i] += x
		}
	}
	for i := range mean {
		mean[i] /= float64(len(vectors))
	}
	std := make([]float64, dim)
	for _, v := range vectors {
		for i, x := range v {
			d := x - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(vectors)))
		if std[i] < 1e-9 {
			std[i] = 1
		}
	}
	return &Normalizer{Mean: mean, Std: std}
}

// Apply returns the normalized copy of v.
func (n *Normalizer) Apply(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = (x - n.Mean[i]) / n.Std[i]
	}
	return out
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
