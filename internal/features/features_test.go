package features

import (
	"math"
	"math/rand"
	"testing"

	"hawccc/internal/geom"
)

// personCloud mimics a pedestrian: narrow vertical distribution 0…1.7 m
// above ground (sensor z from −3 to −1.3).
func personCloud(rng *rand.Rand, n int) geom.Cloud {
	c := make(geom.Cloud, n)
	for i := range c {
		c[i] = geom.P(
			20+rng.NormFloat64()*0.12,
			rng.NormFloat64()*0.15,
			-2.6+rng.Float64()*1.3,
		)
	}
	return c
}

// bushCloud mimics a low, wide bush.
func bushCloud(rng *rand.Rand, n int) geom.Cloud {
	c := make(geom.Cloud, n)
	for i := range c {
		c[i] = geom.P(
			20+rng.NormFloat64()*0.5,
			rng.NormFloat64()*0.5,
			-2.6+rng.Float64()*0.4,
		)
	}
	return c
}

func TestExtractLength(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := Extract(personCloud(rng, 60))
	if len(v) != VectorLen {
		t.Fatalf("vector length = %d, want %d", len(v), VectorLen)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("feature %d is %v", i, x)
		}
	}
}

func TestExtractEmpty(t *testing.T) {
	v := Extract(nil)
	if len(v) != VectorLen {
		t.Fatalf("length %d", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("empty cloud feature %d = %v, want 0", i, x)
		}
	}
}

func TestHeightFeatureSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	person := Extract(personCloud(rng, 80))
	bush := Extract(bushCloud(rng, 80))
	hIdx := NumSlices * PerSlice // global height feature
	if person[hIdx] <= bush[hIdx] {
		t.Errorf("person height %v should exceed bush height %v", person[hIdx], bush[hIdx])
	}
	// Person occupies upper slices the bush never reaches.
	upperSlice := 5 * PerSlice // slice covering 1.0–1.2 m above ground
	if person[upperSlice] == 0 {
		t.Error("person should have points in upper slices")
	}
	if bush[upperSlice] != 0 {
		t.Error("low bush should not reach slice 5")
	}
}

func TestSliceCountsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := Extract(personCloud(rng, 100))
	var sum float64
	for i := 0; i < NumSlices; i++ {
		sum += v[i*PerSlice]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("slice counts sum to %v, want 1", sum)
	}
}

func TestSliceClamping(t *testing.T) {
	// Points below zBase and above the top slice must clamp, not drop.
	c := geom.Cloud{geom.P(0, 0, -3.5), geom.P(0, 0, 0.5)}
	v := Extract(c)
	if v[0] != 0.5 { // slice 0 gets the low point
		t.Errorf("slice 0 count = %v, want 0.5", v[0])
	}
	if v[(NumSlices-1)*PerSlice] != 0.5 {
		t.Errorf("top slice count = %v, want 0.5", v[(NumSlices-1)*PerSlice])
	}
}

func TestCircularity(t *testing.T) {
	// Circular footprint → circularity near 1.
	var circle geom.Cloud
	for i := 0; i < 64; i++ {
		a := float64(i) / 64 * 2 * math.Pi
		circle = append(circle, geom.P(math.Cos(a), math.Sin(a), -1))
	}
	if got := circularity(circle); got < 0.95 {
		t.Errorf("circle circularity = %v, want ≈1", got)
	}
	// A line → circularity near 0.
	var line geom.Cloud
	for i := 0; i < 20; i++ {
		line = append(line, geom.P(float64(i), 0, -1))
	}
	if got := circularity(line); got > 0.05 {
		t.Errorf("line circularity = %v, want ≈0", got)
	}
}

func TestBoundaryRegularity(t *testing.T) {
	// Equidistant ring: regularity 0. Mixed radii: > 0.
	var ring geom.Cloud
	for i := 0; i < 16; i++ {
		a := float64(i) / 16 * 2 * math.Pi
		ring = append(ring, geom.P(math.Cos(a), math.Sin(a), 0))
	}
	if got := boundaryRegularity(ring); got > 1e-9 {
		t.Errorf("ring regularity = %v, want 0", got)
	}
	mixed := append(ring.Clone(), geom.P(5, 0, 0))
	if got := boundaryRegularity(mixed); got <= 0 {
		t.Errorf("irregular shape regularity = %v, want > 0", got)
	}
}

func TestNormalizer(t *testing.T) {
	vectors := [][]float64{
		{1, 10, 0},
		{3, 20, 0},
		{5, 30, 0},
	}
	n := FitNormalizer(vectors)
	out := n.Apply([]float64{3, 20, 0})
	for i, x := range out {
		if math.Abs(x) > 1e-9 {
			t.Errorf("mean vector dim %d normalized to %v, want 0", i, x)
		}
	}
	// Constant dimensions get unit std (no division blow-up).
	out2 := n.Apply([]float64{1, 10, 100})
	if math.IsInf(out2[2], 0) || math.IsNaN(out2[2]) {
		t.Error("constant dimension produced non-finite value")
	}
	// Empty fit yields identity-ish normalizer.
	e := FitNormalizer(nil)
	v := e.Apply(make([]float64, VectorLen))
	if len(v) != VectorLen {
		t.Error("empty normalizer wrong length")
	}
}
