// Package track associates per-frame human detections into trajectories —
// the pedestrian-behavior analytics (popular routes, walking speeds, flow
// direction) that the paper's introduction motivates as the point of
// campus-wide crowd counting. It is an extension on top of the counting
// pipeline: each processed frame yields human cluster centroids, and a
// greedy nearest-neighbor association with a gating distance links them
// over time.
package track

import (
	"math"
	"sort"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/geom"
)

// Config parameterizes the tracker.
type Config struct {
	// MaxAssociationDist is the gating distance (meters): a detection
	// farther than this from every live track starts a new track. At
	// typical walking speed (1.4 m/s) and 10 Hz frames, 0.5 m is ample.
	MaxAssociationDist float64
	// MaxMisses is how many consecutive frames a track may go undetected
	// before it is closed (occlusion tolerance).
	MaxMisses int
	// FrameInterval converts frame indices to time for speed estimates.
	FrameInterval time.Duration
}

// DefaultConfig returns a configuration for 10 Hz pole frames.
func DefaultConfig() Config {
	return Config{
		MaxAssociationDist: 0.7,
		MaxMisses:          3,
		FrameInterval:      100 * time.Millisecond,
	}
}

// Track is one pedestrian's trajectory.
type Track struct {
	ID int
	// Positions are the ground-plane centroids, one per observed frame.
	Positions []geom.Point3
	// Frames are the frame indices of each position.
	Frames []int
	// misses counts consecutive unobserved frames (live tracks only).
	misses int
}

// Length returns the path length in meters.
func (t *Track) Length() float64 {
	var d float64
	for i := 1; i < len(t.Positions); i++ {
		d += t.Positions[i].Dist(t.Positions[i-1])
	}
	return d
}

// Duration returns the observed time span given the frame interval.
func (t *Track) Duration(frameInterval time.Duration) time.Duration {
	if len(t.Frames) < 2 {
		return 0
	}
	return time.Duration(t.Frames[len(t.Frames)-1]-t.Frames[0]) * frameInterval
}

// MeanSpeed returns the average speed in m/s (0 for single-observation
// tracks).
func (t *Track) MeanSpeed(frameInterval time.Duration) float64 {
	d := t.Duration(frameInterval)
	if d <= 0 {
		return 0
	}
	return t.Length() / d.Seconds()
}

// Displacement returns the net movement vector from first to last
// observation.
func (t *Track) Displacement() geom.Point3 {
	if len(t.Positions) < 2 {
		return geom.Point3{}
	}
	return t.Positions[len(t.Positions)-1].Sub(t.Positions[0])
}

// Tracker accumulates detections frame by frame.
type Tracker struct {
	cfg    Config
	nextID int
	frame  int
	live   []*Track
	closed []*Track
}

// NewTracker builds a tracker.
func NewTracker(cfg Config) *Tracker {
	if cfg.MaxAssociationDist <= 0 {
		cfg = DefaultConfig()
	}
	return &Tracker{cfg: cfg}
}

// Observe ingests the human-cluster centroids of the next frame and
// associates them with live tracks (greedy nearest-pair within the gate).
func (t *Tracker) Observe(centroids []geom.Point3) {
	type pair struct {
		track, det int
		dist       float64
	}
	var pairs []pair
	for ti, tr := range t.live {
		last := tr.Positions[len(tr.Positions)-1]
		for di, c := range centroids {
			// Ground-plane distance: height differences are sensor noise.
			dx, dy := c.X-last.X, c.Y-last.Y
			d := math.Sqrt(dx*dx + dy*dy)
			if d <= t.cfg.MaxAssociationDist {
				pairs = append(pairs, pair{ti, di, d})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].dist < pairs[j].dist })

	usedTrack := make(map[int]bool)
	usedDet := make(map[int]bool)
	for _, p := range pairs {
		if usedTrack[p.track] || usedDet[p.det] {
			continue
		}
		usedTrack[p.track] = true
		usedDet[p.det] = true
		tr := t.live[p.track]
		tr.Positions = append(tr.Positions, centroids[p.det])
		tr.Frames = append(tr.Frames, t.frame)
		tr.misses = 0
	}

	// Unmatched detections start new tracks.
	for di, c := range centroids {
		if usedDet[di] {
			continue
		}
		t.nextID++
		t.live = append(t.live, &Track{
			ID:        t.nextID,
			Positions: []geom.Point3{c},
			Frames:    []int{t.frame},
		})
	}

	// Unmatched tracks age; stale ones close.
	var stillLive []*Track
	for ti, tr := range t.live {
		if !usedTrack[ti] && len(tr.Frames) > 0 && tr.Frames[len(tr.Frames)-1] != t.frame {
			tr.misses++
		}
		if tr.misses > t.cfg.MaxMisses {
			t.closed = append(t.closed, tr)
		} else {
			stillLive = append(stillLive, tr)
		}
	}
	t.live = stillLive
	t.frame++
}

// ObserveFrame runs the counting pipeline on a raw frame and feeds the
// human clusters' centroids to the tracker, returning the frame's count.
func (t *Tracker) ObserveFrame(p *counting.Pipeline, frame geom.Cloud) int {
	centroids := HumanCentroids(p, frame)
	t.Observe(centroids)
	return len(centroids)
}

// HumanCentroids runs the pipeline's ingest/cluster/classify stages and
// returns the centroids of clusters classified human.
func HumanCentroids(p *counting.Pipeline, frame geom.Cloud) []geom.Point3 {
	ingested := ingest(p, frame)
	cr := p.Clusterer.Cluster(ingested)
	var out []geom.Point3
	for _, c := range cr.Clusters(ingested) {
		if len(c) < p.MinClusterPoints {
			continue
		}
		if p.Classifier.PredictHuman(c) {
			out = append(out, c.Centroid())
		}
	}
	return out
}

func ingest(p *counting.Pipeline, frame geom.Cloud) geom.Cloud {
	return p.ROI.Crop(frame).Filter(func(q geom.Point3) bool { return q.Z >= -2.6 })
}

// Live returns the currently open tracks.
func (t *Tracker) Live() []*Track { return append([]*Track(nil), t.live...) }

// Closed returns the finished tracks.
func (t *Tracker) Closed() []*Track { return append([]*Track(nil), t.closed...) }

// All returns every track, live and closed.
func (t *Tracker) All() []*Track {
	out := append([]*Track(nil), t.closed...)
	return append(out, t.live...)
}

// FlowStats summarizes pedestrian behavior over the tracked period.
type FlowStats struct {
	// Tracks is the number of distinct pedestrians observed.
	Tracks int
	// MeanSpeed is the average walking speed over multi-observation
	// tracks (m/s).
	MeanSpeed float64
	// Inbound/Outbound count tracks by net x-direction (toward/away from
	// the pole).
	Inbound, Outbound int
}

// Flow computes summary statistics over all tracks.
func (t *Tracker) Flow() FlowStats {
	var s FlowStats
	var speedSum float64
	var speedN int
	for _, tr := range t.All() {
		s.Tracks++
		if sp := tr.MeanSpeed(t.cfg.FrameInterval); sp > 0 {
			speedSum += sp
			speedN++
		}
		d := tr.Displacement()
		switch {
		case d.X < -0.2:
			s.Inbound++
		case d.X > 0.2:
			s.Outbound++
		}
	}
	if speedN > 0 {
		s.MeanSpeed = speedSum / float64(speedN)
	}
	return s
}
