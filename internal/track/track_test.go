package track

import (
	"math"
	"testing"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/geom"
	"hawccc/internal/models"
)

func TestSingleWalkerTracked(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	// One pedestrian walking 0.14 m per frame (1.4 m/s at 10 Hz).
	for f := 0; f < 20; f++ {
		tr.Observe([]geom.Point3{geom.P(20+0.14*float64(f), 0, -2)})
	}
	all := tr.All()
	if len(all) != 1 {
		t.Fatalf("got %d tracks, want 1", len(all))
	}
	tk := all[0]
	if len(tk.Positions) != 20 {
		t.Errorf("track has %d observations", len(tk.Positions))
	}
	speed := tk.MeanSpeed(100 * time.Millisecond)
	if math.Abs(speed-1.4) > 0.05 {
		t.Errorf("speed = %.3f m/s, want 1.4", speed)
	}
	if d := tk.Displacement(); d.X <= 0 {
		t.Errorf("displacement %v should be outbound", d)
	}
}

func TestTwoWalkersStaySeparate(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	for f := 0; f < 15; f++ {
		x := 0.14 * float64(f)
		tr.Observe([]geom.Point3{
			geom.P(15+x, -1, -2), // outbound
			geom.P(30-x, 1, -2),  // inbound
		})
	}
	all := tr.All()
	if len(all) != 2 {
		t.Fatalf("got %d tracks, want 2", len(all))
	}
	flow := tr.Flow()
	if flow.Tracks != 2 || flow.Inbound != 1 || flow.Outbound != 1 {
		t.Errorf("flow = %+v", flow)
	}
	if flow.MeanSpeed < 1.2 || flow.MeanSpeed > 1.6 {
		t.Errorf("mean speed %.2f", flow.MeanSpeed)
	}
}

func TestOcclusionTolerance(t *testing.T) {
	cfg := DefaultConfig()
	tr := NewTracker(cfg)
	pos := func(f int) geom.Point3 { return geom.P(20+0.1*float64(f), 0, -2) }
	for f := 0; f < 5; f++ {
		tr.Observe([]geom.Point3{pos(f)})
	}
	// Two missed frames (within MaxMisses), then reappears close enough
	// to re-associate (gating distance covers the gap).
	tr.Observe(nil)
	tr.Observe(nil)
	for f := 7; f < 10; f++ {
		tr.Observe([]geom.Point3{pos(f)})
	}
	if got := len(tr.All()); got != 1 {
		t.Errorf("occluded walker split into %d tracks", got)
	}
}

func TestTrackClosesAfterMisses(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	tr.Observe([]geom.Point3{geom.P(20, 0, -2)})
	for f := 0; f < 6; f++ {
		tr.Observe(nil)
	}
	if len(tr.Live()) != 0 {
		t.Error("stale track still live")
	}
	if len(tr.Closed()) != 1 {
		t.Errorf("closed = %d", len(tr.Closed()))
	}
}

func TestNewWalkerFarAwayStartsNewTrack(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	tr.Observe([]geom.Point3{geom.P(15, 0, -2)})
	tr.Observe([]geom.Point3{geom.P(15.1, 0, -2), geom.P(30, 2, -2)})
	if got := len(tr.All()); got != 2 {
		t.Errorf("got %d tracks, want 2", got)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	tr := NewTracker(Config{})
	tr.Observe([]geom.Point3{geom.P(20, 0, -2)})
	if len(tr.Live()) != 1 {
		t.Error("zero config should fall back to defaults")
	}
}

// tallStub approximates HAWC for pipeline integration without training.
type tallStub struct{}

var _ models.Classifier = tallStub{}

func (tallStub) Name() string { return "TallStub" }
func (tallStub) PredictHuman(c geom.Cloud) bool {
	e := c.MaxZ() - c.MinZ()
	return e > 1.1 && e < 2.3
}

func TestHumanCentroidsFromPipeline(t *testing.T) {
	p := counting.New(tallStub{})
	// A synthetic person-like column of points at x=20.
	var frame geom.Cloud
	for i := 0; i < 60; i++ {
		frame = append(frame, geom.P(20+0.01*float64(i%5), 0.01*float64(i%7), -2.6+float64(i)*0.025))
	}
	cents := HumanCentroids(p, frame)
	if len(cents) != 1 {
		t.Fatalf("got %d centroids", len(cents))
	}
	if math.Abs(cents[0].X-20) > 0.2 {
		t.Errorf("centroid at %v", cents[0])
	}
	tr := NewTracker(DefaultConfig())
	if got := tr.ObserveFrame(p, frame); got != 1 {
		t.Errorf("ObserveFrame = %d", got)
	}
}
