package fleet

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"hawccc/internal/backend"
)

func TestZoneName(t *testing.T) {
	if got := ZoneName(5, 4); got != "zone-1" {
		t.Errorf("ZoneName(5, 4) = %q", got)
	}
	if got := ZoneName(8, 4); got != "zone-0" {
		t.Errorf("ZoneName(8, 4) = %q", got)
	}
	// Zero falls back to the default zone count instead of dividing by it.
	if got := ZoneName(3, 0); got != ZoneName(3, DefaultZones) {
		t.Errorf("ZoneName(3, 0) = %q", got)
	}
}

func TestPercentiles(t *testing.T) {
	if got := Percentiles(nil); got != (LatencyStats{}) {
		t.Errorf("empty samples: %+v", got)
	}
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1) // 1..100ms
	}
	rand.New(rand.NewSource(1)).Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
	got := Percentiles(samples)
	if got.P50Ms != 50 || got.P95Ms != 95 || got.P99Ms != 99 || got.MaxMs != 100 {
		t.Errorf("percentiles over 1..100: %+v", got)
	}
}

func TestSyntheticCountNonNegativeAndVaried(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[uint32]bool{}
	for round := 0; round < 32; round++ {
		c := syntheticCount(42, round, rng)
		seen[c] = true
	}
	if len(seen) < 3 {
		t.Errorf("synthetic counts degenerate: only %d distinct values over 32 rounds", len(seen))
	}
}

// TestReportDeliversEveryReport runs a small multiplexed fleet against a
// real backend and checks conservation end to end: every report sent is
// acked with a measured RTT and lands exactly once in the campus totals.
func TestReportDeliversEveryReport(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0", SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		poles          = 50
		reportsPerPole = 20
		conns          = 8
	)
	res, err := Report(context.Background(), ReportConfig{
		Addr:           srv.Addr(),
		Poles:          poles,
		ReportsPerPole: reportsPerPole,
		Conns:          conns,
		Zones:          3,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conns != conns {
		t.Errorf("ran over %d conns, want %d", res.Conns, conns)
	}
	if res.Reports != poles*reportsPerPole {
		t.Errorf("measured %d reports, want %d", res.Reports, poles*reportsPerPole)
	}
	if res.AckRTT.P50Ms <= 0 || res.AckRTT.MaxMs < res.AckRTT.P99Ms {
		t.Errorf("implausible RTT stats: %+v", res.AckRTT)
	}

	snap := srv.RebuildSnapshot()
	if snap.Campus.Poles != poles {
		t.Errorf("backend saw %d poles, want %d", snap.Campus.Poles, poles)
	}
	if want := int64(poles * reportsPerPole); snap.Campus.Reports != want {
		t.Errorf("backend aggregated %d reports, want %d", snap.Campus.Reports, want)
	}
	if snap.Campus.Zones != 3 {
		t.Errorf("backend saw %d zones, want 3", snap.Campus.Zones)
	}
}

// TestReportHonorsCancel cancels mid-run: Report must return promptly
// with the context error instead of hanging on window slots or reads.
func TestReportHonorsCancel(t *testing.T) {
	srv, err := backend.Listen(backend.Config{Addr: "127.0.0.1:0", SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		// A run large enough that it cannot finish before the deadline
		// check below without the cancel being honored.
		_, err := Report(ctx, ReportConfig{
			Addr: srv.Addr(), Poles: 1000, ReportsPerPole: 1000,
			Interval: time.Second, Seed: 1,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("canceled run returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Report did not return after cancel")
	}
}

// TestQueryAgainstLiveBackend seeds a fleet, then runs query load for a
// bounded window: all requests must succeed (the generator only asks for
// poles and zones the report phase created).
func TestQueryAgainstLiveBackend(t *testing.T) {
	srv, err := backend.Listen(backend.Config{
		Addr: "127.0.0.1:0", APIAddr: "127.0.0.1:0", SnapshotInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const poles = 20
	if _, err := Report(context.Background(), ReportConfig{
		Addr: srv.Addr(), Poles: poles, ReportsPerPole: 2, Zones: 2, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	srv.RebuildSnapshot()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res := Query(ctx, QueryConfig{
		BaseURL: "http://" + srv.APIAddr(),
		Workers: 2,
		Poles:   poles,
		Zones:   2,
		Seed:    1,
	})
	if res.Queries == 0 {
		t.Fatal("query run measured zero requests")
	}
	if res.Errors != 0 || res.NonOK != 0 {
		t.Errorf("query run against fully seeded campus: %d transport errors, %d non-200s", res.Errors, res.NonOK)
	}
	if res.QPS <= 0 || res.Latency.P50Ms <= 0 {
		t.Errorf("implausible query stats: %+v", res)
	}
}
