// Package fleet is the fleet-scale load generator behind polesim's
// synthetic mode and the hawcbench fleet experiment: it drives the
// campus backend with report streams from thousands of simulated poles
// and with dashboard-style query traffic against the HTTP query API —
// without running the LiDAR pipeline, so a single process can stand in
// for a 10k-pole campus.
//
// Simulated poles are multiplexed over a bounded number of TCP
// connections (the wire protocol carries the pole ID in every message,
// so a connection is a pipe, not an identity — the same aggregation
// gateways would do in a real deployment). Each connection pipelines
// reports under a bounded in-flight window and measures the send→ack
// round trip of every report, which is the backend's ingest latency as
// a pole observes it.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hawccc/internal/wire"
)

// Defaults for the zero values of ReportConfig.
const (
	DefaultConns  = 64
	DefaultWindow = 32
	DefaultZones  = 4
)

// ReportConfig parameterizes a synthetic report run.
type ReportConfig struct {
	// Addr is the backend's TCP address.
	Addr string
	// Poles is the simulated fleet size.
	Poles int
	// ReportsPerPole is how many count reports each pole sends.
	ReportsPerPole int
	// Conns bounds the TCP connections the fleet is multiplexed over
	// (0 selects min(Poles, DefaultConns)).
	Conns int
	// Window bounds the unacked reports in flight per connection
	// (0 selects DefaultWindow).
	Window int
	// Interval paces each connection between report rounds (0 = as fast
	// as possible).
	Interval time.Duration
	// Stagger is the maximum random initial phase offset per connection,
	// so a fleet does not fire in lockstep (0 = none).
	Stagger time.Duration
	// Zones is how many campus zones pole IDs are assigned to
	// round-robin, named zone-0 … zone-N-1 (0 selects DefaultZones).
	Zones int
	// Seed drives the synthetic count streams.
	Seed int64
}

// LatencyStats summarizes a latency sample set in milliseconds.
type LatencyStats struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// ReportResult is what a report run measured.
type ReportResult struct {
	Poles         int           `json:"poles"`
	Conns         int           `json:"conns"`
	Reports       int           `json:"reports"`
	Elapsed       time.Duration `json:"-"`
	ElapsedMS     float64       `json:"elapsed_ms"`
	ReportsPerSec float64       `json:"reports_per_sec"`
	// AckRTT is the send→ack round trip per report: the ingest latency
	// the backend imposes, including any shard contention.
	AckRTT LatencyStats `json:"ack_rtt"`
	// Alerts counts backend alerts delivered during the run.
	Alerts int `json:"alerts"`
}

// ZoneName returns the zone a pole ID is assigned to by this generator.
func ZoneName(poleID uint32, zones int) string {
	if zones <= 0 {
		zones = DefaultZones
	}
	return fmt.Sprintf("zone-%d", int(poleID)%zones)
}

// syntheticCount is the per-report crowd count: a per-pole sinusoid (a
// walkway's ebb and flow, phase-shifted per pole) plus seeded noise.
func syntheticCount(poleID uint32, round int, rng *rand.Rand) uint32 {
	base := 2 + float64(poleID%7)
	phase := float64(poleID%16) / 16 * 2 * math.Pi
	wave := 3 * math.Sin(2*math.Pi*float64(round)/16+phase)
	c := base + wave + float64(rng.Intn(3))
	if c < 0 {
		c = 0
	}
	return uint32(c)
}

// Report drives cfg.Poles simulated poles against the backend and
// returns the measured throughput and ingest latency. It returns early
// with ctx's error if the context is canceled.
func Report(ctx context.Context, cfg ReportConfig) (ReportResult, error) {
	if cfg.Poles <= 0 || cfg.ReportsPerPole <= 0 {
		return ReportResult{}, errors.New("fleet: Poles and ReportsPerPole must be positive")
	}
	conns := cfg.Conns
	if conns <= 0 {
		conns = DefaultConns
	}
	if conns > cfg.Poles {
		conns = cfg.Poles
	}
	window := cfg.Window
	if window <= 0 {
		window = DefaultWindow
	}

	res := ReportResult{Poles: cfg.Poles, Conns: conns}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		alerts   atomic.Int64
		sampleMu sync.Mutex
		samples  []float64
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	start := time.Now()
	for c := 0; c < conns; c++ {
		// Pole p reports over connection p % conns.
		var poles []uint32
		for p := c; p < cfg.Poles; p += conns {
			poles = append(poles, uint32(p+1))
		}
		wg.Add(1)
		go func(connIdx int, poles []uint32) {
			defer wg.Done()
			rtts, alertCount, err := runConn(ctx, cfg, connIdx, poles, window)
			alerts.Add(int64(alertCount))
			if err != nil && ctx.Err() == nil {
				fail(fmt.Errorf("fleet: conn %d: %w", connIdx, err))
			}
			sampleMu.Lock()
			samples = append(samples, rtts...)
			sampleMu.Unlock()
		}(c, poles)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.ElapsedMS = float64(res.Elapsed.Microseconds()) / 1e3
	res.Reports = len(samples)
	if res.Elapsed > 0 {
		res.ReportsPerSec = float64(res.Reports) / res.Elapsed.Seconds()
	}
	res.AckRTT = Percentiles(samples)
	res.Alerts = int(alerts.Load())
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, firstErr
}

// runConn drives one multiplexed connection: a writer pipelines reports
// for its poles under the in-flight window while a reader collects acks
// (measuring each report's RTT) and alerts.
func runConn(ctx context.Context, cfg ReportConfig, connIdx int, poles []uint32, window int) ([]float64, int, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	wc := wire.NewConn(conn)

	rng := rand.New(rand.NewSource(cfg.Seed + int64(connIdx)*7919))
	if cfg.Stagger > 0 {
		select {
		case <-time.After(time.Duration(rng.Int63n(int64(cfg.Stagger)))):
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
	for _, id := range poles {
		hello := wire.Hello{
			PoleID:   id,
			Location: fmt.Sprintf("walkway-%d", id),
			Zone:     ZoneName(id, cfg.Zones),
		}
		if err := wc.Send(wire.MsgHello, wire.EncodeHello(hello)); err != nil {
			return nil, 0, err
		}
	}

	total := len(poles) * cfg.ReportsPerPole
	// sendNanos[seq-1] is the send time of the connection-local sequence
	// number seq; the writer stores before sending, the reader loads
	// after the backend's ack — atomics make the handoff race-free.
	sendNanos := make([]atomic.Int64, total)
	slots := make(chan struct{}, window)
	rtts := make([]float64, 0, total)
	alerts := 0

	// done unblocks the writer's window wait when the reader bails out
	// early (broken connection, protocol error), so no goroutine is left
	// parked on a slot that will never drain.
	done := make(chan struct{})
	defer close(done)
	writeErr := make(chan error, 1)
	go func() {
		seq := uint64(0)
		for round := 0; round < cfg.ReportsPerPole; round++ {
			for _, id := range poles {
				select {
				case slots <- struct{}{}:
				case <-ctx.Done():
					writeErr <- ctx.Err()
					return
				case <-done:
					writeErr <- nil
					return
				}
				seq++
				r := wire.CountReport{
					PoleID:    id,
					Seq:       seq,
					Timestamp: time.Now().UTC(),
					Count:     syntheticCount(id, round, rng),
					Clusters:  1,
					LatencyUS: 1000,
				}
				sendNanos[seq-1].Store(time.Now().UnixNano())
				if err := wc.Send(wire.MsgCountReport, wire.EncodeCountReport(r)); err != nil {
					writeErr <- err
					return
				}
			}
			if cfg.Interval > 0 {
				select {
				case <-time.After(cfg.Interval):
				case <-ctx.Done():
					writeErr <- ctx.Err()
					return
				case <-done:
					writeErr <- nil
					return
				}
			}
		}
		writeErr <- nil
	}()

	acked := 0
	for acked < total {
		t, body, err := wc.Recv()
		if err != nil {
			return rtts, alerts, err
		}
		switch t {
		case wire.MsgAck:
			ack, err := wire.DecodeAck(body)
			if err != nil {
				return rtts, alerts, err
			}
			if ack.Seq == 0 || ack.Seq > uint64(total) {
				return rtts, alerts, fmt.Errorf("ack for unknown seq %d", ack.Seq)
			}
			sent := sendNanos[ack.Seq-1].Load()
			rtts = append(rtts, float64(time.Now().UnixNano()-sent)/1e6)
			acked++
			<-slots
		case wire.MsgAlert:
			if _, err := wire.DecodeAlert(body); err != nil {
				return rtts, alerts, err
			}
			alerts++
		default:
			return rtts, alerts, fmt.Errorf("unexpected message type %d", t)
		}
	}
	return rtts, alerts, <-writeErr
}

// Percentiles computes nearest-rank latency percentiles over samples in
// milliseconds; the slice is sorted in place.
func Percentiles(samples []float64) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Float64s(samples)
	rank := func(q float64) float64 {
		i := int(q*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return LatencyStats{
		P50Ms: rank(0.50),
		P95Ms: rank(0.95),
		P99Ms: rank(0.99),
		MaxMs: samples[len(samples)-1],
	}
}

// DefaultQueryWorkers is the dashboard client count when
// QueryConfig.Workers is zero.
const DefaultQueryWorkers = 4

// DefaultHistoryWindow is the lookback of fleet history queries when
// QueryConfig.HistoryWindow is zero.
const DefaultHistoryWindow = time.Minute

// ScaledQueryWorkers sizes the dashboard fleet to drive thousands of QPS
// from one process: four concurrent clients per CPU, at least eight.
// Benchmarks use it instead of DefaultQueryWorkers so query throughput
// scales with the machine rather than pinning at a four-worker ceiling.
func ScaledQueryWorkers() int {
	w := 4 * runtime.GOMAXPROCS(0)
	if w < 8 {
		w = 8
	}
	return w
}

// QueryConfig parameterizes dashboard-style query load against the
// campus query API.
type QueryConfig struct {
	// BaseURL is the query API root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the concurrent client count (0 selects
	// DefaultQueryWorkers; ScaledQueryWorkers sizes for throughput runs).
	Workers int
	// Poles is the pole-ID space sampled by per-pole queries.
	Poles int
	// Zones matches the report generator's zone count (0 selects
	// DefaultZones).
	Zones int
	// HistoryPercent is the share (0–100) of queries aimed at the
	// /api/history endpoint instead of the snapshot mix: half raw reads,
	// half downsampled, over random poles and HistorySeries. 0 = none.
	HistoryPercent int
	// HistorySeries are the series names history queries sample (nil
	// selects the inline-captured "count" series).
	HistorySeries []string
	// HistoryWindow is the lookback of each history query (0 selects
	// DefaultHistoryWindow); downsampled reads use window/60 buckets.
	HistoryWindow time.Duration
	// ConditionalPercent is the share (0–100) of cacheable-endpoint
	// requests sent with If-None-Match set to the last ETag the worker
	// saw for that URL — the polling-dashboard pattern. A request whose
	// snapshot has not changed is answered 304 Not Modified with no
	// body; those count toward QueryResult.NotModified, not NonOK.
	ConditionalPercent int
	// Seed drives endpoint sampling.
	Seed int64
}

// QueryResult is what a query run measured.
type QueryResult struct {
	Workers   int           `json:"workers"`
	Queries   int           `json:"queries"`
	Elapsed   time.Duration `json:"-"`
	ElapsedMS float64       `json:"elapsed_ms"`
	QPS       float64       `json:"qps"`
	Latency   LatencyStats  `json:"latency"`
	// HistoryQueries is how many of Queries hit /api/history;
	// HistoryLatency are their percentiles alone (Latency covers all).
	HistoryQueries int          `json:"history_queries"`
	HistoryLatency LatencyStats `json:"history_latency"`
	// Errors are transport failures; NonOK are responses that are
	// neither 200 nor 304; NotModified counts conditional requests the
	// server short-circuited with 304.
	Errors      int `json:"errors"`
	NonOK       int `json:"non_ok"`
	NotModified int `json:"not_modified"`
}

// Query hammers the query API from cfg.Workers concurrent clients until
// ctx is canceled, mixing campus, top-K, per-pole, per-zone, and
// full-listing requests the way a dashboard fleet would.
func Query(ctx context.Context, cfg QueryConfig) QueryResult {
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultQueryWorkers
	}
	if cfg.Poles <= 0 {
		cfg.Poles = 1
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: workers,
	}}
	defer client.CloseIdleConnections()

	var (
		wg       sync.WaitGroup
		sampleMu sync.Mutex
		samples  []float64
		histSam  []float64
		errsN    atomic.Int64
		nonOK    atomic.Int64
		notMod   atomic.Int64
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729))
			local := make([]float64, 0, 1024)
			localHist := make([]float64, 0, 1024)
			// lastETag remembers, per URL, the ETag of the last answer —
			// a dashboard's revalidation state.
			lastETag := make(map[string]string)
			for ctx.Err() == nil {
				url, isHistory := pickEndpoint(cfg, rng)
				inm := ""
				if cfg.ConditionalPercent > 0 && !isHistory && rng.Intn(100) < cfg.ConditionalPercent {
					inm = lastETag[url]
				}
				t0 := time.Now()
				ok, status, etag := getOnce(ctx, client, url, inm)
				if ctx.Err() != nil {
					break // a canceled request measures shutdown, not the API
				}
				ms := float64(time.Since(t0).Microseconds()) / 1e3
				local = append(local, ms)
				if isHistory {
					localHist = append(localHist, ms)
				}
				if etag != "" {
					lastETag[url] = etag
				}
				switch {
				case !ok:
					errsN.Add(1)
				case status == http.StatusNotModified:
					notMod.Add(1)
				case status != http.StatusOK:
					nonOK.Add(1)
				}
			}
			sampleMu.Lock()
			samples = append(samples, local...)
			histSam = append(histSam, localHist...)
			sampleMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := QueryResult{
		Workers:        workers,
		Queries:        len(samples),
		Elapsed:        elapsed,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1e3,
		Errors:         int(errsN.Load()),
		NonOK:          int(nonOK.Load()),
		NotModified:    int(notMod.Load()),
		Latency:        Percentiles(samples),
		HistoryQueries: len(histSam),
		HistoryLatency: Percentiles(histSam),
	}
	if elapsed > 0 {
		res.QPS = float64(res.Queries) / elapsed.Seconds()
	}
	return res
}

// pickEndpoint samples the dashboard query mix: mostly cheap rollups,
// occasionally the expensive full pole listing, plus — when
// HistoryPercent is set — raw and downsampled history reads.
func pickEndpoint(cfg QueryConfig, rng *rand.Rand) (url string, isHistory bool) {
	if cfg.HistoryPercent > 0 && rng.Intn(100) < cfg.HistoryPercent {
		return pickHistory(cfg, rng), true
	}
	switch p := rng.Intn(100); {
	case p < 40:
		return cfg.BaseURL + "/api/campus", false
	case p < 60:
		return cfg.BaseURL + "/api/top?k=10", false
	case p < 80:
		return fmt.Sprintf("%s/api/poles/%d", cfg.BaseURL, 1+rng.Intn(cfg.Poles)), false
	case p < 95:
		zones := cfg.Zones
		if zones <= 0 {
			zones = DefaultZones
		}
		return fmt.Sprintf("%s/api/zones/zone-%d", cfg.BaseURL, rng.Intn(zones)), false
	default:
		return cfg.BaseURL + "/api/poles", false
	}
}

// pickHistory builds one /api/history URL: a random pole and series over
// the configured window, downsampled to window/60 buckets half the time.
func pickHistory(cfg QueryConfig, rng *rand.Rand) string {
	series := cfg.HistorySeries
	if len(series) == 0 {
		series = []string{"count"}
	}
	window := cfg.HistoryWindow
	if window <= 0 {
		window = DefaultHistoryWindow
	}
	res := "raw"
	if rng.Intn(2) == 0 {
		step := window / 60
		if step < time.Millisecond {
			step = time.Millisecond
		}
		res = step.String()
	}
	return fmt.Sprintf("%s/api/history?pole=%d&series=%s&window=%s&res=%s",
		cfg.BaseURL, 1+rng.Intn(cfg.Poles), series[rng.Intn(len(series))], window, res)
}

// getOnce performs one GET (conditional when inm carries an ETag for
// If-None-Match), draining the body so the connection is reused. ok
// reports transport success; status the HTTP code; etag the response's
// ETag for the caller's revalidation state ("" when absent).
func getOnce(ctx context.Context, client *http.Client, url, inm string) (ok bool, status int, etag string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, 0, ""
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, 0, ""
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return true, resp.StatusCode, resp.Header.Get("ETag")
}
