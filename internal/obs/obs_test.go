package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total", "frames processed")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("temp_c", "compartment temperature")
	g.Set(57.8)
	if got := g.Value(); got != 57.8 {
		t.Errorf("gauge = %g, want 57.8", got)
	}
	g.SetTime(time.Unix(100, 0))
	if got := g.Value(); got != 100 {
		t.Errorf("gauge time = %g, want 100", got)
	}
}

func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reports_total", "", L("pole", "1"))
	b := r.Counter("reports_total", "", L("pole", "1"))
	if a != b {
		t.Error("same name+labels should return the same counter")
	}
	other := r.Counter("reports_total", "", L("pole", "2"))
	if a == other {
		t.Error("different labels must be distinct series")
	}
	// Label order must not split series.
	x := r.Gauge("g", "", L("a", "1"), L("b", "2"))
	y := r.Gauge("g", "", L("b", "2"), L("a", "1"))
	if x != y {
		t.Error("label order should not create a new series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", LatencyBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(0.5)
	h.ObserveDuration(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments should read zero")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot should be empty")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Error("nil registry exposition should be empty")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform over (0, 4]: 25 per unit.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Counts[0]; got != 25 {
		t.Errorf("bucket(≤1) = %d, want 25", got)
	}
	if got := s.Counts[1]; got != 25 {
		t.Errorf("bucket(≤2) = %d, want 25", got)
	}
	if got := s.Counts[2]; got != 50 {
		t.Errorf("bucket(≤4) = %d, want 50", got)
	}
	if math.Abs(s.Mean()-2.02) > 1e-9 {
		t.Errorf("mean = %g, want 2.02", s.Mean())
	}
	// Uniform over (0,4]: p50 ≈ 2, p95 ≈ 3.8 (interpolated inside (2,4]).
	if p50 := s.Quantile(0.50); math.Abs(p50-2.0) > 0.05 {
		t.Errorf("p50 = %g, want ≈2.0", p50)
	}
	if p95 := s.Quantile(0.95); math.Abs(p95-3.8) > 0.1 {
		t.Errorf("p95 = %g, want ≈3.8", p95)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	s := h.Snapshot()
	if s.Counts[2] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", s.Counts[2])
	}
	// Quantiles clamp to the highest finite bound.
	if q := s.Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile = %g, want 2", q)
	}
}

func TestEmptyHistogramQuantile(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", []float64{0.5, 1, 2})
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(g%3) * 0.75)
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != goroutines*each {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*each)
	}
	s := h.Snapshot()
	if s.Count != goroutines*each {
		t.Errorf("histogram count = %d, want %d", s.Count, goroutines*each)
	}
	var sum uint64
	for _, b := range s.Counts {
		sum += b
	}
	if sum != s.Count {
		t.Errorf("bucket sum %d != count %d", sum, s.Count)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", "", LatencyBuckets())
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%100) * 1e-4)
			i++
		}
	})
}
