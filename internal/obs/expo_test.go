package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", "frames processed", L("pole", "1")).Add(7)
	r.Gauge("temp_c", "compartment temperature").Set(49.5)
	h := r.Histogram("stage_seconds", "per-stage latency", []float64{0.001, 0.01}, L("stage", "cluster"))
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(3) // +Inf bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP frames_total frames processed",
		"# TYPE frames_total counter",
		`frames_total{pole="1"} 7`,
		"# TYPE temp_c gauge",
		"temp_c 49.5",
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="cluster",le="0.001"} 1`,
		`stage_seconds_bucket{stage="cluster",le="0.01"} 2`,
		`stage_seconds_bucket{stage="cluster",le="+Inf"} 3`,
		`stage_seconds_sum{stage="cluster"} 3.0055`,
		`stage_seconds_count{stage="cluster"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestBucketCountsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 3})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(2.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="3"} 3`,
		`lat_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("scrape missing counter:\n%s", body)
	}

	// pprof index must be reachable on the same listener.
	resp, err = http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(idx), "goroutine") {
		t.Errorf("pprof index status %d body %.80s", resp.StatusCode, idx)
	}
}

// TestServeMountsExtraHandlers mounts an extra handler next to /metrics
// on one listener — the single-diagnostics-port pattern polesim uses to
// serve the campus query API beside the scrape target.
func TestServeMountsExtraHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	srv, err := ServeMounts("127.0.0.1:0", r, map[string]http.Handler{
		"/api/": http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			io.WriteString(w, "campus "+req.URL.Path)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":    "up_total 1",
		"/api/campus": "campus /api/campus",
	} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Errorf("%s: status %d, body %.80s (want %q)", path, resp.StatusCode, body, want)
		}
	}
}

func TestQuantilesMs(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.002, 0.004})
	for i := 0; i < 100; i++ {
		h.Observe(0.0015) // all in (0.001, 0.002]
	}
	p50, p95, p99 := h.Snapshot().QuantilesMs()
	if p50 < 1 || p50 > 2 || p95 < 1 || p95 > 2 || p99 < 1 || p99 > 2 {
		t.Errorf("quantiles ms = %g %g %g, want within (1,2]", p50, p95, p99)
	}
}
