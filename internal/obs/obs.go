// Package obs is the low-overhead observability layer of the campus
// deployment: lock-free counters, gauges, and fixed-bucket latency
// histograms, collected into a Registry and exposed in Prometheus text
// format (expo.go) alongside net/http/pprof.
//
// The hot path is allocation-free: instruments are created once at setup
// (Registry get-or-create) and updated with single atomic operations.
// Every instrument is nil-safe — methods on a nil *Counter, *Gauge, or
// *Histogram are no-ops — so instrumented code never branches on whether
// observability is enabled; an uninstrumented pipeline simply carries nil
// instrument pointers.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" dimension on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetTime stores t as seconds since the Unix epoch (the Prometheus
// convention for *_timestamp_seconds gauges).
func (g *Gauge) SetTime(t time.Time) {
	g.Set(float64(t.UnixNano()) / 1e9)
}

// Inc shifts the gauge up by 1 — the queue-depth convention: Inc on
// enqueue, Dec on dequeue.
func (g *Gauge) Inc() { g.Add(1) }

// Dec shifts the gauge down by 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Add shifts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Observations increment one
// bucket counter atomically; the bucket layout never changes after
// creation, so the hot path is a binary search plus two atomic adds (the
// float64 sum is a CAS loop, contended only when many goroutines observe
// the same series simultaneously).
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, ascending.
	// counts has len(bounds)+1 entries; the last is the +Inf bucket.
	bounds  []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// LatencyBuckets spans 50 µs to 2.5 s, covering everything from a single
// GEMM pass to a full high-density frame on a loaded pole.
func LatencyBuckets() []float64 {
	return []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5,
	}
}

// NewHistogram builds a detached histogram (not in any registry) with the
// given ascending bucket upper bounds. Registry.Histogram is the usual
// constructor; detached histograms serve internal accounting that still
// wants quantile snapshots.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records v (in the bucket unit, conventionally seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistSnapshot is a point-in-time copy of a histogram, safe to read while
// observations continue.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the (non-cumulative)
	// count for bucket i, with Counts[len(Bounds)] the +Inf bucket.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the current bucket counts. Counts are loaded bucket by
// bucket, so a snapshot taken during heavy observation may be off by the
// handful of observations in flight — fine for scraping, which is the
// only consumer.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns Sum/Count, or 0 for an empty snapshot.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 < q < 1) by linear
// interpolation inside the bucket containing the target rank, the same
// estimate Prometheus' histogram_quantile computes. Observations in the
// +Inf bucket clamp to the highest finite bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metricKind distinguishes family types at registration and exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument within a family.
type series struct {
	labels    string  // rendered {k="v",...} or ""
	labelSet  []Label // sorted by key; the parsed form of labels
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byKey  map[string]*series
}

// Registry holds a process's metric families. Get-or-create methods are
// safe for concurrent use; returned instruments are shared, so two
// callers asking for the same name+labels update the same series. A nil
// *Registry is valid and returns nil (no-op) instruments.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// sortLabels returns a key-sorted copy of labels (nil for none).
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// renderLabels produces the canonical {k="v",...} key, sorted by key so
// label order at the call site doesn't split series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortLabels(labels)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup get-or-creates the series for name+labels, verifying the kind.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, create func() *series) *series {
	key := renderLabels(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.byKey[key]; ok && f.kind == kind {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := create()
	s.labels = key
	s.labelSet = sortLabels(labels)
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

// SeriesInfo is one registered series as typed instruments: exactly one
// of Counter, Gauge, or Histogram is non-nil. It exists so collectors —
// the tsdb capture sampler above all — can read instruments directly
// instead of scraping and re-parsing the Prometheus text exposition.
type SeriesInfo struct {
	Name string
	Help string
	// Labels is sorted by key; the slice is shared — callers must not
	// mutate it.
	Labels    []Label
	Counter   *Counter
	Gauge     *Gauge
	Histogram *Histogram
}

// Label returns the value of the labeled dimension, or "" when absent.
func (si SeriesInfo) Label(key string) string {
	for _, l := range si.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// EachSeries calls f for every registered series in registration order
// (families in creation order, series within a family in creation
// order). Series registered while the walk runs may or may not be
// visited — the same staleness contract a scrape has. A nil registry
// visits nothing.
func (r *Registry) EachSeries(f func(SeriesInfo)) {
	if r == nil {
		return
	}
	r.mu.RLock()
	type famCopy struct {
		name, help string
		series     []*series
	}
	copies := make([]famCopy, 0, len(r.order))
	for _, name := range r.order {
		fam := r.families[name]
		copies = append(copies, famCopy{fam.name, fam.help, append([]*series(nil), fam.series...)})
	}
	r.mu.RUnlock()
	for _, fam := range copies {
		for _, s := range fam.series {
			f(SeriesInfo{
				Name:      fam.name,
				Help:      fam.help,
				Labels:    s.labelSet,
				Counter:   s.counter,
				Gauge:     s.gauge,
				Histogram: s.histogram,
			})
		}
	}
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	return s.gauge
}

// Histogram returns the histogram for name+labels with the given bucket
// bounds, creating it on first use. Bounds are fixed by the first caller;
// later callers with different bounds share the original series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindHistogram, labels, func() *series {
		return &series{histogram: NewHistogram(bounds)}
	})
	return s.histogram
}
