// Prometheus text-format exposition and the HTTP surface: a /metrics
// handler rendered snapshot-on-scrape (the hot path never formats text)
// and net/http/pprof mounted on the same mux, so one -metrics-addr
// listener serves both the scrape target and the profiler.
package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// WritePrometheus renders every family in registration order using the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(order))
	for _, name := range order {
		fams = append(fams, r.families[name])
	}
	// Series membership can grow during the scrape; copy the slices under
	// the read lock, then render lock-free (instrument reads are atomic).
	type famCopy struct {
		name, help string
		kind       metricKind
		series     []*series
	}
	copies := make([]famCopy, len(fams))
	for i, f := range fams {
		copies[i] = famCopy{f.name, f.help, f.kind, append([]*series(nil), f.series...)}
	}
	r.mu.RUnlock()

	for _, f := range copies {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f.name, s, f.kind); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, s *series, kind metricKind) error {
	switch kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %g\n", name, s.labels, s.gauge.Value())
		return err
	default:
		return writeHistogram(w, name, s.labels, s.histogram.Snapshot())
	}
}

// mergeLabels splices le="..." into an existing rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

func writeHistogram(w io.Writer, name, labels string, s HistSnapshot) error {
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		le := mergeLabels(labels, fmt.Sprintf("le=%q", formatBound(b)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
			return err
		}
	}
	le := mergeLabels(labels, `le="+Inf"`)
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
	return err
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal form, no exponent for typical latency magnitudes.
func formatBound(b float64) string {
	s := fmt.Sprintf("%g", b)
	return s
}

// Handler returns the /metrics scrape handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux mounts the registry's /metrics handler and the pprof profiler
// (/debug/pprof/...) on one mux.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsServer is a running metrics/pprof listener.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves /metrics and
// /debug/pprof on it until Close.
func Serve(addr string, r *Registry) (*MetricsServer, error) {
	return ServeMounts(addr, r, nil)
}

// ServeMounts is Serve with extra handlers mounted on the same listener
// — the pattern behind polesim's single diagnostics port, where the
// campus query API (/api/...) rides next to /metrics and the profiler.
// Patterns use net/http ServeMux syntax; they must not collide with
// /metrics or /debug/pprof.
func ServeMounts(addr string, r *Registry, mounts map[string]http.Handler) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := NewMux(r)
	for pattern, h := range mounts {
		mux.Handle(pattern, h)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// URL returns the scrape URL, http://addr/metrics.
func (m *MetricsServer) URL() string { return "http://" + m.Addr() + "/metrics" }

// Close stops the listener.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// QuantilesMs is a convenience for benchmark reporting: p50/p95/p99 of a
// snapshot converted to milliseconds.
func (s HistSnapshot) QuantilesMs() (p50, p95, p99 float64) {
	return s.Quantile(0.50) * 1e3, s.Quantile(0.95) * 1e3, s.Quantile(0.99) * 1e3
}
