package obs

import "testing"

// TestEachSeriesTypedIteration pins the typed walk the tsdb sampler
// reads instruments through: every registered series appears once, in
// registration order, with sorted labels and the live instrument —
// no Prometheus text involved.
func TestEachSeriesTypedIteration(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reports_total", "reports", L("zone", "quad"), L("pole", "3"))
	g := r.Gauge("temp_c", "temperature")
	h := r.Histogram("latency_seconds", "latency", LatencyBuckets(), L("pole", "3"))
	c.Add(5)
	g.Set(21.5)
	h.Observe(0.25)

	var infos []SeriesInfo
	r.EachSeries(func(si SeriesInfo) { infos = append(infos, si) })
	if len(infos) != 3 {
		t.Fatalf("walked %d series, want 3", len(infos))
	}

	// Registration order, not name order.
	if infos[0].Name != "reports_total" || infos[1].Name != "temp_c" || infos[2].Name != "latency_seconds" {
		t.Fatalf("order %s, %s, %s", infos[0].Name, infos[1].Name, infos[2].Name)
	}

	// The walk hands back the live instruments, not copies.
	if infos[0].Counter != c || infos[0].Gauge != nil || infos[0].Histogram != nil {
		t.Error("counter series did not carry the counter instrument alone")
	}
	if infos[0].Counter.Value() != 5 {
		t.Errorf("counter value %d through the walk, want 5", infos[0].Counter.Value())
	}
	if infos[1].Gauge != g || infos[2].Histogram != h {
		t.Error("gauge/histogram instruments not threaded through")
	}

	// Labels come sorted by key regardless of registration order.
	labels := infos[0].Labels
	if len(labels) != 2 || labels[0].Key != "pole" || labels[1].Key != "zone" {
		t.Fatalf("labels %+v, want sorted [pole zone]", labels)
	}
	if infos[0].Label("pole") != "3" || infos[0].Label("zone") != "quad" {
		t.Errorf("Label lookups: pole=%q zone=%q", infos[0].Label("pole"), infos[0].Label("zone"))
	}
	if infos[0].Label("missing") != "" {
		t.Error("missing label did not return empty")
	}
	if infos[1].Label("pole") != "" {
		t.Error("unlabeled series returned a pole label")
	}

	// Same family, second label set → a second walked series.
	r.Counter("reports_total", "reports", L("zone", "quad"), L("pole", "4"))
	n := 0
	r.EachSeries(func(SeriesInfo) { n++ })
	if n != 4 {
		t.Fatalf("walked %d series after second label set, want 4", n)
	}
}

func TestEachSeriesNilRegistry(t *testing.T) {
	var r *Registry
	r.EachSeries(func(SeriesInfo) { t.Fatal("nil registry walked a series") })
}
