package backend

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"hawccc/internal/wire"
)

// newAPITestServer stands up a backend with the snapshot loop disabled
// (SnapshotInterval < 0) and seeds it with deterministic pole state via
// the internal write path, then publishes one snapshot. Tests drive the
// query API through APIHandler directly — no HTTP listener needed.
func newAPITestServer(t *testing.T) *Server {
	t.Helper()
	s, err := Listen(Config{Addr: "127.0.0.1:0", SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	// Poles 1..6 alternate between two zones; pole id doubles as its
	// current count so TopK ordering is fully determined.
	for id := uint32(1); id <= 6; id++ {
		zone := "quad"
		if id%2 == 0 {
			zone = "stadium"
		}
		s.withPole(id, func(p *PoleStats, _ *poleObs, _ *poleHist) {
			p.Location = fmt.Sprintf("walkway-%d", id)
			p.Zone = zone
		})
		s.recordCount(wire.CountReport{PoleID: id, Seq: 1, Count: id})
	}
	s.alog.add(wire.Alert{PoleID: 6, Kind: wire.AlertCrowding, Message: "crowding at pole 6"})
	s.alog.add(wire.Alert{PoleID: 2, Kind: wire.AlertOverheat, Message: "overheat at pole 2"})
	s.RebuildSnapshot()
	return s
}

// get performs one request against the handler and decodes the JSON body.
func get(t *testing.T, h http.Handler, path string, into any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s: Content-Type %q", path, ct)
	}
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("%s: decode: %v (body %q)", path, err, rec.Body.String())
		}
	}
	return rec.Code
}

func TestAPICampusAndPoles(t *testing.T) {
	s := newAPITestServer(t)
	h := s.APIHandler()

	var campus struct {
		SnapshotSeq uint64      `json:"snapshot_seq"`
		Campus      CampusStats `json:"campus"`
	}
	if code := get(t, h, "/api/campus", &campus); code != http.StatusOK {
		t.Fatalf("campus: status %d", code)
	}
	if campus.SnapshotSeq == 0 {
		t.Error("campus response missing snapshot_seq")
	}
	// Counts are 1+2+...+6.
	if campus.Campus.Poles != 6 || campus.Campus.Count != 21 || campus.Campus.Zones != 2 {
		t.Errorf("campus rollup: %+v", campus.Campus)
	}

	var poles struct {
		Poles []PoleStats `json:"poles"`
	}
	if code := get(t, h, "/api/poles", &poles); code != http.StatusOK {
		t.Fatalf("poles: status %d", code)
	}
	if len(poles.Poles) != 6 || poles.Poles[0].PoleID != 1 || poles.Poles[5].PoleID != 6 {
		t.Errorf("poles not sorted by ID: %+v", poles.Poles)
	}

	var one struct {
		Pole PoleStats `json:"pole"`
	}
	if code := get(t, h, "/api/poles/4", &one); code != http.StatusOK {
		t.Fatalf("pole 4: status %d", code)
	}
	if one.Pole.Location != "walkway-4" || one.Pole.Zone != "stadium" || one.Pole.LastCount != 4 {
		t.Errorf("pole 4: %+v", one.Pole)
	}

	var apiErr apiError
	if code := get(t, h, "/api/poles/99", &apiErr); code != http.StatusNotFound || apiErr.Error == "" {
		t.Errorf("unknown pole: status %d body %+v", code, apiErr)
	}
	if code := get(t, h, "/api/poles/notanumber", &apiErr); code != http.StatusBadRequest {
		t.Errorf("malformed pole id: status %d", code)
	}
}

func TestAPIZonesAndTop(t *testing.T) {
	s := newAPITestServer(t)
	h := s.APIHandler()

	var zones struct {
		Zones []ZoneStats `json:"zones"`
	}
	if code := get(t, h, "/api/zones", &zones); code != http.StatusOK {
		t.Fatalf("zones: status %d", code)
	}
	// Sorted by name: quad (odd poles 1,3,5) then stadium (2,4,6).
	if len(zones.Zones) != 2 || zones.Zones[0].Zone != "quad" || zones.Zones[1].Zone != "stadium" {
		t.Fatalf("zones: %+v", zones.Zones)
	}
	if zones.Zones[0].Count != 9 || zones.Zones[1].Count != 12 {
		t.Errorf("zone counts: %+v", zones.Zones)
	}

	var zone struct {
		Zone  ZoneStats   `json:"zone"`
		Poles []PoleStats `json:"poles"`
	}
	if code := get(t, h, "/api/zones/stadium", &zone); code != http.StatusOK {
		t.Fatalf("zone stadium: status %d", code)
	}
	if zone.Zone.Poles != 3 || len(zone.Poles) != 3 {
		t.Errorf("zone stadium: %+v with %d poles", zone.Zone, len(zone.Poles))
	}
	if code := get(t, h, "/api/zones/nowhere", nil); code != http.StatusNotFound {
		t.Errorf("unknown zone: status %d", code)
	}

	var top struct {
		K     int         `json:"k"`
		Poles []PoleStats `json:"poles"`
	}
	if code := get(t, h, "/api/top?k=3", &top); code != http.StatusOK {
		t.Fatalf("top: status %d", code)
	}
	if top.K != 3 || len(top.Poles) != 3 {
		t.Fatalf("top: k=%d with %d poles", top.K, len(top.Poles))
	}
	// Busiest by current count desc: poles 6, 5, 4.
	for i, want := range []uint32{6, 5, 4} {
		if top.Poles[i].PoleID != want {
			t.Errorf("top[%d] = pole %d, want %d", i, top.Poles[i].PoleID, want)
		}
	}
	if code := get(t, h, "/api/top?k=0", nil); code != http.StatusBadRequest {
		t.Errorf("top k=0: status %d", code)
	}

	var alerts struct {
		Total  int          `json:"total"`
		Alerts []wire.Alert `json:"alerts"`
	}
	if code := get(t, h, "/api/alerts?limit=1", &alerts); code != http.StatusOK {
		t.Fatalf("alerts: status %d", code)
	}
	if alerts.Total != 2 || len(alerts.Alerts) != 1 || alerts.Alerts[0].PoleID != 2 {
		t.Errorf("alerts: %+v", alerts)
	}
}

// TestAPIStalenessBoundedBySnapshot pins the staleness model: reads
// reflect the published snapshot, not live shard state, until the next
// rebuild publishes a newer one.
func TestAPIStalenessBoundedBySnapshot(t *testing.T) {
	s := newAPITestServer(t)
	h := s.APIHandler()

	s.recordCount(wire.CountReport{PoleID: 1, Seq: 2, Count: 50})

	var campus struct {
		Campus CampusStats `json:"campus"`
	}
	get(t, h, "/api/campus", &campus)
	if campus.Campus.Count != 21 {
		t.Errorf("pre-rebuild read saw live state: count %d, want 21", campus.Campus.Count)
	}

	s.RebuildSnapshot()
	get(t, h, "/api/campus", &campus)
	if campus.Campus.Count != 70 { // 21 - 1 + 50
		t.Errorf("post-rebuild count %d, want 70", campus.Campus.Count)
	}
}

// TestAPIReadPathAcquiresNoShardLocks is the acceptance check for the
// snapshot-serving design: a burst across every endpoint must not take a
// single registry shard lock. The registry counts every acquisition; the
// snapshot loop is disabled, so any nonzero delta here is the read path
// reaching into the shards.
func TestAPIReadPathAcquiresNoShardLocks(t *testing.T) {
	s := newAPITestServer(t)
	h := s.APIHandler()

	before := s.reg.lockAcquisitions.Load()
	paths := []string{
		"/api/campus", "/api/poles", "/api/poles/3", "/api/poles/99",
		"/api/zones", "/api/zones/quad", "/api/zones/nowhere",
		"/api/top?k=5", "/api/alerts", "/api/alerts?limit=1",
	}
	for i := 0; i < 100; i++ {
		for _, p := range paths {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
		}
	}
	if delta := s.reg.lockAcquisitions.Load() - before; delta != 0 {
		t.Fatalf("query API read path acquired %d shard locks across 1000 requests, want 0", delta)
	}
}
