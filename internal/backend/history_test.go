package backend

import (
	"fmt"
	"math"
	"net/http"
	"testing"
	"time"

	"hawccc/internal/obs"
	"hawccc/internal/tsdb"
	"hawccc/internal/wire"
)

// newHistoryTestServer stands up a backend with history capture on and
// every background loop off, so tests drive capture deterministically.
func newHistoryTestServer(t *testing.T, reg *obs.Registry) *Server {
	t.Helper()
	s, err := Listen(Config{
		Addr:                  "127.0.0.1:0",
		SnapshotInterval:      -1,
		History:               &tsdb.Config{ChunkSamples: 8},
		HistorySampleInterval: -1,
		Obs:                   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// sendReports streams count reports and telemetry for pole 1 at fixed
// wire timestamps and waits for the last ack, so every message has been
// recorded when it returns.
func sendReports(t *testing.T, s *Server, temps []float64) (countTS []int64, counts []float64) {
	t.Helper()
	c := dialBackend(t, s)
	base := time.Unix(1700000000, 0).UTC()
	for i, temp := range temps {
		ts := base.Add(time.Duration(i) * time.Second)
		tm := wire.Telemetry{PoleID: 1, Timestamp: ts, PoleTemp: temp, Ambient: temp - 5}
		if err := c.Send(wire.MsgTelemetry, wire.EncodeTelemetry(tm)); err != nil {
			t.Fatal(err)
		}
		r := wire.CountReport{PoleID: 1, Seq: uint64(i + 1), Timestamp: ts, Count: uint32(i * i), Clusters: 1, LatencyUS: 900}
		if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(r)); err != nil {
			t.Fatal(err)
		}
		countTS = append(countTS, ts.UnixNano())
		counts = append(counts, float64(i*i))
	}
	// Telemetry is not acked; the count acks order-fence both streams.
	for range temps {
		typ, _, err := c.Recv()
		if err != nil || typ != wire.MsgAck {
			t.Fatalf("recv: type %d err %v", typ, err)
		}
	}
	// Capture is batched per shard; drain it so the store sees every
	// message (the background history loop is off in these tests).
	s.FlushHistory()
	return countTS, counts
}

// TestHistoryRawBitIdentical is the acceptance pin: what comes back from
// /api/history?res=raw — through chunk encode/decode AND the JSON wire
// format — is bit-identical to the float64s the pole reported.
func TestHistoryRawBitIdentical(t *testing.T) {
	s := newHistoryTestServer(t, nil)
	// Values chosen to break any path that rounds, truncates, or
	// reformats: non-representable decimals, last-ulp neighbors,
	// negative zero, subnormals, huge magnitudes.
	temps := []float64{
		0.1 + 0.2,
		math.Pi,
		math.Nextafter(math.Pi, 4),
		math.Copysign(0, -1),
		5e-324,
		-1.7976931348623157e308,
		42,
	}
	countTS, counts := sendReports(t, s, temps)
	h := s.APIHandler()

	var raw HistoryResponse
	if code := get(t, h, "/api/history?pole=1&series=pole_temp_c&from=0&to=9223372036854775807&res=raw", &raw); code != http.StatusOK {
		t.Fatalf("history: status %d", code)
	}
	if raw.Res != "raw" || raw.Total != len(temps) || raw.Count != len(temps) {
		t.Fatalf("response meta %+v", raw)
	}
	for i, smp := range raw.Samples {
		if smp.T != countTS[i] {
			t.Errorf("sample %d: t=%d, want %d", i, smp.T, countTS[i])
		}
		if math.Float64bits(float64(smp.V)) != math.Float64bits(temps[i]) {
			t.Errorf("sample %d: bits %016x, want %016x (%v vs %v)",
				i, math.Float64bits(float64(smp.V)), math.Float64bits(temps[i]), float64(smp.V), temps[i])
		}
	}

	var cnt HistoryResponse
	if code := get(t, h, "/api/history?pole=1&series=count&from=0&to=9223372036854775807", &cnt); code != http.StatusOK {
		t.Fatalf("count history: status %d", code)
	}
	for i, smp := range cnt.Samples {
		if smp.T != countTS[i] || float64(smp.V) != counts[i] {
			t.Errorf("count %d: (%d, %v), want (%d, %v)", i, smp.T, smp.V, countTS[i], counts[i])
		}
	}
}

// TestHistoryDownsampledMatchesReference checks the bucketed read against
// tsdb.Downsample over the raw store samples — same grid, same
// NaN-skipping min/max, bit-equal means and lasts.
func TestHistoryDownsampledMatchesReference(t *testing.T) {
	s := newHistoryTestServer(t, nil)
	temps := make([]float64, 30)
	for i := range temps {
		temps[i] = 20 + 7*math.Sin(float64(i)/4) + 0.01*float64(i)
	}
	sendReports(t, s, temps)

	from, to := int64(0), int64(math.MaxInt64)
	sr, ok := s.History().Lookup(1, "pole_temp_c")
	if !ok {
		t.Fatal("pole_temp_c not captured")
	}
	rawSamples, err := sr.QueryRaw(from, to)
	if err != nil {
		t.Fatal(err)
	}
	step := 5 * time.Second
	want := tsdb.Downsample(rawSamples, from, int64(step))

	var resp HistoryResponse
	url := fmt.Sprintf("/api/history?pole=1&series=pole_temp_c&from=%d&to=%d&res=%s", from, to, step)
	if code := get(t, s.APIHandler(), url, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Res != step.String() || len(resp.Buckets) != len(want) {
		t.Fatalf("%d buckets (res %q), want %d", len(resp.Buckets), resp.Res, len(want))
	}
	for i, b := range resp.Buckets {
		w := want[i]
		if b.T != w.TS || b.Count != w.Count ||
			math.Float64bits(float64(b.Min)) != math.Float64bits(w.Min) ||
			math.Float64bits(float64(b.Max)) != math.Float64bits(w.Max) ||
			math.Float64bits(float64(b.Mean)) != math.Float64bits(w.Mean) ||
			math.Float64bits(float64(b.Last)) != math.Float64bits(w.Last) {
			t.Errorf("bucket %d: %+v, want %+v", i, b, w)
		}
	}
}

func TestHistoryLimitKeepsNewest(t *testing.T) {
	s := newHistoryTestServer(t, nil)
	temps := make([]float64, 20)
	for i := range temps {
		temps[i] = float64(i)
	}
	countTS, _ := sendReports(t, s, temps)

	var resp HistoryResponse
	if code := get(t, s.APIHandler(), "/api/history?pole=1&series=pole_temp_c&from=0&to=9223372036854775807&limit=5", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Total != 20 || resp.Count != 5 || len(resp.Samples) != 5 {
		t.Fatalf("total/count = %d/%d, want 20/5", resp.Total, resp.Count)
	}
	if resp.Samples[0].T != countTS[15] || float64(resp.Samples[4].V) != 19 {
		t.Errorf("limit kept %+v, want the 5 newest", resp.Samples)
	}
}

func TestHistorySeriesListing(t *testing.T) {
	s := newHistoryTestServer(t, nil)
	sendReports(t, s, []float64{20, 21})

	var resp HistorySeriesResponse
	if code := get(t, s.APIHandler(), "/api/history/series?pole=1", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	names := make([]string, len(resp.Series))
	for i, m := range resp.Series {
		names[i] = m.Name
	}
	want := []string{"ambient_c", "clusters", "count", "edge_latency_us", "pole_temp_c"}
	if len(names) != len(want) {
		t.Fatalf("series %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("series %v, want %v (sorted)", names, want)
		}
	}
	for _, m := range resp.Series {
		if m.Samples != 2 {
			t.Errorf("series %s has %d samples, want 2", m.Name, m.Samples)
		}
	}
}

// TestHistorySamplerCapture drives one deterministic sampler tick and
// reads an obs-derived series back over the API: the typed EachSeries
// walk, pole-label routing, and histogram expansion end to end.
func TestHistorySamplerCapture(t *testing.T) {
	reg := obs.NewRegistry()
	s := newHistoryTestServer(t, reg)
	sendReports(t, s, []float64{20, 25})

	if n := s.SampleHistory(); n == 0 {
		t.Fatal("sampler tick captured nothing")
	}

	// Per-pole instruments carry a pole="1" label, so their capture lands
	// under pole 1 beside the inline wire series.
	var resp HistoryResponse
	if code := get(t, s.APIHandler(), "/api/history?pole=1&series=backend_reports_total&from=0&to=9223372036854775807", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Samples) != 1 || float64(resp.Samples[0].V) != 2 {
		t.Fatalf("sampled reports counter %+v, want one sample of 2", resp.Samples)
	}

	// Process-wide instruments land under pole 0, histograms as
	// count/sum/quantile sub-series.
	if code := get(t, s.APIHandler(), "/api/history?pole=0&series=backend_report_edge_latency_seconds:count&from=0&to=9223372036854775807", &resp); code != http.StatusOK {
		t.Fatalf("histogram sub-series: status %d", code)
	}
	if len(resp.Samples) != 1 || float64(resp.Samples[0].V) != 2 {
		t.Fatalf("edge latency count %+v, want 2 observations", resp.Samples)
	}
}

func TestHistoryBadRequests(t *testing.T) {
	s := newHistoryTestServer(t, nil)
	sendReports(t, s, []float64{20})
	h := s.APIHandler()
	badReqs := []string{
		"/api/history",                                  // no pole
		"/api/history?pole=x&series=count",              // bad pole
		"/api/history?pole=1",                           // no series
		"/api/history?pole=1&series=count&res=nope",     // bad res
		"/api/history?pole=1&series=count&res=-5s",      // negative res
		"/api/history?pole=1&series=count&window=bogus", // bad window
		"/api/history?pole=1&series=count&from=5",       // from without to
		"/api/history?pole=1&series=count&from=9&to=2",  // inverted range
		"/api/history?pole=1&series=count&limit=0",      // bad limit
		"/api/history/series",                           // no pole
	}
	for _, url := range badReqs {
		var e apiError
		if code := get(t, h, url, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%+v)", url, code, e)
		}
	}
	if code := get(t, h, "/api/history?pole=1&series=never_captured", nil); code != http.StatusNotFound {
		t.Errorf("unknown series: status %d, want 404", code)
	}
	if code := get(t, h, "/api/history?pole=99&series=count", nil); code != http.StatusNotFound {
		t.Errorf("unknown pole: status %d, want 404", code)
	}
}

func TestHistoryDisabledReturns404(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code := get(t, s.APIHandler(), "/api/history?pole=1&series=count", nil); code != http.StatusNotFound {
		t.Errorf("history on a no-history server: status %d, want 404", code)
	}
	if s.History() != nil {
		t.Error("History() non-nil without Config.History")
	}
	if s.SampleHistory() != 0 {
		t.Error("SampleHistory captured without a store")
	}
}

// TestHistoryReadsTakeNoShardLocks extends the read-path contract to the
// history endpoints: a burst of raw and bucketed queries acquires zero
// pole-registry shard locks (the tsdb store has its own sharding).
func TestHistoryReadsTakeNoShardLocks(t *testing.T) {
	s := newHistoryTestServer(t, nil)
	sendReports(t, s, []float64{20, 21, 22, 23})
	h := s.APIHandler()

	before := s.reg.lockAcquisitions.Load()
	for i := 0; i < 50; i++ {
		get(t, h, "/api/history?pole=1&series=count&from=0&to=9223372036854775807", nil)
		get(t, h, "/api/history?pole=1&series=pole_temp_c&from=0&to=9223372036854775807&res=2s", nil)
		get(t, h, "/api/history/series?pole=1", nil)
	}
	if after := s.reg.lockAcquisitions.Load(); after != before {
		t.Fatalf("history reads acquired %d registry shard locks, want 0", after-before)
	}
}
