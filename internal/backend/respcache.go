// The response cache: pre-serialized bodies for the hot, parameterless
// query endpoints, built once per snapshot rebuild and published WITH
// the snapshot behind the same atomic pointer. A cached request costs
// three header-map assignments of shared precomputed values plus one
// Write of an immutable byte slice — zero allocations, pinned by test —
// instead of a full JSON marshal of up to 10k poles. Because the cache
// rides inside the Snapshot struct, one atomic load yields a body and
// its ETag from the same build: readers can never observe a new body
// with a stale ETag or vice versa, no matter how rebuilds interleave.
package backend

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
)

// CachedTopK is the /api/top k the cache pre-serializes; requests for
// any other k fall through to the pooled-encoder path.
const CachedTopK = 10

// headerContentType is the shared Content-Type value slice assigned
// directly into response header maps (http.Header.Set would allocate a
// fresh []string per request).
var headerContentType = []string{"application/json"}

// cacheEntry is one endpoint's immutable pre-serialized body.
type cacheEntry struct {
	body []byte
	// clen is the precomputed Content-Length header value.
	clen []string
}

// respCache holds every pre-serialized body for one snapshot, plus the
// snapshot's ETag (the quoted sequence number — snapshots are immutable,
// so the sequence IS the entity version).
type respCache struct {
	etag    string   // `"<seq>"`, compared against If-None-Match
	etagHdr []string // shared ETag header value
	campus  cacheEntry
	poles   cacheEntry
	zones   cacheEntry
	top     cacheEntry
}

// encodeBody marshals v exactly as the pooled fall-through path does —
// two-space indent, trailing newline — so cached and per-request bodies
// are bit-identical by construction (pinned by test).
func encodeBody(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Response structs contain only marshalable fields; an error here
		// is a programming bug, surfaced as an empty (non-cached) body.
		return nil
	}
	return buf.Bytes()
}

func newCacheEntry(v any) cacheEntry {
	b := encodeBody(v)
	return cacheEntry{body: b, clen: []string{strconv.Itoa(len(b))}}
}

// buildRespCache pre-serializes the hot endpoint bodies for snap. Called
// once per rebuild, before the snapshot is published.
func buildRespCache(snap *Snapshot) *respCache {
	m := meta(snap)
	c := &respCache{etag: `"` + strconv.FormatUint(snap.Seq, 10) + `"`}
	c.etagHdr = []string{c.etag}
	c.campus = newCacheEntry(campusResponse{m, snap.Campus})
	c.poles = newCacheEntry(polesResponse{m, snap.Poles})
	c.zones = newCacheEntry(zonesResponse{m, snap.Zones})
	c.top = newCacheEntry(topResponse{m, CachedTopK, snap.TopK(CachedTopK)})
	return c
}

// lookup returns the pre-serialized entry for a request, or nil when the
// request must fall through to the encoder path. The /api/top check
// reads RawQuery directly — r.URL.Query() would allocate.
func (c *respCache) lookup(endpoint string, r *http.Request) *cacheEntry {
	switch endpoint {
	case "campus":
		return &c.campus
	case "poles":
		return &c.poles
	case "zones":
		return &c.zones
	case "top":
		if q := r.URL.RawQuery; q == "" || q == "k=10" {
			return &c.top
		}
	}
	return nil
}

// serveCached answers a request from the cache: shared header value
// slices are assigned directly into the header map (no per-request
// allocation), If-None-Match against the snapshot ETag short-circuits
// to an empty 304, and hits write the immutable body with its
// precomputed Content-Length.
func serveCached(w http.ResponseWriter, r *http.Request, c *respCache, e *cacheEntry) int {
	h := w.Header()
	h["Etag"] = c.etagHdr
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == c.etag {
		w.WriteHeader(http.StatusNotModified)
		return http.StatusNotModified
	}
	h["Content-Type"] = headerContentType
	h["Content-Length"] = e.clen
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.body)
	return http.StatusOK
}
