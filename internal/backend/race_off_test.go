//go:build !race

package backend

// raceEnabled reports whether the race detector is instrumenting this
// test binary, so the cached-serve allocation gate skips itself under
// -race (shadow memory makes every header write allocate).
const raceEnabled = false
