// History endpoints: the query surface over the FTDC-style time-series
// store (internal/tsdb). Unlike the snapshot-served endpoints, history
// reads decode immutable sealed chunks plus a brief copy of one series'
// hot tail — they still never touch a registry shard lock, so the
// zero-shard-lock read-path contract holds with history enabled.
package backend

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"hawccc/internal/tsdb"
	"hawccc/internal/wire"
)

// DefaultHistoryWindow is the query window when neither window nor
// from/to is given.
const DefaultHistoryWindow = 5 * time.Minute

// DefaultHistoryLimit caps the samples or buckets one query returns when
// no limit parameter is given; the newest are kept when it truncates.
const DefaultHistoryLimit = 10000

// poleHist is the per-pole history-series handle set, created on first
// sight of a pole and cached in its registry entry (exactly like
// poleObs) so the report path does no store lookups. A nil *poleHist —
// history disabled — makes every capture a no-op.
type poleHist struct {
	count    *tsdb.Series
	clusters *tsdb.Series
	latency  *tsdb.Series
	poleTemp *tsdb.Series
	ambient  *tsdb.Series
	// batch is the owning registry shard's append batch: captures are
	// buffered here (under the shard lock the ingest callback already
	// holds) and drained into the store by the history loop, so the
	// report path never pays the store's own locking per message.
	batch *histShardBatch
}

// newPoleHist creates the pole's history series; nil without a store.
func (s *Server) newPoleHist(id uint32) *poleHist {
	if s.hist == nil {
		return nil
	}
	return &poleHist{
		count:    s.hist.Series(id, "count"),
		clusters: s.hist.Series(id, "clusters"),
		latency:  s.hist.Series(id, "edge_latency_us"),
		poleTemp: s.hist.Series(id, "pole_temp_c"),
		ambient:  s.hist.Series(id, "ambient_c"),
		batch:    &s.histBatches[s.reg.shardIndex(id)],
	}
}

// histRec is one deferred store append: the series handle was resolved
// at capture time, so draining is a straight Series.Append per record.
type histRec struct {
	sr *tsdb.Series
	ts int64
	v  float64
}

// histBatchMax caps one shard's buffered records between drains; at the
// cap the full slice is shelved and a recycled (or fresh) one takes
// over, so a stalled drain loop degrades to allocation, never loss.
const histBatchMax = 1 << 16

// histShardBatch buffers one registry shard's pending appends. recs and
// full are mutated only under the owning shard's mutex; spare is the
// drain loop's recycled buffer, handed back under the same lock
// (double-buffering: steady state alternates two slices, no allocation).
type histShardBatch struct {
	recs  []histRec
	full  [][]histRec
	spare []histRec
}

// add buffers one append. Caller holds the owning shard's mutex.
func (b *histShardBatch) add(sr *tsdb.Series, ts int64, v float64) {
	b.recs = append(b.recs, histRec{sr: sr, ts: ts, v: v})
	if len(b.recs) >= histBatchMax {
		b.full = append(b.full, b.recs)
		b.recs = b.spare[:0]
		b.spare = nil
	}
}

// FlushHistory drains every shard's buffered history appends into the
// store and returns the records written. Per-series order is preserved
// (records drain in capture order). The history loop calls this each
// tick; Close and SampleHistory call it so sealed chunks and test reads
// see every capture. Safe for concurrent callers.
func (s *Server) FlushHistory() int {
	if s.histBatches == nil {
		return 0
	}
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	n := 0
	for i := range s.histBatches {
		b := &s.histBatches[i]
		sh := &s.reg.shards[i]
		s.reg.lockAcquisitions.Add(1)
		sh.mu.Lock()
		recs, full := b.recs, b.full
		b.recs, b.full, b.spare = b.spare[:0], nil, nil
		sh.mu.Unlock()
		if len(recs) == 0 && full == nil {
			// Nothing drained: keep the larger buffer as the spare.
			sh.mu.Lock()
			if cap(recs) > cap(b.spare) {
				b.spare = recs[:0]
			}
			sh.mu.Unlock()
			continue
		}
		// Append outside the shard lock: the store has its own per-series
		// locking, and ingest may keep filling the fresh buffer meanwhile.
		for _, shelf := range full {
			for _, rec := range shelf {
				rec.sr.Append(rec.ts, rec.v)
			}
			n += len(shelf)
		}
		for _, rec := range recs {
			rec.sr.Append(rec.ts, rec.v)
		}
		n += len(recs)
		// Recycle the drained buffer as the shard's spare.
		sh.mu.Lock()
		if cap(recs) > cap(b.spare) {
			b.spare = recs[:0]
		}
		sh.mu.Unlock()
	}
	return n
}

// historyLoop is the backend-owned capture tick: drain the per-shard
// report batches, then (with a registry) take one obs sampler pass.
// Runs until shutdown, with a final drain so no buffered capture is
// dropped before Close seals the store.
func (s *Server) historyLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.loopCtx.Done():
			s.FlushHistory()
			return
		case <-t.C:
			s.FlushHistory()
			if s.sampler != nil {
				s.sampler.SampleOnce()
			}
		}
	}
}

// histTS picks the history timestamp for a wire message: the pole's own
// timestamp when it set one, receive time otherwise.
func histTS(t time.Time) int64 {
	if t.IsZero() {
		return time.Now().UnixNano()
	}
	return t.UnixNano()
}

func (h *poleHist) recordCount(r wire.CountReport) {
	if h == nil {
		return
	}
	ts := histTS(r.Timestamp)
	h.batch.add(h.count, ts, float64(r.Count))
	h.batch.add(h.clusters, ts, float64(r.Clusters))
	h.batch.add(h.latency, ts, float64(r.LatencyUS))
}

func (h *poleHist) recordTelemetry(t wire.Telemetry) {
	if h == nil {
		return
	}
	ts := histTS(t.Timestamp)
	h.batch.add(h.poleTemp, ts, t.PoleTemp)
	h.batch.add(h.ambient, ts, t.Ambient)
}

// History returns the backing time-series store, or nil when
// Config.History was not set.
func (s *Server) History() *tsdb.Store { return s.hist }

// SampleHistory captures one history tick deterministically: the
// buffered report batches drain into the store, then (when Obs is set)
// one sampler pass captures every instrument. It returns the records
// written. Tests use it with HistorySampleInterval < 0; it returns 0
// when history is disabled. Do not call concurrently with a running
// history loop (the sampler is single-caller).
func (s *Server) SampleHistory() int {
	n := s.FlushHistory()
	if s.sampler != nil {
		n += s.sampler.SampleOnce()
	}
	return n
}

// jsonF64 marshals a float64 exactly (shortest round-trip formatting, so
// decoding reproduces the identical bit pattern) while mapping NaN and
// ±Inf — which JSON cannot carry — to null.
type jsonF64 float64

func (f jsonF64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

func (f *jsonF64) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonF64(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = jsonF64(v)
	return nil
}

// HistorySample is the JSON form of one raw sample.
type HistorySample struct {
	T int64   `json:"t"` // unix nanoseconds
	V jsonF64 `json:"v"`
}

// HistoryBucket is the JSON form of one downsampled bucket.
type HistoryBucket struct {
	T     int64   `json:"t"` // bucket start, unix nanoseconds
	Count int     `json:"count"`
	Min   jsonF64 `json:"min"`
	Max   jsonF64 `json:"max"`
	Mean  jsonF64 `json:"mean"`
	Last  jsonF64 `json:"last"`
}

// HistoryResponse is the body of GET /api/history.
type HistoryResponse struct {
	Pole    uint32          `json:"pole"`
	Series  string          `json:"series"`
	Res     string          `json:"res"` // "raw" or the bucket step
	From    int64           `json:"from"`
	To      int64           `json:"to"`
	Total   int             `json:"total"` // matches before the limit cut
	Count   int             `json:"count"` // returned
	Samples []HistorySample `json:"samples,omitempty"`
	Buckets []HistoryBucket `json:"buckets,omitempty"`
}

// HistoryBatchResponse is the body of GET /api/history when more than
// one series= parameter is given: one HistoryResponse per requested
// series, sharing the window, resolution, and limit. A single series=
// keeps the flat HistoryResponse shape for compatibility.
type HistoryBatchResponse struct {
	Pole   uint32            `json:"pole"`
	Res    string            `json:"res"`
	From   int64             `json:"from"`
	To     int64             `json:"to"`
	Series []HistoryResponse `json:"series"`
}

// HistorySeriesResponse is the body of GET /api/history/series.
type HistorySeriesResponse struct {
	Pole   uint32            `json:"pole"`
	Series []tsdb.SeriesMeta `json:"series"`
}

// historyWindow resolves the [from, to] query range: explicit from/to
// (unix nanoseconds) win, else now-window..now (window a duration,
// DefaultHistoryWindow when absent).
func historyWindow(r *http.Request) (from, to int64, err error) {
	q := r.URL.Query()
	if fs, ts := q.Get("from"), q.Get("to"); fs != "" || ts != "" {
		if fs == "" || ts == "" {
			return 0, 0, fmt.Errorf("from and to must be given together (unix nanoseconds)")
		}
		from, err = strconv.ParseInt(fs, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("from must be unix nanoseconds")
		}
		to, err = strconv.ParseInt(ts, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("to must be unix nanoseconds")
		}
		if to < from {
			return 0, 0, fmt.Errorf("to must not precede from")
		}
		return from, to, nil
	}
	window := DefaultHistoryWindow
	if ws := q.Get("window"); ws != "" {
		window, err = time.ParseDuration(ws)
		if err != nil || window <= 0 {
			return 0, 0, fmt.Errorf("window must be a positive duration")
		}
	}
	now := time.Now().UnixNano()
	return now - int64(window), now, nil
}

// handleHistory serves GET /api/history?pole=ID&series=NAME with either
// res=raw (default; bit-identical samples) or res=<duration> (min / max /
// mean / last buckets of that width, aligned to from). Repeating the
// series parameter batches several reads of the same pole and window
// into one request (HistoryBatchResponse); like the single-series form,
// the batch path reads only immutable sealed chunks plus brief hot-tail
// copies and never takes a registry shard lock.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request, _ *Snapshot) (int, any) {
	if s.hist == nil {
		return http.StatusNotFound, apiError{Error: "history capture is not enabled"}
	}
	q := r.URL.Query()
	poleID, err := strconv.ParseUint(q.Get("pole"), 10, 32)
	if err != nil {
		return http.StatusBadRequest, apiError{Error: "pole must be a uint32"}
	}
	names := q["series"]
	if len(names) == 0 || (len(names) == 1 && names[0] == "") {
		return http.StatusBadRequest, apiError{Error: "series is required"}
	}
	from, to, err := historyWindow(r)
	if err != nil {
		return http.StatusBadRequest, apiError{Error: err.Error()}
	}
	limit := DefaultHistoryLimit
	if ls := q.Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 1 {
			return http.StatusBadRequest, apiError{Error: "limit must be a positive integer"}
		}
	}
	res := q.Get("res")
	var step time.Duration
	if res == "" || res == "raw" {
		res = "raw"
	} else {
		step, err = time.ParseDuration(res)
		if err != nil || step <= 0 {
			return http.StatusBadRequest, apiError{Error: "res must be \"raw\" or a positive duration"}
		}
	}

	if len(names) == 1 {
		return s.queryHistory(uint32(poleID), names[0], from, to, limit, res, step)
	}
	batch := HistoryBatchResponse{
		Pole:   uint32(poleID),
		Res:    res,
		From:   from,
		To:     to,
		Series: make([]HistoryResponse, 0, len(names)),
	}
	for _, name := range names {
		code, body := s.queryHistory(uint32(poleID), name, from, to, limit, res, step)
		if code != http.StatusOK {
			return code, body
		}
		batch.Series = append(batch.Series, body.(HistoryResponse))
	}
	return http.StatusOK, batch
}

// queryHistory runs one series' read and shapes the response; shared by
// the single-series and batch forms of /api/history.
func (s *Server) queryHistory(poleID uint32, name string, from, to int64, limit int, res string, step time.Duration) (int, any) {
	sr, ok := s.hist.Lookup(uint32(poleID), name)
	if !ok {
		return http.StatusNotFound, apiError{Error: fmt.Sprintf("no history series %q for pole %d", name, poleID)}
	}
	resp := HistoryResponse{Pole: uint32(poleID), Series: name, Res: res, From: from, To: to}
	if step == 0 {
		raw, err := sr.QueryRaw(from, to)
		if err != nil {
			return http.StatusInternalServerError, apiError{Error: err.Error()}
		}
		resp.Total = len(raw)
		if len(raw) > limit {
			raw = raw[len(raw)-limit:] // keep the newest
		}
		resp.Count = len(raw)
		resp.Samples = make([]HistorySample, len(raw))
		for i, smp := range raw {
			resp.Samples[i] = HistorySample{T: smp.TS, V: jsonF64(smp.V)}
		}
		return http.StatusOK, resp
	}
	buckets, err := sr.QueryBuckets(from, to, int64(step))
	if err != nil {
		return http.StatusInternalServerError, apiError{Error: err.Error()}
	}
	resp.Total = len(buckets)
	if len(buckets) > limit {
		buckets = buckets[len(buckets)-limit:]
	}
	resp.Count = len(buckets)
	resp.Buckets = make([]HistoryBucket, len(buckets))
	for i, b := range buckets {
		resp.Buckets[i] = HistoryBucket{
			T:     b.TS,
			Count: b.Count,
			Min:   jsonF64(b.Min),
			Max:   jsonF64(b.Max),
			Mean:  jsonF64(b.Mean),
			Last:  jsonF64(b.Last),
		}
	}
	return http.StatusOK, resp
}

// handleHistorySeries serves GET /api/history/series?pole=ID — the
// pole's captured series sorted by name.
func (s *Server) handleHistorySeries(w http.ResponseWriter, r *http.Request, _ *Snapshot) (int, any) {
	if s.hist == nil {
		return http.StatusNotFound, apiError{Error: "history capture is not enabled"}
	}
	poleID, err := strconv.ParseUint(r.URL.Query().Get("pole"), 10, 32)
	if err != nil {
		return http.StatusBadRequest, apiError{Error: "pole must be a uint32"}
	}
	return http.StatusOK, HistorySeriesResponse{
		Pole:   uint32(poleID),
		Series: s.hist.PoleSeries(uint32(poleID)),
	}
}
