package backend

import (
	"strings"
	"testing"

	"hawccc/internal/geom"
	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

// versionedStub is extentStub with an advertised classifier version, so
// skew tests can pit a backend build against poles running different
// weights.
type versionedStub struct {
	extentStub
	v uint32
}

func (s versionedStub) ModelVersion() uint32 { return s.v }

// TestModelVersionSkewDetection pins satellite behavior for classifier
// version skew: a pole whose hello advertises different weights than the
// backend runs is flagged once (alert log + counter), its version lands
// in the snapshot, and an offload batch carrying the skewed version is
// rejected so the pole falls back to local classification rather than
// receiving labels from foreign weights.
func TestModelVersionSkewDetection(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Listen(Config{Addr: "127.0.0.1:0", Classifier: versionedStub{v: 7}, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A matching pole: no alert, version recorded.
	okConn := dialBackend(t, s)
	if err := okConn.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 1, Location: "in sync", ModelVersion: 7})); err != nil {
		t.Fatal(err)
	}
	// A skewed pole: hello alone must raise the flag.
	skewConn := dialBackend(t, s)
	if err := skewConn.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 2, Location: "stale weights", ModelVersion: 9})); err != nil {
		t.Fatal(err)
	}
	// Hellos are fire-and-forget; fence both with an acked report.
	for id, c := range map[uint32]*wire.Conn{1: okConn, 2: skewConn} {
		if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(wire.CountReport{PoleID: id, Seq: 1})); err != nil {
			t.Fatal(err)
		}
		if typ, _, err := c.Recv(); err != nil || typ != wire.MsgAck {
			t.Fatalf("report fence: type=%d err=%v", typ, err)
		}
	}

	total, alerts := s.recentAlerts(10)
	if total != 1 || len(alerts) != 1 {
		t.Fatalf("alerts = %d (total %d), want exactly 1 skew alert", len(alerts), total)
	}
	a := alerts[0]
	if a.PoleID != 2 || a.Kind != wire.AlertModelSkew || !strings.Contains(a.Message, "9") {
		t.Errorf("skew alert = %+v", a)
	}
	if got := reg.Counter("backend_alerts_total", "", obs.L("kind", "model_skew")).Value(); got != 1 {
		t.Errorf("model_skew alert counter = %d, want 1", got)
	}

	// The advertised versions surface in the snapshot.
	for _, p := range s.Snapshot() {
		want := map[uint32]uint32{1: 7, 2: 9}[p.PoleID]
		if p.ModelVersion != want {
			t.Errorf("pole %d snapshot ModelVersion = %#x, want %#x", p.PoleID, p.ModelVersion, want)
		}
	}

	// Re-announcing the same skew must not flood the alert log.
	if err := skewConn.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 2, Location: "stale weights", ModelVersion: 9})); err != nil {
		t.Fatal(err)
	}
	if err := skewConn.Send(wire.MsgCountReport, wire.EncodeCountReport(wire.CountReport{PoleID: 2, Seq: 2})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := skewConn.Recv(); err != nil || typ != wire.MsgAck {
		t.Fatalf("second fence: type=%d err=%v", typ, err)
	}
	if total, _ := s.recentAlerts(10); total != 1 {
		t.Errorf("repeated skewed hello raised %d alerts, want the original 1", total)
	}

	// An offload batch carrying the skewed version is refused: the
	// connection drops (the pole's designed local-fallback trigger) and
	// the rejection counter increments.
	batch := wire.BuildClusterBatch(2, 3, []geom.Cloud{{{X: 1, Y: 1, Z: 1}}}, 0)
	batch.ModelVersion = 9
	if err := skewConn.Send(wire.MsgClusterBatch, wire.EncodeClusterBatch(batch)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := skewConn.Recv(); err == nil {
		t.Fatal("skewed offload batch was answered; want the connection dropped")
	}
	if got := reg.Counter("backend_offload_version_skew_total", "").Value(); got != 1 {
		t.Errorf("version skew rejections = %d, want 1", got)
	}

	// A matching batch still classifies.
	batch = wire.BuildClusterBatch(1, 3, []geom.Cloud{{{X: 1, Y: 1, Z: 1}}}, 0)
	batch.ModelVersion = 7
	if err := okConn.Send(wire.MsgClusterBatch, wire.EncodeClusterBatch(batch)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := okConn.Recv(); err != nil || typ != wire.MsgClassifyResult {
		t.Fatalf("matching-version batch: type=%d err=%v, want classify result", typ, err)
	}
}
