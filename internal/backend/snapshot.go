package backend

import (
	"sort"
	"time"
)

// ZoneStats aggregates the poles of one campus zone within a snapshot.
type ZoneStats struct {
	Zone       string `json:"zone"`
	Poles      int    `json:"poles"`
	Count      int    `json:"count"`       // sum of the zone's most recent per-pole counts
	PeakCount  int    `json:"peak_count"`  // highest single-report count any pole in the zone has seen
	Reports    int64  `json:"reports"`     // reports received from the zone since start
	TotalCount int64  `json:"total_count"` // sum of every count ever reported by the zone
	Alerts     int    `json:"alerts"`
}

// CampusStats is the campus-wide rollup of a snapshot.
type CampusStats struct {
	Poles      int   `json:"poles"`
	Zones      int   `json:"zones"`
	Count      int   `json:"count"` // current campus-wide crowd count
	PeakCount  int   `json:"peak_count"`
	Reports    int64 `json:"reports"`
	TotalCount int64 `json:"total_count"`
	Alerts     int   `json:"alerts"`
}

// Snapshot is an immutable, internally consistent view of the whole
// campus, rebuilt periodically from the sharded registry. Everything the
// query API serves comes from the current snapshot — a reader holds no
// lock, so an arbitrarily slow dashboard scrape can never stall the
// report ingest path. Campus and zone rollups are computed from the
// captured per-pole rows, so within one snapshot the totals always equal
// the sum of their parts (no torn reads across shards).
type Snapshot struct {
	// Seq increments on every rebuild; BuiltAt is the rebuild time.
	Seq     uint64      `json:"seq"`
	BuiltAt time.Time   `json:"built_at"`
	Campus  CampusStats `json:"campus"`
	// Poles is sorted by pole ID; Zones by zone name.
	Poles []PoleStats `json:"poles"`
	Zones []ZoneStats `json:"zones"`

	byID    map[uint32]int
	byZone  map[string]int
	busiest []int // indices into Poles, by LastCount desc then ID asc

	// cache holds the pre-serialized hot-endpoint bodies for THIS
	// snapshot (respcache.go). Riding inside the snapshot, it is
	// published by the same atomic store — body and ETag can never come
	// from different builds. Always non-nil on a published snapshot.
	cache *respCache
}

// newSnapshot derives the indexes and rollups from the collected pole
// rows. poles must already be the caller's private copy; the snapshot
// owns it afterwards.
func newSnapshot(seq uint64, builtAt time.Time, poles []PoleStats) *Snapshot {
	sort.Slice(poles, func(i, j int) bool { return poles[i].PoleID < poles[j].PoleID })
	s := &Snapshot{
		Seq:     seq,
		BuiltAt: builtAt,
		Poles:   poles,
		byID:    make(map[uint32]int, len(poles)),
		byZone:  make(map[string]int),
	}
	for i, p := range poles {
		s.byID[p.PoleID] = i
		zi, ok := s.byZone[p.Zone]
		if !ok {
			zi = len(s.Zones)
			s.byZone[p.Zone] = zi
			s.Zones = append(s.Zones, ZoneStats{Zone: p.Zone})
		}
		z := &s.Zones[zi]
		z.Poles++
		z.Count += p.LastCount
		z.Reports += int64(p.Reports)
		z.TotalCount += p.TotalCount
		z.Alerts += p.Alerts
		if p.PeakCount > z.PeakCount {
			z.PeakCount = p.PeakCount
		}
	}
	sort.Slice(s.Zones, func(i, j int) bool { return s.Zones[i].Zone < s.Zones[j].Zone })
	for i, z := range s.Zones {
		s.byZone[z.Zone] = i
	}
	for _, z := range s.Zones {
		s.Campus.Count += z.Count
		s.Campus.Reports += z.Reports
		s.Campus.TotalCount += z.TotalCount
		s.Campus.Alerts += z.Alerts
		if z.PeakCount > s.Campus.PeakCount {
			s.Campus.PeakCount = z.PeakCount
		}
	}
	s.Campus.Poles = len(poles)
	s.Campus.Zones = len(s.Zones)
	s.busiest = make([]int, len(poles))
	for i := range s.busiest {
		s.busiest[i] = i
	}
	sort.Slice(s.busiest, func(i, j int) bool {
		a, b := &poles[s.busiest[i]], &poles[s.busiest[j]]
		if a.LastCount != b.LastCount {
			return a.LastCount > b.LastCount
		}
		return a.PoleID < b.PoleID
	})
	// Pre-serialize the hot endpoint bodies once, before publication:
	// the rebuild-amortized cost that makes every cached request free.
	s.cache = buildRespCache(s)
	return s
}

// Pole returns one pole's aggregates from the snapshot.
func (s *Snapshot) Pole(id uint32) (PoleStats, bool) {
	i, ok := s.byID[id]
	if !ok {
		return PoleStats{}, false
	}
	return s.Poles[i], true
}

// Zone returns one zone's rollup from the snapshot.
func (s *Snapshot) Zone(name string) (ZoneStats, bool) {
	i, ok := s.byZone[name]
	if !ok {
		return ZoneStats{}, false
	}
	return s.Zones[i], true
}

// ZonePoles returns the snapshot's poles belonging to the zone, by ID.
func (s *Snapshot) ZonePoles(name string) []PoleStats {
	var out []PoleStats
	for _, p := range s.Poles {
		if p.Zone == name {
			out = append(out, p)
		}
	}
	return out
}

// TopK returns the k busiest poles by most recent count (ties broken by
// pole ID), fewer if the campus has fewer poles.
func (s *Snapshot) TopK(k int) []PoleStats {
	if k > len(s.busiest) {
		k = len(s.busiest)
	}
	if k <= 0 {
		return nil
	}
	out := make([]PoleStats, k)
	for i := 0; i < k; i++ {
		out[i] = s.Poles[s.busiest[i]]
	}
	return out
}

// DefaultSnapshotInterval is the cadence of the background snapshot
// rebuild when Config.SnapshotInterval is zero. It bounds how stale the
// query API may read — 50ms is far below human dashboard latency while
// keeping rebuild cost negligible even at 10k poles.
const DefaultSnapshotInterval = 50 * time.Millisecond

// Current returns the latest published snapshot without taking any
// lock: one atomic pointer load. This is the read path behind every
// query API endpoint and is safe to call at arbitrary rates.
func (s *Server) Current() *Snapshot { return s.snap.Load() }

// RebuildSnapshot collects live shard state into a fresh snapshot,
// publishes it, and returns it. The background loop calls this on its
// tick when reports have arrived; tests and end-of-run reporting call it
// directly for an up-to-the-call view. Builders serialize among
// themselves but never block Current readers.
func (s *Server) RebuildSnapshot() *Snapshot {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	writes := s.reg.writes.Load()
	poles := s.reg.collect(make([]PoleStats, 0, len(s.Current().Poles)+16))
	s.buildSeq++
	snap := newSnapshot(s.buildSeq, time.Now(), poles)
	s.snap.Store(snap)
	s.lastBuildWrites.Store(writes)
	s.m.snapshotBuilds.Inc()
	s.m.snapshotPoles.Set(float64(len(snap.Poles)))
	s.m.snapshotBuilt.SetTime(snap.BuiltAt)
	return snap
}

// snapshotLoop republishes the campus snapshot on the configured
// interval — but only when reports have actually arrived since the last
// build, so an idle backend goes quiescent.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.loopCtx.Done():
			return
		case <-t.C:
			if s.reg.writes.Load() != s.lastBuildWrites.Load() {
				s.RebuildSnapshot()
			}
		}
	}
}
