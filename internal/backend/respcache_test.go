package backend

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"hawccc/internal/wire"
)

// cacheablePaths are the requests the response cache answers from
// pre-serialized bodies (the default-k /api/top both with and without
// the explicit parameter).
var cacheablePaths = []string{"/api/campus", "/api/poles", "/api/zones", "/api/top", "/api/top?k=10"}

// TestCachedBodiesBitIdentical is the correctness contract of the
// tentpole: for every cacheable request, the pre-serialized body must be
// byte-for-byte what the fall-through encoder path produces for the same
// snapshot. Anything less and a dashboard's parse behavior would depend
// on which path answered.
func TestCachedBodiesBitIdentical(t *testing.T) {
	s := newAPITestServer(t)
	h := s.APIHandler()

	for _, path := range cacheablePaths {
		cached := httptest.NewRecorder()
		h.ServeHTTP(cached, httptest.NewRequest("GET", path, nil))
		s.SetResponseCache(false)
		direct := httptest.NewRecorder()
		h.ServeHTTP(direct, httptest.NewRequest("GET", path, nil))
		s.SetResponseCache(true)

		if cached.Code != http.StatusOK || direct.Code != http.StatusOK {
			t.Fatalf("%s: status cached=%d direct=%d", path, cached.Code, direct.Code)
		}
		if cached.Body.String() != direct.Body.String() {
			t.Errorf("%s: cached body differs from encoder path\ncached: %q\ndirect: %q",
				path, cached.Body.String(), direct.Body.String())
		}
		if got := cached.Header().Get("Content-Length"); got != strconv.Itoa(cached.Body.Len()) {
			t.Errorf("%s: cached Content-Length %q, body is %d bytes", path, got, cached.Body.Len())
		}
		if got := direct.Header().Get("Content-Length"); got != strconv.Itoa(direct.Body.Len()) {
			t.Errorf("%s: direct Content-Length %q, body is %d bytes", path, got, direct.Body.Len())
		}
		if cached.Header().Get("ETag") == "" {
			t.Errorf("%s: cached response carries no ETag", path)
		}
	}

	// An uncommon k falls through: still a correct answer, but unkeyed.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/top?k=3", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("ETag") != "" {
		t.Errorf("top k=3: status %d etag %q, want 200 with no ETag", rec.Code, rec.Header().Get("ETag"))
	}
}

// TestAPIETagConditionalRequests pins the revalidation scheme: the ETag
// is the quoted snapshot sequence, a matching If-None-Match answers 304
// with an empty body, and a rebuild invalidates outstanding validators.
func TestAPIETagConditionalRequests(t *testing.T) {
	s := newAPITestServer(t)
	h := s.APIHandler()

	first := httptest.NewRecorder()
	h.ServeHTTP(first, httptest.NewRequest("GET", "/api/campus", nil))
	etag := first.Header().Get("ETag")
	var body struct {
		SnapshotSeq uint64 `json:"snapshot_seq"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if want := `"` + strconv.FormatUint(body.SnapshotSeq, 10) + `"`; etag != want {
		t.Fatalf("ETag %q, want quoted snapshot seq %q", etag, want)
	}

	cond := httptest.NewRequest("GET", "/api/campus", nil)
	cond.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, cond)
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("matching If-None-Match: status %d with %d body bytes, want empty 304", rec.Code, rec.Body.Len())
	}
	if rec.Header().Get("ETag") != etag {
		t.Errorf("304 carries ETag %q, want %q", rec.Header().Get("ETag"), etag)
	}

	// A rebuild bumps the sequence; the stale validator must get a full
	// 200 with the new ETag.
	s.recordCount(wire.CountReport{PoleID: 1, Seq: 2, Count: 30})
	s.RebuildSnapshot()
	cond = httptest.NewRequest("GET", "/api/campus", nil)
	cond.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, cond)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("stale If-None-Match after rebuild: status %d, want full 200", rec.Code)
	}
	if got := rec.Header().Get("ETag"); got == etag || got == "" {
		t.Errorf("post-rebuild ETag %q did not advance past %q", got, etag)
	}
}

// nullRW is a header-preserving no-op ResponseWriter for the allocation
// gate: its header map is allocated once and reused, matching what
// net/http gives a handler at steady state (the server pools header
// maps per connection).
type nullRW struct {
	h      http.Header
	status int
}

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullRW) WriteHeader(status int)      { w.status = status }

// TestCachedServeZeroAllocs is the tentpole's allocation gate: answering
// a cacheable request from the pre-serialized body — and answering a
// conditional revalidation with 304 — allocates nothing per request.
func TestCachedServeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector shadow memory allocates; gate runs in non-race CI job")
	}
	s := newAPITestServer(t)
	handler := s.api("campus", s.handleCampus)

	w := &nullRW{h: make(http.Header)}
	req := httptest.NewRequest("GET", "/api/campus", nil)
	handler(w, req) // warm the header map
	if w.status != http.StatusOK {
		t.Fatalf("warm-up status %d", w.status)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		handler(w, req)
	}); allocs != 0 {
		t.Errorf("cached serve allocated %.2f objects/request, want 0", allocs)
	}

	cond := httptest.NewRequest("GET", "/api/campus", nil)
	cond.Header.Set("If-None-Match", s.Current().cache.etag)
	handler(w, cond)
	if w.status != http.StatusNotModified {
		t.Fatalf("conditional warm-up status %d", w.status)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		handler(w, cond)
	}); allocs != 0 {
		t.Errorf("304 revalidation allocated %.2f objects/request, want 0", allocs)
	}
}

// TestSnapshotCacheConsistentUnderRebuild hammers the query API from
// reader goroutines while a writer rebuilds snapshots, asserting every
// response is internally consistent: its ETag always names the snapshot
// sequence inside its body, and a conditional hit never pairs a 304 with
// a body. Run under -race this also proves the pre-serialized cache is
// published atomically with its snapshot.
func TestSnapshotCacheConsistentUnderRebuild(t *testing.T) {
	s := newAPITestServer(t)
	h := s.APIHandler()

	const rebuilds = 200
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < rebuilds; i++ {
			s.recordCount(wire.CountReport{PoleID: 3, Seq: uint64(i + 2), Count: uint32(i)})
			s.RebuildSnapshot()
		}
	}()

	readErr := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := cacheablePaths[g%len(cacheablePaths)]
			lastETag := ""
			for !done.Load() {
				req := httptest.NewRequest("GET", path, nil)
				if lastETag != "" && g%2 == 0 {
					req.Header.Set("If-None-Match", lastETag)
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				etag := rec.Header().Get("ETag")
				switch rec.Code {
				case http.StatusNotModified:
					if rec.Body.Len() != 0 {
						readErr <- fmt.Errorf("%s: 304 with %d body bytes", path, rec.Body.Len())
						return
					}
				case http.StatusOK:
					var body struct {
						SnapshotSeq uint64 `json:"snapshot_seq"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
						readErr <- fmt.Errorf("%s: torn body: %v", path, err)
						return
					}
					if want := `"` + strconv.FormatUint(body.SnapshotSeq, 10) + `"`; etag != want {
						readErr <- fmt.Errorf("%s: ETag %s paired with body from snapshot %d", path, etag, body.SnapshotSeq)
						return
					}
				default:
					readErr <- fmt.Errorf("%s: status %d", path, rec.Code)
					return
				}
				lastETag = etag
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
}
