// Package backend implements the private campus cloud of Figure 1: a TCP
// server that receives crowd-count reports and compartment telemetry from
// the smart blue light poles, keeps per-pole aggregates, and raises alerts
// on unusual crowding (the safety scenario the paper's introduction
// motivates) and on compartment overheating (Section VII-D).
package backend

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"hawccc/internal/wire"
)

// Config parameterizes the backend.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// CrowdingLimit raises AlertCrowding when a single report's count
	// meets or exceeds it (0 disables).
	CrowdingLimit int
	// OverheatLimit raises AlertOverheat when a telemetry reading meets
	// or exceeds it in °C (0 disables). The Coral Dev Board is rated to
	// 50 °C.
	OverheatLimit float64
	// Logf, if non-nil, receives diagnostic output.
	Logf func(format string, args ...any)
}

// PoleStats aggregates one pole's reports.
type PoleStats struct {
	PoleID     uint32
	Location   string
	Reports    int
	LastCount  int
	TotalCount int64
	PeakCount  int
	LastSeen   time.Time
	LastTemp   float64
	MaxTemp    float64
	Alerts     int
}

// Server is the campus backend.
type Server struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	poles  map[uint32]*PoleStats
	alerts []wire.Alert

	wg       sync.WaitGroup
	shutdown context.CancelFunc
	done     chan struct{}
}

// Listen starts the backend on cfg.Addr.
func Listen(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		poles:    make(map[uint32]*PoleStats),
		shutdown: cancel,
		done:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop(ctx)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes all connections, and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.shutdown()
	err := s.ln.Close()
	s.wg.Wait()
	close(s.done)
	return err
}

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// Close the connection when either the handler finishes or
			// the server shuts down.
			stop := context.AfterFunc(ctx, func() { conn.Close() })
			defer stop()
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("backend: connection from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (s *Server) handle(conn net.Conn) error {
	wc := wire.NewConn(conn)
	var poleID uint32
	for {
		t, body, err := wc.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch t {
		case wire.MsgHello:
			h, err := wire.DecodeHello(body)
			if err != nil {
				return err
			}
			poleID = h.PoleID
			s.withPole(h.PoleID, func(p *PoleStats) {
				p.Location = h.Location
				p.LastSeen = time.Now()
			})
			s.cfg.Logf("backend: pole %d (%s) connected", h.PoleID, h.Location)
		case wire.MsgCountReport:
			r, err := wire.DecodeCountReport(body)
			if err != nil {
				return err
			}
			s.recordCount(r)
			if err := wc.Send(wire.MsgAck, wire.EncodeAck(wire.Ack{Seq: r.Seq})); err != nil {
				return err
			}
			if s.cfg.CrowdingLimit > 0 && int(r.Count) >= s.cfg.CrowdingLimit {
				if err := s.alert(wc, wire.Alert{
					PoleID:  r.PoleID,
					Kind:    wire.AlertCrowding,
					Message: fmt.Sprintf("count %d at pole %d exceeds limit %d", r.Count, r.PoleID, s.cfg.CrowdingLimit),
				}); err != nil {
					return err
				}
			}
		case wire.MsgTelemetry:
			tm, err := wire.DecodeTelemetry(body)
			if err != nil {
				return err
			}
			s.recordTelemetry(tm)
			if s.cfg.OverheatLimit > 0 && tm.PoleTemp >= s.cfg.OverheatLimit {
				if err := s.alert(wc, wire.Alert{
					PoleID:  tm.PoleID,
					Kind:    wire.AlertOverheat,
					Message: fmt.Sprintf("pole %d compartment at %.1f°C exceeds rated %.1f°C", tm.PoleID, tm.PoleTemp, s.cfg.OverheatLimit),
				}); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("backend: unexpected message type %d from pole %d", t, poleID)
		}
	}
}

func (s *Server) alert(wc *wire.Conn, a wire.Alert) error {
	s.mu.Lock()
	s.alerts = append(s.alerts, a)
	if p, ok := s.poles[a.PoleID]; ok {
		p.Alerts++
	}
	s.mu.Unlock()
	s.cfg.Logf("backend: ALERT %s", a.Message)
	return wc.Send(wire.MsgAlert, wire.EncodeAlert(a))
}

func (s *Server) withPole(id uint32, f func(*PoleStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.poles[id]
	if !ok {
		p = &PoleStats{PoleID: id}
		s.poles[id] = p
	}
	f(p)
}

func (s *Server) recordCount(r wire.CountReport) {
	s.withPole(r.PoleID, func(p *PoleStats) {
		p.Reports++
		p.LastCount = int(r.Count)
		p.TotalCount += int64(r.Count)
		if int(r.Count) > p.PeakCount {
			p.PeakCount = int(r.Count)
		}
		p.LastSeen = time.Now()
	})
}

func (s *Server) recordTelemetry(t wire.Telemetry) {
	s.withPole(t.PoleID, func(p *PoleStats) {
		p.LastTemp = t.PoleTemp
		if t.PoleTemp > p.MaxTemp {
			p.MaxTemp = t.PoleTemp
		}
		p.LastSeen = time.Now()
	})
}

// Snapshot returns per-pole aggregates sorted by pole id.
func (s *Server) Snapshot() []PoleStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PoleStats, 0, len(s.poles))
	for _, p := range s.poles {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PoleID < out[j].PoleID })
	return out
}

// Alerts returns a copy of all raised alerts in order.
func (s *Server) Alerts() []wire.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.Alert(nil), s.alerts...)
}

// CampusCount returns the most recent total count across all poles.
func (s *Server) CampusCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, p := range s.poles {
		total += p.LastCount
	}
	return total
}
