// Package backend implements the private campus cloud of Figure 1: a TCP
// server that receives crowd-count reports and compartment telemetry from
// the smart blue light poles, keeps per-pole aggregates, and raises alerts
// on unusual crowding (the safety scenario the paper's introduction
// motivates) and on compartment overheating (Section VII-D).
//
// State is held in a sharded pole registry (registry.go): pole IDs hash
// to one of N independently locked shards, so report streams from a
// 10k-pole fleet contend only when two poles collide on a shard. Reads
// never touch the shards — a background loop periodically collects the
// registry into an immutable campus Snapshot (snapshot.go) published
// through one atomic pointer, and the HTTP/JSON query API (api.go)
// answers every dashboard request from that snapshot alone.
package backend

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hawccc/internal/models"
	"hawccc/internal/obs"
	"hawccc/internal/tsdb"
	"hawccc/internal/wire"
)

// Config parameterizes the backend.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// APIAddr, when non-empty, serves the HTTP/JSON campus query API on
	// this address (see APIHandler for the endpoints). Empty leaves the
	// API unbound; APIHandler can still be mounted on an external mux.
	APIAddr string
	// Shards is the pole-registry shard count, rounded up to a power of
	// two (0 selects DefaultShards).
	Shards int
	// SnapshotInterval is the cadence of the background snapshot rebuild
	// serving the query API. 0 selects DefaultSnapshotInterval; negative
	// disables the background loop entirely (snapshots then rebuild only
	// through RebuildSnapshot, which tests use for determinism).
	SnapshotInterval time.Duration
	// CrowdingLimit raises AlertCrowding when a single report's count
	// meets or exceeds it (0 disables).
	CrowdingLimit int
	// OverheatLimit raises AlertOverheat when a telemetry reading meets
	// or exceeds it in °C (0 disables). The Coral Dev Board is rated to
	// 50 °C.
	OverheatLimit float64
	// AlertLogCap bounds the in-memory alert log: once full, raising a
	// new alert evicts the oldest retained one. 0 selects
	// DefaultAlertLogCap.
	AlertLogCap int
	// History, when non-nil, enables the FTDC-style time-series capture
	// (internal/tsdb): every count report and telemetry reading is
	// appended to per-pole history series at its wire timestamp, and the
	// /api/history endpoints serve raw and downsampled reads over them.
	// The pointed-to Config selects the store's sharding, chunking,
	// retention, and optional disk-backed segments.
	History *tsdb.Config
	// HistorySampleInterval is the cadence of the background sampler that
	// captures every Obs instrument into the history store (0 selects
	// tsdb.DefaultSampleInterval). Negative disables the background loop;
	// tests then drive capture deterministically through SampleHistory.
	// Ignored unless both History and Obs are set.
	HistorySampleInterval time.Duration
	// Classifier, when non-nil, enables the classify offload service:
	// MsgClusterBatch frames from poles are dequantized, coalesced
	// across poles into GEMM-sized batches, classified, and answered
	// with per-cluster labels (see offload.go). Nil treats an offloaded
	// batch as a protocol error, which makes the sending pole fall back
	// to local classification.
	Classifier models.BatchClassifier
	// OffloadWorkers sizes the offload worker pool (0 selects
	// runtime.NumCPU()).
	OffloadWorkers int
	// OffloadQueue bounds the offload batch queue (0 selects
	// DefaultOffloadQueue).
	OffloadQueue int
	// OffloadMaxBatch caps the clusters coalesced into one forward pass
	// (0 selects DefaultOffloadMaxBatch).
	OffloadMaxBatch int
	// DisableResponseCache starts the server with the pre-serialized
	// response cache bypassed: every API request takes the pooled
	// per-request-encode path. Benchmarks toggle this (SetResponseCache)
	// to measure the cached path against its baseline; production keeps
	// the cache on.
	DisableResponseCache bool
	// Obs, when non-nil, registers the backend's metrics: per-pole report
	// and alert counters, last-seen timestamps, compartment temperature,
	// connection counts, wire traffic, the edge latency each report
	// carries, snapshot rebuild counters, and query API counters.
	Obs *obs.Registry
	// Logf, if non-nil, receives diagnostic output; defaults to a no-op.
	// The server serializes calls, so handlers for concurrent pole
	// connections never interleave writes into a shared sink.
	Logf func(format string, args ...any)
}

// PoleStats aggregates one pole's reports.
type PoleStats struct {
	PoleID     uint32    `json:"pole_id"`
	Location   string    `json:"location"`
	Zone       string    `json:"zone"`
	Reports    int       `json:"reports"`
	LastCount  int       `json:"last_count"`
	TotalCount int64     `json:"total_count"`
	PeakCount  int       `json:"peak_count"`
	LastSeen   time.Time `json:"last_seen"`
	LastTemp   float64   `json:"last_temp"`
	MaxTemp    float64   `json:"max_temp"`
	Alerts     int       `json:"alerts"`
	// ModelVersion is the classifier fingerprint the pole announced in
	// its hello (0 = unversioned). When it differs from the backend's
	// own model, the pole's offload batches are rejected (model skew).
	ModelVersion uint32 `json:"model_version,omitempty"`
}

// backendObs is the server-wide instrument set; nil fields (no registry)
// make every update a no-op.
type backendObs struct {
	connsActive    *obs.Gauge
	connsTotal     *obs.Counter
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter
	msgsIn         *obs.Counter
	msgsOut        *obs.Counter
	crowding       *obs.Counter
	overheat       *obs.Counter
	modelSkew      *obs.Counter
	versionSkew    *obs.Counter
	edgeLatency    *obs.Histogram
	snapshotBuilds *obs.Counter
	snapshotPoles  *obs.Gauge
	snapshotBuilt  *obs.Gauge
}

// poleObs is the per-pole instrument set, created when a pole is first
// seen and cached in its registry entry so the report path does no
// registry lookups.
type poleObs struct {
	reports  *obs.Counter
	alerts   *obs.Counter
	lastSeen *obs.Gauge
	lastNum  *obs.Gauge
	tempC    *obs.Gauge
}

// Server is the campus backend.
type Server struct {
	cfg  Config
	ln   net.Listener
	m    backendObs
	apiM apiObs

	logMu sync.Mutex

	// reg is the sharded write-path state; snap the read-path view.
	reg  *registry
	snap atomic.Pointer[Snapshot]
	// buildMu serializes snapshot builders; buildSeq is owned by it.
	buildMu         sync.Mutex
	buildSeq        uint64
	lastBuildWrites atomic.Uint64

	alog alertLog

	// cacheOff bypasses the snapshot response cache when set
	// (Config.DisableResponseCache / SetResponseCache).
	cacheOff atomic.Bool

	// modelVersion fingerprints the backend's own classifier weights
	// (0 when Classifier is nil or unversioned); offload batches carrying
	// a different nonzero version are rejected. skewAlerted dedupes the
	// model-skew alert per pole so a retrying pole cannot flood the log.
	modelVersion uint32
	skewMu       sync.Mutex
	skewAlerted  map[uint32]bool

	// hist is the FTDC-style history store (nil when Config.History is
	// nil); sampler captures Obs instruments into it on a background tick.
	hist    *tsdb.Store
	sampler *tsdb.Sampler
	// histBatches defers per-report tsdb appends off the shard-locked
	// ingest callback: one batch per registry shard, mutated only under
	// that shard's lock and drained by the history loop (history.go).
	// flushMu serializes drains.
	histBatches []histShardBatch
	flushMu     sync.Mutex

	// off is the classify offload service (nil when Config.Classifier is
	// nil).
	off *offloadService

	apiLn  net.Listener
	apiSrv *http.Server

	wg       sync.WaitGroup
	loopCtx  context.Context
	shutdown context.CancelFunc
	done     chan struct{}
}

// Listen starts the backend on cfg.Addr.
func Listen(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		reg:      newRegistry(cfg.Shards),
		loopCtx:  ctx,
		shutdown: cancel,
		done:     make(chan struct{}),
	}
	s.snap.Store(newSnapshot(0, time.Now(), nil))
	s.alog.init(cfg.AlertLogCap)
	s.cacheOff.Store(cfg.DisableResponseCache)
	s.skewAlerted = make(map[uint32]bool)
	if cfg.Classifier != nil {
		if v, ok := cfg.Classifier.(interface{ ModelVersion() uint32 }); ok {
			s.modelVersion = v.ModelVersion()
		}
	}
	if cfg.History != nil {
		st, err := tsdb.New(*cfg.History)
		if err != nil {
			cancel()
			ln.Close()
			return nil, err
		}
		s.hist = st
		s.histBatches = make([]histShardBatch, len(s.reg.shards))
		if cfg.Obs != nil {
			s.sampler = tsdb.NewSampler(st, cfg.Obs, tsdb.SamplerConfig{Interval: cfg.HistorySampleInterval})
		}
		// One loop owns both capture duties: drain the per-shard report
		// batches into the store and (with a registry) take one sampler
		// tick. Negative disables it; tests drive SampleHistory directly.
		if cfg.HistorySampleInterval >= 0 {
			interval := cfg.HistorySampleInterval
			if interval == 0 {
				interval = tsdb.DefaultSampleInterval
			}
			s.wg.Add(1)
			go s.historyLoop(interval)
		}
	}
	if reg := cfg.Obs; reg != nil {
		s.m = backendObs{
			connsActive:    reg.Gauge("backend_connections_active", "pole connections currently open"),
			connsTotal:     reg.Counter("backend_connections_total", "pole connections accepted since start"),
			bytesIn:        reg.Counter("backend_wire_bytes_received_total", "framed bytes received from poles"),
			bytesOut:       reg.Counter("backend_wire_bytes_sent_total", "framed bytes sent to poles"),
			msgsIn:         reg.Counter("backend_wire_messages_received_total", "framed messages received from poles"),
			msgsOut:        reg.Counter("backend_wire_messages_sent_total", "framed messages sent to poles"),
			crowding:       reg.Counter("backend_alerts_total", "alerts raised, by kind", obs.L("kind", "crowding")),
			overheat:       reg.Counter("backend_alerts_total", "alerts raised, by kind", obs.L("kind", "overheat")),
			modelSkew:      reg.Counter("backend_alerts_total", "alerts raised, by kind", obs.L("kind", "model_skew")),
			versionSkew:    reg.Counter("backend_offload_version_skew_total", "offload cluster batches rejected for classifier version skew"),
			edgeLatency:    reg.Histogram("backend_report_edge_latency_seconds", "per-frame edge processing latency carried by count reports", obs.LatencyBuckets()),
			snapshotBuilds: reg.Counter("backend_snapshot_builds_total", "campus snapshots rebuilt from the sharded registry"),
			snapshotPoles:  reg.Gauge("backend_snapshot_poles", "poles in the current campus snapshot"),
			snapshotBuilt:  reg.Gauge("backend_snapshot_built_timestamp_seconds", "unix time the current campus snapshot was built"),
		}
	}
	s.apiM = newAPIObs(cfg.Obs)
	if cfg.Classifier != nil {
		s.off = newOffloadService(s)
	}
	interval := cfg.SnapshotInterval
	if interval == 0 {
		interval = DefaultSnapshotInterval
	}
	if interval > 0 {
		s.wg.Add(1)
		go s.snapshotLoop(interval)
	}
	if cfg.APIAddr != "" {
		if err := s.serveAPI(cfg.APIAddr); err != nil {
			cancel()
			ln.Close()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop(ctx)
	return s, nil
}

// logf serializes diagnostic output across handler goroutines.
func (s *Server) logf(format string, args ...any) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.cfg.Logf(format, args...)
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes all connections and the query API, and
// waits for handler goroutines to exit.
func (s *Server) Close() error {
	s.shutdown()
	err := s.ln.Close()
	if s.apiSrv != nil {
		s.apiSrv.Close()
	}
	s.wg.Wait()
	if s.hist != nil {
		// Drain any report batches the stopped history loop left behind
		// (handlers have exited by now, so nothing refills them), seal the
		// hot tails so disk segments carry every captured sample, then
		// flush the segment writer. The store itself stays readable.
		s.FlushHistory()
		s.hist.SealAll()
		if cerr := s.hist.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	close(s.done)
	return err
}

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		s.m.connsTotal.Inc()
		s.m.connsActive.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.m.connsActive.Add(-1)
			// Close the connection when either the handler finishes or
			// the server shuts down.
			stop := context.AfterFunc(ctx, func() { conn.Close() })
			defer stop()
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, net.ErrClosed) {
				s.logf("backend: connection from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (s *Server) handle(conn net.Conn) error {
	wc := wire.NewConn(conn)
	wc.Instrument(s.m.bytesOut, s.m.bytesIn, s.m.msgsOut, s.m.msgsIn)
	// All writes go through a per-connection lock: offload workers reply
	// on the same connection the handler acks and alerts on.
	lw := &lockedConn{wc: wc}
	var poleID uint32
	for {
		t, body, err := wc.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch t {
		case wire.MsgHello:
			h, err := wire.DecodeHello(body)
			if err != nil {
				return err
			}
			poleID = h.PoleID
			s.withPole(h.PoleID, func(p *PoleStats, m *poleObs, _ *poleHist) {
				p.Location = h.Location
				p.Zone = h.Zone
				if h.ModelVersion != 0 {
					p.ModelVersion = h.ModelVersion
				}
				p.LastSeen = time.Now()
				m.lastSeen.SetTime(p.LastSeen)
			})
			s.logf("backend: pole %d (%s) connected", h.PoleID, h.Location)
			s.checkModelSkew(h.PoleID, h.ModelVersion)
		case wire.MsgCountReport:
			r, err := wire.DecodeCountReport(body)
			if err != nil {
				return err
			}
			s.recordCount(r)
			if err := lw.send(wire.MsgAck, wire.EncodeAck(wire.Ack{Seq: r.Seq})); err != nil {
				return err
			}
			if s.cfg.CrowdingLimit > 0 && int(r.Count) >= s.cfg.CrowdingLimit {
				if err := s.alert(lw, wire.Alert{
					PoleID:  r.PoleID,
					Kind:    wire.AlertCrowding,
					Message: fmt.Sprintf("count %d at pole %d meets or exceeds limit %d", r.Count, r.PoleID, s.cfg.CrowdingLimit),
				}); err != nil {
					return err
				}
			}
		case wire.MsgTelemetry:
			tm, err := wire.DecodeTelemetry(body)
			if err != nil {
				return err
			}
			s.recordTelemetry(tm)
			if s.cfg.OverheatLimit > 0 && tm.PoleTemp >= s.cfg.OverheatLimit {
				if err := s.alert(lw, wire.Alert{
					PoleID:  tm.PoleID,
					Kind:    wire.AlertOverheat,
					Message: fmt.Sprintf("pole %d compartment at %.1f°C meets or exceeds rated %.1f°C", tm.PoleID, tm.PoleTemp, s.cfg.OverheatLimit),
				}); err != nil {
					return err
				}
			}
		case wire.MsgClusterBatch:
			if err := s.handleClusterBatch(body, lw); err != nil {
				return err
			}
		default:
			return fmt.Errorf("backend: unexpected message type %d from pole %d", t, poleID)
		}
	}
}

func (s *Server) alert(wc *lockedConn, a wire.Alert) error {
	s.alertLocal(a)
	return wc.send(wire.MsgAlert, wire.EncodeAlert(a))
}

// alertLocal records an alert in the log and the pole's counters without
// notifying the pole on the wire — for conditions detected on
// connections whose protocol carries no alert frames (the offload
// channel tolerates only classify results) or that need no pole-side
// action.
func (s *Server) alertLocal(a wire.Alert) {
	s.alog.add(a)
	s.withPole(a.PoleID, func(p *PoleStats, m *poleObs, _ *poleHist) {
		p.Alerts++
		m.alerts.Inc()
	})
	switch a.Kind {
	case wire.AlertCrowding:
		s.m.crowding.Inc()
	case wire.AlertOverheat:
		s.m.overheat.Inc()
	case wire.AlertModelSkew:
		s.m.modelSkew.Inc()
	}
	s.logf("backend: ALERT %s", a.Message)
}

// checkModelSkew compares a pole-announced classifier version against
// the backend's own and raises one AlertModelSkew per pole on mismatch.
// Zero on either side means unversioned and is never flagged, so
// synthetic fleets and classifier-less backends stay silent.
func (s *Server) checkModelSkew(poleID, poleVersion uint32) {
	if poleVersion == 0 || s.modelVersion == 0 || poleVersion == s.modelVersion {
		return
	}
	s.skewMu.Lock()
	seen := s.skewAlerted[poleID]
	s.skewAlerted[poleID] = true
	s.skewMu.Unlock()
	if seen {
		return
	}
	s.alertLocal(wire.Alert{
		PoleID:  poleID,
		Kind:    wire.AlertModelSkew,
		Message: fmt.Sprintf("pole %d classifier version %#x does not match backend %#x; offloaded batches are rejected", poleID, poleVersion, s.modelVersion),
	})
}

// withPole runs f with the pole's aggregate record, instrument set, and
// history handles under the owning shard's lock, creating them on first
// sight of the pole.
func (s *Server) withPole(id uint32, f func(*PoleStats, *poleObs, *poleHist)) {
	s.reg.withPole(id, s.newPoleObs, s.newPoleHist, f)
}

// newPoleObs creates the per-pole instruments; all nil without a registry.
func (s *Server) newPoleObs(id uint32) *poleObs {
	reg := s.cfg.Obs
	if reg == nil {
		return &poleObs{}
	}
	l := obs.L("pole", strconv.FormatUint(uint64(id), 10))
	return &poleObs{
		reports:  reg.Counter("backend_reports_total", "count reports received, by pole", l),
		alerts:   reg.Counter("backend_pole_alerts_total", "alerts raised, by pole", l),
		lastSeen: reg.Gauge("backend_pole_last_seen_timestamp_seconds", "unix time the pole last reported", l),
		lastNum:  reg.Gauge("backend_pole_last_count", "most recent crowd count reported by the pole", l),
		tempC:    reg.Gauge("backend_pole_temp_celsius", "most recent compartment temperature reported by the pole", l),
	}
}

func (s *Server) recordCount(r wire.CountReport) {
	s.m.edgeLatency.Observe(float64(r.LatencyUS) / 1e6)
	s.withPole(r.PoleID, func(p *PoleStats, m *poleObs, h *poleHist) {
		p.Reports++
		p.LastCount = int(r.Count)
		p.TotalCount += int64(r.Count)
		if int(r.Count) > p.PeakCount {
			p.PeakCount = int(r.Count)
		}
		p.LastSeen = time.Now()
		m.reports.Inc()
		m.lastNum.Set(float64(r.Count))
		m.lastSeen.SetTime(p.LastSeen)
		h.recordCount(r)
	})
}

func (s *Server) recordTelemetry(t wire.Telemetry) {
	s.withPole(t.PoleID, func(p *PoleStats, m *poleObs, h *poleHist) {
		p.LastTemp = t.PoleTemp
		if t.PoleTemp > p.MaxTemp {
			p.MaxTemp = t.PoleTemp
		}
		p.LastSeen = time.Now()
		m.tempC.Set(t.PoleTemp)
		m.lastSeen.SetTime(p.LastSeen)
		h.recordTelemetry(t)
	})
}

// Snapshot returns fresh per-pole aggregates sorted by pole id: it
// forces a rebuild and returns the new snapshot's rows. Scrape-style
// consumers that must never touch shard locks should read Current()
// instead and accept the configured staleness bound.
func (s *Server) Snapshot() []PoleStats {
	return append([]PoleStats(nil), s.RebuildSnapshot().Poles...)
}

// Alerts returns a copy of the retained alerts in raise order. The log
// is a bounded ring (Config.AlertLogCap): once more alerts have been
// raised than it holds, the oldest are no longer returned.
func (s *Server) Alerts() []wire.Alert {
	_, out := s.alog.recent(-1)
	return out
}

// CampusCount returns the most recent total count across all poles
// (forcing a snapshot rebuild, like Snapshot).
func (s *Server) CampusCount() int {
	return s.RebuildSnapshot().Campus.Count
}
