// The campus query API: an HTTP/JSON surface over the backend's
// immutable snapshots for dashboards and safety staff — how crowded is
// it, where? Every endpoint reads the current snapshot with a single
// atomic load and serves from that private copy, so heavy read traffic
// (thousands of QPS of dashboard polling) contends with the report
// ingest path on nothing at all: zero shard-lock acquisitions on the
// read path, pinned by test. The hot parameterless endpoints serve
// pre-serialized bodies straight from the snapshot's response cache
// (respcache.go) with zero per-request allocations; parameterized
// requests fall through to a pooled-encoder path that reuses
// buffer+encoder pairs instead of building a fresh json.Encoder per
// request.
package backend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

// apiObs instruments the query API; nil fields make updates no-ops.
type apiObs struct {
	requests map[string]*obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
	// Response-cache outcome counters, over the cacheable endpoints
	// only: hit = served a pre-serialized body, notModified = answered
	// 304 from the ETag check, miss = fell through to the encoder path
	// (uncommon parameter or cache disabled).
	cacheHit, cacheMiss, cacheNotModified *obs.Counter
}

// apiEndpoints is the label set under backend_api_requests_total.
var apiEndpoints = []string{"campus", "poles", "pole", "zones", "zone", "top", "alerts", "history", "history_series"}

// cacheableEndpoints marks the endpoints the response cache can answer;
// only these count toward the cache hit/miss series.
var cacheableEndpoints = map[string]bool{"campus": true, "poles": true, "zones": true, "top": true}

func newAPIObs(reg *obs.Registry) apiObs {
	m := apiObs{requests: make(map[string]*obs.Counter, len(apiEndpoints))}
	if reg == nil {
		return m
	}
	for _, ep := range apiEndpoints {
		m.requests[ep] = reg.Counter("backend_api_requests_total", "query API requests served, by endpoint", obs.L("endpoint", ep))
	}
	m.errors = reg.Counter("backend_api_errors_total", "query API requests answered with a non-2xx status")
	m.latency = reg.Histogram("backend_api_request_seconds", "query API request handling latency", obs.LatencyBuckets())
	const cacheHelp = "response cache outcomes on cacheable endpoints, by result"
	m.cacheHit = reg.Counter("backend_api_cache_total", cacheHelp, obs.L("result", "hit"))
	m.cacheMiss = reg.Counter("backend_api_cache_total", cacheHelp, obs.L("result", "miss"))
	m.cacheNotModified = reg.Counter("backend_api_cache_total", cacheHelp, obs.L("result", "not_modified"))
	return m
}

// snapshotMeta stamps every response with the snapshot it was served
// from, so a dashboard can detect staleness (age = now − built_at) and
// correlate pages. It carries nothing request-dependent: the same
// snapshot always serializes to the same bytes, which is what lets the
// response cache serve pre-serialized bodies bit-identical to the
// encoder path (and what makes snapshot_seq usable as the ETag).
type snapshotMeta struct {
	SnapshotSeq uint64    `json:"snapshot_seq"`
	BuiltAt     time.Time `json:"built_at"`
}

func meta(snap *Snapshot) snapshotMeta {
	return snapshotMeta{SnapshotSeq: snap.Seq, BuiltAt: snap.BuiltAt}
}

// The endpoint response bodies. Named (rather than inline literals in
// the handlers) so the response cache pre-serializes the very same
// types the fall-through path encodes.
type campusResponse struct {
	snapshotMeta
	Campus CampusStats `json:"campus"`
}

type polesResponse struct {
	snapshotMeta
	Poles []PoleStats `json:"poles"`
}

type poleResponse struct {
	snapshotMeta
	Pole PoleStats `json:"pole"`
}

type zonesResponse struct {
	snapshotMeta
	Zones []ZoneStats `json:"zones"`
}

type zoneResponse struct {
	snapshotMeta
	Zone  ZoneStats   `json:"zone"`
	Poles []PoleStats `json:"poles"`
}

type topResponse struct {
	snapshotMeta
	K     int         `json:"k"`
	Poles []PoleStats `json:"poles"`
}

type alertsResponse struct {
	snapshotMeta
	Total  int          `json:"total"`
	Alerts []wire.Alert `json:"alerts"`
}

// APIHandler returns the campus query API:
//
//	GET /api/campus        campus-wide rollup
//	GET /api/poles         every pole's aggregates (by pole ID)
//	GET /api/poles/{id}    one pole
//	GET /api/zones         per-zone rollups (by zone name)
//	GET /api/zones/{zone}  one zone's rollup plus its poles
//	GET /api/top?k=N       the N busiest poles by current count (default 10)
//	GET /api/alerts?limit=N  the most recent alerts (default 100)
//	GET /api/history?pole=ID&series=NAME&res=raw|DUR  raw or downsampled
//	       history reads over the FTDC-style store (history.go; 404
//	       unless Config.History enables capture)
//	GET /api/history/series?pole=ID  the pole's captured series
//
// The snapshot endpoints are served entirely from the current snapshot
// — the parameterless ones (campus, poles, zones, top with the default
// k) from its pre-serialized response cache, with an ETag of the quoted
// snapshot sequence and If-None-Match answered 304. The history
// endpoints decode immutable sealed chunks plus one series' hot tail.
// Neither may touch a registry shard lock (the only other lock is the
// alert log's own mutex, for the /api/alerts copy).
func (s *Server) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/campus", s.api("campus", s.handleCampus))
	mux.HandleFunc("GET /api/poles", s.api("poles", s.handlePoles))
	mux.HandleFunc("GET /api/poles/{id}", s.api("pole", s.handlePole))
	mux.HandleFunc("GET /api/zones", s.api("zones", s.handleZones))
	mux.HandleFunc("GET /api/zones/{zone}", s.api("zone", s.handleZone))
	mux.HandleFunc("GET /api/top", s.api("top", s.handleTop))
	mux.HandleFunc("GET /api/alerts", s.api("alerts", s.handleAlerts))
	mux.HandleFunc("GET /api/history", s.api("history", s.handleHistory))
	mux.HandleFunc("GET /api/history/series", s.api("history_series", s.handleHistorySeries))
	return mux
}

func (s *Server) handleCampus(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
	return http.StatusOK, campusResponse{meta(snap), snap.Campus}
}

func (s *Server) handlePoles(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
	return http.StatusOK, polesResponse{meta(snap), snap.Poles}
}

func (s *Server) handlePole(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		return http.StatusBadRequest, apiError{Error: "pole id must be a uint32"}
	}
	p, ok := snap.Pole(uint32(id))
	if !ok {
		return http.StatusNotFound, apiError{Error: fmt.Sprintf("pole %d not in snapshot", id)}
	}
	return http.StatusOK, poleResponse{meta(snap), p}
}

func (s *Server) handleZones(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
	return http.StatusOK, zonesResponse{meta(snap), snap.Zones}
}

func (s *Server) handleZone(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
	name := r.PathValue("zone")
	z, ok := snap.Zone(name)
	if !ok {
		return http.StatusNotFound, apiError{Error: fmt.Sprintf("zone %q not in snapshot", name)}
	}
	return http.StatusOK, zoneResponse{meta(snap), z, snap.ZonePoles(name)}
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
	k := CachedTopK
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return http.StatusBadRequest, apiError{Error: "k must be a positive integer"}
		}
		k = n
	}
	return http.StatusOK, topResponse{meta(snap), k, snap.TopK(k)}
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return http.StatusBadRequest, apiError{Error: "limit must be a positive integer"}
		}
		limit = n
	}
	total, alerts := s.recentAlerts(limit)
	return http.StatusOK, alertsResponse{meta(snap), total, alerts}
}

// apiError is the JSON body of a non-2xx answer.
type apiError struct {
	Error string `json:"error"`
}

// apiEncoder is a pooled buffer+encoder pair for the fall-through path:
// reused across requests so serving a parameterized endpoint costs no
// fresh json.Encoder or buffer growth at steady state.
type apiEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &apiEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

// writeJSON serializes body through a pooled encoder, then writes it
// with an explicit Content-Length. The encoder configuration matches
// encodeBody exactly, keeping fall-through bodies bit-identical to
// their cached counterparts.
func writeJSON(w http.ResponseWriter, status int, body any) {
	e := encPool.Get().(*apiEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(body); err != nil {
		encPool.Put(e)
		http.Error(w, `{"error":"response serialization failed"}`, http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h["Content-Type"] = headerContentType
	h.Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes())
	encPool.Put(e)
}

// api wraps an endpoint with snapshot resolution, response-cache
// dispatch, JSON serialization, and instrumentation. One atomic load
// yields the snapshot AND its pre-serialized cache, so a cached answer
// can never pair a body with another snapshot's ETag.
func (s *Server) api(endpoint string, h func(http.ResponseWriter, *http.Request, *Snapshot) (int, any)) http.HandlerFunc {
	cacheable := cacheableEndpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		snap := s.Current()
		var status int
		var entry *cacheEntry
		if cacheable && !s.cacheOff.Load() {
			entry = snap.cache.lookup(endpoint, r)
		}
		if entry != nil {
			status = serveCached(w, r, snap.cache, entry)
			if status == http.StatusNotModified {
				s.apiM.cacheNotModified.Inc()
			} else {
				s.apiM.cacheHit.Inc()
			}
		} else {
			if cacheable {
				s.apiM.cacheMiss.Inc()
			}
			var body any
			status, body = h(w, r, snap)
			writeJSON(w, status, body)
		}
		s.apiM.requests[endpoint].Inc()
		if status >= 300 && status != http.StatusNotModified {
			s.apiM.errors.Inc()
		}
		s.apiM.latency.ObserveDuration(time.Since(t0))
	}
}

// SetResponseCache enables or disables serving from the pre-serialized
// response cache at runtime. Disabled, every request takes the
// fall-through encoder path — the per-request-encode baseline the
// ApiBench experiment measures cached throughput against. (Bodies are
// bit-identical either way; only the serving cost changes.)
func (s *Server) SetResponseCache(enabled bool) { s.cacheOff.Store(!enabled) }

// recentAlerts copies the newest limit alerts (and the lifetime total,
// including entries the bounded ring has evicted) out of the alert log
// under its own mutex — never a shard lock.
func (s *Server) recentAlerts(limit int) (int, []wire.Alert) {
	return s.alog.recent(limit)
}

// serveAPI binds addr and serves the query API on it until Close.
func (s *Server) serveAPI(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("backend: api listener: %w", err)
	}
	s.apiLn = ln
	s.apiSrv = &http.Server{Handler: s.APIHandler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.apiSrv.Serve(ln)
	}()
	return nil
}

// APIAddr returns the bound query API address, or "" when the API was
// not configured.
func (s *Server) APIAddr() string {
	if s.apiLn == nil {
		return ""
	}
	return s.apiLn.Addr().String()
}
