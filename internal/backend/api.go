// The campus query API: an HTTP/JSON surface over the backend's
// immutable snapshots for dashboards and safety staff — how crowded is
// it, where? Every endpoint reads the current snapshot with a single
// atomic load and serializes from that private copy, so heavy read
// traffic (thousands of QPS of dashboard polling) contends with the
// report ingest path on nothing at all: zero shard-lock acquisitions on
// the read path, pinned by test.
package backend

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

// apiObs instruments the query API; nil fields make updates no-ops.
type apiObs struct {
	requests map[string]*obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// apiEndpoints is the label set under backend_api_requests_total.
var apiEndpoints = []string{"campus", "poles", "pole", "zones", "zone", "top", "alerts", "history", "history_series"}

func newAPIObs(reg *obs.Registry) apiObs {
	m := apiObs{requests: make(map[string]*obs.Counter, len(apiEndpoints))}
	if reg == nil {
		return m
	}
	for _, ep := range apiEndpoints {
		m.requests[ep] = reg.Counter("backend_api_requests_total", "query API requests served, by endpoint", obs.L("endpoint", ep))
	}
	m.errors = reg.Counter("backend_api_errors_total", "query API requests answered with a non-2xx status")
	m.latency = reg.Histogram("backend_api_request_seconds", "query API request handling latency", obs.LatencyBuckets())
	return m
}

// snapshotMeta stamps every response with the snapshot it was served
// from, so a dashboard can detect staleness and correlate pages.
type snapshotMeta struct {
	SnapshotSeq uint64    `json:"snapshot_seq"`
	BuiltAt     time.Time `json:"built_at"`
	AgeMS       float64   `json:"age_ms"`
}

func meta(snap *Snapshot) snapshotMeta {
	return snapshotMeta{
		SnapshotSeq: snap.Seq,
		BuiltAt:     snap.BuiltAt,
		AgeMS:       float64(time.Since(snap.BuiltAt).Microseconds()) / 1e3,
	}
}

// APIHandler returns the campus query API:
//
//	GET /api/campus        campus-wide rollup
//	GET /api/poles         every pole's aggregates (by pole ID)
//	GET /api/poles/{id}    one pole
//	GET /api/zones         per-zone rollups (by zone name)
//	GET /api/zones/{zone}  one zone's rollup plus its poles
//	GET /api/top?k=N       the N busiest poles by current count (default 10)
//	GET /api/alerts?limit=N  the most recent alerts (default 100)
//	GET /api/history?pole=ID&series=NAME&res=raw|DUR  raw or downsampled
//	       history reads over the FTDC-style store (history.go; 404
//	       unless Config.History enables capture)
//	GET /api/history/series?pole=ID  the pole's captured series
//
// The snapshot endpoints are served entirely from the current snapshot;
// the history endpoints decode immutable sealed chunks plus one series'
// hot tail. Neither may touch a registry shard lock (the only other lock
// is the alert log's own mutex, for the /api/alerts copy).
func (s *Server) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/campus", s.api("campus", func(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
		return http.StatusOK, struct {
			snapshotMeta
			Campus CampusStats `json:"campus"`
		}{meta(snap), snap.Campus}
	}))
	mux.HandleFunc("GET /api/poles", s.api("poles", func(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
		return http.StatusOK, struct {
			snapshotMeta
			Poles []PoleStats `json:"poles"`
		}{meta(snap), snap.Poles}
	}))
	mux.HandleFunc("GET /api/poles/{id}", s.api("pole", func(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
		if err != nil {
			return http.StatusBadRequest, apiError{Error: "pole id must be a uint32"}
		}
		p, ok := snap.Pole(uint32(id))
		if !ok {
			return http.StatusNotFound, apiError{Error: fmt.Sprintf("pole %d not in snapshot", id)}
		}
		return http.StatusOK, struct {
			snapshotMeta
			Pole PoleStats `json:"pole"`
		}{meta(snap), p}
	}))
	mux.HandleFunc("GET /api/zones", s.api("zones", func(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
		return http.StatusOK, struct {
			snapshotMeta
			Zones []ZoneStats `json:"zones"`
		}{meta(snap), snap.Zones}
	}))
	mux.HandleFunc("GET /api/zones/{zone}", s.api("zone", func(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
		name := r.PathValue("zone")
		z, ok := snap.Zone(name)
		if !ok {
			return http.StatusNotFound, apiError{Error: fmt.Sprintf("zone %q not in snapshot", name)}
		}
		return http.StatusOK, struct {
			snapshotMeta
			Zone  ZoneStats   `json:"zone"`
			Poles []PoleStats `json:"poles"`
		}{meta(snap), z, snap.ZonePoles(name)}
	}))
	mux.HandleFunc("GET /api/top", s.api("top", func(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
		k := 10
		if v := r.URL.Query().Get("k"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return http.StatusBadRequest, apiError{Error: "k must be a positive integer"}
			}
			k = n
		}
		return http.StatusOK, struct {
			snapshotMeta
			K     int         `json:"k"`
			Poles []PoleStats `json:"poles"`
		}{meta(snap), k, snap.TopK(k)}
	}))
	mux.HandleFunc("GET /api/alerts", s.api("alerts", func(w http.ResponseWriter, r *http.Request, snap *Snapshot) (int, any) {
		limit := 100
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return http.StatusBadRequest, apiError{Error: "limit must be a positive integer"}
			}
			limit = n
		}
		total, alerts := s.recentAlerts(limit)
		return http.StatusOK, struct {
			snapshotMeta
			Total  int          `json:"total"`
			Alerts []wire.Alert `json:"alerts"`
		}{meta(snap), total, alerts}
	}))
	mux.HandleFunc("GET /api/history", s.api("history", s.handleHistory))
	mux.HandleFunc("GET /api/history/series", s.api("history_series", s.handleHistorySeries))
	return mux
}

// apiError is the JSON body of a non-2xx answer.
type apiError struct {
	Error string `json:"error"`
}

// api wraps an endpoint with snapshot resolution, JSON serialization,
// and instrumentation.
func (s *Server) api(endpoint string, h func(http.ResponseWriter, *http.Request, *Snapshot) (int, any)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		status, body := h(w, r, s.Current())
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
		s.apiM.requests[endpoint].Inc()
		if status >= 300 {
			s.apiM.errors.Inc()
		}
		s.apiM.latency.ObserveDuration(time.Since(t0))
	}
}

// recentAlerts copies the newest limit alerts (and the lifetime total,
// including entries the bounded ring has evicted) out of the alert log
// under its own mutex — never a shard lock.
func (s *Server) recentAlerts(limit int) (int, []wire.Alert) {
	return s.alog.recent(limit)
}

// serveAPI binds addr and serves the query API on it until Close.
func (s *Server) serveAPI(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("backend: api listener: %w", err)
	}
	s.apiLn = ln
	s.apiSrv = &http.Server{Handler: s.APIHandler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.apiSrv.Serve(ln)
	}()
	return nil
}

// APIAddr returns the bound query API address, or "" when the API was
// not configured.
func (s *Server) APIAddr() string {
	if s.apiLn == nil {
		return ""
	}
	return s.apiLn.Addr().String()
}
