package backend

import (
	"net"
	"sync"
	"testing"
	"time"

	"hawccc/internal/wire"
)

// noObs is the instrument factory for registry-level tests: all-nil
// instruments, every update a no-op.
func noObs(uint32) *poleObs { return &poleObs{} }

// noHist is its history counterpart: nil handles, no-op capture.
func noHist(uint32) *poleHist { return nil }

// findShardMates scans pole IDs from 2 upward for one that shares pole 1's
// shard and one that does not, so tests can pin both collision behaviors
// regardless of the hash constants.
func findShardMates(t *testing.T, r *registry) (same, other uint32) {
	t.Helper()
	want := r.shardIndex(1)
	for id := uint32(2); id < 1<<16; id++ {
		switch {
		case same == 0 && r.shardIndex(id) == want:
			same = id
		case other == 0 && r.shardIndex(id) != want:
			other = id
		}
		if same != 0 && other != 0 {
			return same, other
		}
	}
	t.Fatal("no shard collision found in 65k IDs")
	return 0, 0
}

func TestShardIndexSpreadsSequentialIDs(t *testing.T) {
	r := newRegistry(0)
	if len(r.shards) != DefaultShards {
		t.Fatalf("default registry has %d shards, want %d", len(r.shards), DefaultShards)
	}
	// Sequential IDs are the common deployment numbering; the finalizer
	// must spread them instead of marching through shards in lockstep.
	hits := make([]int, len(r.shards))
	const n = 10000
	for id := uint32(1); id <= n; id++ {
		hits[r.shardIndex(id)]++
	}
	// Perfectly uniform would be n/shards; any empty shard or a shard with
	// 4x its fair share means the mix is broken.
	fair := n / len(r.shards)
	for i, h := range hits {
		if h == 0 {
			t.Errorf("shard %d got no poles out of %d sequential IDs", i, n)
		}
		if h > 4*fair {
			t.Errorf("shard %d got %d of %d poles (fair share %d)", i, h, n, fair)
		}
	}
}

func TestRegistryRoundsShardsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 128},
	} {
		r := newRegistry(tc.in)
		if len(r.shards) != tc.want {
			t.Errorf("newRegistry(%d): %d shards, want %d", tc.in, len(r.shards), tc.want)
		}
		if int(r.mask)+1 != tc.want {
			t.Errorf("newRegistry(%d): mask %d does not match %d shards", tc.in, r.mask, tc.want)
		}
	}
}

// TestConcurrentReportsSameAndCrossShard hammers three poles — two pinned
// to the same shard, one on a different shard — from concurrent
// goroutines and checks that per-pole aggregates are exact: no lost
// updates under same-shard lock contention, no cross-shard interference.
func TestConcurrentReportsSameAndCrossShard(t *testing.T) {
	r := newRegistry(0)
	mate, stranger := findShardMates(t, r)
	ids := []uint32{1, mate, stranger}

	const (
		workersPerPole = 4
		reportsEach    = 500
	)
	var wg sync.WaitGroup
	for _, id := range ids {
		for w := 0; w < workersPerPole; w++ {
			wg.Add(1)
			go func(id uint32) {
				defer wg.Done()
				for i := 0; i < reportsEach; i++ {
					r.withPole(id, noObs, noHist, func(p *PoleStats, _ *poleObs, _ *poleHist) {
						p.Reports++
						p.LastCount = 3
						p.TotalCount += 3
					})
				}
			}(id)
		}
	}
	wg.Wait()

	if got := r.size(); got != len(ids) {
		t.Fatalf("registry has %d poles, want %d", got, len(ids))
	}
	poles := r.collect(nil)
	want := workersPerPole * reportsEach
	for _, p := range poles {
		if p.Reports != want {
			t.Errorf("pole %d: %d reports, want %d (lost updates)", p.PoleID, p.Reports, want)
		}
		if p.TotalCount != int64(3*want) {
			t.Errorf("pole %d: total %d, want %d", p.PoleID, p.TotalCount, 3*want)
		}
	}
	if wantWrites := uint64(len(ids) * want); r.writes.Load() != wantWrites {
		t.Errorf("write counter %d, want %d", r.writes.Load(), wantWrites)
	}
}

// TestReconnectLandsOnLiveShard drops a pole's connection mid-stream and
// reconnects: the second hello must land on the pole's existing shard
// entry (aggregates keep accumulating, no duplicate pole) while updating
// the mutable identity fields.
func TestReconnectLandsOnLiveShard(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	send := func(c *wire.Conn, count uint32, seq uint64) {
		t.Helper()
		if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(wire.CountReport{
			PoleID: 7, Seq: seq, Timestamp: time.Now(), Count: count,
		})); err != nil {
			t.Fatal(err)
		}
		if typ, _, err := c.Recv(); err != nil || typ != wire.MsgAck {
			t.Fatalf("ack: type %d err %v", typ, err)
		}
	}

	nc1, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c1 := wire.NewConn(nc1)
	if err := c1.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 7, Location: "old-walkway", Zone: "east"})); err != nil {
		t.Fatal(err)
	}
	send(c1, 4, 1)
	nc1.Close()

	// Reconnect as the same pole from a new connection — the deployment
	// case is a pole rebooting or the campus network flapping.
	c2 := dialBackend(t, s)
	if err := c2.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 7, Location: "new-walkway", Zone: "west"})); err != nil {
		t.Fatal(err)
	}
	send(c2, 6, 2)

	snap := s.RebuildSnapshot()
	if snap.Campus.Poles != 1 {
		t.Fatalf("campus has %d poles after reconnect, want 1", snap.Campus.Poles)
	}
	p, ok := snap.Pole(7)
	if !ok {
		t.Fatal("pole 7 missing from snapshot")
	}
	if p.Reports != 2 || p.TotalCount != 10 || p.PeakCount != 6 {
		t.Errorf("aggregates did not survive reconnect: %+v", p)
	}
	if p.Location != "new-walkway" || p.Zone != "west" {
		t.Errorf("identity not updated by second hello: %+v", p)
	}
	if z, ok := snap.Zone("west"); !ok || z.Poles != 1 {
		t.Errorf("zone rollup after reconnect: %+v ok=%v", z, ok)
	}
	if _, ok := snap.Zone("east"); ok {
		t.Error("stale zone still present after reconnect")
	}
}

// TestNoTornCampusTotals rebuilds snapshots concurrently with report
// ingest and checks every snapshot is internally consistent: campus and
// zone rollups must equal the sum of the snapshot's own pole rows, even
// though the underlying shards are being written the whole time.
func TestNoTornCampusTotals(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		poles   = 40
		reports = 200
	)
	for id := uint32(1); id <= poles; id++ {
		s.withPole(id, func(p *PoleStats, _ *poleObs, _ *poleHist) {
			p.Zone = map[uint32]string{0: "north", 1: "south"}[id%2]
		})
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for id := uint32(1); id <= poles; id++ {
		writers.Add(1)
		go func(id uint32) {
			defer writers.Done()
			for i := 0; i < reports; i++ {
				s.recordCount(wire.CountReport{PoleID: id, Seq: uint64(i + 1), Count: uint32(1 + i%5)})
			}
		}(id)
	}

	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.RebuildSnapshot()
			checkSnapshotConsistent(t, snap)
		}
	}()

	writers.Wait()
	close(stop)
	readers.Wait()

	// After the dust settles the totals are fully determined.
	final := s.RebuildSnapshot()
	checkSnapshotConsistent(t, final)
	if final.Campus.Poles != poles {
		t.Errorf("final campus poles %d, want %d", final.Campus.Poles, poles)
	}
	if want := int64(poles * reports); final.Campus.Reports != want {
		t.Errorf("final campus reports %d, want %d (dropped or double-counted)", final.Campus.Reports, want)
	}
}

// checkSnapshotConsistent asserts rollups equal the sum of their parts
// within one snapshot — the "no torn totals" contract.
func checkSnapshotConsistent(t *testing.T, snap *Snapshot) {
	t.Helper()
	var count int
	var reports, total int64
	for _, p := range snap.Poles {
		count += p.LastCount
		reports += int64(p.Reports)
		total += p.TotalCount
	}
	if snap.Campus.Count != count || snap.Campus.Reports != reports || snap.Campus.TotalCount != total {
		t.Fatalf("torn campus totals in snapshot %d: campus %+v, pole sums count=%d reports=%d total=%d",
			snap.Seq, snap.Campus, count, reports, total)
	}
	var zCount int
	var zReports int64
	for _, z := range snap.Zones {
		zCount += z.Count
		zReports += z.Reports
	}
	if len(snap.Zones) > 0 && (zCount != count || zReports != reports) {
		t.Fatalf("torn zone totals in snapshot %d: zone sums count=%d reports=%d, pole sums count=%d reports=%d",
			snap.Seq, zCount, zReports, count, reports)
	}
}
