package backend

import (
	"fmt"
	"testing"

	"hawccc/internal/wire"
)

func logAlert(i int) wire.Alert {
	return wire.Alert{PoleID: uint32(i), Kind: wire.AlertCrowding, Message: fmt.Sprintf("alert %d", i)}
}

func TestAlertLogEviction(t *testing.T) {
	var l alertLog
	l.init(4)

	for i := 0; i < 3; i++ {
		l.add(logAlert(i))
	}
	total, got := l.recent(-1)
	if total != 3 || len(got) != 3 {
		t.Fatalf("before wrap: total %d, retained %d; want 3, 3", total, len(got))
	}

	// Push past capacity: 0 and 1 must be evicted, raise order kept.
	for i := 3; i < 6; i++ {
		l.add(logAlert(i))
	}
	total, got = l.recent(-1)
	if total != 6 {
		t.Fatalf("lifetime total %d, want 6", total)
	}
	if len(got) != 4 {
		t.Fatalf("retained %d alerts, want capacity 4", len(got))
	}
	for i, a := range got {
		if want := uint32(i + 2); a.PoleID != want {
			t.Fatalf("retained[%d] = pole %d, want %d", i, a.PoleID, want)
		}
	}

	// recent(limit) returns the newest limit entries, oldest-first.
	total, got = l.recent(2)
	if total != 6 || len(got) != 2 || got[0].PoleID != 4 || got[1].PoleID != 5 {
		t.Fatalf("recent(2) = total %d, poles %v", total, got)
	}
	// A limit beyond retention returns only what the ring holds.
	if _, got = l.recent(100); len(got) != 4 {
		t.Fatalf("recent(100) retained %d, want 4", len(got))
	}
}

func TestAlertLogDefaultCap(t *testing.T) {
	var l alertLog
	l.init(0)
	if len(l.buf) != DefaultAlertLogCap {
		t.Fatalf("init(0) capacity %d, want DefaultAlertLogCap %d", len(l.buf), DefaultAlertLogCap)
	}
}

func TestServerAlertLogCap(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", SnapshotInterval: -1, AlertLogCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.alog.add(logAlert(i))
	}
	got := s.Alerts()
	if len(got) != 2 || got[0].PoleID != 3 || got[1].PoleID != 4 {
		t.Fatalf("Alerts() after overflow = %v, want poles 3, 4", got)
	}
	if total, _ := s.recentAlerts(-1); total != 5 {
		t.Fatalf("lifetime total %d, want 5", total)
	}
}
