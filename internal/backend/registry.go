package backend

import (
	"sync"
	"sync/atomic"
)

// DefaultShards is the registry shard count when Config.Shards is zero.
// 64 shards keep the probability of two concurrently reporting poles
// colliding on one lock low even at 10k-pole fleets, while the snapshot
// builder still walks the whole registry in microseconds.
const DefaultShards = 64

// registry is the sharded pole-state store behind the backend: pole IDs
// hash to one of N shards, each with its own lock, so concurrent report
// streams from different poles almost never contend. Reads for dashboards
// never touch these locks at all — they are served from the immutable
// snapshots the Server rebuilds periodically (snapshot.go).
type registry struct {
	shards []shard
	mask   uint32

	// writes counts mutations; the snapshot loop rebuilds only when it
	// has advanced, so an idle campus burns no CPU republishing
	// identical snapshots.
	writes atomic.Uint64
	// lockAcquisitions counts every shard-lock acquisition. The query
	// API's contract is that it acquires none; the test suite asserts a
	// zero delta across a read burst.
	lockAcquisitions atomic.Uint64
}

// shard is one lock's worth of pole state.
type shard struct {
	mu    sync.Mutex
	poles map[uint32]*poleEntry
}

// poleEntry pairs a pole's aggregates with its cached instrument set and
// history-series handles so the report path does no registry lookups.
type poleEntry struct {
	stats PoleStats
	obs   *poleObs
	hist  *poleHist
}

// newRegistry builds a registry with n shards, rounded up to a power of
// two so shard selection is a mask, not a modulo.
func newRegistry(n int) *registry {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	r := &registry{shards: make([]shard, size), mask: uint32(size - 1)}
	for i := range r.shards {
		r.shards[i].poles = make(map[uint32]*poleEntry)
	}
	return r
}

// mixPoleID is a 32-bit finalizer (murmur3-style) so sequential pole IDs
// — the common deployment numbering — spread across shards instead of
// marching through them in lockstep.
func mixPoleID(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// shardIndex returns the shard an ID hashes to.
func (r *registry) shardIndex(id uint32) uint32 { return mixPoleID(id) & r.mask }

// withPole runs f with the pole's aggregate record, instrument set, and
// history handles under the owning shard's lock, creating all three on
// first sight. newObs and newHist are only invoked for new poles, inside
// the critical section, so two racing first reports cannot
// double-register instruments or history series.
func (r *registry) withPole(id uint32, newObs func(uint32) *poleObs, newHist func(uint32) *poleHist, f func(*PoleStats, *poleObs, *poleHist)) {
	sh := &r.shards[r.shardIndex(id)]
	r.lockAcquisitions.Add(1)
	sh.mu.Lock()
	e, ok := sh.poles[id]
	if !ok {
		e = &poleEntry{stats: PoleStats{PoleID: id}, obs: newObs(id), hist: newHist(id)}
		sh.poles[id] = e
	}
	f(&e.stats, e.obs, e.hist)
	sh.mu.Unlock()
	r.writes.Add(1)
}

// collect copies every pole's aggregates out of the shards, one shard
// lock at a time. The result is per-pole consistent (each PoleStats is
// copied atomically under its shard lock); cross-shard skew is bounded
// by the walk itself and absorbed by the snapshot model: campus totals
// are then derived from this copy, never from live shard state, so a
// snapshot can lag but can never be torn.
func (r *registry) collect(out []PoleStats) []PoleStats {
	for i := range r.shards {
		sh := &r.shards[i]
		r.lockAcquisitions.Add(1)
		sh.mu.Lock()
		for _, e := range sh.poles {
			out = append(out, e.stats)
		}
		sh.mu.Unlock()
	}
	return out
}

// size returns the registered pole count (takes every shard lock).
func (r *registry) size() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		r.lockAcquisitions.Add(1)
		sh.mu.Lock()
		n += len(sh.poles)
		sh.mu.Unlock()
	}
	return n
}
