package backend

import (
	"sync"

	"hawccc/internal/wire"
)

// DefaultAlertLogCap is the alert log's retained-entry capacity when
// Config.AlertLogCap is zero.
const DefaultAlertLogCap = 1024

// alertLog is a fixed-capacity ring buffer over the most recent alerts.
// The PR 6 backend kept every alert ever raised in a growing slice; a
// campus backend is a long-lived process, so a misconfigured crowding
// limit could grow that log without bound. The ring keeps memory flat:
// once full, each append evicts the oldest entry. A lifetime counter is
// kept alongside so the query API can still report how many alerts were
// raised in total, evicted or not.
type alertLog struct {
	mu    sync.Mutex
	buf   []wire.Alert
	head  int // index of the oldest retained entry
	n     int // retained entries, ≤ cap(buf)
	total int // lifetime alerts raised (monotonic)
}

// init sizes the ring; capacity < 1 selects DefaultAlertLogCap.
func (l *alertLog) init(capacity int) {
	if capacity < 1 {
		capacity = DefaultAlertLogCap
	}
	l.buf = make([]wire.Alert, capacity)
}

// add appends an alert, evicting the oldest entry once the ring is full.
func (l *alertLog) add(a wire.Alert) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if l.n < len(l.buf) {
		l.buf[(l.head+l.n)%len(l.buf)] = a
		l.n++
		return
	}
	l.buf[l.head] = a
	l.head = (l.head + 1) % len(l.buf)
}

// recent returns the newest limit retained alerts in raise order
// (oldest of them first) as a fresh slice, plus the lifetime total.
// limit < 0 returns every retained alert.
func (l *alertLog) recent(limit int) (total int, out []wire.Alert) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if limit >= 0 && limit < n {
		n = limit
	}
	out = make([]wire.Alert, n)
	for i := 0; i < n; i++ {
		// The n newest entries start n slots before the ring's end.
		out[i] = l.buf[(l.head+l.n-n+i)%len(l.buf)]
	}
	return l.total, out
}
