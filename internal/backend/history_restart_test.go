package backend

import (
	"net/http"
	"testing"

	"hawccc/internal/tsdb"
)

// historyDirServer starts a backend whose history store persists to dir
// and warm-starts from it.
func historyDirServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := Listen(Config{
		Addr:             "127.0.0.1:0",
		SnapshotInterval: -1,
		History: &tsdb.Config{
			ChunkSamples: 8,
			Dir:          dir,
			WarmStart:    true,
		},
		HistorySampleInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHistorySurvivesBackendRestart is the warm-start acceptance test:
// reports captured before a restart are served by /api/history after
// it, and post-restart reports extend the same series.
func TestHistorySurvivesBackendRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := historyDirServer(t, dir)
	temps := []float64{20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
	countTS, counts := sendReports(t, s1, temps)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := historyDirServer(t, dir)
	defer s2.Close()
	if loaded := s2.History().Stats().Loaded; loaded == 0 {
		t.Fatal("restarted store loaded nothing from disk")
	}
	var resp HistoryResponse
	if code := get(t, s2.APIHandler(), "/api/history?pole=1&series=count&from=0&to=9223372036854775807", &resp); code != http.StatusOK {
		t.Fatalf("history after restart: status %d", code)
	}
	if resp.Count != len(temps) {
		t.Fatalf("restart serves %d samples, want %d", resp.Count, len(temps))
	}
	for i, smp := range resp.Samples {
		if smp.T != countTS[i] || float64(smp.V) != counts[i] {
			t.Fatalf("sample %d after restart: (%d, %v), want (%d, %v)",
				i, smp.T, smp.V, countTS[i], counts[i])
		}
	}

	// New reports land after the restored history in the same series.
	sendReports(t, s2, []float64{30, 31})
	if code := get(t, s2.APIHandler(), "/api/history?pole=1&series=count&from=0&to=9223372036854775807", &resp); code != http.StatusOK {
		t.Fatalf("history after new reports: status %d", code)
	}
	if resp.Count != len(temps)+2 {
		t.Fatalf("combined history has %d samples, want %d", resp.Count, len(temps)+2)
	}
}

// TestHistoryBatchRead requests several series in one /api/history call
// and checks each element matches its single-series read exactly.
func TestHistoryBatchRead(t *testing.T) {
	s := newHistoryTestServer(t, nil)
	sendReports(t, s, []float64{20, 25, 30, 35})
	h := s.APIHandler()
	const window = "from=0&to=9223372036854775807"

	var batch HistoryBatchResponse
	if code := get(t, h, "/api/history?pole=1&series=count&series=pole_temp_c&series=clusters&"+window, &batch); code != http.StatusOK {
		t.Fatalf("batch read: status %d", code)
	}
	if len(batch.Series) != 3 || batch.Res != "raw" || batch.Pole != 1 {
		t.Fatalf("batch meta: %d series, res %q, pole %d", len(batch.Series), batch.Res, batch.Pole)
	}
	for _, want := range []string{"count", "pole_temp_c", "clusters"} {
		found := false
		for _, one := range batch.Series {
			if one.Series != want {
				continue
			}
			found = true
			var single HistoryResponse
			if code := get(t, h, "/api/history?pole=1&series="+want+"&"+window, &single); code != http.StatusOK {
				t.Fatalf("single read %s: status %d", want, code)
			}
			if len(one.Samples) != len(single.Samples) || one.Count != single.Count {
				t.Fatalf("series %s: batch %d samples, single %d", want, len(one.Samples), len(single.Samples))
			}
			for i := range one.Samples {
				if one.Samples[i] != single.Samples[i] {
					t.Fatalf("series %s sample %d: batch %+v, single %+v", want, i, one.Samples[i], single.Samples[i])
				}
			}
		}
		if !found {
			t.Fatalf("series %s missing from batch response", want)
		}
	}

	// An unknown series anywhere in the batch fails the whole request.
	if code := get(t, h, "/api/history?pole=1&series=count&series=nope&"+window, nil); code != http.StatusNotFound {
		t.Fatalf("batch with unknown series: status %d, want 404", code)
	}
	// Single-series requests keep the flat response shape: a bare
	// HistoryResponse with no series array.
	var single HistoryResponse
	if code := get(t, h, "/api/history?pole=1&series=count&"+window, &single); code != http.StatusOK || single.Series != "count" {
		t.Fatalf("single-series shape: status %d, series %q", code, single.Series)
	}
}

// TestHistoryBatchReadsTakeNoShardLocks extends the zero-shard-lock
// read-path pin to the batch form.
func TestHistoryBatchReadsTakeNoShardLocks(t *testing.T) {
	s := newHistoryTestServer(t, nil)
	sendReports(t, s, []float64{20, 21, 22, 23})
	h := s.APIHandler()

	before := s.reg.lockAcquisitions.Load()
	for i := 0; i < 50; i++ {
		get(t, h, "/api/history?pole=1&series=count&series=clusters&series=pole_temp_c&from=0&to=9223372036854775807", nil)
		get(t, h, "/api/history?pole=1&series=count&series=ambient_c&from=0&to=9223372036854775807&res=2s", nil)
	}
	if after := s.reg.lockAcquisitions.Load(); after != before {
		t.Fatalf("batch history reads acquired %d registry shard locks, want 0", after-before)
	}
}
