package backend

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

func dialBackend(t *testing.T, s *Server) *wire.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return wire.NewConn(conn)
}

func TestHelloAndCountAggregation(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	if err := c.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 1, Location: "Palm Walk"})); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		report := wire.CountReport{PoleID: 1, Seq: seq, Timestamp: time.Now(), Count: uint32(seq * 2)}
		if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
			t.Fatal(err)
		}
		typ, body, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if typ != wire.MsgAck {
			t.Fatalf("expected ack, got type %d", typ)
		}
		ack, err := wire.DecodeAck(body)
		if err != nil || ack.Seq != seq {
			t.Fatalf("ack %+v err=%v", ack, err)
		}
	}

	snap := s.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d poles", len(snap))
	}
	p := snap[0]
	if p.Location != "Palm Walk" || p.Reports != 3 || p.LastCount != 6 || p.TotalCount != 12 || p.PeakCount != 6 {
		t.Errorf("aggregates: %+v", p)
	}
	if s.CampusCount() != 6 {
		t.Errorf("campus count = %d", s.CampusCount())
	}
}

func TestCrowdingAlert(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", CrowdingLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	report := wire.CountReport{PoleID: 2, Seq: 1, Count: 25}
	if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
		t.Fatal(err)
	}
	// Ack then alert.
	typ, _, err := c.Recv()
	if err != nil || typ != wire.MsgAck {
		t.Fatalf("expected ack: type=%d err=%v", typ, err)
	}
	typ, body, err := c.Recv()
	if err != nil || typ != wire.MsgAlert {
		t.Fatalf("expected alert: type=%d err=%v", typ, err)
	}
	alert, err := wire.DecodeAlert(body)
	if err != nil || alert.Kind != wire.AlertCrowding {
		t.Fatalf("alert %+v err=%v", alert, err)
	}
	if len(s.Alerts()) != 1 {
		t.Errorf("server recorded %d alerts", len(s.Alerts()))
	}
}

func TestOverheatAlert(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", OverheatLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	tm := wire.Telemetry{PoleID: 3, Timestamp: time.Now(), PoleTemp: 57.8, Ambient: 46}
	if err := c.Send(wire.MsgTelemetry, wire.EncodeTelemetry(tm)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := c.Recv()
	if err != nil || typ != wire.MsgAlert {
		t.Fatalf("expected alert: type=%d err=%v", typ, err)
	}
	alert, err := wire.DecodeAlert(body)
	if err != nil || alert.Kind != wire.AlertOverheat {
		t.Fatalf("alert %+v err=%v", alert, err)
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].MaxTemp < 57 {
		t.Errorf("telemetry aggregates: %+v", snap)
	}
}

func TestMultiplePoles(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for id := uint32(1); id <= 3; id++ {
		c := dialBackend(t, s)
		if err := c.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: id, Location: "loc"})); err != nil {
			t.Fatal(err)
		}
		report := wire.CountReport{PoleID: id, Seq: 1, Count: id * 10}
		if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d poles", len(snap))
	}
	// Sorted by pole id.
	for i, p := range snap {
		if p.PoleID != uint32(i+1) {
			t.Errorf("snapshot[%d].PoleID = %d", i, p.PoleID)
		}
	}
	if s.CampusCount() != 60 {
		t.Errorf("campus count = %d, want 60", s.CampusCount())
	}
}

func TestCloseUnblocksHandlers(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Connection idle; Close must not hang waiting for it.
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with an idle connection open")
	}
}

func TestMalformedMessageDropsConnection(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	if err := c.Send(wire.MsgType(99), []byte("junk")); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection; the next read fails.
	if _, _, err := c.Recv(); err == nil {
		t.Error("expected dropped connection after malformed message")
	}
}

// TestOverheatBoundaryAtRatedLimit pins the "meets or exceeds" contract:
// a compartment at exactly the 50°C rated limit raises the alert.
func TestOverheatBoundaryAtRatedLimit(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", OverheatLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	exact := wire.Telemetry{PoleID: 4, Timestamp: time.Now(), PoleTemp: 50.0, Ambient: 44}
	if err := c.Send(wire.MsgTelemetry, wire.EncodeTelemetry(exact)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := c.Recv()
	if err != nil || typ != wire.MsgAlert {
		t.Fatalf("reading at exactly the rated limit must alert: type=%d err=%v", typ, err)
	}
	alert, err := wire.DecodeAlert(body)
	if err != nil || alert.Kind != wire.AlertOverheat {
		t.Fatalf("alert %+v err=%v", alert, err)
	}

	// Just under the limit must stay silent: send a report afterwards and
	// verify the next message is its ack, not a second alert.
	below := wire.Telemetry{PoleID: 4, Timestamp: time.Now(), PoleTemp: 49.99, Ambient: 44}
	if err := c.Send(wire.MsgTelemetry, wire.EncodeTelemetry(below)); err != nil {
		t.Fatal(err)
	}
	report := wire.CountReport{PoleID: 4, Seq: 1, Count: 0}
	if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
		t.Fatal(err)
	}
	typ, _, err = c.Recv()
	if err != nil || typ != wire.MsgAck {
		t.Fatalf("49.99°C alerted (got type %d, err %v); the boundary is meets-or-exceeds, not below", typ, err)
	}
	if got := len(s.Alerts()); got != 1 {
		t.Errorf("alerts = %d, want exactly 1", got)
	}
}

func TestBackendMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Listen(Config{Addr: "127.0.0.1:0", CrowdingLimit: 5, OverheatLimit: 50, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	if err := c.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 7, Location: "Palm Walk"})); err != nil {
		t.Fatal(err)
	}
	report := wire.CountReport{PoleID: 7, Seq: 1, Count: 9, LatencyUS: 4200}
	if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := c.Recv(); err != nil || typ != wire.MsgAck {
		t.Fatalf("ack: type=%d err=%v", typ, err)
	}
	if typ, _, err := c.Recv(); err != nil || typ != wire.MsgAlert {
		t.Fatalf("crowding alert: type=%d err=%v", typ, err)
	}
	tm := wire.Telemetry{PoleID: 7, Timestamp: time.Now(), PoleTemp: 57.8, Ambient: 44}
	if err := c.Send(wire.MsgTelemetry, wire.EncodeTelemetry(tm)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := c.Recv(); err != nil || typ != wire.MsgAlert {
		t.Fatalf("overheat alert: type=%d err=%v", typ, err)
	}

	id := obs.L("pole", "7")
	if got := reg.Counter("backend_reports_total", "", id).Value(); got != 1 {
		t.Errorf("reports counter = %d, want 1", got)
	}
	if got := reg.Counter("backend_pole_alerts_total", "", id).Value(); got != 2 {
		t.Errorf("per-pole alerts = %d, want 2", got)
	}
	if got := reg.Counter("backend_alerts_total", "", obs.L("kind", "crowding")).Value(); got != 1 {
		t.Errorf("crowding alerts = %d, want 1", got)
	}
	if got := reg.Counter("backend_alerts_total", "", obs.L("kind", "overheat")).Value(); got != 1 {
		t.Errorf("overheat alerts = %d, want 1", got)
	}
	if got := reg.Gauge("backend_pole_last_count", "", id).Value(); got != 9 {
		t.Errorf("last count gauge = %g, want 9", got)
	}
	if got := reg.Gauge("backend_pole_temp_celsius", "", id).Value(); got != 57.8 {
		t.Errorf("temp gauge = %g, want 57.8", got)
	}
	if got := reg.Gauge("backend_pole_last_seen_timestamp_seconds", "", id).Value(); got <= 0 {
		t.Errorf("last-seen gauge = %g, want unix time", got)
	}
	if s := reg.Histogram("backend_report_edge_latency_seconds", "", nil).Snapshot(); s.Count != 1 || s.Sum < 0.004 {
		t.Errorf("edge latency histogram count=%d sum=%g, want 1 observation near 4.2ms", s.Count, s.Sum)
	}
	if got := reg.Counter("backend_connections_total", "").Value(); got != 1 {
		t.Errorf("connections total = %d, want 1", got)
	}
	if reg.Counter("backend_wire_bytes_received_total", "").Value() == 0 {
		t.Error("wire receive bytes never counted")
	}
	if reg.Counter("backend_wire_bytes_sent_total", "").Value() == 0 {
		t.Error("wire send bytes never counted")
	}
}

// TestConcurrentPoleLogsDoNotInterleave hammers the serialized logf from
// many pole connections; each log line must arrive atomically.
func TestConcurrentPoleLogsDoNotInterleave(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s, err := Listen(Config{
		Addr:          "127.0.0.1:0",
		CrowdingLimit: 1,
		Logf: func(format string, args ...any) {
			// Simulate a multi-write sink: any interleaving between these
			// two appends would corrupt a line.
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for id := uint32(1); id <= 8; id++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			c := dialBackend(t, s)
			if err := c.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: id, Location: "w"})); err != nil {
				return
			}
			report := wire.CountReport{PoleID: id, Seq: 1, Count: 10}
			if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
				return
			}
			c.Recv() // ack
			c.Recv() // alert
		}(id)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, l := range lines {
		if !strings.HasPrefix(l, "backend: ") {
			t.Errorf("malformed log line %q", l)
		}
	}
	if len(lines) < 16 { // 8 connects + 8 alerts
		t.Errorf("got %d log lines, want at least 16", len(lines))
	}
}
