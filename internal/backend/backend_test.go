package backend

import (
	"net"
	"testing"
	"time"

	"hawccc/internal/wire"
)

func dialBackend(t *testing.T, s *Server) *wire.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return wire.NewConn(conn)
}

func TestHelloAndCountAggregation(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	if err := c.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 1, Location: "Palm Walk"})); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		report := wire.CountReport{PoleID: 1, Seq: seq, Timestamp: time.Now(), Count: uint32(seq * 2)}
		if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
			t.Fatal(err)
		}
		typ, body, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if typ != wire.MsgAck {
			t.Fatalf("expected ack, got type %d", typ)
		}
		ack, err := wire.DecodeAck(body)
		if err != nil || ack.Seq != seq {
			t.Fatalf("ack %+v err=%v", ack, err)
		}
	}

	snap := s.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d poles", len(snap))
	}
	p := snap[0]
	if p.Location != "Palm Walk" || p.Reports != 3 || p.LastCount != 6 || p.TotalCount != 12 || p.PeakCount != 6 {
		t.Errorf("aggregates: %+v", p)
	}
	if s.CampusCount() != 6 {
		t.Errorf("campus count = %d", s.CampusCount())
	}
}

func TestCrowdingAlert(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", CrowdingLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	report := wire.CountReport{PoleID: 2, Seq: 1, Count: 25}
	if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
		t.Fatal(err)
	}
	// Ack then alert.
	typ, _, err := c.Recv()
	if err != nil || typ != wire.MsgAck {
		t.Fatalf("expected ack: type=%d err=%v", typ, err)
	}
	typ, body, err := c.Recv()
	if err != nil || typ != wire.MsgAlert {
		t.Fatalf("expected alert: type=%d err=%v", typ, err)
	}
	alert, err := wire.DecodeAlert(body)
	if err != nil || alert.Kind != wire.AlertCrowding {
		t.Fatalf("alert %+v err=%v", alert, err)
	}
	if len(s.Alerts()) != 1 {
		t.Errorf("server recorded %d alerts", len(s.Alerts()))
	}
}

func TestOverheatAlert(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", OverheatLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	tm := wire.Telemetry{PoleID: 3, Timestamp: time.Now(), PoleTemp: 57.8, Ambient: 46}
	if err := c.Send(wire.MsgTelemetry, wire.EncodeTelemetry(tm)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := c.Recv()
	if err != nil || typ != wire.MsgAlert {
		t.Fatalf("expected alert: type=%d err=%v", typ, err)
	}
	alert, err := wire.DecodeAlert(body)
	if err != nil || alert.Kind != wire.AlertOverheat {
		t.Fatalf("alert %+v err=%v", alert, err)
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].MaxTemp < 57 {
		t.Errorf("telemetry aggregates: %+v", snap)
	}
}

func TestMultiplePoles(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for id := uint32(1); id <= 3; id++ {
		c := dialBackend(t, s)
		if err := c.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: id, Location: "loc"})); err != nil {
			t.Fatal(err)
		}
		report := wire.CountReport{PoleID: id, Seq: 1, Count: id * 10}
		if err := c.Send(wire.MsgCountReport, wire.EncodeCountReport(report)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d poles", len(snap))
	}
	// Sorted by pole id.
	for i, p := range snap {
		if p.PoleID != uint32(i+1) {
			t.Errorf("snapshot[%d].PoleID = %d", i, p.PoleID)
		}
	}
	if s.CampusCount() != 60 {
		t.Errorf("campus count = %d, want 60", s.CampusCount())
	}
}

func TestCloseUnblocksHandlers(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Connection idle; Close must not hang waiting for it.
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with an idle connection open")
	}
}

func TestMalformedMessageDropsConnection(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	if err := c.Send(wire.MsgType(99), []byte("junk")); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection; the next read fails.
	if _, _, err := c.Recv(); err == nil {
		t.Error("expected dropped connection after malformed message")
	}
}
