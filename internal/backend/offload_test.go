package backend

import (
	"context"
	"testing"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/models"
	"hawccc/internal/pole"
	"hawccc/internal/wire"
)

// extentStub is a deterministic, training-free batch classifier shared
// by the edge and backend sides of the offload tests: a cluster is
// "human" when its vertical extent is person-sized. The rule's margins
// are far wider than the quantization tolerance, so edge and offloaded
// labels must agree exactly.
type extentStub struct{}

var _ models.BatchClassifier = extentStub{}

func (extentStub) Name() string { return "ExtentStub" }

func (extentStub) PredictHuman(c geom.Cloud) bool {
	extent := c.MaxZ() - c.MinZ()
	return extent > 1.1 && extent < 2.3
}

func (s extentStub) PredictHumans(cs []geom.Cloud) []bool {
	out := make([]bool, len(cs))
	for i, c := range cs {
		out[i] = s.PredictHuman(c)
	}
	return out
}

// TestOffloadServiceClassifiesBatches drives the offload service at the
// wire level: quantized batches in, positionally keyed labels out.
func TestOffloadServiceClassifiesBatches(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", Classifier: extentStub{}, OffloadWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialBackend(t, s)
	if err := c.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{PoleID: 5, Location: "Offload Walk"})); err != nil {
		t.Fatal(err)
	}
	human := make(geom.Cloud, 0, 40)
	for i := 0; i < 40; i++ {
		human = append(human, geom.Point3{X: 1, Y: 2, Z: -2.5 + 1.7*float64(i)/39})
	}
	short := make(geom.Cloud, 0, 40)
	for i := 0; i < 40; i++ {
		short = append(short, geom.Point3{X: 3, Y: 2, Z: -2.5 + 0.4*float64(i)/39})
	}
	for seq := uint64(1); seq <= 3; seq++ {
		batch := wire.BuildClusterBatch(5, seq, []geom.Cloud{human, short, human}, 0)
		if err := c.Send(wire.MsgClusterBatch, wire.EncodeClusterBatch(batch)); err != nil {
			t.Fatal(err)
		}
		typ, body, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if typ != wire.MsgClassifyResult {
			t.Fatalf("seq %d: expected classify result, got type %d", seq, typ)
		}
		res, err := wire.DecodeClassifyResult(body)
		if err != nil {
			t.Fatal(err)
		}
		if res.PoleID != 5 || res.Seq != seq {
			t.Fatalf("result keyed (%d, %d), want (5, %d)", res.PoleID, res.Seq, seq)
		}
		want := []bool{true, false, true}
		for i, w := range want {
			if res.Labels[i] != w {
				t.Fatalf("seq %d labels = %v, want %v", seq, res.Labels, want)
			}
		}
	}
}

// TestOffloadBatchWithoutClassifierIsProtocolError pins the designed
// degradation: a backend with no classifier drops the offload
// connection, which is what flips the pole to local fallback.
func TestOffloadBatchWithoutClassifierIsProtocolError(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := dialBackend(t, s)
	batch := wire.BuildClusterBatch(1, 1, []geom.Cloud{{{X: 1, Y: 1, Z: 1}}}, 0)
	if err := c.Send(wire.MsgClusterBatch, wire.EncodeClusterBatch(batch)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Recv(); err == nil {
		t.Fatal("expected the backend to drop the connection")
	}
}

// runPole processes all frames through one pole node and returns the
// node after completion.
func runPole(t *testing.T, cfg pole.Config, frames []dataset.Frame) *pole.Node {
	t.Helper()
	cfg.Source = &pole.SliceSource{Frames: frames}
	n, err := pole.Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	processed, err := n.Run(ctx)
	if err != nil {
		t.Fatalf("pole run: %v", err)
	}
	if processed != len(frames) {
		t.Fatalf("processed %d frames, want %d", processed, len(frames))
	}
	return n
}

// TestOffloadEndToEndCountEquivalence runs the same frames through an
// edge-classifying pole and a forced-offload pole against one backend
// and requires identical campus aggregates: offloaded classification
// through the quantized transport must not change a single count.
func TestOffloadEndToEndCountEquivalence(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0", Classifier: extentStub{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	frames := dataset.NewGenerator(33).CrowdFrames(12, 1, 6, 2)
	base := pole.Config{BackendAddr: s.Addr()}

	edge := base
	edge.PoleID, edge.Location = 1, "edge"
	edge.Pipeline = counting.New(extentStub{})
	runPole(t, edge, frames)

	off := base
	off.PoleID, off.Location = 2, "offloaded"
	off.Pipeline = counting.New(extentStub{})
	off.Offload = counting.OffloadConfig{Mode: counting.OffloadForced}
	n := runPole(t, off, frames)

	_, remote, fallback := n.Offload().Decisions()
	if remote != uint64(len(frames)) || fallback != 0 {
		t.Fatalf("offload decisions remote=%d fallback=%d, want %d remote", remote, fallback, len(frames))
	}

	var edgeStats, offStats PoleStats
	for _, p := range s.Snapshot() {
		switch p.PoleID {
		case 1:
			edgeStats = p
		case 2:
			offStats = p
		}
	}
	if edgeStats.Reports != len(frames) || offStats.Reports != len(frames) {
		t.Fatalf("reports edge=%d offload=%d", edgeStats.Reports, offStats.Reports)
	}
	if edgeStats.TotalCount != offStats.TotalCount || edgeStats.PeakCount != offStats.PeakCount {
		t.Fatalf("counts diverged: edge total=%d peak=%d, offloaded total=%d peak=%d",
			edgeStats.TotalCount, edgeStats.PeakCount, offStats.TotalCount, offStats.PeakCount)
	}
	if offStats.TotalCount == 0 {
		t.Fatal("offloaded pole counted nothing — the scenario is degenerate")
	}
}

// TestOffloadFallbackAgainstBareBackend runs a forced-offload pole
// against a backend with no offload service: every frame must still be
// classified (locally) and reported, with counts identical to an edge
// run.
func TestOffloadFallbackAgainstBareBackend(t *testing.T) {
	s, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	frames := dataset.NewGenerator(34).CrowdFrames(6, 1, 5, 2)
	edge := pole.Config{BackendAddr: s.Addr(), PoleID: 1, Location: "edge", Pipeline: counting.New(extentStub{})}
	runPole(t, edge, frames)

	off := pole.Config{BackendAddr: s.Addr(), PoleID: 2, Location: "fallback", Pipeline: counting.New(extentStub{})}
	off.Offload = counting.OffloadConfig{Mode: counting.OffloadForced}
	n := runPole(t, off, frames)
	_, _, fallback := n.Offload().Decisions()
	if fallback != uint64(len(frames)) {
		t.Fatalf("fallbacks = %d, want %d (every frame)", fallback, len(frames))
	}

	var edgeStats, offStats PoleStats
	for _, p := range s.Snapshot() {
		switch p.PoleID {
		case 1:
			edgeStats = p
		case 2:
			offStats = p
		}
	}
	if offStats.Reports != len(frames) || offStats.TotalCount != edgeStats.TotalCount {
		t.Fatalf("fallback pole reports=%d total=%d, edge total=%d",
			offStats.Reports, offStats.TotalCount, edgeStats.TotalCount)
	}
}
