// offload.go is the backend side of the edge/cloud classify offload:
// MsgClusterBatch frames from saturated or overheating poles land in a
// bounded queue; worker goroutines dequantize them into pooled
// backing-cloud buffers, coalesce clusters across poles into one
// GEMM pass through the models.BatchClassifier (bigger batches than any
// single pole's frame ever forms — the batch-32 kernel sweet spot), and
// answer each pole with a MsgClassifyResult keyed by (pole, frame seq).
// Counts still arrive through the pole's normal MsgCountReport path, so
// offloaded frames merge into the registry identically to edge-
// classified ones.
package backend

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"hawccc/internal/geom"
	"hawccc/internal/models"
	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

// Offload service defaults.
const (
	// DefaultOffloadQueue bounds the batch queue; a full queue refuses
	// the pole's frame (its connection errors and the pole classifies
	// locally) rather than growing without bound.
	DefaultOffloadQueue = 256
	// DefaultOffloadMaxBatch caps the clusters coalesced into one
	// forward pass, matching the GEMM kernels' batch-32 sweet spot.
	DefaultOffloadMaxBatch = 32
)

// lockedConn serializes frame writes on one pole connection.
// wire.Conn is not safe for concurrent writers, and offload replies
// come from worker goroutines while the handler goroutine writes acks
// and alerts on the same connection.
type lockedConn struct {
	mu sync.Mutex
	wc *wire.Conn
}

func (c *lockedConn) send(t wire.MsgType, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wc.Send(t, body)
}

// offloadJob is one pole's batch waiting for a classify pass, plus the
// connection its labels go back on.
type offloadJob struct {
	batch wire.ClusterBatch
	reply *lockedConn
}

// offloadObs is the service's instrument set (nil fields are no-ops).
type offloadObs struct {
	batches  *obs.Counter
	clusters *obs.Counter
	passes   *obs.Counter
	depth    *obs.Gauge
	classify *obs.Histogram
}

// offloadService owns the bounded queue and the coalescing workers.
type offloadService struct {
	s        *Server
	clf      models.BatchClassifier
	maxBatch int
	q        chan offloadJob
	m        offloadObs
}

// newOffloadService registers the service's series and starts the
// worker pool on the server's lifecycle.
func newOffloadService(s *Server) *offloadService {
	workers := s.cfg.OffloadWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	queue := s.cfg.OffloadQueue
	if queue <= 0 {
		queue = DefaultOffloadQueue
	}
	maxBatch := s.cfg.OffloadMaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultOffloadMaxBatch
	}
	o := &offloadService{
		s:        s,
		clf:      s.cfg.Classifier,
		maxBatch: maxBatch,
		q:        make(chan offloadJob, queue),
	}
	if reg := s.cfg.Obs; reg != nil {
		o.m = offloadObs{
			batches: reg.Counter("backend_offload_batches_total",
				"cluster batches received from poles shedding classification"),
			clusters: reg.Counter("backend_offload_clusters_total",
				"clusters classified on behalf of poles"),
			passes: reg.Counter("backend_offload_passes_total",
				"batched forward passes run by the offload workers"),
			depth: reg.Gauge("backend_offload_queue_depth",
				"cluster batches waiting for an offload worker"),
			classify: reg.Histogram("backend_offload_classify_seconds",
				"latency of one coalesced offload classify pass (dequantize + forward)",
				obs.LatencyBuckets()),
		}
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			o.worker(s.loopCtx)
		}()
	}
	return o
}

// enqueue hands one decoded batch to the worker pool. A full queue or a
// shutting-down server refuses the batch — the pole's connection errors
// and its frame classifies locally, which is the designed degradation.
func (o *offloadService) enqueue(batch wire.ClusterBatch, reply *lockedConn) error {
	o.m.batches.Inc()
	select {
	case o.q <- offloadJob{batch: batch, reply: reply}:
		o.m.depth.Set(float64(len(o.q)))
		return nil
	default:
		return fmt.Errorf("backend: offload queue full (%d batches)", cap(o.q))
	}
}

// offloadScratch is one worker's reusable buffers: the backing cloud
// whose sub-slices feed the classifier and the per-pass job/cluster
// headers. Buffers are append-grown and reused, so a worker reaches a
// steady state with no per-pass allocations beyond the classifier's
// own.
type offloadScratch struct {
	jobs    []offloadJob
	backing geom.Cloud
	clouds  []geom.Cloud
}

// worker drains the queue: each pass takes one batch, opportunistically
// coalesces more queued batches (across poles) until maxBatch clusters
// are in hand, runs one batched forward pass, and answers every pole.
func (o *offloadService) worker(ctx context.Context) {
	var sc offloadScratch
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-o.q:
			sc.jobs = append(sc.jobs[:0], job)
			n := len(job.batch.Clusters)
		coalesce:
			for n < o.maxBatch {
				select {
				case more := <-o.q:
					sc.jobs = append(sc.jobs, more)
					n += len(more.batch.Clusters)
				default:
					break coalesce
				}
			}
			o.m.depth.Set(float64(len(o.q)))
			o.classifyJobs(&sc)
		}
	}
}

// classifyJobs dequantizes every cluster of the pass into the scratch
// buffers, runs one PredictHumans call, and replies per job.
// Dequantization goes through ClusterBatch.AppendCloud — the same
// float64 arithmetic the pole's classification lattice uses — so the
// classifier sees clouds bit-identical to what the pole would have
// classified locally (the offload label-equivalence contract; a
// float32 staging detour would break it by ~6 µm of rounding, enough
// to reseed HAWC's content-keyed padding noise).
func (o *offloadService) classifyJobs(sc *offloadScratch) {
	t0 := time.Now()
	// Pre-size the widened backing cloud so sub-slices handed to the
	// classifier stay valid — an append-driven reallocation mid-build
	// would orphan the earlier ones.
	total := 0
	for i := range sc.jobs {
		total += sc.jobs[i].batch.Points()
	}
	if cap(sc.backing) < total {
		sc.backing = make(geom.Cloud, 0, total)
	}
	sc.backing = sc.backing[:0]
	sc.clouds = sc.clouds[:0]
	for ji := range sc.jobs {
		b := &sc.jobs[ji].batch
		for ci := range b.Clusters {
			start := len(sc.backing)
			sc.backing = b.AppendCloud(ci, sc.backing)
			sc.clouds = append(sc.clouds, sc.backing[start:len(sc.backing):len(sc.backing)])
		}
	}
	labels := o.clf.PredictHumans(sc.clouds)
	o.m.passes.Inc()
	o.m.clusters.Add(uint64(len(sc.clouds)))
	o.m.classify.ObserveDuration(time.Since(t0))
	off := 0
	for ji := range sc.jobs {
		job := &sc.jobs[ji]
		k := len(job.batch.Clusters)
		res := wire.ClassifyResult{
			PoleID: job.batch.PoleID,
			Seq:    job.batch.Seq,
			Labels: labels[off : off+k],
		}
		off += k
		if err := job.reply.send(wire.MsgClassifyResult, wire.EncodeClassifyResult(res)); err != nil {
			// The pole's connection died while its batch was queued; its
			// offloader fails the in-flight call and the frame classifies
			// locally. Nothing to do here beyond logging.
			o.s.logf("backend: offload reply to pole %d: %v", job.batch.PoleID, err)
		}
	}
}

// handleClusterBatch is the wire entry point, called by the connection
// handler.
func (s *Server) handleClusterBatch(body []byte, reply *lockedConn) error {
	batch, err := wire.DecodeClusterBatch(body)
	if err != nil {
		return err
	}
	if s.off == nil {
		return fmt.Errorf("backend: pole %d offloaded a cluster batch but no classifier is configured", batch.PoleID)
	}
	// Classifier version skew: answering with our weights would break the
	// edge/offload bit-equality contract, so reject the batch (the pole
	// falls back to its local classify stage) and flag the pole once.
	if batch.ModelVersion != 0 && s.modelVersion != 0 && batch.ModelVersion != s.modelVersion {
		s.m.versionSkew.Inc()
		s.checkModelSkew(batch.PoleID, batch.ModelVersion)
		return fmt.Errorf("backend: pole %d offload batch carries classifier version %#x, backend runs %#x", batch.PoleID, batch.ModelVersion, s.modelVersion)
	}
	if s.loopCtx.Err() != nil {
		return net.ErrClosed
	}
	return s.off.enqueue(batch, reply)
}
