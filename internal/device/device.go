// Package device models the inference latency of the two edge devices the
// paper deploys on (Section VI): the Nvidia Jetson Nano (general-purpose
// GPU, CUDA/cuDNN) and the Google Coral Dev Board (edge TPU that executes
// only int8 graphs and handles convolution-like ops far better than
// fully connected layers). We cannot run the physical hardware, so Table
// II's numbers are regenerated from an op-level cost model: each layer of
// a model's real op graph is costed by its multiply-accumulate volume at
// the device's sustained rate for its op class, plus per-op dispatch
// overhead. The model reproduces the structural effects the paper
// highlights — the TPU's large per-op overhead dominating small models,
// FC-heavy AutoEncoder *regressing* under int8 on the TPU while conv
// models accelerate, and PointNet's 3D cost dwarfing HAWC. See DESIGN.md
// for the substitution argument.
package device

import (
	"fmt"
	"time"

	"hawccc/internal/nn"
	"hawccc/internal/quant"
	"hawccc/internal/tensor"
)

// OpClass distinguishes how devices execute an op.
type OpClass int

// Op classes.
const (
	// OpConvLike covers convolutions and batched per-point dense layers
	// (compiled to 1×1 convolutions on the TPU).
	OpConvLike OpClass = iota
	// OpFCLike covers batch-1 fully connected layers.
	OpFCLike
	// OpLight covers pooling, reshapes, activations.
	OpLight
)

// OpCost is one op's work.
type OpCost struct {
	Name  string
	Class OpClass
	MACs  int64
}

// Graph is a costed inference graph.
type Graph struct {
	Ops []OpCost
}

// TotalMACs sums multiply-accumulates over the graph.
func (g Graph) TotalMACs() int64 {
	var n int64
	for _, op := range g.Ops {
		n += op.MACs
	}
	return n
}

// Profile is an edge device's execution characteristics. Rates are in
// MACs per second; overheads are per dispatched op and per inference.
type Profile struct {
	Name string

	// FP32 execution (GPU on the Jetson; CPU fallback on the Coral —
	// the edge TPU cannot run float graphs).
	ConvRateFP32, FCRateFP32 float64
	PerOpFP32                time.Duration

	// Int8 execution (GPU int8 paths on the Jetson; the TPU on the Coral).
	ConvRateInt8, FCRateInt8 float64
	PerOpInt8                time.Duration

	// PerInference is the fixed invoke overhead.
	PerInference time.Duration
}

// JetsonNano models the Nvidia Jetson Nano (128-core Maxwell GPU, 4 GB).
// The GPU runs both precisions; int8 helps convolution throughput much
// more than the memory-bound fully connected layers.
var JetsonNano = Profile{
	Name:         "Jetson Nano",
	ConvRateFP32: 25e9,
	FCRateFP32:   12e9,
	PerOpFP32:    12 * time.Microsecond,
	ConvRateInt8: 50e9,
	FCRateInt8:   14e9,
	PerOpInt8:    8 * time.Microsecond,
	PerInference: 60 * time.Microsecond,
}

// CoralDevBoard models the Google Coral Dev Board: float graphs fall back
// to the slow quad-A53 CPU; int8 graphs run on the edge TPU, which is
// extremely fast for conv-like ops but pays a large per-op dispatch cost
// and executes fully connected layers poorly — the structural reason the
// paper's 8-bit AutoEncoder is *slower* than its float version (Table II).
var CoralDevBoard = Profile{
	Name:         "Coral Dev Board",
	ConvRateFP32: 0.6e9, // quad-A53 CPU fallback
	FCRateFP32:   0.5e9,
	PerOpFP32:    5 * time.Microsecond,
	ConvRateInt8: 300e9, // edge TPU
	FCRateInt8:   0.4e9,
	PerOpInt8:    90 * time.Microsecond,
	PerInference: 80 * time.Microsecond,
}

// EstimateFP32 returns the modeled single-inference latency of graph g.
func (p Profile) EstimateFP32(g Graph) time.Duration {
	return p.estimate(g, p.ConvRateFP32, p.FCRateFP32, p.PerOpFP32)
}

// EstimateInt8 returns the modeled single-inference latency of the int8
// version of graph g.
func (p Profile) EstimateInt8(g Graph) time.Duration {
	return p.estimate(g, p.ConvRateInt8, p.FCRateInt8, p.PerOpInt8)
}

func (p Profile) estimate(g Graph, convRate, fcRate float64, perOp time.Duration) time.Duration {
	total := p.PerInference
	for _, op := range g.Ops {
		switch op.Class {
		case OpConvLike:
			total += time.Duration(float64(op.MACs) / convRate * float64(time.Second))
			total += perOp
		case OpFCLike:
			total += time.Duration(float64(op.MACs) / fcRate * float64(time.Second))
			total += perOp
		case OpLight:
			// Fused with neighbors on both runtimes; dispatch only.
			total += perOp / 4
		}
	}
	return total
}

// FromSequential costs a float model's graph for one inference with the
// given example input (the batch dimension of the example determines
// whether dense layers are per-point batched, i.e. conv-like).
func FromSequential(m *nn.Sequential, example *tensor.Tensor) Graph {
	var g Graph
	x := example
	for _, l := range m.Layers {
		in := x
		x = l.Forward(x, false)
		g.Ops = append(g.Ops, costLayer(l, in, x))
	}
	return g
}

func costLayer(l nn.Layer, in, out *tensor.Tensor) OpCost {
	switch layer := l.(type) {
	case *nn.Conv2D:
		h, w := out.Dim(1), out.Dim(2)
		macs := int64(out.Dim(0)) * int64(h) * int64(w) *
			int64(layer.KH) * int64(layer.KW) * int64(layer.Cin) * int64(layer.Cout)
		return OpCost{Name: l.Name(), Class: OpConvLike, MACs: macs}
	case *nn.Dense:
		n := int64(in.Dim(0))
		macs := n * int64(layer.In) * int64(layer.Out)
		class := OpFCLike
		if n > 1 {
			class = OpConvLike // per-point shared MLP compiles to 1×1 conv
		}
		return OpCost{Name: l.Name(), Class: class, MACs: macs}
	case *nn.BatchNorm:
		// Folded into the preceding layer at deployment.
		return OpCost{Name: l.Name(), Class: OpLight}
	default:
		return OpCost{Name: l.Name(), Class: OpLight}
	}
}

// FromQuant costs an int8 graph for one inference with the given example
// input shape.
func FromQuant(m *quant.Model, example *tensor.Tensor) Graph {
	var g Graph
	q := quant.QuantizeActivations(example, m.InScale, m.InZero)
	for _, op := range m.Ops {
		in := q
		q = op.Apply(q)
		g.Ops = append(g.Ops, costQOp(op, in, q))
	}
	return g
}

func costQOp(op quant.QOp, in, out *quant.QTensor) OpCost {
	switch o := op.(type) {
	case *quant.QConv2D:
		h, w := out.Dim(1), out.Dim(2)
		macs := int64(out.Dim(0)) * int64(h) * int64(w) *
			int64(o.KH) * int64(o.KW) * int64(o.Cin) * int64(o.Cout)
		return OpCost{Name: op.Name(), Class: OpConvLike, MACs: macs}
	case *quant.QDense:
		n := int64(in.Dim(0))
		macs := n * int64(o.In) * int64(o.Out)
		class := OpFCLike
		if n > 1 {
			class = OpConvLike
		}
		return OpCost{Name: op.Name(), Class: class, MACs: macs}
	default:
		return OpCost{Name: op.Name(), Class: OpLight}
	}
}

// SVMGraph costs a one-class SVM decision: one kernel evaluation per
// support vector (dim MACs each) plus the weighted sum. SVM inference is
// CPU-bound FC-like work; it has no int8 path (Table I/II exclude it).
func SVMGraph(numSupportVectors, dim int) Graph {
	return Graph{Ops: []OpCost{{
		Name:  fmt.Sprintf("OC-SVM(%d sv × %d dim)", numSupportVectors, dim),
		Class: OpFCLike,
		MACs:  int64(numSupportVectors) * int64(dim+1),
	}}}
}
