package device

import (
	"math/rand"
	"testing"
	"time"

	"hawccc/internal/nn"
	"hawccc/internal/quant"
	"hawccc/internal/tensor"
)

// smallCNN builds the HAWC CNN shape at D=16 for costing.
func smallCNN(rng *rand.Rand) (*nn.Sequential, *tensor.Tensor) {
	m := (&nn.Sequential{}).Add(
		nn.NewConv2D(3, 3, 7, 8, rng),
		nn.NewBatchNorm(8),
		nn.NewReLU(),
		nn.NewConv2D(3, 3, 8, 16, rng),
		nn.NewBatchNorm(16),
		nn.NewReLU(),
		nn.NewMaxPool2D(),
		nn.NewConv2D(3, 3, 16, 16, rng),
		nn.NewBatchNorm(16),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(8*8*16, 128, rng),
		nn.NewReLU(),
		nn.NewDense(128, 2, rng),
	)
	x := tensor.New(1, 16, 16, 7)
	x.RandNormal(rng, 1)
	return m, x
}

// fcNet builds an AutoEncoder-shaped pure-FC net.
func fcNet(rng *rand.Rand) (*nn.Sequential, *tensor.Tensor) {
	m := (&nn.Sequential{}).Add(
		nn.NewDense(46, 64, rng), nn.NewReLU(),
		nn.NewDense(64, 32, rng), nn.NewReLU(),
		nn.NewDense(32, 16, rng), nn.NewReLU(),
		nn.NewDense(16, 32, rng), nn.NewReLU(),
		nn.NewDense(32, 64, rng), nn.NewReLU(),
		nn.NewDense(64, 46, rng),
	)
	x := tensor.New(1, 46)
	x.RandNormal(rng, 1)
	return m, x
}

// pointNet builds a per-point-MLP net (batched dense = conv-like).
func pointNet(rng *rand.Rand) (*nn.Sequential, *tensor.Tensor) {
	m := (&nn.Sequential{}).Add(
		nn.NewDense(3, 64, rng),
		nn.NewBatchNorm(64),
		nn.NewReLU(),
		nn.NewDense(64, 64, rng),
		nn.NewReLU(),
		nn.NewDense(64, 128, rng),
		nn.NewReLU(),
		nn.NewDense(128, 256, rng),
		nn.NewReLU(),
		nn.NewGroup(289),
		nn.NewMaxOverPoints(),
		nn.NewDense(256, 128, rng),
		nn.NewReLU(),
		nn.NewDense(128, 2, rng),
	)
	x := tensor.New(289, 3)
	x.RandNormal(rng, 1)
	return m, x
}

func TestGraphMACCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, x := smallCNN(rng)
	g := FromSequential(m, x)
	want := int64(16*16*9*7*8 + 16*16*9*8*16 + 8*8*9*16*16 + 8*8*16*128 + 128*2)
	if g.TotalMACs() != want {
		t.Errorf("TotalMACs = %d, want %d", g.TotalMACs(), want)
	}
	// Conv op classed conv-like; batch-1 dense classed FC.
	if g.Ops[0].Class != OpConvLike {
		t.Error("conv not conv-like")
	}
	if g.Ops[11].Class != OpFCLike {
		t.Errorf("batch-1 dense class = %v", g.Ops[11].Class)
	}
}

func TestPerPointDenseIsConvLike(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, x := pointNet(rng)
	g := FromSequential(m, x)
	if g.Ops[0].Class != OpConvLike {
		t.Error("per-point dense (batch 289) should be conv-like (1×1 conv on the TPU)")
	}
	// Head dense after max-pool is batch-1 → FC.
	last := g.Ops[len(g.Ops)-1]
	if last.Class != OpFCLike {
		t.Errorf("head dense class = %v", last.Class)
	}
}

func TestJetsonOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hawc, hx := smallCNN(rng)
	ae, ax := fcNet(rng)
	pn, px := pointNet(rng)

	tHAWC := JetsonNano.EstimateFP32(FromSequential(hawc, hx))
	tAE := JetsonNano.EstimateFP32(FromSequential(ae, ax))
	tPN := JetsonNano.EstimateFP32(FromSequential(pn, px))

	// Table II ordering on the Jetson: AE < HAWC < PointNet.
	if !(tAE < tHAWC && tHAWC < tPN) {
		t.Errorf("Jetson FP32 ordering violated: AE=%v HAWC=%v PN=%v", tAE, tHAWC, tPN)
	}
}

func TestCoralAutoEncoderInt8Regression(t *testing.T) {
	// The paper's standout Table II effect: the FC-heavy AutoEncoder is
	// SLOWER in int8 on the Coral (TPU per-op overhead + bad FC) than in
	// FP32 on its CPU, while conv models accelerate dramatically.
	rng := rand.New(rand.NewSource(4))
	ae, ax := fcNet(rng)

	aeGraph := FromSequential(ae, ax)
	fp := CoralDevBoard.EstimateFP32(aeGraph)
	q8 := CoralDevBoard.EstimateInt8(aeGraph)
	if q8 <= fp {
		t.Errorf("AutoEncoder int8 on Coral (%v) should regress vs FP32 (%v)", q8, fp)
	}

	pn, px := pointNet(rng)
	pnGraph := FromSequential(pn, px)
	pnFP := CoralDevBoard.EstimateFP32(pnGraph)
	pnQ8 := CoralDevBoard.EstimateInt8(pnGraph)
	if pnQ8 >= pnFP {
		t.Errorf("PointNet int8 on Coral (%v) should be much faster than FP32 (%v)", pnQ8, pnFP)
	}
	if float64(pnFP)/float64(pnQ8) < 5 {
		t.Errorf("PointNet Coral speedup = %.1fx, expected large", float64(pnFP)/float64(pnQ8))
	}
}

func TestQuantGraphCosting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, x := smallCNN(rng)
	qm, err := quant.Quantize(m, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	g := FromQuant(qm, x)
	if g.TotalMACs() == 0 {
		t.Fatal("quant graph has zero MACs")
	}
	// int8 on the Jetson must beat FP32 for this conv net.
	fp := JetsonNano.EstimateFP32(FromSequential(m, x))
	q8 := JetsonNano.EstimateInt8(g)
	if q8 >= fp {
		t.Errorf("int8 (%v) should beat FP32 (%v) on Jetson", q8, fp)
	}
}

func TestSVMGraph(t *testing.T) {
	g := SVMGraph(500, 46)
	if g.TotalMACs() != 500*47 {
		t.Errorf("SVM MACs = %d", g.TotalMACs())
	}
	d := JetsonNano.EstimateFP32(g)
	if d <= 0 || d > time.Millisecond {
		t.Errorf("SVM estimate = %v, want sub-millisecond", d)
	}
}

func TestEstimatesArePositiveAndOverheadBound(t *testing.T) {
	// An empty graph still costs the per-inference overhead.
	for _, p := range []Profile{JetsonNano, CoralDevBoard} {
		if got := p.EstimateFP32(Graph{}); got != p.PerInference {
			t.Errorf("%s empty graph = %v, want %v", p.Name, got, p.PerInference)
		}
	}
}
