// Package telemetry models the pole-compartment temperature monitoring of
// Section VII-D (Figure 10). The paper logs a compartment sensor every 1.7
// minutes over a Tempe, AZ summer window (June 24 – July 11, 2023) and
// cross-references Visual Crossing weather data; we reproduce the series
// with a diurnal desert-summer weather model plus an enclosure thermal
// model (solar gain, thermal lag, device self-heating). The quantities
// Figure 10 exhibits — pole ≈ +10 °C over ambient at peak, < +5 °C in the
// cool hours, maxima near 57–58 °C against the Coral's 50 °C rated limit —
// fall out of the model.
package telemetry

import (
	"math"
	"math/rand"
	"time"
)

// SampleInterval is the compartment sensor's logging period (Section
// VII-D: every 1.7 minutes, ~2500 points/day — the paper rounds 847).
const SampleInterval = 102 * time.Second

// Reading is one timestamped temperature pair.
type Reading struct {
	At      time.Time
	Weather float64 // ambient °C
	Pole    float64 // compartment °C
}

// Config parameterizes the thermal simulation.
type Config struct {
	// Start and Days bound the simulated window.
	Start time.Time
	Days  int
	// MeanLow/MeanHigh are the typical daily ambient extremes (°C).
	MeanLow, MeanHigh float64
	// DayVariation is the day-to-day σ of the daily extremes.
	DayVariation float64
	// SolarGain is the peak compartment heating above ambient from solar
	// load on the pole (°C).
	SolarGain float64
	// DeviceLoad is the constant self-heating of the edge devices (°C).
	DeviceLoad float64
	// LagMinutes is the enclosure thermal time constant.
	LagMinutes float64
	// NoiseStd is the sensor noise (°C).
	NoiseStd float64
	// Seed drives all randomness.
	Seed int64
}

// SummerConfig reproduces the paper's window: June 24 – July 11, 2023 in
// Tempe (18 days of Sonoran-desert summer).
func SummerConfig() Config {
	return Config{
		Start:        time.Date(2023, time.June, 24, 0, 0, 0, 0, time.UTC),
		Days:         18,
		MeanLow:      28,
		MeanHigh:     44,
		DayVariation: 2.0,
		SolarGain:    8.5,
		DeviceLoad:   2.0,
		LagMinutes:   45,
		NoiseStd:     0.25,
		Seed:         1,
	}
}

// Simulate produces the full reading series for the configured window.
func Simulate(cfg Config) []Reading {
	rng := rand.New(rand.NewSource(cfg.Seed))
	perDay := int(24 * time.Hour / SampleInterval)
	out := make([]Reading, 0, perDay*cfg.Days)

	// Per-day extremes wander around the seasonal means.
	lows := make([]float64, cfg.Days+1)
	highs := make([]float64, cfg.Days+1)
	for d := range lows {
		lows[d] = cfg.MeanLow + rng.NormFloat64()*cfg.DayVariation
		highs[d] = cfg.MeanHigh + rng.NormFloat64()*cfg.DayVariation
	}

	pole := cfg.MeanLow + cfg.DeviceLoad // start pre-dawn, near ambient
	alpha := 1 - math.Exp(-SampleInterval.Minutes()/cfg.LagMinutes)

	for d := 0; d < cfg.Days; d++ {
		for i := 0; i < perDay; i++ {
			at := cfg.Start.Add(time.Duration(d)*24*time.Hour + time.Duration(i)*SampleInterval)
			hour := float64(i) * SampleInterval.Hours()

			// Ambient: minimum ~05:00, maximum ~16:00 (desert asymmetric
			// curve approximated by a phase-shifted cosine).
			phase := (hour - 16) / 24 * 2 * math.Pi
			frac := (math.Cos(phase) + 1) / 2 // 1 at 16:00, 0 at 04:00
			weather := lows[d] + (highs[d]-lows[d])*frac + rng.NormFloat64()*0.3

			// Compartment equilibrium: ambient + solar gain (daylight
			// bell centered 13:00) + device load; the enclosure tracks it
			// with a first-order lag.
			solar := 0.0
			if hour > 6 && hour < 20 {
				solar = cfg.SolarGain * math.Pow(math.Sin((hour-6)/14*math.Pi), 2)
			}
			equilibrium := weather + solar + cfg.DeviceLoad
			pole += alpha * (equilibrium - pole)

			out = append(out, Reading{
				At:      at,
				Weather: weather,
				Pole:    pole + rng.NormFloat64()*cfg.NoiseStd,
			})
		}
	}
	return out
}

// Stats summarizes a series the way Section VII-D reports it.
type Stats struct {
	Min, Max, Mean float64
	// PeakDelta is the mean pole−weather difference during the hottest
	// hours (13:00–17:00); CoolDelta the same during 00:00–06:00.
	PeakDelta, CoolDelta float64
	// HoursAboveRated is the total time the pole met or exceeded
	// ratedLimit — the same meets-or-exceeds comparison the backend uses
	// to raise overheat alerts, so a reading at exactly the rated limit
	// counts in both places.
	HoursAboveRated float64
}

// Summarize computes the Figure 10 statistics; ratedLimit is the device's
// maximum rated operating temperature (50 °C for the Coral Dev Board).
func Summarize(readings []Reading, ratedLimit float64) Stats {
	if len(readings) == 0 {
		return Stats{}
	}
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	var peakSum, coolSum float64
	var peakN, coolN int
	for _, r := range readings {
		if r.Pole < s.Min {
			s.Min = r.Pole
		}
		if r.Pole > s.Max {
			s.Max = r.Pole
		}
		sum += r.Pole
		h := r.At.Hour()
		switch {
		case h >= 13 && h < 17:
			peakSum += r.Pole - r.Weather
			peakN++
		case h < 6:
			coolSum += r.Pole - r.Weather
			coolN++
		}
		if r.Pole >= ratedLimit {
			s.HoursAboveRated += SampleInterval.Hours()
		}
	}
	s.Mean = sum / float64(len(readings))
	if peakN > 0 {
		s.PeakDelta = peakSum / float64(peakN)
	}
	if coolN > 0 {
		s.CoolDelta = coolSum / float64(coolN)
	}
	return s
}

// DailyMax returns the per-day maximum pole temperature.
func DailyMax(readings []Reading) []float64 {
	var out []float64
	var day int = -1
	for _, r := range readings {
		d := r.At.YearDay()
		if day != d {
			out = append(out, r.Pole)
			day = d
			continue
		}
		if r.Pole > out[len(out)-1] {
			out[len(out)-1] = r.Pole
		}
	}
	return out
}
