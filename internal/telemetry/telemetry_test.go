package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestSimulateSeriesShape(t *testing.T) {
	cfg := SummerConfig()
	readings := Simulate(cfg)
	perDay := int(24 * time.Hour / SampleInterval)
	if len(readings) != perDay*cfg.Days {
		t.Fatalf("got %d readings, want %d", len(readings), perDay*cfg.Days)
	}
	// ~847 samples/day at 1.7-minute cadence.
	if perDay < 800 || perDay > 900 {
		t.Errorf("samples per day = %d", perDay)
	}
	// Timestamps advance by SampleInterval.
	if got := readings[1].At.Sub(readings[0].At); got != SampleInterval {
		t.Errorf("interval = %v", got)
	}
	if !readings[0].At.Equal(cfg.Start) {
		t.Errorf("series starts at %v", readings[0].At)
	}
}

func TestSummerStatisticsMatchPaperEnvelope(t *testing.T) {
	readings := Simulate(SummerConfig())
	s := Summarize(readings, 50)

	// Paper (Section VII-D): max 57.81 °C, min 21.00 °C, mean 41.95 °C.
	if s.Max < 50 || s.Max > 65 {
		t.Errorf("max pole temp = %.1f, want within the paper's 50–65 envelope", s.Max)
	}
	if s.Min < 18 || s.Min > 32 {
		t.Errorf("min pole temp = %.1f", s.Min)
	}
	if s.Mean < 35 || s.Mean > 48 {
		t.Errorf("mean pole temp = %.1f", s.Mean)
	}
	// Pole runs ≈10 °C hotter than ambient at peak, < 5 °C when cool.
	if s.PeakDelta < 6 || s.PeakDelta > 14 {
		t.Errorf("peak delta = %.1f, want ≈10", s.PeakDelta)
	}
	if s.CoolDelta < 0 || s.CoolDelta > 5 {
		t.Errorf("cool delta = %.1f, want < 5", s.CoolDelta)
	}
	// The compartment does exceed the Coral's 50 °C rating during peaks.
	if s.HoursAboveRated <= 0 {
		t.Error("expected some hours above the 50 °C rating")
	}
}

func TestPoleTracksWeather(t *testing.T) {
	readings := Simulate(SummerConfig())
	// Afternoon pole temperature must exceed pre-dawn pole temperature on
	// every day (diurnal cycle).
	perDay := int(24 * time.Hour / SampleInterval)
	for d := 0; d < 3; d++ {
		preDawn := readings[d*perDay+perDay*4/24].Pole    // ~04:00
		afternoon := readings[d*perDay+perDay*16/24].Pole // ~16:00
		if afternoon <= preDawn+5 {
			t.Errorf("day %d: afternoon %.1f not clearly above pre-dawn %.1f", d, afternoon, preDawn)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Simulate(SummerConfig())
	b := Simulate(SummerConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d differs across identical seeds", i)
		}
	}
	cfg := SummerConfig()
	cfg.Seed = 2
	c := Simulate(cfg)
	same := true
	for i := range a {
		if a[i].Pole != c[i].Pole {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical series")
	}
}

func TestDailyMax(t *testing.T) {
	cfg := SummerConfig()
	cfg.Days = 3
	readings := Simulate(cfg)
	maxes := DailyMax(readings)
	if len(maxes) != 3 {
		t.Fatalf("got %d daily maxima", len(maxes))
	}
	for d, m := range maxes {
		if m < 40 || m > 65 {
			t.Errorf("day %d max = %.1f", d, m)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 50)
	if s.HoursAboveRated != 0 || s.Mean != 0 {
		t.Error("empty summary should be zero")
	}
}

// TestRatedLimitBoundaryMeetsOrExceeds pins the threshold comparison the
// backend's overheat alerting also uses: a reading at exactly the rated
// limit counts toward HoursAboveRated.
func TestRatedLimitBoundaryMeetsOrExceeds(t *testing.T) {
	base := time.Date(2023, time.June, 24, 12, 0, 0, 0, time.UTC)
	readings := []Reading{
		{At: base, Pole: 50.0},                       // exactly rated: must count
		{At: base.Add(SampleInterval), Pole: 49.99},  // below: must not
		{At: base.Add(2 * SampleInterval), Pole: 51}, // above: must count
	}
	s := Summarize(readings, 50)
	want := 2 * SampleInterval.Hours()
	if math.Abs(s.HoursAboveRated-want) > 1e-9 {
		t.Errorf("HoursAboveRated = %v, want %v (boundary reading at exactly 50°C must count)", s.HoursAboveRated, want)
	}
}
