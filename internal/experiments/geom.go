package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"hawccc/internal/cluster"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/geom/kernels"
	"hawccc/internal/ground"
	"hawccc/internal/spatial"
)

// GeomRow compares the structure-of-arrays geometry stage with the SIMD
// kernels enabled against the scalar array-of-structs path (the PR 5
// baseline) on one scene shape. The timed region is the geometry stage
// proper — the grid build, the k-distance curve behind the adaptive ε,
// and the ε-region sweep the DBSCAN core issues — at each frame's
// adaptive ε. Both engines run over the same float32-rounded
// coordinates, so full adaptive clustering must agree exactly; an
// untimed clustering pass on every frame checks labels and ε across
// paths (filter-and-refine makes the vector path bit-identical).
type GeomRow struct {
	People     int     `json:"people"`
	Objects    int     `json:"objects"`
	Frames     int     `json:"frames"`
	MeanPoints float64 `json:"mean_points"`
	// Per-frame geometry-stage latency quantiles for the vectorized
	// SoA stage and the scalar AoS stage.
	VecP50Ms    float64 `json:"vec_p50_ms"`
	VecP95Ms    float64 `json:"vec_p95_ms"`
	VecP99Ms    float64 `json:"vec_p99_ms"`
	ScalarP50Ms float64 `json:"scalar_p50_ms"`
	ScalarP95Ms float64 `json:"scalar_p95_ms"`
	ScalarP99Ms float64 `json:"scalar_p99_ms"`
	// Speedup is best-trial scalar wall time over best-trial vectorized
	// wall time for the row's frame set.
	Speedup float64 `json:"speedup"`
	// LabelsEquivalent reports whether both paths produced identical
	// cluster labels and ε on every frame of the row.
	LabelsEquivalent bool `json:"labels_equivalent"`
}

// GeomBenchResult is the full sweep plus the CI gate fields.
type GeomBenchResult struct {
	NumCPU int `json:"num_cpu"`
	Trials int `json:"trials"`
	// Vectorized records whether the SIMD kernels were actually available
	// on the benchmark host; when false the "vectorized" engine degrades
	// to the scalar SoA path and Speedup hovers near 1.
	Vectorized bool      `json:"vectorized"`
	Rows       []GeomRow `json:"rows"`
	// GeomSpeedup is the Speedup of the row with the largest mean
	// ingested cloud — the number CI gates on: the SIMD stage must hold
	// its margin where the real-time budget is tightest.
	GeomSpeedup float64 `json:"geom_speedup"`
	// LabelsEquivalent is the conjunction over all rows.
	LabelsEquivalent bool `json:"labels_equivalent"`
}

const (
	geomBenchTrials = 15
	geomBenchFrames = 8
)

// geomBenchPeople extends the cluster sweep into the dense-crowd regime
// where the per-frame distance work dominates.
var (
	geomBenchPeople  = []int{2, 8, 16, 24}
	geomBenchObjects = []int{4}
)

// GeomBench measures what the SoA layout plus the 8-wide distance
// kernels buy over the scalar geometry stage, sweeping crowd density.
// Every frame's full-clustering labels are compared across paths; a
// mismatch anywhere flips the row's (and the result's) equivalence flag.
func GeomBench(l *Lab) GeomBenchResult {
	cfg := cluster.DefaultAdaptiveConfig()
	roi := ground.DefaultROI()
	res := GeomBenchResult{
		NumCPU:           runtime.NumCPU(),
		Trials:           geomBenchTrials,
		Vectorized:       kernels.Vectorized(),
		LabelsEquivalent: true,
	}
	largestPoints := -1.0
	for _, objects := range geomBenchObjects {
		for _, people := range geomBenchPeople {
			l.logf("geom bench: %d people, %d objects, vectorized SoA vs scalar AoS, best of %d trials over %d frames...",
				people, objects, geomBenchTrials, geomBenchFrames)
			gen := dataset.NewGenerator(l.Cfg.Seed + 11 + int64(people*100+objects))
			frames := gen.CrowdFrames(geomBenchFrames, people, people, objects)
			// Round each ingested cloud through float32 once so both
			// engines see identical coordinates; the SoA path stores
			// float32 natively, the scalar path gets the widened cloud.
			soas := make([]*geom.CloudSoA, len(frames))
			clouds := make([]geom.Cloud, len(frames))
			var points int
			for i := range frames {
				ingested := ground.Segment(roi.Crop(frames[i].Cloud), ground.DefaultZMin)
				soas[i] = &geom.CloudSoA{}
				soas[i].FromCloud(ingested)
				clouds[i] = soas[i].ToCloud()
				points += soas[i].Len()
			}
			row := benchGeomRow(soas, clouds, cfg)
			row.People, row.Objects, row.Frames = people, objects, geomBenchFrames
			row.MeanPoints = float64(points) / float64(len(soas))
			res.Rows = append(res.Rows, row)
			res.LabelsEquivalent = res.LabelsEquivalent && row.LabelsEquivalent
			if row.MeanPoints > largestPoints {
				largestPoints = row.MeanPoints
				res.GeomSpeedup = row.Speedup
			}
		}
	}
	return res
}

// benchGeomRow compares the two geometry engines over one frame set.
// It first runs full adaptive clustering on both paths, untimed, as the
// semantic gate (ε and every label must agree frame for frame) and to
// learn each frame's adaptive ε; it then times the geometry stage both
// clusterings are built on — grid build at the frame cell, the
// k-distance curve, and a full ε-region sweep at that frame's ε — with
// the buffers warm, the steady-state streaming pattern.
func benchGeomRow(soas []*geom.CloudSoA, clouds []geom.Cloud, cfg cluster.AdaptiveConfig) GeomRow {
	row := GeomRow{LabelsEquivalent: true}
	cell := cfg.FallbackEps
	k := cfg.K + 1 // the query point itself sits at distance 0

	prev := kernels.SetVectorized(true)
	eps := make([]float64, len(soas))
	vecLabels := make([][]int, len(soas))
	vecScratch := &cluster.Scratch{Kind: cluster.GridIndex}
	for i, soa := range soas {
		r := vecScratch.AdaptiveSoA(soa, cfg)
		vecLabels[i] = append([]int(nil), r.Labels...)
		eps[i] = r.Epsilon
	}
	kernels.SetVectorized(false)
	scalarScratch := &cluster.Scratch{Kind: cluster.GridIndex}
	for i, cloud := range clouds {
		r := scalarScratch.Adaptive(cloud, cfg)
		if r.Epsilon != eps[i] || !sameLabels(r.Labels, vecLabels[i]) {
			row.LabelsEquivalent = false
		}
	}

	var g spatial.Grid
	dists := make([]float64, 0, 4096)
	var rbuf []int
	var knnb []spatial.Neighbor
	runVec := func(i int) {
		soa := soas[i]
		n := soa.Len()
		g.ResetSoA(soa, cell)
		if cap(dists) < n {
			dists = make([]float64, n)
		}
		if g.KthFast(k) {
			g.KthDist2All(dists[:n], k)
		} else {
			for j := 0; j < n; j++ {
				knnb = g.KNNInto(knnb[:0], soa.At(j), k)
			}
		}
		for j := 0; j < n; j++ {
			rbuf = g.RadiusInto(rbuf[:0], soa.At(j), eps[i])
		}
	}
	runScalar := func(i int) {
		cloud := clouds[i]
		g.Reset(cloud, cell)
		for j := range cloud {
			knnb = g.KNNInto(knnb[:0], cloud[j], k)
			rbuf = g.RadiusInto(rbuf[:0], cloud[j], eps[i])
		}
	}
	vecBest, scalarBest, vecLat, scalarLat := benchGeomPair(len(soas), runVec, runScalar)
	kernels.SetVectorized(prev)
	row.VecP50Ms, row.VecP95Ms, row.VecP99Ms = p50p95p99(vecLat)
	row.ScalarP50Ms, row.ScalarP95Ms, row.ScalarP99Ms = p50p95p99(scalarLat)

	if vecBest > 0 {
		row.Speedup = scalarBest.Seconds() / vecBest.Seconds()
	}
	return row
}

// benchGeomPair runs geomBenchTrials timed passes of each engine over
// the frame set, alternating the engines trial by trial so a slow
// scheduling window on a shared host inflates both sides rather than
// biasing the ratio, and returns each engine's best wall time plus
// every per-frame latency sample.
func benchGeomPair(frames int, runVec, runScalar func(int)) (vecBest, scalarBest time.Duration, vecLat, scalarLat []float64) {
	vecLat = make([]float64, 0, frames*geomBenchTrials)
	scalarLat = make([]float64, 0, frames*geomBenchTrials)
	for trial := 0; trial < geomBenchTrials; trial++ {
		kernels.SetVectorized(true)
		start := time.Now()
		for i := 0; i < frames; i++ {
			t0 := time.Now()
			runVec(i)
			vecLat = append(vecLat, ms(time.Since(t0)))
		}
		if total := time.Since(start); vecBest == 0 || total < vecBest {
			vecBest = total
		}
		kernels.SetVectorized(false)
		start = time.Now()
		for i := 0; i < frames; i++ {
			t0 := time.Now()
			runScalar(i)
			scalarLat = append(scalarLat, ms(time.Since(t0)))
		}
		if total := time.Since(start); scalarBest == 0 || total < scalarBest {
			scalarBest = total
		}
	}
	return vecBest, scalarBest, vecLat, scalarLat
}

// FormatGeom renders the sweep as a console table.
func FormatGeom(r GeomBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores, SIMD kernels available: %v, best of %d trials, %d frames per row\n",
		r.NumCPU, r.Vectorized, r.Trials, geomBenchFrames)
	fmt.Fprintf(&b, "%-7s %-7s %9s %10s %10s %10s %10s %10s %10s %8s %6s\n",
		"People", "Objects", "Points", "Vec p50", "Vec p95", "Vec p99",
		"Scal p50", "Scal p95", "Scal p99", "Speedup", "Equal")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %-7d %9.0f %9.3fms %9.3fms %9.3fms %9.3fms %9.3fms %9.3fms %7.2fx %6v\n",
			row.People, row.Objects, row.MeanPoints,
			row.VecP50Ms, row.VecP95Ms, row.VecP99Ms,
			row.ScalarP50Ms, row.ScalarP95Ms, row.ScalarP99Ms,
			row.Speedup, row.LabelsEquivalent)
	}
	fmt.Fprintf(&b, "geometry-stage speedup at largest cloud: %.2fx, labels-equivalent: %v\n",
		r.GeomSpeedup, r.LabelsEquivalent)
	return b.String()
}

// WriteGeomJSON writes the sweep as the BENCH_geom.json artifact
// consumed by CI.
func WriteGeomJSON(w io.Writer, r GeomBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
