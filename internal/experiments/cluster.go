package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"hawccc/internal/cluster"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/ground"
)

// ClusterRow compares the two geometry-stage engines on one scene
// shape: the voxel grid with one build per frame (the production path)
// against the k-d tree path the pipeline ran before internal/spatial —
// a fresh tree per sub-pass (ε curve, coarse structure pass, final
// expansion) and no coarse-result reuse.
type ClusterRow struct {
	// People and Objects parameterize the generated scenes; MeanPoints is
	// the resulting mean ingested cloud size (after ROI crop and ground
	// removal) — the size the geometry stage actually clusters.
	People     int     `json:"people"`
	Objects    int     `json:"objects"`
	Frames     int     `json:"frames"`
	MeanPoints float64 `json:"mean_points"`
	// Per-frame adaptive-clustering latency quantiles (nearest-rank over
	// every trial's samples) and best-trial throughput ratio.
	GridP50Ms   float64 `json:"grid_p50_ms"`
	GridP95Ms   float64 `json:"grid_p95_ms"`
	GridP99Ms   float64 `json:"grid_p99_ms"`
	KDTreeP50Ms float64 `json:"kdtree_p50_ms"`
	KDTreeP95Ms float64 `json:"kdtree_p95_ms"`
	KDTreeP99Ms float64 `json:"kdtree_p99_ms"`
	// Speedup is best-trial k-d tree wall time over best-trial grid wall
	// time for the row's frame set.
	Speedup float64 `json:"speedup"`
	// LabelEquivalent reports whether both engines produced identical
	// cluster labels and ε on every frame of the row — checked on the
	// results the timed runs computed, not a separate pass.
	LabelEquivalent bool `json:"label_equivalent"`
}

// ClusterBenchResult is the full sweep plus the CI gate fields.
type ClusterBenchResult struct {
	NumCPU int          `json:"num_cpu"`
	Trials int          `json:"trials"`
	Rows   []ClusterRow `json:"rows"`
	// GridSpeedupLargest is the Speedup of the row with the largest mean
	// ingested cloud — the number CI gates on: the grid must not lose to
	// the k-d tree path where the paper's real-time claim is hardest.
	GridSpeedupLargest float64 `json:"grid_speedup_largest"`
	// LabelEquivalent is the conjunction over all rows.
	LabelEquivalent bool `json:"label_equivalent"`
}

// clusterBenchTrials is how many independently timed runs each engine
// gets per row; the best trial is the reported wall time.
const clusterBenchTrials = 3

// clusterBenchFrames is how many scenes each row generates.
const clusterBenchFrames = 10

// clusterBenchPeople and clusterBenchObjects define the density sweep:
// crowd sizes crossed with clutter levels, spanning the single-walker
// calibration scene up to the dense-crowd regime of Table VI.
var (
	clusterBenchPeople  = []int{1, 2, 4, 8}
	clusterBenchObjects = []int{2, 6}
)

// ClusterBench measures what the voxel grid and the one-build-per-frame
// geometry stage buy over the k-d tree path, sweeping cloud size ×
// crowd density. Every timed frame's labels are compared across engines;
// a mismatch anywhere flips the row's (and the result's) equivalence
// flag, so the artifact asserts correctness and speed together.
func ClusterBench(l *Lab) ClusterBenchResult {
	cfg := cluster.DefaultAdaptiveConfig()
	roi := ground.DefaultROI()
	res := ClusterBenchResult{
		NumCPU:          runtime.NumCPU(),
		Trials:          clusterBenchTrials,
		LabelEquivalent: true,
	}
	largestPoints := -1.0
	for _, objects := range clusterBenchObjects {
		for _, people := range clusterBenchPeople {
			l.logf("cluster bench: %d people, %d objects, grid vs kdtree, best of %d trials over %d frames...",
				people, objects, clusterBenchTrials, clusterBenchFrames)
			// A fresh generator per row keeps rows independent of sweep
			// order; min=max pins the crowd size.
			gen := dataset.NewGenerator(l.Cfg.Seed + 7 + int64(people*100+objects))
			frames := gen.CrowdFrames(clusterBenchFrames, people, people, objects)
			clouds := make([]geom.Cloud, len(frames))
			var points int
			for i := range frames {
				clouds[i] = ground.Segment(roi.Crop(frames[i].Cloud), ground.DefaultZMin)
				points += len(clouds[i])
			}
			row := benchClusterRow(clouds, cfg)
			row.People, row.Objects, row.Frames = people, objects, clusterBenchFrames
			row.MeanPoints = float64(points) / float64(len(clouds))
			res.Rows = append(res.Rows, row)
			res.LabelEquivalent = res.LabelEquivalent && row.LabelEquivalent
			if row.MeanPoints > largestPoints {
				largestPoints = row.MeanPoints
				res.GridSpeedupLargest = row.Speedup
			}
		}
	}
	return res
}

// benchClusterRow times both engines over one frame set. Each engine
// reuses one Scratch across the row (the steady-state streaming
// pattern); the k-d tree engine still rebuilds its trees per sub-pass by
// construction. Labels from the final trial are compared frame by frame.
func benchClusterRow(clouds []geom.Cloud, cfg cluster.AdaptiveConfig) ClusterRow {
	row := ClusterRow{LabelEquivalent: true}

	gridLabels := make([][]int, len(clouds))
	gridEps := make([]float64, len(clouds))
	grid := &cluster.Scratch{Kind: cluster.GridIndex}
	gridBest, gridLat := benchClusterEngine(grid, clouds, cfg, func(i int, r cluster.Result) {
		gridLabels[i] = append(gridLabels[i][:0], r.Labels...)
		gridEps[i] = r.Epsilon
	})
	row.GridP50Ms, row.GridP95Ms, row.GridP99Ms = p50p95p99(gridLat)

	tree := &cluster.Scratch{Kind: cluster.KDTreeIndex}
	treeBest, treeLat := benchClusterEngine(tree, clouds, cfg, func(i int, r cluster.Result) {
		if r.Epsilon != gridEps[i] || !sameLabels(r.Labels, gridLabels[i]) {
			row.LabelEquivalent = false
		}
	})
	row.KDTreeP50Ms, row.KDTreeP95Ms, row.KDTreeP99Ms = p50p95p99(treeLat)

	if gridBest > 0 {
		row.Speedup = treeBest.Seconds() / gridBest.Seconds()
	}
	return row
}

// benchClusterEngine runs clusterBenchTrials timed passes of one engine
// over the frame set, returning the best wall time and every per-frame
// latency sample. check sees each frame's result on every trial.
func benchClusterEngine(s *cluster.Scratch, clouds []geom.Cloud, cfg cluster.AdaptiveConfig, check func(int, cluster.Result)) (time.Duration, []float64) {
	var best time.Duration
	lat := make([]float64, 0, len(clouds)*clusterBenchTrials)
	for trial := 0; trial < clusterBenchTrials; trial++ {
		start := time.Now()
		for i, cloud := range clouds {
			t0 := time.Now()
			r := s.Adaptive(cloud, cfg)
			lat = append(lat, ms(time.Since(t0)))
			check(i, r)
		}
		if total := time.Since(start); best == 0 || total < best {
			best = total
		}
	}
	return best, lat
}

func sameLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// p50p95p99 returns the 50th, 95th and 99th percentile of the samples
// (nearest-rank on the sorted slice; the slice is sorted in place).
func p50p95p99(samples []float64) (p50, p95, p99 float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(samples)
	rank := func(q float64) float64 {
		i := int(q*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}

// FormatCluster renders the sweep as a console table.
func FormatCluster(r ClusterBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores, best of %d trials, %d frames per row, adaptive DBSCAN per ingested frame\n",
		r.NumCPU, r.Trials, clusterBenchFrames)
	fmt.Fprintf(&b, "%-7s %-7s %9s %10s %10s %10s %10s %10s %10s %8s %6s\n",
		"People", "Objects", "Points", "Grid p50", "Grid p95", "Grid p99",
		"Tree p50", "Tree p95", "Tree p99", "Speedup", "Equal")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %-7d %9.0f %9.3fms %9.3fms %9.3fms %9.3fms %9.3fms %9.3fms %7.2fx %6v\n",
			row.People, row.Objects, row.MeanPoints,
			row.GridP50Ms, row.GridP95Ms, row.GridP99Ms,
			row.KDTreeP50Ms, row.KDTreeP95Ms, row.KDTreeP99Ms,
			row.Speedup, row.LabelEquivalent)
	}
	fmt.Fprintf(&b, "grid speedup at largest cloud: %.2fx, label-equivalent: %v\n",
		r.GridSpeedupLargest, r.LabelEquivalent)
	return b.String()
}

// WriteClusterJSON writes the sweep as the BENCH_cluster.json artifact
// consumed by CI.
func WriteClusterJSON(w io.Writer, r ClusterBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
