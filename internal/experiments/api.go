package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/fleet"
)

// The api experiment measures what the snapshot-keyed response cache
// buys the query API: every cacheable endpoint is served twice per pole
// count — once from the pre-serialized bodies, once with the cache
// disabled so every request pays a full JSON encode of the same
// snapshot — and the ratio is the CI-gated speedup. Bodies must be
// byte-identical between the two paths (the cache is a serving
// optimization, never a semantic change), and a concurrent HTTP phase
// with conditional revalidations bounds query p99 under combined
// report + dashboard load.

// apiPoleCounts is the sweep: the 1k campus and the 10k-pole fleet
// whose /api/poles body is megabytes — the case pre-serialization
// exists for.
var apiPoleCounts = []int{1000, 10000}

// apiEndpointPaths are the cacheable requests measured in the A/B
// phase and mixed round-robin for the aggregate rate.
var apiEndpointPaths = []string{"/api/campus", "/api/poles", "/api/zones", "/api/top?k=10"}

// apiConditionalPercent is the HTTP phase's revalidation share: half
// the dashboard queries carry If-None-Match, matching a polling
// dashboard that reuses validators between refreshes.
const apiConditionalPercent = 50

// apiMeasureBudget is the wall-clock budget per (endpoint, mode)
// throughput loop.
const apiMeasureBudget = 150 * time.Millisecond

// ApiEndpointRow is one endpoint's cached-vs-encode A/B.
type ApiEndpointRow struct {
	Path              string  `json:"path"`
	BodyBytes         int     `json:"body_bytes"`
	CachedOpsPerSec   float64 `json:"cached_ops_per_sec"`
	UncachedOpsPerSec float64 `json:"uncached_ops_per_sec"`
	Speedup           float64 `json:"speedup"`
	BodiesIdentical   bool    `json:"bodies_identical"`
}

// ApiRow is one pole-count point.
type ApiRow struct {
	Poles     int              `json:"poles"`
	Endpoints []ApiEndpointRow `json:"endpoints"`
	// Aggregate round-robin mix over the cacheable endpoints — the
	// number a dashboard actually experiences, and the gated ratio.
	CachedOpsPerSec   float64 `json:"cached_ops_per_sec"`
	UncachedOpsPerSec float64 `json:"uncached_ops_per_sec"`
	CachedSpeedup     float64 `json:"cached_speedup"`
	BodiesIdentical   bool    `json:"bodies_identical"`
	// The HTTP phase: dashboard workers with conditional revalidations
	// querying while the synthetic fleet streams reports.
	Queries     int     `json:"queries"`
	QueryQPS    float64 `json:"query_qps"`
	QueryP50Ms  float64 `json:"query_p50_ms"`
	QueryP99Ms  float64 `json:"query_p99_ms"`
	NotModified int     `json:"not_modified"`
	QueryErrors int     `json:"query_errors"`
}

// ApiBenchResult is the sweep plus the CI gate fields (taken at the
// largest fleet, where the uncached encode cost peaks).
type ApiBenchResult struct {
	NumCPU             int      `json:"num_cpu"`
	QueryWorkers       int      `json:"query_workers"`
	ConditionalPercent int      `json:"conditional_percent"`
	Rows               []ApiRow `json:"rows"`
	LargestPoles       int      `json:"largest_poles"`
	CachedSpeedup      float64  `json:"cached_speedup"`
	BodiesIdentical    bool     `json:"bodies_identical"`
	QueryP99Ms         float64  `json:"query_p99_ms"`
	NotModified        int      `json:"not_modified"`
}

// ApiBench runs the query-serving A/B per pole count.
func ApiBench(l *Lab) ApiBenchResult {
	res := ApiBenchResult{
		NumCPU:             runtime.NumCPU(),
		QueryWorkers:       fleetQueryWorkers,
		ConditionalPercent: apiConditionalPercent,
		BodiesIdentical:    true,
	}
	target := fleetTargetReports(l.Cfg)
	for _, poles := range apiPoleCounts {
		reportsPerPole := target / poles
		if reportsPerPole < 2 {
			reportsPerPole = 2
		}
		l.logf("api bench: %d poles × %d reports, %d conditional-mix query workers...",
			poles, reportsPerPole, fleetQueryWorkers)
		row := benchApiRow(l, poles, reportsPerPole)
		res.Rows = append(res.Rows, row)
		res.BodiesIdentical = res.BodiesIdentical && row.BodiesIdentical
		res.NotModified += row.NotModified
		if poles > res.LargestPoles {
			res.LargestPoles = poles
			res.CachedSpeedup = row.CachedSpeedup
			res.QueryP99Ms = row.QueryP99Ms
		}
	}
	return res
}

// benchApiRow stands up one backend, runs the combined-load HTTP phase,
// then the direct-handler A/B over a frozen snapshot.
func benchApiRow(l *Lab, poles, reportsPerPole int) ApiRow {
	srv, err := backend.Listen(backend.Config{
		Addr:    "127.0.0.1:0",
		APIAddr: "127.0.0.1:0",
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: api backend: %v", err))
	}
	defer srv.Close()

	// Phase 1 — combined load: the synthetic fleet streams reports while
	// dashboard workers (half of them revalidating with If-None-Match)
	// hammer the HTTP API. Snapshot rebuilds rotate the ETag under them.
	qctx, stopQueries := context.WithCancel(context.Background())
	queryDone := make(chan fleet.QueryResult, 1)
	go func() {
		queryDone <- fleet.Query(qctx, fleet.QueryConfig{
			BaseURL:            "http://" + srv.APIAddr(),
			Workers:            fleetQueryWorkers,
			Poles:              poles,
			ConditionalPercent: apiConditionalPercent,
			Seed:               l.Cfg.Seed + int64(poles) + 1,
		})
	}()
	if _, err := fleet.Report(context.Background(), fleet.ReportConfig{
		Addr:           srv.Addr(),
		Poles:          poles,
		ReportsPerPole: reportsPerPole,
		Seed:           l.Cfg.Seed + int64(poles),
	}); err != nil {
		panic(fmt.Sprintf("experiments: api report load: %v", err))
	}
	time.Sleep(fleetQueryGrace)
	stopQueries()
	qres := <-queryDone

	// Phase 2 — the A/B. Freeze one snapshot so both paths serialize the
	// same state, then drive the handler directly (no sockets) so the
	// measured delta is purely serving cost: pre-serialized body vs
	// per-request JSON encode.
	srv.RebuildSnapshot()
	h := srv.APIHandler()
	row := ApiRow{
		Poles:           poles,
		BodiesIdentical: true,
		Queries:         qres.Queries,
		QueryQPS:        qres.QPS,
		QueryP50Ms:      qres.Latency.P50Ms,
		QueryP99Ms:      qres.Latency.P99Ms,
		NotModified:     qres.NotModified,
		QueryErrors:     qres.Errors + qres.NonOK,
	}
	reqs := make([]*http.Request, len(apiEndpointPaths))
	for i, path := range apiEndpointPaths {
		reqs[i] = httptest.NewRequest("GET", path, nil)
		er := ApiEndpointRow{Path: path}
		srv.SetResponseCache(true)
		cachedBody := recordBody(h, reqs[i])
		er.CachedOpsPerSec = measureServeRate(h, reqs[i:i+1])
		srv.SetResponseCache(false)
		uncachedBody := recordBody(h, reqs[i])
		er.UncachedOpsPerSec = measureServeRate(h, reqs[i:i+1])
		srv.SetResponseCache(true)
		er.BodyBytes = len(cachedBody)
		er.BodiesIdentical = bytes.Equal(cachedBody, uncachedBody)
		if er.UncachedOpsPerSec > 0 {
			er.Speedup = er.CachedOpsPerSec / er.UncachedOpsPerSec
		}
		row.Endpoints = append(row.Endpoints, er)
		row.BodiesIdentical = row.BodiesIdentical && er.BodiesIdentical
	}
	row.CachedOpsPerSec = measureServeRate(h, reqs)
	srv.SetResponseCache(false)
	row.UncachedOpsPerSec = measureServeRate(h, reqs)
	srv.SetResponseCache(true)
	if row.UncachedOpsPerSec > 0 {
		row.CachedSpeedup = row.CachedOpsPerSec / row.UncachedOpsPerSec
	}
	return row
}

// recordBody captures one response body for the byte-identity check.
func recordBody(h http.Handler, req *http.Request) []byte {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		panic(fmt.Sprintf("experiments: api bench %s: status %d", req.URL, rec.Code))
	}
	return rec.Body.Bytes()
}

// benchWriter discards response bodies without allocating, so the
// throughput loops time serving, not measurement overhead. The header
// map is cleared (not reallocated) between requests — matching what
// net/http's connection-pooled header maps cost a real handler.
type benchWriter struct {
	h http.Header
}

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *benchWriter) WriteHeader(int)             {}

// measureServeRate drives the handler round-robin over reqs for the
// measurement budget and returns requests/sec.
func measureServeRate(h http.Handler, reqs []*http.Request) float64 {
	w := &benchWriter{h: make(http.Header)}
	for _, req := range reqs { // warm: route resolution, pool priming
		h.ServeHTTP(w, req)
		clear(w.h)
	}
	const batch = 64
	ops := 0
	start := time.Now()
	for time.Since(start) < apiMeasureBudget {
		for i := 0; i < batch; i++ {
			h.ServeHTTP(w, reqs[ops%len(reqs)])
			clear(w.h)
			ops++
		}
	}
	return float64(ops) / time.Since(start).Seconds()
}

// FormatApi renders the sweep as a console table.
func FormatApi(r ApiBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores; %d query workers, %d%% conditional revalidations\n",
		r.NumCPU, r.QueryWorkers, r.ConditionalPercent)
	fmt.Fprintf(&b, "%-7s %-16s %10s %12s %12s %9s %6s\n",
		"Poles", "Endpoint", "Body", "Cached/s", "Encode/s", "Speedup", "Same")
	for _, row := range r.Rows {
		for _, e := range row.Endpoints {
			fmt.Fprintf(&b, "%-7d %-16s %9dB %12.0f %12.0f %8.1fx %6v\n",
				row.Poles, strings.TrimPrefix(e.Path, "/api/"), e.BodyBytes,
				e.CachedOpsPerSec, e.UncachedOpsPerSec, e.Speedup, e.BodiesIdentical)
		}
		fmt.Fprintf(&b, "%-7d %-16s %10s %12.0f %12.0f %8.1fx %6v\n",
			row.Poles, "mix", "", row.CachedOpsPerSec, row.UncachedOpsPerSec,
			row.CachedSpeedup, row.BodiesIdentical)
		fmt.Fprintf(&b, "%-7d %-16s queries %d, QPS %.0f, p50 %.3fms p99 %.3fms, 304s %d, errors %d\n",
			row.Poles, "http", row.Queries, row.QueryQPS,
			row.QueryP50Ms, row.QueryP99Ms, row.NotModified, row.QueryErrors)
	}
	fmt.Fprintf(&b, "at %d poles: cached mix %.1fx the per-request encode path, bodies identical: %v, query p99 %.3fms\n",
		r.LargestPoles, r.CachedSpeedup, r.BodiesIdentical, r.QueryP99Ms)
	return b.String()
}

// WriteApiJSON writes the sweep as the BENCH_api.json artifact consumed
// by CI.
func WriteApiJSON(w io.Writer, r ApiBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
