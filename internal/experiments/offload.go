package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/ground"
	"hawccc/internal/pole"
	"hawccc/internal/wire"
)

// OffloadBenchResult measures the adaptive edge/cloud offload path end
// to end in three phases. Phase 1 (transport) runs the real ingest +
// cluster stages over the lab's crowd frames and studies the quantized
// wire encoding: bytes per frame against the float32 baseline, the
// worst dequantization error against the codec's tolerance bound, and
// HAWC's labels on the edge's lattice-snapped clusters vs the backend's
// wire-decoded ones (equal by construction — both sides classify
// bit-identical clouds). Phase 2
// (saturation) races an edge-only pole against a forced-offload pole
// through a live backend on dense frames with the edge classify stage
// pinned to one worker — the induced-saturation regime where shipping
// clusters to the backend's coalescing batch classifier must not lose
// throughput. Phase 3 (adaptive) drives the hysteresis controller
// through a deterministic thermal ramp and checks it actually switches
// both ways while preserving counts.
type OffloadBenchResult struct {
	NumCPU int `json:"num_cpu"`

	// Phase 1 — quantized transport study over the real pipeline stages.
	WireFrames           int     `json:"wire_frames"`
	WireClusters         int     `json:"wire_clusters"`
	WirePoints           int     `json:"wire_points"`
	QuantBytes           int     `json:"quant_bytes"`
	Float32Bytes         int     `json:"float32_bytes"`
	BytesPerFrameQuant   float64 `json:"bytes_per_frame_quant"`
	BytesPerFrameFloat32 float64 `json:"bytes_per_frame_float32"`
	CompressionVsFloat32 float64 `json:"compression_vs_float32"`
	MaxCoordErrM         float64 `json:"max_coord_err_m"`
	ToleranceM           float64 `json:"tolerance_m"`
	WithinTolerance      bool    `json:"within_tolerance"`
	LabelAgreement       float64 `json:"label_agreement"`
	WireCountsEqual      bool    `json:"wire_counts_equal"`

	// Phase 2 — live-backend throughput at induced edge saturation.
	SaturationFrames    int     `json:"saturation_frames"`
	EdgeFramesPerSec    float64 `json:"edge_frames_per_sec"`
	OffloadFramesPerSec float64 `json:"offload_frames_per_sec"`
	OffloadSpeedup      float64 `json:"offload_speedup"`
	EdgeCampusCount     uint64  `json:"edge_campus_count"`
	OffloadCampusCount  uint64  `json:"offload_campus_count"`
	E2ECountsEqual      bool    `json:"e2e_counts_equal"`

	// Phase 3 — adaptive controller under a deterministic thermal ramp.
	AdaptiveFrames      int    `json:"adaptive_frames"`
	AdaptiveSwitches    uint64 `json:"adaptive_switches"`
	AdaptiveLocal       uint64 `json:"adaptive_local"`
	AdaptiveRemote      uint64 `json:"adaptive_remote"`
	AdaptiveFallback    uint64 `json:"adaptive_fallback"`
	AdaptiveSwitched    bool   `json:"adaptive_switched"`
	AdaptiveCountsEqual bool   `json:"adaptive_counts_equal"`

	// CountEquivalent is the headline gate: every phase's counts through
	// the offload path equal the edge-only reference.
	CountEquivalent bool `json:"count_equivalent"`
}

// offloadSaturationWorkers is the offloaded pole's classify-stage
// width: enough in-flight frames that the backend's workers coalesce
// batches, while the edge-only reference runs the same stage at width 1
// (the saturated-pole regime the offload exists for).
const offloadSaturationWorkers = 4

// OffloadBench runs the three offload phases; see OffloadBenchResult.
func OffloadBench(l *Lab) OffloadBenchResult {
	res := OffloadBenchResult{NumCPU: runtime.NumCPU()}
	l.logf("offload bench: phase 1 — quantized transport over %d frames...", len(l.Frames()))
	benchOffloadWire(l, &res)

	srv, err := backend.Listen(backend.Config{
		Addr:             "127.0.0.1:0",
		SnapshotInterval: -1,
		Classifier:       l.HAWC(),
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: offload backend: %v", err))
	}
	defer srv.Close()

	l.logf("offload bench: phase 2 — edge-only vs forced offload at induced saturation...")
	benchOffloadSaturation(l, srv, &res)
	l.logf("offload bench: phase 3 — adaptive thermal ramp...")
	benchOffloadAdaptive(l, srv, &res)

	res.CountEquivalent = res.WireCountsEqual && res.E2ECountsEqual && res.AdaptiveCountsEqual
	return res
}

// benchOffloadWire replicates the pipeline's ingest and cluster stages
// (ROI crop, ground removal, adaptive DBSCAN, the MinClusterPoints
// filter) and pushes every frame's kept clusters through the quantized
// codec. It measures size against the float32 baseline and the raw
// coordinate error against the codec's tolerance bound, then checks the
// label-equivalence contract: the edge pipeline classifies clusters
// snapped onto the classification lattice (counting.Pipeline's
// LatticeScale default), and the backend classifies what it decodes off
// the wire — HAWC must agree cluster for cluster because both sides see
// bit-identical clouds.
func benchOffloadWire(l *Lab, res *OffloadBenchResult) {
	clf := l.HAWC()
	frames := l.Frames()
	roi := ground.DefaultROI()
	clusterer := counting.NewAdaptiveClusterer()
	res.ToleranceM = wire.DefaultQuantScale / 2

	var cropped, ingested geom.Cloud
	var clusters []geom.Cloud
	agree, labels := 0, 0
	res.WireCountsEqual = true
	res.WithinTolerance = true
	for seq, f := range frames {
		cropped = roi.CropInto(cropped[:0], f.Cloud)
		ingested = ground.SegmentInto(ingested[:0], cropped, ground.DefaultZMin)
		cr := clusterer.Cluster(ingested)
		clusters = cr.ClustersInto(ingested, clusters[:0])
		kept := make([]geom.Cloud, 0, len(clusters))
		for _, c := range clusters {
			if len(c) >= dataset.MinVisiblePoints {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			continue
		}

		batch := wire.BuildClusterBatch(1, uint64(seq), kept, 0)
		body := wire.EncodeClusterBatch(batch)
		res.WireFrames++
		res.WireClusters += len(kept)
		res.WirePoints += batch.Points()
		res.QuantBytes += len(body)
		res.Float32Bytes += batch.Float32Bytes()

		decoded, err := wire.DecodeClusterBatch(body)
		if err != nil {
			panic(fmt.Sprintf("experiments: offload decode: %v", err))
		}
		// canon is what the edge pipeline classifies (the lattice snap of
		// stageKeep); deq is what the backend classifies after the wire.
		canon := make([]geom.Cloud, len(kept))
		deq := make([]geom.Cloud, len(kept))
		for i := range decoded.Clusters {
			canon[i] = batch.AppendCloud(i, nil)
			deq[i] = decoded.AppendCloud(i, nil)
			for j, p := range deq[i] {
				o := kept[i][j]
				for _, d := range [3]float64{p.X - o.X, p.Y - o.Y, p.Z - o.Z} {
					if a := math.Abs(d); a > res.MaxCoordErrM {
						res.MaxCoordErrM = a
					}
				}
			}
		}

		lo := clf.PredictHumans(canon)
		ld := clf.PredictHumans(deq)
		co, cd := 0, 0
		for i := range lo {
			if lo[i] == ld[i] {
				agree++
			}
			labels++
			if lo[i] {
				co++
			}
			if ld[i] {
				cd++
			}
		}
		if co != cd {
			res.WireCountsEqual = false
		}
	}
	if labels > 0 {
		res.LabelAgreement = float64(agree) / float64(labels)
	}
	if res.WireFrames > 0 {
		res.BytesPerFrameQuant = float64(res.QuantBytes) / float64(res.WireFrames)
		res.BytesPerFrameFloat32 = float64(res.Float32Bytes) / float64(res.WireFrames)
	}
	if res.QuantBytes > 0 {
		res.CompressionVsFloat32 = float64(res.Float32Bytes) / float64(res.QuantBytes)
	}
	if res.MaxCoordErrM > res.ToleranceM {
		res.WithinTolerance = false
	}
}

// offloadDenseFrames generates the saturation workload: crowded frames
// so the classify stage, not ingest or clustering, dominates.
func offloadDenseFrames(l *Lab) []dataset.Frame {
	n := 2 * l.Cfg.CrowdFrames
	if n < 40 {
		n = 40
	}
	g := dataset.NewGenerator(l.Cfg.Seed + 77)
	return g.CrowdFrames(n, 4, 8, 2)
}

// runOffloadPole streams frames through one pole node against srv and
// returns the wall-clock frames/sec.
func runOffloadPole(srv *backend.Server, l *Lab, frames []dataset.Frame, id uint32, mode counting.OffloadMode, classifyWorkers int) float64 {
	cfg := pole.Config{
		PoleID:      id,
		Location:    fmt.Sprintf("offload-bench-%d", id),
		BackendAddr: srv.Addr(),
		Pipeline:    counting.New(l.HAWC()),
		Source:      &pole.SliceSource{Frames: frames},
		Stream:      counting.StreamConfig{ClassifyWorkers: classifyWorkers},
		Offload:     counting.OffloadConfig{Mode: mode},
	}
	n, err := pole.Dial(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: offload pole %d: %v", id, err))
	}
	start := time.Now()
	processed, err := n.Run(context.Background())
	elapsed := time.Since(start)
	if err != nil || processed != len(frames) {
		panic(fmt.Sprintf("experiments: offload pole %d run: %d/%d frames, %v", id, processed, len(frames), err))
	}
	return float64(processed) / elapsed.Seconds()
}

// benchOffloadSaturation runs phase 2: the same dense frames through an
// edge-only pole whose classify stage is pinned to one worker, then
// through a forced-offload pole whose classify workers only quantize
// and ship while the backend coalesces the in-flight batches.
func benchOffloadSaturation(l *Lab, srv *backend.Server, res *OffloadBenchResult) {
	frames := offloadDenseFrames(l)
	res.SaturationFrames = len(frames)
	// Best-of-two, interleaved, damps scheduler noise on small hosts;
	// counts are read from the first trial's pole IDs (both trials
	// process identical frames, so either would do).
	edge1 := runOffloadPole(srv, l, frames, 9001, counting.OffloadOff, 1)
	off1 := runOffloadPole(srv, l, frames, 9002, counting.OffloadForced, offloadSaturationWorkers)
	edge2 := runOffloadPole(srv, l, frames, 9011, counting.OffloadOff, 1)
	off2 := runOffloadPole(srv, l, frames, 9012, counting.OffloadForced, offloadSaturationWorkers)
	res.EdgeFramesPerSec = math.Max(edge1, edge2)
	res.OffloadFramesPerSec = math.Max(off1, off2)
	if res.EdgeFramesPerSec > 0 {
		res.OffloadSpeedup = res.OffloadFramesPerSec / res.EdgeFramesPerSec
	}
	for _, p := range srv.Snapshot() {
		switch p.PoleID {
		case 9001:
			res.EdgeCampusCount = uint64(p.TotalCount)
		case 9002:
			res.OffloadCampusCount = uint64(p.TotalCount)
		}
	}
	res.E2ECountsEqual = res.EdgeCampusCount == res.OffloadCampusCount && res.EdgeCampusCount > 0
}

// benchOffloadAdaptive runs phase 3: three passes over the lab frames
// through one adaptive controller wired to a live backend offloader,
// with the compartment temperature stepped cool → hot → cool between
// passes. Queue and backpressure signals are disabled so the ramp is
// the only input, making the expected decision sequence deterministic:
// pass 1 local, pass 2 remote (entry is immediate), pass 3 returning
// local after the dwell.
func benchOffloadAdaptive(l *Lab, srv *backend.Server, res *OffloadBenchResult) {
	frames := l.Frames()
	res.AdaptiveFrames = 3 * len(frames)
	off := pole.NewOffloader(pole.OffloaderConfig{
		BackendAddr: srv.Addr(),
		PoleID:      9003,
		Location:    "offload-bench-adaptive",
	})
	defer off.Close()
	ctl := counting.NewOffloadController(counting.OffloadConfig{
		Mode:              counting.OffloadAdaptive,
		Remote:            off,
		EnterQueueDepth:   -1,
		EnterBackpressure: -1,
		MinDwellFrames:    4,
	})
	p := counting.New(l.HAWC())

	pass := func(tempC float64) int {
		ctl.SetTemperature(tempC)
		in := make(chan geom.Cloud)
		go func() {
			defer close(in)
			for i := range frames {
				in <- frames[i].Cloud
			}
		}()
		total := 0
		cfg := counting.StreamConfig{ClassifyWorkers: 1, Offload: ctl}
		for r := range p.StreamWith(context.Background(), in, cfg) {
			total += r.Count
		}
		return total
	}
	got := pass(25) + pass(55) + pass(25)

	ref := 0
	for i := range frames {
		ref += p.Count(frames[i].Cloud).Count
	}
	res.AdaptiveCountsEqual = got == 3*ref && ref > 0
	res.AdaptiveSwitches = ctl.Switches()
	res.AdaptiveLocal, res.AdaptiveRemote, res.AdaptiveFallback = ctl.Decisions()
	res.AdaptiveSwitched = res.AdaptiveSwitches >= 2 &&
		res.AdaptiveLocal > 0 && res.AdaptiveRemote > 0 && res.AdaptiveFallback == 0
}

// FormatOffload renders the benchmark as a console report.
func FormatOffload(r OffloadBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores\n", r.NumCPU)
	fmt.Fprintf(&b, "transport: %d frames, %d clusters, %d points\n",
		r.WireFrames, r.WireClusters, r.WirePoints)
	fmt.Fprintf(&b, "  quantized %.0f B/frame vs float32 %.0f B/frame — %.2fx smaller\n",
		r.BytesPerFrameQuant, r.BytesPerFrameFloat32, r.CompressionVsFloat32)
	fmt.Fprintf(&b, "  max coord error %.4f mm (bound %.4f mm, within: %v)\n",
		r.MaxCoordErrM*1000, r.ToleranceM*1000, r.WithinTolerance)
	fmt.Fprintf(&b, "  label agreement %.4f, per-frame counts equal: %v\n",
		r.LabelAgreement, r.WireCountsEqual)
	fmt.Fprintf(&b, "saturation: %d dense frames, edge-only %.2f f/s vs offloaded %.2f f/s — %.2fx\n",
		r.SaturationFrames, r.EdgeFramesPerSec, r.OffloadFramesPerSec, r.OffloadSpeedup)
	fmt.Fprintf(&b, "  campus counts: edge %d, offloaded %d, equal: %v\n",
		r.EdgeCampusCount, r.OffloadCampusCount, r.E2ECountsEqual)
	fmt.Fprintf(&b, "adaptive ramp: %d frames, %d switches, decisions local=%d remote=%d fallback=%d\n",
		r.AdaptiveFrames, r.AdaptiveSwitches, r.AdaptiveLocal, r.AdaptiveRemote, r.AdaptiveFallback)
	fmt.Fprintf(&b, "  switched both ways: %v, counts equal: %v\n",
		r.AdaptiveSwitched, r.AdaptiveCountsEqual)
	fmt.Fprintf(&b, "count equivalent across all phases: %v\n", r.CountEquivalent)
	return b.String()
}

// WriteOffloadJSON writes the benchmark as the BENCH_offload.json
// artifact consumed by CI.
func WriteOffloadJSON(w io.Writer, r OffloadBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
