package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestHistoryIngestRowQuick runs one small store-level ingest point; the
// 10k-pole sweep belongs to hawcbench/CI. Even this small row must
// conserve every sample — compression is only asserted loosely here
// because 64-sample chunks amortize the chunk header far worse than the
// production 512-sample chunks CI gates on.
func TestHistoryIngestRowQuick(t *testing.T) {
	row := benchHistoryIngestRow(50, 64)
	if row.Appends != 50*4*64 {
		t.Fatalf("appended %d samples, want %d", row.Appends, 50*4*64)
	}
	if !row.Conserved {
		t.Errorf("conservation failed: %+v", row)
	}
	if row.AppendsPerSec <= 0 {
		t.Errorf("appends/sec %v", row.AppendsPerSec)
	}
	if row.CompressionRatio < 3 {
		t.Errorf("compression %.2fx on integral-heavy series, want >= 3x even at tiny chunks", row.CompressionRatio)
	}
}

func TestHistoryRawRoundTrip(t *testing.T) {
	if !historyRawRoundTrip() {
		t.Error("adversarial raw round trip lost bits")
	}
}

// TestHistoryReplayQuick drives a scaled-down replay through a real
// backend and checks history queries were served and measured.
func TestHistoryReplayQuick(t *testing.T) {
	res := HistoryBenchResult{QueryWorkers: 4}
	l := NewLab(Quick())
	benchHistoryReplay(l, &res)
	if res.ReplayReports <= res.ReplayPoles {
		t.Fatalf("replay sent %d reports over %d poles", res.ReplayReports, res.ReplayPoles)
	}
	if res.HistoryQueries == 0 {
		t.Error("no history queries were issued")
	}
	if res.HistorySamplesCaptured == 0 || res.HistorySeries == 0 {
		t.Errorf("backend captured %d samples / %d series", res.HistorySamplesCaptured, res.HistorySeries)
	}
	if res.Queries > 0 && res.QueryErrors == res.Queries {
		t.Errorf("every query failed: %+v", res)
	}
}

func TestHistoryJSONRoundTrip(t *testing.T) {
	r := HistoryBenchResult{
		NumCPU:              8,
		CompressionRatio:    9.5,
		AllSamplesConserved: true,
		RawRoundTripExact:   true,
		HistoryQueryP99Ms:   1.25,
		Ingest:              []HistoryIngestRow{{Poles: 1000, CompressionRatio: 9.5, Conserved: true}},
	}
	var buf bytes.Buffer
	if err := WriteHistoryJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	// The CI jq gates key on these exact field names.
	for _, key := range []string{
		`"compression_ratio"`, `"all_samples_conserved"`,
		`"raw_round_trip_exact"`, `"history_query_p99_ms"`, `"bytes_per_sample"`,
	} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON artifact missing gate field %s", key)
		}
	}
	var decoded HistoryBenchResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.CompressionRatio != 9.5 || !decoded.AllSamplesConserved || len(decoded.Ingest) != 1 {
		t.Errorf("round-trip mangled result: %+v", decoded)
	}
	if s := FormatHistory(r); !strings.Contains(s, "p99") {
		t.Error("format output incomplete")
	}
}

// TestThermalBenchMatchesInMemory is the satellite gate: Figure 10
// derived from history-store reads must equal the in-memory telemetry
// analysis bit for bit.
func TestThermalBenchMatchesInMemory(t *testing.T) {
	r := ThermalBench(NewLab(Quick()))
	if !r.MatchesInMemory {
		t.Fatal("history-derived Figure 10 diverged from the in-memory analysis")
	}
	if r.Days != 18 {
		t.Errorf("derived %d days, want the paper's 18-day window", r.Days)
	}
	if r.Readings == 0 || r.StoreBytesPerSample <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
	if s := FormatThermal(r); !strings.Contains(s, "matches in-memory") {
		t.Error("format output incomplete")
	}
}
