// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII) on the simulated substrate. Each experiment is
// a function over a Lab, which lazily generates datasets and trains the
// four classifiers once, sharing them across experiments exactly as the
// paper's evaluation shares its trained models.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"hawccc/internal/dataset"
	"hawccc/internal/models"
	"hawccc/internal/obs"
)

// Config controls dataset sizes and training budgets.
type Config struct {
	// Seed drives everything; identical configs reproduce identical
	// numbers.
	Seed int64
	// SamplesPerClass sizes the single-person classification dataset
	// (the paper's is 15,028 captures).
	SamplesPerClass int
	// CrowdFrames sizes the multi-person counting dataset.
	CrowdFrames int
	// MaxPeoplePerFrame bounds pedestrians per counting frame.
	MaxPeoplePerFrame int
	// HAWCEpochs / PointNetEpochs / AEEpochs are training budgets.
	HAWCEpochs, PointNetEpochs, AEEpochs int
	// ScalabilityRuns and ScalabilityFrames size Table VI (paper: 3 runs
	// × 100 samples).
	ScalabilityRuns, ScalabilityFrames int
	// CurveEvalSamples bounds the test subset used for per-epoch accuracy
	// curves (Figure 8a) to keep evaluation affordable.
	CurveEvalSamples int
}

// Quick is a minutes-scale configuration used by tests and benchmarks;
// accuracy is lower than Standard but every relationship is preserved.
func Quick() Config {
	return Config{
		Seed:              42,
		SamplesPerClass:   320,
		CrowdFrames:       30,
		MaxPeoplePerFrame: 4,
		HAWCEpochs:        12,
		PointNetEpochs:    2,
		AEEpochs:          25,
		ScalabilityRuns:   1,
		ScalabilityFrames: 4,
		CurveEvalSamples:  60,
	}
}

// Standard is the configuration behind EXPERIMENTS.md: tens of minutes on
// one CPU core.
func Standard() Config {
	return Config{
		Seed:              42,
		SamplesPerClass:   1200,
		CrowdFrames:       100,
		MaxPeoplePerFrame: 6,
		HAWCEpochs:        24,
		PointNetEpochs:    6,
		AEEpochs:          60,
		ScalabilityRuns:   3,
		ScalabilityFrames: 10,
		CurveEvalSamples:  150,
	}
}

// Full approaches the paper's dataset scale; hours on one core.
func Full() Config {
	cfg := Standard()
	cfg.SamplesPerClass = 4000
	cfg.CrowdFrames = 300
	cfg.ScalabilityFrames = 100
	return cfg
}

// Lab owns the shared datasets and trained models.
type Lab struct {
	Cfg Config
	// Log, if non-nil, receives progress lines during expensive steps.
	Log io.Writer
	// Obs, if non-nil, is the registry benchmark pipelines register their
	// stage histograms in, so a live /metrics endpoint exposes the same
	// series the JSON artifacts embed. Nil makes each bench use a private
	// registry.
	Obs *obs.Registry

	once struct {
		split, frames, pools              sync.Once
		hawc, hawcQ, pn, pnQ, ae, aeQ, oc sync.Once
	}
	split  dataset.Split
	frames []dataset.Frame

	hawc  *models.HAWC
	hawcQ *models.HAWC
	pn    *models.PointNet
	pnQ   *models.PointNet
	ae    *models.AutoEncoder
	aeQ   *models.AutoEncoder
	oc    *models.OCSVM
}

// NewLab builds a lab over cfg.
func NewLab(cfg Config) *Lab { return &Lab{Cfg: cfg} }

func (l *Lab) logf(format string, args ...any) {
	if l.Log != nil {
		fmt.Fprintf(l.Log, format+"\n", args...)
	}
}

// Split returns the 80:20 single-person classification split.
func (l *Lab) Split() dataset.Split {
	l.once.split.Do(func() {
		l.logf("generating classification dataset (%d per class)...", l.Cfg.SamplesPerClass)
		g := dataset.NewGenerator(l.Cfg.Seed)
		samples := g.Classification(l.Cfg.SamplesPerClass)
		l.split = dataset.TrainTestSplit(rand.New(rand.NewSource(l.Cfg.Seed+1)), samples, 0.8)
	})
	return l.split
}

// Frames returns the multi-person counting frames.
func (l *Lab) Frames() []dataset.Frame {
	l.once.frames.Do(func() {
		l.logf("generating %d crowd frames...", l.Cfg.CrowdFrames)
		g := dataset.NewGenerator(l.Cfg.Seed + 2)
		l.frames = g.CrowdFrames(l.Cfg.CrowdFrames, 1, l.Cfg.MaxPeoplePerFrame, 2)
	})
	return l.frames
}

// Calib returns the quantization calibration subset (paper: 100 random
// training samples).
func (l *Lab) Calib() []dataset.Sample {
	train := l.Split().Train
	n := 100
	if n > len(train) {
		n = len(train)
	}
	return train[:n]
}

// HAWC returns the trained full-precision HAWC.
func (l *Lab) HAWC() *models.HAWC {
	l.once.hawc.Do(func() {
		l.logf("training HAWC (%d epochs)...", l.Cfg.HAWCEpochs)
		l.hawc = models.NewHAWC()
		mustTrain(l.hawc.Train(l.Split().Train, models.TrainConfig{
			Epochs: l.Cfg.HAWCEpochs, Seed: l.Cfg.Seed + 3,
		}))
	})
	return l.hawc
}

// HAWCInt8 returns the quantized HAWC.
func (l *Lab) HAWCInt8() *models.HAWC {
	l.once.hawcQ.Do(func() {
		q, err := l.HAWC().Quantize(l.Calib())
		mustTrain(err)
		l.hawcQ = q
	})
	return l.hawcQ
}

// PointNet returns the trained full-precision PointNet.
func (l *Lab) PointNet() *models.PointNet {
	l.once.pn.Do(func() {
		l.logf("training PointNet (%d epochs)...", l.Cfg.PointNetEpochs)
		l.pn = models.NewPointNet()
		mustTrain(l.pn.Train(l.Split().Train, models.TrainConfig{
			Epochs: l.Cfg.PointNetEpochs, Seed: l.Cfg.Seed + 4,
		}))
	})
	return l.pn
}

// PointNetInt8 returns the quantized PointNet.
func (l *Lab) PointNetInt8() *models.PointNet {
	l.once.pnQ.Do(func() {
		q, err := l.PointNet().Quantize(l.Calib())
		mustTrain(err)
		l.pnQ = q
	})
	return l.pnQ
}

// AutoEncoder returns the trained AutoEncoder baseline.
func (l *Lab) AutoEncoder() *models.AutoEncoder {
	l.once.ae.Do(func() {
		l.logf("training AutoEncoder (%d epochs)...", l.Cfg.AEEpochs)
		l.ae = models.NewAutoEncoder()
		mustTrain(l.ae.Train(l.Split().Train, models.TrainConfig{
			Epochs: l.Cfg.AEEpochs, Seed: l.Cfg.Seed + 5,
		}))
	})
	return l.ae
}

// AutoEncoderInt8 returns the quantized AutoEncoder.
func (l *Lab) AutoEncoderInt8() *models.AutoEncoder {
	l.once.aeQ.Do(func() {
		q, err := l.AutoEncoder().Quantize(l.Calib())
		mustTrain(err)
		l.aeQ = q
	})
	return l.aeQ
}

// OCSVM returns the trained OC-SVM baseline.
func (l *Lab) OCSVM() *models.OCSVM {
	l.once.oc.Do(func() {
		l.logf("training OC-SVM...")
		l.oc = models.NewOCSVM()
		mustTrain(l.oc.Train(l.Split().Train, models.TrainConfig{Seed: l.Cfg.Seed + 6}))
	})
	return l.oc
}

// mustTrain converts training errors into panics: experiment code is
// driver code, and a failed training run means the experiment definition
// itself is broken.
func mustTrain(err error) {
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}
