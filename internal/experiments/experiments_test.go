package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sharedLab is trained once for the whole test package (Quick config).
var sharedLab = NewLab(Quick())

func TestTableI(t *testing.T) {
	rows := TableI(sharedLab)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	hawc := byName["HAWC (Ours)"]
	ocsvm := byName["OC-SVM"]
	if hawc.Acc <= ocsvm.Acc {
		t.Errorf("HAWC (%.3f) must beat OC-SVM (%.3f)", hawc.Acc, ocsvm.Acc)
	}
	if hawc.Acc < 0.65 {
		t.Errorf("HAWC quick accuracy %.3f unexpectedly low", hawc.Acc)
	}
	if hawc.Acc-ocsvm.Acc < 0.1 {
		t.Errorf("HAWC (%.3f) should clearly exceed OC-SVM (%.3f)", hawc.Acc, ocsvm.Acc)
	}
	if ocsvm.HasInt8 {
		t.Error("OC-SVM must not have an int8 variant")
	}
	if !hawc.HasInt8 || hawc.Int8Acc <= 0 {
		t.Error("HAWC int8 missing")
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "HAWC") || !strings.Contains(out, "OC-SVM") {
		t.Error("format output incomplete")
	}
}

func TestTableII(t *testing.T) {
	rows := TableII(sharedLab)
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	cell := map[string]TableIIRow{}
	for _, r := range rows {
		cell[r.Device+"/"+r.Model] = r
	}
	// Structural claims of the paper's Table II:
	// PointNet is the slowest model on both devices in FP32.
	for _, dev := range []string{"Jetson Nano", "Coral Dev Board"} {
		pn := cell[dev+"/PointNet"]
		hawc := cell[dev+"/HAWC (Ours)"]
		ae := cell[dev+"/AutoEncoder"]
		if pn.FP32 <= hawc.FP32 || pn.FP32 <= ae.FP32 {
			t.Errorf("%s: PointNet FP32 (%v) must be slowest (HAWC %v, AE %v)",
				dev, pn.FP32, hawc.FP32, ae.FP32)
		}
	}
	// The Coral's int8 AutoEncoder regresses vs its FP32 (FC-heavy on TPU).
	ae := cell["Coral Dev Board/AutoEncoder"]
	if ae.Int8 <= ae.FP32 {
		t.Errorf("Coral AE int8 (%v) should regress vs FP32 (%v)", ae.Int8, ae.FP32)
	}
	// HAWC accelerates under int8 on both devices.
	for _, dev := range []string{"Jetson Nano", "Coral Dev Board"} {
		h := cell[dev+"/HAWC (Ours)"]
		if h.Int8 >= h.FP32 {
			t.Errorf("%s: HAWC int8 (%v) should beat FP32 (%v)", dev, h.Int8, h.FP32)
		}
	}
	if s := FormatTableII(rows); !strings.Contains(s, "Coral") {
		t.Error("format output incomplete")
	}
}

func TestTableIV(t *testing.T) {
	rows := TableIV(sharedLab)
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	adaptive := rows[len(rows)-1]
	if adaptive.Method != "Adaptive (Ours)" {
		t.Fatalf("last row = %q", adaptive.Method)
	}
	// Hierarchical must drastically over-count (Table IV's pathology).
	hier := rows[len(rows)-2]
	if hier.MAE <= adaptive.MAE {
		t.Errorf("hierarchical MAE (%.2f) should exceed adaptive (%.2f)", hier.MAE, adaptive.MAE)
	}
	// Adaptive must beat the worst fixed ε clearly.
	worstFixed := 0.0
	for _, r := range rows[:5] {
		if r.MAE > worstFixed {
			worstFixed = r.MAE
		}
	}
	if adaptive.MAE >= worstFixed {
		t.Errorf("adaptive MAE (%.2f) should beat the worst fixed ε (%.2f)", adaptive.MAE, worstFixed)
	}
	if s := FormatTableIV(rows); !strings.Contains(s, "Adaptive") {
		t.Error("format output incomplete")
	}
}

func TestTableV(t *testing.T) {
	rows := TableV(sharedLab)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]TableVRow{}
	for _, r := range rows {
		byName[r.Framework] = r
	}
	hawc := byName["HAWC-CC (Ours)"]
	ocsvm := byName["OC-SVM-CC"]
	// At quick scale the margin can collapse to a tie on 30 frames; HAWC-CC
	// must never be worse.
	if hawc.MAE > ocsvm.MAE {
		t.Errorf("HAWC-CC MAE (%.2f) must not exceed OC-SVM-CC (%.2f)", hawc.MAE, ocsvm.MAE)
	}
	if hawc.MAE > 2.0 {
		t.Errorf("HAWC-CC quick MAE %.2f unexpectedly high", hawc.MAE)
	}
	if hawc.MSE < hawc.MAE-1e-9 {
		t.Error("MSE must be ≥ MAE")
	}
	if !hawc.HasInt8 || ocsvm.HasInt8 {
		t.Error("int8 variants wrong")
	}
	if hawc.Speed <= 0 {
		t.Error("no speed measured")
	}
	if s := FormatTableV(rows); !strings.Contains(s, "HAWC-CC") {
		t.Error("format output incomplete")
	}
}

func TestFigure4(t *testing.T) {
	r := Figure4(sharedLab)
	if len(r.Curve) == 0 {
		t.Fatal("empty curve")
	}
	// Curve is sorted ascending.
	for i := 1; i < len(r.Curve); i++ {
		if r.Curve[i] < r.Curve[i-1] {
			t.Fatal("curve not sorted")
		}
	}
	if r.ElbowEps <= 0 {
		t.Errorf("elbow ε = %v", r.ElbowEps)
	}
	if r.EpsMin > r.EpsMode || r.EpsMode > r.EpsMax {
		t.Errorf("ε summary inconsistent: min %.3f mode %.3f max %.3f", r.EpsMin, r.EpsMode, r.EpsMax)
	}
	if r.EpsHistogram.Total() == 0 {
		t.Error("empty ε histogram")
	}
}

func TestFigure6(t *testing.T) {
	r := Figure6(sharedLab)
	for axis := 0; axis < 3; axis++ {
		if r.Human[axis].Total() == 0 || r.Object[axis].Total() == 0 {
			t.Fatalf("axis %d histograms empty", axis)
		}
	}
	// The z histograms must differ visibly: humans occupy the torso/head
	// band (z ∈ [−1.8, −1.0]) that most campus objects never reach. Bins
	// span [−3, 0] in 30 steps of 0.1 m → indices 12…19.
	humanBand, objectBand := 0, 0
	zh, zo := r.Human[2], r.Object[2]
	for i := 12; i < 20; i++ {
		humanBand += zh.Counts[i]
		objectBand += zo.Counts[i]
	}
	hFrac := float64(humanBand) / float64(zh.Total())
	oFrac := float64(objectBand) / float64(zo.Total())
	if hFrac <= oFrac {
		t.Errorf("human torso-band fraction (%.3f) should exceed object (%.3f)", hFrac, oFrac)
	}
}

func TestFigure10(t *testing.T) {
	r := Figure10()
	if len(r.Readings) == 0 || len(r.DailyMax) != 18 {
		t.Fatalf("series malformed: %d readings, %d days", len(r.Readings), len(r.DailyMax))
	}
	if r.Stats.Max < 50 || r.Stats.Max > 65 {
		t.Errorf("max %.1f outside paper envelope", r.Stats.Max)
	}
	if r.Stats.PeakDelta < 6 || r.Stats.PeakDelta > 14 {
		t.Errorf("peak delta %.1f, want ≈10", r.Stats.PeakDelta)
	}
}

func TestFigure11(t *testing.T) {
	rs := Figure11(sharedLab)
	if len(rs) != 3 {
		t.Fatalf("got %d density levels", len(rs))
	}
	// Point counts grow with pedestrian count.
	if !(rs[0].Points < rs[1].Points && rs[1].Points < rs[2].Points) {
		t.Errorf("point counts not increasing: %d %d %d", rs[0].Points, rs[1].Points, rs[2].Points)
	}
	for _, r := range rs {
		if r.OffsetHistX.Total() == 0 || r.OffsetHistY.Total() == 0 {
			t.Error("empty offset histograms")
		}
	}
	if s := FormatHistogramASCII(rs[0].OffsetHistX, 20); s == "" {
		t.Error("ASCII histogram empty")
	}
}

func TestTableIIIQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("retrains HAWC three times")
	}
	rows := TableIII(sharedLab)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Method != "Object data sampling" {
		t.Errorf("first row = %q", rows[0].Method)
	}
	for _, r := range rows {
		if r.Acc <= 0.4 || r.Acc > 1 {
			t.Errorf("%s accuracy %.3f out of range", r.Method, r.Acc)
		}
	}
	if s := FormatTableIII(rows); !strings.Contains(s, "Gaussian") {
		t.Error("format output incomplete")
	}
}

func TestTableVIQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("counts dense synthetic crowds")
	}
	rows := TableVI(sharedLab)
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Density != "Low" || rows[11].Density != "High" {
		t.Errorf("density labels: %s … %s", rows[0].Density, rows[11].Density)
	}
	// MAE grows with crowd size (the Table VI trend).
	if rows[11].MAE <= rows[0].MAE {
		t.Errorf("MAE at 250 (%.2f) should exceed MAE at 20 (%.2f)", rows[11].MAE, rows[0].MAE)
	}
	// Counts track the truth within a wide band at the quick preset's
	// weakly trained classifier (the standard preset reaches ≈85–90%).
	r := rows[11]
	if r.ActualK < r.TotalK*0.45 || r.ActualK > r.TotalK*1.55 {
		t.Errorf("250-person actual %.2fK vs total %.2fK", r.ActualK, r.TotalK)
	}
	if s := FormatTableVI(rows); !strings.Contains(s, "High") {
		t.Error("format output incomplete")
	}
}

func TestFigure8aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("retrains all models")
	}
	rs := Figure8a(sharedLab)
	if len(rs) != 3 {
		t.Fatalf("got %d curves", len(rs))
	}
	for _, r := range rs {
		if len(r.Acc) == 0 {
			t.Errorf("%s curve empty", r.Model)
		}
		for _, a := range r.Acc {
			if a < 0 || a > 1 {
				t.Errorf("%s accuracy %v out of range", r.Model, a)
			}
		}
	}
}

func TestFigure9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("retrains four projection variants")
	}
	rs := Figure9(sharedLab)
	if len(rs) != 5 {
		t.Fatalf("got %d projections", len(rs))
	}
	if rs[0].Projection != "HAP" {
		t.Errorf("first projection = %q", rs[0].Projection)
	}
	for _, r := range rs {
		if r.Acc <= 0.3 || r.MAE < 0 {
			t.Errorf("%s: acc %.3f MAE %.3f", r.Projection, r.Acc, r.MAE)
		}
	}
}

func TestConfigPresets(t *testing.T) {
	q, s, f := Quick(), Standard(), Full()
	if q.SamplesPerClass >= s.SamplesPerClass || s.SamplesPerClass >= f.SamplesPerClass {
		t.Error("presets not ordered by scale")
	}
	if q.Seed != s.Seed || s.Seed != f.Seed {
		t.Error("presets should share the default seed")
	}
}

func TestParallelBench(t *testing.T) {
	r := ParallelBench(sharedLab)
	if r.NumCPU < 1 || r.Frames == 0 || len(r.Rows) < 2 {
		t.Fatalf("degenerate sweep: %+v", r)
	}
	if r.Rows[0].Workers != 1 {
		t.Fatalf("sweep must start at 1 worker, got %d", r.Rows[0].Workers)
	}
	seen := map[int]bool{}
	for i, row := range r.Rows {
		if seen[row.Workers] {
			t.Errorf("duplicate worker count %d", row.Workers)
		}
		seen[row.Workers] = true
		if row.FramesPerSec <= 0 || row.MeanTotalMs <= 0 {
			t.Errorf("row %d: no throughput/latency recorded: %+v", i, row)
		}
		// The determinism contract: every sweep point re-counts the same
		// frames, so MAE must be bit-identical across worker counts.
		if row.MAE != r.Rows[0].MAE {
			t.Errorf("workers=%d: MAE %v differs from sequential %v",
				row.Workers, row.MAE, r.Rows[0].MAE)
		}
		// Every row embeds the per-stage latency quantiles.
		for _, stage := range []string{"roi", "ground", "cluster", "classify", "total", "queue_wait"} {
			q, ok := row.Stages[stage]
			if !ok {
				t.Errorf("workers=%d: stage %q missing from quantiles", row.Workers, stage)
				continue
			}
			if q.P50Ms > q.P95Ms || q.P95Ms > q.P99Ms {
				t.Errorf("workers=%d stage %s: quantiles not ordered: %+v", row.Workers, stage, q)
			}
		}
		if q := row.Stages["total"]; q.P50Ms <= 0 {
			t.Errorf("workers=%d: total p50 = %v, want > 0", row.Workers, q.P50Ms)
		}
	}
	if !seen[2] || !seen[4] {
		t.Errorf("sweep must include 2 and 4 workers: %+v", r.Rows)
	}
	if r.Rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v, want 1", r.Rows[0].Speedup)
	}

	if s := FormatParallel(r); !strings.Contains(s, "Frames/s") {
		t.Error("format output incomplete")
	}
	var buf bytes.Buffer
	if err := WriteParallelJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var decoded ParallelResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if decoded.NumCPU != r.NumCPU || len(decoded.Rows) != len(r.Rows) {
		t.Errorf("JSON round-trip lost data: %+v", decoded)
	}
	if !strings.Contains(buf.String(), `"stage_quantiles"`) {
		t.Error("artifact missing stage_quantiles")
	}
	if got := decoded.Rows[0].Stages["total"].P50Ms; got != r.Rows[0].Stages["total"].P50Ms {
		t.Errorf("stage quantiles lost in round-trip: %v", got)
	}
}

func TestStreamBench(t *testing.T) {
	r := StreamBench(sharedLab)
	if r.NumCPU < 1 || r.Frames == 0 || r.Trials < 1 || r.Passes < 1 || r.QueueDepth < 1 || len(r.Rows) < 2 {
		t.Fatalf("degenerate sweep: %+v", r)
	}
	if r.Rows[0].Workers != 1 {
		t.Fatalf("sweep must start at 1 worker, got %d", r.Rows[0].Workers)
	}
	for i, row := range r.Rows {
		if row.LoopFramesPerSec <= 0 || row.StreamFramesPerSec <= 0 {
			t.Errorf("row %d: missing throughput: %+v", i, row)
		}
		if row.LoopP50Ms <= 0 || row.StreamP50Ms <= 0 ||
			row.LoopP50Ms > row.LoopP99Ms || row.StreamP50Ms > row.StreamP99Ms {
			t.Errorf("row %d: latency percentiles inconsistent: %+v", i, row)
		}
		// The bit-equivalence contract between the loop and the scheduler.
		if row.StreamMAE != row.LoopMAE {
			t.Errorf("workers=%d: stream MAE %v differs from loop MAE %v",
				row.Workers, row.StreamMAE, row.LoopMAE)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	if r.StreamSpeedupMaxWorkers != last.Speedup {
		t.Errorf("gate field %v does not match widest row's speedup %v",
			r.StreamSpeedupMaxWorkers, last.Speedup)
	}

	if s := FormatStream(r); !strings.Contains(s, "stream speedup at max workers") {
		t.Error("format output incomplete")
	}
	var buf bytes.Buffer
	if err := WriteStreamJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var decoded StreamBenchResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"stream_speedup_max_workers"`) {
		t.Error("artifact missing the CI gate field")
	}
	if decoded.StreamSpeedupMaxWorkers != r.StreamSpeedupMaxWorkers || len(decoded.Rows) != len(r.Rows) {
		t.Errorf("JSON round-trip lost data: %+v", decoded)
	}
}

// TestFleetRowQuick runs one small fleet point end to end: reports over
// multiplexed conns, concurrent query load, and the conservation check.
// The full 10k-pole sweep belongs to hawcbench/CI, not the unit tests.
func TestFleetRowQuick(t *testing.T) {
	row := benchFleetRow(sharedLab, 20, 5)
	if row.Reports != 100 || row.ReportsPerSec <= 0 {
		t.Errorf("report phase: %+v", row)
	}
	if !row.AllReportsRecorded || row.SnapshotPoles != 20 {
		t.Errorf("conservation failed: %+v", row)
	}
	// QueryErrors includes ramp-up 404s (per-pole queries racing the first
	// snapshot), so it is recorded but only loosely bounded here.
	if row.Queries == 0 || row.QueryQPS <= 0 || row.QueryErrors >= row.Queries/2 {
		t.Errorf("query phase: %+v", row)
	}
	if row.ReportP50Ms <= 0 || row.ReportP50Ms > row.ReportP99Ms {
		t.Errorf("RTT percentiles inconsistent: %+v", row)
	}

	r := FleetBenchResult{
		NumCPU: 1, QueryWorkers: fleetQueryWorkers,
		Rows: []FleetRow{row}, LargestPoles: 20,
		ReportsPerSecLargest: row.ReportsPerSec, ReportsPerSecPeak: row.ReportsPerSec,
		QueryP99MsLargest: row.QueryP99Ms, AllReportsRecorded: row.AllReportsRecorded,
		ScaleRetention: 1, TotalReportsDelivered: row.Reports,
	}
	if s := FormatFleet(r); !strings.Contains(s, "all reports recorded") {
		t.Error("format output incomplete")
	}
	var buf bytes.Buffer
	if err := WriteFleetJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var decoded FleetBenchResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	for _, gate := range []string{`"scale_retention"`, `"query_p99_ms_largest"`, `"all_reports_recorded"`, `"reports_per_sec_largest"`} {
		if !strings.Contains(buf.String(), gate) {
			t.Errorf("artifact missing CI gate field %s", gate)
		}
	}
	if decoded.LargestPoles != 20 || len(decoded.Rows) != 1 {
		t.Errorf("JSON round-trip lost data: %+v", decoded)
	}
}
