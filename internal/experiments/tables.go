package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/device"
	"hawccc/internal/ground"
	"hawccc/internal/metrics"
	"hawccc/internal/models"
	"hawccc/internal/tensor"
)

// TableIRow is one model's single-person detection accuracy (paper
// Table I).
type TableIRow struct {
	Model        string
	Acc, F1      float64
	Prec, Recall float64
	// Int8Acc is negative when the model has no quantized form (OC-SVM).
	Int8Acc float64
	HasInt8 bool
}

// TableI reproduces the single-person detection comparison: accuracy, F1,
// precision, recall in FP32 and test accuracy in int8 for the four
// classifiers.
func TableI(l *Lab) []TableIRow {
	test := l.Split().Test
	row := func(name string, fp models.Classifier, q models.Classifier) TableIRow {
		conf := models.Evaluate(fp, test)
		r := TableIRow{
			Model: name, Acc: conf.Accuracy(), F1: conf.F1(),
			Prec: conf.Precision(), Recall: conf.Recall(),
		}
		if q != nil {
			r.HasInt8 = true
			r.Int8Acc = models.Evaluate(q, test).Accuracy()
		}
		return r
	}
	return []TableIRow{
		row("OC-SVM", l.OCSVM(), nil),
		row("AutoEncoder", l.AutoEncoder(), l.AutoEncoderInt8()),
		row("PointNet", l.PointNet(), l.PointNetInt8()),
		row("HAWC (Ours)", l.HAWC(), l.HAWCInt8()),
	}
}

// FormatTableI renders rows like the paper's Table I.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %9s %6s %6s %6s %10s %10s\n",
		"Model", "Acc(%)", "F1", "Prec", "Rec", "Int8(%)", "Diff(%)")
	for _, r := range rows {
		int8s, diffs := "-", "-"
		if r.HasInt8 {
			int8s = fmt.Sprintf("%.2f", r.Int8Acc*100)
			diffs = fmt.Sprintf("%+.2f", (r.Int8Acc-r.Acc)*100)
		}
		fmt.Fprintf(&b, "%-14s %9.2f %6.2f %6.2f %6.2f %10s %10s\n",
			r.Model, r.Acc*100, r.F1, r.Prec, r.Recall, int8s, diffs)
	}
	return b.String()
}

// TableIIRow is one (device, model) inference-latency cell pair.
type TableIIRow struct {
	Device, Model string
	FP32, Int8    time.Duration
	HasInt8       bool
	Speedup       float64
}

// TableII reproduces the edge inference-time comparison using the device
// cost models over each trained model's real op graph (see DESIGN.md for
// the hardware substitution).
func TableII(l *Lab) []TableIIRow {
	hawc := l.HAWC()
	pn := l.PointNet()
	ae := l.AutoEncoder()
	oc := l.OCSVM()

	// Example inputs sized from the trained models.
	d := imageSide(hawc)
	hawcX := tensor.New(1, d, d, 7)
	pnX := tensor.New(pn.Target(), 3)
	aeX := tensor.New(1, oc.FeatureDim())

	hawcFP := device.FromSequential(hawc.Network(), hawcX)
	hawcQ8 := device.FromQuant(l.HAWCInt8().QuantNetwork(), hawcX)
	pnFP := device.FromSequential(pn.Network(), pnX)
	pnQ8 := device.FromQuant(l.PointNetInt8().QuantNetwork(), pnX)
	aeFP := device.FromSequential(ae.Network(), aeX)
	aeQ8 := device.FromQuant(l.AutoEncoderInt8().QuantNetwork(), aeX)
	svmG := device.SVMGraph(oc.NumSupportVectors(), oc.FeatureDim())

	var rows []TableIIRow
	for _, dev := range []device.Profile{device.JetsonNano, device.CoralDevBoard} {
		add := func(model string, fp, q8 time.Duration, hasInt8 bool) {
			r := TableIIRow{Device: dev.Name, Model: model, FP32: fp, Int8: q8, HasInt8: hasInt8}
			if hasInt8 && q8 > 0 {
				r.Speedup = float64(fp) / float64(q8)
			}
			rows = append(rows, r)
		}
		add("OC-SVM", dev.EstimateFP32(svmG), 0, false)
		add("AutoEncoder", dev.EstimateFP32(aeFP), dev.EstimateInt8(aeQ8), true)
		add("PointNet", dev.EstimateFP32(pnFP), dev.EstimateInt8(pnQ8), true)
		add("HAWC (Ours)", dev.EstimateFP32(hawcFP), dev.EstimateInt8(hawcQ8), true)
	}
	return rows
}

func imageSide(h *models.HAWC) int {
	// N′max is a perfect square; the image side is its root.
	d := 1
	for d*d < h.Target() {
		d++
	}
	return d
}

// FormatTableII renders rows like the paper's Table II.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-14s %12s %12s %9s\n", "Edge Device", "Model", "FP32 (ms)", "Int8 (ms)", "Speedup")
	for _, r := range rows {
		int8s, spd := "-", "-"
		if r.HasInt8 {
			int8s = fmt.Sprintf("%.2f", ms(r.Int8))
			spd = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(&b, "%-16s %-14s %12.2f %12s %9s\n", r.Device, r.Model, ms(r.FP32), int8s, spd)
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// TableIIIRow is one up-sampling method's accuracy.
type TableIIIRow struct {
	Method string
	Acc    float64
}

// TableIII reproduces the object-data-sampling vs Gaussian-sampling
// ablation (σ ∈ {3, 5, 7}): HAWC is retrained with each padding method.
func TableIII(l *Lab) []TableIIIRow {
	split := l.Split()
	rows := []TableIIIRow{{
		Method: "Object data sampling",
		Acc:    models.Evaluate(l.HAWC(), split.Test).Accuracy(),
	}}
	for _, sigma := range []float64{3, 5, 7} {
		l.logf("training HAWC with Gaussian σ=%.0f padding...", sigma)
		h := models.NewHAWC()
		h.GaussianSigma = sigma
		mustTrain(h.Train(split.Train, models.TrainConfig{
			Epochs: l.Cfg.HAWCEpochs, Seed: l.Cfg.Seed + 3,
		}))
		rows = append(rows, TableIIIRow{
			Method: fmt.Sprintf("Gaussian σ=%.0f", sigma),
			Acc:    models.Evaluate(h, split.Test).Accuracy(),
		})
	}
	return rows
}

// FormatTableIII renders rows like the paper's Table III.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	base := rows[0].Acc
	fmt.Fprintf(&b, "%-24s %12s %10s\n", "Sampling Method", "Test Acc(%)", "Diff(%)")
	for i, r := range rows {
		diff := "0"
		if i > 0 {
			diff = fmt.Sprintf("%+.2f", (r.Acc-base)*100)
		}
		fmt.Fprintf(&b, "%-24s %12.2f %10s\n", r.Method, r.Acc*100, diff)
	}
	return b.String()
}

// TableIVRow is one clustering method's counting accuracy.
type TableIVRow struct {
	Method   string
	MAE, MSE float64
}

// TableIV reproduces the clustering ablation: HAWC-CC with fixed-ε DBSCAN
// (ε ∈ {0.1 … 0.9}), hierarchical clustering, and the proposed adaptive
// clustering, all sharing the same trained HAWC classifier.
func TableIV(l *Lab) []TableIVRow {
	frames := l.Frames()
	classifier := l.HAWC()
	run := func(name string, c counting.Clusterer) TableIVRow {
		l.logf("Table IV: %s...", name)
		p := counting.New(classifier)
		p.Clusterer = c
		ev, err := counting.Evaluate(p, frames)
		mustTrain(err)
		return TableIVRow{Method: name, MAE: ev.MAE, MSE: ev.MSE}
	}
	var rows []TableIVRow
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		rows = append(rows, run(fmt.Sprintf("Fixed-ε %.1f", eps), counting.FixedEpsClusterer{Eps: eps}))
	}
	rows = append(rows, run("Hierarchical", counting.HierarchicalClusterer{}))
	rows = append(rows, run("Adaptive (Ours)", counting.NewAdaptiveClusterer()))
	return rows
}

// FormatTableIV renders rows like the paper's Table IV.
func FormatTableIV(rows []TableIVRow) string {
	var b strings.Builder
	adaptive := rows[len(rows)-1]
	fmt.Fprintf(&b, "%-18s %8s %8s %14s\n", "Method", "MAE", "MSE", "Adaptive Δ")
	for i, r := range rows {
		delta := "-"
		if i < len(rows)-1 && r.MAE > 0 {
			delta = fmt.Sprintf("%+.1f%% MAE", (adaptive.MAE-r.MAE)/r.MAE*100)
		}
		fmt.Fprintf(&b, "%-18s %8.2f %8.2f %14s\n", r.Method, r.MAE, r.MSE, delta)
	}
	return b.String()
}

// TableVRow is one counting framework's accuracy and speed.
type TableVRow struct {
	Framework          string
	MAE, MSE           float64
	Int8MAE, Int8MSE   float64
	HasInt8            bool
	Speed, SpeedStd    time.Duration
	JetsonModeledSpeed time.Duration
}

// TableV reproduces the end-to-end crowd-counting comparison: MAE/MSE of
// the four frameworks in FP32 and int8, plus per-frame processing speed
// (host wall clock; the Jetson-modeled classifier latency is reported
// alongside for the Table II cross-reference).
func TableV(l *Lab) []TableVRow {
	frames := l.Frames()
	run := func(name string, fp models.Classifier, q models.Classifier) TableVRow {
		l.logf("Table V: %s...", name)
		p := counting.New(fp)
		ev, err := counting.Evaluate(p, frames)
		mustTrain(err)
		r := TableVRow{
			Framework: name, MAE: ev.MAE, MSE: ev.MSE,
			Speed: ev.MeanLatency, SpeedStd: ev.StdLatency,
		}
		if q != nil {
			pq := counting.New(q)
			evq, err := counting.Evaluate(pq, frames)
			mustTrain(err)
			r.HasInt8 = true
			r.Int8MAE, r.Int8MSE = evq.MAE, evq.MSE
		}
		return r
	}
	return []TableVRow{
		run("OC-SVM-CC", l.OCSVM(), nil),
		run("AutoEncoder-CC", l.AutoEncoder(), l.AutoEncoderInt8()),
		run("PointNet-CC", l.PointNet(), l.PointNetInt8()),
		run("HAWC-CC (Ours)", l.HAWC(), l.HAWCInt8()),
	}
}

// FormatTableV renders rows like the paper's Table V.
func FormatTableV(rows []TableVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %8s %9s %9s %9s %9s %16s\n",
		"Framework", "MAE", "MSE", "MAE(i8)", "MSE(i8)", "ΔMAE", "ΔMSE", "Speed (ms)")
	for _, r := range rows {
		i8m, i8s, dm, ds := "-", "-", "-", "-"
		if r.HasInt8 {
			i8m = fmt.Sprintf("%.2f", r.Int8MAE)
			i8s = fmt.Sprintf("%.2f", r.Int8MSE)
			dm = fmt.Sprintf("%+.2f", r.Int8MAE-r.MAE)
			ds = fmt.Sprintf("%+.2f", r.Int8MSE-r.MSE)
		}
		fmt.Fprintf(&b, "%-16s %8.2f %8.2f %9s %9s %9s %9s %7.2f ± %5.2f\n",
			r.Framework, r.MAE, r.MSE, i8m, i8s, dm, ds, ms(r.Speed), ms(r.SpeedStd))
	}
	return b.String()
}

// TableVIRow is one density level's scalability result.
type TableVIRow struct {
	Pedestrians        int
	Density            string
	MAE, MAEStd        float64
	MSE, MSEStd        float64
	TotalK             float64 // ground truth total, thousands
	ActualK, ActualStd float64 // predicted total, thousands
}

// TableVI reproduces the scalability evaluation: synthetic high-density
// frames built by offsetting single-person clouds (paper Section VII-D),
// counted by HAWC-CC, for 20 → 250 pedestrians, averaged over runs.
func TableVI(l *Lab) []TableVIRow {
	classifier := l.HAWC()
	split := l.Split()
	var humanPool, objectPool []dataset.Sample
	for _, s := range split.Train {
		if s.Human {
			humanPool = append(humanPool, s)
		} else {
			objectPool = append(objectPool, s)
		}
	}

	densityOf := func(n int) string {
		// Fruin levels over the simulated 100 m² area.
		switch {
		case n < 100:
			return "Low"
		case n < 200:
			return "Moderate"
		default:
			return "High"
		}
	}

	var rows []TableVIRow
	for _, n := range []int{20, 30, 40, 50, 60, 70, 80, 90, 100, 150, 200, 250} {
		l.logf("Table VI: %d pedestrians...", n)
		var maes, mses, totals []float64
		for run := 0; run < l.Cfg.ScalabilityRuns; run++ {
			rng := rand.New(rand.NewSource(l.Cfg.Seed + int64(1000*n+run)))
			preds := make([]float64, l.Cfg.ScalabilityFrames)
			truth := make([]float64, l.Cfg.ScalabilityFrames)
			var total float64
			for f := 0; f < l.Cfg.ScalabilityFrames; f++ {
				frame := dataset.HighDensityFrame(rng, humanPool, objectPool, n)
				p := counting.New(classifier)
				p.ROI = scalabilityROI()
				res := p.Count(frame.Cloud)
				preds[f] = float64(res.Count)
				truth[f] = float64(frame.Count)
				total += preds[f]
			}
			maes = append(maes, metrics.MAE(preds, truth))
			mses = append(mses, metrics.MeanSquaredError(preds, truth))
			totals = append(totals, total/1000)
		}
		maeM, maeS := metrics.MeanStd(maes)
		mseM, mseS := metrics.MeanStd(mses)
		totM, totS := metrics.MeanStd(totals)
		rows = append(rows, TableVIRow{
			Pedestrians: n,
			Density:     densityOf(n),
			MAE:         maeM, MAEStd: maeS,
			MSE: mseM, MSEStd: mseS,
			TotalK:  float64(n) * float64(l.Cfg.ScalabilityFrames) / 1000,
			ActualK: totM, ActualStd: totS,
		})
	}
	return rows
}

// scalabilityROI widens the ingest ROI to the scalability scenario's
// footprint (Section VII-D: synthetic crowd data spans 7 m to 40 m from
// the sensor and ±5 m laterally, beyond the deployment walkway).
func scalabilityROI() ground.ROI {
	return ground.ROI{XMin: 7, XMax: 40, YMin: -6, YMax: 6, ZMin: -3, ZMax: 0}
}

// FormatTableVI renders rows like the paper's Table VI.
func FormatTableVI(rows []TableVIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s %16s %18s %10s %18s\n",
		"#Pedestrians", "Density", "MAE", "MSE", "Total(K)", "Actual(K)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %10s %8.3f ± %5.3f %9.3f ± %6.3f %10.3f %9.3f ± %6.3f\n",
			r.Pedestrians, r.Density, r.MAE, r.MAEStd, r.MSE, r.MSEStd, r.TotalK, r.ActualK, r.ActualStd)
	}
	return b.String()
}
