package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/fleet"
)

// FleetRow is one pole-count point of the fleet sweep: a fresh backend
// is stood up, a synthetic fleet of Poles poles streams ReportsPerPole
// reports each over Conns multiplexed connections, and dashboard query
// workers hammer the HTTP query API the whole time. Reports/sec and the
// ack round trip measure the sharded ingest path; QPS and query latency
// measure the snapshot-served read path under concurrent writes.
type FleetRow struct {
	Poles          int     `json:"poles"`
	Conns          int     `json:"conns"`
	ReportsPerPole int     `json:"reports_per_pole"`
	Reports        int     `json:"reports"`
	ReportsPerSec  float64 `json:"reports_per_sec"`
	ReportP50Ms    float64 `json:"report_p50_ms"`
	ReportP99Ms    float64 `json:"report_p99_ms"`
	Queries        int     `json:"queries"`
	QueryQPS       float64 `json:"query_qps"`
	QueryP50Ms     float64 `json:"query_p50_ms"`
	QueryP99Ms     float64 `json:"query_p99_ms"`
	QueryErrors    int     `json:"query_errors"`
	// CampusCount and SnapshotPoles come from a final forced snapshot;
	// AllReportsRecorded is the end-to-end conservation check — every
	// report sent must be aggregated exactly once (no drops under shard
	// contention, no double counting).
	CampusCount        int  `json:"campus_count"`
	SnapshotPoles      int  `json:"snapshot_poles"`
	AllReportsRecorded bool `json:"all_reports_recorded"`
}

// FleetBenchResult is the full sweep plus the CI gate fields.
type FleetBenchResult struct {
	NumCPU       int        `json:"num_cpu"`
	QueryWorkers int        `json:"query_workers"`
	Rows         []FleetRow `json:"rows"`
	// LargestPoles is the biggest fleet swept; ReportsPerSecLargest its
	// ingest throughput. ReportsPerSecPeak is the best row's throughput —
	// CI gates on largest/peak, so sharding must hold up at 10k poles
	// instead of collapsing once the registry outgrows a single lock.
	LargestPoles          int     `json:"largest_poles"`
	ReportsPerSecLargest  float64 `json:"reports_per_sec_largest"`
	ReportsPerSecPeak     float64 `json:"reports_per_sec_peak"`
	ReportP99MsLargest    float64 `json:"report_p99_ms_largest"`
	QueryP99MsLargest     float64 `json:"query_p99_ms_largest"`
	AllReportsRecorded    bool    `json:"all_reports_recorded"`
	ScaleRetention        float64 `json:"scale_retention"` // largest / peak
	TotalReportsDelivered int     `json:"total_reports_delivered"`
}

// fleetPoleCounts is the sweep the ROADMAP names: four decades up to the
// 10k-pole campus.
var fleetPoleCounts = []int{10, 100, 1000, 10000}

// fleetQueryWorkers is the concurrent dashboard-client count per row.
const fleetQueryWorkers = 4

// fleetQueryGrace extends the query phase past the last report.
const fleetQueryGrace = 250 * time.Millisecond

// fleetTargetReports scales the per-row report volume with the preset
// (quick keeps CI fast; standard/full give smoother percentiles).
func fleetTargetReports(cfg Config) int {
	return 200 * cfg.CrowdFrames // quick: 6k, standard: 20k, full: 60k
}

// FleetBench stands up one backend per pole count and measures ingest
// and query performance under combined load. No model is trained — the
// fleet is synthetic by design, which is exactly what lets one benchmark
// process impersonate a 10k-pole campus.
func FleetBench(l *Lab) FleetBenchResult {
	res := FleetBenchResult{
		NumCPU:             runtime.NumCPU(),
		QueryWorkers:       fleetQueryWorkers,
		AllReportsRecorded: true,
	}
	target := fleetTargetReports(l.Cfg)
	for _, poles := range fleetPoleCounts {
		reportsPerPole := target / poles
		if reportsPerPole < 2 {
			reportsPerPole = 2
		}
		l.logf("fleet bench: %d poles × %d reports, %d query workers...",
			poles, reportsPerPole, fleetQueryWorkers)
		row := benchFleetRow(l, poles, reportsPerPole)
		res.Rows = append(res.Rows, row)
		res.AllReportsRecorded = res.AllReportsRecorded && row.AllReportsRecorded
		res.TotalReportsDelivered += row.Reports
		if row.ReportsPerSec > res.ReportsPerSecPeak {
			res.ReportsPerSecPeak = row.ReportsPerSec
		}
		if poles > res.LargestPoles {
			res.LargestPoles = poles
			res.ReportsPerSecLargest = row.ReportsPerSec
			res.ReportP99MsLargest = row.ReportP99Ms
			res.QueryP99MsLargest = row.QueryP99Ms
		}
	}
	if res.ReportsPerSecPeak > 0 {
		res.ScaleRetention = res.ReportsPerSecLargest / res.ReportsPerSecPeak
	}
	return res
}

// benchFleetRow runs one pole-count point end to end.
func benchFleetRow(l *Lab, poles, reportsPerPole int) FleetRow {
	srv, err := backend.Listen(backend.Config{
		Addr:    "127.0.0.1:0",
		APIAddr: "127.0.0.1:0",
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: fleet backend: %v", err))
	}
	defer srv.Close()

	rcfg := fleet.ReportConfig{
		Addr:           srv.Addr(),
		Poles:          poles,
		ReportsPerPole: reportsPerPole,
		Seed:           l.Cfg.Seed + int64(poles),
	}

	// Query load runs for the whole report phase; canceling the context
	// when reports finish ends the row.
	qctx, stopQueries := context.WithCancel(context.Background())
	queryDone := make(chan fleet.QueryResult, 1)
	go func() {
		queryDone <- fleet.Query(qctx, fleet.QueryConfig{
			BaseURL: "http://" + srv.APIAddr(),
			Workers: fleetQueryWorkers,
			Poles:   poles,
			Seed:    l.Cfg.Seed + int64(poles) + 1,
		})
	}()

	rep, err := fleet.Report(context.Background(), rcfg)
	// Let the dashboard load run on briefly after the last report so the
	// query percentiles have a usable sample count even on rows whose
	// report phase finishes in well under a second.
	time.Sleep(fleetQueryGrace)
	stopQueries()
	if err != nil {
		panic(fmt.Sprintf("experiments: fleet report load: %v", err))
	}
	qres := <-queryDone

	snap := srv.RebuildSnapshot()
	expected := int64(poles * reportsPerPole)
	return FleetRow{
		Poles:              poles,
		Conns:              rep.Conns,
		ReportsPerPole:     reportsPerPole,
		Reports:            rep.Reports,
		ReportsPerSec:      rep.ReportsPerSec,
		ReportP50Ms:        rep.AckRTT.P50Ms,
		ReportP99Ms:        rep.AckRTT.P99Ms,
		Queries:            qres.Queries,
		QueryQPS:           qres.QPS,
		QueryP50Ms:         qres.Latency.P50Ms,
		QueryP99Ms:         qres.Latency.P99Ms,
		QueryErrors:        qres.Errors + qres.NonOK,
		CampusCount:        snap.Campus.Count,
		SnapshotPoles:      snap.Campus.Poles,
		AllReportsRecorded: snap.Campus.Reports == expected && snap.Campus.Poles == poles,
	}
}

// FormatFleet renders the sweep as a console table.
func FormatFleet(r FleetBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores, %d query workers per row, reports multiplexed over bounded conns\n",
		r.NumCPU, r.QueryWorkers)
	fmt.Fprintf(&b, "%-7s %-6s %9s %11s %9s %9s %9s %9s %9s %9s %6s\n",
		"Poles", "Conns", "Reports", "Reports/s", "Ack p50", "Ack p99",
		"Queries", "QPS", "Qry p50", "Qry p99", "OK")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %-6d %9d %11.0f %7.3fms %7.3fms %9d %9.0f %7.3fms %7.3fms %6v\n",
			row.Poles, row.Conns, row.Reports, row.ReportsPerSec,
			row.ReportP50Ms, row.ReportP99Ms,
			row.Queries, row.QueryQPS, row.QueryP50Ms, row.QueryP99Ms,
			row.AllReportsRecorded)
	}
	fmt.Fprintf(&b, "at %d poles: %.0f reports/s (%.0f%% of peak), query p99 %.3fms, all reports recorded: %v\n",
		r.LargestPoles, r.ReportsPerSecLargest, r.ScaleRetention*100,
		r.QueryP99MsLargest, r.AllReportsRecorded)
	return b.String()
}

// WriteFleetJSON writes the sweep as the BENCH_fleet.json artifact
// consumed by CI.
func WriteFleetJSON(w io.Writer, r FleetBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
