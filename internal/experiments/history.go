package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"hawccc/internal/backend"
	"hawccc/internal/fleet"
	"hawccc/internal/tsdb"
)

// HistoryIngestRow is one pole-count point of the store-level ingest
// sweep: parallel writers append the per-pole series a campus backend
// records (count, clusters, edge latency, compartment temperature) at a
// regular cadence, then the store is sealed and its compression is read
// off against the naive 16-byte (timestamp, float64) row baseline.
type HistoryIngestRow struct {
	Poles            int     `json:"poles"`
	SeriesPerPole    int     `json:"series_per_pole"`
	SamplesPerSeries int     `json:"samples_per_series"`
	Writers          int     `json:"writers"`
	Appends          uint64  `json:"appends"`
	AppendsPerSec    float64 `json:"appends_per_sec"`
	BytesPerSample   float64 `json:"bytes_per_sample"`
	CompressionRatio float64 `json:"compression_ratio"`
	IntChunks        uint64  `json:"int_chunks"`
	// Conserved is the store-level conservation check: every appended
	// sample is still decodable (nothing sealed away wrong, nothing
	// evicted at this volume).
	Conserved bool `json:"all_samples_conserved"`
}

// HistoryBenchResult is the ingest sweep, the end-to-end replay point,
// and the CI gate fields.
type HistoryBenchResult struct {
	NumCPU       int                `json:"num_cpu"`
	QueryWorkers int                `json:"query_workers"`
	Ingest       []HistoryIngestRow `json:"ingest"`

	// Gate fields, taken from the largest ingest row (production chunk
	// size, realistic series shapes): CI asserts compression_ratio >= 8
	// against the float64-row baseline, conservation, and that a raw
	// read returns exactly the appended bits.
	LargestPoles         int     `json:"largest_poles"`
	AppendsPerSecLargest float64 `json:"appends_per_sec_largest"`
	BytesPerSample       float64 `json:"bytes_per_sample"`
	CompressionRatio     float64 `json:"compression_ratio"`
	AllSamplesConserved  bool    `json:"all_samples_conserved"`
	RawRoundTripExact    bool    `json:"raw_round_trip_exact"`

	// Replay: a live backend ingests fleet reports (batched per registry
	// shard and drained into the history store by the capture tick) while
	// dashboard workers mix snapshot and /api/history queries; the
	// history percentiles are measured alone.
	ReplayPoles            int     `json:"replay_poles"`
	ReplayReports          int     `json:"replay_reports"`
	ReportsPerSec          float64 `json:"reports_per_sec"`
	Queries                int     `json:"queries"`
	QueryQPS               float64 `json:"query_qps"`
	QueryErrors            int     `json:"query_errors"`
	HistoryQueries         int     `json:"history_queries"`
	HistoryQueryP50Ms      float64 `json:"history_query_p50_ms"`
	HistoryQueryP99Ms      float64 `json:"history_query_p99_ms"`
	HistorySamplesCaptured uint64  `json:"history_samples_captured"`
	HistorySeries          int     `json:"history_series"`
}

// historyPoleCounts sweeps the store-level ingest up to the 10k-pole
// campus the fleet benchmark targets.
var historyPoleCounts = []int{1000, 10000}

// historySeriesNames are the per-pole streams the ingest sweep writes —
// the same four the backend records for every pole.
var historySeriesNames = [...]string{"count", "clusters", "edge_latency_us", "pole_temp_c"}

// historyHistoryPercent is the share of replay queries aimed at
// /api/history (the rest exercise the snapshot mix as in FleetBench).
const historyHistoryPercent = 50

// historySamplesPerSeries scales the per-series sample volume with the
// preset; bounded so the 10k-pole row stays a few seconds even on full.
func historySamplesPerSeries(cfg Config) int {
	n := 8 * cfg.CrowdFrames // quick: 240, standard: 800, full: 2400
	if n < 64 {
		n = 64
	}
	if n > 1024 {
		n = 1024
	}
	return n
}

// HistoryBench measures the FTDC-style history store end to end: raw
// append throughput and compression at fleet scale, bit-exact raw
// reads, and /api/history query latency under concurrent replay.
func HistoryBench(l *Lab) HistoryBenchResult {
	res := HistoryBenchResult{
		NumCPU:              runtime.NumCPU(),
		QueryWorkers:        fleet.ScaledQueryWorkers(),
		AllSamplesConserved: true,
	}
	samples := historySamplesPerSeries(l.Cfg)
	for _, poles := range historyPoleCounts {
		l.logf("history bench: ingest %d poles × %d series × %d samples...",
			poles, len(historySeriesNames), samples)
		row := benchHistoryIngestRow(poles, samples)
		res.Ingest = append(res.Ingest, row)
		res.AllSamplesConserved = res.AllSamplesConserved && row.Conserved
		if poles > res.LargestPoles {
			res.LargestPoles = poles
			res.AppendsPerSecLargest = row.AppendsPerSec
			res.BytesPerSample = row.BytesPerSample
			res.CompressionRatio = row.CompressionRatio
		}
	}

	res.RawRoundTripExact = historyRawRoundTrip()

	l.logf("history bench: replay + %d query workers (%d%% history mix)...",
		res.QueryWorkers, historyHistoryPercent)
	benchHistoryReplay(l, &res)
	return res
}

// ingestCount mirrors the fleet generator's crowd shape: a per-pole
// sinusoid plus deterministic jitter, always integral.
func ingestCount(pole uint32, round int) float64 {
	base := 2 + float64(pole%7)
	phase := float64(pole%16) / 16 * 2 * math.Pi
	wave := 3 * math.Sin(2*math.Pi*float64(round)/16+phase)
	c := base + wave + float64((int(pole)*31+round*17)%3)
	if c < 0 {
		c = 0
	}
	return math.Floor(c)
}

// ingestTemp is a compartment temperature: a slow diurnal swing
// quantized to the 0.25 °C steps a real sensor reports, so consecutive
// samples form the constant runs the codec's zero-RLE eats.
func ingestTemp(pole uint32, round int) float64 {
	t := 36 + 8*math.Sin(2*math.Pi*float64(round)/2048+float64(pole%8))
	return math.Round(t*4) / 4
}

// ingestLatency is an edge-inference latency in whole microseconds.
func ingestLatency(pole uint32, round int) float64 {
	return float64(900 + (int(pole)*13+round*7)%120)
}

// benchHistoryIngestRow writes one pole-count point into a fresh store
// at the production chunk size with one writer goroutine per core, then
// seals and audits it.
func benchHistoryIngestRow(poles, samples int) HistoryIngestRow {
	st := tsdb.MustNew(tsdb.Config{MaxChunks: -1})
	writers := runtime.GOMAXPROCS(0)
	if writers > poles {
		writers = poles
	}

	// Pre-create the series handles outside the timed region: a backend
	// resolves each pole's handles once at registration, not per report.
	handles := make([][len(historySeriesNames)]*tsdb.Series, poles)
	for p := 0; p < poles; p++ {
		for si, name := range historySeriesNames {
			handles[p][si] = st.Series(uint32(p+1), name)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Time-major over this writer's pole slice: every pole
			// advances through the same rounds, as a capture tick would.
			for round := 0; round < samples; round++ {
				ts := int64(round) * int64(time.Second)
				for p := w; p < poles; p += writers {
					pole := uint32(p + 1)
					h := &handles[p]
					h[0].Append(ts, ingestCount(pole, round))
					h[1].Append(ts, math.Floor(ingestCount(pole, round)/3))
					h[2].Append(ts, ingestLatency(pole, round))
					h[3].Append(ts, ingestTemp(pole, round))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st.SealAll()

	stats := st.Stats()
	row := HistoryIngestRow{
		Poles:            poles,
		SeriesPerPole:    len(historySeriesNames),
		SamplesPerSeries: samples,
		Writers:          writers,
		Appends:          stats.Appended,
		BytesPerSample:   stats.BytesPerSample,
		CompressionRatio: stats.CompressionVs16,
		IntChunks:        stats.IntChunks,
		Conserved: stats.Retained == stats.Appended &&
			stats.DroppedSamples == 0 &&
			stats.Appended == uint64(poles*len(historySeriesNames)*samples),
	}
	if elapsed > 0 {
		row.AppendsPerSec = float64(stats.Appended) / elapsed.Seconds()
	}
	st.Close()
	return row
}

// historyRawRoundTrip appends adversarial float bit patterns and checks
// a raw read hands back the identical bits — the same invariant the
// /api/history res=raw contract pins over HTTP.
func historyRawRoundTrip() bool {
	st := tsdb.MustNew(tsdb.Config{ChunkSamples: 4}) // force mid-read seals
	vals := []float64{
		0.1 + 0.2, math.Pi, math.Nextafter(math.Pi, 4), math.Copysign(0, -1),
		5e-324, -1.7976931348623157e308, math.NaN(), math.Inf(1), 42,
	}
	sr := st.Series(7, "selftest")
	for i, v := range vals {
		sr.Append(int64(i)*int64(time.Second), v)
	}
	got, err := sr.QueryRaw(0, math.MaxInt64)
	if err != nil || len(got) != len(vals) {
		return false
	}
	for i, s := range got {
		if s.TS != int64(i)*int64(time.Second) ||
			math.Float64bits(s.V) != math.Float64bits(vals[i]) {
			return false
		}
	}
	st.Close()
	return true
}

// benchHistoryReplay stands up a history-enabled backend, replays a
// synthetic fleet into it, and measures /api/history latency under the
// concurrent dashboard mix.
func benchHistoryReplay(l *Lab, res *HistoryBenchResult) {
	poles := 2000
	reportsPerPole := fleetTargetReports(l.Cfg) / poles
	if reportsPerPole < 3 {
		reportsPerPole = 3
	}

	srv, err := backend.Listen(backend.Config{
		Addr:    "127.0.0.1:0",
		APIAddr: "127.0.0.1:0",
		History: &tsdb.Config{},
		// Count reports buffer into per-shard batches on the ingest path;
		// a short flush cadence keeps the store close behind ingest so the
		// timed /api/history reads scan real data, as in production.
		HistorySampleInterval: 50 * time.Millisecond,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: history backend: %v", err))
	}
	defer srv.Close()

	// Warm-up: one report per pole so history queries during the timed
	// phase find every pole's series registered.
	warm := fleet.ReportConfig{
		Addr: srv.Addr(), Poles: poles, ReportsPerPole: 1,
		Seed: l.Cfg.Seed + 100,
	}
	if _, err := fleet.Report(context.Background(), warm); err != nil {
		panic(fmt.Sprintf("experiments: history warm-up: %v", err))
	}

	qctx, stopQueries := context.WithCancel(context.Background())
	queryDone := make(chan fleet.QueryResult, 1)
	go func() {
		queryDone <- fleet.Query(qctx, fleet.QueryConfig{
			BaseURL:        "http://" + srv.APIAddr(),
			Workers:        res.QueryWorkers,
			Poles:          poles,
			HistoryPercent: historyHistoryPercent,
			HistorySeries:  []string{"count", "clusters", "edge_latency_us"},
			Seed:           l.Cfg.Seed + 101,
		})
	}()

	rep, err := fleet.Report(context.Background(), fleet.ReportConfig{
		Addr: srv.Addr(), Poles: poles, ReportsPerPole: reportsPerPole,
		Seed: l.Cfg.Seed + 102,
	})
	time.Sleep(fleetQueryGrace)
	stopQueries()
	if err != nil {
		panic(fmt.Sprintf("experiments: history replay load: %v", err))
	}
	qres := <-queryDone

	srv.FlushHistory() // drain the batched tail so Stats sees every capture
	stats := srv.History().Stats()
	res.ReplayPoles = poles
	res.ReplayReports = rep.Reports + poles // timed phase + warm-up
	res.ReportsPerSec = rep.ReportsPerSec
	res.Queries = qres.Queries
	res.QueryQPS = qres.QPS
	res.QueryErrors = qres.Errors + qres.NonOK
	res.HistoryQueries = qres.HistoryQueries
	res.HistoryQueryP50Ms = qres.HistoryLatency.P50Ms
	res.HistoryQueryP99Ms = qres.HistoryLatency.P99Ms
	res.HistorySamplesCaptured = stats.Appended
	res.HistorySeries = stats.Series
}

// FormatHistory renders the benchmark as a console table.
func FormatHistory(r HistoryBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores, %d query workers for the replay phase\n",
		r.NumCPU, r.QueryWorkers)
	fmt.Fprintf(&b, "%-7s %-7s %-8s %10s %12s %8s %8s %6s\n",
		"Poles", "Series", "Samples", "Appends", "Appends/s", "B/sample", "Ratio", "OK")
	for _, row := range r.Ingest {
		fmt.Fprintf(&b, "%-7d %-7d %-8d %10d %12.0f %8.2f %7.1fx %6v\n",
			row.Poles, row.Poles*row.SeriesPerPole, row.SamplesPerSeries,
			row.Appends, row.AppendsPerSec, row.BytesPerSample,
			row.CompressionRatio, row.Conserved)
	}
	fmt.Fprintf(&b, "raw round trip bit-exact: %v\n", r.RawRoundTripExact)
	fmt.Fprintf(&b, "replay: %d poles, %d reports (%.0f/s), %d queries (%.0f QPS, %d errors)\n",
		r.ReplayPoles, r.ReplayReports, r.ReportsPerSec,
		r.Queries, r.QueryQPS, r.QueryErrors)
	fmt.Fprintf(&b, "history queries: %d, p50 %.3fms, p99 %.3fms; captured %d samples across %d series\n",
		r.HistoryQueries, r.HistoryQueryP50Ms, r.HistoryQueryP99Ms,
		r.HistorySamplesCaptured, r.HistorySeries)
	return b.String()
}

// WriteHistoryJSON writes the benchmark as the BENCH_history.json
// artifact consumed by CI.
func WriteHistoryJSON(w io.Writer, r HistoryBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
