package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/obs"
)

// StageQuantiles is the latency distribution of one pipeline stage at one
// sweep point, estimated from the stage's fixed-bucket histogram (the same
// interpolation Prometheus' histogram_quantile uses on the live series).
type StageQuantiles struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// ParallelRow is one worker count's throughput measurement: frames
// fanned across Workers goroutines, each counting its frame end to end.
type ParallelRow struct {
	// Workers is the number of concurrent frame goroutines.
	Workers int `json:"workers"`
	// FramesPerSec is wall-clock throughput over the whole frame set.
	FramesPerSec float64 `json:"frames_per_sec"`
	// Speedup is FramesPerSec relative to the Workers = 1 row.
	Speedup float64 `json:"speedup"`
	// MeanIngestMs, MeanClusterMs, MeanClassifyMs are per-stage means over
	// all frames (per-frame CPU time; under contention individual frames
	// slow down even as throughput rises).
	MeanIngestMs   float64 `json:"mean_ingest_ms"`
	MeanClusterMs  float64 `json:"mean_cluster_ms"`
	MeanClassifyMs float64 `json:"mean_classify_ms"`
	// MeanTotalMs is the mean end-to-end per-frame latency.
	MeanTotalMs float64 `json:"mean_total_ms"`
	// MAE over the frame set — identical at every worker count, recorded
	// so the determinism contract is visible in the artifact.
	MAE float64 `json:"mae"`
	// Stages holds the per-stage latency quantiles ("roi", "ground",
	// "cluster", "classify", "total", "queue_wait"), snapshotted from the
	// pipeline's obs histograms after the sweep point runs. Means hide
	// stragglers; the p99 column is where classify queueing shows up.
	Stages map[string]StageQuantiles `json:"stage_quantiles"`
}

// ParallelResult is the full sweep plus the host context needed to read
// it (a 1-core runner cannot show speedup; CI runners can).
type ParallelResult struct {
	NumCPU int           `json:"num_cpu"`
	Frames int           `json:"frames"`
	Rows   []ParallelRow `json:"rows"`
}

// parallelWorkerCounts returns the sweep {1, 2, 4, NumCPU} deduplicated
// and sorted, so a 4-core host measures {1, 2, 4} once each.
func parallelWorkerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	counts := make([]int, 0, len(set))
	for w := range set {
		counts = append(counts, w)
	}
	sort.Ints(counts)
	return counts
}

// ParallelBench measures HAWC-CC counting throughput as frames fan out
// across worker goroutines (the pole node's multi-sensor serving
// pattern). Each worker counts whole frames sequentially — frame-level
// parallelism, the regime where the pipeline scales — and every sweep
// point re-counts the same frames, so the MAE column doubles as a live
// determinism check.
func ParallelBench(l *Lab) ParallelResult {
	classifier := l.HAWC()
	frames := l.Frames()
	reg := l.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}

	res := ParallelResult{NumCPU: runtime.NumCPU(), Frames: len(frames)}
	var base float64
	for _, workers := range parallelWorkerCounts() {
		l.logf("parallel bench: %d workers over %d frames...", workers, len(frames))
		// Each sweep point gets its own pipeline labeled by worker count,
		// so the stage histograms (and the live /metrics series, when the
		// lab shares a registry) stay separable per row.
		p := counting.New(classifier).
			Instrument(reg, obs.L("workers", strconv.Itoa(workers)))
		row := benchWorkers(p, frames, workers)
		row.Stages = stageQuantiles(p)
		if base == 0 {
			base = row.FramesPerSec
		}
		if base > 0 {
			row.Speedup = row.FramesPerSec / base
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// stageQuantiles snapshots the pipeline's stage histograms into the JSON
// artifact shape. Stages that never observed anything (queue_wait under
// sequential classification) report zeros rather than being omitted, so
// the artifact schema is stable across rows.
func stageQuantiles(p *counting.Pipeline) map[string]StageQuantiles {
	out := make(map[string]StageQuantiles)
	for name, h := range p.StageHistograms() {
		p50, p95, p99 := h.Snapshot().QuantilesMs()
		out[name] = StageQuantiles{P50Ms: p50, P95Ms: p95, P99Ms: p99}
	}
	return out
}

// benchWorkers counts every frame once on the given number of frame
// workers, returning throughput and mean per-stage latency.
func benchWorkers(p *counting.Pipeline, frames []dataset.Frame, workers int) ParallelRow {
	timings := make([]counting.Timing, len(frames))
	pred := make([]float64, len(frames))
	truth := make([]float64, len(frames))

	start := time.Now()
	if workers <= 1 {
		for i := range frames {
			r := p.CountWorkers(frames[i].Cloud, 1)
			timings[i], pred[i], truth[i] = r.Timing, float64(r.Count), float64(frames[i].Count)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(frames) {
						return
					}
					r := p.CountWorkers(frames[i].Cloud, 1)
					timings[i], pred[i], truth[i] = r.Timing, float64(r.Count), float64(frames[i].Count)
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	row := ParallelRow{
		Workers:      workers,
		FramesPerSec: float64(len(frames)) / elapsed.Seconds(),
	}
	var ingest, clusterT, classify time.Duration
	for _, t := range timings {
		ingest += t.Ingest
		clusterT += t.Cluster
		classify += t.Classify
	}
	n := float64(len(frames))
	row.MeanIngestMs = ms(ingest) / n
	row.MeanClusterMs = ms(clusterT) / n
	row.MeanClassifyMs = ms(classify) / n
	row.MeanTotalMs = row.MeanIngestMs + row.MeanClusterMs + row.MeanClassifyMs
	var absSum float64
	for i := range pred {
		d := pred[i] - truth[i]
		if d < 0 {
			d = -d
		}
		absSum += d
	}
	row.MAE = absSum / n
	return row
}

// FormatParallel renders the sweep as a console table.
func FormatParallel(r ParallelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores, %d frames per sweep point\n", r.NumCPU, r.Frames)
	fmt.Fprintf(&b, "%-8s %12s %8s %11s %12s %13s %11s %9s %9s %6s\n",
		"Workers", "Frames/s", "Speedup", "Ingest(ms)", "Cluster(ms)", "Classify(ms)", "Total(ms)", "p95(ms)", "p99(ms)", "MAE")
	for _, row := range r.Rows {
		total := row.Stages["total"]
		fmt.Fprintf(&b, "%-8d %12.2f %7.2fx %11.3f %12.3f %13.3f %11.3f %9.3f %9.3f %6.2f\n",
			row.Workers, row.FramesPerSec, row.Speedup,
			row.MeanIngestMs, row.MeanClusterMs, row.MeanClassifyMs, row.MeanTotalMs,
			total.P95Ms, total.P99Ms, row.MAE)
	}
	return b.String()
}

// WriteParallelJSON writes the sweep as the BENCH_parallel.json artifact
// consumed by CI.
func WriteParallelJSON(w io.Writer, r ParallelResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
