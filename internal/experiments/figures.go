package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"hawccc/internal/cluster"
	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/ground"
	"hawccc/internal/kdtree"
	"hawccc/internal/metrics"
	"hawccc/internal/models"
	"hawccc/internal/projection"
	"hawccc/internal/telemetry"
)

// Figure4Result reproduces Figure 4: (a) the sorted k-NN distance curve of
// one training capture with its elbow, and (b) the distribution of optimal
// ε across the training set.
type Figure4Result struct {
	// Curve is the ascending 4-NN distance curve of the sample capture.
	Curve []float64
	// ElbowIndex and ElbowEps locate the knee on Curve.
	ElbowIndex int
	ElbowEps   float64
	// EpsHistogram bins the per-capture optimal ε over the training set.
	EpsHistogram geom.Histogram
	// EpsMin, EpsMax, EpsMode summarize the observed range (the paper
	// reports 0.04 … 9.06 with 0.08 predominating).
	EpsMin, EpsMax, EpsMode float64
}

// Figure4 computes the adaptive-clustering diagnostics over the counting
// frames (each ingested frame is one "capture").
func Figure4(l *Lab) Figure4Result {
	frames := l.Frames()
	cfg := cluster.DefaultAdaptiveConfig()
	var res Figure4Result

	var allEps []float64
	for i, f := range frames {
		cloud := ingest(f.Cloud)
		if len(cloud) < cfg.K+2 {
			continue
		}
		eps := cluster.OptimalEpsilon(cloud, cfg)
		allEps = append(allEps, eps)
		if i == 0 {
			res.Curve = knnCurve(cloud, cfg.K)
			res.ElbowEps = eps
			for j, d := range res.Curve {
				if d >= eps {
					res.ElbowIndex = j
					break
				}
			}
		}
	}
	sort.Float64s(allEps)
	if len(allEps) > 0 {
		res.EpsMin, res.EpsMax = allEps[0], allEps[len(allEps)-1]
		res.EpsHistogram = geom.NewHistogram(allEps, 0, res.EpsMax*1.01, 20)
		// Mode = densest bin center.
		best := 0
		for i, c := range res.EpsHistogram.Counts {
			if c > res.EpsHistogram.Counts[best] {
				best = i
			}
		}
		res.EpsMode = res.EpsHistogram.Min + (float64(best)+0.5)*res.EpsHistogram.BinWidth()
	}
	return res
}

func knnCurve(cloud geom.Cloud, k int) []float64 {
	tree := kdtree.New(cloud)
	out := make([]float64, 0, len(cloud))
	for _, p := range cloud {
		nn := tree.KNN(p, k+1)
		d2 := nn[len(nn)-1].Dist2
		out = append(out, sqrt(d2))
	}
	sort.Float64s(out)
	return out
}

// Figure6Result reproduces Figure 6: per-axis coordinate histograms of the
// Human vs Object training data, exhibiting the distinct distributions
// that justify noise-controlled up-sampling.
type Figure6Result struct {
	Human, Object [3]geom.Histogram // x, y, z
}

// Figure6 computes the histograms over the classification training set.
func Figure6(l *Lab) Figure6Result {
	var human, object geom.Cloud
	for _, s := range l.Split().Train {
		if s.Human {
			human = append(human, s.Cloud...)
		} else {
			object = append(object, s.Cloud...)
		}
	}
	var res Figure6Result
	ranges := [3][2]float64{{12, 35}, {-2.5, 2.5}, {-3, 0}}
	for axis := 0; axis < 3; axis++ {
		res.Human[axis] = geom.NewHistogram(geom.AxisValues(human, axis), ranges[axis][0], ranges[axis][1], 30)
		res.Object[axis] = geom.NewHistogram(geom.AxisValues(object, axis), ranges[axis][0], ranges[axis][1], 30)
	}
	return res
}

// Figure8aResult is the per-epoch test-accuracy curve of one model.
type Figure8aResult struct {
	Model string
	Acc   []float64 // Acc[e] = test accuracy after epoch e
}

// Figure8a retraces the training curves of HAWC, PointNet, and the
// AutoEncoder by re-training each with a per-epoch evaluation callback on
// a bounded test subset.
func Figure8a(l *Lab) []Figure8aResult {
	split := l.Split()
	test := split.Test
	if len(test) > l.Cfg.CurveEvalSamples {
		test = test[:l.Cfg.CurveEvalSamples]
	}

	var out []Figure8aResult
	{
		l.logf("Figure 8a: HAWC curve...")
		h := models.NewHAWC()
		r := Figure8aResult{Model: "HAWC"}
		cfg := models.TrainConfig{Epochs: l.Cfg.HAWCEpochs, Seed: l.Cfg.Seed + 3}
		cfg.Progress = func(int) { r.Acc = append(r.Acc, models.Evaluate(h, test).Accuracy()) }
		mustTrain(h.Train(split.Train, cfg))
		out = append(out, r)
	}
	{
		l.logf("Figure 8a: PointNet curve...")
		p := models.NewPointNet()
		r := Figure8aResult{Model: "PointNet"}
		cfg := models.TrainConfig{Epochs: l.Cfg.PointNetEpochs, Seed: l.Cfg.Seed + 4}
		cfg.Progress = func(int) { r.Acc = append(r.Acc, models.Evaluate(p, test).Accuracy()) }
		mustTrain(p.Train(split.Train, cfg))
		out = append(out, r)
	}
	{
		l.logf("Figure 8a: AutoEncoder curve...")
		a := models.NewAutoEncoder()
		r := Figure8aResult{Model: "AutoEncoder"}
		cfg := models.TrainConfig{Epochs: l.Cfg.AEEpochs, Seed: l.Cfg.Seed + 5}
		cfg.Progress = func(int) { r.Acc = append(r.Acc, models.Evaluate(a, test).Accuracy()) }
		mustTrain(a.Train(split.Train, cfg))
		out = append(out, r)
	}
	return out
}

// Figure8bResult is one model's accuracy across training-set fractions.
type Figure8bResult struct {
	Model     string
	Fractions []float64
	Acc       []float64
}

// Figure8bFractions are the training-data fractions evaluated (the paper
// sweeps 100% down to 0.1%).
var Figure8bFractions = []float64{1.0, 0.1, 0.01, 0.001}

// Figure8b measures robustness to limited training data: each model is
// retrained on shrinking class-balanced subsets.
func Figure8b(l *Lab) []Figure8bResult {
	split := l.Split()
	rng := rand.New(rand.NewSource(l.Cfg.Seed + 7))

	train := func(model string, frac float64, sub []dataset.Sample) float64 {
		// The 100% fraction is exactly the lab's cached training run (same
		// data, seed, and budget), so reuse it instead of retraining.
		switch model {
		case "HAWC":
			if frac >= 1 {
				return models.Evaluate(l.HAWC(), split.Test).Accuracy()
			}
			h := models.NewHAWC()
			mustTrain(h.Train(sub, models.TrainConfig{Epochs: l.Cfg.HAWCEpochs, Seed: l.Cfg.Seed + 3}))
			return models.Evaluate(h, split.Test).Accuracy()
		case "PointNet":
			if frac >= 1 {
				return models.Evaluate(l.PointNet(), split.Test).Accuracy()
			}
			p := models.NewPointNet()
			mustTrain(p.Train(sub, models.TrainConfig{Epochs: l.Cfg.PointNetEpochs, Seed: l.Cfg.Seed + 4}))
			return models.Evaluate(p, split.Test).Accuracy()
		default:
			if frac >= 1 {
				return models.Evaluate(l.AutoEncoder(), split.Test).Accuracy()
			}
			a := models.NewAutoEncoder()
			mustTrain(a.Train(sub, models.TrainConfig{Epochs: l.Cfg.AEEpochs, Seed: l.Cfg.Seed + 5}))
			return models.Evaluate(a, split.Test).Accuracy()
		}
	}

	var out []Figure8bResult
	for _, model := range []string{"HAWC", "PointNet", "AutoEncoder"} {
		r := Figure8bResult{Model: model, Fractions: Figure8bFractions}
		for _, frac := range Figure8bFractions {
			l.logf("Figure 8b: %s at %.1f%% of training data...", model, frac*100)
			sub := dataset.Subset(rng, split.Train, frac)
			r.Acc = append(r.Acc, train(model, frac, sub))
		}
		out = append(out, r)
	}
	return out
}

// Figure9Result is one projection method's detection and counting
// performance.
type Figure9Result struct {
	Projection string
	Acc        float64
	MAE, MSE   float64
}

// Figure9 reproduces the projection ablation: HAWC retrained with each of
// HAP, TV, BEV, RV, DA; detection accuracy on the test split and counting
// MAE/MSE through the full HAWC-CC pipeline.
func Figure9(l *Lab) []Figure9Result {
	split := l.Split()
	frames := l.Frames()
	var out []Figure9Result
	for _, name := range []string{"HAP", "TV", "BEV", "RV", "DA"} {
		l.logf("Figure 9: training HAWC with %s projection...", name)
		proj, ok := projection.ByName(name)
		if !ok {
			panic("experiments: unknown projection " + name)
		}
		var clf *models.HAWC
		if name == "HAP" {
			clf = l.HAWC() // reuse the lab's trained model
		} else {
			clf = models.NewHAWC()
			clf.Projector = proj
			mustTrain(clf.Train(split.Train, models.TrainConfig{
				Epochs: l.Cfg.HAWCEpochs, Seed: l.Cfg.Seed + 3,
			}))
		}
		acc := models.Evaluate(clf, split.Test).Accuracy()
		p := counting.New(clf)
		ev, err := counting.Evaluate(p, frames)
		mustTrain(err)
		out = append(out, Figure9Result{Projection: name, Acc: acc, MAE: ev.MAE, MSE: ev.MSE})
	}
	return out
}

// Figure10Result reproduces the pole-temperature analysis.
type Figure10Result struct {
	Readings []telemetry.Reading
	Stats    telemetry.Stats
	DailyMax []float64
}

// Figure10 simulates the summer monitoring window and summarizes it the
// way Section VII-D does.
func Figure10() Figure10Result {
	readings := telemetry.Simulate(telemetry.SummerConfig())
	return Figure10Result{
		Readings: readings,
		Stats:    telemetry.Summarize(readings, 50),
		DailyMax: telemetry.DailyMax(readings),
	}
}

// Figure11Result describes the point clouds of one density level.
type Figure11Result struct {
	Pedestrians int
	Points      int
	// OffsetHistX/Y bin the per-person x/y offsets from the area center.
	OffsetHistX, OffsetHistY geom.Histogram
}

// Figure11 visualizes (statistically) the synthetic density levels of the
// scalability study: cloud sizes and offset distributions for 20, 100,
// and 250 pedestrians.
func Figure11(l *Lab) []Figure11Result {
	split := l.Split()
	var humanPool, objectPool []dataset.Sample
	for _, s := range split.Train {
		if s.Human {
			humanPool = append(humanPool, s)
		} else {
			objectPool = append(objectPool, s)
		}
	}
	rng := rand.New(rand.NewSource(l.Cfg.Seed + 8))
	var out []Figure11Result
	for _, n := range []int{20, 100, 250} {
		f := dataset.HighDensityFrame(rng, humanPool, objectPool, n)
		const centerX = 23.5
		xs := geom.AxisValues(f.Cloud, 0)
		for i := range xs {
			xs[i] -= centerX
		}
		ys := geom.AxisValues(f.Cloud, 1)
		out = append(out, Figure11Result{
			Pedestrians: n,
			Points:      len(f.Cloud),
			OffsetHistX: geom.NewHistogram(xs, -6, 6, 24),
			OffsetHistY: geom.NewHistogram(ys, -6, 6, 24),
		})
	}
	return out
}

// FormatHistogramASCII renders a histogram as a horizontal bar chart for
// terminal reports.
func FormatHistogramASCII(h geom.Histogram, width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*h.BinWidth()
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "%8.2f | %-*s %d\n", lo, width, bar, c)
	}
	return b.String()
}

// CountingAccuracy re-exports the metric for report rendering.
func CountingAccuracy(pred, truth []float64) float64 {
	return metrics.CountingAccuracy(pred, truth)
}

func ingest(cloud geom.Cloud) geom.Cloud {
	return ground.Ingest(cloud, ground.DefaultROI())
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Figure8Result bundles Figure 8a and 8b from a single training sweep:
// the 100%-fraction training run doubles as the source of the per-epoch
// accuracy curve, so each model trains len(fractions) times instead of
// len(fractions)+1.
type Figure8Result struct {
	Curves    []Figure8aResult
	Fractions []Figure8bResult
}

// Figure8 runs the combined training-curve and data-efficiency experiment
// with the given training fractions (the paper sweeps 100% → 0.1%).
func Figure8(l *Lab, fractions []float64) Figure8Result {
	split := l.Split()
	test := split.Test
	if len(test) > l.Cfg.CurveEvalSamples {
		test = test[:l.Cfg.CurveEvalSamples]
	}
	rng := rand.New(rand.NewSource(l.Cfg.Seed + 7))

	var res Figure8Result
	type spec struct {
		name   string
		epochs int
		build  func() interface {
			Train([]dataset.Sample, models.TrainConfig) error
		}
	}
	specs := []spec{
		{"HAWC", l.Cfg.HAWCEpochs, func() interface {
			Train([]dataset.Sample, models.TrainConfig) error
		} {
			return models.NewHAWC()
		}},
		{"PointNet", l.Cfg.PointNetEpochs, func() interface {
			Train([]dataset.Sample, models.TrainConfig) error
		} {
			return models.NewPointNet()
		}},
		{"AutoEncoder", l.Cfg.AEEpochs, func() interface {
			Train([]dataset.Sample, models.TrainConfig) error
		} {
			return models.NewAutoEncoder()
		}},
	}

	for _, sp := range specs {
		curve := Figure8aResult{Model: sp.name}
		frac := Figure8bResult{Model: sp.name, Fractions: fractions}
		for _, f := range fractions {
			l.logf("Figure 8: %s at %.1f%% of training data...", sp.name, f*100)
			sub := dataset.Subset(rng, split.Train, f)
			m := sp.build()
			cfg := models.TrainConfig{Epochs: sp.epochs, Seed: l.Cfg.Seed + 3}
			if f >= 1 {
				// The full-fraction run records the Figure 8a curve.
				clf := m.(models.Classifier)
				cfg.Progress = func(int) {
					curve.Acc = append(curve.Acc, models.Evaluate(clf, test).Accuracy())
				}
			}
			mustTrain(m.Train(sub, cfg))
			frac.Acc = append(frac.Acc, models.Evaluate(m.(models.Classifier), split.Test).Accuracy())
		}
		res.Curves = append(res.Curves, curve)
		res.Fractions = append(res.Fractions, frac)
	}
	return res
}
