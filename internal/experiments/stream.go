package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hawccc/internal/counting"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/obs"
)

// StreamRow compares the two execution modes of the counting pipeline at
// one worker count: the frame-at-a-time loop (each frame fully counted —
// ingest, cluster, classify on Workers goroutines — before the next
// starts) against the staged streaming scheduler given the same worker
// count per compute stage.
type StreamRow struct {
	// Workers is the per-frame worker count of the loop and the per-stage
	// worker count of the scheduler.
	Workers int `json:"workers"`
	// LoopFramesPerSec and StreamFramesPerSec are each mode's best
	// wall-clock throughput across Trials independently timed windows
	// over the same frame sequence.
	LoopFramesPerSec   float64 `json:"loop_frames_per_sec"`
	StreamFramesPerSec float64 `json:"stream_frames_per_sec"`
	// Speedup is stream over loop throughput at this worker count.
	Speedup float64 `json:"speedup"`
	// LoopP50Ms/LoopP99Ms summarize the loop's per-frame compute latency
	// (Timing.Total); StreamP50Ms/StreamP99Ms summarize the scheduler's
	// end-to-end per-frame latency including inter-stage queueing, which
	// is the latency a backend consuming the stream observes.
	LoopP50Ms   float64 `json:"loop_p50_ms"`
	LoopP99Ms   float64 `json:"loop_p99_ms"`
	StreamP50Ms float64 `json:"stream_p50_ms"`
	StreamP99Ms float64 `json:"stream_p99_ms"`
	// LoopMAE and StreamMAE must be identical — the live bit-equivalence
	// check of the two execution modes.
	LoopMAE   float64 `json:"loop_mae"`
	StreamMAE float64 `json:"stream_mae"`
}

// StreamBenchResult is the full sweep plus the CI gate field.
type StreamBenchResult struct {
	NumCPU int `json:"num_cpu"`
	// Frames is the length of one pass. Each mode is timed over Trials
	// independent runs of Passes×Frames each, and the reported throughput
	// is the best trial — nearest-rank percentiles and MAE pool every
	// trial's samples.
	Frames int `json:"frames"`
	Trials int `json:"trials"`
	Passes int `json:"passes_per_trial"`
	// QueueDepth is the scheduler's bounded queue capacity per stage.
	QueueDepth int         `json:"queue_depth"`
	Rows       []StreamRow `json:"rows"`
	// StreamSpeedupMaxWorkers is the Speedup of the widest row — the
	// number CI gates on: streaming must not lose to frame-at-a-time at
	// full width.
	StreamSpeedupMaxWorkers float64 `json:"stream_speedup_max_workers"`
}

// streamBenchTrials is how many independently timed runs each mode gets
// per row; the best trial is the reported throughput, which rejects the
// downward noise (GC pauses, host scheduling jitter) that a single
// wall-clock window folds into the ratio.
const streamBenchTrials = 3

// streamBenchPasses is how many passes over the frame set one trial
// makes; a Quick lab's 30 frames are too few for a stable window in one
// pass, and a longer window also amortizes the scheduler's pipeline
// fill/drain at the edges of a stream trial.
const streamBenchPasses = 3

// StreamBench measures what the staged scheduler buys over the
// frame-at-a-time loop. The loop is the pipeline's synchronous mode: one
// frame fully counted before the next starts, parallel only within the
// classify stage. The scheduler overlaps ingest, cluster, and classify
// of consecutive frames, so it converts the same worker budget into
// frame-level concurrency — the regime a pole node streaming sweeps off
// a sensor actually runs in. MAE is recorded for both modes; equality is
// the determinism contract.
func StreamBench(l *Lab) StreamBenchResult {
	classifier := l.HAWC()
	frames := l.Frames()
	reg := l.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	depth := counting.DefaultStreamConfig().QueueDepth

	res := StreamBenchResult{
		NumCPU:     runtime.NumCPU(),
		Frames:     len(frames),
		Trials:     streamBenchTrials,
		Passes:     streamBenchPasses,
		QueueDepth: depth,
	}
	for _, workers := range parallelWorkerCounts() {
		l.logf("stream bench: %d workers, loop vs stream, best of %d trials × %d passes over %d frames...",
			workers, streamBenchTrials, streamBenchPasses, len(frames))
		p := counting.New(classifier).
			Instrument(reg, obs.L("mode", "stream-bench"), obs.L("workers", strconv.Itoa(workers)))
		row := benchStreamRow(p, frames, workers, depth)
		res.Rows = append(res.Rows, row)
		res.StreamSpeedupMaxWorkers = row.Speedup
	}
	return res
}

// benchStreamRow runs both modes at one worker count. Each mode is timed
// over streamBenchTrials independent windows and the best window wins:
// the ratio of two single windows on a busy host measures the host's
// noise more than the scheduler, while the per-mode maximum converges on
// what each mode can actually sustain.
func benchStreamRow(p *counting.Pipeline, frames []dataset.Frame, workers, depth int) StreamRow {
	n := len(frames) * streamBenchPasses
	total := n * streamBenchTrials
	row := StreamRow{Workers: workers}

	// Frame-at-a-time loop.
	lat := make([]float64, 0, total)
	var absSum float64
	for trial := 0; trial < streamBenchTrials; trial++ {
		start := time.Now()
		for pass := 0; pass < streamBenchPasses; pass++ {
			for i := range frames {
				r := p.CountWorkers(frames[i].Cloud, workers)
				lat = append(lat, ms(r.Timing.Total()))
				absSum += absDiff(r.Count, frames[i].Count)
			}
		}
		if fps := float64(n) / time.Since(start).Seconds(); fps > row.LoopFramesPerSec {
			row.LoopFramesPerSec = fps
		}
	}
	row.LoopP50Ms, row.LoopP99Ms = p50p99(lat)
	row.LoopMAE = absSum / float64(total)

	// Staged scheduler, same worker count per compute stage. Every trial
	// is a fresh scheduler run over the same frames, so fill/drain at the
	// window edges is part of what the trial pays, as it would be for a
	// pole stream of the same length.
	cfg := counting.StreamConfig{
		IngestWorkers:   1,
		ClusterWorkers:  workers,
		ClassifyWorkers: workers,
		QueueDepth:      depth,
	}
	lat = lat[:0]
	absSum = 0
	for trial := 0; trial < streamBenchTrials; trial++ {
		in := make(chan geom.Cloud)
		go func() {
			defer close(in)
			for pass := 0; pass < streamBenchPasses; pass++ {
				for i := range frames {
					in <- frames[i].Cloud
				}
			}
		}()
		start := time.Now()
		for r := range p.StreamWith(context.Background(), in, cfg) {
			lat = append(lat, ms(r.E2E))
			absSum += absDiff(r.Count, frames[int(r.Seq)%len(frames)].Count)
		}
		if fps := float64(n) / time.Since(start).Seconds(); fps > row.StreamFramesPerSec {
			row.StreamFramesPerSec = fps
		}
	}
	row.StreamP50Ms, row.StreamP99Ms = p50p99(lat)
	row.StreamMAE = absSum / float64(total)

	if row.LoopFramesPerSec > 0 {
		row.Speedup = row.StreamFramesPerSec / row.LoopFramesPerSec
	}
	return row
}

// absDiff is |predicted − truth| as a float.
func absDiff(pred, truth int) float64 {
	d := pred - truth
	if d < 0 {
		d = -d
	}
	return float64(d)
}

// p50p99 returns the 50th and 99th percentile of the samples
// (nearest-rank on the sorted slice; the slice is sorted in place).
func p50p99(samples []float64) (p50, p99 float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	sort.Float64s(samples)
	rank := func(q float64) float64 {
		i := int(q*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return rank(0.50), rank(0.99)
}

// FormatStream renders the sweep as a console table.
func FormatStream(r StreamBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores, best of %d trials × %d passes over %d frames, queue depth %d\n",
		r.NumCPU, r.Trials, r.Passes, r.Frames, r.QueueDepth)
	fmt.Fprintf(&b, "%-8s %12s %14s %8s %10s %10s %12s %12s %6s\n",
		"Workers", "Loop f/s", "Stream f/s", "Speedup",
		"Loop p50", "Loop p99", "Stream p50", "Stream p99", "MAE")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %12.2f %14.2f %7.2fx %9.3fms %9.3fms %11.3fms %11.3fms %6.2f\n",
			row.Workers, row.LoopFramesPerSec, row.StreamFramesPerSec, row.Speedup,
			row.LoopP50Ms, row.LoopP99Ms, row.StreamP50Ms, row.StreamP99Ms, row.StreamMAE)
	}
	fmt.Fprintf(&b, "stream speedup at max workers: %.2fx\n", r.StreamSpeedupMaxWorkers)
	return b.String()
}

// WriteStreamJSON writes the sweep as the BENCH_stream.json artifact
// consumed by CI.
func WriteStreamJSON(w io.Writer, r StreamBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
