package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"hawccc/internal/tensor"
	"hawccc/internal/upsample"
)

// KernelsRow is one (inference path, batch size) throughput measurement
// over the trained HAWC network at its real input shape.
type KernelsRow struct {
	// Path is the kernel route: "naive" (scalar reference loops), "gemm"
	// (im2col + packed GEMM), "int8-naive", or "int8-gemm" (the
	// quantized graph on the same two routes).
	Path string `json:"path"`
	// Batch is the number of cluster images per forward pass.
	Batch int `json:"batch"`
	// NsPerOp is nanoseconds per forward pass (the whole batch).
	NsPerOp float64 `json:"ns_per_op"`
	// NsPerCluster is NsPerOp divided by Batch.
	NsPerCluster float64 `json:"ns_per_cluster"`
	// ClustersPerSec is the single-goroutine classification throughput.
	ClustersPerSec float64 `json:"clusters_per_sec"`
}

// KernelsResult is the full sweep plus the ratios CI gates on.
type KernelsResult struct {
	NumCPU int `json:"num_cpu"`
	// ImageSide and Channels record the measured input shape [B, side,
	// side, channels].
	ImageSide int          `json:"image_side"`
	Channels  int          `json:"channels"`
	Rows      []KernelsRow `json:"rows"`
	// GemmSpeedupBatch32 is naive ns/cluster over GEMM ns/cluster at
	// batch 32 on the float network — the headline kernel speedup.
	GemmSpeedupBatch32 float64 `json:"gemm_speedup_batch32"`
	// Int8GemmSpeedupBatch32 is the same ratio for the quantized graph.
	Int8GemmSpeedupBatch32 float64 `json:"int8_gemm_speedup_batch32"`
}

// kernelsBatches is the sweep's batch dimension: single-cluster latency,
// a typical frame's worth, and a packed batch that amortizes weight
// packing fully.
var kernelsBatches = []int{1, 8, 32}

// KernelsBench measures the inference kernel paths on the trained float
// and int8 HAWC networks. All paths see identical inputs; because the
// GEMM paths are bit-identical (float) and exactly equal (int8) to the
// naive references, the sweep measures speed alone — correctness is
// pinned by the equivalence tests, not here.
func KernelsBench(l *Lab) KernelsResult {
	h := l.HAWC()
	hq := l.HAWCInt8()
	net := h.Network()
	qnet := hq.QuantNetwork()
	side := upsample.Side(h.Target())
	channels := h.Projector.Channels()

	res := KernelsResult{NumCPU: runtime.NumCPU(), ImageSide: side, Channels: channels}
	rng := rand.New(rand.NewSource(42))
	paths := []struct {
		name string
		run  func(x *tensor.Tensor)
	}{
		{"naive", func(x *tensor.Tensor) { net.InferNaive(x) }},
		{"gemm", func(x *tensor.Tensor) { net.Infer(x) }},
		{"int8-naive", func(x *tensor.Tensor) { qnet.ForwardNaive(x) }},
		{"int8-gemm", func(x *tensor.Tensor) { qnet.Forward(x) }},
	}
	perCluster := map[string]map[int]float64{}
	for _, p := range paths {
		perCluster[p.name] = map[int]float64{}
		for _, batch := range kernelsBatches {
			x := tensor.New(batch, side, side, channels)
			x.RandNormal(rng, 1)
			l.logf("kernels bench: %s batch %d...", p.name, batch)
			nsPerOp := benchForward(p.run, x)
			row := KernelsRow{
				Path:           p.name,
				Batch:          batch,
				NsPerOp:        nsPerOp,
				NsPerCluster:   nsPerOp / float64(batch),
				ClustersPerSec: float64(batch) / (nsPerOp / 1e9),
			}
			perCluster[p.name][batch] = row.NsPerCluster
			res.Rows = append(res.Rows, row)
		}
	}
	last := kernelsBatches[len(kernelsBatches)-1]
	if g := perCluster["gemm"][last]; g > 0 {
		res.GemmSpeedupBatch32 = perCluster["naive"][last] / g
	}
	if g := perCluster["int8-gemm"][last]; g > 0 {
		res.Int8GemmSpeedupBatch32 = perCluster["int8-naive"][last] / g
	}
	return res
}

// benchForward times one forward-pass closure: warm up, calibrate the
// repetition count to ~250ms of measurement, then report ns per pass.
func benchForward(run func(x *tensor.Tensor), x *tensor.Tensor) float64 {
	run(x) // warm-up: scratch arenas grow, packed panels allocate
	t0 := time.Now()
	run(x)
	once := time.Since(t0)
	reps := int(250 * time.Millisecond / (once + 1))
	if reps < 3 {
		reps = 3
	}
	if reps > 2000 {
		reps = 2000
	}
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		run(x)
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(reps)
}

// FormatKernels renders the sweep as a console table.
func FormatKernels(r KernelsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %d cores, input [B, %d, %d, %d]\n", r.NumCPU, r.ImageSide, r.ImageSide, r.Channels)
	fmt.Fprintf(&b, "%-12s %6s %14s %16s %14s\n", "Path", "Batch", "ns/op", "ns/cluster", "clusters/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %6d %14.0f %16.0f %14.0f\n",
			row.Path, row.Batch, row.NsPerOp, row.NsPerCluster, row.ClustersPerSec)
	}
	fmt.Fprintf(&b, "gemm speedup over naive at batch 32: %.2fx (float), %.2fx (int8)\n",
		r.GemmSpeedupBatch32, r.Int8GemmSpeedupBatch32)
	return b.String()
}

// WriteKernelsJSON writes the sweep as the BENCH_kernels.json artifact
// consumed by CI.
func WriteKernelsJSON(w io.Writer, r KernelsResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
