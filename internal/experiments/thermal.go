package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"hawccc/internal/telemetry"
	"hawccc/internal/tsdb"
)

// ThermalResult is Figure 10 derived from the history store instead of
// the in-memory telemetry log: the simulated summer window is appended
// as pole_temp_c / ambient_c series, and every reported statistic is
// recomputed from store reads — the raw query rebuilds the reading
// pairs, and the daily maxima come from a 24 h downsampled read.
type ThermalResult struct {
	Readings int `json:"readings"`
	Days     int `json:"days"`
	// Stats and DailyMax are computed from store queries alone.
	Stats    telemetry.Stats `json:"stats"`
	DailyMax []float64       `json:"daily_max"`
	// StoreBytesPerSample is what the 18-day window costs per sample in
	// the sealed store.
	StoreBytesPerSample float64 `json:"store_bytes_per_sample"`
	// MatchesInMemory is the equivalence gate: the history-derived
	// numbers must equal the in-memory telemetry.Summarize / DailyMax
	// bit for bit, because raw reads are bit-exact and the bucket Max is
	// an exact fold over those same bits.
	MatchesInMemory bool `json:"matches_in_memory"`
}

// thermalPole is the pole ID the telemetry window is recorded under.
const thermalPole = 42

// ThermalBench records the Section VII-D monitoring window through the
// history store and rederives the Figure 10 analysis from it.
func ThermalBench(l *Lab) ThermalResult {
	readings := telemetry.Simulate(telemetry.SummerConfig())
	l.logf("thermal bench: recording %d readings through the history store...", len(readings))

	st := tsdb.MustNew(tsdb.Config{MaxChunks: -1})
	defer st.Close()
	pole := st.Series(thermalPole, "pole_temp_c")
	amb := st.Series(thermalPole, "ambient_c")
	for _, r := range readings {
		ts := r.At.UnixNano()
		pole.Append(ts, r.Pole)
		amb.Append(ts, r.Weather)
	}
	st.SealAll()

	// Rebuild the reading pairs from two raw reads; the series share a
	// clock, so the zip is positional.
	poleS, err := pole.QueryRaw(0, math.MaxInt64)
	mustTrain(err)
	ambS, err := amb.QueryRaw(0, math.MaxInt64)
	mustTrain(err)
	if len(poleS) != len(readings) || len(ambS) != len(readings) {
		panic(fmt.Sprintf("experiments: thermal store returned %d/%d samples, want %d",
			len(poleS), len(ambS), len(readings)))
	}
	recovered := make([]telemetry.Reading, len(poleS))
	for i := range poleS {
		recovered[i] = telemetry.Reading{
			At:      time.Unix(0, poleS[i].TS).UTC(),
			Pole:    poleS[i].V,
			Weather: ambS[i].V,
		}
	}
	stats := telemetry.Summarize(recovered, 50)

	// Daily maxima via the downsampled read path: midnight-aligned 24 h
	// buckets over the pole series, Max per bucket.
	cfg := telemetry.SummerConfig()
	day := int64(24 * time.Hour)
	buckets, err := pole.QueryBuckets(cfg.Start.UnixNano(), math.MaxInt64, day)
	mustTrain(err)
	dailyMax := make([]float64, len(buckets))
	for i, b := range buckets {
		dailyMax[i] = b.Max
	}

	res := ThermalResult{
		Readings:            len(recovered),
		Days:                len(dailyMax),
		Stats:               stats,
		DailyMax:            dailyMax,
		StoreBytesPerSample: st.Stats().BytesPerSample,
		MatchesInMemory:     true,
	}

	// Equivalence against the in-memory path Figure10 uses.
	memStats := telemetry.Summarize(readings, 50)
	memDaily := telemetry.DailyMax(readings)
	if stats != memStats || len(dailyMax) != len(memDaily) {
		res.MatchesInMemory = false
	} else {
		for i := range dailyMax {
			if math.Float64bits(dailyMax[i]) != math.Float64bits(memDaily[i]) {
				res.MatchesInMemory = false
				break
			}
		}
	}
	return res
}

// FormatThermal renders the history-derived Figure 10 summary.
func FormatThermal(r ThermalResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "readings: %d over %d days, replayed through the history store (%.2f B/sample sealed)\n",
		r.Readings, r.Days, r.StoreBytesPerSample)
	fmt.Fprintf(&b, "pole temperature: max %.2f°C  min %.2f°C  mean %.2f°C\n",
		r.Stats.Max, r.Stats.Min, r.Stats.Mean)
	fmt.Fprintf(&b, "pole−weather delta: %.1f°C at peak, %.1f°C in cool hours\n",
		r.Stats.PeakDelta, r.Stats.CoolDelta)
	fmt.Fprintf(&b, "hours above the Coral's 50°C rating: %.1f\n", r.Stats.HoursAboveRated)
	fmt.Fprint(&b, "daily maxima (24h buckets):")
	for _, m := range r.DailyMax {
		fmt.Fprintf(&b, " %.1f", m)
	}
	fmt.Fprintf(&b, "\nmatches in-memory Figure 10 analysis: %v\n", r.MatchesInMemory)
	return b.String()
}
