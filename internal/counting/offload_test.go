package counting

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"hawccc/internal/geom"
	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

// loopbackRemote classifies through the full quantized transport
// in-process: encode → decode → dequantize → classify, exactly what
// the backend's offload service does over TCP with the pipeline's
// prebuilt batch.
type loopbackRemote struct {
	calls atomic.Uint64
	fail  atomic.Bool
}

func (r *loopbackRemote) ClassifyRemote(batch *wire.ClusterBatch) ([]bool, error) {
	r.calls.Add(1)
	if r.fail.Load() {
		return nil, errors.New("loopback: transport down")
	}
	b, err := wire.DecodeClusterBatch(wire.EncodeClusterBatch(*batch))
	if err != nil {
		return nil, err
	}
	labels := make([]bool, len(b.Clusters))
	var buf geom.Cloud
	for i := range b.Clusters {
		buf = b.AppendCloud(i, buf[:0])
		labels[i] = heightStub{}.PredictHuman(buf)
	}
	return labels, nil
}

// TestStreamForcedOffloadMatchesGolden pins count equivalence through
// the transport: every frame shipped through quantize → encode →
// decode → dequantize must reproduce the golden per-frame counts, in
// order.
func TestStreamForcedOffloadMatchesGolden(t *testing.T) {
	frames := goldenInput()
	remote := &loopbackRemote{}
	ctl := NewOffloadController(OffloadConfig{Mode: OffloadForced, Remote: remote})
	p := New(heightStub{})
	results := streamFrames(context.Background(), p, frames, StreamConfig{Offload: ctl})
	if len(results) != len(frames) {
		t.Fatalf("got %d results, want %d", len(results), len(frames))
	}
	for i, r := range results {
		if r.Seq != uint64(i) {
			t.Errorf("result %d has seq %d — out of order", i, r.Seq)
		}
		g := goldenFrames[i]
		if r.Count != g.count || r.Clusters != g.clusters || r.Noise != g.noise {
			t.Errorf("frame %d: offloaded {%d %d %d}, golden {%d %d %d}",
				i, r.Count, r.Clusters, r.Noise, g.count, g.clusters, g.noise)
		}
	}
	if remote.calls.Load() == 0 {
		t.Fatal("forced mode never called the remote classifier")
	}
	if _, rem, _ := ctl.Decisions(); rem != uint64(len(frames)) {
		t.Errorf("remote decisions %d, want %d", rem, len(frames))
	}
}

// TestStreamOffloadFallback pins at-least-once delivery across remote
// failure: with the transport down every frame still emits, classified
// locally, with golden counts, and the controller accounts the
// fallbacks.
func TestStreamOffloadFallback(t *testing.T) {
	frames := goldenInput()
	remote := &loopbackRemote{}
	remote.fail.Store(true)
	ctl := NewOffloadController(OffloadConfig{Mode: OffloadForced, Remote: remote})
	p := New(heightStub{})
	results := streamFrames(context.Background(), p, frames, StreamConfig{Offload: ctl})
	if len(results) != len(frames) {
		t.Fatalf("got %d results, want %d — frames were lost", len(results), len(frames))
	}
	for i, r := range results {
		g := goldenFrames[i]
		if r.Count != g.count || r.Clusters != g.clusters {
			t.Errorf("frame %d: fallback {%d %d}, golden {%d %d}", i, r.Count, r.Clusters, g.count, g.clusters)
		}
	}
	_, _, fallbacks := ctl.Decisions()
	if fallbacks == 0 {
		t.Error("no fallbacks recorded despite a failing remote")
	}
}

// TestOffloadControllerThermalHysteresis drives the adaptive state
// machine directly: cool stays local, crossing the enter temperature
// sheds immediately, and returning local requires MinDwellFrames calm
// frames after cooling below the exit bound.
func TestOffloadControllerThermalHysteresis(t *testing.T) {
	remote := &loopbackRemote{}
	ctl := NewOffloadController(OffloadConfig{
		Mode:              OffloadAdaptive,
		Remote:            remote,
		EnterQueueDepth:   -1, // isolate the thermal signal
		EnterBackpressure: -1,
		MinDwellFrames:    3,
	})
	ctl.SetTemperature(30)
	for i := 0; i < 5; i++ {
		if ctl.ShouldOffload(0, 0) {
			t.Fatalf("frame %d: offloaded while cool", i)
		}
	}
	ctl.SetTemperature(55)
	if !ctl.ShouldOffload(0, 0) {
		t.Fatal("did not shed immediately at 55°C")
	}
	if !ctl.Offloading() || ctl.Switches() != 1 {
		t.Fatalf("offloading=%v switches=%d after thermal trip", ctl.Offloading(), ctl.Switches())
	}
	// Inside the hysteresis band (between exit and enter) it must stay
	// offloaded.
	ctl.SetTemperature(47)
	for i := 0; i < 10; i++ {
		if !ctl.ShouldOffload(0, 0) {
			t.Fatalf("frame %d: exited inside the hysteresis band", i)
		}
	}
	// Below the exit bound it exits only after the dwell.
	ctl.SetTemperature(40)
	for i := 0; i < 2; i++ {
		if !ctl.ShouldOffload(0, 0) {
			t.Fatalf("frame %d: exited before MinDwellFrames", i)
		}
	}
	if ctl.ShouldOffload(0, 0) {
		t.Fatal("still offloading after MinDwellFrames calm frames")
	}
	if ctl.Switches() != 2 {
		t.Fatalf("switches = %d, want 2", ctl.Switches())
	}
	local, rem, _ := ctl.Decisions()
	if local == 0 || rem == 0 {
		t.Fatalf("decisions local=%d remote=%d: both kinds expected", local, rem)
	}
}

// TestOffloadControllerQueueSignals pins the two queue-fed signals:
// depth at/above the enter threshold sheds, as does any blocked handoff
// since the previous decision; a single calm dwell period returns
// local.
func TestOffloadControllerQueueSignals(t *testing.T) {
	ctl := NewOffloadController(OffloadConfig{
		Mode:           OffloadAdaptive,
		Remote:         &loopbackRemote{},
		EnterTempC:     -1, // isolate the queue signals
		MinDwellFrames: 2,
	})
	if ctl.ShouldOffload(0, 0) {
		t.Fatal("offloaded with an empty queue")
	}
	if !ctl.ShouldOffload(DefaultQueueDepth, 0) {
		t.Fatal("full classify queue did not trigger offload")
	}
	for i := 0; i < 2; i++ {
		ctl.ShouldOffload(0, 0)
	}
	if ctl.Offloading() {
		t.Fatal("did not return local after calm dwell")
	}
	// Backpressure: the cumulative blocked count advancing by ≥ 1
	// between decisions trips the signal.
	if !ctl.ShouldOffload(0, 1) {
		t.Fatal("blocked handoff did not trigger offload")
	}
	// The same cumulative value later means no new blocking — calm.
	for i := 0; i < 2; i++ {
		ctl.ShouldOffload(0, 1)
	}
	if ctl.Offloading() {
		t.Fatal("stale backpressure kept the controller offloading")
	}
}

// TestOffloadControllerDisabledSignalsDoNotBlockExit pins the calm-side
// gating: a signal disabled for entry (negative threshold) must not
// hold the controller in the offloading state either. Under live
// streaming the classify queue routinely holds a frame or two, so a
// thermal-only controller has to exit through a nonzero queue depth.
func TestOffloadControllerDisabledSignalsDoNotBlockExit(t *testing.T) {
	ctl := NewOffloadController(OffloadConfig{
		Mode:              OffloadAdaptive,
		Remote:            &loopbackRemote{},
		EnterQueueDepth:   -1,
		EnterBackpressure: -1,
		MinDwellFrames:    2,
	})
	ctl.SetTemperature(60)
	if !ctl.ShouldOffload(3, 5) {
		t.Fatal("did not shed at 60°C")
	}
	ctl.SetTemperature(30)
	// Queue depth stays nonzero and blocked handoffs keep advancing —
	// both signals are disabled, so neither may veto the calm dwell.
	ctl.ShouldOffload(3, 6)
	ctl.ShouldOffload(2, 7)
	if ctl.Offloading() {
		t.Fatal("disabled queue signals blocked the thermal exit")
	}
}

// TestOffloadControllerNilAndOff pins the zero-cost paths: a nil
// controller and OffloadOff both always decide local.
func TestOffloadControllerNilAndOff(t *testing.T) {
	var nilCtl *OffloadController
	if nilCtl.ShouldOffload(100, 100) || nilCtl.Offloading() || nilCtl.Switches() != 0 {
		t.Fatal("nil controller must decide local")
	}
	nilCtl.SetTemperature(99) // must not panic
	off := NewOffloadController(OffloadConfig{Mode: OffloadOff, Remote: &loopbackRemote{}})
	if off.ShouldOffload(100, 100) {
		t.Fatal("OffloadOff must decide local")
	}
	noRemote := NewOffloadController(OffloadConfig{Mode: OffloadForced})
	if noRemote.ShouldOffload(100, 100) {
		t.Fatal("a controller without a Remote must decide local")
	}
}

// TestOffloadControllerInstrumented checks the decision series land in
// the registry.
func TestOffloadControllerInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	remote := &loopbackRemote{}
	ctl := NewOffloadController(OffloadConfig{Mode: OffloadForced, Remote: remote}).Instrument(reg, obs.L("pole", "7"))
	p := New(heightStub{}).Instrument(reg, obs.L("pole", "7"))
	results := streamFrames(context.Background(), p, goldenInput(), StreamConfig{Offload: ctl})
	if len(results) != len(goldenFrames) {
		t.Fatalf("got %d results", len(results))
	}
	if ctl.decRemote.Value() != uint64(len(goldenFrames)) {
		t.Errorf("remote decision counter = %d, want %d", ctl.decRemote.Value(), len(goldenFrames))
	}
	if snap := ctl.rtt.Snapshot(); snap.Count == 0 {
		t.Error("rtt histogram recorded nothing")
	}
}

func TestParseOffloadMode(t *testing.T) {
	for s, want := range map[string]OffloadMode{"off": OffloadOff, "": OffloadOff, "forced": OffloadForced, "adaptive": OffloadAdaptive} {
		got, err := ParseOffloadMode(s)
		if err != nil || got != want {
			t.Errorf("ParseOffloadMode(%q) = %v, %v", s, got, err)
		}
		if got.String() == "" {
			t.Errorf("mode %v has empty String", got)
		}
	}
	if _, err := ParseOffloadMode("bogus"); err == nil {
		t.Error("bogus mode should fail to parse")
	}
}
