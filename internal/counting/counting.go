// Package counting implements the end-to-end crowd-counting frameworks of
// the paper (Figure 3): ingest a raw LiDAR frame (ROI crop + ground
// segmentation), partition it into clusters (adaptive DBSCAN by default),
// classify every cluster Human/Object, and report the number of Human
// clusters. Swapping the classifier yields the evaluated frameworks:
// HAWC-CC, PointNet-CC, AutoEncoder-CC, and OC-SVM-CC (Section VII-A);
// swapping the clusterer yields the Table IV ablation.
package counting

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hawccc/internal/cluster"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/ground"
	"hawccc/internal/metrics"
	"hawccc/internal/models"
)

// Clusterer partitions an ingested frame into candidate clusters.
type Clusterer interface {
	Name() string
	Cluster(cloud geom.Cloud) cluster.Result
}

// AdaptiveClusterer is the paper's adaptive-ε DBSCAN (Section IV).
type AdaptiveClusterer struct {
	Config cluster.AdaptiveConfig
}

var _ Clusterer = AdaptiveClusterer{}

// NewAdaptiveClusterer returns the deployment configuration.
func NewAdaptiveClusterer() AdaptiveClusterer {
	return AdaptiveClusterer{Config: cluster.DefaultAdaptiveConfig()}
}

// Name implements Clusterer.
func (AdaptiveClusterer) Name() string { return "adaptive" }

// Cluster implements Clusterer.
func (a AdaptiveClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	return cluster.Adaptive(cloud, a.Config)
}

// FixedEpsClusterer is DBSCAN with a fixed ε (Table IV baseline).
type FixedEpsClusterer struct {
	Eps    float64
	MinPts int
}

var _ Clusterer = FixedEpsClusterer{}

// Name implements Clusterer.
func (f FixedEpsClusterer) Name() string { return fmt.Sprintf("fixed-eps(%.1f)", f.Eps) }

// Cluster implements Clusterer.
func (f FixedEpsClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	minPts := f.MinPts
	if minPts == 0 {
		minPts = cluster.DefaultAdaptiveConfig().MinPts
	}
	return cluster.DBSCAN(cloud, f.Eps, minPts)
}

// HierarchicalClusterer is single-linkage clustering cut at a distance
// threshold (Table IV baseline; drastically over-counts).
type HierarchicalClusterer struct {
	CutDistance float64
}

var _ Clusterer = HierarchicalClusterer{}

// Name implements Clusterer.
func (h HierarchicalClusterer) Name() string { return "hierarchical" }

// Cluster implements Clusterer.
func (h HierarchicalClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	cut := h.CutDistance
	if cut == 0 {
		cut = 0.12 // sub-body-scale linkage: the failure mode Table IV shows
	}
	return cluster.Hierarchical(cloud, cut)
}

// Timing is the per-stage latency breakdown of one frame.
type Timing struct {
	Ingest   time.Duration
	Cluster  time.Duration
	Classify time.Duration
}

// Total returns the end-to-end frame latency.
func (t Timing) Total() time.Duration { return t.Ingest + t.Cluster + t.Classify }

// Result describes one counted frame.
type Result struct {
	// Count is the number of clusters classified Human.
	Count int
	// Clusters is the number of candidate clusters evaluated.
	Clusters int
	// Noise is the number of points discarded as clustering noise.
	Noise int
	// Timing is the per-stage latency breakdown.
	Timing Timing
}

// Pipeline is a configured counting framework.
type Pipeline struct {
	// ROI and ground segmentation applied at ingest.
	ROI ground.ROI
	// Clusterer partitions the frame (default: adaptive DBSCAN).
	Clusterer Clusterer
	// Classifier labels each cluster (HAWC for HAWC-CC, etc.).
	Classifier models.Classifier
	// MinClusterPoints skips clusters too small to be an annotatable
	// pattern, mirroring dataset.MinVisiblePoints.
	MinClusterPoints int
}

// New builds a pipeline with deployment defaults around the classifier.
func New(classifier models.Classifier) *Pipeline {
	return &Pipeline{
		ROI:              ground.DefaultROI(),
		Clusterer:        NewAdaptiveClusterer(),
		Classifier:       classifier,
		MinClusterPoints: dataset.MinVisiblePoints,
	}
}

// Name identifies the framework, e.g. "HAWC-CC".
func (p *Pipeline) Name() string { return p.Classifier.Name() + "-CC" }

// Count processes one raw LiDAR frame end to end.
func (p *Pipeline) Count(frame geom.Cloud) Result {
	if p.Classifier == nil {
		panic("counting: pipeline has no classifier")
	}
	var res Result

	t0 := time.Now()
	ingested := ground.Ingest(frame, p.ROI)
	res.Timing.Ingest = time.Since(t0)

	t0 = time.Now()
	cr := p.Clusterer.Cluster(ingested)
	clusters := cr.Clusters(ingested)
	res.Timing.Cluster = time.Since(t0)
	res.Noise = cr.NoiseCount()

	t0 = time.Now()
	for _, c := range clusters {
		if len(c) < p.MinClusterPoints {
			continue
		}
		res.Clusters++
		if p.Classifier.PredictHuman(c) {
			res.Count++
		}
	}
	res.Timing.Classify = time.Since(t0)
	return res
}

// Evaluation aggregates counting accuracy over a frame set.
type Evaluation struct {
	MAE, MSE  float64
	Predicted []float64
	Truth     []float64
	// MeanLatency and StdLatency summarize end-to-end per-frame time.
	MeanLatency, StdLatency time.Duration
}

// Accuracy returns the 1 − MAE/mean-truth counting accuracy.
func (e Evaluation) Accuracy() float64 {
	return metrics.CountingAccuracy(e.Predicted, e.Truth)
}

// Evaluate runs the pipeline over labeled frames.
func Evaluate(p *Pipeline, frames []dataset.Frame) (Evaluation, error) {
	if len(frames) == 0 {
		return Evaluation{}, errors.New("counting: no frames")
	}
	ev := Evaluation{
		Predicted: make([]float64, len(frames)),
		Truth:     make([]float64, len(frames)),
	}
	lat := make([]float64, len(frames))
	for i, f := range frames {
		r := p.Count(f.Cloud)
		ev.Predicted[i] = float64(r.Count)
		ev.Truth[i] = float64(f.Count)
		lat[i] = float64(r.Timing.Total())
	}
	ev.MAE = metrics.MAE(ev.Predicted, ev.Truth)
	ev.MSE = metrics.MSE(ev.Predicted, ev.Truth)
	mean, std := metrics.MeanStd(lat)
	ev.MeanLatency = time.Duration(mean)
	ev.StdLatency = time.Duration(std)
	return ev, nil
}

// KMeansClusterer partitions frames with k-means, choosing k from the
// ingested point count (k ≈ points / PointsPerCluster). The paper rejects
// parametric clustering for this task — k is unknowable per frame and the
// convex clusters split or merge pedestrians — and this extension clusterer
// exists to demonstrate exactly that in the ablation benchmarks.
type KMeansClusterer struct {
	// PointsPerCluster estimates k; defaults to 150 (≈ one mid-range
	// pedestrian's returns).
	PointsPerCluster int
	// Seed drives the k-means++ initialization.
	Seed int64
}

var _ Clusterer = KMeansClusterer{}

// Name implements Clusterer.
func (KMeansClusterer) Name() string { return "kmeans" }

// Cluster implements Clusterer.
func (k KMeansClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	per := k.PointsPerCluster
	if per <= 0 {
		per = 150
	}
	kk := (len(cloud) + per - 1) / per
	if kk < 1 {
		kk = 1
	}
	rng := rand.New(rand.NewSource(k.Seed + 1))
	return cluster.KMeans(cloud, kk, 20, rng)
}

// GMMClusterer partitions frames with a Gaussian mixture, with the same
// heuristic component count as KMeansClusterer; an extension baseline.
type GMMClusterer struct {
	PointsPerCluster int
	Seed             int64
}

var _ Clusterer = GMMClusterer{}

// Name implements Clusterer.
func (GMMClusterer) Name() string { return "gmm" }

// Cluster implements Clusterer.
func (g GMMClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	per := g.PointsPerCluster
	if per <= 0 {
		per = 150
	}
	kk := (len(cloud) + per - 1) / per
	if kk < 1 {
		kk = 1
	}
	rng := rand.New(rand.NewSource(g.Seed + 1))
	return cluster.GMM(cloud, kk, 15, rng)
}
