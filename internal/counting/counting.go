// Package counting implements the end-to-end crowd-counting frameworks of
// the paper (Figure 3): ingest a raw LiDAR frame (ROI crop + ground
// segmentation), partition it into clusters (adaptive DBSCAN by default),
// classify every cluster Human/Object, and report the number of Human
// clusters. Swapping the classifier yields the evaluated frameworks:
// HAWC-CC, PointNet-CC, AutoEncoder-CC, and OC-SVM-CC (Section VII-A);
// swapping the clusterer yields the Table IV ablation.
package counting

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hawccc/internal/cluster"
	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/ground"
	"hawccc/internal/metrics"
	"hawccc/internal/models"
	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

// Clusterer partitions an ingested frame into candidate clusters.
type Clusterer interface {
	Name() string
	Cluster(cloud geom.Cloud) cluster.Result
}

// ScratchClusterer is the optional Clusterer extension the streaming
// pipeline prefers: clustering against a caller-owned cluster.Scratch,
// so the spatial index and every working buffer are recycled with the
// pooled frame job and the steady-state geometry stage performs no heap
// allocation. The returned result may alias the Scratch's buffers; the
// pipeline materializes clusters out of it before the next frame reuses
// the job.
type ScratchClusterer interface {
	Clusterer
	ClusterScratch(s *cluster.Scratch, cloud geom.Cloud) cluster.Result
}

// AdaptiveClusterer is the paper's adaptive-ε DBSCAN (Section IV).
type AdaptiveClusterer struct {
	Config cluster.AdaptiveConfig
}

var _ ScratchClusterer = AdaptiveClusterer{}

// NewAdaptiveClusterer returns the deployment configuration.
func NewAdaptiveClusterer() AdaptiveClusterer {
	return AdaptiveClusterer{Config: cluster.DefaultAdaptiveConfig()}
}

// Name implements Clusterer.
func (AdaptiveClusterer) Name() string { return "adaptive" }

// Cluster implements Clusterer.
func (a AdaptiveClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	return cluster.Adaptive(cloud, a.Config)
}

// ClusterScratch implements ScratchClusterer.
func (a AdaptiveClusterer) ClusterScratch(s *cluster.Scratch, cloud geom.Cloud) cluster.Result {
	return s.Adaptive(cloud, a.Config)
}

// FixedEpsClusterer is DBSCAN with a fixed ε (Table IV baseline).
type FixedEpsClusterer struct {
	Eps    float64
	MinPts int
}

var _ ScratchClusterer = FixedEpsClusterer{}

// Name implements Clusterer.
func (f FixedEpsClusterer) Name() string { return fmt.Sprintf("fixed-eps(%.1f)", f.Eps) }

// Cluster implements Clusterer.
func (f FixedEpsClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	minPts := f.MinPts
	if minPts == 0 {
		minPts = cluster.DefaultAdaptiveConfig().MinPts
	}
	return cluster.DBSCAN(cloud, f.Eps, minPts)
}

// ClusterScratch implements ScratchClusterer.
func (f FixedEpsClusterer) ClusterScratch(s *cluster.Scratch, cloud geom.Cloud) cluster.Result {
	minPts := f.MinPts
	if minPts == 0 {
		minPts = cluster.DefaultAdaptiveConfig().MinPts
	}
	return s.DBSCAN(cloud, f.Eps, minPts)
}

// HierarchicalClusterer is single-linkage clustering cut at a distance
// threshold (Table IV baseline; drastically over-counts).
type HierarchicalClusterer struct {
	CutDistance float64
}

var _ Clusterer = HierarchicalClusterer{}

// Name implements Clusterer.
func (h HierarchicalClusterer) Name() string { return "hierarchical" }

// Cluster implements Clusterer.
func (h HierarchicalClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	cut := h.CutDistance
	if cut == 0 {
		cut = 0.12 // sub-body-scale linkage: the failure mode Table IV shows
	}
	return cluster.Hierarchical(cloud, cut)
}

// Timing is the per-stage latency breakdown of one frame — the frame's
// span, with one segment per pipeline stage.
type Timing struct {
	// ROI and Ground split the ingest stage: region-of-interest crop,
	// then ground segmentation. Ingest is their sum (kept so existing
	// consumers of the three-stage breakdown keep working).
	ROI      time.Duration
	Ground   time.Duration
	Ingest   time.Duration
	Cluster  time.Duration
	Classify time.Duration
	// QueueWait is the longest time any cluster batch waited between the
	// start of the classify stage and a worker picking it up. It overlaps
	// Classify (it is contention inside that stage), so Total excludes it.
	QueueWait time.Duration
}

// Total returns the end-to-end frame latency.
func (t Timing) Total() time.Duration { return t.Ingest + t.Cluster + t.Classify }

// Result describes one counted frame.
type Result struct {
	// Count is the number of clusters classified Human.
	Count int
	// Clusters is the number of candidate clusters evaluated.
	Clusters int
	// Noise is the number of points discarded as clustering noise.
	Noise int
	// Timing is the per-stage latency breakdown.
	Timing Timing
}

// Pipeline is a configured counting framework.
type Pipeline struct {
	// ROI and ground segmentation applied at ingest.
	ROI ground.ROI
	// Clusterer partitions the frame (default: adaptive DBSCAN).
	Clusterer Clusterer
	// Classifier labels each cluster (HAWC for HAWC-CC, etc.).
	Classifier models.Classifier
	// MinClusterPoints skips clusters too small to be an annotatable
	// pattern, mirroring dataset.MinVisiblePoints.
	MinClusterPoints int
	// Parallelism is the number of goroutines classifying clusters inside
	// one Count call. 0 or 1 runs sequentially (the bit-identical
	// fallback); New sets runtime.NumCPU(), matching pole hardware where
	// every core counts toward the frame budget. Values above 1 require a
	// Classifier that is safe for concurrent PredictHuman calls — every
	// classifier in internal/models is, once trained.
	Parallelism int
	// BatchSize is how many clusters go into one forward pass when the
	// Classifier implements models.BatchClassifier: workers take a batch
	// at a time, so one frame's clusters become ⌈N/BatchSize⌉ stacked
	// [B, H, W, C] passes instead of N batch-1 passes. 0 selects
	// DefaultBatchSize; classifiers without batch support ignore it.
	// Counts are identical at any batch size — batched classification is
	// bit-equal per cluster.
	BatchSize int
	// LatticeScale is the classification lattice step in metres. Before
	// classification every kept cluster is snapped onto this quantization
	// lattice — the exact quantize→dequantize round trip the offload
	// transport applies (wire.ClusterBatch at this scale) — so a
	// cluster's label is independent of where classification runs: the
	// backend decodes the same lattice integers and dequantizes with the
	// same arithmetic, making edge, fallback, and offloaded
	// classification operate on bit-identical float64 clouds. The snap
	// moves each coordinate by at most half a step (1 mm at the default
	// 2 mm scale, two orders of magnitude under LiDAR ranging noise). 0
	// selects wire.DefaultQuantScale; negative disables snapping, which
	// also forfeits the edge/cloud label-equivalence guarantee.
	LatticeScale float64
	// m holds the pipeline's observability instruments. All fields are
	// nil (no-op) until Instrument is called, so an uninstrumented
	// pipeline pays only dead nil-receiver calls on the hot path.
	m pipelineObs
	// reg and extra remember the Instrument call so the streaming
	// scheduler can register its queue-depth gauges and backpressure
	// counters under the same labels; both stay nil/empty on an
	// uninstrumented pipeline.
	reg   *obs.Registry
	extra []obs.Label
}

// pipelineObs is the per-pipeline instrument set. Instruments are shared
// through the Registry, so several pipelines instrumented against the
// same registry (e.g. every pole in a campus) aggregate into one set of
// campus-wide series unless distinguished by extra labels.
type pipelineObs struct {
	frames    *obs.Counter
	humans    *obs.Counter
	objects   *obs.Counter
	noise     *obs.Counter
	roi       *obs.Histogram
	ground    *obs.Histogram
	cluster   *obs.Histogram
	classify  *obs.Histogram
	total     *obs.Histogram
	queueWait *obs.Histogram
}

// Instrument registers the pipeline's metrics in reg and starts recording
// per-frame stage spans, cluster label counts, and classify queue waits.
// extra labels are attached to every series (benchmarks label by worker
// count, a multi-tenant deployment might label by sensor). It returns p
// for chaining; a nil registry leaves the pipeline uninstrumented.
func (p *Pipeline) Instrument(reg *obs.Registry, extra ...obs.Label) *Pipeline {
	if reg == nil {
		return p
	}
	p.reg = reg
	p.extra = append([]obs.Label(nil), extra...)
	withExtra := func(labels ...obs.Label) []obs.Label {
		return append(labels, extra...)
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("hawc_frame_stage_seconds",
			"per-frame latency of one pipeline stage (roi, ground, cluster, classify)",
			obs.LatencyBuckets(), withExtra(obs.L("stage", name))...)
	}
	p.m = pipelineObs{
		frames: reg.Counter("hawc_frames_total",
			"LiDAR frames counted end to end", extra...),
		humans: reg.Counter("hawc_clusters_total",
			"clusters classified, by predicted label", withExtra(obs.L("label", "human"))...),
		objects: reg.Counter("hawc_clusters_total",
			"clusters classified, by predicted label", withExtra(obs.L("label", "object"))...),
		noise: reg.Counter("hawc_noise_points_total",
			"points discarded as clustering noise", extra...),
		roi:      stage("roi"),
		ground:   stage("ground"),
		cluster:  stage("cluster"),
		classify: stage("classify"),
		total: reg.Histogram("hawc_frame_seconds",
			"end-to-end per-frame counting latency", obs.LatencyBuckets(), extra...),
		queueWait: reg.Histogram("hawc_classify_queue_wait_seconds",
			"time a cluster batch waits for a classify worker", obs.LatencyBuckets(), extra...),
	}
	return p
}

// StageHistograms exposes the pipeline's stage instruments keyed by stage
// name ("roi", "ground", "cluster", "classify", "total", "queue_wait");
// values are nil on an uninstrumented pipeline. Benchmarks snapshot these
// to report p50/p95/p99 per stage.
func (p *Pipeline) StageHistograms() map[string]*obs.Histogram {
	return map[string]*obs.Histogram{
		"roi":        p.m.roi,
		"ground":     p.m.ground,
		"cluster":    p.m.cluster,
		"classify":   p.m.classify,
		"total":      p.m.total,
		"queue_wait": p.m.queueWait,
	}
}

// DefaultBatchSize is the cluster batch per forward pass when BatchSize
// is unset. Large enough to amortize weight packing across the GEMM
// batch, small enough that a typical frame still splits into several
// batches for the worker pool.
const DefaultBatchSize = 16

// batchSize resolves the configured batch size.
func (p *Pipeline) batchSize() int {
	if p.BatchSize > 0 {
		return p.BatchSize
	}
	return DefaultBatchSize
}

// New builds a pipeline with deployment defaults around the classifier.
func New(classifier models.Classifier) *Pipeline {
	return &Pipeline{
		ROI:              ground.DefaultROI(),
		Clusterer:        NewAdaptiveClusterer(),
		Classifier:       classifier,
		MinClusterPoints: dataset.MinVisiblePoints,
		Parallelism:      runtime.NumCPU(),
	}
}

// Name identifies the framework, e.g. "HAWC-CC".
func (p *Pipeline) Name() string { return p.Classifier.Name() + "-CC" }

// streamJob is the unit of work the staged scheduler moves between
// stages: one frame plus every buffer its processing needs. Jobs are
// pooled and their buffers (crop/segment scratch, materialized cluster
// clouds, kept-cluster headers) are recycled, so both the one-shot Count
// path and steady-state streaming stay allocation-flat outside the
// clustering kernels. A job is owned by exactly one goroutine at a time
// — ownership transfers with the job as it moves through the stages.
type streamJob struct {
	// seq is the frame's position on the stream input (0 for one-shot).
	seq uint64
	// enqueued is when the scheduler dequeued the frame; classifyReady
	// is when the cluster stage finished, the base of the queue-wait
	// measurement under streaming.
	enqueued, classifyReady time.Time
	// frame is the caller's raw cloud (never mutated, never retained).
	frame geom.Cloud
	// cropped and ingested are the pooled ingest buffers.
	cropped, ingested geom.Cloud
	// clusters are the materialized cluster clouds (backing arrays
	// recycled via cluster.Result.ClustersInto); kept holds the headers
	// of those meeting MinClusterPoints.
	clusters []geom.Cloud
	kept     []geom.Cloud
	// scratch carries the geometry stage's per-frame spatial index and
	// working buffers; recycled with the job so steady-state clustering
	// (ScratchClusterer path) allocates nothing.
	scratch cluster.Scratch
	// batch is the frame's kept clusters quantized on the classification
	// lattice (rebuilt in place each frame); canonPts is the backing
	// buffer its dequantized clouds are sliced from. When lattice
	// snapping is on, kept's headers point into canonPts after
	// stageKeep, and the offload path ships batch itself so the backend
	// classifies the very same integers.
	batch    wire.ClusterBatch
	canonPts geom.Cloud
	// res accumulates the frame's Result as stages run.
	res Result
}

// jobPool recycles streamJobs across frames, calls, and pipelines.
var jobPool = sync.Pool{New: func() any { return new(streamJob) }}

// acquireJob takes a recycled job. Its buffers keep their grown
// capacity; res and bookkeeping fields were zeroed at release.
func acquireJob() *streamJob { return jobPool.Get().(*streamJob) }

// releaseJob returns a job to the pool, dropping references to caller
// data but keeping the scratch buffers.
func releaseJob(j *streamJob) {
	j.seq = 0
	j.enqueued, j.classifyReady = time.Time{}, time.Time{}
	j.frame = nil
	j.res = Result{}
	jobPool.Put(j)
}

// Count processes one raw LiDAR frame end to end, classifying clusters on
// Parallelism goroutines. A pipeline without a classifier returns a zero
// Result rather than panicking, so a misconfigured pole node degrades to
// reporting an empty walkway instead of crashing its capture loop.
func (p *Pipeline) Count(frame geom.Cloud) Result {
	return p.CountWorkers(frame, p.Parallelism)
}

// CountWorkers is Count with an explicit worker count for this call only:
// 0 or negative selects runtime.NumCPU(), 1 runs sequentially. The result
// is identical at any worker count — classification is deterministic per
// cluster and aggregation is order-independent.
//
// Count and CountWorkers are one-shot synchronous passes of the same
// stage executors the streaming scheduler (Stream/StreamWith) drives, so
// the frame-at-a-time and streaming paths cannot diverge: a frame
// produces bit-identical Count/Clusters/Noise either way.
func (p *Pipeline) CountWorkers(frame geom.Cloud, workers int) Result {
	if p.Classifier == nil {
		return Result{}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	j := acquireJob()
	j.frame = frame
	p.stageIngest(j)
	p.stageCluster(j)
	p.stageClassify(j, workers)
	res := j.res
	releaseJob(j)
	p.observeFrame(res)
	return res
}

// stageIngest crops the frame to the ROI and removes ground returns,
// writing into the job's pooled buffers and recording the two ingest
// segments of the frame span.
func (p *Pipeline) stageIngest(j *streamJob) {
	t0 := time.Now()
	j.cropped = p.ROI.CropInto(j.cropped[:0], j.frame)
	t1 := time.Now()
	j.ingested = ground.SegmentInto(j.ingested[:0], j.cropped, ground.DefaultZMin)
	t2 := time.Now()
	j.res.Timing.ROI = t1.Sub(t0)
	j.res.Timing.Ground = t2.Sub(t1)
	j.res.Timing.Ingest = j.res.Timing.ROI + j.res.Timing.Ground
}

// stageCluster partitions the ingested cloud and materializes the cluster
// clouds into the job's recycled buffers. Clusterers that support the
// Scratch path run against the job's recycled spatial index and buffers;
// the rest fall back to their allocating Cluster method.
func (p *Pipeline) stageCluster(j *streamJob) {
	t0 := time.Now()
	var cr cluster.Result
	if sc, ok := p.Clusterer.(ScratchClusterer); ok {
		cr = sc.ClusterScratch(&j.scratch, j.ingested)
	} else {
		cr = p.Clusterer.Cluster(j.ingested)
	}
	j.clusters = cr.ClustersInto(j.ingested, j.clusters)
	j.res.Timing.Cluster = time.Since(t0)
	j.res.Noise = cr.NoiseCount()
}

// latticeScale resolves the classification lattice: LatticeScale,
// wire.DefaultQuantScale when zero, and 0 (snapping off) when negative.
func (p *Pipeline) latticeScale() float64 {
	if p.LatticeScale < 0 {
		return 0
	}
	if p.LatticeScale == 0 {
		return wire.DefaultQuantScale
	}
	return p.LatticeScale
}

// stageKeep filters clusters below MinClusterPoints into j.kept and, on
// the default lattice-snapping path, canonicalizes the kept clusters:
// they are quantized into j.batch exactly as the offload transport
// would ship them, and the kept headers are repointed at the
// dequantized clouds. Every classify variant routes through here, so
// what gets classified locally is bit-identical to what the backend
// reconstructs from the same batch.
func (p *Pipeline) stageKeep(j *streamJob) {
	kept := j.kept[:0]
	for _, c := range j.clusters {
		if len(c) >= p.MinClusterPoints {
			kept = append(kept, c)
		}
	}
	j.kept = kept
	j.res.Clusters = len(kept)
	scale := p.latticeScale()
	if scale <= 0 || len(kept) == 0 {
		return
	}
	j.batch.BuildInto(0, j.seq, kept, scale)
	// Pre-size the backing buffer so AppendCloud never reallocates it —
	// the kept headers sliced out of it below must stay valid.
	if total := j.batch.Points(); cap(j.canonPts) < total {
		j.canonPts = make(geom.Cloud, 0, total)
	} else {
		j.canonPts = j.canonPts[:0]
	}
	for i := range j.batch.Clusters {
		start := len(j.canonPts)
		j.canonPts = j.batch.AppendCloud(i, j.canonPts)
		kept[i] = j.canonPts[start:len(j.canonPts):len(j.canonPts)]
	}
}

// stageClassify filters clusters below MinClusterPoints (snapping the
// survivors onto the classification lattice, see stageKeep) and labels
// the rest on the given number of goroutines (the intra-frame worker
// pool; streaming uses 1 here and gets its parallelism from frames in
// flight). The sequential path leaves Timing.QueueWait untouched so the
// streaming scheduler can account inter-stage queueing there instead.
func (p *Pipeline) stageClassify(j *streamJob, workers int) {
	t0 := time.Now()
	p.stageKeep(j)
	kept := j.kept
	if workers > len(kept) {
		workers = len(kept)
	}
	if workers <= 1 {
		n := 0
		bs := p.batchSize()
		for start := 0; start < len(kept); start += bs {
			end := start + bs
			if end > len(kept) {
				end = len(kept)
			}
			n += p.classifyBatch(kept, start, end)
		}
		j.res.Count = n
	} else {
		j.res.Count, j.res.Timing.QueueWait = p.classifyParallel(kept, workers)
	}
	j.res.Timing.Classify = time.Since(t0)
}

// stageClassifyRemote is stageClassify's offload variant: it runs the
// same keep filter and lattice snap, then ships the frame's quantized
// batch through the controller's RemoteClassifier instead of running
// the local model, recording label counts into the same instruments so
// campus-level series do not depend on where a cluster was classified.
// Because the shipped batch is the one stageKeep canonicalized from,
// the backend classifies bit-identical clouds to the local path. It
// reports false — leaving the job's result untouched beyond the kept
// filter — when the remote call failed, in which case the caller
// classifies locally.
func (p *Pipeline) stageClassifyRemote(j *streamJob, off *OffloadController) bool {
	t0 := time.Now()
	p.stageKeep(j)
	kept := j.kept
	if len(kept) == 0 {
		j.res.Count = 0
		j.res.Timing.Classify = time.Since(t0)
		return true
	}
	if p.latticeScale() <= 0 {
		// Snapping disabled: the batch was not built by stageKeep, so
		// quantize here for transport only (local classification then
		// runs on raw coordinates and may diverge from the backend's —
		// the documented cost of turning the lattice off).
		j.batch.BuildInto(0, j.seq, kept, wire.DefaultQuantScale)
	}
	labels, err := off.classifyRemote(&j.batch)
	if err != nil || len(labels) != len(kept) {
		return false
	}
	n := 0
	for _, human := range labels {
		if human {
			n++
		}
	}
	p.m.humans.Add(uint64(n))
	p.m.objects.Add(uint64(len(kept) - n))
	j.res.Count = n
	j.res.Timing.Classify = time.Since(t0)
	return true
}

// observeFrame records one completed frame into the pipeline's
// instruments (no-ops when uninstrumented). Both the one-shot and the
// streaming path report through here, so /metrics aggregates frames
// identically regardless of how they were counted.
func (p *Pipeline) observeFrame(res Result) {
	p.m.frames.Inc()
	p.m.noise.Add(uint64(res.Noise))
	p.m.roi.ObserveDuration(res.Timing.ROI)
	p.m.ground.ObserveDuration(res.Timing.Ground)
	p.m.cluster.ObserveDuration(res.Timing.Cluster)
	p.m.classify.ObserveDuration(res.Timing.Classify)
	p.m.total.ObserveDuration(res.Timing.Total())
}

// classifyBatch classifies kept[start:end] and returns the number of
// Human labels, batching through models.BatchClassifier when the
// classifier supports it. Every classify path routes through here so
// batching behavior cannot diverge between them.
func (p *Pipeline) classifyBatch(kept []geom.Cloud, start, end int) int {
	n := 0
	if bc, ok := p.Classifier.(models.BatchClassifier); ok {
		for _, human := range bc.PredictHumans(kept[start:end]) {
			if human {
				n++
			}
		}
	} else {
		for _, c := range kept[start:end] {
			if p.Classifier.PredictHuman(c) {
				n++
			}
		}
	}
	p.m.humans.Add(uint64(n))
	p.m.objects.Add(uint64(end - start - n))
	return n
}

// classifyParallel fans kept clusters out to a worker pool and returns
// the number classified Human plus the longest queue wait any batch saw.
// Workers take whole batches — one stacked forward pass each — via an
// atomic cursor, so stragglers don't serialize behind a static partition
// and each worker amortizes weight packing across its batch. The queue
// wait of a batch is the time from the start of the classify stage until
// a worker picks it up; its maximum is the frame's straggler penalty and
// every batch's wait feeds the queue-wait histogram.
func (p *Pipeline) classifyParallel(kept []geom.Cloud, workers int) (int, time.Duration) {
	bs := p.batchSize()
	chunks := (len(kept) + bs - 1) / bs
	if workers > chunks {
		workers = chunks
	}
	classifyStart := time.Now()
	var next atomic.Int64
	var humans atomic.Int64
	var maxWaitNS atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var local, localMax int64
			for {
				ci := int(next.Add(1)) - 1
				if ci >= chunks {
					break
				}
				wait := time.Since(classifyStart)
				p.m.queueWait.ObserveDuration(wait)
				if ns := wait.Nanoseconds(); ns > localMax {
					localMax = ns
				}
				start := ci * bs
				end := start + bs
				if end > len(kept) {
					end = len(kept)
				}
				local += int64(p.classifyBatch(kept, start, end))
			}
			humans.Add(local)
			for {
				cur := maxWaitNS.Load()
				if localMax <= cur || maxWaitNS.CompareAndSwap(cur, localMax) {
					break
				}
			}
		}()
	}
	wg.Wait()
	return int(humans.Load()), time.Duration(maxWaitNS.Load())
}

// Evaluation aggregates counting accuracy over a frame set.
type Evaluation struct {
	MAE, MSE  float64
	Predicted []float64
	Truth     []float64
	// MeanLatency and StdLatency summarize end-to-end per-frame time.
	MeanLatency, StdLatency time.Duration
}

// Accuracy returns the 1 − MAE/mean-truth counting accuracy.
func (e Evaluation) Accuracy() float64 {
	return metrics.CountingAccuracy(e.Predicted, e.Truth)
}

// Evaluate runs the pipeline over labeled frames one at a time (each frame
// still classifies its clusters on p.Parallelism workers).
func Evaluate(p *Pipeline, frames []dataset.Frame) (Evaluation, error) {
	return EvaluateParallel(p, frames, 1)
}

// EvaluateParallel runs the pipeline over labeled frames on the given
// number of worker goroutines; 0 or negative selects runtime.NumCPU().
// Predicted and Truth stay in input order regardless of which worker
// finishes first, and — because per-cluster classification is
// deterministic — MAE and MSE are identical at any worker count. With
// more than one frame worker, each frame is counted sequentially inside
// its worker so the two levels of parallelism don't oversubscribe the
// cores.
func EvaluateParallel(p *Pipeline, frames []dataset.Frame, workers int) (Evaluation, error) {
	if len(frames) == 0 {
		return Evaluation{}, errors.New("counting: no frames")
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	ev := Evaluation{
		Predicted: make([]float64, len(frames)),
		Truth:     make([]float64, len(frames)),
	}
	lat := make([]float64, len(frames))
	count := func(i int, clusterWorkers int) {
		r := p.CountWorkers(frames[i].Cloud, clusterWorkers)
		ev.Predicted[i] = float64(r.Count)
		ev.Truth[i] = float64(frames[i].Count)
		lat[i] = float64(r.Timing.Total())
	}
	if workers <= 1 {
		for i := range frames {
			count(i, p.Parallelism)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(frames) {
						return
					}
					count(i, 1)
				}
			}()
		}
		wg.Wait()
	}
	ev.MAE = metrics.MAE(ev.Predicted, ev.Truth)
	ev.MSE = metrics.MSE(ev.Predicted, ev.Truth)
	mean, std := metrics.MeanStd(lat)
	ev.MeanLatency = time.Duration(mean)
	ev.StdLatency = time.Duration(std)
	return ev, nil
}

// KMeansClusterer partitions frames with k-means, choosing k from the
// ingested point count (k ≈ points / PointsPerCluster). The paper rejects
// parametric clustering for this task — k is unknowable per frame and the
// convex clusters split or merge pedestrians — and this extension clusterer
// exists to demonstrate exactly that in the ablation benchmarks.
type KMeansClusterer struct {
	// PointsPerCluster estimates k; defaults to 150 (≈ one mid-range
	// pedestrian's returns).
	PointsPerCluster int
	// Seed drives the k-means++ initialization.
	Seed int64
}

var _ Clusterer = KMeansClusterer{}

// Name implements Clusterer.
func (KMeansClusterer) Name() string { return "kmeans" }

// Cluster implements Clusterer.
func (k KMeansClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	per := k.PointsPerCluster
	if per <= 0 {
		per = 150
	}
	kk := (len(cloud) + per - 1) / per
	if kk < 1 {
		kk = 1
	}
	rng := rand.New(rand.NewSource(k.Seed + 1))
	return cluster.KMeans(cloud, kk, 20, rng)
}

// GMMClusterer partitions frames with a Gaussian mixture, with the same
// heuristic component count as KMeansClusterer; an extension baseline.
type GMMClusterer struct {
	PointsPerCluster int
	Seed             int64
}

var _ Clusterer = GMMClusterer{}

// Name implements Clusterer.
func (GMMClusterer) Name() string { return "gmm" }

// Cluster implements Clusterer.
func (g GMMClusterer) Cluster(cloud geom.Cloud) cluster.Result {
	per := g.PointsPerCluster
	if per <= 0 {
		per = 150
	}
	kk := (len(cloud) + per - 1) / per
	if kk < 1 {
		kk = 1
	}
	rng := rand.New(rand.NewSource(g.Seed + 1))
	return cluster.GMM(cloud, kk, 15, rng)
}
