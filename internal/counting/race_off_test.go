//go:build !race

package counting

// raceEnabled is false in normal builds; see race_on_test.go.
const raceEnabled = false
