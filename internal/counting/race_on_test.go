//go:build race

package counting

// raceEnabled reports whether the race detector is instrumenting this
// build; its shadow-memory bookkeeping allocates, so the allocation
// gate skips itself under -race.
const raceEnabled = true
