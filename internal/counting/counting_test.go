package counting

import (
	"runtime"
	"sync"
	"testing"

	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/models"
	"hawccc/internal/obs"
)

// heightStub classifies clusters by vertical extent: a cheap, training-free
// stand-in for HAWC that is right often enough to exercise the pipeline.
type heightStub struct{}

var _ models.Classifier = heightStub{}

func (heightStub) Name() string { return "HeightStub" }

func (heightStub) PredictHuman(cloud geom.Cloud) bool {
	extent := cloud.MaxZ() - cloud.MinZ()
	return extent > 1.1 && extent < 2.3
}

func TestPipelineCountsSimpleFrames(t *testing.T) {
	g := dataset.NewGenerator(1)
	frames := g.CrowdFrames(6, 1, 3, 1)
	p := New(heightStub{})
	for i, f := range frames {
		r := p.Count(f.Cloud)
		if r.Clusters == 0 {
			t.Errorf("frame %d: no clusters found", i)
		}
		// The stub is imperfect; counts must at least be in a sane band.
		if r.Count < 0 || r.Count > f.Count+3 {
			t.Errorf("frame %d: count %d vs truth %d", i, r.Count, f.Count)
		}
		if r.Timing.Total() <= 0 {
			t.Errorf("frame %d: no timing recorded", i)
		}
	}
}

func TestPipelineNamesAndVariants(t *testing.T) {
	p := New(heightStub{})
	if p.Name() != "HeightStub-CC" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Clusterer.Name() != "adaptive" {
		t.Errorf("default clusterer = %q", p.Clusterer.Name())
	}
	fixed := FixedEpsClusterer{Eps: 0.5}
	if fixed.Name() != "fixed-eps(0.5)" {
		t.Errorf("fixed name = %q", fixed.Name())
	}
	h := HierarchicalClusterer{}
	if h.Name() != "hierarchical" {
		t.Errorf("hier name = %q", h.Name())
	}
}

func TestClustererVariantsRun(t *testing.T) {
	g := dataset.NewGenerator(2)
	frames := g.CrowdFrames(2, 2, 2, 1)
	clusterers := []Clusterer{
		NewAdaptiveClusterer(),
		FixedEpsClusterer{Eps: 0.3},
		FixedEpsClusterer{Eps: 0.3, MinPts: 4},
		HierarchicalClusterer{},
		HierarchicalClusterer{CutDistance: 0.3},
	}
	for _, c := range clusterers {
		p := New(heightStub{})
		p.Clusterer = c
		for _, f := range frames {
			r := p.Count(f.Cloud)
			if r.Count < 0 {
				t.Errorf("%s: negative count", c.Name())
			}
		}
	}
}

func TestHierarchicalOvercounts(t *testing.T) {
	// The Table IV pathology: sub-body-scale single-linkage splits people
	// into many clusters, drastically over-counting relative to adaptive.
	g := dataset.NewGenerator(3)
	frames := g.CrowdFrames(4, 3, 3, 0)

	adaptive := New(acceptAll{})
	hier := New(acceptAll{})
	hier.Clusterer = HierarchicalClusterer{CutDistance: 0.08}

	var adaptiveTotal, hierTotal int
	for _, f := range frames {
		adaptiveTotal += adaptive.Count(f.Cloud).Count
		hierTotal += hier.Count(f.Cloud).Count
	}
	if hierTotal <= adaptiveTotal {
		t.Errorf("hierarchical (%d) should over-count vs adaptive (%d)", hierTotal, adaptiveTotal)
	}
}

// acceptAll classifies everything as human, isolating clustering behavior.
type acceptAll struct{}

var _ models.Classifier = acceptAll{}

func (acceptAll) Name() string                 { return "AcceptAll" }
func (acceptAll) PredictHuman(geom.Cloud) bool { return true }

func TestEvaluate(t *testing.T) {
	g := dataset.NewGenerator(4)
	frames := g.CrowdFrames(5, 1, 3, 1)
	p := New(heightStub{})
	ev, err := Evaluate(p, frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Predicted) != 5 || len(ev.Truth) != 5 {
		t.Fatalf("evaluation sizes wrong: %d/%d", len(ev.Predicted), len(ev.Truth))
	}
	if ev.MSE < ev.MAE-1e-9 {
		t.Errorf("MSE %v < MAE %v", ev.MSE, ev.MAE)
	}
	if ev.MeanLatency <= 0 {
		t.Error("no latency recorded")
	}
	if _, err := Evaluate(p, nil); err == nil {
		t.Error("empty frame set accepted")
	}
}

func TestCountWithoutClassifierDegrades(t *testing.T) {
	// A misconfigured pole node must degrade to an empty result, not crash
	// its capture loop.
	p := &Pipeline{Clusterer: NewAdaptiveClusterer()}
	r := p.Count(geom.Cloud{geom.P(20, 0, -1)})
	if r.Count != 0 || r.Clusters != 0 || r.Noise != 0 {
		t.Errorf("nil classifier should yield a zero Result, got %+v", r)
	}
	if _, err := Evaluate(p, dataset.NewGenerator(9).CrowdFrames(1, 1, 1, 0)); err != nil {
		t.Errorf("Evaluate with nil classifier should degrade, got %v", err)
	}
}

func TestMinClusterPointsFiltersSmallClusters(t *testing.T) {
	// Two points near each other form a cluster below the minimum; the
	// pipeline must skip it.
	cloud := geom.Cloud{
		geom.P(20, 0, -1), geom.P(20.05, 0, -1), geom.P(20, 0.05, -1),
		geom.P(20.05, 0.05, -1), geom.P(20.02, 0.02, -1.05),
	}
	p := New(acceptAll{})
	p.MinClusterPoints = 100
	r := p.Count(cloud)
	if r.Clusters != 0 || r.Count != 0 {
		t.Errorf("small cluster not filtered: %+v", r)
	}
}

func TestParametricClusterersRun(t *testing.T) {
	g := dataset.NewGenerator(6)
	frames := g.CrowdFrames(2, 2, 3, 1)
	for _, c := range []Clusterer{
		KMeansClusterer{Seed: 1},
		KMeansClusterer{PointsPerCluster: 80, Seed: 1},
		GMMClusterer{Seed: 1},
	} {
		p := New(acceptAll{})
		p.Clusterer = c
		for _, f := range frames {
			r := p.Count(f.Cloud)
			if r.Count < 0 {
				t.Errorf("%s produced negative count", c.Name())
			}
		}
		if c.Name() == "" {
			t.Error("clusterer must have a name")
		}
	}
}

func TestCountDeterministicAcrossWorkerCounts(t *testing.T) {
	g := dataset.NewGenerator(7)
	frames := g.CrowdFrames(4, 2, 5, 2)
	p := New(heightStub{})
	for i, f := range frames {
		want := p.CountWorkers(f.Cloud, 1)
		for _, workers := range []int{2, 8, 0} { // 0 = NumCPU
			got := p.CountWorkers(f.Cloud, workers)
			if got.Count != want.Count || got.Clusters != want.Clusters || got.Noise != want.Noise {
				t.Errorf("frame %d at %d workers: %+v, sequential %+v", i, workers, got, want)
			}
		}
	}
}

func TestEvaluateParallelMatchesSequential(t *testing.T) {
	g := dataset.NewGenerator(8)
	frames := g.CrowdFrames(6, 1, 4, 1)
	p := New(heightStub{})
	seq, err := EvaluateParallel(p, frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		par, err := EvaluateParallel(p, frames, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.MAE != seq.MAE || par.MSE != seq.MSE {
			t.Errorf("%d workers: MAE/MSE %v/%v, sequential %v/%v",
				workers, par.MAE, par.MSE, seq.MAE, seq.MSE)
		}
		for i := range seq.Predicted {
			if par.Predicted[i] != seq.Predicted[i] {
				t.Fatalf("%d workers: Predicted[%d] = %v out of input order (want %v)",
					workers, i, par.Predicted[i], seq.Predicted[i])
			}
			if par.Truth[i] != seq.Truth[i] {
				t.Fatalf("%d workers: Truth[%d] out of input order", workers, i)
			}
		}
		if par.MeanLatency <= 0 {
			t.Error("parallel evaluation lost per-frame latency")
		}
	}
	if _, err := EvaluateParallel(p, nil, 4); err == nil {
		t.Error("empty frame set accepted")
	}
}

func TestNewPipelineDefaultsToAllCores(t *testing.T) {
	p := New(heightStub{})
	if p.Parallelism != runtime.NumCPU() {
		t.Errorf("New Parallelism = %d, want NumCPU = %d", p.Parallelism, runtime.NumCPU())
	}
	// The zero-value field stays a valid sequential configuration.
	var zero Pipeline
	if zero.Parallelism != 0 {
		t.Error("zero pipeline must default to sequential")
	}
}

// batchStub wraps heightStub with batch support, recording every batch
// it receives so tests can assert batching actually happens.
type batchStub struct {
	heightStub
	mu      sync.Mutex
	batches []int
}

var _ models.BatchClassifier = (*batchStub)(nil)

func (b *batchStub) PredictHumans(clouds []geom.Cloud) []bool {
	b.mu.Lock()
	b.batches = append(b.batches, len(clouds))
	b.mu.Unlock()
	out := make([]bool, len(clouds))
	for i, c := range clouds {
		out[i] = b.PredictHuman(c)
	}
	return out
}

// TestBatchedCountMatchesSequential pins the batched path against the
// per-cluster path at several worker counts and batch sizes; run under
// -race this also proves batch handout shares no unsynchronized state.
func TestBatchedCountMatchesSequential(t *testing.T) {
	g := dataset.NewGenerator(10)
	frames := g.CrowdFrames(4, 2, 6, 2)
	plain := New(heightStub{})
	for i, f := range frames {
		want := plain.CountWorkers(f.Cloud, 1)
		for _, bs := range []int{1, 3, 0} { // 0 = DefaultBatchSize
			for _, workers := range []int{1, 2, 8} {
				stub := &batchStub{}
				p := New(stub)
				p.BatchSize = bs
				got := p.CountWorkers(f.Cloud, workers)
				if got.Count != want.Count || got.Clusters != want.Clusters {
					t.Errorf("frame %d bs=%d workers=%d: %+v, per-cluster %+v", i, bs, workers, got, want)
				}
				limit := bs
				if limit == 0 {
					limit = DefaultBatchSize
				}
				total := 0
				for _, n := range stub.batches {
					if n > limit {
						t.Errorf("frame %d bs=%d workers=%d: batch of %d exceeds limit %d", i, bs, workers, n, limit)
					}
					total += n
				}
				if total != got.Clusters {
					t.Errorf("frame %d bs=%d workers=%d: batches covered %d clusters, want %d", i, bs, workers, total, got.Clusters)
				}
			}
		}
	}
}

func TestInstrumentedPipelineRecordsSpans(t *testing.T) {
	g := dataset.NewGenerator(11)
	frames := g.CrowdFrames(5, 1, 4, 1)

	plain := New(heightStub{})
	reg := obs.NewRegistry()
	p := New(heightStub{}).Instrument(reg)

	totalClusters := 0
	for i, f := range frames {
		want := plain.CountWorkers(f.Cloud, 1)
		got := p.CountWorkers(f.Cloud, 1)
		if got.Count != want.Count || got.Clusters != want.Clusters {
			t.Errorf("frame %d: instrumented %+v differs from plain %+v", i, got, want)
		}
		if got.Timing.ROI+got.Timing.Ground != got.Timing.Ingest {
			t.Errorf("frame %d: ROI %v + Ground %v != Ingest %v",
				i, got.Timing.ROI, got.Timing.Ground, got.Timing.Ingest)
		}
		totalClusters += got.Clusters
	}

	if got := reg.Counter("hawc_frames_total", "").Value(); got != uint64(len(frames)) {
		t.Errorf("frames counter = %d, want %d", got, len(frames))
	}
	humans := reg.Counter("hawc_clusters_total", "", obs.L("label", "human")).Value()
	objects := reg.Counter("hawc_clusters_total", "", obs.L("label", "object")).Value()
	if humans+objects != uint64(totalClusters) {
		t.Errorf("human %d + object %d clusters != evaluated %d", humans, objects, totalClusters)
	}
	for _, stage := range []string{"roi", "ground", "cluster", "classify"} {
		h := p.StageHistograms()[stage]
		if h == nil {
			t.Fatalf("stage %q histogram missing", stage)
		}
		if s := h.Snapshot(); s.Count != uint64(len(frames)) {
			t.Errorf("stage %q observed %d frames, want %d", stage, s.Count, len(frames))
		}
	}
	if s := p.StageHistograms()["total"].Snapshot(); s.Count != uint64(len(frames)) || s.Sum <= 0 {
		t.Errorf("total histogram count=%d sum=%g", s.Count, s.Sum)
	}
}

func TestUninstrumentedPipelineHasNilStageHistograms(t *testing.T) {
	p := New(heightStub{})
	for stage, h := range p.StageHistograms() {
		if h != nil {
			t.Errorf("stage %q non-nil on uninstrumented pipeline", stage)
		}
	}
	// Instrument with a nil registry stays uninstrumented and still counts.
	p.Instrument(nil)
	g := dataset.NewGenerator(12)
	f := g.CrowdFrames(1, 1, 2, 0)[0]
	if r := p.Count(f.Cloud); r.Clusters == 0 {
		t.Error("nil-registry pipeline stopped counting")
	}
}

func TestQueueWaitRecordedOnParallelClassify(t *testing.T) {
	g := dataset.NewGenerator(13)
	f := g.CrowdFrames(1, 5, 8, 3)[0] // a dense frame with many clusters
	reg := obs.NewRegistry()
	p := New(heightStub{}).Instrument(reg)
	p.BatchSize = 1 // one cluster per batch: forces multiple handouts
	r := p.CountWorkers(f.Cloud, 4)
	if r.Clusters < 2 {
		t.Skipf("frame produced %d clusters; need ≥2 for the parallel path", r.Clusters)
	}
	qw := p.StageHistograms()["queue_wait"].Snapshot()
	if qw.Count != uint64(r.Clusters) {
		t.Errorf("queue-wait observations = %d, want one per batch = %d", qw.Count, r.Clusters)
	}
	if r.Timing.QueueWait <= 0 {
		t.Error("frame span missing queue wait")
	}
	if r.Timing.QueueWait > r.Timing.Classify {
		t.Errorf("queue wait %v exceeds classify stage %v", r.Timing.QueueWait, r.Timing.Classify)
	}
	// Sequential classification records no queue wait.
	seq := p.CountWorkers(f.Cloud, 1)
	if seq.Timing.QueueWait != 0 {
		t.Errorf("sequential path recorded queue wait %v", seq.Timing.QueueWait)
	}
}
