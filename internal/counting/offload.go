// offload.go adds the edge/cloud offload decision point to the staged
// scheduler: a hysteresis controller watches the classify queue's
// depth and backpressure plus the enclosure temperature (telemetry,
// Fig. 10) and decides per frame whether the classify stage runs on the
// pole or ships the clusters to the backend over the quantized wire
// transport. Offloaded frames flow through the same reorder buffer as
// local ones, so ordered emission is preserved, and any remote failure
// falls back to local classification — no frame is ever dropped by
// offloading.
package counting

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hawccc/internal/obs"
	"hawccc/internal/wire"
)

// RemoteClassifier ships one frame's quantized cluster batch to a
// remote classify service and returns one label per cluster (true =
// human), positionally. The pipeline hands over the very batch it
// snapped its local classification lattice from (batch.Seq is the frame
// sequence; PoleID is zero — transports stamp their own), so remote
// classification sees bit-identical clouds to local. The batch is owned
// by the calling frame job and must not be retained after the call
// returns. Implementations must be safe for concurrent calls — the
// scheduler's classify workers offload frames in parallel.
type RemoteClassifier interface {
	ClassifyRemote(batch *wire.ClusterBatch) ([]bool, error)
}

// OffloadMode selects how the decision point behaves.
type OffloadMode int

const (
	// OffloadOff classifies every frame locally (the paper's fixed
	// edge split).
	OffloadOff OffloadMode = iota
	// OffloadForced ships every frame's clusters to the backend.
	OffloadForced
	// OffloadAdaptive applies the hysteresis controller per frame.
	OffloadAdaptive
)

// String returns the mode's flag spelling.
func (m OffloadMode) String() string {
	switch m {
	case OffloadForced:
		return "forced"
	case OffloadAdaptive:
		return "adaptive"
	default:
		return "off"
	}
}

// ParseOffloadMode parses a -offload flag value.
func ParseOffloadMode(s string) (OffloadMode, error) {
	switch s {
	case "off", "":
		return OffloadOff, nil
	case "forced":
		return OffloadForced, nil
	case "adaptive":
		return OffloadAdaptive, nil
	}
	return OffloadOff, fmt.Errorf("counting: unknown offload mode %q (want off, forced, or adaptive)", s)
}

// Default hysteresis thresholds. Enter temperature tracks the rated
// limit of the pole's accelerator (the backend alerts at the same
// bound); exit sits 5 °C below so a pole hovering at the limit does not
// flap.
const (
	DefaultEnterTempC     = 50.0
	DefaultExitTempC      = 45.0
	DefaultMinDwellFrames = 8
)

// OffloadConfig parameterizes the decision point.
type OffloadConfig struct {
	// Mode selects off / forced / adaptive.
	Mode OffloadMode
	// Remote performs the offloaded classification. Required for any
	// mode other than OffloadOff; a nil Remote disables offloading.
	// The transport scale is the pipeline's LatticeScale — the shipped
	// batch is the one the classify stage snapped to.
	Remote RemoteClassifier
	// EnterQueueDepth: offload when the classify queue holds at least
	// this many waiting frames. 0 selects DefaultQueueDepth (a full
	// queue at the default depth); negative disables the depth signal.
	EnterQueueDepth int
	// ExitQueueDepth: a drained queue must be at or below this depth to
	// return local (default 0 — fully drained).
	ExitQueueDepth int
	// EnterBackpressure: offload when at least this many classify-queue
	// handoffs blocked since the previous decision. 0 selects 1;
	// negative disables the backpressure signal.
	EnterBackpressure int
	// EnterTempC / ExitTempC bound the thermal hysteresis band
	// (defaults DefaultEnterTempC / DefaultExitTempC). A negative
	// EnterTempC disables the thermal signal.
	EnterTempC, ExitTempC float64
	// MinDwellFrames is how many consecutive calm frames the controller
	// must see before an offloading pole returns to local
	// classification. Entry is immediate — shedding load is urgent;
	// exiting is conservative so the queue it just drained does not
	// refill instantly. 0 selects DefaultMinDwellFrames.
	MinDwellFrames int
}

// withDefaults resolves zero fields.
func (c OffloadConfig) withDefaults() OffloadConfig {
	if c.EnterQueueDepth == 0 {
		c.EnterQueueDepth = DefaultQueueDepth
	}
	if c.EnterBackpressure == 0 {
		c.EnterBackpressure = 1
	}
	if c.EnterTempC == 0 {
		c.EnterTempC = DefaultEnterTempC
	}
	if c.ExitTempC == 0 {
		c.ExitTempC = DefaultExitTempC
	}
	if c.MinDwellFrames <= 0 {
		c.MinDwellFrames = DefaultMinDwellFrames
	}
	return c
}

// OffloadController is the per-pole hysteresis decision point. It is
// fed three saturation signals — classify-queue depth, classify-queue
// backpressure events, and compartment temperature — and latches into
// the offloading state as soon as any signal trips its enter threshold,
// returning to local only after every signal has stayed below its exit
// threshold for MinDwellFrames consecutive frames.
//
// All methods are safe for concurrent use and safe on a nil receiver
// (a nil controller always decides local), so the zero StreamConfig
// costs nothing.
type OffloadController struct {
	cfg OffloadConfig

	tempBits atomic.Uint64 // last reported compartment °C (float64 bits)

	mu         sync.Mutex
	offloading bool
	calm       int    // consecutive calm frames while offloading
	lastBP     uint64 // classify-queue blocked-handoff count at last decision

	switches            atomic.Uint64
	localN, remoteN     atomic.Uint64
	fallbackN           atomic.Uint64
	decLocal, decRemote *obs.Counter
	decFallback         *obs.Counter
	state               *obs.Gauge
	rtt                 *obs.Histogram
}

// NewOffloadController builds a controller; thresholds resolve their
// documented defaults.
func NewOffloadController(cfg OffloadConfig) *OffloadController {
	return &OffloadController{cfg: cfg.withDefaults()}
}

// Instrument registers the controller's series in reg: decision counts
// by outcome (hawc_offload_decisions_total{decision=local|remote|
// fallback}), the current state gauge (hawc_offload_state, 1 while
// offloading), and the remote round-trip latency histogram
// (hawc_offload_rtt_seconds). It returns c for chaining.
func (c *OffloadController) Instrument(reg *obs.Registry, extra ...obs.Label) *OffloadController {
	if c == nil || reg == nil {
		return c
	}
	dec := func(kind string) *obs.Counter {
		return reg.Counter("hawc_offload_decisions_total",
			"offload decisions by outcome (local, remote, fallback = remote failed and the frame was classified locally)",
			append([]obs.Label{obs.L("decision", kind)}, extra...)...)
	}
	c.decLocal = dec("local")
	c.decRemote = dec("remote")
	c.decFallback = dec("fallback")
	c.state = reg.Gauge("hawc_offload_state",
		"1 while the pole is shedding classification to the backend", extra...)
	c.rtt = reg.Histogram("hawc_offload_rtt_seconds",
		"round-trip latency of one offloaded cluster batch (ship, classify, labels back)",
		obs.LatencyBuckets(), extra...)
	return c
}

// SetTemperature feeds the controller the latest compartment reading
// (°C). The pole node calls this as telemetry is sampled.
func (c *OffloadController) SetTemperature(tempC float64) {
	if c == nil {
		return
	}
	c.tempBits.Store(math.Float64bits(tempC))
}

// Temperature returns the last reported compartment temperature.
func (c *OffloadController) Temperature() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.tempBits.Load())
}

// Offloading reports whether the controller is currently shedding.
func (c *OffloadController) Offloading() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offloading
}

// Switches returns how many local↔remote state transitions have
// occurred (forced mode never transitions).
func (c *OffloadController) Switches() uint64 {
	if c == nil {
		return 0
	}
	return c.switches.Load()
}

// Decisions returns the cumulative per-frame decision counts: frames
// classified locally, frames classified remotely, and remote attempts
// that fell back to local after a transport failure (fallback frames
// are counted in fallback only, not in local).
func (c *OffloadController) Decisions() (local, remote, fallback uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.localN.Load(), c.remoteN.Load(), c.fallbackN.Load()
}

// ShouldOffload is the per-frame decision, called by classify workers
// with the classify queue's current depth and cumulative blocked-send
// count. It records the decision in the controller's counters; a
// subsequent remote failure is reported via fellBack.
func (c *OffloadController) ShouldOffload(queueDepth int, blockedSends uint64) bool {
	if c == nil || c.cfg.Mode == OffloadOff || c.cfg.Remote == nil {
		return false
	}
	if c.cfg.Mode == OffloadForced {
		c.remoteN.Add(1)
		c.decRemote.Inc()
		c.state.Set(1)
		return true
	}
	offload := c.decide(queueDepth, blockedSends)
	if offload {
		c.remoteN.Add(1)
		c.decRemote.Inc()
	} else {
		c.localN.Add(1)
		c.decLocal.Inc()
	}
	return offload
}

// decide applies the hysteresis state machine (see DESIGN.md):
// LOCAL → OFFLOAD as soon as any signal trips its enter threshold;
// OFFLOAD → LOCAL after MinDwellFrames consecutive frames with every
// signal below its exit threshold.
func (c *OffloadController) decide(queueDepth int, blockedSends uint64) bool {
	temp := c.Temperature()
	c.mu.Lock()
	defer c.mu.Unlock()
	blocked := blockedSends - c.lastBP
	c.lastBP = blockedSends
	saturated := (c.cfg.EnterQueueDepth > 0 && queueDepth >= c.cfg.EnterQueueDepth) ||
		(c.cfg.EnterBackpressure > 0 && blocked >= uint64(c.cfg.EnterBackpressure)) ||
		(c.cfg.EnterTempC > 0 && temp >= c.cfg.EnterTempC)
	// A disabled enter signal (negative threshold) is excluded from the
	// calm test too: a signal that can never push the controller into
	// offloading must not be able to hold it there. Under live streaming
	// the classify queue routinely holds a frame or two, so without this
	// gating a depth-disabled controller would never return local.
	calm := (c.cfg.EnterQueueDepth <= 0 || queueDepth <= c.cfg.ExitQueueDepth) &&
		(c.cfg.EnterBackpressure <= 0 || blocked == 0) &&
		(c.cfg.EnterTempC <= 0 || temp <= c.cfg.ExitTempC)
	if c.offloading {
		if calm {
			c.calm++
			if c.calm >= c.cfg.MinDwellFrames {
				c.offloading = false
				c.calm = 0
				c.switches.Add(1)
				c.state.Set(0)
			}
		} else {
			c.calm = 0
		}
	} else if saturated {
		c.offloading = true
		c.calm = 0
		c.switches.Add(1)
		c.state.Set(1)
	}
	return c.offloading
}

// classifyRemote performs the offloaded call, timing the round trip.
func (c *OffloadController) classifyRemote(batch *wire.ClusterBatch) ([]bool, error) {
	t0 := time.Now()
	labels, err := c.cfg.Remote.ClassifyRemote(batch)
	c.rtt.ObserveDuration(time.Since(t0))
	return labels, err
}

// fellBack records a remote attempt that failed and was classified
// locally instead. The frame's earlier remote decision is re-attributed
// to fallback so Decisions' categories stay disjoint.
func (c *OffloadController) fellBack() {
	if c == nil {
		return
	}
	c.remoteN.Add(^uint64(0))
	c.fallbackN.Add(1)
	c.decFallback.Inc()
}
