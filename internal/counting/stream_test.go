package counting

import (
	"context"
	"testing"
	"time"

	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/obs"
)

// goldenFrames pins the deterministic outputs of the counting path for
// seed-20 traffic. These values were produced by the pre-scheduler
// sequential implementation; every execution mode (sequential, parallel
// classify, streaming) must keep reproducing them bit-for-bit.
var goldenFrames = []struct{ count, clusters, noise int }{
	{2, 4, 0}, {2, 6, 10}, {1, 6, 6}, {2, 5, 0},
	{4, 6, 3}, {3, 3, 7}, {5, 7, 1}, {1, 4, 5},
}

func goldenInput() []dataset.Frame {
	return dataset.NewGenerator(20).CrowdFrames(len(goldenFrames), 1, 6, 2)
}

func TestCountMatchesGolden(t *testing.T) {
	frames := goldenInput()
	p := New(heightStub{})
	for workers := 1; workers <= 4; workers *= 2 {
		for i, f := range frames {
			r := p.CountWorkers(f.Cloud, workers)
			g := goldenFrames[i]
			if r.Count != g.count || r.Clusters != g.clusters || r.Noise != g.noise {
				t.Errorf("workers=%d frame %d: got {%d %d %d}, golden {%d %d %d}",
					workers, i, r.Count, r.Clusters, r.Noise, g.count, g.clusters, g.noise)
			}
		}
	}
}

// streamFrames pushes the labeled frames through the scheduler and
// collects the results.
func streamFrames(ctx context.Context, p *Pipeline, frames []dataset.Frame, cfg StreamConfig) []StreamResult {
	in := make(chan geom.Cloud)
	go func() {
		defer close(in)
		for _, f := range frames {
			select {
			case in <- f.Cloud:
			case <-ctx.Done():
				return
			}
		}
	}()
	var out []StreamResult
	for r := range p.StreamWith(ctx, in, cfg) {
		out = append(out, r)
	}
	return out
}

func TestStreamMatchesGoldenInOrder(t *testing.T) {
	frames := goldenInput()
	configs := []StreamConfig{
		{},
		{IngestWorkers: 1, ClusterWorkers: 1, ClassifyWorkers: 1, QueueDepth: 1},
		{IngestWorkers: 2, ClusterWorkers: 4, ClassifyWorkers: 4, QueueDepth: 2},
	}
	for ci, cfg := range configs {
		p := New(heightStub{})
		results := streamFrames(context.Background(), p, frames, cfg)
		if len(results) != len(frames) {
			t.Fatalf("config %d: got %d results, want %d", ci, len(results), len(frames))
		}
		for i, r := range results {
			if r.Seq != uint64(i) {
				t.Errorf("config %d: result %d has seq %d — out of order", ci, i, r.Seq)
			}
			g := goldenFrames[i]
			if r.Count != g.count || r.Clusters != g.clusters || r.Noise != g.noise {
				t.Errorf("config %d frame %d: streamed {%d %d %d}, golden {%d %d %d}",
					ci, i, r.Count, r.Clusters, r.Noise, g.count, g.clusters, g.noise)
			}
			if r.E2E <= 0 {
				t.Errorf("config %d frame %d: no end-to-end latency", ci, i)
			}
			if r.Timing.Total() <= 0 {
				t.Errorf("config %d frame %d: no stage timing", ci, i)
			}
			if r.E2E < r.Timing.Total() {
				t.Errorf("config %d frame %d: E2E %v below compute time %v",
					ci, i, r.E2E, r.Timing.Total())
			}
		}
	}
}

func TestStreamCancelClosesOutput(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan geom.Cloud) // never closed: only cancelation can end the stream
	p := New(heightStub{})
	out := p.Stream(ctx, in)

	f := goldenInput()[0]
	in <- f.Cloud
	if r, ok := <-out; !ok || r.Clusters == 0 {
		t.Fatalf("pre-cancel result = %+v ok=%v", r, ok)
	}
	cancel()
	select {
	case _, ok := <-out:
		if ok {
			// A frame already in flight may still emit; the channel must
			// still close right after.
			if _, ok := <-out; ok {
				t.Error("output channel kept emitting after cancel")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("output channel not closed after cancel")
	}
}

func TestStreamWithoutClassifierDegrades(t *testing.T) {
	frames := goldenInput()[:3]
	p := &Pipeline{}
	results := streamFrames(context.Background(), p, frames, StreamConfig{})
	if len(results) != len(frames) {
		t.Fatalf("got %d results, want %d", len(results), len(frames))
	}
	for i, r := range results {
		if r.Seq != uint64(i) || r.Count != 0 || r.Clusters != 0 {
			t.Errorf("result %d = %+v, want zero Result in order", i, r)
		}
	}
}

func TestStreamRecordsQueueMetrics(t *testing.T) {
	frames := goldenInput()
	reg := obs.NewRegistry()
	p := New(heightStub{}).Instrument(reg)

	ctx := context.Background()
	cfg := StreamConfig{IngestWorkers: 1, ClusterWorkers: 1, ClassifyWorkers: 1, QueueDepth: 1}
	in := make(chan geom.Cloud)
	go func() {
		defer close(in)
		for _, f := range frames {
			in <- f.Cloud
		}
	}()
	out := p.StreamWith(ctx, in, cfg)
	// A slow consumer fills every queue behind the report stage, forcing
	// observable backpressure.
	first := true
	n := 0
	for range out {
		if first {
			time.Sleep(100 * time.Millisecond)
			first = false
		}
		n++
	}
	if n != len(frames) {
		t.Fatalf("drained %d results, want %d", n, len(frames))
	}

	if s := reg.Histogram("hawc_stream_e2e_seconds", "", obs.LatencyBuckets()).Snapshot(); s.Count != uint64(len(frames)) {
		t.Errorf("e2e histogram observed %d frames, want %d", s.Count, len(frames))
	}
	bp := uint64(0)
	for _, stage := range []string{"ingest", "cluster", "classify", "report"} {
		bp += reg.Counter("hawc_stream_backpressure_total", "", obs.L("stage", stage)).Value()
		if d := reg.Gauge("hawc_stream_queue_depth", "", obs.L("stage", stage)).Value(); d != 0 {
			t.Errorf("stage %q queue depth = %g after drain, want 0", stage, d)
		}
	}
	if bp == 0 {
		t.Error("no backpressure recorded despite a stalled consumer and depth-1 queues")
	}
	// Frames counted through the stream land in the same frame counter as
	// the one-shot path.
	if got := reg.Counter("hawc_frames_total", "").Value(); got != uint64(len(frames)) {
		t.Errorf("frames counter = %d, want %d", got, len(frames))
	}
}

// TestStreamSteadyStateAllocs is the allocation gate: once job and
// buffer pools are warm, a frame through the pooled path — job
// lifecycle, ingest buffers, the full adaptive geometry stage (voxel
// grid build, kNN elbow curve, structure-gap coarse pass, DBSCAN
// expansion, via the job's cluster.Scratch), cluster materialization,
// kept filtering, sequential classification, instrument no-ops —
// performs zero heap allocations.
func TestStreamSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector shadow memory allocates; gate runs in non-race CI job")
	}
	frames := goldenInput()
	p := New(heightStub{})

	// Warm the job pool and the scratch buffers across every frame shape
	// the window replays, then demand allocation-free steady state.
	want := make([]int, len(frames))
	for i := range frames {
		want[i] = p.CountWorkers(frames[i].Cloud, 1).Count
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := range frames {
			if r := p.CountWorkers(frames[i].Cloud, 1); r.Count != want[i] {
				t.Errorf("frame %d count drifted: %d vs %d", i, r.Count, want[i])
			}
		}
	})
	if allocs != 0 {
		t.Errorf("pooled counting path allocates %.1f times per window, want 0", allocs)
	}
}

// TestTimingTotalMatchesObservedSpans pins the satellite invariant that
// Result.Timing and the observability layer tell the same story: for a
// single counted frame, Timing.Total() equals the sum of the per-stage
// histogram observations (roi + ground + cluster + classify), and the
// total histogram records exactly that value.
func TestTimingTotalMatchesObservedSpans(t *testing.T) {
	f := goldenInput()[0]
	reg := obs.NewRegistry()
	p := New(heightStub{}).Instrument(reg)
	r := p.CountWorkers(f.Cloud, 1)

	stageSum := 0.0
	for _, stage := range []string{"roi", "ground", "cluster", "classify"} {
		s := p.StageHistograms()[stage].Snapshot()
		if s.Count != 1 {
			t.Fatalf("stage %q observed %d spans, want 1", stage, s.Count)
		}
		stageSum += s.Sum
	}
	total := r.Timing.Total().Seconds()
	const eps = 1e-9 // float accumulation slack; spans are ≥ microseconds
	if diff := stageSum - total; diff > eps || diff < -eps {
		t.Errorf("observed stage spans sum to %.9fs, Timing.Total() = %.9fs", stageSum, total)
	}
	if s := p.StageHistograms()["total"].Snapshot(); s.Count != 1 || s.Sum-total > eps || total-s.Sum > eps {
		t.Errorf("total histogram sum %.9fs (count %d), want %.9fs", s.Sum, s.Count, total)
	}
}

func TestStreamConfigDefaults(t *testing.T) {
	got := StreamConfig{}.withDefaults()
	if got != DefaultStreamConfig() {
		t.Errorf("zero config resolved to %+v, want %+v", got, DefaultStreamConfig())
	}
	partial := StreamConfig{ClassifyWorkers: 7}.withDefaults()
	if partial.ClassifyWorkers != 7 {
		t.Errorf("explicit worker count overridden: %+v", partial)
	}
	if partial.QueueDepth != DefaultQueueDepth || partial.IngestWorkers != 1 {
		t.Errorf("unset fields not defaulted: %+v", partial)
	}
}
