// stream.go implements the staged streaming scheduler: the continuous
// counterpart of Count for a pole that ingests LiDAR sweeps nonstop.
// Frames flow through ingest → cluster → classify → report as pooled
// jobs over bounded channels, so memory is bounded by the queue depths,
// a slow stage backpressures the stages above it instead of growing an
// unbounded backlog, and every stage overlaps with the others. Results
// are emitted in input order; per-frame outputs are bit-identical to
// Count's because both paths run the same stage executors.
package counting

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hawccc/internal/geom"
	"hawccc/internal/obs"
)

// DefaultQueueDepth is the bounded capacity of each inter-stage queue
// when StreamConfig.QueueDepth is unset: deep enough to absorb per-frame
// jitter, shallow enough that total in-flight memory stays a handful of
// frames per stage.
const DefaultQueueDepth = 4

// StreamConfig sizes the staged scheduler. Zero values select the
// corresponding DefaultStreamConfig field, so the zero StreamConfig is
// the deployment configuration.
type StreamConfig struct {
	// IngestWorkers / ClusterWorkers / ClassifyWorkers are the per-stage
	// worker pools. Ingest is two cheap filters, so one worker usually
	// saturates it; clustering and classification carry the compute and
	// split the cores between them by default. Streaming parallelism is
	// across frames — each classify worker labels one frame's clusters
	// sequentially — so results stay deterministic at any setting.
	IngestWorkers, ClusterWorkers, ClassifyWorkers int
	// QueueDepth bounds each inter-stage channel. Total in-flight frames
	// are at most 4*QueueDepth + workers + 1, which is the scheduler's
	// whole steady-state memory footprint beyond the pooled buffers.
	QueueDepth int
	// Offload, when non-nil, adds the edge/cloud offload decision point
	// after the cluster stage: each classify worker consults the
	// controller per frame and either classifies locally or ships the
	// kept clusters through the controller's RemoteClassifier. Offloaded
	// results re-enter the reorder buffer like local ones, and a remote
	// failure falls back to local classification, so ordered emission
	// and per-frame delivery are unchanged. Nil keeps every frame local.
	Offload *OffloadController
}

// DefaultStreamConfig splits the cores between the two compute stages
// and bounds the queues at DefaultQueueDepth.
func DefaultStreamConfig() StreamConfig {
	half := runtime.NumCPU() / 2
	if half < 1 {
		half = 1
	}
	return StreamConfig{
		IngestWorkers:   1,
		ClusterWorkers:  half,
		ClassifyWorkers: half,
		QueueDepth:      DefaultQueueDepth,
	}
}

// withDefaults resolves zero fields to the deployment defaults.
func (c StreamConfig) withDefaults() StreamConfig {
	d := DefaultStreamConfig()
	if c.IngestWorkers <= 0 {
		c.IngestWorkers = d.IngestWorkers
	}
	if c.ClusterWorkers <= 0 {
		c.ClusterWorkers = d.ClusterWorkers
	}
	if c.ClassifyWorkers <= 0 {
		c.ClassifyWorkers = d.ClassifyWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	return c
}

// StreamResult is one counted frame from the streaming scheduler.
type StreamResult struct {
	// Seq is the frame's 0-based position on the input channel; results
	// are delivered in Seq order.
	Seq uint64
	// E2E is the end-to-end latency of this frame through the scheduler:
	// from dequeuing the input to emitting the result, including all
	// inter-stage queueing (Timing covers only the compute segments).
	E2E time.Duration
	Result
}

// Stream runs the staged scheduler with the deployment configuration
// over frames until the input channel closes (results for every accepted
// frame are flushed, then the returned channel closes) or ctx is
// canceled (in-flight frames are dropped and the channel closes).
// Results arrive in input order. The scheduler owns all intermediate
// buffering; the caller only ever holds one frame and one result.
//
// A pipeline without a classifier degrades exactly as Count does: every
// frame yields a zero Result.
func (p *Pipeline) Stream(ctx context.Context, frames <-chan geom.Cloud) <-chan StreamResult {
	return p.StreamWith(ctx, frames, StreamConfig{})
}

// StreamWith is Stream with an explicit scheduler configuration.
func (p *Pipeline) StreamWith(ctx context.Context, frames <-chan geom.Cloud, cfg StreamConfig) <-chan StreamResult {
	cfg = cfg.withDefaults()
	out := make(chan StreamResult, cfg.QueueDepth)
	if p.Classifier == nil {
		go degradeStream(ctx, frames, out)
		return out
	}
	s := &scheduler{
		p:   p,
		ctx: ctx,
		cfg: cfg,
		in:  frames,
		out: out,
		e2e: p.streamHistogram("hawc_stream_e2e_seconds",
			"end-to-end frame latency through the streaming scheduler (compute + queueing)"),
	}
	s.qIngest = p.streamQueue(cfg.QueueDepth, "ingest")
	s.qCluster = p.streamQueue(cfg.QueueDepth, "cluster")
	s.qClassify = p.streamQueue(cfg.QueueDepth, "classify")
	s.qReport = p.streamQueue(cfg.QueueDepth, "report")
	go s.run()
	return out
}

// degradeStream is the nil-classifier path: one zero Result per frame.
func degradeStream(ctx context.Context, frames <-chan geom.Cloud, out chan<- StreamResult) {
	defer close(out)
	var seq uint64
	for {
		select {
		case <-ctx.Done():
			return
		case _, ok := <-frames:
			if !ok {
				return
			}
			select {
			case out <- StreamResult{Seq: seq}:
				seq++
			case <-ctx.Done():
				return
			}
		}
	}
}

// streamQueue builds one bounded inter-stage queue, registering its
// depth gauge and backpressure counter when the pipeline is instrumented
// (series hawc_stream_queue_depth{stage=...} and
// hawc_stream_backpressure_total{stage=...}, plus the pipeline's extra
// labels).
func (p *Pipeline) streamQueue(depth int, stage string) *boundedQ {
	q := &boundedQ{ch: make(chan *streamJob, depth)}
	if p.reg != nil {
		labels := append([]obs.Label{obs.L("stage", stage)}, p.extra...)
		q.depth = p.reg.Gauge("hawc_stream_queue_depth",
			"frames waiting in one staged-scheduler queue", labels...)
		q.bp = p.reg.Counter("hawc_stream_backpressure_total",
			"stage handoffs that blocked on a full downstream queue", labels...)
	}
	return q
}

// streamHistogram registers a scheduler histogram under the pipeline's
// labels, or returns nil (no-op) when uninstrumented.
func (p *Pipeline) streamHistogram(name, help string) *obs.Histogram {
	if p.reg == nil {
		return nil
	}
	return p.reg.Histogram(name, help, obs.LatencyBuckets(), p.extra...)
}

// boundedQ is a bounded inter-stage channel with queue-depth and
// backpressure accounting. The gauge tracks occupancy approximately
// (incremented after a successful send, decremented after receive),
// which is all a scrape needs.
type boundedQ struct {
	ch    chan *streamJob
	depth *obs.Gauge
	bp    *obs.Counter
	// blocked mirrors bp unconditionally (bp is nil-backed on an
	// uninstrumented pipeline) so the offload controller always has a
	// live backpressure signal to read.
	blocked atomic.Uint64
}

// send enqueues j, blocking under backpressure; it returns false when
// ctx was canceled before space freed up. A send that cannot complete
// immediately counts one backpressure event for the queue.
func (q *boundedQ) send(ctx context.Context, j *streamJob) bool {
	select {
	case q.ch <- j:
		q.depth.Inc()
		return true
	default:
	}
	q.blocked.Add(1)
	q.bp.Inc()
	select {
	case q.ch <- j:
		q.depth.Inc()
		return true
	case <-ctx.Done():
		return false
	}
}

// recv dequeues the next job; ok is false once the queue is closed and
// drained.
func (q *boundedQ) recv() (*streamJob, bool) {
	j, ok := <-q.ch
	if ok {
		q.depth.Dec()
	}
	return j, ok
}

// scheduler wires the stage pools together for one Stream call.
type scheduler struct {
	p   *Pipeline
	ctx context.Context
	cfg StreamConfig
	in  <-chan geom.Cloud
	out chan StreamResult

	qIngest, qCluster, qClassify, qReport *boundedQ

	e2e *obs.Histogram
}

// run starts the stage pools and reports results on the caller's
// goroutine budget: feeder, three stage pools, and the reorderer. Each
// pool closes its downstream queue once its upstream is drained, so a
// closed input cascades into a flushed, closed output.
func (s *scheduler) run() {
	go s.feed()
	go s.pool(s.cfg.IngestWorkers, s.qIngest, s.qCluster, s.p.stageIngest)
	go s.pool(s.cfg.ClusterWorkers, s.qCluster, s.qClassify, func(j *streamJob) {
		s.p.stageCluster(j)
		// The queue-wait clock starts when the frame is ready for
		// classification; blocking on a full classify queue is exactly
		// the wait the histogram is meant to surface.
		j.classifyReady = time.Now()
	})
	go s.pool(s.cfg.ClassifyWorkers, s.qClassify, s.qReport, func(j *streamJob) {
		wait := time.Since(j.classifyReady)
		s.p.m.queueWait.ObserveDuration(wait)
		// The offload decision point: the controller reads the classify
		// queue's live depth and cumulative blocked handoffs; a shed
		// frame that fails remotely is classified locally instead, so
		// either way the job proceeds to the reorder buffer.
		off := s.cfg.Offload
		if off.ShouldOffload(len(s.qClassify.ch), s.qClassify.blocked.Load()) {
			if !s.p.stageClassifyRemote(j, off) {
				off.fellBack()
				s.p.stageClassify(j, 1)
			}
		} else {
			s.p.stageClassify(j, 1)
		}
		j.res.Timing.QueueWait = wait
	})
	s.report()
}

// feed turns the input channel into sequenced pooled jobs.
func (s *scheduler) feed() {
	defer close(s.qIngest.ch)
	var seq uint64
	for {
		select {
		case <-s.ctx.Done():
			return
		case frame, ok := <-s.in:
			if !ok {
				return
			}
			j := acquireJob()
			j.seq = seq
			j.frame = frame
			j.enqueued = time.Now()
			seq++
			if !s.qIngest.send(s.ctx, j) {
				releaseJob(j)
				return
			}
		}
	}
}

// pool runs one stage: workers drain src, apply fn, and hand the job
// downstream; the last worker out closes dst so the next stage can
// finish. A send refused by cancelation releases the job — the frame is
// dropped, which is the documented cancel semantics.
func (s *scheduler) pool(workers int, src, dst *boundedQ, fn func(*streamJob)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				j, ok := src.recv()
				if !ok {
					return
				}
				fn(j)
				if !dst.send(s.ctx, j) {
					releaseJob(j)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(dst.ch)
}

// report reorders completed jobs into input order and emits them. The
// reorder buffer is bounded by the frames in flight (queue depths plus
// workers), so it cannot grow without bound. On cancelation remaining
// results are dropped and their jobs released.
func (s *scheduler) report() {
	defer close(s.out)
	pending := make(map[uint64]*streamJob)
	next := uint64(0)
	emitting := true
	for {
		j, ok := s.qReport.recv()
		if !ok {
			break
		}
		pending[j.seq] = j
		for {
			jj, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if emitting {
				emitting = s.emit(jj)
			} else {
				releaseJob(jj)
			}
		}
	}
	for _, j := range pending {
		releaseJob(j)
	}
}

// emit observes the frame's instruments, releases the job, and delivers
// the result; it returns false once the context is canceled.
func (s *scheduler) emit(j *streamJob) bool {
	r := StreamResult{Seq: j.seq, E2E: time.Since(j.enqueued), Result: j.res}
	releaseJob(j)
	s.p.observeFrame(r.Result)
	s.e2e.ObserveDuration(r.E2E)
	select {
	case s.out <- r:
		return true
	case <-s.ctx.Done():
		return false
	}
}
