// Package upsample standardizes variable-sized cluster point clouds to the
// fixed input size CNNs require (Section V). The paper's noise-controlled
// up-sampling draws padding points from a pool of "Object" data (scenes
// without humans) instead of synthetic Gaussian noise; both methods are
// implemented here, Gaussian as the Table III ablation baseline.
//
// Pool padding draws whole object *patterns* at their captured positions:
// campus objects line the walkway edges, so — exactly as the paper's
// Figure 6 histograms show — the noise occupies coordinate and height
// distributions markedly different from human returns, which is what
// keeps it from confusing the classifier.
package upsample

import (
	"math"
	"math/rand"

	"hawccc/internal/geom"
)

// TargetSize returns the paper's N′max: the smallest perfect square that
// is at least nMax, so the padded cloud reshapes into a √N′max-square
// image.
func TargetSize(nMax int) int {
	if nMax <= 0 {
		return 0
	}
	d := int(math.Ceil(math.Sqrt(float64(nMax))))
	return d * d
}

// Side returns the image side length D = √target for a target produced by
// TargetSize. It panics if target is not a perfect square.
func Side(target int) int {
	d := int(math.Sqrt(float64(target)))
	if d*d != target {
		panic("upsample: target is not a perfect square")
	}
	return d
}

// Pool holds the "Object" captures used as controlled padding noise
// (Section V, Figure 5).
type Pool struct {
	clouds []geom.Cloud
	total  int
}

// NewPool retains the given object clouds (empty clouds are dropped).
func NewPool(objectClouds []geom.Cloud) *Pool {
	p := &Pool{}
	for _, c := range objectClouds {
		if len(c) > 0 {
			p.clouds = append(p.clouds, c.Clone())
			p.total += len(c)
		}
	}
	return p
}

// Len returns the total number of pooled points.
func (p *Pool) Len() int { return p.total }

// NumClouds returns the number of pooled object captures.
func (p *Pool) NumClouds() int { return len(p.clouds) }

// Draw returns n noise points assembled from randomly chosen object
// captures at their original positions (all "Object" data is pooled
// together and the deficit is sampled from the pool, Section V). It panics
// on an empty pool.
func (p *Pool) Draw(rng *rand.Rand, n int) geom.Cloud {
	if len(p.clouds) == 0 {
		panic("upsample: drawing from empty object pool")
	}
	out := make(geom.Cloud, 0, n)
	for len(out) < n {
		src := p.clouds[rng.Intn(len(p.clouds))]
		// Take the pattern's points in random order until n is reached.
		perm := rng.Perm(len(src))
		for _, i := range perm {
			if len(out) == n {
				break
			}
			out = append(out, src[i])
		}
	}
	return out
}

// FromPool pads cloud to target points with object-data noise (the
// paper's noise-controlled up-sampling). Clouds already at or above the
// target are randomly down-sampled to exactly target so the output size
// is always fixed — the deployment equivalent of a cluster larger than
// anything seen in training.
func FromPool(rng *rand.Rand, cloud geom.Cloud, pool *Pool, target int) geom.Cloud {
	return pad(rng, cloud, target, func(n int) geom.Cloud {
		return pool.Draw(rng, n)
	})
}

// GaussianCenter is the fixed mean of Gaussian up-sampling noise: the
// middle of the ROI at mid-body height (the paper samples noise with a
// fixed mean μ = 0 in its normalized frame; this is the equivalent point
// in the sensor frame).
var GaussianCenter = geom.P(23.5, 0, -2)

// Gaussian pads cloud to target points with fixed-mean Gaussian noise of
// the given standard deviation — the Table III baseline (σ ∈ {3, 5, 7}).
func Gaussian(rng *rand.Rand, cloud geom.Cloud, sigma float64, target int) geom.Cloud {
	return pad(rng, cloud, target, func(n int) geom.Cloud {
		out := make(geom.Cloud, n)
		for i := range out {
			out[i] = geom.P(
				GaussianCenter.X+rng.NormFloat64()*sigma,
				GaussianCenter.Y+rng.NormFloat64()*sigma,
				GaussianCenter.Z+rng.NormFloat64()*sigma,
			)
		}
		return out
	})
}

func pad(rng *rand.Rand, cloud geom.Cloud, target int, draw func(int) geom.Cloud) geom.Cloud {
	if target <= 0 {
		return geom.Cloud{}
	}
	if len(cloud) >= target {
		// Random subsample without replacement.
		idx := rng.Perm(len(cloud))[:target]
		out := make(geom.Cloud, target)
		for i, j := range idx {
			out[i] = cloud[j]
		}
		return out
	}
	// One exact-capacity allocation instead of Clone plus append growth.
	out := make(geom.Cloud, 0, target)
	out = append(out, cloud...)
	return append(out, draw(target-len(cloud))...)
}

// Clouds exposes the pooled object captures (for serialization). The
// returned slices share storage with the pool; callers must not mutate.
func (p *Pool) Clouds() []geom.Cloud { return p.clouds }

// ContentSeed derives a deterministic RNG seed from a cloud's points, so
// up-sampling noise depends only on the cluster content: the same cluster
// pads identically whether it is classified first or last, sequentially or
// on any of N workers. The per-point FNV-1a hashes are combined with a
// commutative sum, making the seed invariant to point order, and the sum
// is finalized with a splitmix64-style avalanche so near-identical clouds
// still land on well-separated seeds.
func ContentSeed(cloud geom.Cloud) int64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	var sum uint64
	for _, p := range cloud {
		h := offset64
		for _, f := range [3]float64{p.X, p.Y, p.Z} {
			b := math.Float64bits(f)
			for i := 0; i < 64; i += 8 {
				h ^= (b >> i) & 0xff
				h *= prime64
			}
		}
		sum += h
	}
	sum ^= sum >> 30
	sum *= 0xbf58476d1ce4e5b9
	sum ^= sum >> 27
	sum *= 0x94d049bb133111eb
	sum ^= sum >> 31
	return int64(sum)
}
