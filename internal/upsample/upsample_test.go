package upsample

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hawccc/internal/geom"
)

func TestTargetSize(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 0}, {-3, 0}, {1, 1}, {2, 4}, {4, 4}, {5, 9}, {83, 100}, {100, 100}, {324, 324}, {325, 361},
	}
	for _, tt := range tests {
		if got := TargetSize(tt.in); got != tt.want {
			t.Errorf("TargetSize(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestSide(t *testing.T) {
	if got := Side(324); got != 18 {
		t.Errorf("Side(324) = %d, want 18", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Side should panic on non-square")
		}
	}()
	Side(10)
}

func TestTargetSizeSideProperty(t *testing.T) {
	f := func(n int) bool {
		if n < 1 {
			n = -n + 1
		}
		n = n%5000 + 1
		target := TargetSize(n)
		d := Side(target)
		return target >= n && d*d == target && TargetSize(target) == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// makePool builds a pool with two object captures: a low flat pattern at
// x=20 and a single point at x=25.
func makePool() *Pool {
	return NewPool([]geom.Cloud{
		{geom.P(20, 1, -2), geom.P(20, 1.1, -2.1), geom.P(20.1, 1, -2.2)},
		{geom.P(25, -1, -1.8)},
	})
}

func TestPoolCounts(t *testing.T) {
	p := makePool()
	if p.Len() != 4 {
		t.Errorf("Len = %d, want 4", p.Len())
	}
	if p.NumClouds() != 2 {
		t.Errorf("NumClouds = %d, want 2", p.NumClouds())
	}
	// Empty clouds dropped.
	p2 := NewPool([]geom.Cloud{nil, {}})
	if p2.NumClouds() != 0 {
		t.Error("empty clouds should be dropped")
	}
}

func TestDrawFromPool(t *testing.T) {
	p := makePool()
	rng := rand.New(rand.NewSource(1))
	pts := p.Draw(rng, 50)
	if len(pts) != 50 {
		t.Fatalf("drew %d points", len(pts))
	}
	// Every drawn point must be one of the pooled points at its original
	// position.
	valid := map[geom.Point3]bool{
		geom.P(20, 1, -2): true, geom.P(20, 1.1, -2.1): true,
		geom.P(20.1, 1, -2.2): true, geom.P(25, -1, -1.8): true,
	}
	for _, pt := range pts {
		if !valid[pt] {
			t.Fatalf("drawn point %v not from pool", pt)
		}
	}
}

func TestDrawEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(nil).Draw(rand.New(rand.NewSource(1)), 1)
}

func TestFromPoolPadsToTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := makePool()
	cloud := geom.Cloud{geom.P(15, 0, -1), geom.P(15.1, 0, -1.2)}
	up := FromPool(rng, cloud, pool, 9)
	if len(up) != 9 {
		t.Fatalf("padded size = %d, want 9", len(up))
	}
	// Original points must be preserved in order at the front.
	if up[0] != cloud[0] || up[1] != cloud[1] {
		t.Error("original points not preserved")
	}
}

func TestFromPoolDownsamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := makePool()
	cloud := make(geom.Cloud, 30)
	for i := range cloud {
		cloud[i] = geom.P(float64(i), 0, -1)
	}
	down := FromPool(rng, cloud, pool, 16)
	if len(down) != 16 {
		t.Fatalf("downsampled size = %d, want 16", len(down))
	}
	// No duplicates: sampling without replacement.
	seen := map[geom.Point3]bool{}
	for _, p := range down {
		if seen[p] {
			t.Fatal("downsample introduced duplicates")
		}
		seen[p] = true
	}
}

func TestFromPoolDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := makePool()
	cloud := geom.Cloud{geom.P(1, 2, 3)}
	orig := cloud.Clone()
	_ = FromPool(rng, cloud, pool, 4)
	if cloud[0] != orig[0] || len(cloud) != 1 {
		t.Error("input cloud mutated")
	}
}

func TestPoolIsolatedFromSource(t *testing.T) {
	src := []geom.Cloud{{geom.P(1, 1, 1)}}
	p := NewPool(src)
	src[0][0] = geom.P(99, 99, 99)
	pts := p.Draw(rand.New(rand.NewSource(1)), 1)
	if pts[0].Z != 1 {
		t.Error("pool must copy source clouds")
	}
}

func TestGaussianPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cloud := geom.Cloud{geom.P(20, 0, -1), geom.P(20.2, 0.1, -1.3)}
	up := Gaussian(rng, cloud, 3, 16)
	if len(up) != 16 {
		t.Fatalf("size = %d", len(up))
	}
	// Noise points center on the fixed GaussianCenter: their mean should
	// land within a few σ/√n of it.
	var mean geom.Point3
	for _, p := range up[2:] {
		mean = mean.Add(p)
	}
	mean = mean.Scale(1.0 / 14)
	if mean.Dist(GaussianCenter) > 4 {
		t.Errorf("Gaussian noise mean %v far from %v", mean, GaussianCenter)
	}
}

func TestZeroTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if got := FromPool(rng, geom.Cloud{geom.P(1, 1, 1)}, makePool(), 0); len(got) != 0 {
		t.Error("target 0 should yield empty cloud")
	}
	if got := Gaussian(rng, geom.Cloud{geom.P(1, 1, 1)}, 1, -1); len(got) != 0 {
		t.Error("negative target should yield empty cloud")
	}
}

func TestContentSeedDeterministicAndOrderInvariant(t *testing.T) {
	cloud := geom.Cloud{
		geom.P(20.1, 0.4, -1.2), geom.P(20.3, 0.5, -0.9),
		geom.P(19.8, 0.2, -2.1), geom.P(20.0, 0.1, -1.5),
	}
	seed := ContentSeed(cloud)
	if seed != ContentSeed(cloud) {
		t.Fatal("ContentSeed not deterministic")
	}
	shuffled := cloud.Clone()
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if ContentSeed(shuffled) != seed {
		t.Error("ContentSeed must be invariant to point order")
	}
}

func TestContentSeedSeparatesNearbyClouds(t *testing.T) {
	a := geom.Cloud{geom.P(20, 0, -1), geom.P(21, 1, -1)}
	b := geom.Cloud{geom.P(20, 0, -1), geom.P(21, 1, -1.0000001)}
	if ContentSeed(a) == ContentSeed(b) {
		t.Error("distinct clouds should map to distinct seeds")
	}
	// Duplicated points must not cancel out (sum, not xor, combination).
	dup := geom.Cloud{geom.P(20, 0, -1), geom.P(20, 0, -1)}
	single := geom.Cloud{}
	if ContentSeed(dup) == ContentSeed(single) {
		t.Error("duplicate points cancelled out of the seed")
	}
}
