package projection

import (
	"math"
	"math/rand"
	"testing"

	"hawccc/internal/geom"
	"hawccc/internal/kdtree"
)

// refHeightVariation is the pre-grid σz implementation: a fresh k-d
// tree per cluster. Kept as the reference the pooled-grid path must
// reproduce bit-for-bit.
func refHeightVariation(cloud geom.Cloud, k int) []float64 {
	tree := kdtree.New(cloud)
	out := make([]float64, len(cloud))
	for i, p := range cloud {
		nn := tree.KNN(p, k)
		var mean float64
		for _, n := range nn {
			mean += cloud[n.Index].Z
		}
		mean /= float64(len(nn))
		var v float64
		for _, n := range nn {
			d := cloud[n.Index].Z - mean
			v += d * d
		}
		out[i] = math.Sqrt(v / float64(len(nn)))
	}
	return out
}

// viewportCloud approximates one classifier input: a person-shaped blob
// in the ±ViewportWindow frame, with duplicated points mixed in so
// distance ties exercise the cross-engine ordering contract.
func viewportCloud(rng *rand.Rand, n int) geom.Cloud {
	cloud := make(geom.Cloud, 0, n)
	for len(cloud) < n {
		if len(cloud) > 0 && rng.Intn(6) == 0 {
			cloud = append(cloud, cloud[rng.Intn(len(cloud))])
			continue
		}
		cloud = append(cloud, geom.Point3{
			X: rng.NormFloat64() * 0.25,
			Y: rng.NormFloat64() * 0.25,
			Z: 3 + rng.Float64()*1.7,
		})
	}
	return cloud
}

// TestHeightVariationMatchesKDTree pins that moving σz from a
// per-cluster k-d tree to the pooled voxel grid changed nothing: the
// neighbor sets, their iteration order, and therefore every float
// operation are identical.
func TestHeightVariationMatchesKDTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{16, 256, 1024} {
		cloud := viewportCloud(rng, n)
		want := refHeightVariation(cloud, KNeighbors)
		got := heightVariation(cloud, KNeighbors)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d point %d: grid σz %v != kdtree σz %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestDADensityMatchesKDTree pins the same for DA's density channel.
func TestDADensityMatchesKDTree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cloud := viewportCloud(rng, 256)
	c := canonical(cloud)
	tree := kdtree.New(c)
	im := DA{}.Project(cloud)
	for i, p := range c {
		want := float32(float64(tree.RadiusCount(p, DensityRadius)-1) / float64(KNeighbors))
		if got := im.Data[i*3+2]; got != want {
			t.Fatalf("point %d: grid density %v != kdtree density %v", i, got, want)
		}
	}
}
