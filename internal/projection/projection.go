// Package projection converts fixed-size 3D point clouds into the 2D
// multi-channel images a 2D CNN consumes. The paper's height-aware
// projection (HAP, Section V) generates top, front and side views and
// augments the top view with each point's neighborhood height variation,
// yielding a D×D×7 stack. The alternative projections of Figure 9 —
// bird-eye-view, range-view, density-aware, and plain three-view — are
// implemented alongside for the ablation.
package projection

import (
	"math"
	"sort"
	"sync"

	"hawccc/internal/geom"
	"hawccc/internal/spatial"
)

// indexPool recycles the spatial indexes behind the neighborhood
// channels (HAP's σz, DA's density). Projection runs per candidate
// cluster on the classify stage's worker pool, so the pool hands each
// worker a warm index whose buffers are already grown — the voxel grid
// replaces the per-cluster k-d tree build that used to dominate the
// channel's cost. Results are identical to the tree's: both engines
// honor the neighbor-ordering contract of internal/kdtree, so the
// neighbor sets and their iteration order are bit-for-bit the same.
var indexPool = sync.Pool{New: func() any { return new(spatial.FrameIndex) }}

// Image is a D×D multi-channel raster in channel-last layout:
// Data[(row*D+col)*C + ch].
type Image struct {
	D, C int
	Data []float32
}

// At returns the value at (row, col, ch).
func (im Image) At(row, col, ch int) float32 {
	return im.Data[(row*im.D+col)*im.C+ch]
}

// Projector converts a cloud of exactly Size() points into an Image.
// Callers pass clouds already in the classifier's viewport frame (see
// Viewport); projectors encode coordinates as given.
type Projector interface {
	// Name identifies the projection for experiment reports.
	Name() string
	// Channels is the channel count of produced images.
	Channels() int
	// Project converts the cloud. The cloud length must equal the target
	// size the projector was built for (a perfect square).
	Project(cloud geom.Cloud) Image
}

// KNeighbors is the neighborhood size for height-variation and density
// computations.
const KNeighbors = 8

// canonical returns the cloud sorted lexicographically by (z, x, y),
// height-major. Point clouds are unordered; the CNN needs a deterministic,
// spatially coherent reshape, so every projector canonicalizes first. (The
// paper inherits scan order from the sensor, which is also height-banded —
// beams sweep constant-elevation rings.) Height-major order makes each
// image row a height band, aligning the reshape with the height semantics
// HAWC keys on.
func canonical(cloud geom.Cloud) geom.Cloud {
	c := cloud.Clone()
	sort.Slice(c, func(i, j int) bool {
		if c[i].Z != c[j].Z {
			return c[i].Z < c[j].Z
		}
		if c[i].X != c[j].X {
			return c[i].X < c[j].X
		}
		return c[i].Y < c[j].Y
	})
	return c
}

// ViewportWindow is the half-width (meters) of the classifier's viewport
// around a candidate cluster.
const ViewportWindow = 2.0

// Viewport transforms an up-sampled sample into the classifier's frame:
// x and y are centered on the candidate cluster's centroid and clamped to
// ±window, and z is rebased on the ground plane so absolute height — the
// feature HAWC keys on — is preserved. Padding noise drawn from object
// captures elsewhere in the ROI saturates at the window border, so the
// classifier always sees the candidate at a canonical position with the
// noise recognizably peripheral. center is the pre-padding cluster
// centroid.
func Viewport(padded geom.Cloud, center geom.Point3, window float64) geom.Cloud {
	c := padded.Clone()
	const groundZ = -3.0
	clamp := func(v float64) float64 {
		if v > window {
			return window
		}
		if v < -window {
			return -window
		}
		return v
	}
	for i := range c {
		c[i].X = clamp(c[i].X - center.X)
		c[i].Y = clamp(c[i].Y - center.Y)
		c[i].Z -= groundZ
	}
	return c
}

// heightVariation computes σ_z per point: the standard deviation of the
// z-coordinates of the point's K nearest neighbors (Section V).
func heightVariation(cloud geom.Cloud, k int) []float64 {
	fi := indexPool.Get().(*spatial.FrameIndex)
	defer indexPool.Put(fi)
	fi.Build(cloud, 0)
	out := make([]float64, len(cloud))
	for i, p := range cloud {
		nn := fi.KNN(p, k)
		var mean float64
		for _, n := range nn {
			mean += cloud[n.Index].Z
		}
		mean /= float64(len(nn))
		var v float64
		for _, n := range nn {
			d := cloud[n.Index].Z - mean
			v += d * d
		}
		out[i] = math.Sqrt(v / float64(len(nn)))
	}
	return out
}

// HeightVariationSoA is heightVariation over a structure-of-arrays
// cloud: σ_z per point from the z-spread of its K nearest neighbors,
// computed against a pooled grid built directly on the SoA storage. The
// values are identical to the AoS computation on the widened cloud (the
// float32→float64 widening is exact and both engines honor the same
// neighbor-ordering contract).
func HeightVariationSoA(cloud *geom.CloudSoA, k int) []float64 {
	fi := indexPool.Get().(*spatial.FrameIndex)
	defer indexPool.Put(fi)
	fi.BuildSoA(cloud, 0)
	n := cloud.Len()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		nn := fi.KNN(cloud.At(i), k)
		var mean float64
		for _, nb := range nn {
			mean += float64(cloud.Z[nb.Index])
		}
		mean /= float64(len(nn))
		var v float64
		for _, nb := range nn {
			d := float64(cloud.Z[nb.Index]) - mean
			v += d * d
		}
		out[i] = math.Sqrt(v / float64(len(nn)))
	}
	return out
}

// side panics unless n is a perfect square, returning √n.
func side(n int) int {
	d := int(math.Sqrt(float64(n)))
	if d*d != n {
		panic("projection: cloud size is not a perfect square")
	}
	return d
}

// HAP is the paper's height-aware projection: channels
// (x, y, σz, y, z, x, z) — the σz-augmented top view stacked with the
// front and side views.
type HAP struct{}

var _ Projector = HAP{}

// Name implements Projector.
func (HAP) Name() string { return "HAP" }

// Channels implements Projector.
func (HAP) Channels() int { return 7 }

// Project implements Projector.
func (HAP) Project(cloud geom.Cloud) Image {
	c := canonical(cloud)
	sigma := heightVariation(c, KNeighbors)
	d := side(len(c))
	im := Image{D: d, C: 7, Data: make([]float32, len(c)*7)}
	for i, p := range c {
		base := i * 7
		im.Data[base+0] = float32(p.X)
		im.Data[base+1] = float32(p.Y)
		im.Data[base+2] = float32(sigma[i])
		im.Data[base+3] = float32(p.Y)
		im.Data[base+4] = float32(p.Z)
		im.Data[base+5] = float32(p.X)
		im.Data[base+6] = float32(p.Z)
	}
	return im
}

// ThreeView is HAP without the height-variation channel (the "TV"
// baseline in Figure 9): channels (x, y, y, z, x, z).
type ThreeView struct{}

var _ Projector = ThreeView{}

// Name implements Projector.
func (ThreeView) Name() string { return "TV" }

// Channels implements Projector.
func (ThreeView) Channels() int { return 6 }

// Project implements Projector.
func (ThreeView) Project(cloud geom.Cloud) Image {
	c := canonical(cloud)
	d := side(len(c))
	im := Image{D: d, C: 6, Data: make([]float32, len(c)*6)}
	for i, p := range c {
		base := i * 6
		im.Data[base+0] = float32(p.X)
		im.Data[base+1] = float32(p.Y)
		im.Data[base+2] = float32(p.Y)
		im.Data[base+3] = float32(p.Z)
		im.Data[base+4] = float32(p.X)
		im.Data[base+5] = float32(p.Z)
	}
	return im
}

// BEV is the bird-eye-view baseline: the top view only, channels (x, y).
// As the paper notes, it discards all vertical information.
type BEV struct{}

var _ Projector = BEV{}

// Name implements Projector.
func (BEV) Name() string { return "BEV" }

// Channels implements Projector.
func (BEV) Channels() int { return 2 }

// Project implements Projector.
func (BEV) Project(cloud geom.Cloud) Image {
	c := canonical(cloud)
	d := side(len(c))
	im := Image{D: d, C: 2, Data: make([]float32, len(c)*2)}
	for i, p := range c {
		im.Data[i*2+0] = float32(p.X)
		im.Data[i*2+1] = float32(p.Y)
	}
	return im
}

// RV is the range-view baseline: per-point spherical coordinates
// (azimuth, elevation, range) as seen from the sensor origin.
type RV struct{}

var _ Projector = RV{}

// Name implements Projector.
func (RV) Name() string { return "RV" }

// Channels implements Projector.
func (RV) Channels() int { return 3 }

// Project implements Projector.
func (RV) Project(cloud geom.Cloud) Image {
	c := canonical(cloud)
	d := side(len(c))
	im := Image{D: d, C: 3, Data: make([]float32, len(c)*3)}
	for i, p := range c {
		r := p.Norm()
		az := math.Atan2(p.Y, p.X)
		el := 0.0
		if r > 0 {
			el = math.Asin(p.Z / r)
		}
		im.Data[i*3+0] = float32(az)
		im.Data[i*3+1] = float32(el)
		im.Data[i*3+2] = float32(r)
	}
	return im
}

// DA is the density-aware baseline: the top view augmented with each
// point's local density (neighbor count within a fixed radius) instead of
// height variation — spatial detail traded for density detail.
type DA struct{}

var _ Projector = DA{}

// DensityRadius is DA's neighborhood radius in meters.
const DensityRadius = 0.25

// Name implements Projector.
func (DA) Name() string { return "DA" }

// Channels implements Projector.
func (DA) Channels() int { return 3 }

// Project implements Projector.
func (DA) Project(cloud geom.Cloud) Image {
	c := canonical(cloud)
	fi := indexPool.Get().(*spatial.FrameIndex)
	defer indexPool.Put(fi)
	fi.Build(c, DensityRadius)
	density := make([]float64, len(c))
	for i, p := range c {
		density[i] = float64(fi.RadiusCount(p, DensityRadius)-1) / float64(KNeighbors)
	}
	d := side(len(c))
	im := Image{D: d, C: 3, Data: make([]float32, len(c)*3)}
	for i, p := range c {
		im.Data[i*3+0] = float32(p.X)
		im.Data[i*3+1] = float32(p.Y)
		im.Data[i*3+2] = float32(density[i])
	}
	return im
}

// ByName returns the projector for a Figure 9 method name (HAP, TV, BEV,
// RV, DA) and whether the name is known.
func ByName(name string) (Projector, bool) {
	switch name {
	case "HAP":
		return HAP{}, true
	case "TV":
		return ThreeView{}, true
	case "BEV":
		return BEV{}, true
	case "RV":
		return RV{}, true
	case "DA":
		return DA{}, true
	default:
		return nil, false
	}
}
