package projection

import (
	"math"
	"math/rand"
	"testing"

	"hawccc/internal/geom"
)

// squareCloud returns an n-point cloud (n a perfect square) resembling a
// person-ish vertical cluster in the viewport frame (xy near 0, z 0…1.7).
func squareCloud(rng *rand.Rand, n int) geom.Cloud {
	c := make(geom.Cloud, n)
	for i := range c {
		c[i] = geom.P(
			rng.NormFloat64()*0.15,
			rng.NormFloat64()*0.2,
			rng.Float64()*1.7,
		)
	}
	return c
}

func TestAllProjectorsShapeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cloud := squareCloud(rng, 100)
	projs := []Projector{HAP{}, ThreeView{}, BEV{}, RV{}, DA{}}
	for _, p := range projs {
		t.Run(p.Name(), func(t *testing.T) {
			im := p.Project(cloud)
			if im.D != 10 {
				t.Errorf("D = %d, want 10", im.D)
			}
			if im.C != p.Channels() {
				t.Errorf("C = %d, want %d", im.C, p.Channels())
			}
			if len(im.Data) != 100*p.Channels() {
				t.Errorf("data length = %d", len(im.Data))
			}
			// Deterministic under permutation: shuffling the point order
			// must give the identical image (canonical sort).
			shuffled := cloud.Clone()
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			im2 := p.Project(shuffled)
			for i := range im.Data {
				if im.Data[i] != im2.Data[i] {
					t.Fatalf("projection not permutation-invariant at %d", i)
				}
			}
		})
	}
}

func TestProjectPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-square cloud")
		}
	}()
	HAP{}.Project(make(geom.Cloud, 10))
}

func TestCanonicalIsHeightMajor(t *testing.T) {
	cloud := geom.Cloud{geom.P(0, 0, 2), geom.P(5, 5, 0), geom.P(-1, 3, 1)}
	c := canonical(cloud)
	if c[0].Z != 0 || c[1].Z != 1 || c[2].Z != 2 {
		t.Errorf("canonical order not z-major: %v", c)
	}
}

func TestViewport(t *testing.T) {
	padded := geom.Cloud{
		geom.P(20, 1, -3),     // cluster foot point
		geom.P(20.2, 1, -1.3), // cluster head point
		geom.P(30, -2, -2.5),  // far noise
	}
	center := geom.P(20.1, 1, -2)
	out := Viewport(padded, center, 2)
	// Cluster points centered near origin.
	if math.Abs(out[0].X+0.1) > 1e-9 || math.Abs(out[0].Y) > 1e-9 {
		t.Errorf("cluster point not centered: %+v", out[0])
	}
	// z rebased on ground: foot at 0, head at 1.7.
	if math.Abs(out[0].Z) > 1e-9 || math.Abs(out[1].Z-1.7) > 1e-9 {
		t.Errorf("z rebasing wrong: %v %v", out[0].Z, out[1].Z)
	}
	// Far noise clamps to the window border.
	if out[2].X != 2 || out[2].Y != -2 {
		t.Errorf("noise not clamped: %+v", out[2])
	}
	// Input untouched.
	if padded[0].X != 20 {
		t.Error("Viewport mutated input")
	}
}

func TestHAPChannelSemantics(t *testing.T) {
	// A flat sheet at constant z has zero height variation everywhere; a
	// vertical column has high variation.
	flat := make(geom.Cloud, 16)
	for i := range flat {
		flat[i] = geom.P(float64(i%4)*0.1, float64(i/4)*0.1, 1)
	}
	imFlat := HAP{}.Project(flat)
	for i := 0; i < 16; i++ {
		if sigma := imFlat.At(i/4, i%4, 2); sigma != 0 {
			t.Errorf("flat sheet σz = %v at %d, want 0", sigma, i)
		}
	}

	column := make(geom.Cloud, 16)
	for i := range column {
		column[i] = geom.P(0, 0, float64(i)*0.12)
	}
	imCol := HAP{}.Project(column)
	nonzero := 0
	for i := 0; i < 16; i++ {
		if imCol.At(i/4, i%4, 2) > 0.01 {
			nonzero++
		}
	}
	if nonzero < 12 {
		t.Errorf("vertical column should have widespread σz, got %d/16 nonzero", nonzero)
	}
}

func TestHAPEncodesCoordinates(t *testing.T) {
	// With z-major canonical order, the front-view z channel (index 4) must
	// be non-decreasing across the raster.
	rng := rand.New(rand.NewSource(2))
	cloud := squareCloud(rng, 49)
	im := HAP{}.Project(cloud)
	prev := float32(math.Inf(-1))
	for i := 0; i < 49; i++ {
		z := im.At(i/7, i%7, 4)
		if z < prev {
			t.Fatalf("z channel not sorted at %d: %v < %v", i, z, prev)
		}
		prev = z
	}
	// Side view x channel (5) equals top view x channel (0).
	for i := 0; i < 49; i++ {
		if im.At(i/7, i%7, 0) != im.At(i/7, i%7, 5) {
			t.Fatal("x channels of top and side views must match")
		}
	}
}

func TestBEVDiscardsHeight(t *testing.T) {
	// Two clouds identical in xy but different in z produce identical BEV
	// images when points keep their pairing — the defect Figure 9 exposes.
	// (Canonical order is z-major, so flatten z to a constant per point
	// index to keep orderings comparable: use strictly increasing x.)
	a := make(geom.Cloud, 25)
	b := make(geom.Cloud, 25)
	for i := range a {
		x := float64(i) * 0.1
		a[i] = geom.P(x, -float64(i)*0.05, float64(i%7)*0.3)
		b[i] = geom.P(x, -float64(i)*0.05, 0.5)
	}
	imA := BEV{}.Project(a)
	imB := BEV{}.Project(b)
	// Compare as multisets of (x, y) pairs: sort-insensitive check via sums.
	var sumA, sumB float64
	for i := range imA.Data {
		sumA += float64(imA.Data[i]) * float64(i%3+1)
		sumB += float64(imB.Data[i]) * float64(i%3+1)
	}
	// The multiset of xy values is identical; only the raster order can
	// differ. A weighted sum over sorted data must match when the order
	// matches; here x increases strictly so z-major vs x ordering coincide
	// per z-band. Check multiset equality strictly instead:
	if !sameMultiset(imA.Data, imB.Data) {
		t.Error("BEV images should contain identical xy values regardless of heights")
	}
	_ = sumA
	_ = sumB
}

func sameMultiset(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[float32]int, len(a))
	for _, v := range a {
		count[v]++
	}
	for _, v := range b {
		count[v]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestRVEncodesRange(t *testing.T) {
	c := make(geom.Cloud, 4)
	for i := range c {
		c[i] = geom.P(10+float64(i), 0, 0)
	}
	im := RV{}.Project(c)
	// All z equal → canonical falls back to x order; range channel (2)
	// must be 10..13.
	for i := 0; i < 4; i++ {
		want := float32(10 + i)
		if got := im.At(i/2, i%2, 2); math.Abs(float64(got-want)) > 1e-5 {
			t.Errorf("range[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestDADensityChannel(t *testing.T) {
	// A tight clump has higher density values than scattered points.
	clump := make(geom.Cloud, 9)
	for i := range clump {
		clump[i] = geom.P(float64(i%3)*0.01, float64(i/3)*0.01, 1)
	}
	scattered := make(geom.Cloud, 9)
	for i := range scattered {
		scattered[i] = geom.P(float64(i%3)*5, float64(i/3)*5, 1)
	}
	dClump := DA{}.Project(clump)
	dScatter := DA{}.Project(scattered)
	var sumClump, sumScatter float32
	for i := 0; i < 9; i++ {
		sumClump += dClump.At(i/3, i%3, 2)
		sumScatter += dScatter.At(i/3, i%3, 2)
	}
	if sumClump <= sumScatter {
		t.Errorf("clump density %v should exceed scattered %v", sumClump, sumScatter)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"HAP", "TV", "BEV", "RV", "DA"} {
		p, ok := ByName(name)
		if !ok || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name accepted")
	}
}

func TestProjectDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cloud := squareCloud(rng, 16)
	orig := cloud.Clone()
	_ = HAP{}.Project(cloud)
	for i := range cloud {
		if cloud[i] != orig[i] {
			t.Fatal("Project mutated the input cloud")
		}
	}
}
