package models

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"hawccc/internal/dataset"
	"hawccc/internal/features"
	"hawccc/internal/geom"
	"hawccc/internal/nn"
	"hawccc/internal/quant"
	"hawccc/internal/tensor"
	"hawccc/internal/upsample"
)

// AutoEncoder is the AutoEncoder-CC baseline classifier (Section VII-A,
// after Liou et al.): following the paper's integration recipe ("replacing
// HAWC and adding steps (e.g., feature extraction, up-sampling)"), each
// cluster is first noise-controlled up-sampled like every other framework,
// then hand-crafted slice features (internal/features) are extracted and
// compressed through a bottleneck autoencoder trained on "Human" samples
// only; a cluster is classified human when its reconstruction error falls
// below a threshold fit on the training distribution. Extracting features
// from the padded cloud blurs the class manifolds — the structural reason
// this baseline lands far below HAWC in Table I.
type AutoEncoder struct {
	// Normalize standardizes features before the autoencoder. The paper's
	// baseline (77.94% accuracy) feeds raw slice features, whose uneven
	// scales let a few large dimensions dominate the reconstruction loss;
	// that is the behavior reproduced by default. Normalizing is an
	// extension beyond the paper.
	Normalize bool

	// FeatureWindow gates feature extraction to points within this xy
	// distance (meters) of the cluster centroid after up-sampling; 0
	// disables the gate. Leigh et al.'s person features are local, so the
	// extraction ignores far-field padding while nearby padding still
	// contaminates the slices — the mid-tier accuracy Table I shows.
	FeatureWindow float64

	norm      *features.Normalizer
	net       *nn.Sequential
	qnet      *quant.Model
	threshold float64
	target    int
	pool      *upsample.Pool
}

var _ Classifier = (*AutoEncoder)(nil)

// NewAutoEncoder builds an untrained AutoEncoder classifier.
func NewAutoEncoder() *AutoEncoder { return &AutoEncoder{FeatureWindow: 0.95} }

// Name implements Classifier.
func (a *AutoEncoder) Name() string {
	if a.qnet != nil {
		return "AutoEncoder-int8"
	}
	return "AutoEncoder"
}

// Network exposes the underlying network (nil before training).
func (a *AutoEncoder) Network() *nn.Sequential { return a.net }

// QuantNetwork exposes the int8 graph (nil unless quantized).
func (a *AutoEncoder) QuantNetwork() *quant.Model { return a.qnet }

// Threshold returns the fitted reconstruction-error threshold.
func (a *AutoEncoder) Threshold() float64 { return a.threshold }

// thresholdPercentile: human training errors below this percentile are
// "inside" the learned manifold.
const thresholdPercentile = 0.97

func buildAutoEncoder(dim int, rng *rand.Rand) *nn.Sequential {
	// Three-layer encoder, bottleneck, three-layer decoder (Liou et al.):
	// dim→64→32→16→32→64→dim with a linear output.
	return (&nn.Sequential{}).Add(
		nn.NewDense(dim, 64, rng),
		nn.NewReLU(),
		nn.NewDense(64, 32, rng),
		nn.NewReLU(),
		nn.NewDense(32, 16, rng),
		nn.NewReLU(),
		nn.NewDense(16, 32, rng),
		nn.NewReLU(),
		nn.NewDense(32, 64, rng),
		nn.NewReLU(),
		nn.NewDense(64, dim, rng),
	)
}

// Train fits the autoencoder on the human samples (paper defaults: Adam,
// lr 0.001, batch 512) and calibrates the decision threshold.
func (a *AutoEncoder) Train(samples []dataset.Sample, cfg TrainConfig) error {
	if len(samples) == 0 {
		return errors.New("models: no training samples")
	}
	cfg = cfg.withDefaults(60, 512, 0.001)
	rng := rand.New(rand.NewSource(cfg.Seed))
	a.target = upsample.TargetSize(dataset.MaxPoints(samples))
	var objectClouds []geom.Cloud
	for _, s := range samples {
		if !s.Human {
			objectClouds = append(objectClouds, s.Cloud)
		}
	}
	a.pool = upsample.NewPool(objectClouds)

	var humanVecs [][]float64
	var allVecs [][]float64
	for _, s := range samples {
		v := a.extract(rng, s.Cloud)
		allVecs = append(allVecs, v)
		if s.Human {
			humanVecs = append(humanVecs, v)
		}
	}
	if len(humanVecs) == 0 {
		return errors.New("models: AutoEncoder needs at least one human sample")
	}
	if a.Normalize {
		a.norm = features.FitNormalizer(allVecs)
	}

	dim := features.VectorLen
	a.net = buildAutoEncoder(dim, rng)

	normalized := make([][]float32, len(humanVecs))
	for i, v := range humanVecs {
		normalized[i] = toF32(a.applyNorm(v))
	}

	opt := nn.NewAdam(cfg.LearningRate)
	n := len(normalized)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := shuffledIndices(rng, n)
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			b := end - start
			x := tensor.New(b, dim)
			for bi := 0; bi < b; bi++ {
				copy(x.Data[bi*dim:(bi+1)*dim], normalized[perm[start+bi]])
			}
			out := a.net.Forward(x, true)
			_, grad := nn.MSELoss(out, x)
			a.net.Backward(grad)
			opt.Step(a.net.Params())
		}
		if cfg.Progress != nil {
			// Threshold must exist for mid-training evaluation.
			a.fitThreshold(normalized)
			cfg.Progress(epoch)
		}
	}
	a.fitThreshold(normalized)
	return nil
}

// fitThreshold sets the decision threshold at a high percentile of the
// human training reconstruction errors.
func (a *AutoEncoder) fitThreshold(humanVecs [][]float32) {
	errs := make([]float64, len(humanVecs))
	for i, v := range humanVecs {
		errs[i] = a.reconError(v)
	}
	sort.Float64s(errs)
	idx := int(float64(len(errs)-1) * thresholdPercentile)
	a.threshold = errs[idx]
	if a.threshold <= 0 {
		a.threshold = 1e-6
	}
}

// reconError is the mean squared reconstruction error of one normalized
// feature vector.
func (a *AutoEncoder) reconError(v []float32) float64 {
	dim := len(v)
	x := tensor.FromSlice(append([]float32(nil), v...), 1, dim)
	var out *tensor.Tensor
	if a.qnet != nil {
		out = a.qnet.Forward(x)
	} else {
		out = a.net.Infer(x)
	}
	var sum float64
	for i := range out.Data {
		d := float64(out.Data[i] - v[i])
		sum += d * d
	}
	return sum / float64(dim)
}

// extract up-samples the cluster (the paper's added step), applies the
// local feature window, and computes the slice feature vector. The rng
// drives the padding noise; inference passes a content-seeded stream.
func (a *AutoEncoder) extract(rng *rand.Rand, cloud geom.Cloud) []float64 {
	up := cloud
	if a.pool != nil && a.pool.Len() > 0 && a.target > 0 {
		up = upsample.FromPool(rng, cloud, a.pool, a.target)
	}
	if a.FeatureWindow > 0 {
		c := cloud.Centroid()
		w := a.FeatureWindow
		up = up.Filter(func(p geom.Point3) bool {
			return p.X >= c.X-w && p.X <= c.X+w && p.Y >= c.Y-w && p.Y <= c.Y+w
		})
	}
	return features.Extract(up)
}

// PredictHuman implements Classifier. Safe for concurrent use once
// trained: content-seeded per-call padding noise plus the stateless
// Infer / int8 reconstruction passes.
func (a *AutoEncoder) PredictHuman(cloud geom.Cloud) bool {
	if a.net == nil {
		panic("models: AutoEncoder not trained")
	}
	v := toF32(a.applyNorm(a.extract(inferRNG(cloud), cloud)))
	return a.reconError(v) <= a.threshold
}

func (a *AutoEncoder) applyNorm(v []float64) []float64 {
	if a.norm == nil {
		return v
	}
	return a.norm.Apply(v)
}

// Quantize returns an int8-inference copy calibrated on the given samples.
// The decision threshold is kept from FP training, so quantization noise
// in the reconstructions translates directly into accuracy loss — the
// effect Table I measures.
func (a *AutoEncoder) Quantize(calib []dataset.Sample) (*AutoEncoder, error) {
	if a.net == nil {
		return nil, errors.New("models: quantizing untrained AutoEncoder")
	}
	if len(calib) == 0 {
		return nil, errors.New("models: empty calibration set")
	}
	tensors := make([]*tensor.Tensor, 0, len(calib))
	for _, s := range calib {
		v := toF32(a.applyNorm(a.extract(inferRNG(s.Cloud), s.Cloud)))
		tensors = append(tensors, tensor.FromSlice(v, 1, features.VectorLen))
	}
	qm, err := quant.Quantize(a.net, tensors)
	if err != nil {
		return nil, fmt.Errorf("models: quantize AutoEncoder: %w", err)
	}
	out := *a
	out.qnet = qm
	return &out, nil
}

func toF32(v []float64) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}
