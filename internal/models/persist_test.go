package models

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"hawccc/internal/tensor"
	"hawccc/internal/upsample"
)

func TestHAWCSaveLoadRoundTrip(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	if err := h.Train(split.Train, TrainConfig{Epochs: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHAWC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Target() != h.Target() {
		t.Errorf("target %d, want %d", loaded.Target(), h.Target())
	}
	if loaded.Projector.Name() != "HAP" {
		t.Errorf("projector %q", loaded.Projector.Name())
	}
	// The loaded network must be bit-identical: same logits on a fixed
	// input. (End-to-end predictions can differ on boundary samples since
	// each instance draws its own up-sampling noise.)
	d := upsample.Side(h.Target())
	x := tensor.New(1, d, d, 7)
	x.RandNormal(rand.New(rand.NewSource(99)), 1)
	want := h.Network().Forward(x, false)
	got := loaded.Network().Forward(x, false)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("logit %d differs: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestHAWCSaveLoadFiles(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	if err := h.Train(split.Train[:40], TrainConfig{Epochs: 2, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hwcm")
	if err := SaveHAWCFile(path, h); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHAWCFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = loaded.PredictHuman(split.Test[0].Cloud)
}

func TestHAWCSaveErrors(t *testing.T) {
	h := NewHAWC()
	var buf bytes.Buffer
	if err := h.Save(&buf); err == nil {
		t.Error("saving untrained model accepted")
	}
	if _, err := LoadHAWC(bytes.NewReader([]byte("JUNKJUNK"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := LoadHAWCFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}
