package models

import (
	"errors"
	"fmt"
	"math/rand"

	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/nn"
	"hawccc/internal/projection"
	"hawccc/internal/quant"
	"hawccc/internal/tensor"
	"hawccc/internal/upsample"
)

// HAWC is the Height-Aware Human Classifier (Section V): noise-controlled
// up-sampling to a fixed size, height-aware projection into a D×D×7 image,
// and a lightweight CNN (three 3×3 conv layers with batch norm and ReLU,
// then two fully connected layers).
type HAWC struct {
	// Projector converts clouds to images; defaults to HAP. Swapped for
	// the Figure 9 projection ablation.
	Projector projection.Projector
	// GaussianSigma, when > 0, replaces object-pool up-sampling with
	// Gaussian-noise up-sampling of that σ (Table III ablation).
	GaussianSigma float64

	target int // N′max
	d      int // image side
	pool   *upsample.Pool
	net    *nn.Sequential
	qnet   *quant.Model
	rng    *rand.Rand
}

var (
	_ Classifier      = (*HAWC)(nil)
	_ BatchClassifier = (*HAWC)(nil)
)

// NewHAWC builds an untrained HAWC with the paper's defaults.
func NewHAWC() *HAWC { return &HAWC{Projector: projection.HAP{}} }

// Name implements Classifier.
func (h *HAWC) Name() string {
	if h.qnet != nil {
		return "HAWC-int8"
	}
	return "HAWC"
}

// Target returns N′max (0 before training).
func (h *HAWC) Target() int { return h.target }

// Network exposes the underlying CNN (nil before training) for device
// cost modeling and inspection.
func (h *HAWC) Network() *nn.Sequential { return h.net }

// QuantNetwork exposes the int8 graph (nil unless quantized).
func (h *HAWC) QuantNetwork() *quant.Model { return h.qnet }

// buildNet constructs the CNN for side d and c input channels. The layer
// widths give ≈56k trainable parameters at D=10/C=7, matching the paper's
// "lightweight CNN ... 62,114 parameters" scale.
func buildHAWCNet(d, c int, rng *rand.Rand) *nn.Sequential {
	half := d / 2
	return (&nn.Sequential{}).Add(
		nn.NewConv2D(3, 3, c, 8, rng),
		nn.NewBatchNorm(8),
		nn.NewReLU(),
		nn.NewConv2D(3, 3, 8, 16, rng),
		nn.NewBatchNorm(16),
		nn.NewReLU(),
		nn.NewMaxPool2D(),
		nn.NewConv2D(3, 3, 16, 16, rng),
		nn.NewBatchNorm(16),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(half*half*16, 128, rng),
		nn.NewReLU(),
		nn.NewDense(128, 2, rng),
	)
}

// prepare up-samples, frames, and projects one cloud into a flat image
// vector: pad to N′max, place the candidate in the classifier viewport
// (cluster-centered, ±ViewportWindow), project. The rng drives the
// up-sampling noise: training passes the model's stream (fresh noise every
// epoch, a natural augmentation), inference passes a content-seeded stream
// (see inferRNG) so predictions are deterministic and order-independent.
func (h *HAWC) prepare(rng *rand.Rand, cloud geom.Cloud) []float32 {
	var up geom.Cloud
	if h.GaussianSigma > 0 || h.pool == nil || h.pool.Len() == 0 {
		sigma := h.GaussianSigma
		if sigma == 0 {
			sigma = 3
		}
		up = upsample.Gaussian(rng, cloud, sigma, h.target)
	} else {
		up = upsample.FromPool(rng, cloud, h.pool, h.target)
	}
	framed := projection.Viewport(up, cloud.Centroid(), projection.ViewportWindow)
	return h.Projector.Project(framed).Data
}

// inferRNG returns the padding-noise stream for one inference call, seeded
// from the cluster content. Same cluster → same noise → same prediction,
// at any worker count and in any order; distinct calls share no state, so
// PredictHuman is safe for concurrent use.
func inferRNG(cloud geom.Cloud) *rand.Rand {
	return rand.New(rand.NewSource(upsample.ContentSeed(cloud)))
}

// Train fits HAWC on cluster samples. Defaults follow Section VII-A:
// Adam, lr 0.001, batch 32.
func (h *HAWC) Train(samples []dataset.Sample, cfg TrainConfig) error {
	if len(samples) == 0 {
		return errors.New("models: no training samples")
	}
	cfg = cfg.withDefaults(30, 32, 0.001)
	h.rng = rand.New(rand.NewSource(cfg.Seed))
	if h.Projector == nil {
		h.Projector = projection.HAP{}
	}

	h.target = upsample.TargetSize(dataset.MaxPoints(samples))
	h.d = upsample.Side(h.target)
	_, objects := splitByClass(samples)
	h.pool = upsample.NewPool(objects)

	c := h.Projector.Channels()
	h.net = buildHAWCNet(h.d, c, h.rng)

	labels := make([]int, len(samples))
	for i, s := range samples {
		if s.Human {
			labels[i] = 1
		}
	}
	// Up-sampling noise is redrawn every epoch — a natural augmentation
	// that keeps the classifier from memorizing specific noise draws.
	prepareAll := func() [][]float32 {
		images := make([][]float32, len(samples))
		for i, s := range samples {
			images[i] = h.prepare(h.rng, s.Cloud)
		}
		return images
	}

	opt := nn.NewAdam(cfg.LearningRate)
	trainImages(h.net, opt, prepareAll, labels, h.d, c, cfg, h.rng)
	return nil
}

// trainImages runs the shared minibatch loop over flat image vectors,
// re-materializing the images each epoch (fresh up-sampling noise) and
// decaying the learning rate at 50% and 80% of the schedule.
func trainImages(net *nn.Sequential, opt *nn.Adam, prepareAll func() [][]float32, labels []int, d, c int, cfg TrainConfig, rng *rand.Rand) {
	n := len(labels)
	imgLen := d * d * c
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if epoch == cfg.Epochs/2 || epoch == cfg.Epochs*4/5 {
			opt.LR *= 0.3
		}
		images := prepareAll()
		perm := shuffledIndices(rng, n)
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			b := end - start
			x := tensor.New(b, d, d, c)
			y := make([]int, b)
			for bi := 0; bi < b; bi++ {
				idx := perm[start+bi]
				copy(x.Data[bi*imgLen:(bi+1)*imgLen], images[idx])
				y[bi] = labels[idx]
			}
			out := net.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			net.Backward(grad)
			opt.Step(net.Params())
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch)
		}
	}
}

// PredictHuman implements Classifier. It is safe for concurrent use by
// multiple goroutines once the model is trained: padding noise comes from
// a per-call content-seeded RNG and the forward pass runs through
// nn.Sequential.Infer (or the stateless int8 graph), neither of which
// touches shared mutable state.
func (h *HAWC) PredictHuman(cloud geom.Cloud) bool {
	if h.net == nil {
		panic("models: HAWC not trained")
	}
	img := h.prepare(inferRNG(cloud), cloud)
	x := tensor.FromSlice(img, 1, h.d, h.d, h.Projector.Channels())
	var out *tensor.Tensor
	if h.qnet != nil {
		out = h.qnet.Forward(x)
	} else {
		out = h.net.Infer(x)
	}
	return nn.Argmax(out)[0] == 1
}

// PredictHumans implements BatchClassifier: all clusters are prepared
// into one [N, d, d, C] tensor and classified in a single forward pass,
// letting the GEMM kernels pack weights once and run across the whole
// batch. Per-cluster padding noise stays content-seeded, and Infer is
// bit-identical across batch sizes, so the results match PredictHuman
// cluster for cluster regardless of how a frame is batched.
func (h *HAWC) PredictHumans(clouds []geom.Cloud) []bool {
	if h.net == nil {
		panic("models: HAWC not trained")
	}
	if len(clouds) == 0 {
		return nil
	}
	c := h.Projector.Channels()
	imgLen := h.d * h.d * c
	x := tensor.New(len(clouds), h.d, h.d, c)
	for i, cloud := range clouds {
		copy(x.Data[i*imgLen:(i+1)*imgLen], h.prepare(inferRNG(cloud), cloud))
	}
	var out *tensor.Tensor
	if h.qnet != nil {
		out = h.qnet.Forward(x)
	} else {
		out = h.net.Infer(x)
	}
	preds := make([]bool, len(clouds))
	for i, class := range nn.Argmax(out) {
		preds[i] = class == 1
	}
	return preds
}

// Quantize returns a copy of h that runs int8 inference, calibrated on the
// given samples (the paper uses 100 random training samples, Section VI).
func (h *HAWC) Quantize(calib []dataset.Sample) (*HAWC, error) {
	if h.net == nil {
		return nil, errors.New("models: quantizing untrained HAWC")
	}
	if len(calib) == 0 {
		return nil, errors.New("models: empty calibration set")
	}
	c := h.Projector.Channels()
	tensors := make([]*tensor.Tensor, 0, len(calib))
	for _, s := range calib {
		img := h.prepare(inferRNG(s.Cloud), s.Cloud)
		tensors = append(tensors, tensor.FromSlice(img, 1, h.d, h.d, c))
	}
	qm, err := quant.Quantize(h.net, tensors)
	if err != nil {
		return nil, fmt.Errorf("models: quantize HAWC: %w", err)
	}
	out := *h
	out.qnet = qm
	return &out, nil
}

// PoolClouds exposes the object captures in the up-sampling pool (empty
// before training). Used by tooling that needs calibration material from
// a loaded model.
func (h *HAWC) PoolClouds() []geom.Cloud {
	if h.pool == nil {
		return nil
	}
	return h.pool.Clouds()
}
