// Package models assembles the four human/object classifiers the paper
// evaluates (Section VII-B) from the substrate packages: HAWC (the paper's
// contribution — height-aware projection + lightweight CNN), PointNet
// (direct 3D point-set network), a feature-space AutoEncoder, and OC-SVM.
// All implement Classifier so the counting frameworks (internal/counting)
// can swap them.
package models

import (
	"math/rand"

	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/metrics"
)

// Classifier labels one clustered point cloud as human or object.
type Classifier interface {
	// Name identifies the model in reports.
	Name() string
	// PredictHuman classifies a cluster.
	PredictHuman(cloud geom.Cloud) bool
}

// BatchClassifier is implemented by classifiers that can label many
// clusters in one forward pass — one [N, H, W, C] tensor instead of N
// batch-1 passes — which is what lets the GEMM kernels amortize weight
// packing and run wide. The counting pipeline feeds each worker a batch
// when the classifier supports it. PredictHumans(clouds)[i] must equal
// PredictHuman(clouds[i]) for every i regardless of batch composition.
type BatchClassifier interface {
	Classifier
	// PredictHumans classifies each cluster; the result has one entry
	// per input, in order.
	PredictHumans(clouds []geom.Cloud) []bool
}

// TrainConfig parameterizes model training. Zero values select each
// model's paper defaults.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the minibatch size (paper: HAWC 32, PointNet 64,
	// AutoEncoder 512).
	BatchSize int
	// LearningRate for Adam (paper: 0.001 for all CNN models).
	LearningRate float64
	// Seed drives weight init, shuffling, and up-sampling noise.
	Seed int64
	// Progress, if non-nil, is called after each epoch; callers close
	// over the model to trace accuracy curves (Figure 8a).
	Progress func(epoch int)
}

func (c TrainConfig) withDefaults(epochs, batch int, lr float64) TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = epochs
	}
	if c.BatchSize == 0 {
		c.BatchSize = batch
	}
	if c.LearningRate == 0 {
		c.LearningRate = lr
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Evaluate runs the classifier over labeled samples and returns the
// confusion matrix ("Human" is the positive class).
func Evaluate(c Classifier, samples []dataset.Sample) metrics.Confusion {
	var conf metrics.Confusion
	for _, s := range samples {
		conf.Add(c.PredictHuman(s.Cloud), s.Human)
	}
	return conf
}

// splitByClass partitions samples into clouds by label.
func splitByClass(samples []dataset.Sample) (humans, objects []geom.Cloud) {
	for _, s := range samples {
		if s.Human {
			humans = append(humans, s.Cloud)
		} else {
			objects = append(objects, s.Cloud)
		}
	}
	return humans, objects
}

// shuffledIndices returns a permutation of [0, n).
func shuffledIndices(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
