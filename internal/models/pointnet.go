package models

import (
	"errors"
	"fmt"
	"math/rand"

	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/nn"
	"hawccc/internal/quant"
	"hawccc/internal/tensor"
	"hawccc/internal/upsample"
)

// PointNet is the direct 3D point-set classifier of Qi et al. used as the
// strongest baseline (Section VII-A): a shared per-point MLP lifts each
// point to a feature vector, a symmetric max-pooling aggregates the cloud,
// and a fully connected head classifies the global feature. PointNet-CC
// reuses HAWC-CC's up-sampling step to satisfy the fixed-size input
// requirement.
//
// The network here keeps the original's structure (shared MLP → max pool →
// FC head with dropout) at reduced widths (≈80k parameters vs the paper's
// 747k) so CPU-only training stays tractable; the accuracy/robustness
// relationships of Tables I and V are preserved (see DESIGN.md).
type PointNet struct {
	target int
	pool   *upsample.Pool
	net    *nn.Sequential
	qnet   *quant.Model
	rng    *rand.Rand
}

var _ Classifier = (*PointNet)(nil)

// NewPointNet builds an untrained PointNet.
func NewPointNet() *PointNet { return &PointNet{} }

// Name implements Classifier.
func (p *PointNet) Name() string {
	if p.qnet != nil {
		return "PointNet-int8"
	}
	return "PointNet"
}

// Target returns N′max (0 before training).
func (p *PointNet) Target() int { return p.target }

// Network exposes the underlying network (nil before training).
func (p *PointNet) Network() *nn.Sequential { return p.net }

// QuantNetwork exposes the int8 graph (nil unless quantized).
func (p *PointNet) QuantNetwork() *quant.Model { return p.qnet }

func buildPointNet(points int, rng *rand.Rand) *nn.Sequential {
	return (&nn.Sequential{}).Add(
		// Shared per-point MLP: points ride in the batch dimension.
		nn.NewDense(3, 64, rng),
		nn.NewBatchNorm(64),
		nn.NewReLU(),
		nn.NewDense(64, 64, rng),
		nn.NewBatchNorm(64),
		nn.NewReLU(),
		nn.NewDense(64, 128, rng),
		nn.NewBatchNorm(128),
		nn.NewReLU(),
		nn.NewDense(128, 256, rng),
		nn.NewBatchNorm(256),
		nn.NewReLU(),
		// Aggregate to a global feature.
		nn.NewGroup(points),
		nn.NewMaxOverPoints(),
		// Classification head.
		nn.NewDense(256, 128, rng),
		nn.NewReLU(),
		nn.NewDropout(0.3, rng),
		nn.NewDense(128, 2, rng),
	)
}

// preparePoints up-samples one cloud into a flat [target × 3] vector.
// Per the paper's integration, PointNet-CC "directly processes 3D point
// clouds" with only the up-sampling step added: points stay in the sensor
// frame (rebased on the ROI center and ground plane, a fixed affine shift)
// rather than HAWC's cluster-centered viewport. The resulting
// high-dimensional raw input space is exactly what the paper blames for
// PointNet's noise sensitivity and data hunger.
func (p *PointNet) preparePoints(rng *rand.Rand, cloud geom.Cloud) []float32 {
	var up geom.Cloud
	if p.pool != nil && p.pool.Len() > 0 {
		up = upsample.FromPool(rng, cloud, p.pool, p.target)
	} else {
		up = upsample.Gaussian(rng, cloud, 3, p.target)
	}
	const roiCenterX, groundZ = 23.5, -3.0
	out := make([]float32, p.target*3)
	for i, pt := range up {
		out[i*3+0] = float32(pt.X - roiCenterX)
		out[i*3+1] = float32(pt.Y)
		out[i*3+2] = float32(pt.Z - groundZ)
	}
	return out
}

// Train fits PointNet (paper defaults: Adam, lr 0.001, batch 64).
func (p *PointNet) Train(samples []dataset.Sample, cfg TrainConfig) error {
	if len(samples) == 0 {
		return errors.New("models: no training samples")
	}
	cfg = cfg.withDefaults(14, 64, 0.001)
	p.rng = rand.New(rand.NewSource(cfg.Seed))

	p.target = upsample.TargetSize(dataset.MaxPoints(samples))
	_, objects := splitByClass(samples)
	p.pool = upsample.NewPool(objects)
	p.net = buildPointNet(p.target, p.rng)

	labels := make([]int, len(samples))
	for i, s := range samples {
		if s.Human {
			labels[i] = 1
		}
	}

	opt := nn.NewAdam(cfg.LearningRate)
	n := len(samples)
	vecLen := p.target * 3
	pts := make([][]float32, n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if epoch == cfg.Epochs/2 || epoch == cfg.Epochs*4/5 {
			opt.LR *= 0.3
		}
		// Fresh up-sampling noise each epoch (augmentation).
		for i, s := range samples {
			pts[i] = p.preparePoints(p.rng, s.Cloud)
		}
		perm := shuffledIndices(p.rng, n)
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			b := end - start
			// Points flattened into the batch: [b·P, 3].
			x := tensor.New(b*p.target, 3)
			y := make([]int, b)
			for bi := 0; bi < b; bi++ {
				idx := perm[start+bi]
				copy(x.Data[bi*vecLen:(bi+1)*vecLen], pts[idx])
				y[bi] = labels[idx]
			}
			out := p.net.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			p.net.Backward(grad)
			opt.Step(p.net.Params())
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch)
		}
	}
	return nil
}

// PredictHuman implements Classifier. Like HAWC, it is safe for concurrent
// use once trained: content-seeded per-call padding noise plus the
// stateless Infer / int8 forward passes.
func (p *PointNet) PredictHuman(cloud geom.Cloud) bool {
	if p.net == nil {
		panic("models: PointNet not trained")
	}
	v := p.preparePoints(inferRNG(cloud), cloud)
	x := tensor.FromSlice(v, p.target, 3)
	var out *tensor.Tensor
	if p.qnet != nil {
		out = p.qnet.Forward(x)
	} else {
		out = p.net.Infer(x)
	}
	return nn.Argmax(out)[0] == 1
}

// Quantize returns an int8-inference copy calibrated on the given samples.
func (p *PointNet) Quantize(calib []dataset.Sample) (*PointNet, error) {
	if p.net == nil {
		return nil, errors.New("models: quantizing untrained PointNet")
	}
	if len(calib) == 0 {
		return nil, errors.New("models: empty calibration set")
	}
	tensors := make([]*tensor.Tensor, 0, len(calib))
	for _, s := range calib {
		v := p.preparePoints(inferRNG(s.Cloud), s.Cloud)
		tensors = append(tensors, tensor.FromSlice(v, p.target, 3))
	}
	qm, err := quant.Quantize(p.net, tensors)
	if err != nil {
		return nil, fmt.Errorf("models: quantize PointNet: %w", err)
	}
	out := *p
	out.qnet = qm
	return &out, nil
}
