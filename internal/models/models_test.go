package models

import (
	"math/rand"
	"sync"
	"testing"

	"hawccc/internal/dataset"
	"hawccc/internal/geom"
	"hawccc/internal/projection"
)

// smallSplit builds a small classification dataset shared by the tests.
// Training here uses few samples and epochs: the goal is exercising the
// code paths, not paper-grade accuracy (the experiments package does that).
func smallSplit(t *testing.T) dataset.Split {
	t.Helper()
	g := dataset.NewGenerator(11)
	samples := g.Classification(200)
	return dataset.TrainTestSplit(rand.New(rand.NewSource(5)), samples, 0.8)
}

func TestHAWCTrainPredict(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	if err := h.Train(split.Train, TrainConfig{Epochs: 10, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if h.Target() == 0 || h.Network() == nil {
		t.Fatal("training did not initialize the model")
	}
	conf := Evaluate(h, split.Test)
	// Loose bound: must clearly beat coin flipping on a small budget.
	if conf.Accuracy() < 0.6 {
		t.Errorf("HAWC tiny-train accuracy %.3f < 0.6", conf.Accuracy())
	}
	if h.Name() != "HAWC" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestHAWCProgressCallback(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	var epochs []int
	cfg := TrainConfig{Epochs: 3, Seed: 2, Progress: func(e int) { epochs = append(epochs, e) }}
	if err := h.Train(split.Train, cfg); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 || epochs[2] != 2 {
		t.Errorf("progress calls: %v", epochs)
	}
}

func TestHAWCQuantizeAgreesWithFloat(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	if err := h.Train(split.Train, TrainConfig{Epochs: 10, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	hq, err := h.Quantize(split.Train[:20])
	if err != nil {
		t.Fatal(err)
	}
	if hq.Name() != "HAWC-int8" {
		t.Errorf("quantized name = %q", hq.Name())
	}
	if hq.QuantNetwork() == nil {
		t.Fatal("no quant network")
	}
	agree := 0
	for _, s := range split.Test {
		if h.PredictHuman(s.Cloud) == hq.PredictHuman(s.Cloud) {
			agree++
		}
	}
	if agree < len(split.Test)*6/10 {
		t.Errorf("int8 agrees on %d/%d", agree, len(split.Test))
	}
}

func TestHAWCGaussianVariant(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	h.GaussianSigma = 3
	if err := h.Train(split.Train, TrainConfig{Epochs: 2, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// Must classify without pool access.
	_ = h.PredictHuman(split.Test[0].Cloud)
}

func TestHAWCProjectionVariants(t *testing.T) {
	split := smallSplit(t)
	for _, name := range []string{"BEV", "RV", "DA", "TV"} {
		proj, ok := projection.ByName(name)
		if !ok {
			t.Fatalf("projector %q missing", name)
		}
		h := NewHAWC()
		h.Projector = proj
		if err := h.Train(split.Train, TrainConfig{Epochs: 2, Seed: 2}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = h.PredictHuman(split.Test[0].Cloud)
	}
}

func TestHAWCErrors(t *testing.T) {
	h := NewHAWC()
	if err := h.Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := h.Quantize(nil); err == nil {
		t.Error("quantize before training accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("predict before training should panic")
		}
	}()
	h.PredictHuman(nil)
}

func TestPointNetTrainPredict(t *testing.T) {
	split := smallSplit(t)
	p := NewPointNet()
	if err := p.Train(split.Train, TrainConfig{Epochs: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if p.Target() == 0 || p.Network() == nil {
		t.Fatal("training did not initialize")
	}
	conf := Evaluate(p, split.Test)
	// PointNet converges slowly on the raw sensor-frame input; with a
	// 3-epoch budget just require it produces a working classifier.
	if conf.Accuracy() < 0.35 {
		t.Errorf("PointNet tiny-train accuracy %.3f", conf.Accuracy())
	}
	pq, err := p.Quantize(split.Train[:10])
	if err != nil {
		t.Fatal(err)
	}
	if pq.Name() != "PointNet-int8" || pq.QuantNetwork() == nil {
		t.Error("quantized PointNet malformed")
	}
	_ = pq.PredictHuman(split.Test[0].Cloud)
}

func TestPointNetErrors(t *testing.T) {
	p := NewPointNet()
	if err := p.Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := p.Quantize(nil); err == nil {
		t.Error("quantize before training accepted")
	}
}

func TestAutoEncoderTrainPredict(t *testing.T) {
	split := smallSplit(t)
	a := NewAutoEncoder()
	if err := a.Train(split.Train, TrainConfig{Epochs: 20, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if a.Threshold() <= 0 {
		t.Error("threshold not fitted")
	}
	conf := Evaluate(a, split.Test)
	// Raw-feature AE is the paper's weak baseline; just require it runs
	// and recalls most humans (threshold covers 97% of training humans).
	if conf.Recall() < 0.5 {
		t.Errorf("AE recall %.3f suspiciously low", conf.Recall())
	}
	aq, err := a.Quantize(split.Train[:10])
	if err != nil {
		t.Fatal(err)
	}
	if aq.Name() != "AutoEncoder-int8" {
		t.Errorf("name %q", aq.Name())
	}
	_ = aq.PredictHuman(split.Test[0].Cloud)
}

func TestAutoEncoderNormalizedVariant(t *testing.T) {
	split := smallSplit(t)
	a := NewAutoEncoder()
	a.Normalize = true
	if err := a.Train(split.Train, TrainConfig{Epochs: 10, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	_ = a.PredictHuman(split.Test[0].Cloud)
}

func TestAutoEncoderErrors(t *testing.T) {
	a := NewAutoEncoder()
	if err := a.Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	// Object-only training set has no human manifold to learn.
	g := dataset.NewGenerator(12)
	objs := g.Objects(5)
	if err := a.Train(objs, TrainConfig{Epochs: 1}); err == nil {
		t.Error("object-only training set accepted")
	}
}

func TestOCSVMWeakByDefault(t *testing.T) {
	// The paper-faithful OC-SVM-CC (features from up-sampled clusters) is
	// a near-chance classifier (Table I: 48.6%); at experiment scale it
	// hovers around 0.5. Here we only require the mechanics work and the
	// model stays clearly below the CNN tier.
	split := smallSplit(t)
	o := NewOCSVM()
	if err := o.Train(split.Train, TrainConfig{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	conf := Evaluate(o, split.Test)
	if conf.Accuracy() > 0.9 {
		t.Errorf("OC-SVM accuracy %.3f suspiciously high for the degenerate baseline", conf.Accuracy())
	}
	if o.NumSupportVectors() == 0 {
		t.Error("no support vectors")
	}
	if o.FeatureDim() == 0 {
		t.Error("feature dim")
	}
}

func TestOCSVMErrors(t *testing.T) {
	o := NewOCSVM()
	if err := o.Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("predict before training should panic")
		}
	}()
	o.PredictHuman(nil)
}

func TestEvaluateHelper(t *testing.T) {
	split := smallSplit(t)
	o := NewOCSVM()
	if err := o.Train(split.Train, TrainConfig{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	conf := Evaluate(o, split.Test)
	if conf.Total() != len(split.Test) {
		t.Errorf("evaluated %d, want %d", conf.Total(), len(split.Test))
	}
}

// TestPredictHumanDeterministic verifies the concurrency contract's first
// half: a prediction depends only on the cluster content, not on call
// order, because padding noise is seeded from the cloud itself.
func TestPredictHumanDeterministic(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	if err := h.Train(split.Train[:60], TrainConfig{Epochs: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	clouds := []int{0, 1, 2, 3}
	first := make([]bool, len(clouds))
	for i, ci := range clouds {
		first[i] = h.PredictHuman(split.Test[ci].Cloud)
	}
	// Reverse order and repeat: every answer must be unchanged.
	for pass := 0; pass < 2; pass++ {
		for i := len(clouds) - 1; i >= 0; i-- {
			if got := h.PredictHuman(split.Test[clouds[i]].Cloud); got != first[i] {
				t.Fatalf("cloud %d: prediction flipped across calls", clouds[i])
			}
		}
	}
}

// TestPredictHumanConcurrent drives one shared classifier from many
// goroutines; under -race this proves PredictHuman shares no mutable
// state across calls.
func TestPredictHumanConcurrent(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	if err := h.Train(split.Train[:60], TrainConfig{Epochs: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	test := split.Test[:8]
	want := make([]bool, len(test))
	for i, s := range test {
		want[i] = h.PredictHuman(s.Cloud)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	mismatch := make(chan int, goroutines*len(test))
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < len(test); k++ {
				i := (k + g) % len(test) // different order per goroutine
				if h.PredictHuman(test[i].Cloud) != want[i] {
					mismatch <- i
					return
				}
			}
		}()
	}
	wg.Wait()
	close(mismatch)
	if i, ok := <-mismatch; ok {
		t.Fatalf("concurrent prediction for sample %d diverged from sequential", i)
	}
}

// TestPredictHumansMatchesSingle pins the BatchClassifier contract: a
// batched pass must reproduce per-cluster predictions exactly, for any
// batch composition, on both the float and int8 networks.
func TestPredictHumansMatchesSingle(t *testing.T) {
	split := smallSplit(t)
	h := NewHAWC()
	if err := h.Train(split.Train[:60], TrainConfig{Epochs: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	hq, err := h.Quantize(split.Train[:10])
	if err != nil {
		t.Fatal(err)
	}
	clouds := make([]geom.Cloud, 0, 12)
	for _, s := range split.Test[:12] {
		clouds = append(clouds, s.Cloud)
	}
	for _, m := range []*HAWC{h, hq} {
		want := make([]bool, len(clouds))
		for i, c := range clouds {
			want[i] = m.PredictHuman(c)
		}
		// Whole set at once, then an overlapping sub-batch: composition
		// must not matter.
		got := m.PredictHumans(clouds)
		if len(got) != len(want) {
			t.Fatalf("%s: got %d predictions, want %d", m.Name(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s cluster %d: batched %v, single %v", m.Name(), i, got[i], want[i])
			}
		}
		sub := m.PredictHumans(clouds[3:7])
		for i, v := range sub {
			if v != want[3+i] {
				t.Errorf("%s cluster %d: sub-batched %v, single %v", m.Name(), 3+i, v, want[3+i])
			}
		}
	}
	if got := h.PredictHumans(nil); got != nil {
		t.Errorf("empty batch: got %v, want nil", got)
	}
}
