package models

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"os"

	"hawccc/internal/geom"
	"hawccc/internal/projection"
	"hawccc/internal/upsample"
)

// HAWC model file format (stdlib-only binary):
//
//	magic    [4]byte "HWCM"
//	version  uint16
//	projLen  uint32, projector name bytes
//	target   uint32 (N′max)
//	sigma    float64 (GaussianSigma)
//	poolN    uint32, then poolN clouds (uint32 count + points as 3×float32)
//	weights  (nn.Sequential.Save payload)

var hawcMagic = [4]byte{'H', 'W', 'C', 'M'}

const hawcFormatVersion = 1

// Save serializes the trained HAWC — projector identity, up-sampling
// configuration, object pool, and network weights — so a deployment can
// reload it without retraining.
func (h *HAWC) Save(w io.Writer) error {
	if h.net == nil {
		return fmt.Errorf("models: saving untrained HAWC")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(hawcMagic[:]); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	name := h.Projector.Name()
	if err := binary.Write(bw, binary.LittleEndian, uint16(hawcFormatVersion)); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	if _, err := bw.WriteString(name); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(h.target)); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(h.GaussianSigma)); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	var clouds []geom.Cloud
	if h.pool != nil {
		clouds = h.pool.Clouds()
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(clouds))); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	for _, c := range clouds {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(c))); err != nil {
			return fmt.Errorf("models: save: %w", err)
		}
		for _, p := range c {
			for _, v := range [3]float32{float32(p.X), float32(p.Y), float32(p.Z)} {
				if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
					return fmt.Errorf("models: save: %w", err)
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	return h.net.Save(w)
}

// ModelVersion returns a stable fingerprint of the trained model — an
// FNV-1a hash over the exact bytes Save would write (projector, pool,
// weights), folded to 32 bits for the wire's model-version fields. Two
// HAWCs trained identically (same data, same seed) agree; any weight
// change disagrees. An untrained model returns 0 ("unversioned").
// Hashing re-serializes the model, so callers stamping many poles
// should compute it once and reuse the value.
func (h *HAWC) ModelVersion() uint32 {
	if h.net == nil {
		return 0
	}
	f := fnv.New64a()
	if err := h.Save(f); err != nil {
		return 0
	}
	v := f.Sum64()
	folded := uint32(v>>32) ^ uint32(v)
	if folded == 0 {
		folded = 1 // zero is reserved for "unversioned"
	}
	return folded
}

// LoadHAWC reconstructs a trained HAWC written by Save.
func LoadHAWC(r io.Reader) (*HAWC, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	if m != hawcMagic {
		return nil, fmt.Errorf("models: bad HAWC magic %q", m)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	if version != hawcFormatVersion {
		return nil, fmt.Errorf("models: unsupported HAWC version %d", version)
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	if nameLen > 64 {
		return nil, fmt.Errorf("models: projector name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	proj, ok := projection.ByName(string(nameBytes))
	if !ok {
		return nil, fmt.Errorf("models: unknown projector %q", nameBytes)
	}
	var target uint32
	if err := binary.Read(br, binary.LittleEndian, &target); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	var sigmaBits uint64
	if err := binary.Read(br, binary.LittleEndian, &sigmaBits); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	var poolN uint32
	if err := binary.Read(br, binary.LittleEndian, &poolN); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	const maxClouds = 10_000_000
	if poolN > maxClouds {
		return nil, fmt.Errorf("models: pool size %d exceeds sanity bound", poolN)
	}
	clouds := make([]geom.Cloud, 0, poolN)
	for i := uint32(0); i < poolN; i++ {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("models: load: %w", err)
		}
		if n > maxClouds {
			return nil, fmt.Errorf("models: cloud size %d exceeds sanity bound", n)
		}
		c := make(geom.Cloud, n)
		var buf [12]byte
		for j := range c {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("models: load: %w", err)
			}
			c[j] = geom.P(
				float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[0:]))),
				float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4:]))),
				float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[8:]))),
			)
		}
		clouds = append(clouds, c)
	}

	h := &HAWC{
		Projector:     proj,
		GaussianSigma: math.Float64frombits(sigmaBits),
		target:        int(target),
		d:             upsample.Side(int(target)),
		pool:          upsample.NewPool(clouds),
		rng:           rand.New(rand.NewSource(1)),
	}
	h.net = buildHAWCNet(h.d, proj.Channels(), rand.New(rand.NewSource(0)))
	if err := h.net.Load(br); err != nil {
		return nil, fmt.Errorf("models: load weights: %w", err)
	}
	return h, nil
}

// SaveHAWCFile writes the model to path.
func SaveHAWCFile(path string, h *HAWC) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("models: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("models: close: %w", cerr)
		}
	}()
	return h.Save(f)
}

// LoadHAWCFile reads a model from path.
func LoadHAWCFile(path string) (*HAWC, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	defer f.Close()
	return LoadHAWC(f)
}
