package models

import (
	"errors"
	"fmt"
	"math/rand"

	"hawccc/internal/dataset"
	"hawccc/internal/features"
	"hawccc/internal/geom"
	"hawccc/internal/svm"
	"hawccc/internal/upsample"
)

// OCSVM is the OC-SVM-CC baseline classifier (Section VII-A, after
// Schölkopf et al.): slice features plus a one-class ν-SVM trained on the
// "Human" class, treating the origin of the kernel space as the only
// member of the second class. The paper excludes it from quantized
// comparisons because support-vector kernel evaluation is incompatible
// with reduced bit widths; it therefore has no Quantize method.
// Like the other integrated baselines, OC-SVM-CC first applies the
// framework's noise-controlled up-sampling and then extracts features from
// the padded cloud; the padding noise blurs the single-class manifold until
// the ν = 0.01 support region covers essentially the whole feature space,
// reproducing Table I's degenerate everything-is-human behavior.
type OCSVM struct {
	// Config overrides the paper's ν/γ defaults when set before Train.
	Config svm.Config
	// Normalize standardizes features before the kernel. The paper's
	// OC-SVM-CC follows the cited implementation and feeds raw slice
	// features to an RBF kernel with γ = 1/numFeatures; at raw meter
	// scale that kernel saturates near 1 for every pair, the decision
	// region swallows the whole space, and the classifier labels every
	// sample "human" — exactly the degenerate 48.6%-accuracy behavior
	// Table I reports. Setting Normalize (an extension beyond the paper)
	// repairs it.
	Normalize bool

	norm   *features.Normalizer
	model  *svm.OneClass
	target int
	pool   *upsample.Pool
}

var _ Classifier = (*OCSVM)(nil)

// NewOCSVM builds an untrained OC-SVM with the paper's settings
// (ν = 0.01, γ = 1/numFeatures).
func NewOCSVM() *OCSVM { return &OCSVM{Config: svm.DefaultConfig()} }

// Name implements Classifier.
func (o *OCSVM) Name() string { return "OC-SVM" }

// NumSupportVectors returns the trained support-vector count (0 before
// training).
func (o *OCSVM) NumSupportVectors() int {
	if o.model == nil {
		return 0
	}
	return o.model.NumSupportVectors()
}

// FeatureDim returns the classifier's input dimensionality.
func (o *OCSVM) FeatureDim() int { return features.VectorLen }

// Train fits the one-class SVM on the human samples. The TrainConfig's
// neural-network fields are ignored; Seed drives the SMO pair order.
func (o *OCSVM) Train(samples []dataset.Sample, cfg TrainConfig) error {
	if len(samples) == 0 {
		return errors.New("models: no training samples")
	}
	cfg = cfg.withDefaults(1, 1, 1)
	rng := rand.New(rand.NewSource(cfg.Seed))
	o.target = upsample.TargetSize(dataset.MaxPoints(samples))
	var objectClouds []geom.Cloud
	for _, s := range samples {
		if !s.Human {
			objectClouds = append(objectClouds, s.Cloud)
		}
	}
	o.pool = upsample.NewPool(objectClouds)

	var humanVecs [][]float64
	var allVecs [][]float64
	for _, s := range samples {
		v := o.extract(rng, s.Cloud)
		allVecs = append(allVecs, v)
		if s.Human {
			humanVecs = append(humanVecs, v)
		}
	}
	if len(humanVecs) == 0 {
		return errors.New("models: OC-SVM needs at least one human sample")
	}
	if o.Normalize {
		o.norm = features.FitNormalizer(allVecs)
	}
	normalized := make([][]float64, len(humanVecs))
	for i, v := range humanVecs {
		normalized[i] = o.applyNorm(v)
	}
	svmCfg := o.Config
	svmCfg.Seed = cfg.Seed
	m, err := svm.Train(normalized, svmCfg)
	if err != nil {
		return fmt.Errorf("models: OC-SVM train: %w", err)
	}
	o.model = m
	return nil
}

// extract up-samples the cluster (the paper's added step) and computes
// the slice feature vector of the padded cloud. The rng drives the padding
// noise; inference passes a content-seeded stream.
func (o *OCSVM) extract(rng *rand.Rand, cloud geom.Cloud) []float64 {
	up := cloud
	if o.pool != nil && o.pool.Len() > 0 && o.target > 0 {
		up = upsample.FromPool(rng, cloud, o.pool, o.target)
	}
	return features.Extract(up)
}

// PredictHuman implements Classifier. Safe for concurrent use once
// trained: the SVM decision function is read-only and padding noise comes
// from a per-call content-seeded RNG.
func (o *OCSVM) PredictHuman(cloud geom.Cloud) bool {
	if o.model == nil {
		panic("models: OC-SVM not trained")
	}
	return o.model.Predict(o.applyNorm(o.extract(inferRNG(cloud), cloud)))
}

func (o *OCSVM) applyNorm(v []float64) []float64 {
	if o.norm == nil {
		return v
	}
	return o.norm.Apply(v)
}
