// Package knee locates the "elbow" of a monotonically non-decreasing curve.
// Adaptive clustering (paper Section IV) sorts every point's k-th
// nearest-neighbor distance in ascending order and takes the distance at
// the elbow as the per-capture DBSCAN ε: the elbow marks the transition
// from intra-cluster distances (small, slowly growing) to noise distances
// (large, fast growing).
package knee

import "errors"

// ErrTooShort is returned when the curve has fewer than three samples, the
// minimum for a successive-difference elbow to exist.
var ErrTooShort = errors.New("knee: curve needs at least 3 samples")

// Locate returns the index of the elbow of the sorted, non-decreasing
// curve d, following the paper's KneeLocator criterion
//
//	k_elbow = argmax_i (d[i+1] - d[i]) / d[i]
//
// i.e. the point of maximum relative successive growth. Indices where
// d[i] == 0 are skipped (relative growth undefined); if every usable value
// is zero the midpoint is returned as a safe default.
func Locate(d []float64) (int, error) {
	if len(d) < 3 {
		return 0, ErrTooShort
	}
	best, bestIdx := -1.0, -1
	for i := 0; i+1 < len(d); i++ {
		if d[i] <= 0 {
			continue
		}
		g := (d[i+1] - d[i]) / d[i]
		if g > best {
			best, bestIdx = g, i
		}
	}
	if bestIdx < 0 {
		return len(d) / 2, nil
	}
	return bestIdx, nil
}

// Value returns the curve value at the elbow — the optimal ε in adaptive
// clustering. For curves too short to analyze it returns fallback.
func Value(d []float64, fallback float64) float64 {
	i, err := Locate(d)
	if err != nil {
		return fallback
	}
	return d[i]
}
