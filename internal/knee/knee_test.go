package knee

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func TestLocateSimpleElbow(t *testing.T) {
	// Flat then a jump: elbow must sit right before the jump.
	d := []float64{0.05, 0.05, 0.06, 0.06, 0.07, 0.5, 0.9, 1.5}
	i, err := Locate(d)
	if err != nil {
		t.Fatal(err)
	}
	if i != 4 {
		t.Errorf("elbow index = %d, want 4", i)
	}
	if got := Value(d, 0.1); got != 0.07 {
		t.Errorf("Value = %v, want 0.07", got)
	}
}

func TestLocatePaperStyleCurve(t *testing.T) {
	// Synthetic curve mimicking Fig. 4a: many small intra-cluster distances
	// around 0.05-0.07 and a tail of noise distances ≥ 0.5.
	rng := rand.New(rand.NewSource(1))
	var d []float64
	for i := 0; i < 300; i++ {
		d = append(d, 0.05+0.02*rng.Float64())
	}
	for i := 0; i < 20; i++ {
		d = append(d, 0.5+2*rng.Float64())
	}
	sort.Float64s(d)
	eps := Value(d, 0)
	if eps < 0.04 || eps > 0.1 {
		t.Errorf("ε = %v, want within the intra-cluster band [0.04, 0.1]", eps)
	}
}

func TestLocateTooShort(t *testing.T) {
	for _, d := range [][]float64{nil, {1}, {1, 2}} {
		if _, err := Locate(d); !errors.Is(err, ErrTooShort) {
			t.Errorf("Locate(%v) error = %v, want ErrTooShort", d, err)
		}
	}
	if got := Value([]float64{1, 2}, 0.42); got != 0.42 {
		t.Errorf("Value fallback = %v, want 0.42", got)
	}
}

func TestLocateAllZeros(t *testing.T) {
	d := []float64{0, 0, 0, 0}
	i, err := Locate(d)
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Errorf("all-zero curve elbow = %d, want midpoint 2", i)
	}
}

func TestLocateLeadingZeros(t *testing.T) {
	// Zero entries are skipped for relative growth; the jump after them
	// must still be found.
	d := []float64{0, 0, 0.01, 0.011, 0.012, 0.2}
	i, err := Locate(d)
	if err != nil {
		t.Fatal(err)
	}
	if i != 4 {
		t.Errorf("elbow = %d, want 4 (before the 0.012→0.2 jump)", i)
	}
}

func TestLocateMonotoneGentleCurve(t *testing.T) {
	// A geometric curve has constant relative growth, so the first usable
	// index wins; any valid index is acceptable but it must not error.
	d := []float64{1, 2, 4, 8, 16}
	if _, err := Locate(d); err != nil {
		t.Fatal(err)
	}
}

// TestLocateFlatCurve covers the all-equidistant k-NN geometry: every
// sorted neighbor distance is identical, so relative growth is zero
// everywhere and the argmax degenerates to the first usable index. The
// returned curve value is still the (single) distance, which is the
// right ε for a uniformly spaced cloud.
func TestLocateFlatCurve(t *testing.T) {
	d := []float64{0.25, 0.25, 0.25, 0.25, 0.25}
	i, err := Locate(d)
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Errorf("flat curve elbow at %d, want 0", i)
	}
	if v := Value(d, 9.9); v != 0.25 {
		t.Errorf("flat curve Value = %v, want the plateau distance", v)
	}
}

// TestLocateFlatThenJump pins that a plateau followed by one jump puts
// the elbow at the end of the plateau, not at the flat start.
func TestLocateFlatThenJump(t *testing.T) {
	d := []float64{0.2, 0.2, 0.2, 0.2, 1.0, 1.0}
	i, err := Locate(d)
	if err != nil {
		t.Fatal(err)
	}
	if i != 3 {
		t.Errorf("elbow at %d, want 3 (last plateau sample before the jump)", i)
	}
}
