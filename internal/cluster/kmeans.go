package cluster

import (
	"math"
	"math/rand"

	"hawccc/internal/geom"
)

// KMeans clusters the cloud into k clusters with Lloyd's algorithm and
// k-means++ seeding. It is one of the parametric baselines Section IV
// rejects: it assumes convex, similarly-sized clusters, which pedestrian
// point clouds are not.
//
// rng drives the seeding; pass a deterministic source for reproducible
// experiments. maxIter bounds Lloyd iterations (20 is plenty at this scale).
func KMeans(cloud geom.Cloud, k int, maxIter int, rng *rand.Rand) Result {
	n := len(cloud)
	labels := make([]int, n)
	if n == 0 || k < 1 {
		for i := range labels {
			labels[i] = Noise
		}
		return Result{Labels: labels}
	}
	if k > n {
		k = n
	}

	centers := seedPlusPlus(cloud, k, rng)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assign.
		for i, p := range cloud {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := p.Dist2(ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Update.
		sums := make([]geom.Point3, k)
		counts := make([]int, k)
		for i, p := range cloud {
			sums[labels[i]] = sums[labels[i]].Add(p)
			counts[labels[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c].Scale(1 / float64(counts[c]))
			} else {
				// Re-seed an empty cluster at a random point.
				centers[c] = cloud[rng.Intn(n)]
			}
		}
	}
	return Result{Labels: labels, NumClusters: k}
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
func seedPlusPlus(cloud geom.Cloud, k int, rng *rand.Rand) []geom.Point3 {
	n := len(cloud)
	centers := make([]geom.Point3, 0, k)
	centers = append(centers, cloud[rng.Intn(n)])
	d2 := make([]float64, n)
	for len(centers) < k {
		var total float64
		last := centers[len(centers)-1]
		for i, p := range cloud {
			d := p.Dist2(last)
			if len(centers) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with a center; duplicate one.
			centers = append(centers, cloud[rng.Intn(n)])
			continue
		}
		target := rng.Float64() * total
		var acc float64
		chosen := n - 1
		for i, w := range d2 {
			acc += w
			if acc >= target {
				chosen = i
				break
			}
		}
		centers = append(centers, cloud[chosen])
	}
	return centers
}
