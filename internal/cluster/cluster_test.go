package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hawccc/internal/geom"
)

// blob generates n points normally distributed around center.
func blob(rng *rand.Rand, center geom.Point3, std float64, n int) geom.Cloud {
	c := make(geom.Cloud, n)
	for i := range c {
		c[i] = geom.P(
			center.X+rng.NormFloat64()*std,
			center.Y+rng.NormFloat64()*std,
			center.Z+rng.NormFloat64()*std,
		)
	}
	return c
}

// twoBlobScene builds two well-separated dense blobs plus sparse noise.
func twoBlobScene(rng *rand.Rand) (cloud geom.Cloud, blobA, blobB int) {
	a := blob(rng, geom.P(0, 0, 0), 0.05, 60)
	b := blob(rng, geom.P(5, 0, 0), 0.05, 60)
	cloud = append(cloud, a...)
	cloud = append(cloud, b...)
	for i := 0; i < 5; i++ { // far-flung noise points
		cloud = append(cloud, geom.P(rng.Float64()*100+20, 50, 10))
	}
	return cloud, len(a), len(b)
}

func TestDBSCANTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cloud, _, _ := twoBlobScene(rng)
	res := DBSCAN(cloud, 0.3, 5)
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
	}
	if res.NoiseCount() != 5 {
		t.Errorf("NoiseCount = %d, want 5", res.NoiseCount())
	}
	// All points of one blob must carry the same label.
	first := res.Labels[0]
	for i := 1; i < 60; i++ {
		if res.Labels[i] != first {
			t.Fatalf("blob A split: point %d has label %d, want %d", i, res.Labels[i], first)
		}
	}
}

func TestDBSCANEdgeCases(t *testing.T) {
	if res := DBSCAN(nil, 0.5, 5); res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Error("empty cloud should yield empty result")
	}
	res := DBSCAN(geom.Cloud{geom.P(0, 0, 0)}, 0.5, 2)
	if res.NumClusters != 0 || res.Labels[0] != Noise {
		t.Error("single point below minPts should be noise")
	}
	res = DBSCAN(geom.Cloud{geom.P(0, 0, 0)}, 0.5, 1)
	if res.NumClusters != 1 || res.Labels[0] != 0 {
		t.Error("single point with minPts=1 should form a cluster")
	}
	if res := DBSCAN(geom.Cloud{geom.P(0, 0, 0)}, 0, 1); res.NumClusters != 0 {
		t.Error("eps=0 should cluster nothing")
	}
	if res := DBSCAN(geom.Cloud{geom.P(0, 0, 0)}, 1, 0); res.NumClusters != 0 {
		t.Error("minPts=0 should cluster nothing")
	}
}

func TestDBSCANBorderPoints(t *testing.T) {
	// A line of points spaced 0.9 apart with eps=1, minPts=3: ends are
	// border points of the single chain cluster.
	var cloud geom.Cloud
	for i := 0; i < 10; i++ {
		cloud = append(cloud, geom.P(float64(i)*0.9, 0, 0))
	}
	res := DBSCAN(cloud, 1.0, 3)
	if res.NumClusters != 1 {
		t.Fatalf("chain should form one cluster, got %d", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != 0 {
			t.Errorf("point %d label = %d, want 0", i, l)
		}
	}
}

func TestDBSCANLabelsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		cloud := blob(rng, geom.P(0, 0, 0), 1.0, n)
		res := DBSCAN(cloud, 0.2+rng.Float64(), 1+rng.Intn(6))
		// Every label must be Noise or in [0, NumClusters); every cluster
		// id below NumClusters must be used.
		used := make(map[int]bool)
		for _, l := range res.Labels {
			if l == Noise {
				continue
			}
			if l < 0 || l >= res.NumClusters {
				return false
			}
			used[l] = true
		}
		return len(used) == res.NumClusters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClustersMaterialization(t *testing.T) {
	cloud := geom.Cloud{geom.P(0, 0, 0), geom.P(0.1, 0, 0), geom.P(9, 9, 9)}
	res := DBSCAN(cloud, 0.5, 2)
	clusters := res.Clusters(cloud)
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(clusters))
	}
	if len(clusters[0]) != 2 {
		t.Errorf("cluster size = %d, want 2", len(clusters[0]))
	}
}

func TestClustersPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Result{Labels: []int{0}}.Clusters(geom.Cloud{})
}

func TestOptimalEpsilonSeparatesScales(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Dense blobs: intra-cluster 4-NN distances ≈ 0.02-0.08; separation 5 m.
	cloud, _, _ := twoBlobScene(rng)
	cfg := DefaultAdaptiveConfig()
	eps := OptimalEpsilon(cloud, cfg)
	if eps <= 0 || eps > 1.0 {
		t.Errorf("ε = %v, want within (0, 1] for dense blobs", eps)
	}
	// Adaptive clustering with that ε must find the two blobs.
	res := Adaptive(cloud, cfg)
	if res.NumClusters != 2 {
		t.Errorf("Adaptive found %d clusters, want 2 (ε=%v)", res.NumClusters, res.Epsilon)
	}
}

func TestOptimalEpsilonFallbacks(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	if eps := OptimalEpsilon(nil, cfg); eps != cfg.FallbackEps {
		t.Errorf("empty cloud ε = %v, want fallback", eps)
	}
	tiny := geom.Cloud{geom.P(0, 0, 0), geom.P(1, 1, 1)}
	if eps := OptimalEpsilon(tiny, cfg); eps != cfg.FallbackEps {
		t.Errorf("tiny cloud ε = %v, want fallback", eps)
	}
	bad := cfg
	bad.K = 0
	if eps := OptimalEpsilon(blob(rand.New(rand.NewSource(1)), geom.Point3{}, 1, 50), bad); eps != cfg.FallbackEps {
		t.Errorf("K=0 ε = %v, want fallback", eps)
	}
}

func TestOptimalEpsilonClamped(t *testing.T) {
	// Uniformly scattered sparse points produce huge k-NN distances; MaxEps
	// must clamp the elbow value.
	rng := rand.New(rand.NewSource(9))
	var cloud geom.Cloud
	for i := 0; i < 30; i++ {
		cloud = append(cloud, geom.P(rng.Float64()*500, rng.Float64()*500, rng.Float64()*500))
	}
	cfg := DefaultAdaptiveConfig()
	eps := OptimalEpsilon(cloud, cfg)
	if eps > cfg.MaxEps {
		t.Errorf("ε = %v exceeds MaxEps %v", eps, cfg.MaxEps)
	}
}

func TestHierarchicalConnectedComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cloud, _, _ := twoBlobScene(rng)
	res := Hierarchical(cloud, 0.5)
	// Two blobs plus 5 isolated noise points = 7 components (hierarchical
	// has no noise concept: singletons are their own clusters — this is
	// exactly why it over-counts in Table IV).
	if res.NumClusters != 7 {
		t.Errorf("NumClusters = %d, want 7", res.NumClusters)
	}
	if res.NoiseCount() != 0 {
		t.Error("single-linkage cut should label everything")
	}
}

func TestHierarchicalDegenerate(t *testing.T) {
	if res := Hierarchical(nil, 1); res.NumClusters != 0 {
		t.Error("empty cloud should have no clusters")
	}
	if res := Hierarchical(geom.Cloud{geom.P(0, 0, 0)}, 0); res.Labels[0] != Noise {
		t.Error("cut=0 should label noise")
	}
}

func TestHierarchicalKExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := blob(rng, geom.P(0, 0, 0), 0.05, 20)
	b := blob(rng, geom.P(3, 0, 0), 0.05, 20)
	c := blob(rng, geom.P(0, 3, 0), 0.05, 20)
	cloud := append(append(a, b...), c...)
	res := HierarchicalK(cloud, 3)
	if res.NumClusters != 3 {
		t.Fatalf("NumClusters = %d, want 3", res.NumClusters)
	}
	// Each blob must be uniform.
	for blobIdx := 0; blobIdx < 3; blobIdx++ {
		first := res.Labels[blobIdx*20]
		for i := 0; i < 20; i++ {
			if res.Labels[blobIdx*20+i] != first {
				t.Fatalf("blob %d split", blobIdx)
			}
		}
	}
	if res := HierarchicalK(cloud, 100); res.NumClusters != len(cloud) {
		t.Errorf("k>n should give n singletons, got %d", res.NumClusters)
	}
	if res := HierarchicalK(nil, 3); res.NumClusters != 0 {
		t.Error("empty HierarchicalK should be empty")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := blob(rng, geom.P(0, 0, 0), 0.1, 50)
	b := blob(rng, geom.P(10, 0, 0), 0.1, 50)
	cloud := append(a.Clone(), b...)
	res := KMeans(cloud, 2, 20, rng)
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d", res.NumClusters)
	}
	// Blob A all same label, blob B all the other.
	la, lb := res.Labels[0], res.Labels[50]
	if la == lb {
		t.Fatal("blobs merged")
	}
	for i := 0; i < 50; i++ {
		if res.Labels[i] != la || res.Labels[50+i] != lb {
			t.Fatal("blob assignment not uniform")
		}
	}
}

func TestKMeansDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if res := KMeans(nil, 3, 10, rng); res.NumClusters != 0 {
		t.Error("empty kmeans")
	}
	// k > n clamps to n.
	cloud := geom.Cloud{geom.P(0, 0, 0), geom.P(1, 1, 1)}
	res := KMeans(cloud, 5, 10, rng)
	if res.NumClusters != 2 {
		t.Errorf("k>n should clamp, got %d", res.NumClusters)
	}
	// Identical points: must terminate and produce valid labels.
	dup := geom.Cloud{geom.P(1, 1, 1), geom.P(1, 1, 1), geom.P(1, 1, 1)}
	res = KMeans(dup, 2, 10, rng)
	for _, l := range res.Labels {
		if l < 0 || l >= res.NumClusters {
			t.Error("invalid label for duplicate points")
		}
	}
}

func TestGMMSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := blob(rng, geom.P(0, 0, 0), 0.1, 60)
	b := blob(rng, geom.P(8, 0, 0), 0.1, 60)
	cloud := append(a.Clone(), b...)
	res := GMM(cloud, 2, 30, rng)
	la, lb := res.Labels[0], res.Labels[60]
	if la == lb {
		t.Fatal("GMM merged well-separated blobs")
	}
	misassigned := 0
	for i := 0; i < 60; i++ {
		if res.Labels[i] != la {
			misassigned++
		}
		if res.Labels[60+i] != lb {
			misassigned++
		}
	}
	if misassigned > 3 {
		t.Errorf("GMM misassigned %d/120 points", misassigned)
	}
}

func TestGMMDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if res := GMM(nil, 2, 5, rng); res.NumClusters != 0 {
		t.Error("empty GMM")
	}
	dup := geom.Cloud{geom.P(1, 1, 1), geom.P(1, 1, 1)}
	res := GMM(dup, 2, 5, rng)
	for _, l := range res.Labels {
		if l < 0 {
			t.Error("GMM labeled noise on duplicates")
		}
	}
}

func TestFastFloor(t *testing.T) {
	tests := []struct {
		in   float64
		want int64
	}{
		{1.5, 1}, {-1.5, -2}, {0, 0}, {-0.0001, -1}, {2, 2}, {-3, -3},
	}
	for _, tt := range tests {
		if got := fastFloor(tt.in); got != tt.want {
			t.Errorf("fastFloor(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestClustersIntoMatchesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cloud := append(blob(rng, geom.P(15, 0, -1), 0.1, 60), blob(rng, geom.P(25, 2, -1), 0.1, 60)...)
	cloud = append(cloud, geom.P(40, -2, 5)) // an isolated noise point
	res := DBSCAN(cloud, 0.5, 5)
	if res.NumClusters < 2 {
		t.Fatalf("setup: expected ≥2 clusters, got %d", res.NumClusters)
	}

	want := res.Clusters(cloud)
	// Undersized dst with stale contents: must grow and be overwritten.
	dst := make([]geom.Cloud, 1, 1)
	dst[0] = geom.Cloud{geom.P(9, 9, 9)}
	got := res.ClustersInto(cloud, dst)
	if len(got) != len(want) {
		t.Fatalf("ClustersInto produced %d clusters, Clusters %d", len(got), len(want))
	}
	for ci := range want {
		if len(got[ci]) != len(want[ci]) {
			t.Fatalf("cluster %d: %d vs %d points", ci, len(got[ci]), len(want[ci]))
		}
		for pi := range want[ci] {
			if got[ci][pi] != want[ci][pi] {
				t.Errorf("cluster %d point %d differs", ci, pi)
			}
		}
	}
	// Recycling the returned slice reproduces the same clusters and
	// reuses the grown backing arrays.
	backing := &got[0][0]
	again := res.ClustersInto(cloud, got)
	if len(again) != len(want) || &again[0][0] != backing {
		t.Error("recycled ClustersInto did not reuse the grown buffers")
	}

	// Degenerate inputs: an empty clustering yields no clusters.
	empty := DBSCAN(nil, 0.5, 5)
	if out := empty.ClustersInto(nil, nil); len(out) != 0 {
		t.Errorf("empty result produced %d clusters", len(out))
	}
}

func TestAdaptiveDegenerateClouds(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	// Empty cloud: no clusters, no panic, fallback ε.
	if eps := OptimalEpsilon(nil, cfg); eps != cfg.FallbackEps {
		t.Errorf("empty cloud ε = %v, want fallback %v", eps, cfg.FallbackEps)
	}
	if res := Adaptive(nil, cfg); res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Errorf("empty cloud clustered to %+v", res)
	}
	// Single point: below MinPts, labeled noise.
	one := geom.Cloud{geom.P(20, 0, -1)}
	if eps := OptimalEpsilon(one, cfg); eps != cfg.FallbackEps {
		t.Errorf("single-point ε = %v, want fallback %v", eps, cfg.FallbackEps)
	}
	res := Adaptive(one, cfg)
	if res.NumClusters != 0 || res.Labels[0] != Noise {
		t.Errorf("single point clustered to %+v", res)
	}
	// All-equidistant cloud (uniform grid): the flat k-NN curve must
	// yield a usable ε inside the physical band, not zero or infinity.
	var grid geom.Cloud
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			grid = append(grid, geom.P(15+0.3*float64(x), 0.3*float64(y), -1))
		}
	}
	eps := OptimalEpsilon(grid, cfg)
	if eps < cfg.MinEps || eps > cfg.MaxEps {
		t.Errorf("uniform-grid ε = %v outside [%v, %v]", eps, cfg.MinEps, cfg.MaxEps)
	}
	if res := Adaptive(grid, cfg); res.NumClusters == 0 {
		t.Error("uniform grid produced no cluster at the band-clamped ε")
	}
}
