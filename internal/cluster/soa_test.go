package cluster

import (
	"math/rand"
	"testing"

	"hawccc/internal/geom"
)

// soaScenes rounds every property scene through float32 — the
// representable set CloudSoA stores — so the AoS and SoA engines see
// identical coordinates and label equality is exact, not approximate.
func soaScenes(rng *rand.Rand) []sceneSpec {
	scenes := propertyScenes(rng)
	for i := range scenes {
		var soa geom.CloudSoA
		soa.FromCloud(scenes[i].cloud)
		scenes[i].cloud = soa.ToCloud()
	}
	return scenes
}

// TestDBSCANSoAMatchesAoS is the SoA acceptance property: on every
// golden scene the structure-of-arrays path produces labels identical
// to the array-of-structs grid engine.
func TestDBSCANSoAMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	var aos, soaScratch Scratch
	for _, scene := range soaScenes(rng) {
		var soa geom.CloudSoA
		soa.FromCloud(scene.cloud)
		for _, eps := range []float64{0.15, 0.3, 0.45} {
			for _, minPts := range []int{3, 5} {
				want := aos.DBSCAN(scene.cloud, eps, minPts)
				wl := append([]int(nil), want.Labels...)
				wn := want.NumClusters
				got := soaScratch.DBSCANSoA(&soa, eps, minPts)
				checkResult(t, scene.name, got)
				if got.NumClusters != wn || !equalLabels(got.Labels, wl) {
					t.Fatalf("%s eps=%g minPts=%d: SoA labels differ from AoS\nsoa %v (%d)\naos %v (%d)",
						scene.name, eps, minPts, got.Labels, got.NumClusters, wl, wn)
				}
				one := DBSCANSoA(&soa, eps, minPts)
				if one.NumClusters != wn || !equalLabels(one.Labels, wl) {
					t.Fatalf("%s: package-level DBSCANSoA diverges from Scratch", scene.name)
				}
			}
		}
	}
}

// TestAdaptiveSoAMatchesAoS extends label equality to the full adaptive
// path: ε curve, structure gap, coarse reuse.
func TestAdaptiveSoAMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	cfg := DefaultAdaptiveConfig()
	var aos, soaScratch Scratch
	for _, scene := range soaScenes(rng) {
		var soa geom.CloudSoA
		soa.FromCloud(scene.cloud)
		want := aos.Adaptive(scene.cloud, cfg)
		wl := append([]int(nil), want.Labels...)
		wn, we := want.NumClusters, want.Epsilon
		if eps := soaScratch.OptimalEpsilonSoA(&soa, cfg); eps != we {
			t.Fatalf("%s: OptimalEpsilonSoA %g != AoS %g", scene.name, eps, we)
		}
		got := soaScratch.AdaptiveSoA(&soa, cfg)
		checkResult(t, scene.name, got)
		if got.Epsilon != we || got.NumClusters != wn || !equalLabels(got.Labels, wl) {
			t.Fatalf("%s: AdaptiveSoA (eps %g, %d clusters) differs from AoS (eps %g, %d clusters)",
				scene.name, got.Epsilon, got.NumClusters, we, wn)
		}
		one := AdaptiveSoA(&soa, cfg)
		if one.Epsilon != we || one.NumClusters != wn || !equalLabels(one.Labels, wl) {
			t.Fatalf("%s: package-level AdaptiveSoA diverges from Scratch", scene.name)
		}
	}
}

// TestAdaptiveSoASteadyStateAllocs pins the zero-alloc guarantee on the
// SoA geometry stage, matching the AoS pin.
func TestAdaptiveSoASteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	cfg := DefaultAdaptiveConfig()
	clouds := []*geom.CloudSoA{}
	for _, scene := range propertyScenes(rng) {
		var soa geom.CloudSoA
		soa.FromCloud(scene.cloud)
		clouds = append(clouds, &soa)
	}
	var s Scratch
	for _, c := range clouds {
		s.AdaptiveSoA(c, cfg) // warm the buffers
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, c := range clouds {
			s.AdaptiveSoA(c, cfg)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AdaptiveSoA allocates: %.1f allocs/run", allocs)
	}
}

// TestDBSCANSoARequiresGrid pins the documented constraint: the SoA
// path only runs on the voxel-grid index.
func TestDBSCANSoARequiresGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DBSCANSoA on KDTreeIndex did not panic")
		}
	}()
	var soa geom.CloudSoA
	soa.AppendXYZ(0, 0, 0)
	soa.AppendXYZ(0.1, 0, 0)
	soa.AppendXYZ(0.2, 0, 0)
	s := Scratch{Kind: KDTreeIndex}
	s.DBSCANSoA(&soa, 0.3, 2)
}
