package cluster

import (
	"math/rand"
	"testing"

	"hawccc/internal/geom"
)

// sceneSpec names one generated point layout for the cross-engine
// property tests.
type sceneSpec struct {
	name  string
	cloud geom.Cloud
}

// propertyScenes builds the layouts the grid-vs-kdtree equivalence
// property must hold on: seeded random crowds, all-noise scatter, one
// dense cluster, and points placed exactly at ε boundaries where the
// inclusive-radius contract decides membership.
func propertyScenes(rng *rand.Rand) []sceneSpec {
	scenes := []sceneSpec{}

	// Seeded random scenes: blobs of varying tightness plus scatter.
	for s := 0; s < 4; s++ {
		n := 80 + rng.Intn(400)
		cloud := make(geom.Cloud, 0, n)
		blobs := 1 + rng.Intn(6)
		for b := 0; b < blobs; b++ {
			cx, cy := rng.Float64()*8-4, rng.Float64()*8-4
			m := 10 + rng.Intn(40)
			for i := 0; i < m; i++ {
				cloud = append(cloud, geom.Point3{
					X: cx + rng.NormFloat64()*0.12,
					Y: cy + rng.NormFloat64()*0.12,
					Z: 0.9 + rng.NormFloat64()*0.3,
				})
			}
		}
		for len(cloud) < n {
			cloud = append(cloud, geom.Point3{
				X: rng.Float64()*10 - 5,
				Y: rng.Float64()*10 - 5,
				Z: rng.Float64() * 2,
			})
		}
		scenes = append(scenes, sceneSpec{name: "random", cloud: cloud})
	}

	// All noise: uniform scatter too sparse for any core point.
	noise := make(geom.Cloud, 60)
	for i := range noise {
		noise[i] = geom.Point3{
			X: float64(i%8) * 5,
			Y: float64(i/8) * 5,
			Z: float64(i%3) * 5,
		}
	}
	scenes = append(scenes, sceneSpec{name: "all-noise", cloud: noise})

	// Single dense cluster.
	single := make(geom.Cloud, 120)
	for i := range single {
		single[i] = geom.Point3{
			X: rng.NormFloat64() * 0.1,
			Y: rng.NormFloat64() * 0.1,
			Z: 1 + rng.NormFloat64()*0.1,
		}
	}
	scenes = append(scenes, sceneSpec{name: "single-cluster", cloud: single})

	// Boundary of ε: chains of points spaced at exactly the query radius
	// (0.3 below), where the inclusive <= boundary decides connectivity,
	// plus duplicate points forcing distance ties.
	var boundary geom.Cloud
	for i := 0; i < 12; i++ {
		boundary = append(boundary, geom.Point3{X: float64(i) * 0.3})
	}
	for i := 0; i < 12; i++ {
		boundary = append(boundary, geom.Point3{X: float64(i) * 0.3, Y: 2.5})
		if i%3 == 0 {
			boundary = append(boundary, geom.Point3{X: float64(i) * 0.3, Y: 2.5})
		}
	}
	scenes = append(scenes, sceneSpec{name: "epsilon-boundary", cloud: boundary})

	return scenes
}

func equalLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkResult verifies internal consistency of a Result: Sizes matches
// Labels, NumClusters covers every label.
func checkResult(t *testing.T, scene string, r Result) {
	t.Helper()
	counts := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l == Noise {
			continue
		}
		if l < 0 || l >= r.NumClusters {
			t.Fatalf("%s: label %d out of range [0,%d)", scene, l, r.NumClusters)
		}
		counts[l]++
	}
	if r.Sizes == nil {
		return
	}
	if len(r.Sizes) != r.NumClusters {
		t.Fatalf("%s: len(Sizes)=%d, NumClusters=%d", scene, len(r.Sizes), r.NumClusters)
	}
	for c, want := range counts {
		if r.Sizes[c] != want {
			t.Fatalf("%s: Sizes[%d]=%d, counted %d", scene, c, r.Sizes[c], want)
		}
	}
}

// TestDBSCANGridMatchesKDTree is the cross-engine property test: on
// every scene the voxel-grid engine and the k-d tree engine produce
// identical labels — not merely the same partition up to renumbering,
// because both expand clusters in ascending seed order over identical
// neighbor sets.
func TestDBSCANGridMatchesKDTree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	grid := &Scratch{Kind: GridIndex}
	tree := &Scratch{Kind: KDTreeIndex}
	for _, scene := range propertyScenes(rng) {
		for _, eps := range []float64{0.15, 0.3, 0.45} {
			for _, minPts := range []int{3, 5} {
				g := grid.DBSCAN(scene.cloud, eps, minPts)
				checkResult(t, scene.name, g)
				gl := append([]int(nil), g.Labels...)
				gn := g.NumClusters
				k := tree.DBSCAN(scene.cloud, eps, minPts)
				checkResult(t, scene.name, k)
				if gn != k.NumClusters || !equalLabels(gl, k.Labels) {
					t.Fatalf("%s eps=%g minPts=%d: grid labels differ from kdtree\ngrid %v (%d clusters)\ntree %v (%d clusters)",
						scene.name, eps, minPts, gl, gn, k.Labels, k.NumClusters)
				}
			}
		}
	}
}

// TestAdaptiveGridMatchesKDTree extends the property to the full
// adaptive path: elbow ε, structure-gap refinement, coarse-result reuse
// and all.
func TestAdaptiveGridMatchesKDTree(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	cfg := DefaultAdaptiveConfig()
	grid := &Scratch{Kind: GridIndex}
	tree := &Scratch{Kind: KDTreeIndex}
	for _, scene := range propertyScenes(rng) {
		g := grid.Adaptive(scene.cloud, cfg)
		checkResult(t, scene.name, g)
		gl := append([]int(nil), g.Labels...)
		gn, ge := g.NumClusters, g.Epsilon
		k := tree.Adaptive(scene.cloud, cfg)
		checkResult(t, scene.name, k)
		if ge != k.Epsilon {
			t.Fatalf("%s: grid eps %g != kdtree eps %g", scene.name, ge, k.Epsilon)
		}
		if gn != k.NumClusters || !equalLabels(gl, k.Labels) {
			t.Fatalf("%s: adaptive grid labels differ from kdtree\ngrid %v (%d)\ntree %v (%d)",
				scene.name, gl, gn, k.Labels, k.NumClusters)
		}
	}
}

// TestScratchMatchesPackageLevel pins that a reused Scratch produces the
// same results as the package-level one-shot functions across a sequence
// of different clouds — the steady-state streaming pattern.
func TestScratchMatchesPackageLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	cfg := DefaultAdaptiveConfig()
	var s Scratch
	for _, scene := range propertyScenes(rng) {
		want := Adaptive(scene.cloud, cfg)
		got := s.Adaptive(scene.cloud, cfg)
		if want.Epsilon != got.Epsilon || want.NumClusters != got.NumClusters ||
			!equalLabels(want.Labels, got.Labels) {
			t.Fatalf("%s: scratch Adaptive diverges from package-level", scene.name)
		}
		wantEps := OptimalEpsilon(scene.cloud, cfg)
		if gotEps := s.OptimalEpsilon(scene.cloud, cfg); gotEps != wantEps {
			t.Fatalf("%s: scratch OptimalEpsilon %g != %g", scene.name, gotEps, wantEps)
		}
	}
}

// TestAdaptiveCoarseReuse forces the fallback-ε outcome (tiny band) and
// checks the reused coarse result matches a fresh DBSCAN at that ε.
func TestAdaptiveCoarseReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	// Two dense blobs: the elbow lands inside the clamped band, and with
	// the default config most crowd scenes resolve to the fallback via
	// clamping or the structure cap. Whether or not reuse triggers, the
	// result must equal the one-shot path at the same ε.
	var cloud geom.Cloud
	for b := 0; b < 2; b++ {
		cx := float64(b) * 1.5
		for i := 0; i < 60; i++ {
			cloud = append(cloud, geom.Point3{
				X: cx + rng.NormFloat64()*0.08,
				Y: rng.NormFloat64() * 0.08,
				Z: 1 + rng.NormFloat64()*0.2,
			})
		}
	}
	cfg := DefaultAdaptiveConfig()
	var s Scratch
	got := s.Adaptive(cloud, cfg)
	want := DBSCAN(cloud, got.Epsilon, cfg.MinPts)
	if got.NumClusters != want.NumClusters || !equalLabels(got.Labels, want.Labels) {
		t.Fatalf("adaptive result at eps=%g differs from direct DBSCAN", got.Epsilon)
	}
	checkResult(t, "coarse-reuse", got)
}

// TestAdaptiveSteadyStateAllocs pins the zero-alloc guarantee of the
// grid-backed geometry stage: after warm-up, a full Adaptive pass —
// grid build, kNN curve, coarse pass, final expansion — performs no
// heap allocation.
func TestAdaptiveSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	scenes := propertyScenes(rng)
	cfg := DefaultAdaptiveConfig()
	var s Scratch
	for _, scene := range scenes {
		s.Adaptive(scene.cloud, cfg) // warm the buffers
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, scene := range scenes {
			s.Adaptive(scene.cloud, cfg)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Adaptive allocates: %.1f allocs/run", allocs)
	}
}
