package cluster

import (
	"math"
	"math/rand"

	"hawccc/internal/geom"
)

// GMM fits a k-component Gaussian mixture with diagonal covariances via
// expectation-maximization and assigns each point to its most likely
// component. Like k-means it is a parametric baseline from Section IV:
// it imposes ellipsoidal clusters, which suits neither the banded LiDAR
// returns on a body nor arbitrary-shaped background structure.
func GMM(cloud geom.Cloud, k, maxIter int, rng *rand.Rand) Result {
	n := len(cloud)
	labels := make([]int, n)
	if n == 0 || k < 1 {
		for i := range labels {
			labels[i] = Noise
		}
		return Result{Labels: labels}
	}
	if k > n {
		k = n
	}

	// Initialize means with k-means++ seeding and unit-ish variances from
	// the data spread.
	means := seedPlusPlus(cloud, k, rng)
	spread := cloud.Bounds().Size()
	baseVar := math.Max(0.01, (spread.X*spread.X+spread.Y*spread.Y+spread.Z*spread.Z)/(9*float64(k)))
	vars := make([]geom.Point3, k)
	weights := make([]float64, k)
	for c := range vars {
		vars[c] = geom.P(baseVar, baseVar, baseVar)
		weights[c] = 1 / float64(k)
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}

	const varFloor = 1e-6
	for iter := 0; iter < maxIter; iter++ {
		// E-step: responsibilities via log-sum-exp for stability.
		for i, p := range cloud {
			var maxLog float64 = math.Inf(-1)
			logs := resp[i]
			for c := 0; c < k; c++ {
				logs[c] = math.Log(weights[c]+1e-300) + logGaussDiag(p, means[c], vars[c])
				if logs[c] > maxLog {
					maxLog = logs[c]
				}
			}
			var sum float64
			for c := 0; c < k; c++ {
				logs[c] = math.Exp(logs[c] - maxLog)
				sum += logs[c]
			}
			for c := 0; c < k; c++ {
				logs[c] /= sum
			}
		}
		// M-step.
		for c := 0; c < k; c++ {
			var nk float64
			var mean geom.Point3
			for i, p := range cloud {
				r := resp[i][c]
				nk += r
				mean = mean.Add(p.Scale(r))
			}
			if nk < 1e-10 {
				means[c] = cloud[rng.Intn(n)]
				vars[c] = geom.P(baseVar, baseVar, baseVar)
				weights[c] = 1e-6
				continue
			}
			mean = mean.Scale(1 / nk)
			var v geom.Point3
			for i, p := range cloud {
				r := resp[i][c]
				d := p.Sub(mean)
				v.X += r * d.X * d.X
				v.Y += r * d.Y * d.Y
				v.Z += r * d.Z * d.Z
			}
			v = v.Scale(1 / nk)
			v.X = math.Max(v.X, varFloor)
			v.Y = math.Max(v.Y, varFloor)
			v.Z = math.Max(v.Z, varFloor)
			means[c], vars[c], weights[c] = mean, v, nk/float64(n)
		}
	}

	for i := range cloud {
		best, bestR := 0, resp[i][0]
		for c := 1; c < k; c++ {
			if resp[i][c] > bestR {
				best, bestR = c, resp[i][c]
			}
		}
		labels[i] = best
	}
	return Result{Labels: labels, NumClusters: k}
}

// logGaussDiag returns the log density of p under a diagonal-covariance
// Gaussian with the given mean and per-axis variances.
func logGaussDiag(p, mean, variance geom.Point3) float64 {
	const log2pi = 1.8378770664093453 // ln(2π)
	d := p.Sub(mean)
	return -0.5 * (3*log2pi +
		math.Log(variance.X) + d.X*d.X/variance.X +
		math.Log(variance.Y) + d.Y*d.Y/variance.Y +
		math.Log(variance.Z) + d.Z*d.Z/variance.Z)
}
